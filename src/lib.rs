//! Umbrella crate for the SC'99 PC/Linux-cluster DNS reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! use a single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use nektar;
pub use nkt_blas as blas;
pub use nkt_calib as calib;
pub use nkt_ckpt as ckpt;
pub use nkt_fft as fft;
pub use nkt_gs as gs;
pub use nkt_machine as machine;
pub use nkt_mesh as mesh;
pub use nkt_mpi as mpi;
pub use nkt_net as net;
pub use nkt_partition as partition;
pub use nkt_poly as poly;
pub use nkt_prof as prof;
pub use nkt_serve as serve;
pub use nkt_spectral as spectral;
pub use nkt_stats as stats;
pub use nkt_trace as trace;
