//! A multi-tenant job farm over the virtual clusters: four jobs — a
//! slab-decomposed Fourier DNS, a pencil-decomposed one, the serial
//! cylinder wake, and a high-priority ALE latecomer — submitted from a
//! JSON job file to `nkt-serve` with only **two** world slots. The ALE
//! job arrives with both slots full and outranks everyone, so the
//! scheduler evicts a running job at its next checkpoint epoch cut and
//! resumes it later.
//!
//! The demo then serves every job **solo** (its own scheduler, no
//! contention) and verifies the punchline of checkpoint-backed
//! preemption: each job's final state hash, final energy bits, and
//! `STATS_` artifact bytes from the contended farm are byte-identical
//! to its solo run. Preemption is bitwise invisible to the tenants.
//!
//! ```sh
//! cargo run --release --example serve_farm
//! # optional: NKT_SERVE_OUT=/somewhere NKT_SERVE_MAX_WORLDS=2
//! #           NKT_TRACE=spans NKT_PROF=1 for per-job TRACE_/PROF_ artifacts
//! ```

use nektar_repro::serve::{parse_jobs, serve, JobReport, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

/// The submitted batch, in the on-disk job-file format (schema
/// `nkt-serve-jobs-1`, parsed by the in-repo JSON parser).
const JOB_FILE: &str = r#"{
  "schema": "nkt-serve-jobs-1",
  "jobs": [
    {"name": "dns_slab",   "tenant": "cfd", "solver": "fourier",  "ranks": 2,
     "grid": "2x1", "nz": 4, "net": "roadrunner_myr", "steps": 10,
     "ckpt_every": 2, "stats_every": 2},
    {"name": "dns_pencil", "tenant": "cfd", "solver": "fourier",  "ranks": 4,
     "grid": "2x2", "nz": 4, "net": "roadrunner_eth", "steps": 8,
     "ckpt_every": 2, "stats_every": 2},
    {"name": "wake",       "tenant": "lab", "solver": "serial2d", "ranks": 1,
     "net": "muses_lam", "steps": 12, "ckpt_every": 3, "stats_every": 3},
    {"name": "wing",       "tenant": "cfd", "solver": "ale",      "ranks": 2,
     "net": "t3e", "steps": 3, "priority": 5, "stats_every": 1,
     "submit_tick": 1}
  ]
}"#;

fn out_root() -> PathBuf {
    std::env::var("NKT_SERVE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| nkt_trace::results_dir().join("serve_farm"))
}

fn max_worlds() -> usize {
    std::env::var("NKT_SERVE_MAX_WORLDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn stats_bytes(r: &JobReport) -> Option<Vec<u8>> {
    std::fs::read(r.dir.join(format!("STATS_{}.json", r.name))).ok()
}

fn main() -> ExitCode {
    let root = out_root();
    let jobs = parse_jobs(JOB_FILE).expect("job file parses");
    println!("=== serve_farm: {} jobs, {} world slots ===", jobs.len(), max_worlds());
    println!("root: {}\n", root.display());

    // --- The contended farm (with its scheduler timeline on disk). ---
    let farm = serve(
        jobs.clone(),
        &ServeConfig {
            root: root.join("farm"),
            max_worlds: max_worlds(),
            events: Some("farm".into()),
        },
    )
    .expect("farm serve");
    println!(
        "farm: {} ticks, {} preemption(s)\n",
        farm.ticks, farm.preemptions
    );
    println!(
        "  {:<11} {:<7} {:<9} {:>5} {:>8} {:>10}  state hash",
        "job", "tenant", "solver", "pree", "waited", "energy"
    );
    for r in &farm.jobs {
        let (hash, energy) = r
            .result
            .as_ref()
            .map(|x| (format!("{:016x}", x.state_hash), x.energy))
            .unwrap_or_else(|| ("<failed>".into(), f64::NAN));
        println!(
            "  {:<11} {:<7} {:<9} {:>5} {:>8} {:>10.4e}  {}",
            r.name, r.tenant, r.solver, r.preemptions, r.queue_wait_ticks, energy, hash
        );
    }

    // The scheduler's decision timeline, as `serve_report` would show it.
    let events_path = root.join("farm").join("EVENTS_farm.jsonl");
    match std::fs::read_to_string(&events_path) {
        Ok(text) => {
            println!("\nscheduler timeline ({}):", events_path.display());
            match nektar_repro::serve::render_events(&text) {
                Ok(r) => println!("{r}"),
                Err(e) => println!("  <unrenderable: {e}>"),
            }
        }
        Err(e) => println!("\n(no event timeline: {e})"),
    }

    let mut failures = 0usize;
    for r in &farm.jobs {
        if !r.finished() {
            eprintln!("FAIL: job {} did not finish: {:?}", r.name, r.error);
            failures += 1;
        }
    }
    if max_worlds() == 2 && farm.preemptions == 0 {
        eprintln!("FAIL: the wing job should have preempted a slot holder");
        failures += 1;
    }

    // --- Solo reruns: each job alone, then byte-compare. ---
    println!("\nsolo reruns (no contention):");
    for (i, job) in jobs.iter().enumerate() {
        let solo = serve(
            vec![job.clone()],
            &ServeConfig { root: root.join("solo"), max_worlds: 1, events: None },
        )
        .expect("solo serve");
        let (s, f) = (&solo.jobs[0], &farm.jobs[i]);
        let ok_hash = match (&s.result, &f.result) {
            (Some(a), Some(b)) => {
                a.state_hash == b.state_hash
                    && a.steps == b.steps
                    && a.energy.to_bits() == b.energy.to_bits()
            }
            _ => false,
        };
        let ok_stats = stats_bytes(s) == stats_bytes(f);
        let verdict = if ok_hash && ok_stats { "BYTE-IDENTICAL" } else { "MISMATCH" };
        println!(
            "  {:<11} state {} stats {}  -> {}",
            job.name,
            if ok_hash { "ok" } else { "DRIFT" },
            if ok_stats { "ok" } else { "DRIFT" },
            verdict
        );
        if !(ok_hash && ok_stats) {
            eprintln!("FAIL: farm output for {} differs from its solo run", job.name);
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("\nserve_farm: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("\nserve_farm: preemption was bitwise invisible to every tenant");
    ExitCode::SUCCESS
}
