//! NekTar-ALE flapping-wing run (paper §4.2.2, Table 3) at demo scale:
//! 3-D moving-mesh Navier–Stokes with element-based domain decomposition,
//! gather-scatter exchanges and diagonal-PCG solves.
//!
//! ```sh
//! cargo run --release --example flapping_wing_ale
//! ```
//!
//! With `NKT_PROF=1` the run is profiled — the gather-scatter exchanges
//! show up as a first-class `gs` op in the MPI attribution table — and
//! a deterministic `results/PROF_flapping_wing_ale.json` is written.
//!
//! With `NKT_STATS=<n>` the run samples kinetic energy and mesh volume
//! (the ALE invariant) every n steps into a byte-deterministic
//! `results/STATS_flapping_wing_ale.json`; `NKT_HEALTH=1` arms the
//! NaN/Inf and KE-growth watchdog rules.
//!
//! With `NKT_CALIB=1` (and `NKT_GS_OVERLAP=1`, the default) the run is
//! calibrated into `results/CALIB_flapping_wing_ale.json` — including
//! the **measured** per-stage gather-scatter overlap windows that the
//! Table 3 / Figures 15–16 replays consume instead of the analytic
//! `1 − 6/V^{1/3}` estimate.

use nektar_repro::ckpt::Checkpointable;
use nektar_repro::mesh::wing_box_mesh;
use nektar_repro::mpi::prelude::*;
use nektar_repro::nektar::ale::{AleConfig, NektarAle};
use nektar_repro::nektar::stats::{sample_ale, ALE_CHANNELS};
use nektar_repro::net::{cluster, NetId};
use nektar_repro::partition::{partition_kway, Graph, PartitionOptions};
use nektar_repro::stats::{RuleLimits, StatsRecorder};

fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
    p: usize,
    net: nektar_repro::net::ClusterNetwork,
    f: F,
) -> Vec<R> {
    World::from_env().ranks(p).net(net).run(f)
}

fn main() {
    if nektar_repro::prof::enabled() {
        nektar_repro::prof::prepare();
    }
    if nektar_repro::calib::enabled() {
        nektar_repro::calib::prepare();
    }
    let stats_every = nektar_repro::stats::effective_every();
    let health = nektar_repro::stats::health_enabled();
    if stats_every.is_some() {
        nektar_repro::stats::prepare();
    }
    nektar_repro::trace::flight::set_run("flapping_wing_ale");
    let mesh = wing_box_mesh(1);
    println!(
        "flapping-wing domain 10x5x5, {} hex elements (paper: 15,870 at order 4)",
        mesh.nelems()
    );
    let p = 4;
    let dual = Graph::from_edges(mesh.nelems(), &mesh.dual_edges());
    let part = partition_kway(&dual, p, &PartitionOptions::default());
    let cut = nektar_repro::partition::edge_cut(&dual, &part);
    println!("METIS-substitute partition over {p} ranks: edge cut {cut}");

    let cfg = AleConfig {
        order: 2,
        dt: 2e-3,
        nu: 1e-3, // paper: Re = 1000
        scheme_order: 2,
        advect: true,
        motion_amp: 0.05,
        motion_omega: 2.0 * std::f64::consts::PI,
        pcg_tol: 1e-6,
        pcg_max_iter: 2000,
    };
    let out = run(p, cluster(NetId::RoadRunnerMyr), move |c| {
        let mut solver = NektarAle::new(c, mesh.clone(), &part, cfg.clone());
        solver.set_initial(c, |_| [1.0, 0.0, 0.0]);
        let mut rec =
            StatsRecorder::new(ALE_CHANNELS.to_vec(), stats_every.unwrap_or(0), c.size());
        let limits = RuleLimits::default();
        // NKT_CKPT_EVERY=<n> enables coordinated checkpoint epochs; the
        // ALE restore additionally rebuilds the moving-mesh operators.
        // The stats recorder rides in the same tandem shard.
        let ckpt = nektar_repro::ckpt::CkptConfig::from_env("flapping_wing_ale");
        if ckpt.enabled() {
            if let Ok(info) = solver.restore_ckpt_with(c, &ckpt, &mut rec) {
                if c.rank() == 0 {
                    println!("resumed from checkpoint epoch {} (step {})", info.epoch, info.step);
                }
            }
        }
        rec.rebaseline(c);
        for step in (solver.steps() + 1)..=2 {
            solver.step(c);
            if rec.due(step as u64) {
                if let Err(e) =
                    sample_ale(&mut solver, c, &mut rec, step as u64, &limits, health)
                {
                    return Err(e);
                }
            }
            if ckpt.should(step) {
                rec.fold(c);
                let tandem = nektar_repro::ckpt::Tandem { main: &solver, rider: &rec };
                if let Err(e) = nektar_repro::ckpt::write_epoch(c, &ckpt, step, &tandem) {
                    eprintln!("checkpoint write failed: {e}");
                }
                rec.rebaseline(c);
            }
        }
        if c.rank() == 0 && stats_every.is_some() {
            match rec.write("flapping_wing_ale") {
                Ok(path) => println!("stats: wrote {}", path.display()),
                Err(e) => eprintln!("stats: cannot write STATS_flapping_wing_ale.json: {e}"),
            }
        }
        Ok((
            solver.kinetic_energy(c),
            solver.total_volume(c),
            solver.last_iters,
            solver.clock.ale_group_percentages(),
            solver.state_hash(),
        ))
    });
    let (energy, volume, (pit, vit, mit), (a, b, cgrp), _) = match &out[0] {
        Ok(v) => *v,
        Err(e) => {
            println!("{e}");
            std::process::exit(1);
        }
    };
    // Fold the per-rank FNV digests into one run-level state hash: the
    // gs-overlap smoke in verify.sh pins this line across NKT_GS_OVERLAP
    // modes (split-phase gather-scatter must be bitwise neutral).
    let state_hash = out
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|v| v.4))
        .fold(0u64, |acc, h| acc.rotate_left(17) ^ h);
    println!("  state hash {state_hash:016x}");
    println!("after 2 ALE steps on modeled RoadRunner/Myrinet:");
    println!("  kinetic energy {energy:.4}, mesh volume {volume:.4} (conserved)");
    println!("  PCG iterations: pressure {pit}, velocity (3 comps) {vit}, mesh-velocity {mit}");
    println!("  stage shares (paper Figures 15-16 grouping):");
    println!("    a (steps 1-4,6)      {a:>5.1}%");
    println!("    b (pressure solve)   {b:>5.1}%");
    println!("    c (Helmholtz solves) {cgrp:>5.1}%");
    // One drain serves both observers (take_collected empties the
    // collector; see fourier_dns).
    if nektar_repro::prof::enabled() || nektar_repro::calib::enabled() {
        let threads = nektar_repro::trace::take_collected();
        if nektar_repro::prof::enabled() {
            let prof = nektar_repro::prof::Profile::build("flapping_wing_ale", &threads);
            print!("{}", prof.report());
            match prof.write() {
                Ok(path) => println!("prof: wrote {}", path.display()),
                Err(e) => eprintln!("prof: cannot write PROF_flapping_wing_ale.json: {e}"),
            }
        }
        nektar_repro::calib::calibrate_and_write("flapping_wing_ale", &threads);
    }
}
