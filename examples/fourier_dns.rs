//! NekTar-F on a simulated cluster: the paper's Fourier-parallel DNS
//! (Table 2, Figures 13–14) at demo scale.
//!
//! Runs the same turbulent-wake-style problem on two modeled networks —
//! RoadRunner's Fast Ethernet and its Myrinet — and shows how the
//! Alltoall-heavy nonlinear step dominates on the slower fabric.
//!
//! ```sh
//! cargo run --release --example fourier_dns
//! ```
//!
//! With `NKT_PROF=1` each network's run is additionally profiled
//! (MPI attribution, comm matrix, imbalance, critical path) and a
//! deterministic `results/PROF_fourier_dns_<net>.json` is written.
//!
//! Knobs: `NKT_RANKS=<p>` (default 4), `NKT_NZ=<nz>` (default 8), and
//! `NKT_GRID=PRxPC` to run the 2-D pencil decomposition instead of the
//! slab — e.g. `NKT_RANKS=8 NKT_GRID=4x2` runs 8 ranks where the slab
//! would need nz >= 16. Pencil runs suffix the profile name with the
//! grid so slab baselines stay untouched.

use nektar_repro::mesh::rect_quads;
use nektar_repro::mpi::prelude::*;
use nektar_repro::nektar::fourier::{FourierConfig, NektarF};
use nektar_repro::nektar::timers::Stage;
use nektar_repro::net::{cluster, NetId};

fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
    p: usize,
    net: nektar_repro::net::ClusterNetwork,
    f: F,
) -> Vec<R> {
    World::from_env().ranks(p).net(net).run(f)
}

fn main() {
    if nektar_repro::prof::enabled() {
        nektar_repro::prof::prepare();
    }
    let env_usize = |key: &str, default: usize| {
        std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let p = env_usize("NKT_RANKS", 4);
    let nz = env_usize("NKT_NZ", 8);
    let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
    let cfg = FourierConfig {
        order: 4,
        dt: 1e-3,
        nu: 0.02,
        nz,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    };
    let init = |x: [f64; 3]| {
        let pi = std::f64::consts::PI;
        let (sx, cx) = (pi * x[0]).sin_cos();
        let (sy, cy) = (pi * x[1]).sin_cos();
        [
            2.0 * pi * sx * sx * sy * cy * (1.0 + 0.3 * x[2].cos()),
            -2.0 * pi * sx * cx * sy * sy * (1.0 + 0.3 * x[2].cos()),
            0.0,
        ]
    };

    for net_id in [NetId::RoadRunnerMyr, NetId::RoadRunnerEth] {
        let net = cluster(net_id);
        let name = net.name;
        let mesh = mesh.clone();
        let cfg = cfg.clone();
        let out = run(p, net, move |c| {
            let mut solver = NektarF::new(c, &mesh, cfg.clone());
            solver.set_initial(init);
            // NKT_CKPT_EVERY=<n> enables coordinated checkpoint epochs;
            // a restart of this example resumes from the newest one.
            let ckpt = nektar_repro::ckpt::CkptConfig::from_env(&format!("fourier_dns_{name}"));
            if ckpt.enabled() {
                if let Ok(info) = nektar_repro::ckpt::restore_latest(c, &ckpt, &mut solver) {
                    if c.rank() == 0 {
                        println!("   resumed from checkpoint epoch {} (step {})", info.epoch, info.step);
                    }
                }
            }
            for step in (solver.steps() + 1)..=3 {
                solver.step(c);
                if ckpt.should(step) {
                    if let Err(e) = nektar_repro::ckpt::write_epoch(c, &ckpt, step, &solver) {
                        eprintln!("checkpoint write failed: {e}");
                    }
                }
            }
            use nektar_repro::ckpt::Checkpointable;
            (
                solver.kinetic_energy(c),
                solver.clock.clone(),
                c.busy(),
                c.wtime(),
                solver.state_hash(),
                (solver.decomp_name(), solver.grid()),
            )
        });
        let (energy, clock, busy, wall, hash, (decomp, (pr, pc))) = &out[0];
        println!("== {name}: {p} ranks, {decomp} decomposition ({pr}x{pc} grid) ==");
        println!("   kinetic energy after 3 steps: {energy:.5}");
        println!("   rank-0 CPU {busy:.4}s vs wall {wall:.4}s (difference = network idle)");
        // The FNV state hash is overlap-invariant: scripts/verify.sh
        // reruns this example with NKT_OVERLAP=0 and diffs these lines.
        println!("   rank-0 state hash: {hash:016x}");
        let pct = clock.percentages();
        println!(
            "   nonlinear step (Alltoall + FFTs) share: {:.0}%  (paper Fig 13-14: \
             60%+ on ethernet)",
            pct[Stage::NonLinear.index()]
        );
        println!(
            "   solves share: {:.0}%",
            pct[Stage::PressureSolve.index()] + pct[Stage::ViscousSolve.index()]
        );
        println!();
        if nektar_repro::prof::enabled() {
            let mut run = format!("fourier_dns_{}", nektar_repro::prof::slug(name));
            if *pc > 1 {
                // Keep slab baselines separate from pencil profiles.
                run.push_str(&format!("_grid{pr}x{pc}"));
            }
            let threads = nektar_repro::trace::take_collected();
            let prof = nektar_repro::prof::Profile::build(&run, &threads);
            print!("{}", prof.report());
            // Self-check: the profile's per-stage attributed times must
            // agree with the solvers' own StageClock ledgers (merged
            // over ranks) — the same 1% contract the trace smoke keeps.
            let mut ledger = nektar_repro::nektar::timers::StageClock::new();
            for (_, clock, ..) in &out {
                ledger.merge(clock);
            }
            let rows: Vec<(&str, f64)> = Stage::ALL
                .iter()
                .map(|s| (s.name(), ledger.totals[s.index()]))
                .collect();
            let err = prof.stage_ledger_check(&rows, 1e-3);
            println!("prof: stage ledger max rel err {:.4}%", 100.0 * err);
            match prof.write() {
                Ok(path) => println!("prof: wrote {}", path.display()),
                Err(e) => eprintln!("prof: cannot write PROF_{run}.json: {e}"),
            }
        }
    }
}
