//! NekTar-F on a simulated cluster: the paper's Fourier-parallel DNS
//! (Table 2, Figures 13–14) at demo scale.
//!
//! Runs the same turbulent-wake-style problem on two modeled networks —
//! RoadRunner's Fast Ethernet and its Myrinet — and shows how the
//! Alltoall-heavy nonlinear step dominates on the slower fabric.
//!
//! ```sh
//! cargo run --release --example fourier_dns
//! ```
//!
//! With `NKT_PROF=1` each network's run is additionally profiled
//! (MPI attribution, comm matrix, imbalance, critical path) and a
//! deterministic `results/PROF_fourier_dns_<net>.json` is written.
//!
//! With `NKT_CALIB=1` each run is calibrated against the machine model:
//! a measured-vs-modeled drift report plus fitted α–β / kernel-roofline
//! constants, written to a byte-deterministic
//! `results/CALIB_fourier_dns_<net>.json` that `scripts/calib_diff`
//! gates against the committed baseline.
//!
//! With `NKT_STATS=<n>` each run samples online turbulence statistics
//! (KE, dissipation, spectrum, divergence, CFL, Reynolds stresses,
//! per-rank MPI counters) every n steps and writes a byte-deterministic
//! `results/STATS_fourier_dns_<net>.json` — `scripts/stats_diff` gates
//! it against the committed baseline. `NKT_HEALTH=1` arms the watchdog:
//! a NaN/Inf in the state, runaway KE growth, or a divergence/CFL
//! excursion aborts with a typed error naming step/rank/field and every
//! rank dumps its flight-recorder ring. `NKT_INJECT_NAN=<s>` poisons
//! the state after step s (rank 0, v-field) to demonstrate the trip.
//!
//! Knobs: `NKT_RANKS=<p>` (default 4), `NKT_NZ=<nz>` (default 8),
//! `NKT_STEPS=<n>` (default 3), and `NKT_GRID=PRxPC` to run the 2-D
//! pencil decomposition instead of the slab — e.g. `NKT_RANKS=8
//! NKT_GRID=4x2` runs 8 ranks where the slab would need nz >= 16.
//! Pencil runs suffix the profile/stats name with the grid so slab
//! baselines stay untouched.

use nektar_repro::mesh::rect_quads;
use nektar_repro::mpi::prelude::*;
use nektar_repro::nektar::fourier::{FourierConfig, NektarF};
use nektar_repro::nektar::stats::{sample_fourier, FOURIER_CHANNELS};
use nektar_repro::nektar::timers::Stage;
use nektar_repro::net::{cluster, NetId};
use nektar_repro::stats::{HealthError, RuleLimits, StatsRecorder};

fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
    p: usize,
    net: nektar_repro::net::ClusterNetwork,
    f: F,
) -> Vec<R> {
    World::from_env().ranks(p).net(net).run(f)
}

type RunOutcome = (
    f64,
    nektar_repro::nektar::timers::StageClock,
    f64,
    f64,
    u64,
    (&'static str, (usize, usize)),
);

fn main() {
    if nektar_repro::prof::enabled() {
        nektar_repro::prof::prepare();
    }
    if nektar_repro::calib::enabled() {
        nektar_repro::calib::prepare();
    }
    let stats_every = nektar_repro::stats::effective_every();
    let health = nektar_repro::stats::health_enabled();
    if stats_every.is_some() {
        nektar_repro::stats::prepare();
    }
    let env_usize = |key: &str, default: usize| {
        std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let p = env_usize("NKT_RANKS", 4);
    let nz = env_usize("NKT_NZ", 8);
    let nsteps = env_usize("NKT_STEPS", 3);
    let inject_nan: Option<u64> =
        std::env::var("NKT_INJECT_NAN").ok().and_then(|v| v.parse().ok());
    let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
    let cfg = FourierConfig {
        order: 4,
        dt: 1e-3,
        nu: 0.02,
        nz,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    };
    let init = |x: [f64; 3]| {
        let pi = std::f64::consts::PI;
        let (sx, cx) = (pi * x[0]).sin_cos();
        let (sy, cy) = (pi * x[1]).sin_cos();
        [
            2.0 * pi * sx * sx * sy * cy * (1.0 + 0.3 * x[2].cos()),
            -2.0 * pi * sx * cx * sy * sy * (1.0 + 0.3 * x[2].cos()),
            0.0,
        ]
    };

    for net_id in [NetId::RoadRunnerMyr, NetId::RoadRunnerEth] {
        let net = cluster(net_id);
        let name = net.name;
        // The run name keys every artifact of this configuration: the
        // profile, the STATS series, the flight-recorder dumps.
        let mut run_name = format!("fourier_dns_{}", nektar_repro::prof::slug(name));
        if let Ok(grid) = std::env::var("NKT_GRID") {
            if grid.split('x').nth(1).is_some_and(|pc| pc != "1") {
                run_name.push_str(&format!("_grid{grid}"));
            }
        }
        nektar_repro::trace::flight::set_run(&run_name);
        let mesh = mesh.clone();
        let cfg = cfg.clone();
        let run_name_in = run_name.clone();
        let out: Vec<Result<RunOutcome, HealthError>> = run(p, net, move |c| {
            let mut solver = NektarF::new(c, &mesh, cfg.clone());
            solver.set_initial(init);
            let mut rec = StatsRecorder::new(
                FOURIER_CHANNELS.to_vec(),
                stats_every.unwrap_or(0),
                c.size(),
            );
            let limits = RuleLimits::default();
            // NKT_CKPT_EVERY=<n> enables coordinated checkpoint epochs;
            // a restart of this example resumes from the newest one. The
            // stats recorder rides in the same tandem shard, so the
            // series survives the cut bitwise.
            let ckpt = nektar_repro::ckpt::CkptConfig::from_env(&run_name_in);
            if ckpt.enabled() {
                let mut tandem =
                    nektar_repro::ckpt::TandemMut { main: &mut solver, rider: &mut rec };
                if let Ok(info) = nektar_repro::ckpt::restore_latest(c, &ckpt, &mut tandem) {
                    if c.rank() == 0 {
                        println!(
                            "   resumed from checkpoint epoch {} (step {})",
                            info.epoch, info.step
                        );
                    }
                }
            }
            // Baseline past all setup/restore traffic: the recorder's
            // ledger counts solver step traffic only.
            rec.rebaseline(c);
            for step in (solver.steps() + 1) as u64..=nsteps as u64 {
                solver.step(c);
                if inject_nan == Some(step) && c.rank() == 0 {
                    solver.fields[0][1].a[0] = f64::NAN;
                }
                if rec.due(step) {
                    sample_fourier(&mut solver, c, &mut rec, step, &limits, health)?;
                }
                if ckpt.should(step as usize) {
                    rec.fold(c);
                    let tandem = nektar_repro::ckpt::Tandem { main: &solver, rider: &rec };
                    if let Err(e) = nektar_repro::ckpt::write_epoch(c, &ckpt, step as usize, &tandem)
                    {
                        eprintln!("checkpoint write failed: {e}");
                    }
                    rec.rebaseline(c);
                }
            }
            if c.rank() == 0 && stats_every.is_some() {
                match rec.write(&run_name_in) {
                    Ok(path) => println!("stats: wrote {}", path.display()),
                    Err(e) => eprintln!("stats: cannot write STATS_{run_name_in}.json: {e}"),
                }
            }
            use nektar_repro::ckpt::Checkpointable;
            Ok((
                solver.kinetic_energy(c),
                solver.clock.clone(),
                c.busy(),
                c.wtime(),
                solver.state_hash(),
                (solver.decomp_name(), solver.grid()),
            ))
        });
        let first = match &out[0] {
            Ok(v) => v,
            Err(e) => {
                // Typed abort: the watchdog names step/rank/field; each
                // rank has already dumped FLIGHT_<run>_r<rank>.json.
                println!("{e}");
                std::process::exit(1);
            }
        };
        let (energy, clock, busy, wall, hash, (decomp, (pr, pc))) = first;
        println!("== {name}: {p} ranks, {decomp} decomposition ({pr}x{pc} grid) ==");
        println!("   kinetic energy after {nsteps} steps: {energy:.5}");
        println!("   rank-0 CPU {busy:.4}s vs wall {wall:.4}s (difference = network idle)");
        // The FNV state hash is overlap-invariant: scripts/verify.sh
        // reruns this example with NKT_OVERLAP=0 and diffs these lines.
        println!("   rank-0 state hash: {hash:016x}");
        let pct = clock.percentages();
        println!(
            "   nonlinear step (Alltoall + FFTs) share: {:.0}%  (paper Fig 13-14: \
             60%+ on ethernet)",
            pct[Stage::NonLinear.index()]
        );
        println!(
            "   solves share: {:.0}%",
            pct[Stage::PressureSolve.index()] + pct[Stage::ViscousSolve.index()]
        );
        println!();
        // NKT_PROF and NKT_CALIB observe the same collector, which
        // take_collected() empties — drain once, hand both the snapshot.
        if nektar_repro::prof::enabled() || nektar_repro::calib::enabled() {
            let threads = nektar_repro::trace::take_collected();
            if nektar_repro::prof::enabled() {
                let prof = nektar_repro::prof::Profile::build(&run_name, &threads);
                print!("{}", prof.report());
                // Self-check: the profile's per-stage attributed times must
                // agree with the solvers' own StageClock ledgers (merged
                // over ranks) — the same 1% contract the trace smoke keeps.
                let mut ledger = nektar_repro::nektar::timers::StageClock::new();
                for r in out.iter().flatten() {
                    ledger.merge(&r.1);
                }
                let rows: Vec<(&str, f64)> = Stage::ALL
                    .iter()
                    .map(|s| (s.name(), ledger.totals[s.index()]))
                    .collect();
                let err = prof.stage_ledger_check(&rows, 1e-3);
                println!("prof: stage ledger max rel err {:.4}%", 100.0 * err);
                match prof.write() {
                    Ok(path) => println!("prof: wrote {}", path.display()),
                    Err(e) => eprintln!("prof: cannot write PROF_{run_name}.json: {e}"),
                }
            }
            nektar_repro::calib::calibrate_and_write(&run_name, &threads);
        }
    }
}
