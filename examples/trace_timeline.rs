//! Regenerates a Figure 13-style stage breakdown from an exported trace
//! file — the textual twin of loading `TRACE_<run>.json` in Perfetto.
//!
//! ```sh
//! NKT_TRACE=spans cargo run --release --example quickstart
//! cargo run --release --example trace_timeline                     # default file
//! cargo run --release --example trace_timeline results/TRACE_x.json
//! ```
//!
//! Sums every `stage`/`replay`-category span per stage name, prints the
//! 7-stage percentage breakdown (the paper's Figures 12–16 pies as bars),
//! and dumps the embedded communication counter totals.

use nektar_repro::nektar::timers::Stage;
use nkt_trace::json::{parse, Value};

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| nkt_trace::results_dir().join("TRACE_quickstart.json"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!(
            "trace_timeline: cannot read {} ({e})\n\
             generate one first: NKT_TRACE=spans cargo run --release --example quickstart",
            path.display()
        );
        std::process::exit(2);
    });
    let doc = parse(&text).unwrap_or_else(|e| {
        eprintln!("trace_timeline: {}: {e}", path.display());
        std::process::exit(2);
    });
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| {
            eprintln!("trace_timeline: {}: no traceEvents array", path.display());
            std::process::exit(2);
        });

    // Sum span durations per stage, split by timeline: pid 0 carries
    // host microseconds, pid 1 carries virtual (model) microseconds.
    let mut host_us = [0.0f64; 7];
    let mut virtual_us = [0.0f64; 7];
    let mut nspans = 0usize;
    for e in events {
        let cat = e.get("cat").and_then(Value::as_str).unwrap_or("");
        if cat != "stage" && cat != "replay" {
            continue;
        }
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        let Some(stage) = Stage::ALL.iter().find(|s| s.name() == name) else { continue };
        let dur = e.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
        let pid = e.get("pid").and_then(Value::as_f64).unwrap_or(0.0);
        if pid == 0.0 {
            host_us[stage.index()] += dur;
        } else {
            virtual_us[stage.index()] += dur;
        }
        nspans += 1;
    }
    if nspans == 0 {
        eprintln!("trace_timeline: {}: no stage spans (was NKT_TRACE=spans set?)", path.display());
        std::process::exit(2);
    }
    println!("{}: {nspans} stage span(s)", path.display());
    for (label, totals) in [("host time", &host_us), ("virtual (model) time", &virtual_us)] {
        let total: f64 = totals.iter().sum();
        if total <= 0.0 {
            continue;
        }
        println!("\nstage breakdown, {label} (total {:.3} ms):", total / 1e3);
        for s in Stage::ALL {
            let pct = 100.0 * totals[s.index()] / total;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("  {} {:<16} {:>5.1}%  {bar}", s.index() + 1, s.name(), pct);
        }
        let solves = 100.0
            * (totals[Stage::PressureSolve.index()] + totals[Stage::ViscousSolve.index()])
            / total;
        println!("  solves (5+7): {solves:.0}% (paper: ~60% of serial CPU time)");
    }

    if let Some(totals) = doc
        .get("metrics")
        .and_then(|m| m.get("counter_totals"))
        .and_then(Value::as_obj)
    {
        if !totals.is_empty() {
            println!("\ncounter totals (all ranks):");
            for (name, v) in totals {
                println!("  {:<24} {}", name, v.as_f64().unwrap_or(0.0));
            }
        }
    }
}
