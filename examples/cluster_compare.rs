//! "Fact or fiction?" in one screen: compare the $10k PC cluster against
//! the 1999 supercomputers on the paper's own axes — BLAS kernel rates,
//! network ping-pong, and the serial application step.
//!
//! ```sh
//! cargo run --release --example cluster_compare
//! ```

use nektar_repro::machine::{machine, Kernel, MachineId};
use nektar_repro::net::{cluster, NetId};

fn main() {
    println!("== Kernel level: modeled BLAS rates (paper Figures 1-6) ==\n");
    let ids = [
        MachineId::Muses,
        MachineId::Sp2Silver,
        MachineId::Sp2Thin2,
        MachineId::P2sc,
        MachineId::Onyx2,
        MachineId::Ap3000,
        MachineId::T3e,
    ];
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "machine", "peak MF/s", "ddot@L1", "daxpy@mem", "dgemm n=10", "dgemm n=500"
    );
    for id in ids {
        let m = machine(id);
        println!(
            "{:<12} {:>10.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            m.name,
            m.peak_mflops(),
            m.kernel_rate(Kernel::Ddot, 128).mflops,
            m.kernel_rate(Kernel::Daxpy, 1 << 20).mflops,
            m.kernel_rate(Kernel::Dgemm, 10).mflops,
            m.kernel_rate(Kernel::Dgemm, 500).mflops,
        );
    }

    println!("\n== Communication level: modeled ping-pong (paper Figure 7) ==\n");
    println!(
        "{:<24} {:>14} {:>16}",
        "network", "latency (us)", "bandwidth (MB/s)"
    );
    for id in [
        NetId::MusesLam,
        NetId::MusesMpich,
        NetId::RoadRunnerEth,
        NetId::RoadRunnerMyr,
        NetId::Sp2Silver,
        NetId::Sp2Thin2,
        NetId::Ap3000,
        NetId::T3e,
    ] {
        let c = cluster(id);
        println!(
            "{:<24} {:>14.0} {:>16.1}",
            c.name,
            c.inter.latency_for(8),
            c.inter.effective_bandwidth_mbs(1 << 22),
        );
    }

    println!("\nThe paper's verdict, reproduced: the PC keeps up at the kernel level");
    println!("(beats several supercomputers on in-cache BLAS-1 and memory-bound");
    println!("kernels), while Fast Ethernet is the weak link — and Myrinet closes");
    println!("most of the gap. \"Fact\", with a networking asterisk.");
}
