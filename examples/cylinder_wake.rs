//! Bluff-body wake DNS — the paper's serial application benchmark
//! (Table 1 / Figure 12) at a laptop-friendly scale.
//!
//! Solves incompressible flow past a square-section bluff body in the
//! Figure 11 (left) domain with laminar unit inflow, and prints the
//! 7-stage timing breakdown of each step.
//!
//! ```sh
//! cargo run --release --example cylinder_wake
//! ```
//!
//! With `NKT_PROF=1` the run is profiled: the serial solver has no MPI
//! traffic, so the report reduces to the per-stage attributed-time
//! table, written to `results/PROF_cylinder_wake.json`.
//!
//! With `NKT_STATS=<n>` the run samples online statistics (KE,
//! enstrophy, divergence, CFL, Reynolds stresses) every n steps and
//! writes a byte-deterministic `results/STATS_cylinder_wake.json`;
//! `NKT_HEALTH=1` arms the watchdog rules on every sample.
//!
//! With `NKT_CALIB=1` the run is calibrated (measured-vs-modeled drift,
//! fitted machine constants) into `results/CALIB_cylinder_wake.json`.

use nektar_repro::nektar::serial2d::{Serial2dSolver, SolverConfig};
use nektar_repro::nektar::stats::{sample_serial2d, SERIAL2D_CHANNELS};
use nektar_repro::nektar::timers::Stage;
use nektar_repro::stats::{RuleLimits, StatsRecorder};

fn main() {
    if nektar_repro::prof::enabled() {
        nektar_repro::prof::prepare();
    }
    if nektar_repro::calib::enabled() {
        nektar_repro::calib::prepare();
    }
    if nektar_repro::prof::enabled() || nektar_repro::calib::enabled() {
        // The serial solver runs on the main thread; tag it as rank 0 so
        // its stage spans land on a profiled timeline.
        nektar_repro::trace::set_thread_meta("serial".to_string(), Some(0));
    }
    let stats_every = nektar_repro::stats::effective_every();
    let health = nektar_repro::stats::health_enabled();
    if stats_every.is_some() {
        nektar_repro::stats::prepare();
    }
    nektar_repro::trace::flight::set_run("cylinder_wake");
    let mesh = nektar_repro::mesh::bluff_body_mesh(1);
    println!(
        "bluff-body domain [-15,25]x[-5,5], {} elements (paper: 902; scale with refine)",
        mesh.nelems()
    );
    let cfg = SolverConfig {
        order: 4,
        dt: 2e-3,
        nu: 0.01, // Re = 100 on the unit body
        scheme_order: 2,
        advect: true,
    };
    let mut solver = Serial2dSolver::new(
        mesh,
        cfg,
        |x| if x[0] < -14.0 { 1.0 } else { 0.0 },
        |_| 0.0,
    );
    solver.set_initial(|_| 1.0, |_| 0.0);
    println!("dofs per velocity component: {}", solver.ndof());

    let mut rec = StatsRecorder::new(SERIAL2D_CHANNELS.to_vec(), stats_every.unwrap_or(0), 1);
    let limits = RuleLimits::default();

    // NKT_CKPT_EVERY=<n> checkpoints every n steps (NKT_CKPT_DIR sets
    // where); on startup the newest valid epoch, if any, is resumed. The
    // stats recorder rides in the same tandem shard, so the series
    // survives a restart bitwise.
    let ckpt = nektar_repro::ckpt::CkptConfig::from_env("cylinder_wake");
    if ckpt.enabled() {
        let mut tandem = nektar_repro::ckpt::TandemMut { main: &mut solver, rider: &mut rec };
        match nektar_repro::ckpt::restore_latest_serial(&ckpt, &mut tandem) {
            Ok(info) => println!("resumed from checkpoint epoch {} (step {})", info.epoch, info.step),
            Err(nektar_repro::ckpt::CkptError::NoValidEpoch { tried, .. }) if tried.is_empty() => {}
            Err(e) => println!("checkpoint restore skipped: {e}"),
        }
    }

    let nsteps = 10;
    for step in (solver.steps() + 1)..=nsteps {
        solver.step();
        if rec.due(step as u64) {
            if let Err(e) =
                sample_serial2d(&mut solver, &mut rec, step as u64, &limits, health)
            {
                println!("{e}");
                std::process::exit(1);
            }
        }
        if ckpt.should(step) {
            let tandem = nektar_repro::ckpt::Tandem { main: &solver, rider: &rec };
            if let Err(e) = nektar_repro::ckpt::write_epoch_serial(&ckpt, step, &tandem) {
                eprintln!("checkpoint write failed: {e}");
            }
        }
        if step % 5 == 0 {
            println!(
                "step {:>3}: E = {:.4}, div = {:.2e}",
                step,
                solver.kinetic_energy(),
                solver.divergence_norm()
            );
        }
    }
    if stats_every.is_some() {
        match rec.write("cylinder_wake") {
            Ok(path) => println!("stats: wrote {}", path.display()),
            Err(e) => eprintln!("stats: cannot write STATS_cylinder_wake.json: {e}"),
        }
    }

    println!("\nper-stage share of CPU time (paper Figure 12):");
    let pct = solver.clock.percentages();
    let labels = [
        "1 modal->quadrature transform",
        "2 nonlinear terms",
        "3 stiffly-stable weighting",
        "4 pressure RHS",
        "5 pressure solve (banded)",
        "6 viscous RHS",
        "7 Helmholtz solves (banded)",
    ];
    for (s, label) in Stage::ALL.iter().zip(labels) {
        println!("  {:<32} {:>5.1}%", label, pct[s.index()]);
    }
    let solves = pct[Stage::PressureSolve.index()] + pct[Stage::ViscousSolve.index()];
    println!(
        "\nmatrix inversions take {solves:.0}% (paper: \"the matrix inversions \
         account for 60% of the total CPU time\")"
    );
    // One drain serves both observers (take_collected empties the
    // collector; see fourier_dns).
    if nektar_repro::prof::enabled() || nektar_repro::calib::enabled() {
        let threads = nektar_repro::trace::take_collected();
        if nektar_repro::prof::enabled() {
            let prof = nektar_repro::prof::Profile::build("cylinder_wake", &threads);
            print!("{}", prof.report());
            match prof.write() {
                Ok(path) => println!("prof: wrote {}", path.display()),
                Err(e) => eprintln!("prof: cannot write PROF_cylinder_wake.json: {e}"),
            }
        }
        nektar_repro::calib::calibrate_and_write("cylinder_wake", &threads);
    }
}
