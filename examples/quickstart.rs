//! Quickstart: solve a Poisson problem with the spectral/hp element
//! method and watch p-refinement converge spectrally.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nektar_repro::mesh::rect_quads;
use nektar_repro::spectral::{HelmholtzProblem, SolveMethod};
use nkt_mesh::BoundaryTag;

fn main() {
    let pi = std::f64::consts::PI;
    let exact = move |x: [f64; 2]| (pi * x[0]).sin() * (pi * x[1]).sin();
    let forcing = move |x: [f64; 2]| 2.0 * pi * pi * exact(x);

    println!("Poisson on [0,1]^2, 3x3 quadrilateral elements, p-refinement");
    println!("{:>6} {:>10} {:>14} {:>12}", "order", "dofs", "L2 error", "bandwidth");
    for order in [2, 3, 4, 5, 6, 7, 8] {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
        let mut prob = HelmholtzProblem::new(
            mesh,
            order,
            0.0,
            &[
                BoundaryTag::Wall,
                BoundaryTag::Inflow,
                BoundaryTag::Outflow,
                BoundaryTag::Side,
            ],
        );
        let (u, stats) = prob.solve(forcing, |_| 0.0, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        println!(
            "{:>6} {:>10} {:>14.3e} {:>12}",
            order,
            prob.asm.ndof,
            err,
            stats.bandwidth
        );
    }
    println!();
    println!("Each +1 in polynomial order multiplies accuracy — no remeshing");
    println!("(paper S1.3: \"convergence ... can be obtained without remeshing\").");
}
