//! Quickstart: solve a Poisson problem with the spectral/hp element
//! method and watch p-refinement converge spectrally, then run a few
//! Navier-Stokes time steps with the stage instrumentation on.
//!
//! ```sh
//! cargo run --release --example quickstart
//! NKT_TRACE=spans cargo run --release --example quickstart   # + Perfetto trace
//! ```
//!
//! With `NKT_TRACE=spans` the stepping loop exports
//! `results/TRACE_quickstart.json` (load it at <https://ui.perfetto.dev>)
//! and self-checks that the per-stage span totals in the exported file
//! agree with the solver's own `StageClock` ledger within 1%.

use nektar_repro::mesh::rect_quads;
use nektar_repro::nektar::serial2d::{Serial2dSolver, SolverConfig};
use nektar_repro::nektar::timers::Stage;
use nektar_repro::spectral::{HelmholtzProblem, SolveMethod};
use nkt_mesh::BoundaryTag;
use nkt_trace::json::{parse, Value};

fn main() {
    poisson_refinement();
    traced_stepping();
}

fn poisson_refinement() {
    let pi = std::f64::consts::PI;
    let exact = move |x: [f64; 2]| (pi * x[0]).sin() * (pi * x[1]).sin();
    let forcing = move |x: [f64; 2]| 2.0 * pi * pi * exact(x);

    println!("Poisson on [0,1]^2, 3x3 quadrilateral elements, p-refinement");
    println!("{:>6} {:>10} {:>14} {:>12}", "order", "dofs", "L2 error", "bandwidth");
    for order in [2, 3, 4, 5, 6, 7, 8] {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
        let mut prob = HelmholtzProblem::new(
            mesh,
            order,
            0.0,
            &[
                BoundaryTag::Wall,
                BoundaryTag::Inflow,
                BoundaryTag::Outflow,
                BoundaryTag::Side,
            ],
        );
        let (u, stats) = prob.solve(forcing, |_| 0.0, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        println!(
            "{:>6} {:>10} {:>14.3e} {:>12}",
            order,
            prob.asm.ndof,
            err,
            stats.bandwidth
        );
    }
    println!();
    println!("Each +1 in polynomial order multiplies accuracy — no remeshing");
    println!("(paper S1.3: \"convergence ... can be obtained without remeshing\").");
}

/// A short bluff-body stepping run with the 7-stage instrumentation on.
fn traced_stepping() {
    let mesh = nektar_repro::mesh::bluff_body_mesh(1);
    let cfg = SolverConfig { order: 3, dt: 2e-3, nu: 0.01, scheme_order: 2, advect: true };
    let mut solver =
        Serial2dSolver::new(mesh, cfg, |x| if x[0] < -14.0 { 1.0 } else { 0.0 }, |_| 0.0);
    solver.set_initial(|_| 1.0, |_| 0.0);

    println!("\nNavier-Stokes stepping (bluff-body domain, order 3):");
    let nsteps = 5;
    for _ in 0..nsteps {
        solver.step();
    }
    let pct = solver.clock.percentages();
    for s in Stage::ALL {
        println!("  {:<16} {:>5.1}%", s.name(), pct[s.index()]);
    }

    if nkt_trace::mode() != nkt_trace::TraceMode::Spans {
        println!("\n(set NKT_TRACE=spans to export a Perfetto timeline of those steps)");
        return;
    }
    match nkt_trace::export("quickstart") {
        // NKT_TRACE=summary: the digest was printed, no file to check.
        None => assert!(nkt_trace::summary_enabled(), "spans mode exports"),
        Some(path) => verify_trace_matches_clock(&path, &solver.clock.totals),
    }
}

/// Reads the exported trace back and checks each stage's summed span
/// duration against the StageClock ledger (within 1%: both sides of a
/// `StageTimer` measure the same interval).
fn verify_trace_matches_clock(path: &std::path::Path, ledger: &[f64; 7]) {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    let doc = parse(&text).expect("trace file is valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");

    let mut span_secs = [0.0f64; 7];
    for e in events {
        if e.get("cat").and_then(Value::as_str) != Some("stage") {
            continue;
        }
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        if let Some(s) = Stage::ALL.iter().find(|s| s.name() == name) {
            span_secs[s.index()] +=
                e.get("dur").and_then(Value::as_f64).unwrap_or(0.0) / 1e6;
        }
    }

    println!("\ntrace vs ledger (per-stage seconds):");
    let mut worst = 0.0f64;
    for s in Stage::ALL {
        let (sp, cl) = (span_secs[s.index()], ledger[s.index()]);
        // 1% relative, with a 50 µs absolute guard for near-empty stages
        // (the two Instant reads inside StageTimer are not the same read).
        let rel = if cl > 0.0 { (sp - cl).abs() / cl } else { 0.0 };
        let ok = rel < 0.01 || (sp - cl).abs() < 50e-6;
        println!(
            "  {:<16} spans {:>10.6} ledger {:>10.6} ({:>5.2}% off){}",
            s.name(),
            sp,
            cl,
            100.0 * rel,
            if ok { "" } else { "  MISMATCH" }
        );
        assert!(ok, "stage {} trace/ledger mismatch: {sp} vs {cl}", s.name());
        worst = worst.max(rel);
    }
    println!("trace self-check: OK (worst stage off by {:.3}%)", 100.0 * worst);
}
