//! Kill-and-restart drill for the coordinated checkpoint subsystem
//! (`nkt-ckpt`): runs the Fourier-parallel DNS, murders it mid-flight
//! with an injected panic, restores from the newest checkpoint epoch and
//! verifies — hash by hash — that the restarted run is **bitwise
//! identical** to one that was never interrupted. Then it corrupts a
//! shard on disk and shows the CRC catching it and the restore falling
//! back to the previous epoch.
//!
//! ```sh
//! cargo run --release --example restart_dns
//! # optional: NKT_CKPT_DIR=/somewhere NKT_CKPT_EVERY=2
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use nektar_repro::ckpt::{Checkpointable, CkptConfig};
use nektar_repro::mesh::rect_quads;
use nektar_repro::mpi::prelude::*;
use nektar_repro::nektar::fourier::{FourierConfig, NektarF};
use nektar_repro::net::{cluster, NetId};

fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
    p: usize,
    net: nektar_repro::net::ClusterNetwork,
    f: F,
) -> Vec<R> {
    World::from_env().ranks(p).net(net).run(f)
}

const P: usize = 2;
const NSTEPS: usize = 6;
const KILL_AT: usize = 5;

fn cfg() -> FourierConfig {
    FourierConfig {
        order: 4,
        dt: 1e-3,
        nu: 0.02,
        nz: 8,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    }
}

fn init(x: [f64; 3]) -> [f64; 3] {
    let pi = std::f64::consts::PI;
    let (sx, cx) = (pi * x[0]).sin_cos();
    let (sy, cy) = (pi * x[1]).sin_cos();
    [
        2.0 * pi * sx * sx * sy * cy * (1.0 + 0.3 * x[2].cos()),
        -2.0 * pi * sx * cx * sy * sy * (1.0 + 0.3 * x[2].cos()),
        0.0,
    ]
}

fn fresh_solver(c: &mut nektar_repro::mpi::Comm) -> NektarF {
    let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
    let mut s = NektarF::new(c, &mesh, cfg());
    s.set_initial(init);
    s
}

/// Per-rank record of one run: (step, state hash) after every step, plus
/// the final kinetic energy bits.
type RankLog = (Vec<(usize, u64)>, u64);

/// Uninterrupted reference: step 1..=NSTEPS, hash after each.
fn reference_run() -> Vec<RankLog> {
    run(P, cluster(NetId::RoadRunnerMyr), |c| {
        let mut s = fresh_solver(c);
        let mut hashes = Vec::new();
        for step in 1..=NSTEPS {
            s.step(c);
            hashes.push((step, s.state_hash()));
        }
        (hashes, s.kinetic_energy(c).to_bits())
    })
}

/// Interrupted run: checkpoints on the configured cadence, rank 1 panics
/// after step KILL_AT. Returns the panic payload message.
fn interrupted_run(ckpt: CkptConfig) -> String {
    let prev_hook = std::panic::take_hook();
    // The injected panic (and the peer ranks it poisons) would spray
    // backtraces over the demo output; silence the hook for this phase.
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| {
        run(P, cluster(NetId::RoadRunnerMyr), move |c| {
            let mut s = fresh_solver(c);
            for step in 1..=NSTEPS {
                s.step(c);
                if ckpt.should(step) {
                    nektar_repro::ckpt::write_epoch(c, &ckpt, step, &s)
                        .expect("checkpoint write");
                }
                if step == KILL_AT && c.rank() == 1 {
                    panic!("injected node failure at step {step}");
                }
            }
        })
    }));
    std::panic::set_hook(prev_hook);
    let payload = result.expect_err("the injected panic must abort the run");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

/// Restore from the newest valid epoch and continue to NSTEPS, hashing
/// each step.
fn restored_run(ckpt: CkptConfig) -> Vec<(RankLog, u64, bool)> {
    run(P, cluster(NetId::RoadRunnerMyr), move |c| {
        let mut s = fresh_solver(c);
        let info = nektar_repro::ckpt::restore_latest(c, &ckpt, &mut s)
            .expect("restore from checkpoint");
        let mut hashes = vec![(info.step as usize, s.state_hash())];
        for step in (info.step as usize + 1)..=NSTEPS {
            s.step(c);
            hashes.push((step, s.state_hash()));
        }
        ((hashes, s.kinetic_energy(c).to_bits()), info.epoch, info.fell_back)
    })
}

/// Asserts that every (step, hash) pair the restarted run produced
/// matches the reference run's pair for the same step, on every rank.
/// (The restore-point hash itself is checked too: index 0 of the
/// restarted log is the state as read back from disk.)
fn check_against_reference(reference: &[RankLog], restarted: &[(RankLog, u64, bool)]) {
    for (rank, ((hashes, energy), _, _)) in restarted.iter().enumerate() {
        let (ref_hashes, ref_energy) = &reference[rank];
        for &(step, h) in hashes {
            let &(_, ref_h) = ref_hashes
                .iter()
                .find(|(s, _)| *s == step)
                .expect("reference covers every step");
            assert_eq!(
                h, ref_h,
                "rank {rank} step {step}: restarted hash {h:#018x} != reference {ref_h:#018x}"
            );
        }
        assert_eq!(energy, ref_energy, "rank {rank}: final kinetic energy bits differ");
    }
}

fn main() {
    let every = std::env::var("NKT_CKPT_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize);
    let dir = std::env::var("NKT_CKPT_DIR").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        std::env::temp_dir().join(format!("nkt_restart_dns_{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let write_cfg = CkptConfig::new(&dir, "restart_dns", Some(every));
    let read_cfg = CkptConfig::new(&dir, "restart_dns", None);

    println!("== restart_dns: {P} ranks, {NSTEPS} steps, checkpoint every {every} ==");
    println!("   checkpoint dir: {}", dir.display());

    println!("\n[1/4] uninterrupted reference run");
    let reference = reference_run();

    println!("[2/4] interrupted run: rank 1 dies after step {KILL_AT}");
    let msg = interrupted_run(write_cfg.clone());
    println!("      run aborted as intended: {msg}");

    println!("[3/4] restore + continue");
    let restarted = restored_run(read_cfg.clone());
    let epoch = restarted[0].1;
    assert!(!restarted[0].2, "newest epoch must be valid before corruption");
    check_against_reference(&reference, &restarted);
    println!(
        "      resumed from epoch {epoch}, steps {}..{NSTEPS} bitwise-identical to reference",
        epoch + 1
    );

    println!("[4/4] corruption drill: bit-flip rank 1's epoch-{epoch} shard");
    let victim = write_cfg.shard_path(epoch, 1);
    let mut bytes = std::fs::read(&victim).expect("read victim shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes).expect("rewrite victim shard");
    let fallback = restored_run(read_cfg);
    let fb_epoch = fallback[0].1;
    assert!(fallback[0].2, "restore must report falling back past the corrupt epoch");
    assert!(fb_epoch < epoch, "fallback epoch {fb_epoch} must predate corrupt epoch {epoch}");
    check_against_reference(&reference, &fallback);
    println!(
        "      CRC caught the corruption; fell back to epoch {fb_epoch}, \
         steps {}..{NSTEPS} still bitwise-identical",
        fb_epoch + 1
    );

    println!("\nall checks passed: kill → restore → bitwise-identical continuation");
    std::fs::remove_dir_all(&dir).ok();
}
