//! Cross-crate integration tests: exercise the full stack (mesh →
//! partition → spectral → solvers → models) the way the examples and the
//! experiment harness do.

use nektar_repro::machine::{machine, Kernel, MachineId};
use nektar_repro::mesh::{bluff_body_mesh, rect_quads, wing_box_mesh};
use nektar_repro::mpi::prelude::*;
use nektar_repro::nektar::fourier::{FourierConfig, NektarF};
use nektar_repro::nektar::serial2d::{Serial2dSolver, SolverConfig};
use nektar_repro::nektar::timers::Stage;
use nektar_repro::net::{cluster, NetId};
use nektar_repro::partition::{edge_cut, imbalance, partition_kway, Graph, PartitionOptions};
use nektar_repro::spectral::{HelmholtzProblem, SolveMethod};
use nkt_mesh::BoundaryTag;

fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
    p: usize,
    net: nektar_repro::net::ClusterNetwork,
    f: F,
) -> Vec<R> {
    World::from_env().ranks(p).net(net).run(f)
}

/// Mesh generator → partitioner → balanced distribution with modest cut.
#[test]
fn mesh_to_partition_pipeline() {
    let mesh = bluff_body_mesh(2);
    let g = Graph::from_edges(mesh.nelems(), &mesh.dual_edges());
    for p in [2usize, 4, 8] {
        let part = partition_kway(&g, p, &PartitionOptions::default());
        assert!(imbalance(&g, &part, p) < 1.3, "P={p}");
        let cut = edge_cut(&g, &part);
        // A 2-D mesh of E elements has cut O(sqrt(E) * parts).
        let bound = 4 * p as i64 * (mesh.nelems() as f64).sqrt() as i64;
        assert!(cut < bound, "P={p}: cut {cut} vs bound {bound}");
    }
}

/// Spectral solver on the actual paper-domain mesh (with the body hole).
#[test]
fn poisson_on_bluff_body_mesh() {
    let mesh = bluff_body_mesh(1);
    let exact = |x: [f64; 2]| 1.0 + 0.01 * x[0] - 0.02 * x[1];
    let mut prob = HelmholtzProblem::new(
        mesh,
        3,
        0.0,
        &[
            BoundaryTag::Wall,
            BoundaryTag::Inflow,
            BoundaryTag::Outflow,
            BoundaryTag::Side,
        ],
    );
    let (u, _) = prob.solve(|_| 0.0, exact, SolveMethod::BandedDirect);
    let err = prob.l2_error(&u, exact);
    // Linear solutions are exact; mesh area is ~399, so scale tolerance.
    assert!(err < 1e-8, "harmonic reproduction error {err}");
}

/// Serial solver on the bluff-body mesh: the physical setup of Table 1.
#[test]
fn bluff_body_wake_develops() {
    let mesh = bluff_body_mesh(1);
    let cfg = SolverConfig { order: 3, dt: 5e-3, nu: 0.02, scheme_order: 2, advect: true };
    let mut s = Serial2dSolver::new(
        mesh,
        cfg,
        |x| if x[0] < -14.0 { 1.0 } else { 0.0 },
        |_| 0.0,
    );
    s.set_initial(|_| 1.0, |_| 0.0);
    for _ in 0..8 {
        s.step();
    }
    // The flow must stay bounded and the body must have created vorticity
    // (nonzero v component somewhere).
    let e = s.kinetic_energy();
    assert!(e.is_finite() && e > 0.0);
    let vmax = s.v.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
    assert!(vmax > 1e-8, "wake never deflected the flow (v = 0)");
    // Solve stages dominate, as in Figure 12.
    let pct = s.clock.percentages();
    assert!(pct[Stage::PressureSolve.index()] + pct[Stage::ViscousSolve.index()] > 25.0);
}

/// NekTar-F across two different modeled networks gives bit-identical
/// physics but different virtual times.
#[test]
fn network_changes_time_not_physics() {
    let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
    let cfg = FourierConfig {
        order: 3,
        dt: 1e-3,
        nu: 0.05,
        nz: 8,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    };
    let init = |x: [f64; 3]| {
        let pi = std::f64::consts::PI;
        let (sx, cx) = (pi * x[0]).sin_cos();
        let (sy, cy) = (pi * x[1]).sin_cos();
        [
            2.0 * pi * sx * sx * sy * cy * x[2].cos(),
            -2.0 * pi * sx * cx * sy * sy * x[2].cos(),
            0.0,
        ]
    };
    let run_on = |nid: NetId| {
        let mesh = mesh.clone();
        let cfg = cfg.clone();
        let out = run(4, cluster(nid), move |c| {
            let mut s = NektarF::new(c, &mesh, cfg.clone());
            s.set_initial(init);
            for _ in 0..2 {
                s.step(c);
            }
            (s.kinetic_energy(c), c.wtime())
        });
        out[0]
    };
    let (e_eth, t_eth) = run_on(NetId::RoadRunnerEth);
    let (e_myr, t_myr) = run_on(NetId::RoadRunnerMyr);
    assert!((e_eth - e_myr).abs() < 1e-12 * (1.0 + e_eth), "physics must not depend on the network");
    assert!(t_eth > 2.0 * t_myr, "ethernet {t_eth} should be much slower than myrinet {t_myr}");
}

/// The machine models honour the paper's §3.3 kernel-level conclusion.
#[test]
fn kernel_conclusions_hold() {
    let pc = machine(MachineId::Muses);
    // "the T3E and SP2-P2SC machines are superior to the PC clusters".
    for id in [MachineId::T3e, MachineId::P2sc] {
        let sc = machine(id);
        assert!(
            sc.kernel_rate(Kernel::Dgemm, 256).mflops > pc.kernel_rate(Kernel::Dgemm, 256).mflops,
            "{}",
            sc.name
        );
    }
    // "with the rapid improvement of PC CPUs, the difference is likely to
    // quickly narrow" — the PC is not the slowest of the field.
    let slower_exists = [MachineId::Sp2Silver, MachineId::Onyx2]
        .iter()
        .any(|&id| {
            machine(id).kernel_rate(Kernel::Ddot, 512).mflops
                < pc.kernel_rate(Kernel::Ddot, 512).mflops
        });
    assert!(slower_exists);
}

/// Wing mesh → partition → distributed 3-D Poisson through the public API.
#[test]
fn wing_mesh_parallel_poisson() {
    use nektar_repro::nektar::hex3d::{HexHelmholtz, HexNumbering};
    use nkt_mpi::ReduceOp;
    let mesh = wing_box_mesh(1);
    let order = 2;
    let tags = [
        BoundaryTag::Inflow,
        BoundaryTag::Outflow,
        BoundaryTag::Side,
        BoundaryTag::Wall,
    ];
    let numbering = HexNumbering::build(&mesh, order, &tags);
    let g = Graph::from_edges(mesh.nelems(), &mesh.dual_edges());
    let part = partition_kway(&g, 2, &PartitionOptions::default());
    let out = run(2, cluster(NetId::T3e), |c| {
        let h = HexHelmholtz::new(c, &mesh, &numbering, &part, 1.0);
        let mut rec = nektar_repro::nektar::opstream::Recorder::disabled();
        // Solve (−∇² + 1)u = 1 with u = 0 on the boundary: u is bounded by
        // the max principle (0 ≤ u < 1).
        let mut b = vec![0.0; h.nlocal()];
        // RHS ∫ 1·φ: vertex modes integrate to positive values.
        for (le, locals) in h.elem_local.iter().enumerate() {
            let [hx, hy, hz] = h.scales[le];
            let vol = hx * hy * hz;
            let nm1 = h.p + 1;
            for (m, &l) in locals.iter().enumerate() {
                let (i, j, k) = (m % nm1, (m / nm1) % nm1, m / (nm1 * nm1));
                let w1 = |idx: usize| {
                    let op = &h.op1;
                    let mut s = 0.0;
                    for q in 0..op.basis.nquad() {
                        s += op.basis.w[q] * op.basis.val[idx][q];
                    }
                    s / 2.0
                };
                b[l] += vol * w1(i) * w1(j) * w1(k);
            }
        }
        h.gs.exchange(c, &mut b, ReduceOp::Sum);
        let mut x = vec![0.0; h.nlocal()];
        let iters = h.pcg(c, &b, &mut x, 1e-8, 2000, &mut rec);
        // Max principle check on vertex dofs only (vertex modes are
        // interpolatory; bubble coefficients are not point values).
        let nm1 = h.p + 1;
        let mut umax = f64::MIN;
        let mut umin = f64::MAX;
        for locals in &h.elem_local {
            for (m, &l) in locals.iter().enumerate() {
                let (i, j, k) = (m % nm1, (m / nm1) % nm1, m / (nm1 * nm1));
                let vert = (i == 0 || i == h.p) && (j == 0 || j == h.p) && (k == 0 || k == h.p);
                if vert {
                    umax = umax.max(x[l]);
                    umin = umin.min(x[l]);
                }
            }
        }
        (iters, umin, umax)
    });
    for &(iters, umin, umax) in &out {
        assert!(iters < 2000, "PCG did not converge");
        assert!(umax > 0.0 && umax < 1.0, "max principle violated: {umax}");
        assert!(umin > -0.2, "large undershoot: {umin}");
    }
}
