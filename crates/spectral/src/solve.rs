//! Global Helmholtz / Poisson solver on a 2-D spectral/hp mesh.
//!
//! Weak form: find u with u = g on Γ_D such that
//! ∫ ∇u·∇v + λ∫ u v = ∫ f v for all v vanishing on Γ_D (Neumann
//! boundaries are natural). λ = 0 gives the pressure Poisson equation of
//! the splitting scheme; λ > 0 the viscous Helmholtz step.

use crate::assembly::Assembly;
use crate::element::{elem_geometry, ElemOps, ElementMatrices, Expansion};
use crate::pcg::{pcg, PcgResult};
use crate::quadbasis::QuadBasis;
use crate::tribasis::TriBasis;
use nkt_blas::{dpbtrf, dpbtrs, BandedSym};
use nkt_mesh::{BoundaryTag, ElemKind, Mesh2d};
use nkt_poly::quadrature::zwglj;

/// Linear solver choice (the paper uses both: banded direct for the
/// serial/Fourier code, diagonal PCG for ALE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveMethod {
    /// Banded symmetric Cholesky (`dpbtrf`/`dpbtrs`).
    BandedDirect,
    /// Diagonally preconditioned conjugate gradients.
    Pcg {
        /// Relative residual tolerance.
        tol: f64,
        /// Iteration cap.
        max_iter: usize,
    },
}

/// Statistics from a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Free (non-Dirichlet) dofs.
    pub nfree: usize,
    /// Semi-bandwidth of the assembled system.
    pub bandwidth: usize,
    /// PCG iterations (0 for the direct path).
    pub iterations: usize,
}

/// An assembled Helmholtz problem on a mesh (geometry/matrices cached;
/// many right-hand sides can be solved against one factorization).
pub struct HelmholtzProblem {
    /// The mesh.
    pub mesh: Mesh2d,
    /// Polynomial order.
    pub order: usize,
    /// Helmholtz constant λ (0 = Poisson).
    pub lambda: f64,
    quad_basis: Option<QuadBasis>,
    tri_basis: Option<TriBasis>,
    /// Global dof map.
    pub asm: Assembly,
    /// Per-element operators.
    pub ops: Vec<ElemOps>,
    /// Assembled global matrix (with Dirichlet rows replaced by identity).
    pub matrix: BandedSym,
    /// Cholesky factor (filled on first direct solve).
    factor: Option<BandedSym>,
    /// Factored global mass matrix (filled on first L2 projection).
    mass_factor: Option<BandedSym>,
    dirichlet_tags: Vec<BoundaryTag>,
}

impl HelmholtzProblem {
    /// Builds and assembles the problem. `dirichlet_tags` lists the
    /// essential boundary tags; all other boundaries are natural
    /// (zero-flux Neumann — the paper's outflow/sides).
    pub fn new(mesh: Mesh2d, order: usize, lambda: f64, dirichlet_tags: &[BoundaryTag]) -> Self {
        let has_quad = mesh.elems.iter().any(|e| e.kind == ElemKind::Quad);
        let has_tri = mesh.elems.iter().any(|e| e.kind == ElemKind::Tri);
        let quad_basis = has_quad.then(|| QuadBasis::new(order));
        let tri_basis = has_tri.then(|| TriBasis::new(order));
        let basis_of = |kind: ElemKind| -> &dyn Expansion {
            match kind {
                ElemKind::Quad => quad_basis.as_ref().expect("quad basis built"),
                ElemKind::Tri => tri_basis.as_ref().expect("tri basis built"),
                ElemKind::Hex => panic!("2-D solver on hex mesh"),
            }
        };
        let asm = Assembly::build(
            &mesh,
            |ei| basis_of(mesh.elems[ei].kind),
            |tag| dirichlet_tags.contains(&tag),
        );
        let mut ops = Vec::with_capacity(mesh.nelems());
        for ei in 0..mesh.nelems() {
            let basis = basis_of(mesh.elems[ei].kind);
            let geom = elem_geometry(basis, &mesh, ei);
            let mats = ElementMatrices::build(basis, &geom);
            let basis_id = match mesh.elems[ei].kind {
                ElemKind::Quad => 0,
                ElemKind::Tri => 1,
                ElemKind::Hex => unreachable!(),
            };
            ops.push(ElemOps { basis_id, geom, mats });
        }
        // Assemble the global Helmholtz matrix into banded storage.
        let kd = asm.bandwidth();
        let mut matrix = BandedSym::zeros(asm.ndof, kd);
        for ei in 0..mesh.nelems() {
            let h = ops[ei].mats.helmholtz(lambda);
            let nm = ops[ei].mats.nm;
            let dofs = &asm.elem_dofs[ei];
            for a in 0..nm {
                let (ga, sa) = dofs[a];
                for b in a..nm {
                    let (gb, sb) = dofs[b];
                    let v = sa * sb * h[a + b * nm];
                    // Off-diagonal elemental pairs contribute to both
                    // (a,b) and (b,a); symmetric storage holds one copy,
                    // which is exactly the (min,max) entry added here.
                    matrix.add(ga.min(gb), ga.max(gb), v);
                }
            }
        }
        // Replace Dirichlet rows/cols with identity (done lazily per solve
        // for the RHS; the matrix modification happens once here).
        let ndof = asm.ndof;
        for d in 0..ndof {
            if !asm.dirichlet[d] {
                continue;
            }
            let lo = d.saturating_sub(kd);
            let hi = (d + kd).min(ndof - 1);
            for i in lo..=hi {
                if i != d {
                    matrix.set(i.min(d), i.max(d), 0.0);
                }
            }
            matrix.set(d, d, 1.0);
        }
        HelmholtzProblem {
            mesh,
            order,
            lambda,
            quad_basis,
            tri_basis,
            asm,
            ops,
            matrix,
            factor: None,
            mass_factor: None,
            dirichlet_tags: dirichlet_tags.to_vec(),
        }
    }

    /// The expansion basis for element `ei`.
    pub fn basis(&self, ei: usize) -> &dyn Expansion {
        match self.mesh.elems[ei].kind {
            ElemKind::Quad => self.quad_basis.as_ref().expect("quad basis"),
            ElemKind::Tri => self.tri_basis.as_ref().expect("tri basis"),
            ElemKind::Hex => unreachable!(),
        }
    }

    /// Builds the global load vector ∫ f φ + Dirichlet lift for boundary
    /// data `g`, then solves. Returns (global coefficients, stats).
    pub fn solve(
        &mut self,
        f: impl Fn([f64; 2]) -> f64,
        g: impl Fn([f64; 2]) -> f64,
        method: SolveMethod,
    ) -> (Vec<f64>, SolveStats) {
        let mut rhs = vec![0.0; self.asm.ndof];
        for ei in 0..self.mesh.nelems() {
            let basis = self.basis(ei);
            let geom = &self.ops[ei].geom;
            let nm = basis.nmodes();
            let mut local = vec![0.0; nm];
            for (m, lm) in local.iter_mut().enumerate() {
                let vm = &basis.val()[m];
                let mut s = 0.0;
                for q in 0..basis.nquad() {
                    s += geom.jw[q] * f(geom.x[q]) * vm[q];
                }
                *lm = s;
            }
            self.asm.scatter_add(ei, &local, &mut rhs);
        }
        let u_d = self.dirichlet_values(&g);
        self.solve_with_rhs(rhs, &u_d, method)
    }

    /// Computes the Dirichlet dof values: vertex dofs take g directly;
    /// edge-mode dofs take the 1-D L2 projection of the residual along
    /// each essential edge.
    pub fn dirichlet_values(&self, g: &impl Fn([f64; 2]) -> f64) -> Vec<f64> {
        let modes_per_edge = self.order.saturating_sub(1);
        let edge_base = self.mesh.nverts();
        let mut u_d = vec![0.0; self.asm.ndof];
        let rule = zwglj(self.order + 3, 0.0, 0.0);
        for (edge_id, edge) in self.mesh.edges.iter().enumerate() {
            let Some(tag) = edge.tag else { continue };
            if !self.dirichlet_tags.contains(&tag) {
                continue;
            }
            let a = self.mesh.verts[edge.v[0]];
            let b = self.mesh.verts[edge.v[1]];
            let ga = g(a);
            let gb = g(b);
            u_d[edge.v[0]] = ga;
            u_d[edge.v[1]] = gb;
            if modes_per_edge == 0 {
                continue;
            }
            // Project the non-linear residual onto the bubble modes.
            let nb = modes_per_edge;
            let mut mass = vec![0.0; nb * nb];
            let mut load = vec![0.0; nb];
            for (q, &t) in rule.z.iter().enumerate() {
                let x = [
                    0.5 * (1.0 - t) * a[0] + 0.5 * (1.0 + t) * b[0],
                    0.5 * (1.0 - t) * a[1] + 0.5 * (1.0 + t) * b[1],
                ];
                let lin = 0.5 * (1.0 - t) * ga + 0.5 * (1.0 + t) * gb;
                let resid = g(x) - lin;
                let w = rule.w[q];
                let vals: Vec<f64> = (1..=nb)
                    .map(|k| crate::basis1d::eval_mode(self.order, k, t))
                    .collect();
                for i in 0..nb {
                    load[i] += w * vals[i] * resid;
                    for j in 0..nb {
                        mass[i + j * nb] += w * vals[i] * vals[j];
                    }
                }
            }
            nkt_blas::dpotrf(nb, &mut mass, nb).expect("edge mass SPD");
            nkt_blas::dpotrs(nb, &mass, nb, &mut load).expect("edge projection");
            for (k, &c) in load.iter().enumerate() {
                u_d[edge_base + edge_id * modes_per_edge + k] = c;
            }
        }
        u_d
    }

    /// Solves K u = rhs with Dirichlet values `u_d` imposed.
    pub fn solve_with_rhs(
        &mut self,
        mut rhs: Vec<f64>,
        u_d: &[f64],
        method: SolveMethod,
    ) -> (Vec<f64>, SolveStats) {
        let ndof = self.asm.ndof;
        let kd = self.matrix.kd();
        // Move known boundary data to the RHS: rhs_f -= K_fd u_d. The
        // assembled matrix already has Dirichlet rows/cols identity, so we
        // rebuild the coupling from elemental matrices.
        for ei in 0..self.mesh.nelems() {
            let h = self.ops[ei].mats.helmholtz(self.lambda);
            let nm = self.ops[ei].mats.nm;
            let dofs = &self.asm.elem_dofs[ei];
            for a in 0..nm {
                let (ga, sa) = dofs[a];
                if self.asm.dirichlet[ga] {
                    continue;
                }
                let mut corr = 0.0;
                for b in 0..nm {
                    let (gb, sb) = dofs[b];
                    if self.asm.dirichlet[gb] {
                        corr += sa * sb * h[a + b * nm] * u_d[gb];
                    }
                }
                rhs[ga] -= corr;
            }
        }
        for d in 0..ndof {
            if self.asm.dirichlet[d] {
                rhs[d] = u_d[d];
            }
        }
        let iterations = match method {
            SolveMethod::BandedDirect => {
                if self.factor.is_none() {
                    let mut f = self.matrix.clone();
                    dpbtrf(&mut f).expect("global Helmholtz matrix must be SPD");
                    self.factor = Some(f);
                }
                dpbtrs(self.factor.as_ref().expect("factored above"), &mut rhs)
                    .expect("banded solve");
                0
            }
            SolveMethod::Pcg { tol, max_iter } => {
                let m = &self.matrix;
                let diag: Vec<f64> = (0..ndof).map(|i| m.get(i, i)).collect();
                let mut x = vec![0.0; ndof];
                // Seed the constrained entries so identity rows are exact.
                for d in 0..ndof {
                    if self.asm.dirichlet[d] {
                        x[d] = rhs[d];
                    }
                }
                let b = rhs.clone();
                let res: PcgResult = pcg(
                    |p, out| m.matvec(p, out),
                    &diag,
                    &b,
                    &mut x,
                    tol,
                    max_iter,
                );
                assert!(res.converged, "PCG failed to converge: {res:?}");
                rhs = x;
                res.iterations
            }
        };
        let nfree = ndof - self.asm.ndirichlet();
        (rhs, SolveStats { nfree, bandwidth: kd, iterations })
    }

    /// Pins dof `d` to a Dirichlet value (used to remove the null space of
    /// the pure-Neumann pressure Poisson problem). Must be called before
    /// the first solve.
    pub fn pin_dof(&mut self, d: usize) {
        assert!(d < self.asm.ndof);
        if self.asm.dirichlet[d] {
            return;
        }
        self.asm.dirichlet[d] = true;
        let kd = self.matrix.kd();
        let ndof = self.asm.ndof;
        let lo = d.saturating_sub(kd);
        let hi = (d + kd).min(ndof - 1);
        for i in lo..=hi {
            if i != d {
                self.matrix.set(i.min(d), i.max(d), 0.0);
            }
        }
        self.matrix.set(d, d, 1.0);
        self.factor = None;
    }

    /// Global L2 projection of `f` onto the expansion: solves M c = ∫ f φ
    /// with the assembled (unconstrained) mass matrix.
    pub fn l2_project(&mut self, f: impl Fn([f64; 2]) -> f64) -> Vec<f64> {
        if self.mass_factor.is_none() {
            let kd = self.asm.bandwidth();
            let mut m = BandedSym::zeros(self.asm.ndof, kd);
            for ei in 0..self.mesh.nelems() {
                let mats = &self.ops[ei].mats;
                let nm = mats.nm;
                let dofs = &self.asm.elem_dofs[ei];
                for a in 0..nm {
                    let (ga, sa) = dofs[a];
                    for b in a..nm {
                        let (gb, sb) = dofs[b];
                        let v = sa * sb * mats.mass[a + b * nm];
                        m.add(ga.min(gb), ga.max(gb), v);
                    }
                }
            }
            dpbtrf(&mut m).expect("global mass matrix must be SPD");
            self.mass_factor = Some(m);
        }
        let mut rhs = vec![0.0; self.asm.ndof];
        for ei in 0..self.mesh.nelems() {
            let basis = self.basis(ei);
            let geom = &self.ops[ei].geom;
            let mut local = vec![0.0; basis.nmodes()];
            for (m, lm) in local.iter_mut().enumerate() {
                let vm = &basis.val()[m];
                let mut s = 0.0;
                for q in 0..basis.nquad() {
                    s += geom.jw[q] * f(geom.x[q]) * vm[q];
                }
                *lm = s;
            }
            self.asm.scatter_add(ei, &local, &mut rhs);
        }
        dpbtrs(self.mass_factor.as_ref().expect("factored above"), &mut rhs)
            .expect("mass solve");
        rhs
    }

    /// L2 error of a coefficient vector against an exact solution.
    pub fn l2_error(&self, coeffs: &[f64], exact: impl Fn([f64; 2]) -> f64) -> f64 {
        let mut err2 = 0.0;
        for ei in 0..self.mesh.nelems() {
            let basis = self.basis(ei);
            let geom = &self.ops[ei].geom;
            let mut local = vec![0.0; basis.nmodes()];
            self.asm.gather(ei, coeffs, &mut local);
            for q in 0..basis.nquad() {
                let mut u = 0.0;
                for (m, &c) in local.iter().enumerate() {
                    u += c * basis.val()[m][q];
                }
                let d = u - exact(geom.x[q]);
                err2 += geom.jw[q] * d * d;
            }
        }
        err2.sqrt()
    }

    /// Evaluates the solution at every quadrature point of every element;
    /// returns per-element vectors.
    pub fn eval_at_quadrature(&self, coeffs: &[f64]) -> Vec<Vec<f64>> {
        (0..self.mesh.nelems())
            .map(|ei| {
                let basis = self.basis(ei);
                let mut local = vec![0.0; basis.nmodes()];
                self.asm.gather(ei, coeffs, &mut local);
                (0..basis.nquad())
                    .map(|q| {
                        local
                            .iter()
                            .enumerate()
                            .map(|(m, &c)| c * basis.val()[m][q])
                            .sum()
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_mesh::{rect_quads, rect_tris};

    const ALL_DIRICHLET: &[BoundaryTag] = &[
        BoundaryTag::Wall,
        BoundaryTag::Inflow,
        BoundaryTag::Outflow,
        BoundaryTag::Side,
    ];

    #[test]
    fn poisson_quads_manufactured_solution() {
        // -∇²u = f with u = sin(pi x) sin(pi y) on [0,1]²; f = 2pi²u.
        let exact = |x: [f64; 2]| (std::f64::consts::PI * x[0]).sin() * (std::f64::consts::PI * x[1]).sin();
        let f = move |x: [f64; 2]| 2.0 * std::f64::consts::PI.powi(2) * exact(x);
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
        let mut prob = HelmholtzProblem::new(mesh, 6, 0.0, ALL_DIRICHLET);
        let (u, stats) = prob.solve(f, |_| 0.0, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        assert!(err < 1e-5, "L2 error {err}");
        assert!(stats.nfree > 0);
    }

    #[test]
    fn poisson_spectral_convergence_in_p() {
        let exact = |x: [f64; 2]| (std::f64::consts::PI * x[0]).sin() * (std::f64::consts::PI * x[1]).sin();
        let f = move |x: [f64; 2]| 2.0 * std::f64::consts::PI.powi(2) * exact(x);
        let mut last = f64::MAX;
        for p in [2usize, 4, 6, 8] {
            let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
            let mut prob = HelmholtzProblem::new(mesh, p, 0.0, ALL_DIRICHLET);
            let (u, _) = prob.solve(f, |_| 0.0, SolveMethod::BandedDirect);
            let err = prob.l2_error(&u, exact);
            assert!(err < last, "p={p}: {err} !< {last}");
            last = err;
        }
        assert!(last < 1e-7, "final error {last}");
    }

    #[test]
    fn poisson_triangles() {
        let exact = |x: [f64; 2]| (std::f64::consts::PI * x[0]).sin() * (std::f64::consts::PI * x[1]).sin();
        let f = move |x: [f64; 2]| 2.0 * std::f64::consts::PI.powi(2) * exact(x);
        let mesh = rect_tris(0.0, 1.0, 0.0, 1.0, 3, 3);
        let mut prob = HelmholtzProblem::new(mesh, 5, 0.0, ALL_DIRICHLET);
        let (u, _) = prob.solve(f, |_| 0.0, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        assert!(err < 1e-4, "L2 error {err}");
    }

    #[test]
    fn helmholtz_with_lambda() {
        // (-∇² + λ)u = f, u = cos(pi x)cos(pi y) (pure Neumann via exact
        // normal derivative zero on [0,1]² boundary!), λ = 5.
        let lam = 5.0;
        let pi = std::f64::consts::PI;
        let exact = move |x: [f64; 2]| (pi * x[0]).cos() * (pi * x[1]).cos();
        let f = move |x: [f64; 2]| (2.0 * pi * pi + lam) * exact(x);
        // Neumann everywhere: no Dirichlet tags -> lambda>0 keeps it SPD.
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
        let mut prob = HelmholtzProblem::new(mesh, 6, lam, &[]);
        let (u, _) = prob.solve(f, |_| 0.0, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        assert!(err < 1e-5, "L2 error {err}");
    }

    #[test]
    fn pcg_matches_direct() {
        let pi = std::f64::consts::PI;
        let exact = move |x: [f64; 2]| (pi * x[0]).sin() * (pi * x[1]).sin();
        let f = move |x: [f64; 2]| 2.0 * pi * pi * exact(x);
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let mut p1 = HelmholtzProblem::new(mesh.clone(), 5, 0.0, ALL_DIRICHLET);
        let (ud, _) = p1.solve(f, |_| 0.0, SolveMethod::BandedDirect);
        let mut p2 = HelmholtzProblem::new(mesh, 5, 0.0, ALL_DIRICHLET);
        let (up, stats) = p2.solve(f, |_| 0.0, SolveMethod::Pcg { tol: 1e-12, max_iter: 2000 });
        assert!(stats.iterations > 0);
        for i in 0..ud.len() {
            assert!((ud[i] - up[i]).abs() < 1e-7, "dof {i}: {} vs {}", ud[i], up[i]);
        }
    }

    #[test]
    fn nonzero_dirichlet_data() {
        // u = 1 + x + y is in the basis for p >= 1: Laplace equation
        // reproduces it exactly from its boundary trace.
        let exact = |x: [f64; 2]| 1.0 + x[0] + 2.0 * x[1];
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let mut prob = HelmholtzProblem::new(mesh, 3, 0.0, ALL_DIRICHLET);
        let (u, _) = prob.solve(|_| 0.0, exact, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        assert!(err < 1e-10, "L2 error {err}");
    }

    #[test]
    fn curved_dirichlet_data_projected() {
        // Boundary data quadratic along edges exercises the edge
        // projection: u = x² - y² is harmonic.
        let exact = |x: [f64; 2]| x[0] * x[0] - x[1] * x[1];
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let mut prob = HelmholtzProblem::new(mesh, 4, 0.0, ALL_DIRICHLET);
        let (u, _) = prob.solve(|_| 0.0, exact, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        assert!(err < 1e-9, "L2 error {err}");
    }

    #[test]
    fn mixed_tri_quad_mesh() {
        // Quads on the left half, triangles on the right.
        use nkt_mesh::{Elem2d, Mesh2d};
        let q = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let mut verts = q.verts.clone();
        let mut elems = q.elems.clone();
        // Append a triangulated strip x in [1, 1.5].
        let v_base = verts.len();
        verts.push([1.5, 0.0]);
        verts.push([1.5, 0.5]);
        verts.push([1.5, 1.0]);
        // Right-edge vertices of the quad mesh at x=1: find them.
        let right: Vec<usize> = (0..v_base)
            .filter(|&i| (q.verts[i][0] - 1.0).abs() < 1e-12)
            .collect();
        assert_eq!(right.len(), 3);
        let mut r = right.clone();
        r.sort_by(|&a, &b| q.verts[a][1].partial_cmp(&q.verts[b][1]).unwrap());
        for s in 0..2 {
            let (a, b) = (r[s], r[s + 1]);
            let (c, d) = (v_base + s, v_base + s + 1);
            elems.push(Elem2d { kind: ElemKind::Tri, verts: vec![a, c, d] });
            elems.push(Elem2d { kind: ElemKind::Tri, verts: vec![a, d, b] });
        }
        let mesh = Mesh2d::new(verts, elems, |_| BoundaryTag::Wall);
        mesh.validate().unwrap();
        let exact = |x: [f64; 2]| 1.0 + 2.0 * x[0] - x[1];
        let mut prob = HelmholtzProblem::new(mesh, 3, 0.0, ALL_DIRICHLET);
        let (u, _) = prob.solve(|_| 0.0, exact, SolveMethod::BandedDirect);
        let err = prob.l2_error(&u, exact);
        assert!(err < 1e-9, "mixed-mesh error {err}");
    }
}
