//! # nkt-spectral — the spectral/hp element method
//!
//! Re-implementation of the discretisation underlying NekTar (Karniadakis
//! & Sherwin 1999, paper §1.3 and §4): hierarchical (Jacobi) modal
//! expansions on triangles and quadrilaterals, ordered "vertices first,
//! followed by the edges, and finally the interior" (paper Figure 9), with
//! C0 assembly and the banded symmetric Laplacian of paper Figure 10.
//!
//! * [`basis1d`] — the modified 1-D modal basis
//!   {(1−ξ)/2, (1+ξ)/2, (1−ξ)(1+ξ)/4·P^{1,1}_{k−1}(ξ)}.
//! * [`quadbasis`] / [`tribasis`] — tensor and collapsed-coordinate
//!   expansions with vertex/edge/interior mode classification.
//! * [`element`] — geometric mappings and elemental mass / Laplacian /
//!   Helmholtz matrices evaluated by Gauss-Jacobi quadrature.
//! * [`assembly`] — global C0 numbering (boundary dofs first, paper
//!   Figure 10), edge-orientation sign handling, Dirichlet lifting.
//! * [`solve`] — global Helmholtz/Poisson solvers: banded direct
//!   (LAPACK-style `dpbtrf`, the paper's serial solver) and diagonally
//!   preconditioned conjugate gradients (the paper's ALE solver).

#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]
pub mod assembly;
pub mod basis1d;
pub mod element;
pub mod pcg;
pub mod quadbasis;
pub mod rcm;
pub mod solve;
pub mod tribasis;

pub use assembly::{Assembly, DofKind};
pub use basis1d::Basis1d;
pub use element::{ElemOps, ElementMatrices};
pub use quadbasis::QuadBasis;
pub use rcm::{rcm_bandwidth, rcm_order};
pub use solve::{HelmholtzProblem, SolveMethod, SolveStats};
pub use tribasis::TriBasis;
