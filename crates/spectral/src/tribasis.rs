//! Modified modal basis on the reference triangle via collapsed
//! coordinates (Karniadakis & Sherwin; paper Figure 9, left).
//!
//! Reference triangle: {(ξ₁,ξ₂) : −1 ≤ ξ₁, ξ₂; ξ₁+ξ₂ ≤ 0} with vertices
//! v0=(−1,−1), v1=(1,−1), v2=(−1,1). Collapsed coordinates:
//! η₁ = 2(1+ξ₁)/(1−ξ₂) − 1, η₂ = ξ₂.
//!
//! With f₀=(1−z)/2, f₁=(1+z)/2, g_k = f₀f₁P^{1,1}_{k−1}:
//!
//! * vertices: f₀(η₁)f₀(η₂), f₁(η₁)f₀(η₂), f₁(η₂) — the barycentric
//!   coordinates;
//! * edge 0 (v0→v1): g_k(η₁)·f₀(η₂)^{k+1} — trace g_k(ξ₁) on ξ₂ = −1;
//! * edge 1 (v1→v2): f₁(η₁)·g_k(η₂) — trace g_k(ξ₂);
//! * edge 2 (v2→v0): f₀(η₁)·g_k(η₂) — trace g_k(ξ₂);
//! * interior: g_p(η₁)·f₀(η₂)^{p+1}f₁(η₂)P^{2p+1,1}_{q−1}(η₂).
//!
//! Quadrature: Gauss-Lobatto in η₁ × Gauss-Radau-Jacobi (α=1) in η₂ —
//! the Radau rule excludes the collapsed point η₂ = 1 and absorbs the
//! (1−η₂)/2 collapse Jacobian.

use crate::element::{Expansion, ModeClass};
use nkt_poly::jacobi::{jacobi, jacobi_derivative};
use nkt_poly::quadrature::{zwglj, zwgrjm};

fn f0(z: f64) -> f64 {
    0.5 * (1.0 - z)
}
fn f1(z: f64) -> f64 {
    0.5 * (1.0 + z)
}
fn g(k: usize, z: f64) -> f64 {
    f0(z) * f1(z) * jacobi(k - 1, 1.0, 1.0, z)
}
fn dg(k: usize, z: f64) -> f64 {
    let j = jacobi(k - 1, 1.0, 1.0, z);
    let dj = jacobi_derivative(k - 1, 1.0, 1.0, z);
    0.25 * (-2.0 * z * j + (1.0 - z * z) * dj)
}

/// A mode as a separable product A(η₁)·B(η₂); returns (value, dA·B, A·dB).
fn eval_sep(
    a: impl Fn(f64) -> (f64, f64),
    b: impl Fn(f64) -> (f64, f64),
    e1: f64,
    e2: f64,
) -> (f64, f64, f64) {
    let (av, ad) = a(e1);
    let (bv, bd) = b(e2);
    (av * bv, ad * bv, av * bd)
}

/// Triangular expansion basis tabulated at collapsed-coordinate
/// quadrature points.
#[derive(Debug, Clone)]
pub struct TriBasis {
    order: usize,
    /// ξ-space coordinates of the quadrature points.
    pub xi: Vec<[f64; 2]>,
    /// Quadrature weights in the ξ measure.
    pub wq: Vec<f64>,
    /// Mode values.
    pub val: Vec<Vec<f64>>,
    /// ∂/∂ξ₁ tables.
    pub dxi1: Vec<Vec<f64>>,
    /// ∂/∂ξ₂ tables.
    pub dxi2: Vec<Vec<f64>>,
    class: Vec<ModeClass>,
}

impl TriBasis {
    /// Builds the order-`p` triangle basis (p ≥ 1).
    pub fn new(p: usize) -> TriBasis {
        assert!(p >= 1, "TriBasis: order must be >= 1");
        let q1 = zwglj(p + 2, 0.0, 0.0);
        let q2 = zwgrjm(p + 2, 1.0, 0.0);
        let n1 = q1.z.len();
        let n2 = q2.z.len();
        let npts = n1 * n2;
        let mut eta = Vec::with_capacity(npts);
        let mut xi = Vec::with_capacity(npts);
        let mut wq = Vec::with_capacity(npts);
        for j in 0..n2 {
            for i in 0..n1 {
                let (e1, e2) = (q1.z[i], q2.z[j]);
                eta.push([e1, e2]);
                // xi1 = (1+eta1)(1-eta2)/2 - 1.
                xi.push([(1.0 + e1) * (1.0 - e2) * 0.5 - 1.0, e2]);
                // 0.5 converts the (1-z) Radau weight into the collapse
                // Jacobian (1-eta2)/2.
                wq.push(0.5 * q1.w[i] * q2.w[j]);
            }
        }
        // Assemble the mode list: vertices, edges, interior.
        type Mode = Box<dyn Fn(f64, f64) -> (f64, f64, f64)>;
        let mut fns: Vec<Mode> = Vec::new();
        let mut class = Vec::new();
        // Vertices.
        fns.push(Box::new(|e1, e2| eval_sep(|z| (f0(z), -0.5), |z| (f0(z), -0.5), e1, e2)));
        class.push(ModeClass::Vertex(0));
        fns.push(Box::new(|e1, e2| eval_sep(|z| (f1(z), 0.5), |z| (f0(z), -0.5), e1, e2)));
        class.push(ModeClass::Vertex(1));
        fns.push(Box::new(|e1, e2| eval_sep(|_| (1.0, 0.0), |z| (f1(z), 0.5), e1, e2)));
        class.push(ModeClass::Vertex(2));
        // Edge 0 (bottom): g_k(eta1) * f0(eta2)^{k+1}.
        for k in 1..p {
            fns.push(Box::new(move |e1, e2| {
                eval_sep(
                    |z| (g(k, z), dg(k, z)),
                    |z| {
                        let m = (k + 1) as f64;
                        (f0(z).powi(k as i32 + 1), -0.5 * m * f0(z).powi(k as i32))
                    },
                    e1,
                    e2,
                )
            }));
            class.push(ModeClass::Edge(0, k));
        }
        // Edge 1 (v1->v2): f1(eta1) * g_k(eta2).
        for k in 1..p {
            fns.push(Box::new(move |e1, e2| {
                eval_sep(|z| (f1(z), 0.5), |z| (g(k, z), dg(k, z)), e1, e2)
            }));
            class.push(ModeClass::Edge(1, k));
        }
        // Edge 2 (v2->v0): f0(eta1) * g_k(eta2).
        for k in 1..p {
            fns.push(Box::new(move |e1, e2| {
                eval_sep(|z| (f0(z), -0.5), |z| (g(k, z), dg(k, z)), e1, e2)
            }));
            class.push(ModeClass::Edge(2, k));
        }
        // Interior: g_p(eta1) * f0^{pp+1} f1 P^{2pp+1,1}_{qq-1}(eta2).
        for pp in 1..p.saturating_sub(1) {
            for qq in 1..(p - pp) {
                fns.push(Box::new(move |e1, e2| {
                    eval_sep(
                        |z| (g(pp, z), dg(pp, z)),
                        |z| {
                            let a = 2.0 * pp as f64 + 1.0;
                            let jp = jacobi(qq - 1, a, 1.0, z);
                            let djp = jacobi_derivative(qq - 1, a, 1.0, z);
                            let pf = f0(z).powi(pp as i32 + 1);
                            let dpf = -0.5 * (pp as f64 + 1.0) * f0(z).powi(pp as i32);
                            let v = pf * f1(z) * jp;
                            let dv = dpf * f1(z) * jp + pf * 0.5 * jp + pf * f1(z) * djp;
                            (v, dv)
                        },
                        e1,
                        e2,
                    )
                }));
                class.push(ModeClass::Interior);
            }
        }
        let nm = fns.len();
        debug_assert_eq!(nm, (p + 1) * (p + 2) / 2);
        let mut val = vec![vec![0.0; npts]; nm];
        let mut dxi1 = vec![vec![0.0; npts]; nm];
        let mut dxi2 = vec![vec![0.0; npts]; nm];
        for (m, f) in fns.iter().enumerate() {
            for (q, &[e1, e2]) in eta.iter().enumerate() {
                let (v, de1, de2) = f(e1, e2);
                val[m][q] = v;
                // Chain rule to xi derivatives.
                let inv = 2.0 / (1.0 - e2);
                dxi1[m][q] = de1 * inv;
                dxi2[m][q] = de1 * (1.0 + e1) / (1.0 - e2) + de2;
            }
        }
        TriBasis { order: p, xi, wq, val, dxi1, dxi2, class }
    }
}

impl Expansion for TriBasis {
    fn order(&self) -> usize {
        self.order
    }

    fn nmodes(&self) -> usize {
        self.val.len()
    }

    fn nquad(&self) -> usize {
        self.xi.len()
    }

    fn xi(&self) -> &[[f64; 2]] {
        &self.xi
    }

    fn wq(&self) -> &[f64] {
        &self.wq
    }

    fn val(&self) -> &[Vec<f64>] {
        &self.val
    }

    fn dxi1(&self) -> &[Vec<f64>] {
        &self.dxi1
    }

    fn dxi2(&self) -> &[Vec<f64>] {
        &self.dxi2
    }

    fn class(&self) -> &[ModeClass] {
        &self.class
    }

    fn nverts(&self) -> usize {
        3
    }

    fn nedges(&self) -> usize {
        3
    }

    /// Intrinsic starts: edge 0 runs v0→v1 (+ξ₁), edge 1 v1→v2 (+ξ₂ along
    /// the hypotenuse), edge 2 v0→v2 (+ξ₂), i.e. *reversed* relative to
    /// the CCW traversal v2→v0.
    fn edge_intrinsic_start(&self, edge: usize) -> usize {
        match edge {
            0 => 0,
            1 => 1,
            2 => 0,
            _ => panic!("triangle has 3 edges"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_count() {
        for p in 1..7 {
            let b = TriBasis::new(p);
            assert_eq!(b.nmodes(), (p + 1) * (p + 2) / 2, "p={p}");
        }
    }

    #[test]
    fn quadrature_integrates_reference_area() {
        let b = TriBasis::new(4);
        let area: f64 = b.wq.iter().sum();
        assert!((area - 2.0).abs() < 1e-12, "{area}");
    }

    #[test]
    fn quadrature_exact_on_polynomials() {
        // Integrate xi1*xi2 over the reference triangle: with vertices
        // (-1,-1),(1,-1),(-1,1): ∫∫ xi1 xi2 = area * stuff; compute by
        // monomial formula. Using transformation to unit triangle
        // u=(1+xi1)/2, v=(1+xi2)/2: xi1 xi2=(2u-1)(2v-1), dA = 4 dudv over
        // u+v<=1: ∫(2u-1)(2v-1)4 dudv = 4[4∫uv - 2∫u - 2∫v + 1/2]
        // = 4[4/24 - 2/6 - 2/6 + 1/2] = 4*(1/6 - 1/3 - 1/3 + 1/2) = 0.
        let b = TriBasis::new(5);
        let got: f64 = b
            .wq
            .iter()
            .zip(&b.xi)
            .map(|(&w, &[x1, x2])| w * x1 * x2)
            .sum();
        assert!(got.abs() < 1e-12, "{got}");
        // ∫ xi1^2: unit-triangle calc: ∫(2u-1)^2 4 dudv = 4∫(4u^2-4u+1)
        // = 4(4/12 - 4/6 + 1/2) = 4*(1/3-2/3+1/2)=4/6=2/3.
        let got2: f64 = b
            .wq
            .iter()
            .zip(&b.xi)
            .map(|(&w, &[x1, _])| w * x1 * x1)
            .sum();
        assert!((got2 - 2.0 / 3.0).abs() < 1e-12, "{got2}");
    }

    #[test]
    fn vertex_modes_are_barycentric() {
        let b = TriBasis::new(3);
        for (q, &[x1, x2]) in b.xi.iter().enumerate() {
            let l0 = -0.5 * (x1 + x2);
            let l1 = 0.5 * (1.0 + x1);
            let l2 = 0.5 * (1.0 + x2);
            assert!((b.val[0][q] - l0).abs() < 1e-12);
            assert!((b.val[1][q] - l1).abs() < 1e-12);
            assert!((b.val[2][q] - l2).abs() < 1e-12);
        }
    }

    #[test]
    fn vertex_modes_partition_unity() {
        let b = TriBasis::new(4);
        for q in 0..b.nquad() {
            let s = b.val[0][q] + b.val[1][q] + b.val[2][q];
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn xi_derivatives_of_barycentric_modes() {
        // l1 = (1+xi1)/2: d/dxi1 = 0.5, d/dxi2 = 0.
        let b = TriBasis::new(3);
        for q in 0..b.nquad() {
            assert!((b.dxi1[1][q] - 0.5).abs() < 1e-11, "q={q}: {}", b.dxi1[1][q]);
            assert!(b.dxi2[1][q].abs() < 1e-11);
            // l0: d/dxi1 = d/dxi2 = -0.5.
            assert!((b.dxi1[0][q] + 0.5).abs() < 1e-11);
            assert!((b.dxi2[0][q] + 0.5).abs() < 1e-11);
        }
    }

    #[test]
    fn mass_matrix_spd() {
        let p = 5;
        let b = TriBasis::new(p);
        let nm = b.nmodes();
        let mut m = vec![0.0; nm * nm];
        for i in 0..nm {
            for j in 0..nm {
                let mut s = 0.0;
                for q in 0..b.nquad() {
                    s += b.wq[q] * b.val[i][q] * b.val[j][q];
                }
                m[i + j * nm] = s;
            }
        }
        nkt_blas::dpotrf(nm, &mut m, nm).expect("triangle mass matrix must be SPD");
    }

    #[test]
    fn edge_trace_is_1d_modified_basis() {
        // Edge 0 mode k traced along xi2 = -1 equals g_k(xi1). Check via
        // integration against test functions using a 1-D rule mapped onto
        // quadrature points with eta2 = -1 (the Radau rule includes -1).
        let p = 4;
        let b = TriBasis::new(p);
        // Find points with xi2 == -1.
        let pts: Vec<usize> =
            (0..b.nquad()).filter(|&q| (b.xi[q][1] + 1.0).abs() < 1e-13).collect();
        assert!(!pts.is_empty());
        for m in 0..b.nmodes() {
            if let ModeClass::Edge(0, k) = b.class()[m] {
                for &q in &pts {
                    let x1 = b.xi[q][0];
                    assert!(
                        (b.val[m][q] - g(k, x1)).abs() < 1e-12,
                        "edge0 k={k} at xi1={x1}"
                    );
                }
            }
        }
    }

    #[test]
    fn modes_vanish_on_opposite_edges() {
        let b = TriBasis::new(5);
        let bottom: Vec<usize> =
            (0..b.nquad()).filter(|&q| (b.xi[q][1] + 1.0).abs() < 1e-13).collect();
        for m in 0..b.nmodes() {
            match b.class()[m] {
                ModeClass::Edge(1, _) | ModeClass::Edge(2, _) | ModeClass::Interior => {
                    for &q in &bottom {
                        assert!(b.val[m][q].abs() < 1e-12, "mode {m} at bottom");
                    }
                }
                _ => {}
            }
        }
    }
}
