//! Global C0 assembly: dof numbering, edge-orientation signs, Dirichlet
//! handling.
//!
//! Numbering follows the paper (Figure 10): "the boundary degrees of
//! freedom were ordered first followed by the interior degrees of
//! freedom" — mesh vertices, then mesh-edge modes, then per-element
//! interior modes.

use crate::basis1d::edge_reversal_sign;
use crate::element::{Expansion, ModeClass};
use nkt_mesh::{BoundaryTag, Mesh2d};

/// What a global dof is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DofKind {
    /// Mesh vertex.
    Vertex(usize),
    /// k-th hierarchical mode of mesh edge `e`.
    EdgeMode(usize, usize),
    /// Interior mode of an element.
    Interior(usize),
}

/// The global dof map for a uniform-order discretisation of a 2-D mesh.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// Total global dofs.
    pub ndof: usize,
    /// Dofs 0..nboundary are vertex/edge ("boundary-class") dofs.
    pub nboundary: usize,
    /// Per element, per local mode: (global dof, orientation sign).
    pub elem_dofs: Vec<Vec<(usize, f64)>>,
    /// Per dof: constrained by a Dirichlet boundary condition.
    pub dirichlet: Vec<bool>,
    /// What each dof is attached to.
    pub kinds: Vec<DofKind>,
}

impl Assembly {
    /// Builds the dof map. `basis_for(e)` supplies each element's
    /// expansion (same polynomial order everywhere); `is_dirichlet`
    /// selects which boundary tags are essential.
    ///
    /// # Panics
    /// Panics if elements sharing an edge disagree on the number of edge
    /// modes.
    pub fn build<'a>(
        mesh: &Mesh2d,
        basis_for: impl Fn(usize) -> &'a dyn Expansion,
        is_dirichlet: impl Fn(BoundaryTag) -> bool,
    ) -> Assembly {
        let nv = mesh.nverts();
        let ne = mesh.edges.len();
        // Uniform edge-mode count from any element.
        let p = basis_for(0).order();
        let modes_per_edge = p.saturating_sub(1);
        let edge_base = nv;
        let interior_base = nv + ne * modes_per_edge;
        let mut kinds: Vec<DofKind> = (0..nv).map(DofKind::Vertex).collect();
        for e in 0..ne {
            for k in 1..=modes_per_edge {
                kinds.push(DofKind::EdgeMode(e, k));
            }
        }
        let mut next_interior = interior_base;
        let mut elem_dofs = Vec::with_capacity(mesh.nelems());
        for ei in 0..mesh.nelems() {
            let basis = basis_for(ei);
            assert_eq!(basis.order(), p, "mixed orders not supported");
            let el = &mesh.elems[ei];
            let mut dofs = Vec::with_capacity(basis.nmodes());
            for &cls in basis.class() {
                match cls {
                    ModeClass::Vertex(lv) => dofs.push((el.verts[lv], 1.0)),
                    ModeClass::Edge(le, k) => {
                        let (edge_id, _) = mesh.elem_edges[ei][le];
                        let edge = &mesh.edges[edge_id];
                        // Intrinsic start vertex of the local edge param.
                        let start = el.verts[basis.edge_intrinsic_start(le)];
                        let sign = if start == edge.v[0] {
                            1.0
                        } else {
                            debug_assert_eq!(start, edge.v[1], "edge/vertex mismatch");
                            edge_reversal_sign(k)
                        };
                        dofs.push((edge_base + edge_id * modes_per_edge + (k - 1), sign));
                    }
                    ModeClass::Interior => {
                        kinds.push(DofKind::Interior(ei));
                        dofs.push((next_interior, 1.0));
                        next_interior += 1;
                    }
                }
            }
            elem_dofs.push(dofs);
        }
        let ndof = next_interior;
        // Dirichlet marking: vertices and edge modes of essential edges.
        let mut dirichlet = vec![false; ndof];
        for (edge_id, edge) in mesh.edges.iter().enumerate() {
            if let Some(tag) = edge.tag {
                if is_dirichlet(tag) {
                    dirichlet[edge.v[0]] = true;
                    dirichlet[edge.v[1]] = true;
                    for k in 0..modes_per_edge {
                        dirichlet[edge_base + edge_id * modes_per_edge + k] = true;
                    }
                }
            }
        }
        Assembly { ndof, nboundary: interior_base, elem_dofs, dirichlet, kinds }
    }

    /// Maximum |i − j| over all element dof pairs — the semi-bandwidth the
    /// banded factorization needs.
    pub fn bandwidth(&self) -> usize {
        let mut kd = 0usize;
        for dofs in &self.elem_dofs {
            for &(i, _) in dofs {
                for &(j, _) in dofs {
                    kd = kd.max(i.abs_diff(j));
                }
            }
        }
        kd
    }

    /// Scatters an elemental vector into a global vector: `global[gi] +=
    /// sign · local[m]`.
    pub fn scatter_add(&self, ei: usize, local: &[f64], global: &mut [f64]) {
        for (m, &(gi, s)) in self.elem_dofs[ei].iter().enumerate() {
            global[gi] += s * local[m];
        }
    }

    /// Gathers a global vector into elemental coefficients:
    /// `local[m] = sign · global[gi]`.
    pub fn gather(&self, ei: usize, global: &[f64], local: &mut [f64]) {
        for (m, &(gi, s)) in self.elem_dofs[ei].iter().enumerate() {
            local[m] = s * global[gi];
        }
    }

    /// Number of Dirichlet-constrained dofs.
    pub fn ndirichlet(&self) -> usize {
        self.dirichlet.iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadbasis::QuadBasis;
    use crate::tribasis::TriBasis;
    use nkt_mesh::{rect_quads, rect_tris};

    #[test]
    fn dof_counts_quad_mesh() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let p = 3;
        let basis = QuadBasis::new(p);
        let asm = Assembly::build(&mesh, |_| &basis, |_| true);
        // 9 vertices + 12 edges * 2 modes + 4 elements * 4 interior.
        assert_eq!(asm.ndof, 9 + 12 * 2 + 4 * 4);
        assert_eq!(asm.nboundary, 9 + 24);
        // All exterior dofs Dirichlet: 8 boundary vertices + 8 boundary
        // edges * 2 modes.
        assert_eq!(asm.ndirichlet(), 8 + 8 * 2);
    }

    #[test]
    fn dof_counts_tri_mesh() {
        let mesh = rect_tris(0.0, 1.0, 0.0, 1.0, 1, 1);
        let p = 4;
        let basis = TriBasis::new(p);
        let asm = Assembly::build(&mesh, |_| &basis, |_| true);
        // 4 vertices + 5 edges * 3 + 2 els * interior((4-1)(4-2)/2 = 3).
        assert_eq!(asm.ndof, 4 + 15 + 6);
    }

    #[test]
    fn shared_edge_dofs_match_with_signs() {
        let mesh = rect_quads(0.0, 2.0, 0.0, 1.0, 2, 1);
        let p = 4;
        let basis = QuadBasis::new(p);
        let asm = Assembly::build(&mesh, |_| &basis, |_| false);
        // The two elements share one edge; find the global dofs each maps
        // there and verify they coincide.
        use std::collections::HashMap;
        let mut seen: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
        for ei in 0..2 {
            for &(g, s) in &asm.elem_dofs[ei] {
                seen.entry(g).or_default().push((ei, s));
            }
        }
        let shared: Vec<_> = seen.iter().filter(|(_, v)| v.len() == 2).collect();
        // Shared: 2 vertices + (p-1) edge modes.
        assert_eq!(shared.len(), 2 + (p - 1));
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 1);
        let basis = QuadBasis::new(2);
        let asm = Assembly::build(&mesh, |_| &basis, |_| false);
        let global: Vec<f64> = (0..asm.ndof).map(|i| i as f64 + 1.0).collect();
        let mut local = vec![0.0; basis.nmodes()];
        asm.gather(0, &global, &mut local);
        let mut back = vec![0.0; asm.ndof];
        asm.scatter_add(0, &local, &mut back);
        // scatter(gather(x)) gives x at element-0 dofs scaled by sign^2=1.
        for &(g, _) in &asm.elem_dofs[0] {
            assert_eq!(back[g], global[g]);
        }
    }

    #[test]
    fn bandwidth_positive_and_bounded() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
        let basis = QuadBasis::new(3);
        let asm = Assembly::build(&mesh, |_| &basis, |_| false);
        let kd = asm.bandwidth();
        assert!(kd > 0 && kd < asm.ndof);
    }
}
