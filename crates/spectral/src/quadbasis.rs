//! Tensor-product modal basis on the reference quadrilateral
//! [−1,1]², with modes ordered vertices → edges → interior (paper
//! Figure 9, right).

use crate::basis1d::Basis1d;
use crate::element::{Expansion, ModeClass};

/// Quadrilateral expansion: φ_{pq}(ξ₁,ξ₂) = ψ_p(ξ₁)·ψ_q(ξ₂).
///
/// Local geometry convention (matches `nkt-mesh` CCW ordering):
/// vertices v0=(−1,−1), v1=(1,−1), v2=(1,1), v3=(−1,1); edges
/// e0: v0→v1, e1: v1→v2, e2: v2→v3, e3: v3→v0.
#[derive(Debug, Clone)]
pub struct QuadBasis {
    order: usize,
    nquad1: usize,
    /// Reference coordinates of the tensor quadrature points.
    pub xi: Vec<[f64; 2]>,
    /// Quadrature weights (reference measure dξ₁dξ₂).
    pub wq: Vec<f64>,
    /// `val[m][q]`: mode m at point q.
    pub val: Vec<Vec<f64>>,
    /// ∂φ/∂ξ₁ tables.
    pub dxi1: Vec<Vec<f64>>,
    /// ∂φ/∂ξ₂ tables.
    pub dxi2: Vec<Vec<f64>>,
    class: Vec<ModeClass>,
}

impl QuadBasis {
    /// Builds the order-`p` quad basis tabulated on (p+2)² GLL points.
    pub fn new(p: usize) -> QuadBasis {
        assert!(p >= 1, "QuadBasis: order must be >= 1");
        let b = Basis1d::with_gll(p);
        let nq = b.nquad();
        // Mode ordering: vertices, then edges, then interior.
        // 1-D index pairs for the four vertices.
        let vpairs = [(0, 0), (p, 0), (p, p), (0, p)];
        let mut modes: Vec<(usize, usize)> = vpairs.to_vec();
        let mut class: Vec<ModeClass> = (0..4).map(ModeClass::Vertex).collect();
        // Edges: e0 bottom (k,0), e1 right (P,k), e2 top (k,P), e3 left (0,k).
        for k in 1..p {
            modes.push((k, 0));
            class.push(ModeClass::Edge(0, k));
        }
        for k in 1..p {
            modes.push((p, k));
            class.push(ModeClass::Edge(1, k));
        }
        for k in 1..p {
            modes.push((k, p));
            class.push(ModeClass::Edge(2, k));
        }
        for k in 1..p {
            modes.push((0, k));
            class.push(ModeClass::Edge(3, k));
        }
        for pp in 1..p {
            for qq in 1..p {
                modes.push((pp, qq));
                class.push(ModeClass::Interior);
            }
        }
        let nm = modes.len();
        debug_assert_eq!(nm, (p + 1) * (p + 1));
        let npts = nq * nq;
        let mut xi = Vec::with_capacity(npts);
        let mut wq = Vec::with_capacity(npts);
        for j in 0..nq {
            for i in 0..nq {
                xi.push([b.z[i], b.z[j]]);
                wq.push(b.w[i] * b.w[j]);
            }
        }
        let mut val = vec![vec![0.0; npts]; nm];
        let mut dxi1 = vec![vec![0.0; npts]; nm];
        let mut dxi2 = vec![vec![0.0; npts]; nm];
        for (m, &(pp, qq)) in modes.iter().enumerate() {
            for j in 0..nq {
                for i in 0..nq {
                    let q = i + j * nq;
                    val[m][q] = b.val[pp][i] * b.val[qq][j];
                    dxi1[m][q] = b.dval[pp][i] * b.val[qq][j];
                    dxi2[m][q] = b.val[pp][i] * b.dval[qq][j];
                }
            }
        }
        QuadBasis { order: p, nquad1: nq, xi, wq, val, dxi1, dxi2, class }
    }

    /// Quadrature points per direction.
    pub fn nquad1(&self) -> usize {
        self.nquad1
    }
}

impl Expansion for QuadBasis {
    fn order(&self) -> usize {
        self.order
    }

    fn nmodes(&self) -> usize {
        self.val.len()
    }

    fn nquad(&self) -> usize {
        self.xi.len()
    }

    fn xi(&self) -> &[[f64; 2]] {
        &self.xi
    }

    fn wq(&self) -> &[f64] {
        &self.wq
    }

    fn val(&self) -> &[Vec<f64>] {
        &self.val
    }

    fn dxi1(&self) -> &[Vec<f64>] {
        &self.dxi1
    }

    fn dxi2(&self) -> &[Vec<f64>] {
        &self.dxi2
    }

    fn class(&self) -> &[ModeClass] {
        &self.class
    }

    fn nverts(&self) -> usize {
        4
    }

    fn nedges(&self) -> usize {
        4
    }

    /// The local vertex at which each edge's *intrinsic* parameterization
    /// starts (the direction of increasing reference coordinate): e0
    /// starts at v0 (+ξ₁), e1 at v1 (+ξ₂), e2 at v3 (+ξ₁), e3 at v0 (+ξ₂).
    fn edge_intrinsic_start(&self, edge: usize) -> usize {
        match edge {
            0 => 0,
            1 => 1,
            2 => 3,
            3 => 0,
            _ => panic!("quad has 4 edges"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_counts_and_ordering() {
        let p = 4;
        let b = QuadBasis::new(p);
        assert_eq!(b.nmodes(), 25);
        // Paper Figure 9 ordering: first 4 are vertices, then 4*(p-1)
        // edge modes, then interior.
        for m in 0..4 {
            assert!(matches!(b.class()[m], ModeClass::Vertex(_)));
        }
        for m in 4..4 + 4 * (p - 1) {
            assert!(matches!(b.class()[m], ModeClass::Edge(_, _)), "mode {m}");
        }
        for m in 4 + 4 * (p - 1)..b.nmodes() {
            assert!(matches!(b.class()[m], ModeClass::Interior));
        }
    }

    #[test]
    fn quadrature_integrates_area() {
        let b = QuadBasis::new(3);
        let area: f64 = b.wq.iter().sum();
        assert!((area - 4.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_modes_partition_unity() {
        let b = QuadBasis::new(5);
        for q in 0..b.nquad() {
            let s: f64 = (0..4).map(|m| b.val[m][q]).sum();
            assert!((s - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn edge_modes_vanish_on_other_edges() {
        let p = 4;
        let b = QuadBasis::new(p);
        // Bottom-edge mode (k, 0) must vanish where xi2 = +1... checked at
        // quadrature points on the top row (xi2 = 1 is a GLL point).
        let nq = b.nquad1();
        for m in 0..b.nmodes() {
            if let ModeClass::Edge(0, _) = b.class()[m] {
                for i in 0..nq {
                    let top = i + (nq - 1) * nq;
                    assert!(b.val[m][top].abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn interior_modes_vanish_on_boundary() {
        let b = QuadBasis::new(4);
        let nq = b.nquad1();
        for m in 0..b.nmodes() {
            if matches!(b.class()[m], ModeClass::Interior) {
                for i in 0..nq {
                    for &q in &[i, i + (nq - 1) * nq, i * nq, i * nq + nq - 1] {
                        assert!(b.val[m][q].abs() < 1e-12, "mode {m} point {q}");
                    }
                }
            }
        }
    }

    #[test]
    fn derivatives_consistent_with_values() {
        // d/dxi1 of the v1 vertex mode psi_P(x1)psi_0(x2) = 0.5*psi_0(x2).
        let b = QuadBasis::new(3);
        for q in 0..b.nquad() {
            let expect = 0.5 * 0.5 * (1.0 - b.xi[q][1]);
            assert!((b.dxi1[1][q] - expect).abs() < 1e-13);
        }
    }
}
