//! Expansion trait, geometric mappings and elemental operators.

use nkt_mesh::{ElemKind, Mesh2d};

/// Classification of a local mode (paper Figure 9: "we label the vertices
/// first, followed by the edges, and finally the interior").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeClass {
    /// Attached to local vertex `i`.
    Vertex(usize),
    /// The k-th hierarchical mode (k ≥ 1) on local edge `e`.
    Edge(usize, usize),
    /// Interior (bubble) mode — no inter-element coupling.
    Interior,
}

/// A tabulated 2-D expansion basis on a reference element.
pub trait Expansion {
    /// Polynomial order P.
    fn order(&self) -> usize;
    /// Total number of modes.
    fn nmodes(&self) -> usize;
    /// Total quadrature points.
    fn nquad(&self) -> usize;
    /// Reference coordinates of quadrature points.
    fn xi(&self) -> &[[f64; 2]];
    /// Quadrature weights in the reference measure dξ₁dξ₂.
    fn wq(&self) -> &[f64];
    /// Mode values at quadrature points.
    fn val(&self) -> &[Vec<f64>];
    /// ∂/∂ξ₁ tables.
    fn dxi1(&self) -> &[Vec<f64>];
    /// ∂/∂ξ₂ tables.
    fn dxi2(&self) -> &[Vec<f64>];
    /// Mode classifications, aligned with `val`.
    fn class(&self) -> &[ModeClass];
    /// Local vertex count.
    fn nverts(&self) -> usize;
    /// Local edge count.
    fn nedges(&self) -> usize;
    /// Local vertex at which edge `e`'s intrinsic parameterization starts.
    fn edge_intrinsic_start(&self, edge: usize) -> usize;
}

/// Geometric data at each quadrature point of a mapped element.
#[derive(Debug, Clone)]
pub struct ElemGeom {
    /// |det J| × reference quadrature weight (physical measure weights).
    pub jw: Vec<f64>,
    /// ∂ξ₁/∂x, ∂ξ₁/∂y, ∂ξ₂/∂x, ∂ξ₂/∂y at each point.
    pub dxi_dx: Vec<[f64; 4]>,
    /// Physical coordinates of the quadrature points.
    pub x: Vec<[f64; 2]>,
}

/// Computes the mapping data for a straight-sided element of the mesh.
///
/// Triangles use the affine map from the reference triangle
/// {(−1,−1),(1,−1),(−1,1)}; quadrilaterals the bilinear map.
///
/// # Panics
/// Panics if the Jacobian determinant is non-positive anywhere (tangled
/// element).
pub fn elem_geometry(basis: &dyn Expansion, mesh: &Mesh2d, ei: usize) -> ElemGeom {
    let el = &mesh.elems[ei];
    let nq = basis.nquad();
    let mut jw = Vec::with_capacity(nq);
    let mut dxi_dx = Vec::with_capacity(nq);
    let mut xs = Vec::with_capacity(nq);
    for (q, &[xi1, xi2]) in basis.xi().iter().enumerate() {
        let (x, j) = match el.kind {
            ElemKind::Tri => {
                let v0 = mesh.verts[el.verts[0]];
                let v1 = mesh.verts[el.verts[1]];
                let v2 = mesh.verts[el.verts[2]];
                let l0 = -0.5 * (xi1 + xi2);
                let l1 = 0.5 * (1.0 + xi1);
                let l2 = 0.5 * (1.0 + xi2);
                let x = [
                    l0 * v0[0] + l1 * v1[0] + l2 * v2[0],
                    l0 * v0[1] + l1 * v1[1] + l2 * v2[1],
                ];
                // dX/dxi is constant for the affine triangle.
                let dxdxi1 = [0.5 * (v1[0] - v0[0]), 0.5 * (v1[1] - v0[1])];
                let dxdxi2 = [0.5 * (v2[0] - v0[0]), 0.5 * (v2[1] - v0[1])];
                (x, [dxdxi1[0], dxdxi2[0], dxdxi1[1], dxdxi2[1]])
            }
            ElemKind::Quad => {
                let v: Vec<[f64; 2]> = el.verts.iter().map(|&i| mesh.verts[i]).collect();
                let n = [
                    0.25 * (1.0 - xi1) * (1.0 - xi2),
                    0.25 * (1.0 + xi1) * (1.0 - xi2),
                    0.25 * (1.0 + xi1) * (1.0 + xi2),
                    0.25 * (1.0 - xi1) * (1.0 + xi2),
                ];
                let dn1 = [
                    -0.25 * (1.0 - xi2),
                    0.25 * (1.0 - xi2),
                    0.25 * (1.0 + xi2),
                    -0.25 * (1.0 + xi2),
                ];
                let dn2 = [
                    -0.25 * (1.0 - xi1),
                    -0.25 * (1.0 + xi1),
                    0.25 * (1.0 + xi1),
                    0.25 * (1.0 - xi1),
                ];
                let mut x = [0.0; 2];
                let mut dxdxi1 = [0.0; 2];
                let mut dxdxi2 = [0.0; 2];
                for i in 0..4 {
                    for d in 0..2 {
                        x[d] += n[i] * v[i][d];
                        dxdxi1[d] += dn1[i] * v[i][d];
                        dxdxi2[d] += dn2[i] * v[i][d];
                    }
                }
                (x, [dxdxi1[0], dxdxi2[0], dxdxi1[1], dxdxi2[1]])
            }
            ElemKind::Hex => panic!("elem_geometry: 2-D basis on a hex element"),
        };
        // j = [dx/dxi1, dx/dxi2; dy/dxi1, dy/dxi2]
        let det = j[0] * j[3] - j[1] * j[2];
        assert!(det > 0.0, "element {ei}: non-positive Jacobian {det} at point {q}");
        let inv = [j[3] / det, -j[1] / det, -j[2] / det, j[0] / det];
        // dxi/dx = inv: [dxi1/dx, dxi1/dy; dxi2/dx, dxi2/dy]
        dxi_dx.push(inv);
        jw.push(basis.wq()[q] * det);
        xs.push(x);
    }
    ElemGeom { jw, dxi_dx, x: xs }
}

/// Elemental matrices: mass, Laplacian (stiffness) and their Helmholtz
/// combination, dense column-major `nm × nm`.
#[derive(Debug, Clone)]
pub struct ElementMatrices {
    /// Number of modes.
    pub nm: usize,
    /// Mass matrix ∫ φᵢφⱼ dΩ.
    pub mass: Vec<f64>,
    /// Stiffness matrix ∫ ∇φᵢ·∇φⱼ dΩ.
    pub laplace: Vec<f64>,
}

impl ElementMatrices {
    /// Computes mass and stiffness for one mapped element.
    pub fn build(basis: &dyn Expansion, geom: &ElemGeom) -> ElementMatrices {
        let nm = basis.nmodes();
        let nq = basis.nquad();
        // Physical gradients per mode: gx[m][q], gy[m][q].
        let mut gx = vec![vec![0.0; nq]; nm];
        let mut gy = vec![vec![0.0; nq]; nm];
        for m in 0..nm {
            let d1 = &basis.dxi1()[m];
            let d2 = &basis.dxi2()[m];
            for q in 0..nq {
                let [a, b, c, d] = geom.dxi_dx[q];
                gx[m][q] = d1[q] * a + d2[q] * c;
                gy[m][q] = d1[q] * b + d2[q] * d;
            }
        }
        let mut mass = vec![0.0; nm * nm];
        let mut laplace = vec![0.0; nm * nm];
        for j in 0..nm {
            for i in 0..=j {
                let mut ms = 0.0;
                let mut ls = 0.0;
                let vi = &basis.val()[i];
                let vj = &basis.val()[j];
                for q in 0..nq {
                    let w = geom.jw[q];
                    ms += w * vi[q] * vj[q];
                    ls += w * (gx[i][q] * gx[j][q] + gy[i][q] * gy[j][q]);
                }
                mass[i + j * nm] = ms;
                mass[j + i * nm] = ms;
                laplace[i + j * nm] = ls;
                laplace[j + i * nm] = ls;
            }
        }
        ElementMatrices { nm, mass, laplace }
    }

    /// Helmholtz matrix L + λM.
    pub fn helmholtz(&self, lambda: f64) -> Vec<f64> {
        self.laplace
            .iter()
            .zip(&self.mass)
            .map(|(l, m)| l + lambda * m)
            .collect()
    }
}

/// Per-element operator bundle cached by the solvers: basis reference
/// index, geometry and matrices.
#[derive(Debug, Clone)]
pub struct ElemOps {
    /// Which cached basis this element uses (index into the solver's
    /// basis table, one per element kind present).
    pub basis_id: usize,
    /// Mapped geometry.
    pub geom: ElemGeom,
    /// Elemental matrices.
    pub mats: ElementMatrices,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadbasis::QuadBasis;
    use crate::tribasis::TriBasis;
    use nkt_mesh::{rect_quads, rect_tris};

    #[test]
    fn quad_geometry_unit_square_measure() {
        let mesh = rect_quads(0.0, 2.0, 0.0, 1.0, 2, 1); // two 1x1 cells
        let basis = QuadBasis::new(3);
        let g = elem_geometry(&basis, &mesh, 0);
        let area: f64 = g.jw.iter().sum();
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tri_geometry_measure() {
        let mesh = rect_tris(0.0, 1.0, 0.0, 1.0, 1, 1);
        let basis = TriBasis::new(4);
        let total: f64 = (0..2)
            .map(|e| elem_geometry(&basis, &mesh, e).jw.iter().sum::<f64>())
            .sum();
        assert!((total - 1.0).abs() < 1e-10, "{total}");
    }

    #[test]
    fn mass_matrix_integrates_constants() {
        // 1^T M 1 = sum over modes of vertex-mode coefficients that
        // represent u = 1: with vertex modes = bilinear partition of
        // unity, u = 1 is all-vertex-coefficients 1, others 0.
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 1, 1);
        let basis = QuadBasis::new(4);
        let geom = elem_geometry(&basis, &mesh, 0);
        let m = ElementMatrices::build(&basis, &geom);
        let mut coef = vec![0.0; m.nm];
        for i in 0..4 {
            coef[i] = 1.0;
        }
        // c^T M c = ∫ 1 dΩ = 1.
        let mut mc = vec![0.0; m.nm];
        nkt_blas::dgemv(nkt_blas::Trans::No, m.nm, m.nm, 1.0, &m.mass, m.nm, &coef, 0.0, &mut mc);
        let v: f64 = coef.iter().zip(&mc).map(|(a, b)| a * b).sum();
        assert!((v - 1.0).abs() < 1e-12, "{v}");
    }

    #[test]
    fn laplacian_annihilates_constants() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 1, 1);
        let basis = QuadBasis::new(4);
        let geom = elem_geometry(&basis, &mesh, 0);
        let m = ElementMatrices::build(&basis, &geom);
        let mut coef = vec![0.0; m.nm];
        for i in 0..4 {
            coef[i] = 1.0;
        }
        let mut lc = vec![0.0; m.nm];
        nkt_blas::dgemv(nkt_blas::Trans::No, m.nm, m.nm, 1.0, &m.laplace, m.nm, &coef, 0.0, &mut lc);
        for v in lc {
            assert!(v.abs() < 1e-11, "{v}");
        }
    }

    #[test]
    fn laplacian_spd_on_interior_block() {
        // The full Laplacian is singular (constants); the interior-interior
        // block must be SPD (paper Figure 10 shows its banded structure).
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 1, 1);
        let basis = QuadBasis::new(5);
        let geom = elem_geometry(&basis, &mesh, 0);
        let m = ElementMatrices::build(&basis, &geom);
        let interior: Vec<usize> = (0..m.nm)
            .filter(|&i| matches!(basis.class()[i], ModeClass::Interior))
            .collect();
        let ni = interior.len();
        let mut sub = vec![0.0; ni * ni];
        for (a, &i) in interior.iter().enumerate() {
            for (b, &j) in interior.iter().enumerate() {
                sub[a + b * ni] = m.laplace[i + j * m.nm];
            }
        }
        nkt_blas::dpotrf(ni, &mut sub, ni).expect("interior Laplacian block must be SPD");
    }

    #[test]
    fn stretched_quad_jacobian() {
        let mesh = rect_quads(0.0, 4.0, 0.0, 1.0, 1, 1); // 4x1 element
        let basis = QuadBasis::new(2);
        let g = elem_geometry(&basis, &mesh, 0);
        let area: f64 = g.jw.iter().sum();
        assert!((area - 4.0).abs() < 1e-12);
        // dxi1/dx = 1/2 for the reference->physical stretch of 2 in x... (4 wide: dx/dxi1 = 2)
        for d in &g.dxi_dx {
            assert!((d[0] - 0.5).abs() < 1e-13); // dxi1/dx
            assert!((d[3] - 2.0).abs() < 1e-13); // dxi2/dy
        }
    }
}
