//! Reverse Cuthill-McKee bandwidth reduction.
//!
//! The paper's direct solvers exploit "the symmetric and banded nature of
//! the matrix" (Figure 10); getting a usable band out of an unstructured
//! mesh requires a bandwidth-reducing permutation, which is what RCM
//! provides. Used by the solvers' statically-condensed boundary systems
//! and by the model replay to size paper-scale banded solves honestly.

use std::collections::VecDeque;

/// Builds an adjacency structure from dof "cliques" (each clique = the
/// dofs coupled by one element).
pub fn adjacency_from_cliques(n: usize, cliques: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for clique in cliques {
        for &a in clique {
            for &b in clique {
                if a != b {
                    adj[a].push(b);
                }
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// Computes the RCM permutation: `perm[new] = old`. Handles disconnected
/// graphs by restarting from the lowest-degree unvisited vertex.
pub fn rcm_order(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Process components in ascending-degree seed order.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&v| (adj[v].len(), v));
    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        // Pseudo-peripheral start: double BFS from the seed.
        let start = {
            let far = |s: usize, visited: &[bool]| -> usize {
                let mut dist = vec![usize::MAX; n];
                let mut q = VecDeque::new();
                dist[s] = 0;
                q.push_back(s);
                let mut last = s;
                while let Some(v) = q.pop_front() {
                    last = v;
                    for &u in &adj[v] {
                        if !visited[u] && dist[u] == usize::MAX {
                            dist[u] = dist[v] + 1;
                            q.push_back(u);
                        }
                    }
                }
                last
            };
            far(far(seed, &visited), &visited)
        };
        // Cuthill-McKee BFS with neighbors in ascending degree.
        let mut q = VecDeque::new();
        visited[start] = true;
        q.push_back(start);
        while let Some(v) = q.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> =
                adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| (adj[u].len(), u));
            for u in nbrs {
                if !visited[u] {
                    visited[u] = true;
                    q.push_back(u);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Bandwidth of the matrix under a permutation `perm[new] = old`:
/// max |pos(a) − pos(b)| over coupled pairs.
pub fn bandwidth_under(perm: &[usize], cliques: &[Vec<usize>]) -> usize {
    let n = perm.len();
    let mut pos = vec![0usize; n];
    for (newi, &old) in perm.iter().enumerate() {
        pos[old] = newi;
    }
    let mut kd = 0usize;
    for clique in cliques {
        for &a in clique {
            for &b in clique {
                kd = kd.max(pos[a].abs_diff(pos[b]));
            }
        }
    }
    kd
}

/// Convenience: RCM bandwidth of a clique-defined system.
pub fn rcm_bandwidth(n: usize, cliques: &[Vec<usize>]) -> usize {
    let adj = adjacency_from_cliques(n, cliques);
    let perm = rcm_order(&adj);
    bandwidth_under(&perm, cliques)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D grid graph cliques: each cell couples its 4 corners.
    fn grid_cliques(nx: usize, ny: usize) -> (usize, Vec<Vec<usize>>) {
        let id = |i: usize, j: usize| i + j * (nx + 1);
        let mut cliques = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                cliques.push(vec![id(i, j), id(i + 1, j), id(i + 1, j + 1), id(i, j + 1)]);
            }
        }
        ((nx + 1) * (ny + 1), cliques)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let (n, cliques) = grid_cliques(5, 4);
        let adj = adjacency_from_cliques(n, &cliques);
        let perm = rcm_order(&adj);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_shrinks_grid_bandwidth_to_row_width() {
        // A long thin grid: natural numbering along the long axis gives
        // bandwidth ~ (short side); RCM should find it regardless of the
        // input numbering being scrambled.
        let (n, cliques) = grid_cliques(30, 3);
        // Scramble: renumber vertices by reversing bits-ish.
        let scramble: Vec<usize> = {
            let mut v: Vec<usize> = (0..n).collect();
            v.sort_by_key(|&i| (i * 2654435761) % n);
            v
        };
        let mut inv = vec![0usize; n];
        for (a, &b) in scramble.iter().enumerate() {
            inv[b] = a;
        }
        let scrambled: Vec<Vec<usize>> = cliques
            .iter()
            .map(|c| c.iter().map(|&v| inv[v]).collect())
            .collect();
        let naive_kd = {
            let mut kd = 0;
            for c in &scrambled {
                for &a in c {
                    for &b in c {
                        kd = kd.max(a.abs_diff(b));
                    }
                }
            }
            kd
        };
        let kd = rcm_bandwidth(n, &scrambled);
        assert!(kd < naive_kd / 3, "RCM {kd} vs naive {naive_kd}");
        // Short side has 4 vertex rows: optimal band ~ 5-9.
        assert!(kd <= 12, "grid band {kd}");
    }

    #[test]
    fn disconnected_graph_handled() {
        let cliques = vec![vec![0, 1], vec![2, 3]];
        let kd = rcm_bandwidth(4, &cliques);
        assert!(kd <= 2);
        let adj = adjacency_from_cliques(4, &cliques);
        assert_eq!(rcm_order(&adj).len(), 4);
    }

    #[test]
    fn bandwidth_under_identity() {
        let cliques = vec![vec![0, 5]];
        let perm: Vec<usize> = (0..6).collect();
        assert_eq!(bandwidth_under(&perm, &cliques), 5);
    }
}
