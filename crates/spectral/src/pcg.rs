//! Diagonally preconditioned conjugate gradients — the iterative solver
//! NekTar-ALE uses ("a diagonally preconditioned conjugate gradient
//! iterative solver is predominantly used in this type of simulations",
//! paper §4).

/// Outcome of a PCG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solves A x = b with PCG, `matvec(p, out)` applying the SPD operator and
/// `diag` its diagonal (Jacobi preconditioner). `x` holds the initial
/// guess on entry and the solution on exit.
///
/// # Panics
/// Panics if a diagonal entry is not positive.
pub fn pcg(
    mut matvec: impl FnMut(&[f64], &mut [f64]),
    diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> PcgResult {
    let n = b.len();
    assert_eq!(diag.len(), n);
    assert_eq!(x.len(), n);
    for (i, &d) in diag.iter().enumerate() {
        assert!(d > 0.0, "pcg: non-positive diagonal at {i}: {d}");
    }
    let mut r = vec![0.0; n];
    let mut ap = vec![0.0; n];
    // r = b - A x.
    matvec(x, &mut ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    let bnorm = nkt_blas::dnrm2(b).max(1e-300);
    let mut z: Vec<f64> = r.iter().zip(diag).map(|(ri, di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz = nkt_blas::ddot(&r, &z);
    let mut rnorm = nkt_blas::dnrm2(&r);
    if rnorm / bnorm <= tol {
        return PcgResult { iterations: 0, residual: rnorm, converged: true };
    }
    for it in 1..=max_iter {
        matvec(&p, &mut ap);
        let pap = nkt_blas::ddot(&p, &ap);
        if pap <= 0.0 {
            // Operator not SPD on this subspace; bail out with the state.
            return PcgResult { iterations: it - 1, residual: rnorm, converged: false };
        }
        let alpha = rz / pap;
        nkt_blas::daxpy(alpha, &p, x);
        nkt_blas::daxpy(-alpha, &ap, &mut r);
        rnorm = nkt_blas::dnrm2(&r);
        if rnorm / bnorm <= tol {
            return PcgResult { iterations: it, residual: rnorm, converged: true };
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_new = nkt_blas::ddot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    PcgResult { iterations: max_iter, residual: rnorm, converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_matvec(a: &[f64], n: usize) -> impl FnMut(&[f64], &mut [f64]) + '_ {
        move |x: &[f64], out: &mut [f64]| {
            nkt_blas::dgemv(nkt_blas::Trans::No, n, n, 1.0, a, n, x, 0.0, out);
        }
    }

    fn spd_system(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // A = tridiagonal Laplacian + 2I; x_true arbitrary; b = A x.
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i + i * n] = 4.0;
            if i + 1 < n {
                a[i + 1 + i * n] = -1.0;
                a[i + (i + 1) * n] = -1.0;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let mut b = vec![0.0; n];
        nkt_blas::dgemv(nkt_blas::Trans::No, n, n, 1.0, &a, n, &x_true, 0.0, &mut b);
        (a, x_true, b)
    }

    #[test]
    fn solves_spd_system() {
        let n = 50;
        let (a, x_true, b) = spd_system(n);
        let diag: Vec<f64> = (0..n).map(|i| a[i + i * n]).collect();
        let mut x = vec![0.0; n];
        let res = pcg(dense_matvec(&a, n), &diag, &b, &mut x, 1e-12, 500);
        assert!(res.converged, "{res:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let n = 10;
        let (a, _, _) = spd_system(n);
        let diag: Vec<f64> = (0..n).map(|i| a[i + i * n]).collect();
        let mut x = vec![0.0; n];
        let res = pcg(dense_matvec(&a, n), &diag, &vec![0.0; n], &mut x, 1e-10, 100);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 80;
        let (a, x_true, b) = spd_system(n);
        let diag: Vec<f64> = (0..n).map(|i| a[i + i * n]).collect();
        let mut cold = vec![0.0; n];
        let rc = pcg(dense_matvec(&a, n), &diag, &b, &mut cold, 1e-10, 500);
        let mut warm: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let rw = pcg(dense_matvec(&a, n), &diag, &b, &mut warm, 1e-10, 500);
        assert!(rw.iterations < rc.iterations, "{} vs {}", rw.iterations, rc.iterations);
    }

    #[test]
    fn respects_max_iter() {
        let n = 100;
        let (a, _, b) = spd_system(n);
        let diag: Vec<f64> = (0..n).map(|i| a[i + i * n]).collect();
        let mut x = vec![0.0; n];
        let res = pcg(dense_matvec(&a, n), &diag, &b, &mut x, 1e-30, 3);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_diagonal() {
        let mut x = vec![0.0; 2];
        pcg(|_, out| out.fill(0.0), &[1.0, 0.0], &[1.0, 1.0], &mut x, 1e-10, 10);
    }
}
