//! The modified 1-D modal basis (Karniadakis & Sherwin):
//!
//! * ψ₀(ξ) = (1−ξ)/2 — left vertex mode,
//! * ψ_P(ξ) = (1+ξ)/2 — right vertex mode,
//! * ψ_k(ξ) = (1−ξ)/2 · (1+ξ)/2 · P^{1,1}_{k−1}(ξ), k = 1..P−1 —
//!   hierarchical interior ("bubble") modes.
//!
//! Vertex modes give C0 coupling at element boundaries; bubble modes
//! vanish there. Under ξ → −ξ the bubble mode of index k picks up the
//! sign (−1)^{k−1} — the sign assembly must apply on reversed shared
//! edges.

use nkt_poly::jacobi::{jacobi, jacobi_derivative};

/// Evaluates the `i`-th modified mode of an order-`p` expansion at `xi`.
/// Index convention: 0 = left vertex, `p` = right vertex, 1..p−1 bubbles.
pub fn eval_mode(p: usize, i: usize, xi: f64) -> f64 {
    assert!(i <= p, "mode index {i} out of range for order {p}");
    if i == 0 {
        0.5 * (1.0 - xi)
    } else if i == p {
        0.5 * (1.0 + xi)
    } else {
        0.25 * (1.0 - xi) * (1.0 + xi) * jacobi(i - 1, 1.0, 1.0, xi)
    }
}

/// Derivative of [`eval_mode`] with respect to ξ.
pub fn eval_mode_deriv(p: usize, i: usize, xi: f64) -> f64 {
    assert!(i <= p, "mode index {i} out of range for order {p}");
    if i == 0 {
        -0.5
    } else if i == p {
        0.5
    } else {
        let j = jacobi(i - 1, 1.0, 1.0, xi);
        let dj = jacobi_derivative(i - 1, 1.0, 1.0, xi);
        0.25 * (-2.0 * xi * j + (1.0 - xi * xi) * dj)
    }
}

/// Sign the bubble mode `k` (1-based) picks up under edge reversal:
/// (−1)^{k−1}.
pub fn edge_reversal_sign(k: usize) -> f64 {
    if (k - 1).is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// Precomputed 1-D basis tables at a set of quadrature points.
#[derive(Debug, Clone)]
pub struct Basis1d {
    /// Polynomial order P (P+1 modes).
    pub order: usize,
    /// Quadrature points.
    pub z: Vec<f64>,
    /// Quadrature weights.
    pub w: Vec<f64>,
    /// `val[i][q]` = ψ_i(z_q).
    pub val: Vec<Vec<f64>>,
    /// `dval[i][q]` = ψ_i'(z_q).
    pub dval: Vec<Vec<f64>>,
}

impl Basis1d {
    /// Tabulates the order-`p` basis at the given rule.
    pub fn tabulate(p: usize, z: &[f64], w: &[f64]) -> Basis1d {
        assert_eq!(z.len(), w.len());
        let nm = p + 1;
        let mut val = vec![vec![0.0; z.len()]; nm];
        let mut dval = vec![vec![0.0; z.len()]; nm];
        for i in 0..nm {
            for (q, &zq) in z.iter().enumerate() {
                val[i][q] = eval_mode(p, i, zq);
                dval[i][q] = eval_mode_deriv(p, i, zq);
            }
        }
        Basis1d { order: p, z: z.to_vec(), w: w.to_vec(), val, dval }
    }

    /// Standard choice: Gauss-Lobatto-Legendre with `p + 2` points
    /// (integrates the order-2p mass terms with margin).
    pub fn with_gll(p: usize) -> Basis1d {
        let rule = nkt_poly::quadrature::zwglj(p + 2, 0.0, 0.0);
        Basis1d::tabulate(p, &rule.z, &rule.w)
    }

    /// Number of modes (P + 1).
    pub fn nmodes(&self) -> usize {
        self.order + 1
    }

    /// Number of quadrature points.
    pub fn nquad(&self) -> usize {
        self.z.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_modes_are_linear_hats() {
        for &xi in &[-1.0, 0.0, 0.5, 1.0] {
            assert!((eval_mode(4, 0, xi) - 0.5 * (1.0 - xi)).abs() < 1e-15);
            assert!((eval_mode(4, 4, xi) - 0.5 * (1.0 + xi)).abs() < 1e-15);
        }
    }

    #[test]
    fn bubble_modes_vanish_at_endpoints() {
        for p in 2..8 {
            for k in 1..p {
                assert!(eval_mode(p, k, -1.0).abs() < 1e-15, "p={p} k={k}");
                assert!(eval_mode(p, k, 1.0).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn partition_of_unity_for_vertex_modes() {
        for &xi in &[-0.9, -0.2, 0.6] {
            let s = eval_mode(5, 0, xi) + eval_mode(5, 5, xi);
            assert!((s - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for p in [3usize, 6] {
            for i in 0..=p {
                for &xi in &[-0.7, 0.1, 0.8] {
                    let fd = (eval_mode(p, i, xi + h) - eval_mode(p, i, xi - h)) / (2.0 * h);
                    let an = eval_mode_deriv(p, i, xi);
                    assert!((fd - an).abs() < 1e-6, "p={p} i={i} xi={xi}");
                }
            }
        }
    }

    #[test]
    fn reversal_symmetry() {
        // psi_k(-xi) = sign(k) * psi_k(xi) for bubbles.
        for p in [4usize, 7] {
            for k in 1..p {
                for &xi in &[0.3, 0.77] {
                    let lhs = eval_mode(p, k, -xi);
                    let rhs = edge_reversal_sign(k) * eval_mode(p, k, xi);
                    assert!((lhs - rhs).abs() < 1e-13, "p={p} k={k}");
                }
            }
        }
    }

    #[test]
    fn mass_matrix_spd_and_sparse_pattern() {
        // The modified basis gives a mass matrix coupling vertex and
        // bubble modes but still SPD.
        let b = Basis1d::with_gll(6);
        let nm = b.nmodes();
        let mut m = vec![0.0; nm * nm];
        for i in 0..nm {
            for j in 0..nm {
                let mut s = 0.0;
                for q in 0..b.nquad() {
                    s += b.w[q] * b.val[i][q] * b.val[j][q];
                }
                m[i + j * nm] = s;
            }
        }
        // SPD check via Cholesky.
        nkt_blas::dpotrf(nm, &mut m, nm).expect("1-D mass matrix must be SPD");
    }

    #[test]
    fn stiffness_matrix_of_linears_matches_fem() {
        // For P=1 the basis is linear FEM: K = [[1/2, -1/2], [-1/2, 1/2]].
        let b = Basis1d::with_gll(1);
        let mut k = [[0.0; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                for q in 0..b.nquad() {
                    k[i][j] += b.w[q] * b.dval[i][q] * b.dval[j][q];
                }
            }
        }
        assert!((k[0][0] - 0.5).abs() < 1e-14);
        assert!((k[0][1] + 0.5).abs() < 1e-14);
        assert!((k[1][1] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn tabulation_matches_pointwise_eval() {
        let b = Basis1d::with_gll(5);
        for i in 0..b.nmodes() {
            for (q, &z) in b.z.iter().enumerate() {
                assert_eq!(b.val[i][q], eval_mode(5, i, z));
            }
        }
    }
}
