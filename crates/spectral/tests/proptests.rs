//! Property-based tests for the spectral/hp element method: exactness of
//! polynomial reproduction, operator symmetry and assembly invariants
//! over random meshes and orders.

use nkt_mesh::{rect_quads, rect_tris, BoundaryTag};
use nkt_spectral::element::Expansion;
use nkt_spectral::{Assembly, HelmholtzProblem, QuadBasis, SolveMethod, TriBasis};
use nkt_testkit::{prop_assert, prop_assert_eq, prop_check};

const ALL: &[BoundaryTag] = &[
    BoundaryTag::Wall,
    BoundaryTag::Inflow,
    BoundaryTag::Outflow,
    BoundaryTag::Side,
];

prop_check! {
    #![cases(12)]

    /// Laplace problems reproduce any affine solution exactly on any
    /// quadrilateral mesh and order.
    fn laplace_reproduces_affine(nx in 1usize..4, ny in 1usize..4, p in 2usize..6,
                                 a in -2.0f64..2.0, b in -2.0f64..2.0, c in -2.0f64..2.0) {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, nx, ny);
        let exact = move |x: [f64; 2]| a + b * x[0] + c * x[1];
        let mut prob = HelmholtzProblem::new(mesh, p, 0.0, ALL);
        let (u, _) = prob.solve(|_| 0.0, exact, SolveMethod::BandedDirect);
        prop_assert!(prob.l2_error(&u, exact) < 1e-8);
    }

    /// Same on triangular meshes (collapsed-coordinate basis).
    fn laplace_affine_on_triangles(n in 1usize..3, p in 2usize..5, b in -2.0f64..2.0) {
        let mesh = rect_tris(0.0, 1.0, 0.0, 1.0, n, n);
        let exact = move |x: [f64; 2]| 1.0 + b * x[0] - 0.5 * x[1];
        let mut prob = HelmholtzProblem::new(mesh, p, 0.0, ALL);
        let (u, _) = prob.solve(|_| 0.0, exact, SolveMethod::BandedDirect);
        prop_assert!(prob.l2_error(&u, exact) < 1e-7);
    }

    /// The assembled Helmholtz matrix is symmetric (read through the
    /// banded storage) for random λ.
    fn assembled_matrix_symmetric(nx in 1usize..3, p in 2usize..5, lam in 0.0f64..100.0) {
        let mesh = rect_quads(0.0, 2.0, 0.0, 1.0, nx + 1, nx);
        let prob = HelmholtzProblem::new(mesh, p, lam, &[]);
        let n = prob.asm.ndof;
        for i in (0..n).step_by(7) {
            for j in (0..n).step_by(5) {
                prop_assert!((prob.matrix.get(i, j) - prob.matrix.get(j, i)).abs() < 1e-12);
            }
        }
    }

    /// Dof counts follow the Euler-style formula for quads:
    /// verts + edges(p−1) + elems(p−1)².
    fn quad_dof_count_formula(nx in 1usize..5, ny in 1usize..5, p in 2usize..6) {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, nx, ny);
        let basis = QuadBasis::new(p);
        let asm = Assembly::build(&mesh, |_| &basis, |_| false);
        let nv = (nx + 1) * (ny + 1);
        let ne = nx * (ny + 1) + ny * (nx + 1);
        let expect = nv + ne * (p - 1) + nx * ny * (p - 1) * (p - 1);
        prop_assert_eq!(asm.ndof, expect);
    }

    /// Gather/scatter adjointness: <scatter(x_local), y> == <x_local,
    /// gather(y)> for every element (signs cancel).
    fn gather_scatter_adjoint(nx in 1usize..4, p in 2usize..5, seed in 0u64..100) {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, nx, nx);
        let basis = QuadBasis::new(p);
        let asm = Assembly::build(&mesh, |_| &basis, |_| false);
        let nm = basis.nmodes();
        let xl: Vec<f64> = (0..nm).map(|i| ((i as u64 + seed) as f64 * 0.17).sin()).collect();
        let yg: Vec<f64> = (0..asm.ndof).map(|i| ((i as u64 * 3 + seed) as f64 * 0.07).cos()).collect();
        for ei in 0..mesh.nelems() {
            let mut scattered = vec![0.0; asm.ndof];
            asm.scatter_add(ei, &xl, &mut scattered);
            let lhs: f64 = scattered.iter().zip(&yg).map(|(a, b)| a * b).sum();
            let mut gathered = vec![0.0; nm];
            asm.gather(ei, &yg, &mut gathered);
            let rhs: f64 = xl.iter().zip(&gathered).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-10, "element {ei}");
        }
    }

    /// Triangle basis: quadrature of any mode against the constant one
    /// equals its exact integral computed from the vertex modes'
    /// partition of unity (sanity of collapsed-coordinate weights).
    fn tri_mode_integrals_finite(p in 1usize..6) {
        let b = TriBasis::new(p);
        for m in 0..b.nmodes() {
            let integral: f64 = (0..b.nquad()).map(|q| b.wq[q] * b.val[m][q]).sum();
            prop_assert!(integral.is_finite());
            prop_assert!(integral.abs() <= 2.0 + 1e-9, "mode {m}: {integral}");
        }
        // Vertex modes (barycentric) each integrate to area/3 = 2/3.
        for m in 0..3 {
            let integral: f64 = (0..b.nquad()).map(|q| b.wq[q] * b.val[m][q]).sum();
            prop_assert!((integral - 2.0 / 3.0).abs() < 1e-10);
        }
    }
}
