//! Measured overlap windows: how much interior work each stage really
//! had available to hide behind its halo exchange.
//!
//! When split-phase gather-scatter is on (`NKT_GS_OVERLAP=1`), every
//! Helmholtz apply emits a `gs.window` record carrying the interior /
//! boundary element split it actually used. Folding those records per
//! stage yields a *measured* hideable-work fraction, replacing the
//! analytic `1 − 6/V^{1/3}` surface-to-volume estimate in the Table 3 /
//! Figures 15–16 replay. The replay still needs the window at element
//! counts the native run never saw, so each stage is compressed to a
//! single surface coefficient `c = (1 − w)·V^{1/3}` — the measured
//! generalization of the analytic `c = 6` — and re-expanded with
//! [`window_at`].

use nkt_prof::PRank;
use nkt_trace::json::{parse, Value};

/// Per-stage overlap window folded over all `gs.window` records that
/// were nested (directly or transitively) under a span of that stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapWindow {
    /// Owning stage name, or `"other"` for records outside any stage.
    pub stage: String,
    /// Number of split-phase applies folded in.
    pub applies: u64,
    /// Total interior (hideable) elements across those applies.
    pub interior: u64,
    /// Total boundary (exposed) elements across those applies.
    pub boundary: u64,
}

impl OverlapWindow {
    /// Local elements per apply.
    pub fn volume(&self) -> f64 {
        if self.applies == 0 {
            0.0
        } else {
            (self.interior + self.boundary) as f64 / self.applies as f64
        }
    }

    /// Measured hideable fraction `interior / (interior + boundary)`.
    pub fn window(&self) -> f64 {
        let total = self.interior + self.boundary;
        if total == 0 {
            0.0
        } else {
            self.interior as f64 / total as f64
        }
    }

    /// Surface coefficient `c = (1 − window)·V^{1/3}` — the measured
    /// stand-in for the analytic `6` of `1 − 6/V^{1/3}`.
    pub fn coef(&self) -> f64 {
        (1.0 - self.window()) * self.volume().cbrt()
    }
}

/// Re-expands a surface coefficient to the window at `vol` local
/// elements: `max(0, 1 − c/vol^{1/3})`.
pub fn window_at(coef: f64, vol: f64) -> f64 {
    if vol <= 0.0 {
        0.0
    } else {
        (1.0 - coef / vol.cbrt()).max(0.0)
    }
}

/// The analytic fallback coefficient (`1 − 6/V^{1/3}`).
pub const ANALYTIC_COEF: f64 = 6.0;

/// Extracts per-stage overlap windows from rank timelines.
///
/// Spans record on *exit*, so an enclosing stage span appears after the
/// `gs.window` records it contains, at smaller depth. Each record is
/// attributed to the first later same-rank span with `cat == "stage"`
/// and smaller depth; records with no such owner fold into `"other"`.
pub fn overlap_windows(ranks: &[PRank]) -> Vec<OverlapWindow> {
    let mut out: Vec<OverlapWindow> = Vec::new();
    for r in ranks {
        for (i, s) in r.spans.iter().enumerate() {
            if s.cat != "gs" || s.name != "gs.window" {
                continue;
            }
            let interior = s.arg("interior").unwrap_or(0.0).max(0.0) as u64;
            let boundary = s.arg("boundary").unwrap_or(0.0).max(0.0) as u64;
            let owner = r.spans[i + 1..]
                .iter()
                .find(|o| o.cat == "stage" && o.depth < s.depth)
                .map(|o| o.name.as_str())
                .unwrap_or("other");
            let w = match out.iter_mut().find(|w| w.stage == owner) {
                Some(w) => w,
                None => {
                    out.push(OverlapWindow {
                        stage: owner.to_string(),
                        applies: 0,
                        interior: 0,
                        boundary: 0,
                    });
                    out.last_mut().unwrap()
                }
            };
            w.applies += 1;
            w.interior += interior;
            w.boundary += boundary;
        }
    }
    out.sort_by(|a, b| a.stage.cmp(&b.stage));
    out
}

/// Single apply-weighted coefficient over all stages — what a replay
/// uses when it models one undifferentiated gather-scatter per step.
/// `None` when there are no applies (native run had overlap off).
pub fn merged_coef(windows: &[OverlapWindow]) -> Option<f64> {
    let applies: u64 = windows.iter().map(|w| w.applies).sum();
    if applies == 0 {
        return None;
    }
    let sum: f64 = windows.iter().map(|w| w.coef() * w.applies as f64).sum();
    Some(sum / applies as f64)
}

/// Loads the `windows` array back out of a `CALIB_<run>.json` file, so
/// the Table 3 / Figures 15–16 bins can consume a committed native
/// measurement without relinking the whole document model.
pub fn load_windows(path: &std::path::Path) -> Result<Vec<OverlapWindow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let arr = doc
        .get("windows")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: no windows array", path.display()))?;
    let mut out = Vec::new();
    for w in arr {
        let stage = w
            .get("stage")
            .and_then(Value::as_str)
            .ok_or("window entry without stage")?
            .to_string();
        let num =
            |key: &str| w.get(key).and_then(Value::as_f64).unwrap_or(0.0).max(0.0) as u64;
        out.push(OverlapWindow {
            stage,
            applies: num("applies"),
            interior: num("interior"),
            boundary: num("boundary"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_prof::PSpan;

    fn span(name: &str, cat: &str, depth: u32, args: &[(&str, f64)]) -> PSpan {
        PSpan {
            name: name.to_string(),
            cat: cat.to_string(),
            dur_s: f64::NAN,
            vt0: 0.0,
            vt1: 0.0,
            depth,
            args: args.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        }
    }

    #[test]
    fn attributes_windows_to_enclosing_stage() {
        // Exit order: two windows inside PressureSolve (stage exits
        // after them, smaller depth), one orphan after it.
        let spans = vec![
            span("gs.window", "gs", 2, &[("interior", 90.0), ("boundary", 10.0)]),
            span("gs.window", "gs", 2, &[("interior", 80.0), ("boundary", 20.0)]),
            span("PressureSolve", "stage", 1, &[]),
            span("gs.window", "gs", 1, &[("interior", 5.0), ("boundary", 5.0)]),
        ];
        let ws = overlap_windows(&[PRank { rank: 0, spans }]);
        assert_eq!(ws.len(), 2);
        let ps = ws.iter().find(|w| w.stage == "PressureSolve").unwrap();
        assert_eq!((ps.applies, ps.interior, ps.boundary), (2, 170, 30));
        assert!((ps.window() - 0.85).abs() < 1e-12);
        assert!((ps.volume() - 100.0).abs() < 1e-12);
        let other = ws.iter().find(|w| w.stage == "other").unwrap();
        assert_eq!(other.applies, 1);
    }

    #[test]
    fn coef_round_trips_through_window_at() {
        let w = OverlapWindow {
            stage: "x".to_string(),
            applies: 4,
            interior: 4 * 343 - 4 * 100,
            boundary: 4 * 100,
        };
        // Re-expanding at the measured volume reproduces the window.
        assert!((window_at(w.coef(), w.volume()) - w.window()).abs() < 1e-12);
        // The analytic coefficient reproduces 1 - 6/V^{1/3}.
        assert!((window_at(ANALYTIC_COEF, 1000.0) - 0.4).abs() < 1e-12);
        // Tiny volumes clamp to zero instead of going negative.
        assert_eq!(window_at(ANALYTIC_COEF, 8.0), 0.0);
    }

    #[test]
    fn merged_coef_weights_by_applies() {
        let a = OverlapWindow { stage: "a".into(), applies: 3, interior: 300, boundary: 0 };
        let b = OverlapWindow { stage: "b".into(), applies: 1, interior: 0, boundary: 100 };
        let m = merged_coef(&[a.clone(), b.clone()]).unwrap();
        let expect = (a.coef() * 3.0 + b.coef()) / 4.0;
        assert!((m - expect).abs() < 1e-12);
        assert!(merged_coef(&[]).is_none());
    }
}
