//! Diffs a fresh calibration run against the committed baselines in
//! `results/CALIB_*.json` and fails (exit 1) when the measured-vs-
//! modeled story regresses:
//!
//! * a comm op's share of modeled time grows (more fiction to explain),
//! * a stage's measured overlap window shrinks (less work to hide
//!   communication behind),
//! * a fitted channel or kernel constant drifts in either direction
//!   beyond tolerance (the calibration itself moved).
//!
//! Calibrations are built from deterministic virtual-time quantities,
//! so a mismatch means the *code path* changed, not the machine.
//!
//! ```sh
//! NKT_CALIB=1 NKT_TRACE_DIR=/tmp/fresh cargo run --release --example fourier_dns -- --np 4
//! cargo run -p nkt-calib --bin calib_diff -- --fresh /tmp/fresh
//! ```
//!
//! `scripts/calib_diff` wraps both steps.

use nkt_trace::json::{parse, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The gated numbers read back from one `CALIB_*.json`.
#[derive(Debug, Clone, Default)]
struct Gauges {
    /// `(op, vshare)` for comm-class drift rows, file order.
    comm_shares: Vec<(String, f64)>,
    /// `(stage, window)` for measured overlap windows, file order.
    windows: Vec<(String, f64)>,
    /// `(label, value)` for fit constants: `alpha_us`, `beta_mbs`, and
    /// per-kernel `r_inf[<kernel>]`.
    fits: Vec<(String, f64)>,
}

/// Which direction of movement counts as a regression.
#[derive(Debug, Clone, Copy)]
enum Sense {
    /// Growth regresses (comm share).
    Up,
    /// Shrinkage regresses (overlap window).
    Down,
    /// Any movement regresses (calibration constants).
    Either,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Ok,
    Better,
    Regressed,
}

/// Band check with a direction: fresh may move within
/// `abs + rel * |base|` of the baseline; beyond that, the `sense`
/// decides whether the move is a regression or an improvement.
fn judge(base: f64, fresh: f64, abs: f64, rel: f64, sense: Sense) -> Verdict {
    let tol = abs + rel * base.abs();
    if (fresh - base).abs() <= tol {
        return Verdict::Ok;
    }
    let grew = fresh > base;
    match sense {
        Sense::Up => {
            if grew {
                Verdict::Regressed
            } else {
                Verdict::Better
            }
        }
        Sense::Down => {
            if grew {
                Verdict::Better
            } else {
                Verdict::Regressed
            }
        }
        Sense::Either => Verdict::Regressed,
    }
}

fn load_gauges(path: &Path) -> Result<Gauges, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut g = Gauges::default();
    if let Some(arr) = doc.get("drift").and_then(Value::as_arr) {
        for d in arr {
            if d.get("class").and_then(Value::as_str) != Some("comm") {
                continue;
            }
            let name = d
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{}: drift row without a name", path.display()))?;
            let share = d
                .get("vshare")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{}: comm row {name} without vshare", path.display()))?;
            g.comm_shares.push((name.to_string(), share));
        }
    }
    if let Some(arr) = doc.get("windows").and_then(Value::as_arr) {
        for w in arr {
            let stage = w
                .get("stage")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{}: window without a stage", path.display()))?;
            let win = w
                .get("window")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{}: window {stage} without value", path.display()))?;
            g.windows.push((stage.to_string(), win));
        }
    }
    if let Some(ab) = doc.get("alpha_beta") {
        if let Some(a) = ab.get("alpha_us").and_then(Value::as_f64) {
            g.fits.push(("alpha_us".to_string(), a));
        }
        if let Some(b) = ab.get("beta_mbs").and_then(Value::as_f64) {
            g.fits.push(("beta_mbs".to_string(), b));
        }
    }
    if let Some(arr) = doc.get("kernel_fits").and_then(Value::as_arr) {
        for k in arr {
            let (Some(name), Some(r)) = (
                k.get("kernel").and_then(Value::as_str),
                k.get("r_inf").and_then(Value::as_f64),
            ) else {
                continue;
            };
            g.fits.push((format!("r_inf[{name}]"), r));
        }
    }
    Ok(g)
}

struct Args {
    baseline: PathBuf,
    fresh: PathBuf,
    abs: f64,
    rel: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: calib_diff --fresh <dir> [--baseline <dir>] [--abs <frac>] [--rel <frac>]\n\
         \n\
         --fresh     directory holding the fresh CALIB_*.json run (required)\n\
         --baseline  committed baselines (default: <workspace>/results)\n\
         --abs       absolute tolerance on gated values (default: 0.02)\n\
         --rel       relative tolerance on gated values (default: 0.10 = 10%)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut fresh = None;
    let mut abs = 0.02;
    let mut rel = 0.10;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("calib_diff: {name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(val("--baseline"))),
            "--fresh" => fresh = Some(PathBuf::from(val("--fresh"))),
            "--abs" => abs = val("--abs").parse().unwrap_or_else(|_| usage()),
            "--rel" => rel = val("--rel").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    Args {
        baseline: baseline.unwrap_or_else(nkt_trace::results_dir),
        fresh: fresh.unwrap_or_else(|| usage()),
        abs,
        rel,
    }
}

fn calib_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("CALIB_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

fn label(v: Verdict, regressions: &mut usize) -> &'static str {
    match v {
        Verdict::Ok => "ok",
        Verdict::Better => "better",
        Verdict::Regressed => {
            *regressions += 1;
            "REGRESSED"
        }
    }
}

/// Prints one metric group, judging fresh rows against matching
/// baseline rows by name.
fn diff_group(
    title: &str,
    base: &[(String, f64)],
    fresh: &[(String, f64)],
    sense: Sense,
    args: &Args,
    regressions: &mut usize,
) {
    for (name, b) in base {
        let Some((_, fr)) = fresh.iter().find(|(n, _)| n == name) else {
            println!(
                "{:<32} {:>10.4} {:>10}  MISSING from fresh run",
                format!("{title}[{name}]"),
                b,
                "-"
            );
            *regressions += 1;
            continue;
        };
        let v = judge(*b, *fr, args.abs, args.rel, sense);
        println!(
            "{:<32} {:>10.4} {:>10.4}  {}",
            format!("{title}[{name}]"),
            b,
            fr,
            label(v, regressions)
        );
    }
    for (name, fr) in fresh {
        if !base.iter().any(|(n, _)| n == name) {
            println!(
                "{:<32} {:>10} {:>10.4}  new (no baseline)",
                format!("{title}[{name}]"),
                "-",
                fr
            );
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let fresh_files = calib_files(&args.fresh);
    if fresh_files.is_empty() {
        eprintln!("calib_diff: no CALIB_*.json in {}", args.fresh.display());
        return ExitCode::from(2);
    }
    println!(
        "calib_diff: fresh {} vs baseline {} (tolerance: {:.3} abs + {:.0}% rel)",
        args.fresh.display(),
        args.baseline.display(),
        args.abs,
        100.0 * args.rel
    );

    let mut regressions = 0usize;
    for fresh_path in &fresh_files {
        let fname = fresh_path.file_name().unwrap().to_str().unwrap();
        let base_path = args.baseline.join(fname);
        let fresh = match load_gauges(fresh_path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("calib_diff: {e}");
                return ExitCode::from(2);
            }
        };
        if !base_path.exists() {
            println!("\n{fname}: no committed baseline — skipped");
            continue;
        }
        let base = match load_gauges(&base_path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("calib_diff: {e}");
                return ExitCode::from(2);
            }
        };
        println!("\n{fname}:");
        println!("{:<32} {:>10} {:>10}  verdict", "metric", "base", "fresh");
        diff_group("comm_share", &base.comm_shares, &fresh.comm_shares, Sense::Up, &args, &mut regressions);
        diff_group("window", &base.windows, &fresh.windows, Sense::Down, &args, &mut regressions);
        diff_group("fit", &base.fits, &fresh.fits, Sense::Either, &args, &mut regressions);
    }

    if regressions > 0 {
        println!("\ncalib_diff: {regressions} regression(s) beyond the tolerance band");
        ExitCode::FAILURE
    } else {
        println!("\ncalib_diff: OK — no regressions");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_decides_which_direction_regresses() {
        // base 0.50, abs 0.02, rel 10% → tol 0.07.
        assert_eq!(judge(0.50, 0.56, 0.02, 0.10, Sense::Up), Verdict::Ok);
        assert_eq!(judge(0.50, 0.60, 0.02, 0.10, Sense::Up), Verdict::Regressed);
        assert_eq!(judge(0.50, 0.40, 0.02, 0.10, Sense::Up), Verdict::Better);
        assert_eq!(judge(0.50, 0.40, 0.02, 0.10, Sense::Down), Verdict::Regressed);
        assert_eq!(judge(0.50, 0.60, 0.02, 0.10, Sense::Down), Verdict::Better);
        assert_eq!(judge(0.50, 0.60, 0.02, 0.10, Sense::Either), Verdict::Regressed);
        assert_eq!(judge(0.50, 0.40, 0.02, 0.10, Sense::Either), Verdict::Regressed);
    }

    #[test]
    fn load_gauges_reads_the_calib_schema() {
        let dir = std::env::temp_dir().join("nkt_calib_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("CALIB_sample.json");
        std::fs::write(
            &p,
            r#"{"schema":"nkt-calib-1","run":"sample",
                "drift":[{"class":"stage","name":"NonLinear","vshare":0.9},
                         {"class":"comm","name":"alltoall","vshare":0.6},
                         {"class":"comm","name":"p2p.send","vshare":0.4}],
                "alpha_beta":{"alpha_us":240.0,"beta_mbs":8.5},
                "kernel_fits":[{"kernel":"dgemm","r_inf":180.0}],
                "windows":[{"stage":"PressureSolve","window":0.82}]}"#,
        )
        .unwrap();
        let g = load_gauges(&p).unwrap();
        // Only comm-class drift rows are gated.
        assert_eq!(g.comm_shares.len(), 2);
        assert_eq!(g.comm_shares[0], ("alltoall".to_string(), 0.6));
        assert_eq!(g.windows, vec![("PressureSolve".to_string(), 0.82)]);
        assert_eq!(g.fits.len(), 3);
        assert!(g.fits.contains(&("r_inf[dgemm]".to_string(), 180.0)));
        std::fs::remove_file(&p).unwrap();
    }
}
