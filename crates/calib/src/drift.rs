//! Measured-vs-modeled drift rows: for every stage, comm op class and
//! compute kernel family observed in a run, the modeled virtual seconds
//! next to the measured host seconds.
//!
//! Only the virtual side (plus exact call/byte/flop counts) is
//! serialized — it is a pure function of the seeded simulation, so
//! `CALIB_<run>.json` stays byte-identical across reruns. The host side
//! and the drift *ratio* live in the printed report only.

use nkt_prof::PRank;

/// Canonical virtual compute rate (Mflop/s) every kernel charge in the
/// workspace uses (`fft_virtual_secs`, `elem_virtual_secs`, ...). The
/// modeled seconds of a `kernel`-cat span are its flop count over this.
pub const CANONICAL_MFLOPS: f64 = 100.0;

/// One drift row: a (class, name) bucket summed over all ranks.
#[derive(Debug, Clone)]
pub struct DriftRow {
    /// `stage` (the 7 solver stages), `comm` (MPI op classes), or
    /// `kernel` (dgemm/fft/helmholtz/banded_solve passes).
    pub class: &'static str,
    /// Bucket name (stage name, op name, kernel family).
    pub name: String,
    /// Spans aggregated into this row.
    pub calls: u64,
    /// Modeled virtual seconds (span vdur for stage/comm; flops at the
    /// canonical rate for kernels).
    pub vsecs: f64,
    /// Measured host seconds (sum of finite host durations; report
    /// only — never serialized).
    pub host_s: f64,
    /// Spans in this bucket that carried a finite host duration.
    pub host_calls: u64,
    /// Payload bytes (comm rows; 0 elsewhere).
    pub bytes: u64,
    /// Flop count (kernel rows; 0 elsewhere).
    pub flops: f64,
    /// `vsecs` over the class's total vsecs (0 when the class total is 0).
    pub vshare: f64,
}

impl DriftRow {
    /// Modeled-over-measured drift ratio (`None` without host data).
    pub fn ratio(&self) -> Option<f64> {
        (self.host_s > 0.0).then(|| self.vsecs / self.host_s)
    }
}

fn class_order(class: &str) -> usize {
    match class {
        "stage" => 0,
        "comm" => 1,
        _ => 2,
    }
}

/// Builds the drift rows from rank timelines: buckets by category —
/// `stage` spans by stage name, `mpi` spans by op name (p2p send/recv
/// records fold into `p2p.send`/`p2p.recv` classes), `kernel` spans by
/// family — then fills per-class shares. Rows sort by (class, name).
pub fn drift_rows(ranks: &[PRank]) -> Vec<DriftRow> {
    let mut rows: Vec<DriftRow> = Vec::new();
    let mut bump = |class: &'static str,
                    name: &str,
                    vsecs: f64,
                    host: f64,
                    bytes: u64,
                    flops: f64| {
        let row = match rows.iter_mut().find(|r| r.class == class && r.name == name) {
            Some(r) => r,
            None => {
                rows.push(DriftRow {
                    class,
                    name: name.to_string(),
                    calls: 0,
                    vsecs: 0.0,
                    host_s: 0.0,
                    host_calls: 0,
                    bytes: 0,
                    flops: 0.0,
                    vshare: 0.0,
                });
                rows.last_mut().unwrap()
            }
        };
        row.calls += 1;
        row.vsecs += vsecs;
        if host.is_finite() {
            row.host_s += host;
            row.host_calls += 1;
        }
        row.bytes += bytes;
        row.flops += flops;
    };
    for r in ranks {
        for s in &r.spans {
            let vdur = s.vdur().unwrap_or(0.0);
            match s.cat.as_str() {
                "stage" => bump("stage", &s.name, vdur, s.dur_s, 0, 0.0),
                "mpi" => {
                    let bytes = s.arg("bytes").unwrap_or(0.0) as u64;
                    bump("comm", &s.name, vdur, s.dur_s, bytes, 0.0);
                }
                "mpi.p2p.send" => {
                    let bytes = s.arg("bytes").unwrap_or(0.0) as u64;
                    bump("comm", "p2p.send", vdur, s.dur_s, bytes, 0.0);
                }
                "mpi.p2p.recv" => {
                    bump("comm", "p2p.recv", vdur, s.dur_s, 0, 0.0);
                }
                "kernel" => {
                    let flops = s.arg("flops").unwrap_or(0.0);
                    let modeled = flops / (CANONICAL_MFLOPS * 1e6);
                    bump("kernel", &s.name, modeled, s.dur_s, 0, flops);
                }
                _ => {}
            }
        }
    }
    rows.sort_by(|a, b| {
        class_order(a.class)
            .cmp(&class_order(b.class))
            .then_with(|| a.name.cmp(&b.name))
    });
    for class in ["stage", "comm", "kernel"] {
        let total: f64 = rows.iter().filter(|r| r.class == class).map(|r| r.vsecs).sum();
        if total > 0.0 {
            for r in rows.iter_mut().filter(|r| r.class == class) {
                r.vshare = r.vsecs / total;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_prof::{PRank, PSpan};

    fn vspan(name: &str, cat: &str, vt0: f64, vt1: f64, args: &[(&str, f64)]) -> PSpan {
        PSpan {
            name: name.to_string(),
            cat: cat.to_string(),
            dur_s: f64::NAN,
            vt0,
            vt1,
            depth: 0,
            args: args.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        }
    }

    #[test]
    fn buckets_by_class_and_fills_shares() {
        let spans = vec![
            vspan("NonLinear", "stage", 0.0, 3.0, &[]),
            vspan("PressureSolve", "stage", 3.0, 4.0, &[]),
            vspan("alltoall", "mpi", 0.5, 0.7, &[]),
            vspan("alltoall", "mpi", 1.0, 1.2, &[]),
            vspan("allreduce", "mpi", 2.0, 2.6, &[]),
            vspan("send>1", "mpi.p2p.send", 0.0, 0.1, &[("bytes", 4096.0)]),
            vspan("fft", "kernel", 0.0, 0.0, &[("flops", 2e8)]),
        ];
        let rows = drift_rows(&[PRank { rank: 0, spans }]);
        let get = |class: &str, name: &str| {
            rows.iter().find(|r| r.class == class && r.name == name).unwrap()
        };
        let nl = get("stage", "NonLinear");
        assert_eq!(nl.calls, 1);
        assert!((nl.vsecs - 3.0).abs() < 1e-12);
        assert!((nl.vshare - 0.75).abs() < 1e-12);
        let a2a = get("comm", "alltoall");
        assert_eq!(a2a.calls, 2);
        assert!((a2a.vsecs - 0.4).abs() < 1e-12);
        let snd = get("comm", "p2p.send");
        assert_eq!(snd.bytes, 4096);
        // 2e8 flops at the canonical 100 Mflop/s = 2 modeled seconds.
        let fft = get("kernel", "fft");
        assert!((fft.vsecs - 2.0).abs() < 1e-12);
        assert_eq!(fft.vshare, 1.0);
        // Host side absent everywhere -> no ratio, zero host calls.
        assert!(fft.ratio().is_none());
        assert_eq!(fft.host_calls, 0);
        // Sorted: all stage rows before comm rows before kernel rows.
        let classes: Vec<&str> = rows.iter().map(|r| r.class).collect();
        let mut sorted = classes.clone();
        sorted.sort_by_key(|c| super::class_order(c));
        assert_eq!(classes, sorted);
    }
}
