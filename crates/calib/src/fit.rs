//! Deterministic least-squares calibration fits.
//!
//! * **α–β channel fits**: every `mpi.p2p.send` span records its payload
//!   size and modeled `arrival` time; `arrival − vt1` is the wire part
//!   (latency + bytes/bandwidth + any link queueing), so a linear fit of
//!   that delay against bytes recovers the effective latency (α, µs) and
//!   bandwidth (β, MB/s) the run actually experienced — emitted next to
//!   the static `nkt-net` channel constants.
//! * **Kernel family fits**: the paper's Figures 1–6 sweeps all follow
//!   `r(n) ≈ R∞ · n / (n + n½)` (sustained rate saturating at R∞ with
//!   half-performance size n½, Hockney's form). Fitting the workspace's
//!   roofline model curves onto that form compresses each machine×kernel
//!   pair into two numbers comparable against measured host sweeps.
//!
//! Both fits run over fixed sample grids / deterministic span streams
//! with fixed summation order, so their outputs serialize byte-stably.

use nkt_machine::{Kernel, Machine};
use nkt_net::Channel;
use nkt_prof::PRank;

/// Least-squares line `y = intercept + slope·x`. Returns `None` when
/// there are fewer than two samples or no spread in x.
fn lsq_line(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return None;
    }
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-12 * sxx.max(1.0) {
        return None;
    }
    let slope = (n * sxy - sx * sy) / det;
    let intercept = (sy - slope * sx) / n;
    Some((intercept, slope))
}

/// A fitted α–β point-to-point channel.
#[derive(Debug, Clone)]
pub struct AlphaBetaFit {
    /// Channel label (`p2p` — all point-to-point traffic of the run).
    pub channel: String,
    /// Messages the fit saw.
    pub samples: u64,
    /// Fitted one-way latency, microseconds.
    pub alpha_us: f64,
    /// Fitted asymptotic bandwidth, MB/s (0 when the run's message
    /// sizes had no spread to fit a slope from).
    pub beta_mbs: f64,
    /// Worst fit residual, microseconds (link queueing shows up here).
    pub max_resid_us: f64,
    /// Static `nkt-net` catalog constants for the run's network
    /// (`None` when the run name names no catalog entry).
    pub static_alpha_us: Option<f64>,
    pub static_beta_mbs: Option<f64>,
}

/// Fits one α–β channel over every p2p send in the run. The sample
/// stream (bytes, arrival − vt1) is deterministic — both numbers live on
/// the virtual timeline.
pub fn alpha_beta_fit(ranks: &[PRank], statics: Option<&Channel>) -> Option<AlphaBetaFit> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in ranks {
        for s in &r.spans {
            if s.cat != "mpi.p2p.send" {
                continue;
            }
            let (Some(bytes), Some(arrival)) = (s.arg("bytes"), s.arg("arrival")) else {
                continue;
            };
            if !s.vt1.is_finite() {
                continue;
            }
            xs.push(bytes);
            ys.push((arrival - s.vt1) * 1e6);
        }
    }
    if xs.is_empty() {
        return None;
    }
    // y_us = α_us + bytes/β_mbs: with β in MB/s (1e6 B/s), the wire term
    // for `bytes` payload is exactly `bytes/β` microseconds.
    let (alpha_us, beta_mbs, max_resid_us) = match lsq_line(&xs, &ys) {
        Some((a, b)) if b > 0.0 => {
            let resid = xs
                .iter()
                .zip(&ys)
                .map(|(x, y)| (y - (a + b * x)).abs())
                .fold(0.0f64, f64::max);
            (a, 1.0 / b, resid)
        }
        _ => {
            // Uniform message size (or a flat line): no slope to invert —
            // report the mean delay as pure latency.
            let mean = ys.iter().sum::<f64>() / ys.len() as f64;
            let resid = ys.iter().map(|y| (y - mean).abs()).fold(0.0f64, f64::max);
            (mean, 0.0, resid)
        }
    };
    Some(AlphaBetaFit {
        channel: "p2p".to_string(),
        samples: xs.len() as u64,
        alpha_us,
        beta_mbs,
        max_resid_us,
        static_alpha_us: statics.map(|c| c.latency_us),
        static_beta_mbs: statics.map(|c| c.bandwidth_mbs),
    })
}

/// A kernel family's model curve compressed to Hockney form.
#[derive(Debug, Clone)]
pub struct KernelFit {
    /// Family name (`dcopy` ... `dgemm`).
    pub kernel: &'static str,
    /// `mbs` for dcopy, `mflops` for the rest.
    pub unit: &'static str,
    /// Asymptotic sustained rate R∞.
    pub r_inf: f64,
    /// Half-performance operand size n½.
    pub n_half: f64,
    /// Grid points fitted.
    pub points: u64,
    /// Worst relative error of the Hockney form against the model curve.
    pub max_rel_err: f64,
}

/// The fixed operand-size grid per family (vector lengths for level 1,
/// square dimensions for level 2/3) — the paper's Figures 1–6 x-axes.
pub fn fit_grid(k: Kernel) -> &'static [usize] {
    match k {
        Kernel::Dcopy | Kernel::Daxpy | Kernel::Ddot => {
            &[256, 1024, 4096, 16384, 65536, 262144, 1048576]
        }
        Kernel::Dgemv => &[16, 32, 64, 128, 256, 512],
        Kernel::Dgemm => &[4, 8, 16, 32, 64, 128, 256],
    }
}

fn model_rate(m: &Machine, k: Kernel, n: usize) -> f64 {
    let p = m.kernel_rate(k, n);
    if k == Kernel::Dcopy {
        p.mbs
    } else {
        p.mflops
    }
}

/// Fits `r(n) = R∞·n/(n + n½)` to the machine-model curve of every
/// kernel family via the linearization `1/r = 1/R∞ + (n½/R∞)·(1/n)`.
pub fn kernel_fits(m: &Machine) -> Vec<KernelFit> {
    Kernel::ALL
        .iter()
        .map(|&k| {
            let grid = fit_grid(k);
            let rates: Vec<f64> = grid.iter().map(|&n| model_rate(m, k, n)).collect();
            let xs: Vec<f64> = grid.iter().map(|&n| 1.0 / n as f64).collect();
            let ys: Vec<f64> = rates.iter().map(|&r| 1.0 / r.max(1e-9)).collect();
            let (r_inf, n_half) = match lsq_line(&xs, &ys) {
                Some((c0, c1)) if c0 > 0.0 => (1.0 / c0, (c1 / c0).max(0.0)),
                _ => (rates.iter().fold(0.0f64, |a, &b| a.max(b)), 0.0),
            };
            let max_rel_err = grid
                .iter()
                .zip(&rates)
                .map(|(&n, &r)| {
                    let fit = r_inf * n as f64 / (n as f64 + n_half);
                    if r > 0.0 {
                        (fit - r).abs() / r
                    } else {
                        0.0
                    }
                })
                .fold(0.0f64, f64::max);
            KernelFit {
                kernel: k.name(),
                unit: if k == Kernel::Dcopy { "mbs" } else { "mflops" },
                r_inf,
                n_half,
                points: grid.len() as u64,
                max_rel_err,
            }
        })
        .collect()
}

/// One measured host operating point (report only — host timings are
/// not deterministic and never serialize).
#[derive(Debug, Clone)]
pub struct HostPoint {
    pub kernel: &'static str,
    pub n: usize,
    /// Measured host rate (MB/s for dcopy, Mflop/s otherwise).
    pub measured: f64,
    /// The modeled machine's predicted rate at the same size.
    pub modeled: f64,
}

/// Runs a small native BLAS sweep — one mid-grid size per Figure 1–6
/// family — and pairs each measured host rate with the machine-model
/// prediction, so the report can print a measured-vs-modeled ratio for
/// every family.
pub fn host_sweep(m: &Machine) -> Vec<HostPoint> {
    use nkt_blas::{daxpy, dcopy, ddot, dgemm, dgemv, Trans};
    use std::time::Instant;

    let mut out = Vec::new();
    let mut point = |k: Kernel, n: usize, flops_or_bytes: f64, reps: usize, run: &mut dyn FnMut()| {
        run(); // warm caches and the allocator before timing
        let t0 = Instant::now();
        for _ in 0..reps {
            run();
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9) / reps as f64;
        out.push(HostPoint {
            kernel: k.name(),
            n,
            measured: flops_or_bytes / secs / 1e6,
            modeled: model_rate(m, k, n),
        });
    };

    let n1 = 65536usize;
    let x = vec![1.0f64; n1];
    let mut y = vec![2.0f64; n1];
    point(Kernel::Dcopy, n1, 16.0 * n1 as f64, 64, &mut || dcopy(&x, &mut y));
    point(Kernel::Daxpy, n1, 2.0 * n1 as f64, 64, &mut || daxpy(1.0e-9, &x, &mut y));
    let mut acc = 0.0f64;
    point(Kernel::Ddot, n1, 2.0 * n1 as f64, 64, &mut || acc += ddot(&x, &y));
    std::hint::black_box(acc);

    let n2 = 128usize;
    let a = vec![1.0e-3f64; n2 * n2];
    let xv = vec![1.0f64; n2];
    let mut yv = vec![0.0f64; n2];
    point(Kernel::Dgemv, n2, 2.0 * (n2 * n2) as f64, 32, &mut || {
        dgemv(Trans::No, n2, n2, 1.0, &a, n2, &xv, 0.0, &mut yv)
    });

    let n3 = 64usize;
    let ga = vec![1.0e-3f64; n3 * n3];
    let gb = vec![1.0e-3f64; n3 * n3];
    let mut gc = vec![0.0f64; n3 * n3];
    point(Kernel::Dgemm, n3, 2.0 * (n3 * n3 * n3) as f64, 8, &mut || {
        dgemm(Trans::No, Trans::No, n3, n3, n3, 1.0, &ga, n3, &gb, n3, 0.0, &mut gc, n3)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_machine::{machine, MachineId};
    use nkt_prof::{PRank, PSpan};

    fn send(bytes: f64, vt1: f64, arrival: f64) -> PSpan {
        PSpan {
            name: "send".to_string(),
            cat: "mpi.p2p.send".to_string(),
            dur_s: f64::NAN,
            vt0: vt1 - 1e-6,
            vt1,
            depth: 0,
            args: vec![("bytes".to_string(), bytes), ("arrival".to_string(), arrival)],
        }
    }

    #[test]
    fn alpha_beta_recovers_a_clean_channel() {
        // Synthesize sends through an exact α = 50 µs, β = 100 MB/s
        // channel: delay_us = 50 + bytes/100.
        let spans = (1..=6)
            .map(|i| {
                let bytes = (i * 10_000) as f64;
                send(bytes, i as f64, i as f64 + (50.0 + bytes / 100.0) * 1e-6)
            })
            .collect();
        let fit = alpha_beta_fit(&[PRank { rank: 0, spans }], None).unwrap();
        assert_eq!(fit.samples, 6);
        assert!((fit.alpha_us - 50.0).abs() < 1e-3, "alpha {}", fit.alpha_us);
        assert!((fit.beta_mbs - 100.0).abs() < 1e-3, "beta {}", fit.beta_mbs);
        assert!(fit.max_resid_us < 1e-3);
    }

    #[test]
    fn alpha_beta_degenerates_to_latency_on_uniform_sizes() {
        let spans = (1..=4).map(|i| send(8.0, i as f64, i as f64 + 20e-6)).collect();
        let fit = alpha_beta_fit(&[PRank { rank: 0, spans }], None).unwrap();
        assert_eq!(fit.beta_mbs, 0.0);
        assert!((fit.alpha_us - 20.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_fits_cover_all_figure_families_and_track_the_model() {
        let m = machine(MachineId::RoadRunner);
        let fits = kernel_fits(&m);
        let names: Vec<&str> = fits.iter().map(|f| f.kernel).collect();
        assert_eq!(names, vec!["dcopy", "daxpy", "ddot", "dgemv", "dgemm"]);
        for f in &fits {
            assert!(f.r_inf > 0.0, "{}: nonpositive R_inf", f.kernel);
            assert!(f.n_half >= 0.0);
            // The roofline curves are cache-laddered, not exactly
            // Hockney-shaped; the two-parameter fit is a summary, so
            // give it a loose but bounded band.
            assert!(f.max_rel_err < 1.5, "{}: rel err {}", f.kernel, f.max_rel_err);
        }
    }
}
