//! # nkt-calib — a "fact or fiction" observatory
//!
//! The paper's title is a question: does the modeled story — kernel
//! rooflines (Figures 1–6), α–β networks (Figures 7–8), overlap
//! estimates (Table 3) — survive contact with a real machine? This
//! crate answers it continuously, for every traced run:
//!
//! * **Drift tracking**: per-stage, per-comm-op and per-kernel rows of
//!   modeled virtual seconds next to measured host seconds, with the
//!   drift ratio in the report.
//! * **Machine-model calibration**: deterministic least-squares fits —
//!   an α–β latency/bandwidth channel recovered from the run's own p2p
//!   spans (compared against the static `nkt-net` catalog), and
//!   Hockney-form `R∞`/`n½` compressions of every `nkt-machine` kernel
//!   curve, checked against a native BLAS sweep in the report.
//! * **Measured overlap windows**: the interior/boundary element split
//!   each split-phase gather-scatter apply actually had, folded per
//!   stage — the Table 3 / Figures 15–16 replays consume these instead
//!   of the analytic `1 − 6/V^{1/3}` estimate.
//!
//! ## Data flow
//!
//! ```text
//! solvers ──spans──▶ nkt-trace ──┬─ take_collected() ─▶ Calibration::build           (in-process)
//!                                └─ TRACE_<run>.json ─▶ Calibration::from_trace_json (offline)
//!                                                          │
//!                                results/CALIB_<run>.json ◀┴▶ Calibration::report()
//! ```
//!
//! Everything serialized lives on the **virtual** timeline (or is an
//! exact counter), so `CALIB_<run>.json` is byte-identical across runs
//! of the same seeded simulation and gateable by `calib_diff`; measured
//! host times appear only in the printed report.
//!
//! ## Configuration
//!
//! | env var     | values                | effect                                            |
//! |-------------|-----------------------|---------------------------------------------------|
//! | `NKT_CALIB` | `1` \| `on` \| `true` | solvers calibrate the run and write `CALIB_<run>.json` |
//!
//! `NKT_CALIB=1` implies span recording: [`prepare`] raises the trace
//! mode to [`nkt_trace::TraceMode::Spans`] like `NKT_PROF` does, so the
//! two observers can share one collector drain.

pub mod document;
pub mod drift;
pub mod fit;
pub mod overlap;

pub use document::{machine_for, net_from_run, Calibration};
pub use drift::{drift_rows, DriftRow, CANONICAL_MFLOPS};
pub use fit::{alpha_beta_fit, host_sweep, kernel_fits, AlphaBetaFit, HostPoint, KernelFit};
pub use overlap::{
    load_windows, merged_coef, overlap_windows, window_at, OverlapWindow, ANALYTIC_COEF,
};

use std::sync::OnceLock;

/// Whether calibration was requested via `NKT_CALIB` (`1`, `on`,
/// `true`; anything else — including unset — is off). Latched on first
/// call so a run is calibrated consistently end to end.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("NKT_CALIB")
            .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true"))
            .unwrap_or(false)
    })
}

/// Arms the trace layer for calibration: raises the recording mode to
/// spans. Call once at solver startup when [`enabled`] is true.
pub fn prepare() {
    if nkt_trace::mode() < nkt_trace::TraceMode::Spans {
        nkt_trace::set_mode(nkt_trace::TraceMode::Spans);
    }
}

/// The solver-side convenience wrapper: when [`enabled`], builds the
/// calibration for `run` from already-drained thread data, prints the
/// report, and writes `CALIB_<run>.json` (returning its path).
///
/// Takes the thread data instead of draining internally because
/// `nkt_trace::take_collected` empties the collector — a run observed
/// by both `NKT_PROF` and `NKT_CALIB` must drain once and hand the same
/// snapshot to both. A no-op returning `None` when `NKT_CALIB` is off.
pub fn calibrate_and_write(run: &str, threads: &[nkt_trace::ThreadData]) -> Option<std::path::PathBuf> {
    if !enabled() {
        return None;
    }
    let c = Calibration::build(run, threads);
    print!("{}", c.report());
    match c.write() {
        Ok(path) => {
            println!("calib: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("calib: cannot write CALIB_{run}.json: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_raises_mode_to_spans() {
        prepare();
        assert_eq!(nkt_trace::mode(), nkt_trace::TraceMode::Spans);
    }
}
