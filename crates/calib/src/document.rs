//! The assembled calibration document: construction from either trace
//! source, the deterministic `CALIB_<run>.json` writer, and the
//! "fact or fiction" report with measured-vs-modeled ratios.

use crate::drift::{drift_rows, DriftRow};
use crate::fit::{alpha_beta_fit, host_sweep, kernel_fits, AlphaBetaFit, KernelFit};
use crate::overlap::{overlap_windows, OverlapWindow};
use nkt_machine::{machine, Machine, MachineId};
use nkt_net::{cluster, NetId};
use nkt_prof::{from_threads, from_trace_json, PRank};
use nkt_trace::{json_f64_exact, ThreadData};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Finds the network configuration a run name encodes, taking the
/// longest catalog slug that appears as a substring (`fourier_dns_
/// roadrunner_eth_grid2x4` names `roadrunner_eth`, not `roadrunner`).
pub fn net_from_run(run: &str) -> Option<NetId> {
    NetId::ALL
        .into_iter()
        .filter(|id| run.contains(id.slug()))
        .max_by_key(|id| id.slug().len())
}

/// The machine model whose kernels ran on that network's nodes.
/// Defaults to RoadRunner — the paper's protagonist cluster.
pub fn machine_for(net: Option<NetId>) -> MachineId {
    match net {
        Some(NetId::RoadRunnerEth) | Some(NetId::RoadRunnerMyr) | None => MachineId::RoadRunner,
        Some(NetId::MusesMpich) | Some(NetId::MusesLam) => MachineId::Muses,
        Some(NetId::Sp2Silver) => MachineId::Sp2Silver,
        Some(NetId::Sp2Thin2) => MachineId::Sp2Thin2,
        Some(NetId::Onyx2) => MachineId::Onyx2,
        Some(NetId::Ncsa) => MachineId::Ncsa,
        Some(NetId::Ap3000) => MachineId::Ap3000,
        Some(NetId::T3e) => MachineId::T3e,
        Some(NetId::Hitachi) => MachineId::Hitachi,
    }
}

/// A complete calibration of one traced run.
///
/// Everything serialized by [`Calibration::to_json`] is a function of
/// the virtual timeline and exact counters, so `CALIB_<run>.json` is
/// byte-identical across reruns of the same seeded simulation. Host
/// wall times (the "fact" side of fact-or-fiction) appear only in
/// [`Calibration::report`].
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Run name (`CALIB_<run>.json`).
    pub run: String,
    /// Rank ids present, ascending.
    pub ranks: Vec<usize>,
    /// Network configuration recovered from the run name, if any.
    pub net: Option<NetId>,
    /// Machine model the kernel fits are computed against.
    pub machine_id: MachineId,
    /// Measured-vs-modeled drift rows (stage / comm / kernel classes).
    pub drift: Vec<DriftRow>,
    /// Fitted α–β point-to-point channel (`None` when the run sent no
    /// p2p messages).
    pub alpha_beta: Option<AlphaBetaFit>,
    /// Hockney-form fits of the machine-model kernel curves, one per
    /// Figure 1–6 family.
    pub kernel_fits: Vec<KernelFit>,
    /// Measured per-stage overlap windows (empty when split-phase
    /// gather-scatter was off).
    pub windows: Vec<OverlapWindow>,
}

impl Calibration {
    /// Builds a calibration from in-process collected thread data.
    pub fn build(run: &str, threads: &[ThreadData]) -> Calibration {
        Self::from_ranks(run, from_threads(threads))
    }

    /// Builds a calibration from an exported `TRACE_<run>.json` document.
    pub fn from_trace_json(run: &str, text: &str) -> Result<Calibration, String> {
        Ok(Self::from_ranks(run, from_trace_json(text)?))
    }

    fn from_ranks(run: &str, ranks: Vec<PRank>) -> Calibration {
        let net = net_from_run(run);
        let machine_id = machine_for(net);
        let statics = net.map(|id| cluster(id).inter);
        Calibration {
            run: run.to_string(),
            net,
            machine_id,
            drift: drift_rows(&ranks),
            alpha_beta: alpha_beta_fit(&ranks, statics.as_ref()),
            kernel_fits: kernel_fits(&machine(machine_id)),
            windows: overlap_windows(&ranks),
            ranks: ranks.into_iter().map(|r| r.rank).collect(),
        }
    }

    fn machine(&self) -> Machine {
        machine(self.machine_id)
    }

    /// Serializes the deterministic part of the calibration. Valid JSON
    /// with fixed key order, sorted collections, and full-round-trip
    /// float formatting — two runs of the same seeded simulation produce
    /// byte-identical documents.
    pub fn to_json(&self) -> String {
        let f = json_f64_exact;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"nkt-calib-1\",");
        let _ = writeln!(out, "  \"run\": {},", json_str(&self.run));
        let _ = writeln!(out, "  \"ranks\": {},", self.ranks.len());
        let net = self.net.map_or("null".to_string(), |id| json_str(id.slug()));
        let _ = writeln!(out, "  \"net\": {net},");
        let _ = writeln!(out, "  \"machine\": {},", json_str(self.machine().name));
        out.push_str("  \"drift\": [\n");
        for (i, d) in self.drift.iter().enumerate() {
            let c = if i + 1 < self.drift.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"class\": {}, \"name\": {}, \"calls\": {}, \"vsecs\": {}, \"bytes\": {}, \"flops\": {}, \"vshare\": {}}}{c}",
                json_str(d.class),
                json_str(&d.name),
                d.calls,
                f(d.vsecs),
                d.bytes,
                f(d.flops),
                f(d.vshare),
            );
        }
        out.push_str("  ],\n");
        match &self.alpha_beta {
            None => out.push_str("  \"alpha_beta\": null,\n"),
            Some(ab) => {
                let opt = |v: Option<f64>| v.map_or("null".to_string(), f);
                let _ = writeln!(
                    out,
                    "  \"alpha_beta\": {{\"channel\": {}, \"samples\": {}, \"alpha_us\": {}, \"beta_mbs\": {}, \"max_resid_us\": {}, \"static_alpha_us\": {}, \"static_beta_mbs\": {}}},",
                    json_str(&ab.channel),
                    ab.samples,
                    f(ab.alpha_us),
                    f(ab.beta_mbs),
                    f(ab.max_resid_us),
                    opt(ab.static_alpha_us),
                    opt(ab.static_beta_mbs),
                );
            }
        }
        out.push_str("  \"kernel_fits\": [\n");
        for (i, k) in self.kernel_fits.iter().enumerate() {
            let c = if i + 1 < self.kernel_fits.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"kernel\": {}, \"unit\": {}, \"r_inf\": {}, \"n_half\": {}, \"points\": {}, \"max_rel_err\": {}}}{c}",
                json_str(k.kernel),
                json_str(k.unit),
                f(k.r_inf),
                f(k.n_half),
                k.points,
                f(k.max_rel_err),
            );
        }
        out.push_str("  ],\n  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            let c = if i + 1 < self.windows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"stage\": {}, \"applies\": {}, \"interior\": {}, \"boundary\": {}, \"window\": {}, \"coef\": {}}}{c}",
                json_str(&w.stage),
                w.applies,
                w.interior,
                w.boundary,
                f(w.window()),
                f(w.coef()),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `CALIB_<run>.json` into `dir`, returning the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("CALIB_{}.json", self.run));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `CALIB_<run>.json` into the configured results directory
    /// (`NKT_TRACE_DIR` if set, else `<workspace>/results`).
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("NKT_TRACE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| nkt_trace::results_dir());
        self.write_to(&dir)
    }

    /// Renders the "fact or fiction" report: drift rows with their
    /// measured-host-seconds ratios, the fitted α–β channel against the
    /// static catalog, kernel fits, a native BLAS sweep over every
    /// Figure 1–6 family, and the measured overlap windows.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "nkt-calib — run '{}', {} rank(s), machine {}{}",
            self.run,
            self.ranks.len(),
            self.machine().name,
            self.net.map_or(String::new(), |id| format!(", net {}", id.slug())),
        );

        if !self.drift.is_empty() {
            let _ = writeln!(out, "\nDrift: modeled virtual vs measured host seconds");
            let _ = writeln!(
                out,
                "  {:<7} {:<20} {:>7} {:>12} {:>7} {:>12} {:>8}",
                "class", "name", "calls", "modeled", "share", "measured", "ratio"
            );
            for d in &self.drift {
                let ratio = d
                    .ratio()
                    .map_or_else(|| format!("{:>8}", "-"), |r| format!("{r:>8.3}"));
                let _ = writeln!(
                    out,
                    "  {:<7} {:<20} {:>7} {:>12.6} {:>6.1}% {:>12.6} {}",
                    d.class,
                    d.name,
                    d.calls,
                    d.vsecs,
                    100.0 * d.vshare,
                    d.host_s,
                    ratio,
                );
            }
        }

        if let Some(ab) = &self.alpha_beta {
            let _ = writeln!(out, "\nFitted p2p channel ({} message(s))", ab.samples);
            let stat = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"));
            let _ = writeln!(
                out,
                "  alpha {:.2} us (static {}), beta {:.2} MB/s (static {}), max residual {:.2} us",
                ab.alpha_us,
                stat(ab.static_alpha_us),
                ab.beta_mbs,
                stat(ab.static_beta_mbs),
                ab.max_resid_us,
            );
        }

        if !self.kernel_fits.is_empty() {
            let _ = writeln!(out, "\nKernel model fits r(n) = R_inf * n/(n + n_half)");
            let _ = writeln!(
                out,
                "  {:<8} {:>10} {:>10} {:>10}",
                "kernel", "R_inf", "n_half", "fit err"
            );
            for k in &self.kernel_fits {
                let _ = writeln!(
                    out,
                    "  {:<8} {:>10.1} {:>10.1} {:>9.1}%  ({})",
                    k.kernel,
                    k.r_inf,
                    k.n_half,
                    100.0 * k.max_rel_err,
                    k.unit,
                );
            }
        }

        let sweep = host_sweep(&self.machine());
        if !sweep.is_empty() {
            let _ = writeln!(
                out,
                "\nNative BLAS sweep vs {} model (host rates; not serialized)",
                self.machine().name,
            );
            let _ = writeln!(
                out,
                "  {:<8} {:>8} {:>12} {:>12} {:>8}",
                "kernel", "n", "measured", "modeled", "ratio"
            );
            for p in &sweep {
                let ratio = if p.modeled > 0.0 { p.measured / p.modeled } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {:<8} {:>8} {:>12.1} {:>12.1} {:>8.2}",
                    p.kernel, p.n, p.measured, p.modeled, ratio,
                );
            }
        }

        if !self.windows.is_empty() {
            let _ = writeln!(out, "\nMeasured overlap windows (split-phase gather-scatter)");
            let _ = writeln!(
                out,
                "  {:<16} {:>8} {:>10} {:>10} {:>8} {:>7}",
                "stage", "applies", "interior", "boundary", "window", "coef"
            );
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>8} {:>10} {:>10} {:>7.1}% {:>7.3}",
                    w.stage,
                    w.applies,
                    w.interior,
                    w.boundary,
                    100.0 * w.window(),
                    w.coef(),
                );
            }
        }
        out
    }
}

/// JSON string escape (same rules as the trace exporter).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_from_run_prefers_longest_slug() {
        assert_eq!(net_from_run("fourier_dns_roadrunner_eth_grid2x4"), Some(NetId::RoadRunnerEth));
        assert_eq!(net_from_run("fourier_dns_roadrunner_myr"), Some(NetId::RoadRunnerMyr));
        assert_eq!(net_from_run("serve_muses_lam_x"), Some(NetId::MusesLam));
        assert_eq!(net_from_run("flapping_wing_ale"), None);
    }

    #[test]
    fn machine_mapping_covers_every_net() {
        assert_eq!(machine_for(None), MachineId::RoadRunner);
        for id in NetId::ALL {
            // Every catalog network maps without panicking, and the two
            // RoadRunner fabrics share the RoadRunner nodes.
            let m = machine_for(Some(id));
            if matches!(id, NetId::RoadRunnerEth | NetId::RoadRunnerMyr) {
                assert_eq!(m, MachineId::RoadRunner);
            }
        }
    }

    #[test]
    fn empty_run_serializes_and_parses() {
        let c = Calibration::build("fourier_dns_roadrunner_eth", &[]);
        assert!(c.drift.is_empty());
        assert!(c.alpha_beta.is_none());
        assert_eq!(c.kernel_fits.len(), 5);
        let json = c.to_json();
        let doc = nkt_trace::json::parse(&json).expect("valid JSON");
        use nkt_trace::json::Value;
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("nkt-calib-1"));
        assert_eq!(doc.get("net").and_then(Value::as_str), Some("roadrunner_eth"));
        assert_eq!(
            doc.get("kernel_fits").and_then(Value::as_arr).map(|a| a.len()),
            Some(5)
        );
        // Serialization is a pure function of the virtual data.
        assert_eq!(json, Calibration::build("fourier_dns_roadrunner_eth", &[]).to_json());
    }
}
