//! Slab ↔ pencil equivalence: the 2-D pencil decomposition is pure
//! data layout — for every `pr × pc` process grid, pencil rank `(r, c)`
//! must end a run with **bitwise** the same state (FNV digest over all
//! numerical checkpoint sections) as slab rank `r` on `pr` ranks, in
//! both transpose paths. And grids with `pc > 1` must run where the
//! slab cannot: P > nz/2.

use nektar::decomp::FourierCfgError;
use nektar::fourier::{FourierConfig, NektarF};
use nkt_ckpt::Checkpointable;
use nkt_mesh::{rect_quads, Mesh2d};
use nkt_mpi::prelude::*;
use nkt_net::{cluster, ClusterNetwork, NetId};

fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(p: usize, net: ClusterNetwork, f: F) -> Vec<R> {
    World::builder().ranks(p).net(net).run(f)
}

fn mesh() -> Mesh2d {
    rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2)
}

fn cfg(nz: usize) -> FourierConfig {
    FourierConfig {
        order: 4,
        dt: 1e-3,
        nu: 0.05,
        nz,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    }
}

fn init_field(x: [f64; 3]) -> [f64; 3] {
    let pi = std::f64::consts::PI;
    [
        (pi * x[0]).sin() * (pi * x[1]).cos() * x[2].cos(),
        -(pi * x[0]).cos() * (pi * x[1]).sin() * x[2].cos(),
        0.0,
    ]
}

/// Two steps on an explicit grid; returns every rank's state hash.
fn grid_hashes(nz: usize, pr: usize, pc: usize, overlap: bool) -> Vec<u64> {
    run(pr * pc, cluster(NetId::RoadRunnerEth), move |c| {
        let mut s = NektarF::try_new_with_grid(c, &mesh(), cfg(nz), pr, pc)
            .unwrap_or_else(|e| panic!("grid {pr}x{pc}: {e}"));
        s.set_overlap(overlap);
        s.set_initial(init_field);
        s.step(c);
        s.step(c);
        s.state_hash()
    })
}

#[test]
fn pencil_state_hash_matches_slab_over_grid_sweep() {
    // nz = 16 → 8 modes. Slab references at pr ∈ {1, 2, 4, 8}; pencil
    // grids sweep pr × pc including the degenerate 1×P and P×1 edges.
    let nz = 16;
    let slab = |pr: usize| grid_hashes(nz, pr, 1, true);
    let refs: Vec<(usize, Vec<u64>)> = [1usize, 2, 4, 8].iter().map(|&pr| (pr, slab(pr))).collect();
    let slab_of = |pr: usize| -> &Vec<u64> {
        &refs.iter().find(|(q, _)| *q == pr).unwrap().1
    };
    for &(pr, pc) in &[(1usize, 2usize), (1, 4), (2, 2), (2, 4), (4, 2), (8, 1), (2, 3)] {
        for overlap in [false, true] {
            let hashes = grid_hashes(nz, pr, pc, overlap);
            for (w, &h) in hashes.iter().enumerate() {
                let r = w / pc;
                assert_eq!(
                    h,
                    slab_of(pr)[r],
                    "grid {pr}x{pc} overlap={overlap}: rank {w} (row {r}) diverged from slab"
                );
            }
        }
    }
}

#[test]
fn pencil_runs_past_the_slab_rank_cap() {
    // nz = 8 → 4 modes: 8 ranks exceed the slab's P ≤ nz/2 cap...
    let nz = 8;
    let err = run(8, cluster(NetId::RoadRunnerMyr), move |c| {
        NektarF::try_new_with_grid(c, &mesh(), cfg(nz), 8, 1).err()
    });
    for e in err {
        assert_eq!(e, Some(FourierCfgError::ModesNotDivisible { nmodes: 4, pr: 8 }));
    }
    // ...but a 4×2 pencil grid runs there, bitwise equal to the 4-rank
    // slab, with finite decaying energy.
    let slab4 = grid_hashes(nz, 4, 1, true);
    let out = run(8, cluster(NetId::RoadRunnerMyr), move |c| {
        let mut s = NektarF::try_new_with_grid(c, &mesh(), cfg(nz), 4, 2).unwrap();
        s.set_initial(init_field);
        let e0 = s.kinetic_energy(c);
        s.step(c);
        s.step(c);
        (s.state_hash(), e0, s.kinetic_energy(c))
    });
    for (w, &(h, e0, e2)) in out.iter().enumerate() {
        assert_eq!(h, slab4[w / 2], "rank {w} diverged from slab row {}", w / 2);
        assert!(e0.is_finite() && e2.is_finite() && e2 > 0.0 && e2 < e0, "{e0} -> {e2}");
    }
}

#[test]
fn bad_configs_are_typed_errors_in_both_decompositions() {
    let out = run(4, cluster(NetId::T3e), |c| {
        let odd = NektarF::try_new_with_grid(c, &mesh(), cfg(7), 4, 1).err();
        let slab_indiv = NektarF::try_new_with_grid(c, &mesh(), cfg(6), 4, 1).err();
        let grid_mismatch = NektarF::try_new_with_grid(c, &mesh(), cfg(16), 3, 2).err();
        let valid = NektarF::try_new_with_grid(c, &mesh(), cfg(16), 4, 1).ok().map(|_| ());
        (odd, slab_indiv, grid_mismatch, valid)
    });
    for (odd, slab_indiv, grid_mismatch, ok) in out {
        assert_eq!(odd, Some(FourierCfgError::OddNz { nz: 7 }));
        assert_eq!(slab_indiv, Some(FourierCfgError::ModesNotDivisible { nmodes: 3, pr: 4 }));
        assert_eq!(grid_mismatch, Some(FourierCfgError::GridMismatch { pr: 3, pc: 2, p: 4 }));
        assert_eq!(ok, Some(()), "16 planes over 4 ranks is a valid slab");
    }
    // Pencil-side divisibility: 4 modes cannot split over 3 grid rows.
    let out = run(6, cluster(NetId::T3e), |c| {
        NektarF::try_new_with_grid(c, &mesh(), cfg(8), 3, 2).err()
    });
    for e in out {
        assert_eq!(e, Some(FourierCfgError::ModesNotDivisible { nmodes: 4, pr: 3 }));
    }
}

#[test]
fn pencil_spectrum_and_energy_agree_with_slab() {
    // Replicated-mode diagnostics must not double count: spectrum and
    // total energy on a 2×2 grid equal the 2-rank slab's to the bit.
    let nz = 8;
    let slab = run(2, cluster(NetId::T3e), move |c| {
        let mut s = NektarF::try_new_with_grid(c, &mesh(), cfg(nz), 2, 1).unwrap();
        s.set_initial(init_field);
        s.step(c);
        let spec = nektar::stats::spanwise_energy_spectrum(&mut s, c);
        (spec, s.kinetic_energy(c))
    });
    let pencil = run(4, cluster(NetId::T3e), move |c| {
        let mut s = NektarF::try_new_with_grid(c, &mesh(), cfg(nz), 2, 2).unwrap();
        s.set_initial(init_field);
        s.step(c);
        let spec = nektar::stats::spanwise_energy_spectrum(&mut s, c);
        (spec, s.kinetic_energy(c))
    });
    for (w, (spec, e)) in pencil.iter().enumerate() {
        assert_eq!(spec, &slab[0].0, "rank {w} spectrum");
        assert_eq!(*e, slab[0].1, "rank {w} energy");
    }
}
