//! The checkpoint/restart contract, as properties: a run interrupted at
//! step `k` and restored from its `CKPT_*` files continues **bitwise
//! identically** to the run that was never interrupted — the FNV state
//! hash (all sections except the wall-clock ledger) matches step for
//! step, on every rank, for all three solvers. The kill step and (for
//! NekTar-F) the rank count are drawn by `prop_check!`, so the property
//! covers checkpoints taken at ramp-up steps (partial multistep
//! history) as well as steady-state ones.

use nektar::ale::{AleConfig, NektarAle};
use nektar::fourier::{FourierConfig, NektarF};
use nektar::{Serial2dSolver, SolverConfig};
use nkt_ckpt::{
    restore_latest, restore_latest_serial, write_epoch, write_epoch_serial, Checkpointable,
    CkptConfig,
};
use nkt_mesh::{box_hexes, rect_quads, Mesh2d, Mesh3d};
use nkt_net::{cluster, ClusterNetwork, NetId};
use nkt_partition::{partition_kway, Graph, PartitionOptions};
use nkt_testkit::{one_of, prop_check, prop_assert, prop_assert_eq};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn net() -> ClusterNetwork {
    cluster(NetId::T3e)
}

fn run<R: Send, F: Fn(&mut nkt_mpi::Comm) -> R + Sync>(
    p: usize,
    net: ClusterNetwork,
    f: F,
) -> Vec<R> {
    nkt_mpi::World::from_env().ranks(p).net(net).run(f)
}

/// A fresh checkpoint directory per property case: cases within one
/// test (and tests within one binary) must not see each other's epochs.
fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("nkt_ckpt_{label}_{}_{n}", std::process::id()))
}

// ---------------------------------------------------------------- serial2d

fn mesh2d() -> Mesh2d {
    rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2)
}

fn serial_solver() -> Serial2dSolver {
    let cfg = SolverConfig { order: 4, dt: 2e-3, nu: 0.05, scheme_order: 2, advect: true };
    let pi = std::f64::consts::PI;
    let mut s = Serial2dSolver::new(mesh2d(), cfg, |_| 0.0, |_| 0.0);
    s.set_initial(
        |x| (pi * x[0]).sin() * (pi * x[1]).cos(),
        |x| -(pi * x[0]).cos() * (pi * x[1]).sin(),
    );
    s
}

// ---------------------------------------------------------------- fourier

fn fourier_cfg() -> FourierConfig {
    FourierConfig {
        order: 4,
        dt: 1e-3,
        nu: 0.05,
        nz: 8,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    }
}

fn fourier_init(x: [f64; 3]) -> [f64; 3] {
    let pi = std::f64::consts::PI;
    [
        (pi * x[0]).sin() * (pi * x[1]).cos() * x[2].cos(),
        -(pi * x[0]).cos() * (pi * x[1]).sin() * x[2].cos(),
        0.0,
    ]
}

// ---------------------------------------------------------------- ale

fn mesh3d() -> Mesh3d {
    box_hexes(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 2, 2, 2)
}

fn ale_cfg() -> AleConfig {
    AleConfig {
        order: 2,
        dt: 2e-3,
        nu: 0.05,
        scheme_order: 2,
        advect: true,
        // Nonzero so the checkpoint's "mesh" section (vertex positions,
        // per-op scales, mesh velocity history) actually varies and the
        // restore path's rebuild_diag runs.
        motion_amp: 0.02,
        ..Default::default()
    }
}

fn psi_field(x: [f64; 3]) -> [f64; 3] {
    let pi = std::f64::consts::PI;
    let (sx, cx) = (pi * x[0]).sin_cos();
    let (sy, cy) = (pi * x[1]).sin_cos();
    let gz = (pi * x[2]).sin().powi(2);
    [2.0 * pi * sx * sx * sy * cy * gz, -2.0 * pi * sx * cx * sy * sy * gz, 0.0]
}

fn partition_for(mesh: &Mesh3d, p: usize) -> Vec<u8> {
    let g = Graph::from_edges(mesh.nelems(), &mesh.dual_edges());
    partition_kway(&g, p, &PartitionOptions::default())
}

prop_check! {
    #![cases(3)]

    /// Serial 2-D solver: checkpoint at step `kill` (which lands inside
    /// the BDF ramp for small `kill`), restore into a FRESH solver, and
    /// the state hash matches the uninterrupted run at every step.
    fn serial2d_restore_is_bitwise(kill in 1usize..5) {
        const NSTEPS: usize = 5;
        let dir = fresh_dir("s2d");
        let cfg = CkptConfig::new(&dir, "prop_s2d", None);

        // Uninterrupted reference: hash after every step.
        let mut reference = serial_solver();
        let ref_hashes: Vec<u64> = (0..NSTEPS)
            .map(|_| {
                reference.step();
                reference.state_hash()
            })
            .collect();

        // Interrupted run: step to `kill`, checkpoint, "crash".
        let mut victim = serial_solver();
        for _ in 0..kill {
            victim.step();
        }
        write_epoch_serial(&cfg, kill, &victim).expect("write_epoch_serial");
        drop(victim);

        // Restore into a fresh solver and continue.
        let mut restored = serial_solver();
        let info = restore_latest_serial(&cfg, &mut restored).expect("restore_latest_serial");
        prop_assert_eq!(info.step, kill as u64);
        prop_assert!(!info.fell_back, "single-epoch restore must not fall back");
        prop_assert_eq!(restored.state_hash(), ref_hashes[kill - 1],
            "hash diverges at the restore point (kill={kill})");
        for step in kill..NSTEPS {
            restored.step();
            prop_assert_eq!(restored.state_hash(), ref_hashes[step],
                "hash diverges at step {} after restoring from {kill}", step + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// NekTar-F at np ∈ {1, 2, 4}: the coordinated epoch (quiesce →
    /// per-rank shard → manifest) restores every rank's mode block
    /// bitwise, and all subsequent steps hash identically per rank.
    fn fourier_restore_is_bitwise(np in one_of(&[1usize, 2, 4]), kill in 1usize..4) {
        const NSTEPS: usize = 4;
        let dir = fresh_dir("fou");
        let cfg = CkptConfig::new(&dir, "prop_fou", None);
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);

        // Reference: per-rank hash vectors of the uninterrupted run.
        let ref_hashes: Vec<Vec<u64>> = run(np, net(), |c| {
            let mut s = NektarF::new(c, &mesh, fourier_cfg());
            s.set_initial(fourier_init);
            (0..NSTEPS)
                .map(|_| {
                    s.step(c);
                    s.state_hash()
                })
                .collect()
        });

        // Interrupted: step to `kill`, write the coordinated epoch.
        run(np, net(), |c| {
            let mut s = NektarF::new(c, &mesh, fourier_cfg());
            s.set_initial(fourier_init);
            for _ in 0..kill {
                s.step(c);
            }
            write_epoch(c, &cfg, kill, &s).expect("write_epoch");
        });

        // Restored world: fresh solvers, restore, continue, hash.
        let got: Vec<(u64, bool, Vec<u64>)> = run(np, net(), |c| {
            let mut s = NektarF::new(c, &mesh, fourier_cfg());
            let info = restore_latest(c, &cfg, &mut s).expect("restore_latest");
            let mut hashes = vec![s.state_hash()];
            for _ in kill..NSTEPS {
                s.step(c);
                hashes.push(s.state_hash());
            }
            (info.step, info.fell_back, hashes)
        });

        for (rank, (step, fell_back, hashes)) in got.iter().enumerate() {
            prop_assert_eq!(*step, kill as u64, "rank {rank} restored wrong epoch");
            prop_assert!(!*fell_back, "rank {rank} fell back with only one epoch on disk");
            prop_assert_eq!(hashes[0], ref_hashes[rank][kill - 1],
                "np={np} rank {rank}: hash diverges at the restore point");
            for (i, step_idx) in (kill..NSTEPS).enumerate() {
                prop_assert_eq!(hashes[i + 1], ref_hashes[rank][step_idx],
                    "np={np} rank {rank}: hash diverges at step {}", step_idx + 1);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// NekTar-ALE with a moving mesh (`motion_amp` ≠ 0) on 2 ranks: the
    /// checkpoint carries vertex positions, operator scales, and mesh
    /// history; `restore_ckpt` rebuilds the Helmholtz diagonals; the
    /// continued run hashes identically to the uninterrupted one.
    fn ale_restore_is_bitwise(kill in 1usize..3) {
        const NSTEPS: usize = 3;
        const P: usize = 2;
        let dir = fresh_dir("ale");
        let cfg = CkptConfig::new(&dir, "prop_ale", None);
        let mesh = mesh3d();
        let part = partition_for(&mesh, P);

        let ref_hashes: Vec<Vec<u64>> = run(P, net(), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, ale_cfg());
            s.set_initial(c, psi_field);
            (0..NSTEPS)
                .map(|_| {
                    s.step(c);
                    s.state_hash()
                })
                .collect()
        });

        run(P, net(), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, ale_cfg());
            s.set_initial(c, psi_field);
            for _ in 0..kill {
                s.step(c);
            }
            write_epoch(c, &cfg, kill, &s).expect("write_epoch");
        });

        let got: Vec<(u64, Vec<u64>)> = run(P, net(), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, ale_cfg());
            let info = s.restore_ckpt(c, &cfg).expect("restore_ckpt");
            let mut hashes = vec![s.state_hash()];
            for _ in kill..NSTEPS {
                s.step(c);
                hashes.push(s.state_hash());
            }
            (info.step, hashes)
        });

        for (rank, (step, hashes)) in got.iter().enumerate() {
            prop_assert_eq!(*step, kill as u64, "rank {rank} restored wrong epoch");
            prop_assert_eq!(hashes[0], ref_hashes[rank][kill - 1],
                "rank {rank}: hash diverges at the restore point (kill={kill})");
            for (i, step_idx) in (kill..NSTEPS).enumerate() {
                prop_assert_eq!(hashes[i + 1], ref_hashes[rank][step_idx],
                    "rank {rank}: hash diverges at step {}", step_idx + 1);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Restoring into a solver built with a DIFFERENT discretisation is a
/// typed `StateMismatch`, never a panic or a silently wrong state: the
/// "fields" section's leading dof-count guard catches it.
#[test]
fn serial2d_restore_into_wrong_discretisation_is_typed_error() {
    let dir = fresh_dir("s2d_wrong");
    let cfg = CkptConfig::new(&dir, "wrong_disc", None);
    let mut donor = serial_solver();
    donor.step();
    write_epoch_serial(&cfg, 1, &donor).expect("write");

    // Same mesh, higher order: different ndof.
    let scfg = SolverConfig { order: 6, dt: 2e-3, nu: 0.05, scheme_order: 2, advect: true };
    let mut other = Serial2dSolver::new(mesh2d(), scfg, |_| 0.0, |_| 0.0);
    let err = restore_latest_serial(&cfg, &mut other)
        .expect_err("dof mismatch must be detected");
    assert!(
        matches!(err, nkt_ckpt::CkptError::StateMismatch { .. }),
        "expected StateMismatch, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
