//! Statistics-pipeline properties under drawn parameters: Parseval
//! (the spanwise spectrum sums to the total kinetic energy) on both the
//! slab and a 4×2 pencil decomposition, and the NaN watchdog tripping
//! deterministically at whatever step the poison lands — the typed
//! error names exactly that step on every rank, and every rank's
//! flight-recorder ring dumps to disk.

use nektar::fourier::{FourierConfig, NektarF};
use nektar::stats::{sample_fourier, spanwise_energy_spectrum, FOURIER_CHANNELS};
use nkt_mesh::rect_quads;
use nkt_mpi::prelude::*;
use nkt_net::{cluster, ClusterNetwork, NetId};
use nkt_stats::{HealthError, RuleLimits, StatsRecorder};
use nkt_testkit::{one_of, prop_assert, prop_assert_eq, prop_check};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn net() -> ClusterNetwork {
    cluster(NetId::RoadRunnerMyr)
}

fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(p: usize, f: F) -> Vec<R> {
    World::builder().ranks(p).net(net()).run(f)
}

fn cfg(nz: usize) -> FourierConfig {
    FourierConfig {
        order: 3,
        dt: 1e-3,
        nu: 0.05,
        nz,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("nkt_statsprops_{label}_{}_{n}", std::process::id()))
}

/// One step from a drawn initial field, then `(sum of spectrum, KE)`
/// per rank on an explicit `pr × pc` grid.
fn spectrum_vs_ke(pr: usize, pc: usize, nz: usize, amp: f64, kz: f64) -> Vec<(f64, f64)> {
    let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
    run(pr * pc, move |c| {
        let mut s = NektarF::try_new_with_grid(c, &mesh, cfg(nz), pr, pc)
            .unwrap_or_else(|e| panic!("grid {pr}x{pc}: {e}"));
        let pi = std::f64::consts::PI;
        s.set_initial(move |x| {
            let m = 1.0 + 0.4 * (kz * x[2]).cos();
            [
                amp * (pi * x[0]).sin() * (pi * x[1]).cos() * m,
                -amp * (pi * x[0]).cos() * (pi * x[1]).sin() * m,
                0.3 * amp * (kz * x[2]).sin(),
            ]
        });
        s.step(c);
        let spec: f64 = spanwise_energy_spectrum(&mut s, c).iter().sum();
        (spec, s.kinetic_energy(c))
    })
}

prop_check! {
    #![cases(6)]

    fn parseval_holds_on_slab_and_pencil(
        amp in 0.2f64..1.5,
        kz in one_of(&[1.0f64, 2.0, 3.0]),
    ) {
        // Slab on 2 ranks and a 4×2 pencil grid (8 ranks) of the same
        // problem: in both layouts the mode energies must sum to the
        // volume-integrated kinetic energy, and the two layouts must
        // agree with each other.
        let slab = spectrum_vs_ke(2, 1, 16, amp, kz);
        let pencil = spectrum_vs_ke(4, 2, 16, amp, kz);
        for (who, ranks) in [("slab", &slab), ("pencil", &pencil)] {
            for (r, (spec, ke)) in ranks.iter().enumerate() {
                prop_assert!(
                    (spec - ke).abs() <= 1e-9 * (1.0 + ke),
                    "{who} rank {r}: spectrum sum {spec} != KE {ke}"
                );
            }
        }
        let (_, ke_slab) = slab[0];
        let (_, ke_pencil) = pencil[0];
        prop_assert!(
            (ke_slab - ke_pencil).abs() <= 1e-9 * (1.0 + ke_slab),
            "slab KE {ke_slab} vs pencil KE {ke_pencil}"
        );
    }

    fn watchdog_trips_at_the_drawn_step(trip in 1u64..5) {
        let dir = fresh_dir("trip");
        let dir_in = dir.clone();
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let out = run(2, move |c| {
            let mut s = NektarF::new(c, &mesh, cfg(8));
            let pi = std::f64::consts::PI;
            s.set_initial(|x| {
                [(pi * x[0]).sin() * (pi * x[1]).cos(), 0.0, 0.1 * x[2].sin()]
            });
            let mut rec = StatsRecorder::new(FOURIER_CHANNELS.to_vec(), 1, c.size());
            rec.rebaseline(c);
            let limits = RuleLimits::default();
            for step in 1u64..=5 {
                s.step(c);
                if step == trip && c.rank() == 0 {
                    s.fields[0][1].a[0] = f64::NAN;
                }
                if let Err(e) = sample_fourier(&mut s, c, &mut rec, step, &limits, true) {
                    // The sampler's own dump is gated on a run name (not
                    // set under tests); dump this rank's ring explicitly
                    // where the property can see it.
                    let path = nkt_trace::flight::dump_current_to(
                        &dir_in,
                        c.rank(),
                        &e.to_string(),
                    );
                    return Err((e, path));
                }
            }
            Ok(())
        });
        for (rank, r) in out.iter().enumerate() {
            let (err, path) = r.as_ref().expect_err("watchdog must trip");
            prop_assert_eq!(
                err,
                &HealthError::NonFinite { step: trip, rank: 0, field: "v" },
                "rank {} saw {:?}",
                rank,
                err
            );
            let path = path.as_ref().expect("flight dump path");
            prop_assert!(path.is_file(), "missing flight dump {}", path.display());
            let body = std::fs::read_to_string(path).expect("read flight dump");
            prop_assert!(body.contains("nkt-flight-1"), "rank {rank}: bad dump schema");
            prop_assert!(
                body.contains(&format!("at step {trip}")),
                "rank {rank}: dump reason does not name step {trip}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
