//! Runtime flow statistics — the paper's NekTar-F communication inventory
//! includes "Global Addition, min, max for any runtime flow statistics"
//! and "Gather, for possible tracking of flow variables during on-the-fly
//! analysis of data". This module provides those diagnostics for the
//! solvers, plus the sampling glue that drives `nkt_stats::StatsRecorder`
//! from the step loops.
//!
//! The per-sample protocol (`sample_fourier` / `sample_serial2d` /
//! `sample_ale`) is fixed — see `nkt_stats::series` for why the order
//! matters for restart byte-identity:
//!
//! 1. collect the per-rank MPI counter rows (folds the solver-only
//!    ledger first, so the sampler's own traffic never pollutes it);
//! 2. scan the state for NaN/Inf (collective agreement: every rank
//!    raises the identical typed error);
//! 3. run the physics probes (collective, deterministic);
//! 4. push the sample;
//! 5. evaluate the watchdog rules (pure, no communication);
//! 6. re-baseline the recorder past the sampler's traffic.
//!
//! On a watchdog trip each rank dumps its flight-recorder ring
//! (`FLIGHT_<run>_r<rank>.json`) before the typed error propagates out.

use crate::ale::NektarAle;
use crate::fourier::NektarF;
use crate::serial2d::Serial2dSolver;
use crate::timers::Stage;
use nkt_mpi::prelude::*;
use nkt_stats::{check_rules, HealthError, RuleLimits, StatsRecorder};

/// Channels sampled for NekTar-F runs, in column order.
pub const FOURIER_CHANNELS: &[&str] = &[
    "ke", "dissipation", "divergence", "cfl", "umag_min", "umag_max", "umag_mean", "uu", "vv",
    "ww", "uv", "uw", "vw",
];

/// Channels sampled for the serial 2-D solver.
pub const SERIAL2D_CHANNELS: &[&str] = &[
    "ke", "enstrophy", "divergence", "cfl", "umag_min", "umag_max", "umag_mean", "uu", "vv", "uv",
];

/// Channels sampled for NekTar-ALE runs.
pub const ALE_CHANNELS: &[&str] = &["ke", "volume"];

/// Global min/max/mean of a rank-local sample set. One fused
/// `allreduce_minmaxsum` — bitwise identical to the three separate
/// allreduces the paper's pattern implies (asserted by
/// `fused_minmaxsum_bitwise_matches_three_allreduces`), at a third of
/// the collective count.
pub fn global_min_max_mean(comm: &mut Comm, local: &[f64]) -> (f64, f64, f64) {
    let mut mn = [local.iter().copied().fold(f64::INFINITY, f64::min)];
    let mut mx = [local.iter().copied().fold(f64::NEG_INFINITY, f64::max)];
    let mut sum = [local.iter().sum::<f64>(), local.len() as f64];
    comm.allreduce_minmaxsum(&mut mn, &mut mx, &mut sum);
    let mean = if sum[1] > 0.0 { sum[0] / sum[1] } else { 0.0 };
    (mn[0], mx[0], mean)
}

/// Spanwise (Fourier-mode) kinetic-energy spectrum of a NekTar-F state:
/// E_k = ½ Σ_c ∫ (|a_k|² + |b_k|²) weighted by the z-measure — the
/// standard DNS diagnostic for how energy distributes over the
/// homogeneous direction. Collective: every rank receives the full
/// spectrum (allreduce).
pub fn spanwise_energy_spectrum(solver: &mut NektarF, comm: &mut Comm) -> Vec<f64> {
    let nmodes = solver.cfg.nz / 2;
    let mut spec = vec![0.0; nmodes];
    // Pencil grids replicate each mode block over the grid's columns:
    // only the primary replica contributes, or E_k inflates pc-fold.
    if solver.is_primary() {
        for (mi, k) in solver.my_modes.clone().enumerate() {
            spec[k] = solver.mode_energy(mi);
        }
    }
    comm.allreduce(&mut spec, ReduceOp::Sum);
    spec
}

/// Point probe: gathers the (rank, value) samples of a diagnostic onto
/// rank 0 ("Sends (all but processor 0) and Receives (processor 0) for
/// output of the solution field").
pub fn gather_probe(comm: &mut Comm, value: f64) -> Option<Vec<f64>> {
    comm.gather(0, &[value]).map(|rows| rows.into_iter().map(|r| r[0]).collect())
}

// ---------------------------------------------------------------------
// NekTar-F probes
// ---------------------------------------------------------------------

/// Smallest element length scale sqrt(∫_e 1) of the (replicated) 2-D
/// mesh — the `h` in the CFL estimate. Rank-identical by construction.
fn min_elem_h_fourier(solver: &NektarF) -> f64 {
    let prob = &solver.viscous[0];
    let mut h = f64::INFINITY;
    for ei in 0..prob.mesh.nelems() {
        let area: f64 = prob.ops[ei].geom.jw.iter().sum();
        h = h.min(area.sqrt());
    }
    h
}

/// Area of the (replicated) 2-D cross-section, Σ jw.
fn xy_area(solver: &NektarF) -> f64 {
    let prob = &solver.viscous[0];
    (0..prob.mesh.nelems()).map(|ei| prob.ops[ei].geom.jw.iter().sum::<f64>()).sum()
}

/// Local plane-amplitude samples |u_plane| = sqrt(Σ_c plane_c²) at every
/// quadrature point of every owned mode plane (cos and sin). Primary
/// ranks only, so pencil replicas don't double-count the mean.
fn fourier_plane_amplitudes(solver: &NektarF) -> Vec<f64> {
    if !solver.is_primary() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for mi in 0..solver.my_modes.len() {
        let prob = &solver.viscous[mi];
        let qa: Vec<Vec<f64>> =
            (0..3).map(|c| solver.to_quad_with(prob, &solver.fields[mi][c].a)).collect();
        let qb: Vec<Vec<f64>> =
            (0..3).map(|c| solver.to_quad_with(prob, &solver.fields[mi][c].b)).collect();
        for q in 0..solver.nq_total {
            let ma = qa.iter().map(|v| v[q] * v[q]).sum::<f64>().sqrt();
            let mb = qb.iter().map(|v| v[q] * v[q]).sum::<f64>().sqrt();
            out.push(ma);
            out.push(mb);
        }
    }
    out
}

/// One-pass volume sums for NekTar-F, reduced in a single allreduce:
/// returns `(dissipation, divergence_norm, [uu, vv, ww, uv, uw, vw])`.
///
/// Per mode k (measure: ∫cos² = ∫sin² = Lz/2 for k>0; ∫1 = Lz for k=0):
/// * dissipation ε = ν ∫ Σ_c |∇u_c|², with the spanwise derivative
///   entering as β²(a² + b²);
/// * divergence planes: cos = ∂x u_a + ∂y v_a + β w_b,
///   sin = ∂x u_b + ∂y v_b − β w_a (∂z of `a cos βz + b sin βz` is
///   `βb cos βz − βa sin βz`);
/// * Reynolds moments ⟨u_i u_j⟩: cross-mode z-integrals vanish, so mode
///   k contributes `a_i a_j + b_i b_j` under its measure; normalised by
///   the volume V = Lz · area.
fn fourier_volume_sums(solver: &mut NektarF, comm: &mut Comm) -> (f64, f64, [f64; 6]) {
    let lz = solver.cfg.lz;
    let nu = solver.cfg.nu;
    let mut buf = [0.0f64; 8]; // [eps, div², uu, vv, ww, uv, uw, vw]
    if solver.is_primary() {
        for (mi, k) in solver.my_modes.clone().enumerate() {
            let beta = solver.beta(k);
            let prob = &solver.viscous[mi];
            let measure = if k == 0 { lz } else { 0.5 * lz };
            let qa: Vec<Vec<f64>> =
                (0..3).map(|c| solver.to_quad_with(prob, &solver.fields[mi][c].a)).collect();
            let qb: Vec<Vec<f64>> =
                (0..3).map(|c| solver.to_quad_with(prob, &solver.fields[mi][c].b)).collect();
            let ga: Vec<(Vec<f64>, Vec<f64>)> =
                (0..3).map(|c| solver.grad_quad_with(prob, &solver.fields[mi][c].a)).collect();
            let gb: Vec<(Vec<f64>, Vec<f64>)> =
                (0..3).map(|c| solver.grad_quad_with(prob, &solver.fields[mi][c].b)).collect();
            for ei in 0..prob.mesh.nelems() {
                let geom = &prob.ops[ei].geom;
                let (off, nq) = solver.elem_off[ei];
                for q in 0..nq {
                    let w = geom.jw[q] * measure;
                    let p = off + q;
                    let mut grad2 = 0.0;
                    for c in 0..3 {
                        grad2 += ga[c].0[p] * ga[c].0[p] + ga[c].1[p] * ga[c].1[p];
                        grad2 += gb[c].0[p] * gb[c].0[p] + gb[c].1[p] * gb[c].1[p];
                        grad2 += beta * beta * (qa[c][p] * qa[c][p] + qb[c][p] * qb[c][p]);
                    }
                    buf[0] += nu * w * grad2;
                    let div_a = ga[0].0[p] + ga[1].1[p] + beta * qb[2][p];
                    let div_b = gb[0].0[p] + gb[1].1[p] - beta * qa[2][p];
                    buf[1] += w * (div_a * div_a + div_b * div_b);
                    let pair = |i: usize, j: usize| qa[i][p] * qa[j][p] + qb[i][p] * qb[j][p];
                    buf[2] += w * pair(0, 0);
                    buf[3] += w * pair(1, 1);
                    buf[4] += w * pair(2, 2);
                    buf[5] += w * pair(0, 1);
                    buf[6] += w * pair(0, 2);
                    buf[7] += w * pair(1, 2);
                }
            }
        }
    }
    comm.allreduce(&mut buf, ReduceOp::Sum);
    let vol = lz * xy_area(solver);
    let mut moments = [0.0; 6];
    for (m, &s) in moments.iter_mut().zip(&buf[2..8]) {
        *m = s / vol;
    }
    (buf[0], buf[1].sqrt(), moments)
}

// ---------------------------------------------------------------------
// NaN/Inf scans with collective agreement
// ---------------------------------------------------------------------

/// Finds the first non-finite entry and agrees on it globally: each rank
/// encodes `rank * nfields + field` (or +∞ when clean) and the world
/// takes the minimum, so every rank raises the **identical**
/// `HealthError::NonFinite` — no rank runs ahead into a later collective
/// while others abort.
fn agree_non_finite(
    comm: &mut Comm,
    step: u64,
    local_field: Option<usize>,
    names: &'static [&'static str],
) -> Result<(), HealthError> {
    let nfields = names.len();
    let mut code = [local_field
        .map(|f| (comm.rank() * nfields + f) as f64)
        .unwrap_or(f64::INFINITY)];
    comm.allreduce(&mut code, ReduceOp::Min);
    if code[0].is_finite() {
        let c = code[0] as usize;
        return Err(HealthError::NonFinite {
            step,
            rank: c / nfields,
            field: names[c % nfields],
        });
    }
    Ok(())
}

const FOURIER_FIELDS: &[&str] = &["u", "v", "w"];
const ALE_FIELDS: &[&str] = &["u", "v", "w", "p"];
const SERIAL_FIELDS: &[&str] = &["u", "v", "p"];

/// Collective NaN/Inf scan of the NekTar-F modal state.
pub fn check_finite_fourier(
    solver: &NektarF,
    comm: &mut Comm,
    step: u64,
) -> Result<(), HealthError> {
    let mut bad = None;
    'scan: for comps in &solver.fields {
        for (c, mc) in comps.iter().enumerate() {
            if mc.a.iter().chain(mc.b.iter()).any(|v| !v.is_finite()) {
                bad = Some(c);
                break 'scan;
            }
        }
    }
    agree_non_finite(comm, step, bad, FOURIER_FIELDS)
}

/// Collective NaN/Inf scan of the NekTar-ALE modal state.
pub fn check_finite_ale(
    solver: &NektarAle,
    comm: &mut Comm,
    step: u64,
) -> Result<(), HealthError> {
    let mut bad = None;
    for (c, field) in solver.u.iter().enumerate() {
        if field.iter().any(|v| !v.is_finite()) {
            bad = Some(c);
            break;
        }
    }
    if bad.is_none() && solver.p.iter().any(|v| !v.is_finite()) {
        bad = Some(3);
    }
    agree_non_finite(comm, step, bad, ALE_FIELDS)
}

/// NaN/Inf scan of the serial solver state (no communication).
pub fn check_finite_serial(solver: &Serial2dSolver, step: u64) -> Result<(), HealthError> {
    let fields = [&solver.u, &solver.v, &solver.p];
    for (c, f) in fields.iter().enumerate() {
        if f.iter().any(|v| !v.is_finite()) {
            return Err(HealthError::NonFinite { step, rank: 0, field: SERIAL_FIELDS[c] });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------

fn dump_flight(rank: usize, err: &HealthError) {
    nkt_trace::flight::dump_current(rank, &err.to_string());
}

/// Takes one NekTar-F sample (collective): MPI counter rows, finiteness
/// scan, physics probes, watchdog rules. `health` gates the scan and
/// rules; either way the sample is recorded. On a trip this rank dumps
/// its flight ring and the identical typed error returns on every rank.
pub fn sample_fourier(
    solver: &mut NektarF,
    comm: &mut Comm,
    rec: &mut StatsRecorder,
    step: u64,
    limits: &RuleLimits,
    health: bool,
) -> Result<(), HealthError> {
    let mpi = rec.collect(comm);
    if health {
        if let Err(e) = check_finite_fourier(solver, comm, step) {
            dump_flight(comm.rank(), &e);
            return Err(e);
        }
    }
    let ke_prev = rec.prev_ke();
    let ke = solver.kinetic_energy(comm);
    let spectrum = spanwise_energy_spectrum(solver, comm);
    let (eps, div, m) = fourier_volume_sums(solver, comm);
    let amps = fourier_plane_amplitudes(solver);
    let (umin, umax, umean) = global_min_max_mean(comm, &amps);
    let cfl = umax * solver.cfg.dt / min_elem_h_fourier(solver);
    let scalars =
        [ke, eps, div, cfl, umin, umax, umean, m[0], m[1], m[2], m[3], m[4], m[5]];
    rec.push(step, &scalars, spectrum, mpi);
    if health {
        if let Err(e) = check_rules(step, limits, ke, ke_prev, Some(div), Some(cfl)) {
            dump_flight(comm.rank(), &e);
            return Err(e);
        }
    }
    rec.rebaseline(comm);
    Ok(())
}

/// Serial-solver volume sums: `(enstrophy, [uu, vv, uv])` plus the
/// amplitude samples for the min/max/mean channels.
fn serial_sums(solver: &mut Serial2dSolver) -> (f64, [f64; 3], Vec<f64>) {
    let u_mod = solver.u.clone();
    let v_mod = solver.v.clone();
    let (_, duy) = solver.gradient(&u_mod, Stage::NonLinear);
    let (dvx, _) = solver.gradient(&v_mod, Stage::NonLinear);
    let prob = &solver.viscous;
    let mut ens = 0.0;
    let mut sums = [0.0f64; 3];
    let mut area = 0.0;
    let mut amps = Vec::new();
    for ei in 0..prob.mesh.nelems() {
        let basis = prob.basis(ei);
        let geom = &prob.ops[ei].geom;
        let mut lu = vec![0.0; basis.nmodes()];
        let mut lv = vec![0.0; basis.nmodes()];
        prob.asm.gather(ei, &solver.u, &mut lu);
        prob.asm.gather(ei, &solver.v, &mut lv);
        for q in 0..basis.nquad() {
            let mut uu = 0.0;
            let mut vv = 0.0;
            for m in 0..basis.nmodes() {
                uu += lu[m] * basis.val()[m][q];
                vv += lv[m] * basis.val()[m][q];
            }
            let w = geom.jw[q];
            let omega = dvx[ei][q] - duy[ei][q];
            ens += w * omega * omega;
            sums[0] += w * uu * uu;
            sums[1] += w * vv * vv;
            sums[2] += w * uu * vv;
            area += w;
            amps.push((uu * uu + vv * vv).sqrt());
        }
    }
    let mut moments = [0.0; 3];
    for (m, s) in moments.iter_mut().zip(&sums) {
        *m = s / area;
    }
    (ens, moments, amps)
}

/// Smallest element length scale of the serial solver's mesh.
fn min_elem_h_serial(solver: &Serial2dSolver) -> f64 {
    let prob = &solver.viscous;
    let mut h = f64::INFINITY;
    for ei in 0..prob.mesh.nelems() {
        let area: f64 = prob.ops[ei].geom.jw.iter().sum();
        h = h.min(area.sqrt());
    }
    h
}

/// Takes one serial-2-D sample (no communication; the MPI rows are
/// empty).
pub fn sample_serial2d(
    solver: &mut Serial2dSolver,
    rec: &mut StatsRecorder,
    step: u64,
    limits: &RuleLimits,
    health: bool,
) -> Result<(), HealthError> {
    if health {
        if let Err(e) = check_finite_serial(solver, step) {
            dump_flight(0, &e);
            return Err(e);
        }
    }
    let ke_prev = rec.prev_ke();
    let ke = solver.kinetic_energy();
    let div = solver.divergence_norm();
    let (ens, m, amps) = serial_sums(solver);
    let n = amps.len() as f64;
    let umin = amps.iter().copied().fold(f64::INFINITY, f64::min);
    let umax = amps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let umean = if n > 0.0 { amps.iter().sum::<f64>() / n } else { 0.0 };
    let cfl = umax * solver.cfg.dt / min_elem_h_serial(solver);
    let scalars = [ke, ens, div, cfl, umin, umax, umean, m[0], m[1], m[2]];
    rec.push(step, &scalars, Vec::new(), Vec::new());
    if health {
        if let Err(e) = check_rules(step, limits, ke, ke_prev, Some(div), Some(cfl)) {
            dump_flight(0, &e);
            return Err(e);
        }
    }
    Ok(())
}

/// Takes one NekTar-ALE sample (collective): kinetic energy and mesh
/// volume (the ALE invariant) plus the counter rows and health scan.
pub fn sample_ale(
    solver: &mut NektarAle,
    comm: &mut Comm,
    rec: &mut StatsRecorder,
    step: u64,
    limits: &RuleLimits,
    health: bool,
) -> Result<(), HealthError> {
    let mpi = rec.collect(comm);
    if health {
        if let Err(e) = check_finite_ale(solver, comm, step) {
            dump_flight(comm.rank(), &e);
            return Err(e);
        }
    }
    let ke_prev = rec.prev_ke();
    let ke = solver.kinetic_energy(comm);
    let vol = solver.total_volume(comm);
    rec.push(step, &[ke, vol], Vec::new(), mpi);
    if health {
        if let Err(e) = check_rules(step, limits, ke, ke_prev, None, None) {
            dump_flight(comm.rank(), &e);
            return Err(e);
        }
    }
    rec.rebaseline(comm);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fourier::FourierConfig;
    use nkt_mesh::rect_quads;
    use nkt_net::{cluster, NetId};

    fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
        p: usize,
        net: nkt_net::ClusterNetwork,
        f: F,
    ) -> Vec<R> {
        World::builder().ranks(p).net(net).run(f)
    }

    #[test]
    fn min_max_mean_across_ranks() {
        let out = run(4, cluster(NetId::T3e), |c| {
            let r = c.rank() as f64;
            global_min_max_mean(c, &[r, r + 10.0])
        });
        for &(mn, mx, mean) in &out {
            assert_eq!(mn, 0.0);
            assert_eq!(mx, 13.0);
            // Values: 0,10,1,11,2,12,3,13 -> mean 6.5.
            assert!((mean - 6.5).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_minmaxsum_bitwise_matches_three_allreduces() {
        // The fused collective must traverse the identical reduction tree
        // as three separate allreduces — same operand order, same
        // rounding, bitwise-equal results on every rank.
        let out = run(4, cluster(NetId::T3e), |c| {
            let r = c.rank() as f64;
            // Deliberately awkward values: rounding-sensitive sums.
            let local = [0.1 * r + 0.3, r * 1e-13 + 1.0 / 3.0, -r, 7.77 / (r + 1.0)];
            let mut mn = [local.iter().copied().fold(f64::INFINITY, f64::min)];
            let mut mx = [local.iter().copied().fold(f64::NEG_INFINITY, f64::max)];
            let mut sum = [local.iter().sum::<f64>(), local.len() as f64];
            let (fmn, fmx, fsum) = {
                let mut a = mn;
                let mut b = mx;
                let mut s = sum;
                c.allreduce_minmaxsum(&mut a, &mut b, &mut s);
                (a[0], b[0], s)
            };
            c.allreduce(&mut mn, ReduceOp::Min);
            c.allreduce(&mut mx, ReduceOp::Max);
            c.allreduce(&mut sum, ReduceOp::Sum);
            (
                fmn.to_bits() == mn[0].to_bits(),
                fmx.to_bits() == mx[0].to_bits(),
                fsum[0].to_bits() == sum[0].to_bits() && fsum[1].to_bits() == sum[1].to_bits(),
            )
        });
        for &(mn_ok, mx_ok, sum_ok) in &out {
            assert!(mn_ok && mx_ok && sum_ok, "fused allreduce diverged from separate ops");
        }
    }

    fn mesh() -> nkt_mesh::Mesh2d {
        rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2)
    }

    fn cfg() -> FourierConfig {
        FourierConfig {
            order: 3,
            dt: 1e-3,
            nu: 0.05,
            nz: 8,
            lz: 2.0 * std::f64::consts::PI,
            scheme_order: 2,
        }
    }

    fn psi_field(x: [f64; 3]) -> [f64; 3] {
        let pi = std::f64::consts::PI;
        let (sx, cx) = (pi * x[0]).sin_cos();
        let (sy, cy) = (pi * x[1]).sin_cos();
        let env = 1.0 + 0.5 * x[2].cos() + 0.25 * (2.0 * x[2]).sin();
        [
            2.0 * pi * sx * sx * sy * cy * env,
            -2.0 * pi * sx * cx * sy * sy * env,
            0.0,
        ]
    }

    #[test]
    fn spectrum_sums_to_total_energy() {
        let mesh = mesh();
        let cfg = cfg();
        let out = run(2, cluster(NetId::T3e), move |c| {
            let mut s = NektarF::new(c, &mesh, cfg.clone());
            s.set_initial(psi_field);
            let spec = spanwise_energy_spectrum(&mut s, c);
            let total = s.kinetic_energy(c);
            (spec, total)
        });
        for (spec, total) in &out {
            let sum: f64 = spec.iter().sum();
            assert!(
                (sum - total).abs() < 1e-9 * (1.0 + total),
                "spectrum sum {sum} vs total {total}"
            );
            // Modes 0, 1, 2 carry energy; mode 3 does not.
            assert!(spec[0] > 0.0 && spec[1] > 0.0 && spec[2] > 0.0);
            assert!(spec[3].abs() < 1e-12 * (1.0 + total));
        }
    }

    #[test]
    fn probe_gathers_on_root() {
        let out = run(3, cluster(NetId::T3e), |c| gather_probe(c, c.rank() as f64 * 2.0));
        assert_eq!(out[0], Some(vec![0.0, 2.0, 4.0]));
        assert_eq!(out[1], None);
        assert_eq!(out[2], None);
    }

    #[test]
    fn fourier_probes_match_reference_physics() {
        // On a divergence-free field the divergence channel sits at the
        // splitting-error floor, dissipation is positive, and the
        // diagonal Reynolds stresses are non-negative with uu + vv + ww
        // recovering 2·KE / V.
        let mesh = mesh();
        let cfg = cfg();
        let out = run(2, cluster(NetId::T3e), move |c| {
            let mut s = NektarF::new(c, &mesh, cfg.clone());
            s.set_initial(psi_field);
            let (eps, div, m) = fourier_volume_sums(&mut s, c);
            let ke = s.kinetic_energy(c);
            (eps, div, m, ke, s.cfg.lz)
        });
        for (eps, div, m, ke, lz) in &out {
            assert!(*eps > 0.0, "dissipation {eps}");
            // The analytic field is divergence-free; the projected one
            // carries only projection error, so its divergence must be
            // small *relative to the gradient norm* ‖∇u‖ = sqrt(ε/ν).
            let grad_norm = (eps / 0.05).sqrt();
            assert!(
                *div < 0.02 * grad_norm,
                "divergence {div} not small vs gradient norm {grad_norm}"
            );
            assert!(m[0] >= 0.0 && m[1] >= 0.0 && m[2] >= 0.0);
            let vol = lz * 1.0; // unit-square cross-section
            let trace = m[0] + m[1] + m[2];
            assert!(
                (trace - 2.0 * ke / vol).abs() < 1e-9 * (1.0 + trace),
                "tr(uu) {trace} vs 2·KE/V {}",
                2.0 * ke / vol
            );
        }
    }

    #[test]
    fn sample_fourier_records_channels_and_respects_pencil_primaries() {
        // The same physical state sampled on a slab (2 ranks) and a 4×2
        // pencil grid must produce identical global scalars — primary
        // gating keeps replicas from inflating mode sums.
        let mesh = mesh();
        let cfg = cfg();
        let sample_with = |p: usize, pr: usize, pc: usize| -> Vec<f64> {
            let mesh = mesh.clone();
            let cfg = cfg.clone();
            run(p, cluster(NetId::T3e), move |c| {
                let mut s =
                    NektarF::try_new_with_grid(c, &mesh, cfg.clone(), pr, pc).unwrap();
                s.set_initial(psi_field);
                let mut rec = StatsRecorder::new(FOURIER_CHANNELS.to_vec(), 1, c.size());
                sample_fourier(&mut s, c, &mut rec, 1, &RuleLimits::default(), true)
                    .unwrap();
                rec.samples()[0].scalars.clone()
            })[0]
            .clone()
        };
        let slab = sample_with(2, 2, 1);
        let pencil = sample_with(8, 4, 2);
        assert_eq!(slab.len(), FOURIER_CHANNELS.len());
        for (i, (a, b)) in slab.iter().zip(&pencil).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                "channel {} differs: slab {a} vs pencil {b}",
                FOURIER_CHANNELS[i]
            );
        }
    }

    #[test]
    fn nan_in_state_raises_identical_typed_error_on_all_ranks() {
        let mesh = mesh();
        let cfg = cfg();
        let out = run(2, cluster(NetId::T3e), move |c| {
            let mut s = NektarF::new(c, &mesh, cfg.clone());
            s.set_initial(psi_field);
            if c.rank() == 1 {
                s.fields[0][1].a[0] = f64::NAN; // v-field on rank 1
            }
            let mut rec = StatsRecorder::new(FOURIER_CHANNELS.to_vec(), 1, c.size());
            sample_fourier(&mut s, c, &mut rec, 7, &RuleLimits::default(), true)
        });
        for r in &out {
            match r {
                Err(HealthError::NonFinite { step, rank, field }) => {
                    assert_eq!(*step, 7);
                    assert_eq!(*rank, 1);
                    assert_eq!(*field, "v");
                }
                other => panic!("expected NonFinite on every rank, got {other:?}"),
            }
        }
    }

    #[test]
    fn serial_sampler_fills_all_channels() {
        use crate::serial2d::SolverConfig;
        let scfg = SolverConfig { order: 4, dt: 1e-3, nu: 0.05, scheme_order: 2, advect: true };
        let mut s = Serial2dSolver::new(mesh(), scfg, |_| 0.0, |_| 0.0);
        let pi = std::f64::consts::PI;
        s.set_initial(
            move |x| (pi * x[0]).sin() * (pi * x[1]).cos(),
            move |x| -(pi * x[0]).cos() * (pi * x[1]).sin(),
        );
        let mut rec = StatsRecorder::new(SERIAL2D_CHANNELS.to_vec(), 1, 1);
        sample_serial2d(&mut s, &mut rec, 1, &RuleLimits::default(), true).unwrap();
        let sample = &rec.samples()[0];
        assert_eq!(sample.scalars.len(), SERIAL2D_CHANNELS.len());
        let ke = rec.accum("ke").unwrap().mean;
        assert!(ke > 0.0);
        let umax = rec.accum("umag_max").unwrap().mean;
        let umin = rec.accum("umag_min").unwrap().mean;
        assert!(umax >= umin && umin >= 0.0);
        // Serial watchdog trips on an injected NaN naming the field.
        s.u[0] = f64::NAN;
        let err = sample_serial2d(&mut s, &mut rec, 2, &RuleLimits::default(), true)
            .unwrap_err();
        assert!(matches!(err, HealthError::NonFinite { step: 2, rank: 0, field: "u" }), "{err}");
    }
}
