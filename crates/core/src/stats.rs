//! Runtime flow statistics — the paper's NekTar-F communication inventory
//! includes "Global Addition, min, max for any runtime flow statistics"
//! and "Gather, for possible tracking of flow variables during on-the-fly
//! analysis of data". This module provides those diagnostics for the
//! parallel solvers.

use crate::fourier::NektarF;
use nkt_mpi::prelude::*;

/// Global min/max/mean of a rank-local sample set (three allreduces, the
/// paper's pattern).
pub fn global_min_max_mean(comm: &mut Comm, local: &[f64]) -> (f64, f64, f64) {
    let mut mn = [local.iter().copied().fold(f64::INFINITY, f64::min)];
    let mut mx = [local.iter().copied().fold(f64::NEG_INFINITY, f64::max)];
    let mut sum = [local.iter().sum::<f64>(), local.len() as f64];
    comm.allreduce(&mut mn, ReduceOp::Min);
    comm.allreduce(&mut mx, ReduceOp::Max);
    comm.allreduce(&mut sum, ReduceOp::Sum);
    let mean = if sum[1] > 0.0 { sum[0] / sum[1] } else { 0.0 };
    (mn[0], mx[0], mean)
}

/// Spanwise (Fourier-mode) kinetic-energy spectrum of a NekTar-F state:
/// E_k = ½ Σ_c ∫ (|a_k|² + |b_k|²) weighted by the z-measure — the
/// standard DNS diagnostic for how energy distributes over the
/// homogeneous direction. Collective: every rank receives the full
/// spectrum (allreduce).
pub fn spanwise_energy_spectrum(solver: &mut NektarF, comm: &mut Comm) -> Vec<f64> {
    let nmodes = solver.cfg.nz / 2;
    let mut spec = vec![0.0; nmodes];
    // Pencil grids replicate each mode block over the grid's columns:
    // only the primary replica contributes, or E_k inflates pc-fold.
    if solver.is_primary() {
        for (mi, k) in solver.my_modes.clone().enumerate() {
            spec[k] = solver.mode_energy(mi);
        }
    }
    comm.allreduce(&mut spec, ReduceOp::Sum);
    spec
}

/// Point probe: gathers the (rank, value) samples of a diagnostic onto
/// rank 0 ("Sends (all but processor 0) and Receives (processor 0) for
/// output of the solution field").
pub fn gather_probe(comm: &mut Comm, value: f64) -> Option<Vec<f64>> {
    comm.gather(0, &[value]).map(|rows| rows.into_iter().map(|r| r[0]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fourier::FourierConfig;
    use nkt_mesh::rect_quads;
    use nkt_net::{cluster, NetId};

    fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
        p: usize,
        net: nkt_net::ClusterNetwork,
        f: F,
    ) -> Vec<R> {
        World::builder().ranks(p).net(net).run(f)
    }

    #[test]
    fn min_max_mean_across_ranks() {
        let out = run(4, cluster(NetId::T3e), |c| {
            let r = c.rank() as f64;
            global_min_max_mean(c, &[r, r + 10.0])
        });
        for &(mn, mx, mean) in &out {
            assert_eq!(mn, 0.0);
            assert_eq!(mx, 13.0);
            // Values: 0,10,1,11,2,12,3,13 -> mean 6.5.
            assert!((mean - 6.5).abs() < 1e-12);
        }
    }

    #[test]
    fn spectrum_sums_to_total_energy() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let cfg = FourierConfig {
            order: 3,
            dt: 1e-3,
            nu: 0.05,
            nz: 8,
            lz: 2.0 * std::f64::consts::PI,
            scheme_order: 2,
        };
        let init = |x: [f64; 3]| {
            let pi = std::f64::consts::PI;
            let (sx, cx) = (pi * x[0]).sin_cos();
            let (sy, cy) = (pi * x[1]).sin_cos();
            let env = 1.0 + 0.5 * x[2].cos() + 0.25 * (2.0 * x[2]).sin();
            [
                2.0 * pi * sx * sx * sy * cy * env,
                -2.0 * pi * sx * cx * sy * sy * env,
                0.0,
            ]
        };
        let out = run(2, cluster(NetId::T3e), move |c| {
            let mut s = NektarF::new(c, &mesh, cfg.clone());
            s.set_initial(init);
            let spec = spanwise_energy_spectrum(&mut s, c);
            let total = s.kinetic_energy(c);
            (spec, total)
        });
        for (spec, total) in &out {
            let sum: f64 = spec.iter().sum();
            assert!(
                (sum - total).abs() < 1e-9 * (1.0 + total),
                "spectrum sum {sum} vs total {total}"
            );
            // Modes 0, 1, 2 carry energy; mode 3 does not.
            assert!(spec[0] > 0.0 && spec[1] > 0.0 && spec[2] > 0.0);
            assert!(spec[3].abs() < 1e-12 * (1.0 + total));
        }
    }

    #[test]
    fn probe_gathers_on_root() {
        let out = run(3, cluster(NetId::T3e), |c| gather_probe(c, c.rank() as f64 * 2.0));
        assert_eq!(out[0], Some(vec![0.0, 2.0, 4.0]));
        assert_eq!(out[1], None);
        assert_eq!(out[2], None);
    }
}
