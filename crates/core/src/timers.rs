//! The paper's per-time-step stage decomposition and timing ledgers.
//!
//! Figure 12 splits a serial time step into 7 regions; Figures 13–14 use
//! the same regions for NekTar-F, and Figures 15–16 group them as
//! a = steps 1–4 & 6, b = step 5, c = step 7 for NekTar-ALE.

/// The 7 stages of a time step (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// 1 — transformation from modal (transformed) to quadrature
    /// (physical) space.
    BwdTransform,
    /// 2 — evaluation of the non-linear terms in quadrature space
    /// (plus, in NekTar-F, the Alltoall transposes and FFTs).
    NonLinear,
    /// 3 — stiffly-stable weighting with previous time-steps.
    StifflyStable,
    /// 4 — setup of the pressure Poisson right-hand side.
    PressureRhs,
    /// 5 — solution of the pressure Poisson equation.
    PressureSolve,
    /// 6 — setup of the viscous Helmholtz right-hand side.
    ViscousRhs,
    /// 7 — solution of the viscous Helmholtz equation(s).
    ViscousSolve,
}

impl Stage {
    /// All stages in paper order.
    pub const ALL: [Stage; 7] = [
        Stage::BwdTransform,
        Stage::NonLinear,
        Stage::StifflyStable,
        Stage::PressureRhs,
        Stage::PressureSolve,
        Stage::ViscousRhs,
        Stage::ViscousSolve,
    ];

    /// Stage index 0..7 (paper labels 1..7).
    pub fn index(self) -> usize {
        match self {
            Stage::BwdTransform => 0,
            Stage::NonLinear => 1,
            Stage::StifflyStable => 2,
            Stage::PressureRhs => 3,
            Stage::PressureSolve => 4,
            Stage::ViscousRhs => 5,
            Stage::ViscousSolve => 6,
        }
    }

    /// Stable stage name (trace span labels, report rows).
    pub fn name(self) -> &'static str {
        match self {
            Stage::BwdTransform => "BwdTransform",
            Stage::NonLinear => "NonLinear",
            Stage::StifflyStable => "StifflyStable",
            Stage::PressureRhs => "PressureRhs",
            Stage::PressureSolve => "PressureSolve",
            Stage::ViscousRhs => "ViscousRhs",
            Stage::ViscousSolve => "ViscousSolve",
        }
    }

    /// The Figures 15–16 grouping: 'a' = steps 1–4 & 6, 'b' = step 5
    /// (pressure solve), 'c' = step 7 (Helmholtz solves).
    pub fn ale_group(self) -> char {
        match self {
            Stage::PressureSolve => 'b',
            Stage::ViscousSolve => 'c',
            _ => 'a',
        }
    }
}

/// Times one stage region: a host wall timer paired with a trace span,
/// so the StageClock ledgers and the exported timeline measure the same
/// interval (they must agree — the trace smoke test checks within 1%).
pub struct StageTimer {
    t0: std::time::Instant,
    sp: nkt_trace::Span,
}

impl StageTimer {
    /// Starts timing a host-time stage region.
    pub fn start(stage: Stage) -> StageTimer {
        StageTimer { t0: std::time::Instant::now(), sp: nkt_trace::span(stage.name(), "stage") }
    }

    /// Starts a region that also carries virtual time, anchored at `vt0`
    /// (usually `comm.wtime()` at region entry).
    pub fn start_v(stage: Stage, vt0: f64) -> StageTimer {
        StageTimer {
            t0: std::time::Instant::now(),
            sp: nkt_trace::span_v(stage.name(), "stage", vt0),
        }
    }

    /// Ends the region; returns its host seconds.
    pub fn stop(self) -> f64 {
        let secs = self.t0.elapsed().as_secs_f64();
        self.sp.end();
        secs
    }

    /// Ends the region stamping the virtual end time `vt1`; returns host
    /// seconds (the caller charges the virtual delta to its clock).
    pub fn stop_v(self, vt1: f64) -> f64 {
        let secs = self.t0.elapsed().as_secs_f64();
        self.sp.end_v(vt1);
        secs
    }
}

/// Accumulated per-stage time (seconds — host wall time for native runs,
/// virtual time for simulated runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageClock {
    /// Per-stage totals, indexed by [`Stage::index`].
    pub totals: [f64; 7],
}

impl StageClock {
    /// Creates a zeroed clock.
    pub fn new() -> StageClock {
        StageClock::default()
    }

    /// Adds `seconds` to a stage.
    pub fn add(&mut self, stage: Stage, seconds: f64) {
        self.totals[stage.index()] += seconds;
    }

    /// Runs `f`, charging its host wall time to `stage` (and recording a
    /// trace span when `NKT_TRACE=spans`).
    pub fn time<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let t = StageTimer::start(stage);
        let r = f();
        self.add(stage, t.stop());
        r
    }

    /// Total across stages.
    pub fn total(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// Percentage per stage (Figure 12's pie slices). Zero total gives
    /// zeros.
    pub fn percentages(&self) -> [f64; 7] {
        let t = self.total();
        let mut p = [0.0; 7];
        if t > 0.0 {
            for i in 0..7 {
                p[i] = 100.0 * self.totals[i] / t;
            }
        }
        p
    }

    /// The a/b/c grouping of Figures 15–16: (a, b, c) percentages.
    pub fn ale_group_percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let mut a = 0.0;
        let mut b = 0.0;
        let mut c = 0.0;
        for s in Stage::ALL {
            let v = 100.0 * self.totals[s.index()] / t;
            match s.ale_group() {
                'a' => a += v,
                'b' => b += v,
                _ => c += v,
            }
        }
        (a, b, c)
    }

    /// Elementwise sum with another clock.
    pub fn merge(&mut self, other: &StageClock) {
        for i in 0..7 {
            self.totals[i] += other.totals[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_cover_all_stages() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn ale_grouping() {
        assert_eq!(Stage::PressureSolve.ale_group(), 'b');
        assert_eq!(Stage::ViscousSolve.ale_group(), 'c');
        assert_eq!(Stage::NonLinear.ale_group(), 'a');
        assert_eq!(Stage::ViscousRhs.ale_group(), 'a');
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut c = StageClock::new();
        c.add(Stage::NonLinear, 3.0);
        c.add(Stage::PressureSolve, 5.0);
        c.add(Stage::ViscousSolve, 2.0);
        let p = c.percentages();
        let s: f64 = p.iter().sum();
        assert!((s - 100.0).abs() < 1e-12);
        assert!((p[Stage::PressureSolve.index()] - 50.0).abs() < 1e-12);
    }

    #[test]
    fn ale_group_percentages_split() {
        let mut c = StageClock::new();
        c.add(Stage::BwdTransform, 1.0);
        c.add(Stage::PressureSolve, 4.0);
        c.add(Stage::ViscousSolve, 5.0);
        let (a, b, cc) = c.ale_group_percentages();
        assert!((a - 10.0).abs() < 1e-12);
        assert!((b - 40.0).abs() < 1e-12);
        assert!((cc - 50.0).abs() < 1e-12);
    }

    #[test]
    fn time_accumulates() {
        let mut c = StageClock::new();
        let v = c.time(Stage::NonLinear, || {
            std::hint::black_box((0..10000).map(|i| i as f64).sum::<f64>())
        });
        assert!(v > 0.0);
        assert!(c.totals[1] > 0.0);
    }

    #[test]
    fn zero_clock_percentages() {
        assert_eq!(StageClock::new().percentages(), [0.0; 7]);
    }

    #[test]
    fn merge_adds() {
        let mut a = StageClock::new();
        a.add(Stage::NonLinear, 1.0);
        let mut b = StageClock::new();
        b.add(Stage::NonLinear, 2.0);
        b.add(Stage::ViscousSolve, 3.0);
        a.merge(&b);
        assert_eq!(a.totals[Stage::NonLinear.index()], 3.0);
        assert_eq!(a.totals[Stage::ViscousSolve.index()], 3.0);
    }
}
