//! NekTar-F: Fourier × spectral/hp parallel Navier–Stokes solver
//! (paper §4.2.1, Table 2, Figures 13–14).
//!
//! The spanwise (z) direction is homogeneous and expanded in Fourier
//! modes; the x–y plane uses the 2-D spectral/hp discretisation. Mode k
//! is carried as a cos/sin pair of 2-D planes ("one Fourier mode ...
//! corresponds to two spectral/hp element planes"). Ranks own contiguous
//! blocks of modes; the nonlinear step performs the paper's sequence:
//!
//! * Global Exchange (Alltoall) of velocity (and gradient) planes,
//! * Nxy 1-D inverse FFTs per field,
//! * pointwise nonlinear products in physical z space,
//! * Nxy 1-D FFTs of the nonlinear terms,
//! * Global Exchange back.
//!
//! Poisson/Helmholtz solves are per-mode 2-D banded direct solves with
//! λ_k = β_k² (+ γ₀/νΔt), β_k = 2πk/L_z — "direct solvers may be
//! employed for the solution of 2D Helmholtz problems on each processor".

use crate::decomp::{parse_grid, Decomposition, FourierCfgError, Pencil2D, Slab, TransposeCtx};
use crate::opstream::{Recorder, WorkItem};
use crate::splitting::StifflyStable;
use crate::timers::{Stage, StageClock, StageTimer};
use nkt_fft::{Complex64, RealFft};
use nkt_mesh::{BoundaryTag, Mesh2d};
use nkt_mpi::prelude::*;
use nkt_spectral::{HelmholtzProblem, SolveMethod};
use std::collections::VecDeque;

/// Configuration for a NekTar-F run.
#[derive(Debug, Clone)]
pub struct FourierConfig {
    /// Polynomial order of the x–y expansion.
    pub order: usize,
    /// Time step.
    pub dt: f64,
    /// Kinematic viscosity.
    pub nu: f64,
    /// Number of real z-planes (must be even; modes = nz/2, Nyquist
    /// dropped).
    pub nz: usize,
    /// Spanwise period L_z (paper: 2π for the bluff-body runs).
    pub lz: f64,
    /// Splitting order.
    pub scheme_order: usize,
}

impl Default for FourierConfig {
    fn default() -> Self {
        FourierConfig {
            order: 4,
            dt: 1e-3,
            nu: 0.01,
            nz: 8,
            lz: 2.0 * std::f64::consts::PI,
            scheme_order: 2,
        }
    }
}

/// A field for one Fourier mode at quadrature points: cos (`a`) and sin
/// (`b`) plane values.
#[derive(Debug, Clone, Default)]
pub struct ModePlane {
    /// Cosine-plane values.
    pub a: Vec<f64>,
    /// Sine-plane values.
    pub b: Vec<f64>,
}

/// Modal (assembled, global-dof) coefficients for one mode: cos/sin.
#[derive(Debug, Clone, Default)]
pub struct ModeCoeffs {
    /// Cosine-plane coefficients.
    pub a: Vec<f64>,
    /// Sine-plane coefficients.
    pub b: Vec<f64>,
}

/// Per-rank NekTar-F solver state.
pub struct NektarF {
    /// Configuration.
    pub cfg: FourierConfig,
    scheme: StifflyStable,
    /// Mode/point layout and transpose plan ([`Slab`] or [`Pencil2D`]).
    decomp: Box<dyn Decomposition>,
    /// Modes owned by this rank (global indices, contiguous; mirror of
    /// the decomposition's block for direct access).
    pub my_modes: std::ops::Range<usize>,
    /// Per owned mode: pressure problem (λ = β²).
    pub(crate) pressure: Vec<HelmholtzProblem>,
    /// Per owned mode: viscous problem (λ = β² + γ₀/(νΔt)).
    pub(crate) viscous: Vec<HelmholtzProblem>,
    /// Ramp-order viscous problems (first steps), per owned mode.
    ramp: Vec<Vec<HelmholtzProblem>>,
    /// Modal coefficients per mode per component [u, v, w].
    pub fields: Vec<[ModeCoeffs; 3]>,
    /// History of quadrature-space velocity (per mode, per component).
    hist_vel: VecDeque<Vec<[ModePlane; 3]>>,
    /// History of nonlinear terms.
    hist_n: VecDeque<Vec<[ModePlane; 3]>>,
    /// Quadrature points per plane (flattened element-major).
    pub(crate) nq_total: usize,
    /// Per-element (offset, nq) into the flattened quadrature vector.
    pub(crate) elem_off: Vec<(usize, usize)>,
    /// Stage clock (host compute seconds + virtual comm seconds).
    pub clock: StageClock,
    /// Recorder for the model replay.
    pub recorder: Recorder,
    /// Pipeline the transpose exchanges against per-field FFT work
    /// (`NKT_OVERLAP`, default on). Results are bitwise identical either
    /// way; only the virtual wall clock changes.
    pub overlap: bool,
    /// Alltoall algorithm for the blocking transpose path
    /// (`NKT_A2A_ALGO`: pairwise | ring | bruck).
    pub a2a_algo: AlltoallAlgo,
    steps_taken: usize,
}

impl NektarF {
    /// Builds the per-rank solver. Collective over `comm`: modes are
    /// block-distributed over ranks ("a straightforward mapping of
    /// Fourier modes to P processors").
    ///
    /// Panicking wrapper over [`NektarF::try_new`] for callers that
    /// treat a bad grid as a bug.
    pub fn new(comm: &mut Comm, mesh: &Mesh2d, cfg: FourierConfig) -> NektarF {
        NektarF::try_new(comm, mesh, cfg).unwrap_or_else(|e| panic!("NektarF::new: {e}"))
    }

    /// [`NektarF::new`] with a typed error instead of a panic. The
    /// decomposition comes from `NKT_GRID` (`PRxPC`, e.g. `4x2` →
    /// [`Pencil2D`]); unset means the paper's [`Slab`] layout.
    pub fn try_new(
        comm: &mut Comm,
        mesh: &Mesh2d,
        cfg: FourierConfig,
    ) -> Result<NektarF, FourierCfgError> {
        match std::env::var("NKT_GRID") {
            Ok(spec) => {
                let (pr, pc) = parse_grid(&spec)?;
                NektarF::try_new_with_grid(comm, mesh, cfg, pr, pc)
            }
            Err(_) => NektarF::try_new_with_grid(comm, mesh, cfg, comm.size(), 1),
        }
    }

    /// Builds the solver on an explicit `pr × pc` process grid. `pc = 1`
    /// is the slab decomposition (one world alltoall per transpose);
    /// `pc > 1` is the 2-D pencil decomposition (DESIGN.md §13), which
    /// admits `P` up to `pc` times the mode count.
    pub fn try_new_with_grid(
        comm: &mut Comm,
        mesh: &Mesh2d,
        cfg: FourierConfig,
        pr: usize,
        pc: usize,
    ) -> Result<NektarF, FourierCfgError> {
        if cfg.nz < 2 || !cfg.nz.is_multiple_of(2) {
            return Err(FourierCfgError::OddNz { nz: cfg.nz });
        }
        let nmodes = cfg.nz / 2;
        let decomp: Box<dyn Decomposition> = if pc <= 1 {
            if pr != comm.size() {
                return Err(FourierCfgError::GridMismatch { pr, pc, p: comm.size() });
            }
            Box::new(Slab::new(comm, nmodes)?)
        } else {
            Box::new(Pencil2D::new(comm, pr, pc, nmodes)?)
        };
        let my_modes = decomp.my_modes();
        let mpp = my_modes.len();
        let scheme = StifflyStable::new(cfg.scheme_order);
        let vel_tags = [BoundaryTag::Inflow, BoundaryTag::Wall, BoundaryTag::Side];
        let mut pressure = Vec::with_capacity(mpp);
        let mut viscous = Vec::with_capacity(mpp);
        let mut ramp = Vec::with_capacity(mpp);
        for k in my_modes.clone() {
            let beta = 2.0 * std::f64::consts::PI * k as f64 / cfg.lz;
            let mut pp = HelmholtzProblem::new(
                mesh.clone(),
                cfg.order,
                beta * beta,
                &[BoundaryTag::Outflow],
            );
            // The k = 0 pressure problem is pure-Neumann Poisson when the
            // mesh has no outflow: pin its null space.
            if pp.asm.ndirichlet() == 0 && beta == 0.0 {
                pp.pin_dof(0);
            }
            pressure.push(pp);
            let lam_v = beta * beta + scheme.gamma0 / (cfg.nu * cfg.dt);
            viscous.push(HelmholtzProblem::new(mesh.clone(), cfg.order, lam_v, &vel_tags));
            let ramps: Vec<HelmholtzProblem> = (1..cfg.scheme_order)
                .map(|j| {
                    let lam_j =
                        beta * beta + StifflyStable::new(j).gamma0 / (cfg.nu * cfg.dt);
                    HelmholtzProblem::new(mesh.clone(), cfg.order, lam_j, &vel_tags)
                })
                .collect();
            ramp.push(ramps);
        }
        let prob0 = &viscous[0];
        let mut elem_off = Vec::with_capacity(mesh.nelems());
        let mut off = 0usize;
        for ei in 0..mesh.nelems() {
            let nq = prob0.basis(ei).nquad();
            elem_off.push((off, nq));
            off += nq;
        }
        let ndof = prob0.asm.ndof;
        let fields = (0..mpp)
            .map(|_| {
                [
                    ModeCoeffs { a: vec![0.0; ndof], b: vec![0.0; ndof] },
                    ModeCoeffs { a: vec![0.0; ndof], b: vec![0.0; ndof] },
                    ModeCoeffs { a: vec![0.0; ndof], b: vec![0.0; ndof] },
                ]
            })
            .collect();
        Ok(NektarF {
            cfg,
            scheme,
            decomp,
            my_modes,
            pressure,
            viscous,
            ramp,
            fields,
            hist_vel: VecDeque::new(),
            hist_n: VecDeque::new(),
            nq_total: off,
            elem_off,
            clock: StageClock::new(),
            recorder: Recorder::disabled(),
            overlap: std::env::var("NKT_OVERLAP").map_or(true, |v| v != "0"),
            a2a_algo: std::env::var("NKT_A2A_ALGO")
                .ok()
                .and_then(|v| AlltoallAlgo::parse(&v))
                .unwrap_or(AlltoallAlgo::Pairwise),
            steps_taken: 0,
        })
    }

    /// Selects the pipelined (`true`) or blocking (`false`) transpose,
    /// overriding the `NKT_OVERLAP` environment default.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Selects the alltoall algorithm used by the blocking transpose,
    /// overriding the `NKT_A2A_ALGO` environment default.
    pub fn set_alltoall_algo(&mut self, algo: AlltoallAlgo) {
        self.a2a_algo = algo;
    }

    /// Spanwise wavenumber of global mode `k`.
    pub fn beta(&self, k: usize) -> f64 {
        2.0 * std::f64::consts::PI * k as f64 / self.cfg.lz
    }

    /// Degrees of freedom per rank (all owned planes × components).
    pub fn local_dof(&self) -> usize {
        self.my_modes.len() * 2 * 3 * self.viscous[0].asm.ndof
    }

    /// Sets the initial velocity from a physical-space function
    /// `f([x,y,z]) -> [u,v,w]` by z-DFT sampling + per-mode 2-D L2
    /// projection.
    pub fn set_initial(&mut self, f: impl Fn([f64; 3]) -> [f64; 3]) {
        let nz = self.cfg.nz;
        let fft = RealFft::new(nz);
        let lz = self.cfg.lz;
        for (mi, k) in self.my_modes.clone().enumerate() {
            for c in 0..3 {
                let coeff = |x: [f64; 2], want_b: bool| -> f64 {
                    let vals: Vec<f64> = (0..nz)
                        .map(|j| f([x[0], x[1], lz * j as f64 / nz as f64])[c])
                        .collect();
                    let mut sp = vec![Complex64::ZERO; fft.spectrum_len()];
                    fft.forward(&vals, &mut sp);
                    if k == 0 {
                        if want_b {
                            0.0
                        } else {
                            sp[0].re / nz as f64
                        }
                    } else if want_b {
                        -2.0 * sp[k].im / nz as f64
                    } else {
                        2.0 * sp[k].re / nz as f64
                    }
                };
                self.fields[mi][c].a = self.viscous[mi].l2_project(|x| coeff(x, false));
                self.fields[mi][c].b = self.viscous[mi].l2_project(|x| coeff(x, true));
            }
        }
        self.hist_vel.clear();
        self.hist_n.clear();
        self.steps_taken = 0;
    }

    pub(crate) fn to_quad_with(&self, prob: &HelmholtzProblem, coeffs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.nq_total];
        for ei in 0..prob.mesh.nelems() {
            let basis = prob.basis(ei);
            let (off, nq) = self.elem_off[ei];
            let mut local = vec![0.0; basis.nmodes()];
            prob.asm.gather(ei, coeffs, &mut local);
            for (m, &c) in local.iter().enumerate() {
                if c != 0.0 {
                    let vm = &basis.val()[m];
                    for q in 0..nq {
                        out[off + q] += c * vm[q];
                    }
                }
            }
        }
        out
    }

    pub(crate) fn grad_quad_with(
        &self,
        prob: &HelmholtzProblem,
        coeffs: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let mut gx = vec![0.0; self.nq_total];
        let mut gy = vec![0.0; self.nq_total];
        for ei in 0..prob.mesh.nelems() {
            let basis = prob.basis(ei);
            let geom = &prob.ops[ei].geom;
            let (off, nq) = self.elem_off[ei];
            let mut local = vec![0.0; basis.nmodes()];
            prob.asm.gather(ei, coeffs, &mut local);
            for (m, &c) in local.iter().enumerate() {
                if c != 0.0 {
                    let d1 = &basis.dxi1()[m];
                    let d2 = &basis.dxi2()[m];
                    for q in 0..nq {
                        let [ja, jb, jc, jd] = geom.dxi_dx[q];
                        gx[off + q] += c * (d1[q] * ja + d2[q] * jc);
                        gy[off + q] += c * (d1[q] * jb + d2[q] * jd);
                    }
                }
            }
        }
        (gx, gy)
    }

    /// The decomposition's short name ("slab" / "pencil").
    pub fn decomp_name(&self) -> &'static str {
        self.decomp.name()
    }

    /// `(rows, cols)` of the process grid (slab: `(P, 1)`).
    pub fn grid(&self) -> (usize, usize) {
        self.decomp.grid()
    }

    /// True on the one rank per mode block whose diagnostics count
    /// (pencil grids replicate modes across `pc` columns; summing every
    /// rank's contribution would inflate mode sums `pc`-fold).
    pub fn is_primary(&self) -> bool {
        self.decomp.is_primary()
    }

    /// Advances one time step (collective). Returns this step's stage
    /// times (host compute seconds; the NonLinear stage additionally
    /// carries the virtual communication time).
    pub fn step(&mut self, comm: &mut Comm) -> StageClock {
        let step_span = nkt_trace::span_v("step", "step", comm.wtime());
        let mut sc = StageClock::new();
        let dt = self.cfg.dt;
        let nu = self.cfg.nu;
        let mpp = self.my_modes.len();

        // Stage 1: modal -> quadrature for u, v, w (cos & sin planes).
        let t0 = StageTimer::start(Stage::BwdTransform);
        let mut vel: Vec<[ModePlane; 3]> = Vec::with_capacity(mpp);
        for mi in 0..mpp {
            let prob = &self.viscous[mi];
            let mut comps: [ModePlane; 3] = Default::default();
            for (c, comp) in comps.iter_mut().enumerate() {
                comp.a = self.to_quad_with(prob, &self.fields[mi][c].a);
                comp.b = self.to_quad_with(prob, &self.fields[mi][c].b);
                for ei in 0..prob.mesh.nelems() {
                    let basis = prob.basis(ei);
                    self.recorder.work(
                        Stage::BwdTransform,
                        WorkItem::Gemm { m: basis.nquad(), n: 2, k: basis.nmodes() },
                    );
                }
            }
            vel.push(comps);
        }
        sc.add(Stage::BwdTransform, t0.stop());

        // Stage 2: nonlinear terms via the Alltoall/FFT sandwich.
        let wall0 = comm.wtime();
        let t0 = StageTimer::start_v(Stage::NonLinear, wall0);
        let mut mode_fields: Vec<Vec<ModePlane>> = (0..12).map(|_| Vec::with_capacity(mpp)).collect();
        for mi in 0..mpp {
            let k = self.my_modes.start + mi;
            let beta = self.beta(k);
            let prob = &self.viscous[mi];
            for c in 0..3 {
                mode_fields[c].push(vel[mi][c].clone());
                let (gxa, gya) = self.grad_quad_with(prob, &self.fields[mi][c].a);
                let (gxb, gyb) = self.grad_quad_with(prob, &self.fields[mi][c].b);
                for ei in 0..prob.mesh.nelems() {
                    let basis = prob.basis(ei);
                    for _ in 0..2 {
                        self.recorder.work(
                            Stage::NonLinear,
                            WorkItem::Gemm { m: basis.nquad(), n: 2, k: basis.nmodes() },
                        );
                    }
                }
                mode_fields[3 + c].push(ModePlane { a: gxa, b: gxb });
                mode_fields[6 + c].push(ModePlane { a: gya, b: gyb });
                let dza: Vec<f64> = vel[mi][c].b.iter().map(|&v| beta * v).collect();
                let dzb: Vec<f64> = vel[mi][c].a.iter().map(|&v| -beta * v).collect();
                mode_fields[9 + c].push(ModePlane { a: dza, b: dzb });
            }
        }
        let mut ctx = TransposeCtx {
            nz: self.cfg.nz,
            nq_total: self.nq_total,
            overlap: self.overlap,
            algo: self.a2a_algo,
            recorder: &mut self.recorder,
        };
        let phys = self.decomp.to_phys(comm, &mut ctx, &mode_fields);
        let npts = phys[0].len();
        let nz = self.cfg.nz;
        let mut nl = vec![vec![vec![0.0; nz]; npts]; 3];
        for pt in 0..npts {
            for j in 0..nz {
                let u = phys[0][pt][j];
                let v = phys[1][pt][j];
                let w = phys[2][pt][j];
                for c in 0..3 {
                    nl[c][pt][j] = -(u * phys[3 + c][pt][j]
                        + v * phys[6 + c][pt][j]
                        + w * phys[9 + c][pt][j]);
                }
            }
        }
        self.recorder.work(
            Stage::NonLinear,
            WorkItem::Stream {
                flops: 18.0 * (npts * nz) as f64,
                bytes: 8.0 * 15.0 * (npts * nz) as f64,
                ws: 8 * 15 * (npts * nz).max(1),
            },
        );
        let mut ctx = TransposeCtx {
            nz: self.cfg.nz,
            nq_total: self.nq_total,
            overlap: self.overlap,
            algo: self.a2a_algo,
            recorder: &mut self.recorder,
        };
        let nl_modes = self.decomp.to_modes(comm, &mut ctx, &nl);
        let mut nonlin: Vec<[ModePlane; 3]> = Vec::with_capacity(mpp);
        for mi in 0..mpp {
            nonlin.push([
                nl_modes[0][mi].clone(),
                nl_modes[1][mi].clone(),
                nl_modes[2][mi].clone(),
            ]);
        }
        let virt = comm.wtime() - wall0;
        let host = t0.stop_v(comm.wtime());
        sc.add(Stage::NonLinear, host + virt);

        // History push with startup ramp.
        self.hist_vel.push_front(vel);
        self.hist_n.push_front(nonlin);
        let j = self.scheme.order.min(self.hist_vel.len());
        while self.hist_vel.len() > self.scheme.order {
            self.hist_vel.pop_back();
        }
        while self.hist_n.len() > self.scheme.order {
            self.hist_n.pop_back();
        }
        let eff = StifflyStable::new(j);

        // Stage 3: stiffly-stable weighting.
        let t0 = StageTimer::start(Stage::StifflyStable);
        let mut hat: Vec<[ModePlane; 3]> = Vec::with_capacity(mpp);
        for mi in 0..mpp {
            let mut comps: [ModePlane; 3] = Default::default();
            for (c, comp) in comps.iter_mut().enumerate() {
                let mut a = vec![0.0; self.nq_total];
                let mut b = vec![0.0; self.nq_total];
                for lvl in 0..j {
                    let al = eff.alpha[lvl];
                    let be = eff.beta[lvl] * dt;
                    let hv = &self.hist_vel[lvl][mi][c];
                    let hn = &self.hist_n[lvl][mi][c];
                    for q in 0..self.nq_total {
                        a[q] += al * hv.a[q] + be * hn.a[q];
                        b[q] += al * hv.b[q] + be * hn.b[q];
                    }
                }
                *comp = ModePlane { a, b };
            }
            hat.push(comps);
        }
        self.recorder.work(
            Stage::StifflyStable,
            WorkItem::Stream {
                flops: (8 * j * mpp * 6 * self.nq_total) as f64,
                bytes: (32 * j * mpp * 6 * self.nq_total) as f64,
                ws: 32 * self.nq_total,
            },
        );
        sc.add(Stage::StifflyStable, t0.stop());

        // Stages 4-7 per owned mode.
        let mut new_fields: Vec<[ModeCoeffs; 3]> = Vec::with_capacity(mpp);
        for mi in 0..mpp {
            let k = self.my_modes.start + mi;
            let beta = self.beta(k);

            // Stage 4: pressure RHS (cos and sin planes).
            let t0 = StageTimer::start(Stage::PressureRhs);
            let ndofp = self.pressure[mi].asm.ndof;
            let mut rhs_a = vec![0.0; ndofp];
            let mut rhs_b = vec![0.0; ndofp];
            {
                let prob = &self.pressure[mi];
                for ei in 0..prob.mesh.nelems() {
                    let basis = prob.basis(ei);
                    let geom = &prob.ops[ei].geom;
                    let (off, nq) = self.elem_off[ei];
                    let nm = basis.nmodes();
                    let mut la = vec![0.0; nm];
                    let mut lb = vec![0.0; nm];
                    for m in 0..nm {
                        let d1 = &basis.dxi1()[m];
                        let d2 = &basis.dxi2()[m];
                        let vm = &basis.val()[m];
                        let mut sa = 0.0;
                        let mut sb = 0.0;
                        for q in 0..nq {
                            let [ja, jb, jc, jd] = geom.dxi_dx[q];
                            let gpx = d1[q] * ja + d2[q] * jc;
                            let gpy = d1[q] * jb + d2[q] * jd;
                            let dzw_a = beta * hat[mi][2].b[off + q];
                            let dzw_b = -beta * hat[mi][2].a[off + q];
                            sa += geom.jw[q]
                                * (hat[mi][0].a[off + q] * gpx
                                    + hat[mi][1].a[off + q] * gpy
                                    - dzw_a * vm[q]);
                            sb += geom.jw[q]
                                * (hat[mi][0].b[off + q] * gpx
                                    + hat[mi][1].b[off + q] * gpy
                                    - dzw_b * vm[q]);
                        }
                        la[m] = sa / dt;
                        lb[m] = sb / dt;
                    }
                    prob.asm.scatter_add(ei, &la, &mut rhs_a);
                    prob.asm.scatter_add(ei, &lb, &mut rhs_b);
                }
            }
            sc.add(Stage::PressureRhs, t0.stop());

            // Stage 5: two pressure solves (cos/sin share the factor —
            // "the real and imaginary parts of a Fourier mode sharing the
            // same matrices").
            let t0 = StageTimer::start(Stage::PressureSolve);
            let zeros = vec![0.0; ndofp];
            let kdp = self.pressure[mi].matrix.kd();
            let ksp = nkt_trace::span("banded_solve", "kernel");
            let (pa, _) =
                self.pressure[mi].solve_with_rhs(rhs_a, &zeros, SolveMethod::BandedDirect);
            let (pb, _) =
                self.pressure[mi].solve_with_rhs(rhs_b, &zeros, SolveMethod::BandedDirect);
            ksp.end_v_args(
                f64::NAN,
                &[
                    ("n", ndofp as f64),
                    ("kd", kdp as f64),
                    ("solves", 2.0),
                    ("flops", 2.0 * 4.0 * ndofp as f64 * (kdp + 1) as f64),
                ],
            );
            for _ in 0..2 {
                self.recorder
                    .work(Stage::PressureSolve, WorkItem::BandedSolve { n: ndofp, kd: kdp });
            }
            sc.add(Stage::PressureSolve, t0.stop());

            // Stage 6: viscous RHS from u** = uhat − dt ∇p.
            let t0 = StageTimer::start(Stage::ViscousRhs);
            let pprob = &self.pressure[mi];
            let (gpx_a, gpy_a) = self.grad_quad_with(pprob, &pa);
            let (gpx_b, gpy_b) = self.grad_quad_with(pprob, &pb);
            let pq_a = self.to_quad_with(pprob, &pa);
            let pq_b = self.to_quad_with(pprob, &pb);
            let scale = 1.0 / (nu * dt);
            let ndofv = self.viscous[mi].asm.ndof;
            let mut rhs: [(Vec<f64>, Vec<f64>); 3] = [
                (vec![0.0; ndofv], vec![0.0; ndofv]),
                (vec![0.0; ndofv], vec![0.0; ndofv]),
                (vec![0.0; ndofv], vec![0.0; ndofv]),
            ];
            {
                let prob = &self.viscous[mi];
                for ei in 0..prob.mesh.nelems() {
                    let basis = prob.basis(ei);
                    let geom = &prob.ops[ei].geom;
                    let (off, nq) = self.elem_off[ei];
                    let nm = basis.nmodes();
                    let mut locals = vec![vec![0.0; nm]; 6];
                    for m in 0..nm {
                        let vm = &basis.val()[m];
                        let mut acc = [0.0f64; 6];
                        for q in 0..nq {
                            let w = geom.jw[q];
                            let ustar_a = hat[mi][0].a[off + q] - dt * gpx_a[off + q];
                            let ustar_b = hat[mi][0].b[off + q] - dt * gpx_b[off + q];
                            let vstar_a = hat[mi][1].a[off + q] - dt * gpy_a[off + q];
                            let vstar_b = hat[mi][1].b[off + q] - dt * gpy_b[off + q];
                            let wstar_a =
                                hat[mi][2].a[off + q] - dt * (beta * pq_b[off + q]);
                            let wstar_b =
                                hat[mi][2].b[off + q] - dt * (-beta * pq_a[off + q]);
                            acc[0] += w * ustar_a * vm[q];
                            acc[1] += w * ustar_b * vm[q];
                            acc[2] += w * vstar_a * vm[q];
                            acc[3] += w * vstar_b * vm[q];
                            acc[4] += w * wstar_a * vm[q];
                            acc[5] += w * wstar_b * vm[q];
                        }
                        for (s, l) in locals.iter_mut().enumerate() {
                            l[m] = scale * acc[s];
                        }
                    }
                    prob.asm.scatter_add(ei, &locals[0], &mut rhs[0].0);
                    prob.asm.scatter_add(ei, &locals[1], &mut rhs[0].1);
                    prob.asm.scatter_add(ei, &locals[2], &mut rhs[1].0);
                    prob.asm.scatter_add(ei, &locals[3], &mut rhs[1].1);
                    prob.asm.scatter_add(ei, &locals[4], &mut rhs[2].0);
                    prob.asm.scatter_add(ei, &locals[5], &mut rhs[2].1);
                }
            }
            sc.add(Stage::ViscousRhs, t0.stop());

            // Stage 7: six Helmholtz solves (3 components × cos/sin).
            let t0 = StageTimer::start(Stage::ViscousSolve);
            let ud = vec![0.0; ndofv];
            let solver = if j < self.scheme.order {
                &mut self.ramp[mi][j - 1]
            } else {
                &mut self.viscous[mi]
            };
            let mut comps: [ModeCoeffs; 3] = Default::default();
            let rhs_taken = rhs;
            let kdv = solver.matrix.kd();
            let ksp = nkt_trace::span("banded_solve", "kernel");
            for (c, (ra, rb)) in rhs_taken.into_iter().enumerate() {
                let (na, _) = solver.solve_with_rhs(ra, &ud, SolveMethod::BandedDirect);
                let (nb, _) = solver.solve_with_rhs(rb, &ud, SolveMethod::BandedDirect);
                comps[c] = ModeCoeffs { a: na, b: nb };
            }
            ksp.end_v_args(
                f64::NAN,
                &[
                    ("n", ndofv as f64),
                    ("kd", kdv as f64),
                    ("solves", 6.0),
                    ("flops", 6.0 * 4.0 * ndofv as f64 * (kdv + 1) as f64),
                ],
            );
            for _ in 0..6 {
                self.recorder
                    .work(Stage::ViscousSolve, WorkItem::BandedSolve { n: ndofv, kd: kdv });
            }
            sc.add(Stage::ViscousSolve, t0.stop());
            new_fields.push(comps);
        }
        self.fields = new_fields;
        step_span.end_v(comm.wtime());
        self.clock.merge(&sc);
        self.steps_taken += 1;
        sc
    }

    /// Kinetic energy carried by one *owned* mode (local index `mi`):
    /// ½ Σ_c ∫ plane energies with the spanwise measure.
    pub fn mode_energy(&self, mi: usize) -> f64 {
        let k = self.my_modes.start + mi;
        let prob = &self.viscous[mi];
        let mut e = 0.0;
        for c in 0..3 {
            let qa = self.to_quad_with(prob, &self.fields[mi][c].a);
            let qb = self.to_quad_with(prob, &self.fields[mi][c].b);
            for ei in 0..prob.mesh.nelems() {
                let geom = &prob.ops[ei].geom;
                let (off, nq) = self.elem_off[ei];
                for q in 0..nq {
                    e += 0.5
                        * geom.jw[q]
                        * if k == 0 {
                            self.cfg.lz * qa[off + q] * qa[off + q]
                        } else {
                            0.5 * self.cfg.lz
                                * (qa[off + q] * qa[off + q] + qb[off + q] * qb[off + q])
                        };
                }
            }
        }
        e
    }

    /// Total kinetic energy ½∫|u|² over the 3-D domain (collective).
    /// Only primary ranks contribute — pencil grids replicate each mode
    /// block across `pc` columns (see [`NektarF::is_primary`]).
    pub fn kinetic_energy(&mut self, comm: &mut Comm) -> f64 {
        let mut local = 0.0;
        let owned = if self.is_primary() { self.my_modes.len() } else { 0 };
        for mi in 0..owned {
            let k = self.my_modes.start + mi;
            let prob = &self.viscous[mi];
            for c in 0..3 {
                let qa = self.to_quad_with(prob, &self.fields[mi][c].a);
                let qb = self.to_quad_with(prob, &self.fields[mi][c].b);
                for ei in 0..prob.mesh.nelems() {
                    let geom = &prob.ops[ei].geom;
                    let (off, nq) = self.elem_off[ei];
                    for q in 0..nq {
                        // ∫ cos² = ∫ sin² = Lz/2 for k>0; ∫ 1 = Lz for k=0.
                        local += 0.5
                            * geom.jw[q]
                            * if k == 0 {
                                self.cfg.lz * qa[off + q] * qa[off + q]
                            } else {
                                0.5 * self.cfg.lz
                                    * (qa[off + q] * qa[off + q] + qb[off + q] * qb[off + q])
                            };
                    }
                }
            }
        }
        let mut buf = [local];
        comm.allreduce(&mut buf, nkt_mpi::ReduceOp::Sum);
        buf[0]
    }

    /// Steps taken.
    pub fn steps(&self) -> usize {
        self.steps_taken
    }
}

fn write_planes(e: &mut nkt_ckpt::Enc, levels: &VecDeque<Vec<[ModePlane; 3]>>) {
    e.usize(levels.len());
    for level in levels {
        e.usize(level.len());
        for comps in level {
            for mp in comps {
                e.f64s(&mp.a);
                e.f64s(&mp.b);
            }
        }
    }
}

fn read_planes(
    d: &mut nkt_ckpt::Dec<'_>,
    nmodes: usize,
) -> Result<VecDeque<Vec<[ModePlane; 3]>>, nkt_ckpt::CkptError> {
    let nlevels = d.len_prefix(64)?;
    let mut out = VecDeque::with_capacity(nlevels);
    for _ in 0..nlevels {
        d.expect_u64(nmodes as u64, "fourier history mode count")?;
        let mut level = Vec::with_capacity(nmodes);
        for _ in 0..nmodes {
            let mut comps: [ModePlane; 3] = Default::default();
            for mp in comps.iter_mut() {
                mp.a = d.f64s()?;
                mp.b = d.f64s()?;
            }
            level.push(comps);
        }
        out.push_back(level);
    }
    Ok(out)
}

impl nkt_ckpt::Checkpointable for NektarF {
    fn kind(&self) -> &'static str {
        "fourier"
    }

    fn write_sections(&self, w: &mut nkt_ckpt::CkptWriter) {
        // "fields": rank-layout guards (mode block, dof count, plane
        // size), then per-mode cos/sin modal coefficients for u, v, w.
        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.my_modes.start);
        e.usize(self.my_modes.len());
        e.usize(self.viscous[0].asm.ndof);
        e.usize(self.nq_total);
        for comps in &self.fields {
            for mc in comps {
                e.f64s(&mc.a);
                e.f64s(&mc.b);
            }
        }
        w.section("fields", e.into_bytes());

        let mut e = nkt_ckpt::Enc::new();
        write_planes(&mut e, &self.hist_vel);
        write_planes(&mut e, &self.hist_n);
        w.section("hist", e.into_bytes());

        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.steps_taken);
        w.section("steps", e.into_bytes());

        let mut e = nkt_ckpt::Enc::new();
        for t in self.clock.totals {
            e.f64(t);
        }
        w.section(nkt_ckpt::CLOCK_SECTION, e.into_bytes());
    }

    fn read_sections(&mut self, f: &nkt_ckpt::CkptFile) -> Result<(), nkt_ckpt::CkptError> {
        let mut d = f.dec("fields")?;
        d.expect_u64(self.my_modes.start as u64, "fourier mode-block start")?;
        d.expect_u64(self.my_modes.len() as u64, "fourier mode-block length")?;
        d.expect_u64(self.viscous[0].asm.ndof as u64, "fourier dof count")?;
        d.expect_u64(self.nq_total as u64, "fourier plane quadrature size")?;
        for comps in self.fields.iter_mut() {
            for mc in comps.iter_mut() {
                mc.a = d.f64s()?;
                mc.b = d.f64s()?;
            }
        }
        d.finish()?;

        let mut d = f.dec("hist")?;
        self.hist_vel = read_planes(&mut d, self.my_modes.len())?;
        self.hist_n = read_planes(&mut d, self.my_modes.len())?;
        d.finish()?;

        let mut d = f.dec("steps")?;
        self.steps_taken = d.u64()? as usize;
        d.finish()?;

        let mut d = f.dec(nkt_ckpt::CLOCK_SECTION)?;
        for t in self.clock.totals.iter_mut() {
            *t = d.f64()?;
        }
        d.finish()?;
        Ok(())
    }

    fn ckpt_step(&self) -> u64 {
        self.steps_taken as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_mesh::rect_quads;
    use nkt_net::{cluster, ClusterNetwork, NetId};

    fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(p: usize, net: ClusterNetwork, f: F) -> Vec<R> {
        World::builder().ranks(p).net(net).run(f)
    }

    fn mesh() -> Mesh2d {
        rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2)
    }

    fn cfg() -> FourierConfig {
        FourierConfig {
            order: 4,
            dt: 1e-3,
            nu: 0.05,
            nz: 8,
            lz: 2.0 * std::f64::consts::PI,
            scheme_order: 2,
        }
    }

    /// Divergence-free initial field: 2-D Taylor-Green modulated by
    /// cos(z) with w = 0.
    fn init_field(x: [f64; 3]) -> [f64; 3] {
        let pi = std::f64::consts::PI;
        [
            (pi * x[0]).sin() * (pi * x[1]).cos() * x[2].cos(),
            -(pi * x[0]).cos() * (pi * x[1]).sin() * x[2].cos(),
            0.0,
        ]
    }

    #[test]
    fn initial_projection_energy() {
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarF::new(c, &mesh(), cfg());
            s.set_initial(init_field);
            s.kinetic_energy(c)
        });
        // Each 2-D component integrates to 1/4 over the unit square; the
        // z factor ∫cos² over [0, 2π) = π. E = 0.5 (1/4 + 1/4) π.
        let expect = 0.25 * std::f64::consts::PI;
        for &e in &out {
            assert!((e - expect).abs() / expect < 1e-6, "E={e} vs {expect}");
        }
    }

    #[test]
    fn parallel_invariance_p1_p2_p4() {
        let energies: Vec<Vec<f64>> = [1usize, 2, 4]
            .iter()
            .map(|&p| {
                run(p, cluster(NetId::T3e), |c| {
                    let mut s = NektarF::new(c, &mesh(), cfg());
                    s.set_initial(init_field);
                    let mut es = Vec::new();
                    for _ in 0..3 {
                        s.step(c);
                        es.push(s.kinetic_energy(c));
                    }
                    es
                })[0]
                    .clone()
            })
            .collect();
        for step in 0..3 {
            let e1 = energies[0][step];
            for pe in &energies[1..] {
                assert!(
                    (pe[step] - e1).abs() < 1e-9 * (1.0 + e1),
                    "step {step}: P=1 {e1} vs {}",
                    pe[step]
                );
            }
        }
    }

    /// Stream-function field vanishing on the whole boundary (valid for
    /// the solver's homogeneous Dirichlet walls), divergence-free.
    fn psi_field(x: [f64; 3]) -> [f64; 3] {
        let pi = std::f64::consts::PI;
        let (sx, cx) = (pi * x[0]).sin_cos();
        let (sy, cy) = (pi * x[1]).sin_cos();
        [
            2.0 * pi * sx * sx * sy * cy * x[2].cos(),
            -2.0 * pi * sx * cx * sy * sy * x[2].cos(),
            0.0,
        ]
    }

    #[test]
    fn k0_mode_matches_serial_2d_solver() {
        // With all energy in the k = 0 Fourier mode and w = 0, NekTar-F
        // integrates exactly the 2-D equations: its energy history must
        // match the serial solver's (scaled by the spanwise length).
        use crate::serial2d::{Serial2dSolver, SolverConfig};
        let c2 = cfg();
        let lz = c2.lz;
        let f2d = |x: [f64; 2]| psi_field([x[0], x[1], 0.0]);
        let serial_hist: Vec<f64> = {
            let scfg = SolverConfig {
                order: c2.order,
                dt: c2.dt,
                nu: c2.nu,
                scheme_order: c2.scheme_order,
                advect: true,
            };
            let mut s = Serial2dSolver::new(mesh(), scfg, |_| 0.0, |_| 0.0);
            s.set_initial(|x| f2d(x)[0], |x| f2d(x)[1]);
            (0..4)
                .map(|_| {
                    s.step();
                    s.kinetic_energy()
                })
                .collect()
        };
        let fourier_hist = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarF::new(c, &mesh(), cfg());
            s.set_initial(|x| psi_field([x[0], x[1], 0.0]));
            (0..4)
                .map(|_| {
                    s.step(c);
                    s.kinetic_energy(c)
                })
                .collect::<Vec<f64>>()
        })[0]
            .clone();
        for step in 0..4 {
            let e3 = fourier_hist[step];
            let e2 = serial_hist[step] * lz;
            assert!(
                (e3 - e2).abs() < 1e-8 * (1.0 + e2),
                "step {step}: 3-D {e3} vs serial x Lz {e2}"
            );
        }
    }

    #[test]
    fn three_d_field_energy_decays_monotonically() {
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarF::new(c, &mesh(), cfg());
            s.set_initial(psi_field);
            let mut es = vec![s.kinetic_energy(c)];
            for _ in 0..5 {
                s.step(c);
                es.push(s.kinetic_energy(c));
            }
            es
        });
        for es in &out {
            for w in es.windows(2) {
                assert!(w[1] < w[0] && w[1] > 0.0, "energy not decaying: {es:?}");
            }
        }
    }

    #[test]
    fn two_alltoalls_per_step_recorded() {
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarF::new(c, &mesh(), cfg());
            s.set_initial(psi_field);
            s.recorder = Recorder::enabled();
            s.step(c);
            let rec = s.recorder.take().unwrap();
            (rec.alltoall_count(), rec.total_flops())
        });
        for &(a2a, flops) in &out {
            assert_eq!(a2a, 2, "forward + backward global exchange");
            assert!(flops > 0.0);
        }
    }

    #[test]
    fn nonlinear_time_higher_on_ethernet() {
        // Figure 14's finding: on the ethernet cluster step 2 balloons
        // ("step 2 takes as much as 60% of the time"). Compare the
        // absolute stage-2 time (host compute is identical; the virtual
        // Alltoall time differs).
        // Virtual network time only (comm.wtime advances solely through
        // message charging) — host compute noise excluded.
        let stage2_secs = |net| {
            let out = run(4, net, |c| {
                let mut s = NektarF::new(c, &mesh(), cfg());
                s.set_initial(init_field);
                s.step(c);
                c.wtime()
            });
            out.into_iter().fold(0.0f64, f64::max)
        };
        let eth = stage2_secs(cluster(NetId::RoadRunnerEth));
        let myr = stage2_secs(cluster(NetId::RoadRunnerMyr));
        assert!(
            eth > 1.5 * myr,
            "ethernet nonlinear stage {eth}s !>> myrinet {myr}s"
        );
    }

    #[test]
    fn pipelined_transpose_is_bitwise_identical_to_blocking() {
        // The overlap path is pure scheduling: at every rank count and
        // under every blocking alltoall algorithm, two steps must leave
        // byte-identical state (FNV digest over all numerical sections).
        use nkt_ckpt::Checkpointable;
        let hashes = |p: usize, overlap: bool, algo: AlltoallAlgo| -> Vec<u64> {
            run(p, cluster(NetId::RoadRunnerEth), move |c| {
                let mut s = NektarF::new(c, &mesh(), FourierConfig { nz: 16, ..cfg() });
                s.set_overlap(overlap);
                s.set_alltoall_algo(algo);
                s.set_initial(init_field);
                s.step(c);
                s.step(c);
                s.state_hash()
            })
        };
        for p in [1usize, 2, 4, 8] {
            let reference = hashes(p, false, AlltoallAlgo::Pairwise);
            for algo in [AlltoallAlgo::Pairwise, AlltoallAlgo::Ring, AlltoallAlgo::Bruck] {
                assert_eq!(
                    hashes(p, false, algo),
                    reference,
                    "blocking algo {algo:?} diverged at p={p}"
                );
                assert_eq!(
                    hashes(p, true, algo),
                    reference,
                    "pipelined path diverged at p={p} (algo {algo:?})"
                );
            }
        }
    }

    #[test]
    fn overlap_hides_transpose_wire_time_at_np8() {
        // The acceptance ablation: on the RoadRunner ethernet model at
        // np = 8, the pipelined transpose must shave modeled wall-clock
        // off the step while charging the exact same CPU (busy) time and
        // producing the exact same state.
        use nkt_ckpt::Checkpointable;
        let measure = |overlap: bool| {
            run(8, cluster(NetId::RoadRunnerEth), move |c| {
                let mut s = NektarF::new(c, &mesh(), FourierConfig { nz: 16, ..cfg() });
                s.set_overlap(overlap);
                s.set_initial(init_field);
                s.step(c);
                (c.wtime(), c.busy(), s.state_hash())
            })
        };
        let blocking = measure(false);
        let pipelined = measure(true);
        for (b, o) in blocking.iter().zip(&pipelined) {
            assert_eq!(b.1, o.1, "busy must be identical charge for charge");
            assert_eq!(b.2, o.2, "state must be bitwise identical");
        }
        let wall = |v: &[(f64, f64, u64)]| v.iter().fold(0.0f64, |m, t| m.max(t.0));
        assert!(
            wall(&pipelined) < wall(&blocking),
            "overlap should reduce modeled wall: {} vs {}",
            wall(&pipelined),
            wall(&blocking)
        );
    }

    #[test]
    fn weak_scaling_setup_matches_paper_layout() {
        // Two planes (one mode) per processor, as in Table 2.
        let out = run(4, cluster(NetId::T3e), |c| {
            let cfg = FourierConfig { nz: 8, ..cfg() };
            let s = NektarF::new(c, &mesh(), cfg);
            (s.my_modes.clone(), s.local_dof())
        });
        for (r, (modes, _)) in out.iter().enumerate() {
            assert_eq!(modes.clone().count(), 1, "one mode per rank");
            assert_eq!(modes.start, r);
        }
    }
}
