//! Stiffly-stable high-order splitting scheme coefficients
//! (Karniadakis, Israeli & Orszag 1991 — paper §4: "The Navier-Stokes
//! equations are integrated in time using a high-order splitting scheme
//! ... For the purposes of this paper, a second order time-integration is
//! used").
//!
//! The scheme advances u_t = N(u) + L(u) as
//!
//! ```text
//! (γ₀ u^{n+1} − Σ_q α_q u^{n−q}) / Δt = Σ_q β_q N(u^{n−q}) + L(u^{n+1})
//! ```
//!
//! with backward-differentiation weights γ₀, α_q and explicit
//! extrapolation weights β_q.

/// Coefficients of the order-J stiffly-stable scheme (J = 1, 2, 3).
#[derive(Debug, Clone, PartialEq)]
pub struct StifflyStable {
    /// Scheme order.
    pub order: usize,
    /// γ₀.
    pub gamma0: f64,
    /// α_q, q = 0..order−1 (weights of u^{n−q}).
    pub alpha: Vec<f64>,
    /// β_q, q = 0..order−1 (weights of N(u^{n−q})).
    pub beta: Vec<f64>,
}

impl StifflyStable {
    /// Returns the coefficients for `order` ∈ {1, 2, 3}.
    ///
    /// # Panics
    /// Panics for unsupported orders.
    pub fn new(order: usize) -> StifflyStable {
        match order {
            1 => StifflyStable { order, gamma0: 1.0, alpha: vec![1.0], beta: vec![1.0] },
            2 => StifflyStable {
                order,
                gamma0: 1.5,
                alpha: vec![2.0, -0.5],
                beta: vec![2.0, -1.0],
            },
            3 => StifflyStable {
                order,
                gamma0: 11.0 / 6.0,
                alpha: vec![3.0, -1.5, 1.0 / 3.0],
                beta: vec![3.0, -3.0, 1.0],
            },
            _ => panic!("stiffly-stable scheme implemented for orders 1-3"),
        }
    }

    /// Consistency: Σα_q = γ₀ and Σβ_q = 1 (so constants are preserved
    /// and the explicit extrapolation is first-order consistent).
    pub fn is_consistent(&self) -> bool {
        let sa: f64 = self.alpha.iter().sum();
        let sb: f64 = self.beta.iter().sum();
        (sa - self.gamma0).abs() < 1e-12 && (sb - 1.0).abs() < 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_consistent() {
        for j in 1..=3 {
            let s = StifflyStable::new(j);
            assert!(s.is_consistent(), "order {j}");
            assert_eq!(s.alpha.len(), j);
            assert_eq!(s.beta.len(), j);
        }
    }

    #[test]
    #[should_panic]
    fn order_four_unsupported() {
        StifflyStable::new(4);
    }

    /// Integrate u' = -u exactly representable by the BDF part: the
    /// order-2 scheme should show 2nd-order convergence.
    #[test]
    fn bdf2_order_of_accuracy() {
        let solve = |dt: f64| {
            let s = StifflyStable::new(2);
            // u' = f(u) = -u treated fully explicitly through beta terms;
            // implicit part zero. gamma0 u^{n+1} = sum alpha u + dt sum
            // beta f(u).
            let mut hist = vec![(-dt).exp(), 1.0]; // u^1 (exact), u^0
            let mut t = dt;
            while t < 1.0 - 1e-12 {
                let expl: f64 = s.beta[0] * -hist[0] + s.beta[1] * -hist[1];
                let bdf: f64 = s.alpha[0] * hist[0] + s.alpha[1] * hist[1];
                let next = (bdf + dt * expl) / s.gamma0;
                hist = vec![next, hist[0]];
                t += dt;
            }
            (hist[0] - (-1.0f64).exp()).abs()
        };
        let e1 = solve(0.01);
        let e2 = solve(0.005);
        let rate = (e1 / e2).log2();
        assert!(rate > 1.7 && rate < 2.4, "observed rate {rate}");
    }
}
