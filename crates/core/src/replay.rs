//! Model replay: charges an operation stream against the 1999 machine and
//! network models to produce per-stage CPU and wall-clock times — the
//! mechanism behind the regenerated Tables 1–3 and Figures 12–16
//! (DESIGN.md §2 substitution).

use crate::opstream::{CommItem, OpRecording, WorkItem};
use crate::timers::{Stage, StageClock};
use nkt_machine::Machine;
use nkt_net::ClusterNetwork;

/// CPU + wall clocks of a replayed step ("The difference between the two
/// types of timings indicates idle CPU time, which is associated with
/// network inefficiency", paper §4.2).
#[derive(Debug, Clone, Default)]
pub struct ReplayTimes {
    /// CPU ledger per stage (compute + protocol overhead).
    pub cpu: StageClock,
    /// Wall-clock ledger per stage (CPU + network transfer/latency).
    pub wall: StageClock,
}

impl ReplayTimes {
    /// Total CPU seconds.
    pub fn cpu_total(&self) -> f64 {
        self.cpu.total()
    }

    /// Total wall seconds.
    pub fn wall_total(&self) -> f64 {
        self.wall.total()
    }

    /// Records one virtual-time trace span per nonzero stage, laid out
    /// back-to-back from `vt0` (virtual seconds); returns the end time.
    /// Paper-scale replayed steps thereby render on the same Perfetto
    /// timeline as natively traced runs (no-op below `NKT_TRACE=spans`).
    /// Each span carries the stage's CPU seconds as a `cpu` argument so
    /// `nkt-prof` can split wall time into work vs network idle.
    pub fn record_trace_spans(&self, vt0: f64) -> f64 {
        let mut t = vt0;
        for s in Stage::ALL {
            let wall = self.wall.totals[s.index()];
            if wall > 0.0 {
                let cpu = self.cpu.totals[s.index()];
                nkt_trace::record_vspan_args(s.name(), "replay", t, t + wall, &[("cpu", cpu)]);
                t += wall;
            }
        }
        t
    }
}

/// Charges one work item on a machine model (seconds).
pub fn work_time(item: &WorkItem, m: &Machine) -> f64 {
    match *item {
        WorkItem::Stream { flops, bytes, ws } => m.time_stream_op(flops, bytes, ws),
        WorkItem::BandedSolve { n, kd } => m.time_banded_solve(n, kd),
        WorkItem::FftBatch { len, batch } => m.time_fft_batch(len, batch),
        WorkItem::Gemm { m: mm, n, k } => m.time_gemm(mm, n, k),
    }
}

/// Charges one communication item: returns (cpu seconds, wall seconds).
pub fn comm_time(item: &CommItem, net: &ClusterNetwork, p: usize) -> (f64, f64) {
    match *item {
        CommItem::Alltoall { block_bytes } => {
            // Pairwise exchange: P-1 rounds; round r pairs i <-> i ^ r
            // (power of two) or a ring permutation otherwise.
            if p <= 1 {
                return (0.0, 0.0);
            }
            let mut wall = 0.0;
            let mut cpu = 0.0;
            for step in 1..p {
                let pairs: Vec<(usize, usize)> = if p.is_power_of_two() {
                    (0..p).filter(|&i| i < i ^ step).map(|i| (i, i ^ step)).collect()
                } else {
                    (0..p).map(|i| (i, (i + step) % p)).collect()
                };
                wall += net.round_time(&pairs, block_bytes);
                // CPU: one send + one recv overhead per rank per round.
                cpu += 2.0 * net.inter.overhead_us * 1e-6;
            }
            (cpu, wall)
        }
        CommItem::AlltoallPipelined { block_bytes, fields } => {
            // `fields` back-to-back exchanges of block_bytes/fields each:
            // same bandwidth volume as the aggregate exchange, one extra
            // set of per-round latencies per extra field. The overlap
            // credit against same-stage FFT work is applied by `replay`,
            // which sees the whole stream; here we charge the full
            // (unhidden) cost.
            let nf = fields.max(1);
            let (c, w) = comm_time(
                &CommItem::Alltoall { block_bytes: block_bytes.div_ceil(nf) },
                net,
                p,
            );
            (c * nf as f64, w * nf as f64)
        }
        CommItem::AlltoallPencil { col_block_bytes, row_block_bytes, pr, pc, fields, pipelined } => {
            // Two-stage pencil transpose on a pr × pc process grid with
            // world rank = row * pc + col. The column stage runs one
            // alltoall per grid column (groups of pr) — all pc columns
            // concurrently on the fabric, so each round's pair list spans
            // every column and `net.round_time` sees the full contention.
            // The row stage is symmetric (groups of pc, pr rows
            // concurrent). When pipelined, both stages split per field
            // like `AlltoallPipelined`; the overlap credit is applied by
            // `replay`.
            let nf = if pipelined { fields.max(1) } else { 1 };
            let stage = |grp: usize, nsib: usize, block: usize, col_stage: bool| -> (f64, f64) {
                if grp <= 1 || block == 0 {
                    return (0.0, 0.0);
                }
                let mut wall = 0.0;
                let mut cpu = 0.0;
                for step in 1..grp {
                    let mut pairs = Vec::new();
                    for sib in 0..nsib {
                        for i in 0..grp {
                            let j =
                                if grp.is_power_of_two() { i ^ step } else { (i + step) % grp };
                            if grp.is_power_of_two() && i >= j {
                                continue;
                            }
                            // col stage: i, j index rows within column
                            // `sib`; row stage: within row `sib`.
                            let pair = if col_stage {
                                (i * nsib + sib, j * nsib + sib)
                            } else {
                                (sib * grp + i, sib * grp + j)
                            };
                            pairs.push(pair);
                        }
                    }
                    wall += net.round_time(&pairs, block);
                    cpu += 2.0 * net.inter.overhead_us * 1e-6;
                }
                (cpu, wall)
            };
            let (cc, cw) = stage(pr, pc, col_block_bytes.div_ceil(nf), true);
            let (rc, rw) = stage(pc, pr, row_block_bytes.div_ceil(nf), false);
            ((cc + rc) * nf as f64, (cw + rw) * nf as f64)
        }
        CommItem::Allreduce { bytes } => {
            if p <= 1 {
                return (0.0, 0.0);
            }
            let rounds = (p as f64).log2().ceil() as usize;
            // Reduce + broadcast trees.
            let per_msg = net.inter.time(bytes);
            let wall = 2.0 * rounds as f64 * per_msg;
            let cpu = 2.0 * rounds as f64 * 2.0 * net.inter.overhead_us * 1e-6;
            (cpu, wall)
        }
        CommItem::GsExchange { neighbors, bytes, .. } => {
            if p <= 1 || neighbors == 0 {
                return (0.0, 0.0);
            }
            // Pairwise halo exchanges proceed concurrently; wall time is
            // one round of the slowest link, serialized by neighbor count
            // on the sending side.
            let per_msg = net.inter.time(bytes);
            let wall = per_msg + (neighbors.saturating_sub(1)) as f64 * net.inter.overhead_us * 1e-6;
            let cpu = neighbors as f64 * 2.0 * net.inter.overhead_us * 1e-6;
            (cpu, wall)
        }
    }
}

/// Replays a per-rank recording: compute on `machine`, communication on
/// `net` with `p` ranks. Returns per-stage CPU and wall clocks.
pub fn replay(rec: &OpRecording, machine: &Machine, net: &ClusterNetwork, p: usize) -> ReplayTimes {
    let mut out = ReplayTimes::default();
    let mut fft_work = [0.0; Stage::ALL.len()];
    let mut gemm_work = [0.0; Stage::ALL.len()];
    for (stage, item) in &rec.work {
        let t = work_time(item, machine);
        out.cpu.add(*stage, t);
        out.wall.add(*stage, t);
        if matches!(item, WorkItem::FftBatch { .. }) {
            fft_work[stage.index()] += t;
        }
        if matches!(item, WorkItem::Gemm { .. }) {
            gemm_work[stage.index()] += t;
        }
    }
    // Pipelined transposes can hide all but one field's wire time behind
    // the FFT work recorded in the same stage (DESIGN.md §11); split-phase
    // gather-scatter exchanges can hide their wall time behind the
    // stage's elemental (Gemm) work, capped by the measured interior
    // fraction of the element schedule (DESIGN.md §16).
    let mut hideable = [0.0; Stage::ALL.len()];
    let mut gs_hideable = [0.0; Stage::ALL.len()];
    let mut gs_frac = [0.0f64; Stage::ALL.len()];
    for (stage, item) in &rec.comm {
        let (c, w) = comm_time(item, net, p);
        out.cpu.add(*stage, c);
        out.wall.add(*stage, w);
        match item {
            CommItem::AlltoallPipelined { fields, .. }
            | CommItem::AlltoallPencil { fields, pipelined: true, .. } => {
                let nf = (*fields).max(1) as f64;
                hideable[stage.index()] += w * (nf - 1.0) / nf;
            }
            CommItem::GsExchange { overlap, .. } if *overlap > 0.0 => {
                gs_hideable[stage.index()] += w;
                gs_frac[stage.index()] = gs_frac[stage.index()].max(overlap.min(1.0));
            }
            _ => {}
        }
    }
    for (i, _) in Stage::ALL.iter().enumerate() {
        let credit = hideable[i].min(fft_work[i])
            + gs_hideable[i].min(gs_frac[i] * gemm_work[i]);
        if credit > 0.0 {
            out.wall.totals[i] = (out.wall.totals[i] - credit).max(out.cpu.totals[i]);
        }
    }
    out
}

/// Serial replay (no network).
pub fn replay_serial(rec: &OpRecording, machine: &Machine) -> StageClock {
    let mut clock = StageClock::new();
    for (stage, item) in &rec.work {
        clock.add(*stage, work_time(item, machine));
    }
    clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opstream::OpRecording;
    use crate::timers::Stage;
    use nkt_machine::{machine, MachineId};
    use nkt_net::{cluster, NetId};

    fn sample_rec() -> OpRecording {
        let mut r = OpRecording::new();
        r.work(Stage::BwdTransform, WorkItem::Gemm { m: 100, n: 2, k: 50 });
        r.work(Stage::PressureSolve, WorkItem::BandedSolve { n: 10_000, kd: 300 });
        r.work(Stage::NonLinear, WorkItem::FftBatch { len: 64, batch: 500 });
        r.work(
            Stage::StifflyStable,
            WorkItem::Stream { flops: 1e6, bytes: 4e6, ws: 4_000_000 },
        );
        r.comm(Stage::NonLinear, CommItem::Alltoall { block_bytes: 65536 });
        r.comm(Stage::PressureSolve, CommItem::Allreduce { bytes: 8 });
        r
    }

    #[test]
    fn faster_machine_replays_faster() {
        let rec = sample_rec();
        let net = cluster(NetId::T3e);
        let slow = replay(&rec, &machine(MachineId::Sp2Thin2), &net, 4);
        let fast = replay(&rec, &machine(MachineId::T3e), &net, 4);
        assert!(fast.cpu_total() < slow.cpu_total());
    }

    #[test]
    fn slower_network_inflates_wall_not_cpu_compute() {
        let rec = sample_rec();
        let m = machine(MachineId::Muses);
        let eth = replay(&rec, &m, &cluster(NetId::RoadRunnerEth), 8);
        let myr = replay(&rec, &m, &cluster(NetId::RoadRunnerMyr), 8);
        assert!(eth.wall_total() > myr.wall_total());
        // Pure-compute part identical: compare work-only replays.
        let w_eth: f64 = rec.work.iter().map(|(_, i)| work_time(i, &m)).sum();
        let w_myr = w_eth;
        assert_eq!(w_eth, w_myr);
    }

    #[test]
    fn wall_never_less_than_cpu_on_comm_stages() {
        let rec = sample_rec();
        let t = replay(&rec, &machine(MachineId::Muses), &cluster(NetId::MusesLam), 4);
        for i in 0..7 {
            assert!(
                t.wall.totals[i] >= t.cpu.totals[i] - 1e-15,
                "stage {i}: wall {} < cpu {}",
                t.wall.totals[i],
                t.cpu.totals[i]
            );
        }
    }

    #[test]
    fn single_rank_comm_is_free() {
        let (c, w) = comm_time(&CommItem::Alltoall { block_bytes: 1 << 20 }, &cluster(NetId::T3e), 1);
        assert_eq!((c, w), (0.0, 0.0));
    }

    #[test]
    fn replay_trace_spans_tile_the_wall_total() {
        nkt_trace::set_mode(nkt_trace::TraceMode::Spans);
        let rec = sample_rec();
        let t = replay(&rec, &machine(MachineId::Muses), &cluster(NetId::T3e), 4);
        let end = t.record_trace_spans(1.5);
        assert!((end - 1.5 - t.wall_total()).abs() < 1e-12);
        let tid = nkt_trace::current_tid();
        let mine: Vec<_> =
            nkt_trace::take_collected().into_iter().filter(|d| d.tid == tid).collect();
        let spans: Vec<_> =
            mine.iter().flat_map(|d| &d.events).filter(|e| e.cat == "replay").collect();
        assert!(spans.len() >= 4, "one span per nonzero stage");
        let vsum: f64 = spans.iter().map(|e| e.vdur().unwrap()).sum();
        assert!((vsum - t.wall_total()).abs() < 1e-12);
        nkt_trace::set_mode(nkt_trace::TraceMode::Off);
    }

    #[test]
    fn pipelined_alltoall_hides_wire_behind_fft_work() {
        let mk = |overlap: bool| {
            let mut r = OpRecording::new();
            r.work(Stage::NonLinear, WorkItem::FftBatch { len: 64, batch: 20_000 });
            r.comm(
                Stage::NonLinear,
                if overlap {
                    CommItem::AlltoallPipelined { block_bytes: 12 * 65536, fields: 12 }
                } else {
                    CommItem::Alltoall { block_bytes: 12 * 65536 }
                },
            );
            r
        };
        let m = machine(MachineId::Muses);
        let net = cluster(NetId::RoadRunnerEth);
        let blocking = replay(&mk(false), &m, &net, 8);
        let pipelined = replay(&mk(true), &m, &net, 8);
        assert!(
            pipelined.wall_total() < blocking.wall_total(),
            "overlap credit should shrink wall: {} vs {}",
            pipelined.wall_total(),
            blocking.wall_total()
        );
        assert!(pipelined.wall_total() >= pipelined.cpu_total() - 1e-15);
        // CPU is honest: the pipelined split pays *more* protocol
        // overhead (one per-round charge per field), never less.
        assert!(pipelined.cpu_total() >= blocking.cpu_total());
    }

    #[test]
    fn overlapped_gs_hides_halo_behind_gemm_work() {
        // Many CG iterations of elemental work + halo exchange: with a
        // measured overlap fraction the exchange wall time is credited
        // against the stage's Gemm work, but never below the CPU floor.
        let mk = |overlap: f64| {
            let mut r = OpRecording::new();
            for _ in 0..50 {
                for _ in 0..64 {
                    r.work(Stage::PressureSolve, WorkItem::Gemm { m: 16, n: 4, k: 4 });
                }
                r.comm(
                    Stage::PressureSolve,
                    CommItem::GsExchange { neighbors: 6, bytes: 8 * 4096, overlap },
                );
            }
            r
        };
        let m = machine(MachineId::Muses);
        let net = cluster(NetId::RoadRunnerEth);
        let blocking = replay(&mk(0.0), &m, &net, 16);
        let overlapped = replay(&mk(0.8), &m, &net, 16);
        assert!(
            overlapped.wall_total() < blocking.wall_total(),
            "gs overlap credit should shrink wall: {} vs {}",
            overlapped.wall_total(),
            blocking.wall_total()
        );
        assert!(overlapped.wall_total() >= overlapped.cpu_total() - 1e-15);
        // CPU (protocol overhead) is identical: the same messages move.
        assert!((overlapped.cpu_total() - blocking.cpu_total()).abs() < 1e-15);
        // The credit is capped by overlap × gemm work: a tiny window
        // hides less than a wide one.
        let narrow = replay(&mk(1e-4), &m, &net, 16);
        assert!(narrow.wall_total() > overlapped.wall_total());
    }

    #[test]
    fn pencil_with_one_column_matches_slab_alltoall() {
        // pr × 1 grid: the column stage is exactly the slab exchange and
        // the row stage degenerates.
        let net = cluster(NetId::RoadRunnerMyr);
        for &p in &[4usize, 8, 6] {
            let slab = comm_time(&CommItem::Alltoall { block_bytes: 65536 }, &net, p);
            let pencil = comm_time(
                &CommItem::AlltoallPencil {
                    col_block_bytes: 65536,
                    row_block_bytes: 0,
                    pr: p,
                    pc: 1,
                    fields: 3,
                    pipelined: false,
                },
                &net,
                p,
            );
            assert_eq!(slab, pencil, "p = {p}");
        }
    }

    #[test]
    fn pencil_row_stage_adds_cost_and_pipelining_earns_credit() {
        let net = cluster(NetId::RoadRunnerMyr);
        let col_only = comm_time(
            &CommItem::AlltoallPencil {
                col_block_bytes: 65536,
                row_block_bytes: 0,
                pr: 4,
                pc: 4,
                fields: 3,
                pipelined: false,
            },
            &net,
            16,
        );
        let both = comm_time(
            &CommItem::AlltoallPencil {
                col_block_bytes: 65536,
                row_block_bytes: 65536,
                pr: 4,
                pc: 4,
                fields: 3,
                pipelined: false,
            },
            &net,
            16,
        );
        assert!(both.1 > col_only.1);
        assert!(both.0 > col_only.0);

        // Pipelined pencil transposes hide wire time behind same-stage
        // FFT work, exactly like the slab pipeline.
        let mk = |pipelined: bool| {
            let mut r = OpRecording::new();
            r.work(Stage::NonLinear, WorkItem::FftBatch { len: 64, batch: 20_000 });
            r.comm(
                Stage::NonLinear,
                CommItem::AlltoallPencil {
                    col_block_bytes: 12 * 65536,
                    row_block_bytes: 12 * 65536,
                    pr: 4,
                    pc: 4,
                    fields: 12,
                    pipelined,
                },
            );
            r
        };
        let m = machine(MachineId::Muses);
        let blocking = replay(&mk(false), &m, &net, 16);
        let pipelined = replay(&mk(true), &m, &net, 16);
        assert!(pipelined.wall_total() < blocking.wall_total());
        assert!(pipelined.wall_total() >= pipelined.cpu_total() - 1e-15);
    }

    #[test]
    fn alltoall_wall_grows_with_ranks_on_shared_fabric() {
        let net = cluster(NetId::RoadRunnerEth);
        let w4 = comm_time(&CommItem::Alltoall { block_bytes: 65536 }, &net, 4).1;
        let w16 = comm_time(&CommItem::Alltoall { block_bytes: 65536 }, &net, 16).1;
        assert!(w16 > 3.0 * w4, "{w16} vs {w4}");
    }
}
