//! Decomposition-generic transpose layer for NekTar-F (DESIGN.md §13).
//!
//! The paper's NekTar-F distributes Fourier modes over processors and
//! performs the nonlinear step through a Global Exchange (transpose).
//! The classic 1-D **slab** decomposition caps the rank count at the
//! mode count (P ≤ nz/2). This module abstracts the transpose behind
//! the [`Decomposition`] trait so the solver runs unchanged on either:
//!
//! * [`Slab`] — every rank owns a contiguous mode block; one world
//!   `MPI_Alltoall` per direction (the paper's layout, Table 2);
//! * [`Pencil2D`] — a `pr × pc` process grid (world rank = `row·pc +
//!   col`). Mode blocks are owned by grid *rows* and replicated across
//!   each row's `pc` columns, while physical points are chunked over
//!   **all** `pr·pc` ranks. The global transpose becomes two smaller
//!   sub-communicator exchanges (column stage, then row stage), and the
//!   FFT batch per rank shrinks by `pc` — scaling past P = nz.
//!
//! Pencil exchange structure (backward, physical → modes):
//!
//! 1. every rank forward-FFTs its own point chunk and scatters the mode
//!    coefficients over its **column** communicator (group rank = grid
//!    row), so it ends up holding its row's modes at the chunks of its
//!    column's ranks;
//! 2. a **row**-communicator allgather (phrased as an alltoall whose
//!    blocks are identical) fills in the chunks of the other columns,
//!    leaving every rank with full planes for its row's modes.
//!
//! The forward transpose needs only the column stage: the modes a rank
//! must inverse-FFT at its points are exactly one block from each
//! column peer, and mode replication within rows means no row exchange
//! is required (the row stage degenerates — recorded honestly as
//! `row_block_bytes = 0`).
//!
//! Both decompositions produce **bitwise identical** state: physical
//! values are pointwise copies of the same mode data, the per-point FFT
//! arithmetic does not depend on which rank executes it, and the
//! assembled planes are permutation-free reassemblies. A pencil rank
//! `(r, c)` therefore hashes identically to slab rank `r` at the same
//! `pr` (see `tests/pencil_equiv.rs`).

use crate::fourier::ModePlane;
use crate::opstream::{CommItem, Recorder, WorkItem};
use crate::timers::Stage;
use nkt_fft::{Complex64, RealFft};
use nkt_mpi::prelude::*;
use std::fmt;
use std::ops::Range;

/// Modeled virtual seconds for a batch of 1-D FFTs: 5 N log₂N flops per
/// transform at a nominal 100 Mflop/s nonlinear-stage rate. Charged via
/// [`Comm::advance`] in *both* transpose paths so the pipelined exchange
/// has compute to hide wire time behind while `busy` stays identical.
pub(crate) fn fft_virtual_secs(len: usize, batch: usize) -> f64 {
    5.0 * len as f64 * (len as f64).log2().max(1.0) * batch as f64 / 1e8
}

/// Runs one field's host-side FFT work (pack or unpack closure) inside
/// a `kernel`-cat span carrying the modeled flop count, then charges
/// the modeled virtual seconds. The span's host duration measures the
/// real transform work, so `nkt-calib` can put measured next to modeled
/// for the FFT kernel family.
pub(crate) fn fft_kernel<T>(
    comm: &mut Comm,
    len: usize,
    batch: usize,
    work: impl FnOnce() -> T,
) -> T {
    let secs = fft_virtual_secs(len, batch);
    let sp = nkt_trace::span_v("fft", "kernel", comm.wtime());
    let out = work();
    comm.advance(secs);
    sp.end_v_args(
        comm.wtime(),
        &[("len", len as f64), ("batch", batch as f64), ("flops", secs * 1e8)],
    );
    out
}

/// Why a NekTar-F configuration cannot be decomposed — a reportable
/// error instead of an abort, covering both decompositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FourierCfgError {
    /// `nz` must be even and at least 2 (modes = nz/2, Nyquist dropped).
    OddNz {
        /// The rejected plane count.
        nz: usize,
    },
    /// The mode count must divide evenly over the mode-owning ranks
    /// (slab: all P ranks; pencil: the `pr` grid rows).
    ModesNotDivisible {
        /// Fourier modes (nz/2).
        nmodes: usize,
        /// Mode-owning rank count.
        pr: usize,
    },
    /// The requested `pr × pc` grid does not tile the communicator.
    GridMismatch {
        /// Requested grid rows.
        pr: usize,
        /// Requested grid columns.
        pc: usize,
        /// Communicator size.
        p: usize,
    },
    /// An unparseable `NKT_GRID` specification.
    BadGridSpec {
        /// The rejected string.
        spec: String,
    },
}

impl fmt::Display for FourierCfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FourierCfgError::OddNz { nz } => {
                write!(f, "nz must be even and >= 2 (got {nz})")
            }
            FourierCfgError::ModesNotDivisible { nmodes, pr } => {
                write!(f, "modes ({nmodes}) must divide evenly over mode-owning ranks ({pr})")
            }
            FourierCfgError::GridMismatch { pr, pc, p } => {
                write!(f, "process grid {pr}x{pc} does not tile the {p}-rank communicator")
            }
            FourierCfgError::BadGridSpec { spec } => {
                write!(f, "bad grid spec {spec:?} (expected PRxPC, e.g. 4x2)")
            }
        }
    }
}

impl std::error::Error for FourierCfgError {}

/// Parses a `"PRxPC"` grid specification (the `NKT_GRID` format).
pub fn parse_grid(spec: &str) -> Result<(usize, usize), FourierCfgError> {
    let bad = || FourierCfgError::BadGridSpec { spec: spec.to_string() };
    let (a, b) = spec.split_once(['x', 'X']).ok_or_else(bad)?;
    let pr: usize = a.trim().parse().map_err(|_| bad())?;
    let pc: usize = b.trim().parse().map_err(|_| bad())?;
    if pr == 0 || pc == 0 {
        return Err(bad());
    }
    Ok((pr, pc))
}

/// Per-transpose solver context: everything a [`Decomposition`] needs
/// from `NektarF` beyond its own layout. Passed by the caller so the
/// decomposition and the recorder can be borrowed disjointly.
pub struct TransposeCtx<'a> {
    /// Real z-planes (FFT length).
    pub nz: usize,
    /// Quadrature points per plane.
    pub nq_total: usize,
    /// Pipeline the exchanges against per-field FFT work.
    pub overlap: bool,
    /// Alltoall algorithm for the blocking path.
    pub algo: AlltoallAlgo,
    /// Model-replay recorder.
    pub recorder: &'a mut Recorder,
}

/// How Fourier modes and physical points are laid out over ranks, and
/// how to transpose between the two spaces. Implementations own their
/// exchange plan (sub-communicators, pack/unpack layouts) and record
/// the matching [`CommItem`]s for model replay.
pub trait Decomposition: Send {
    /// Short name for diagnostics ("slab" / "pencil").
    fn name(&self) -> &'static str;

    /// `(rows, cols)` of the process grid (slab: `(P, 1)`).
    fn grid(&self) -> (usize, usize);

    /// Global mode indices this rank owns (contiguous).
    fn my_modes(&self) -> Range<usize>;

    /// True on exactly one rank per owned mode block (grid column 0).
    /// Replicated-mode diagnostics (energy sums, spectra) must only
    /// count primary contributions or they inflate by `pc`.
    fn is_primary(&self) -> bool;

    /// Mode-space fields → physical z-columns at this rank's chunk of
    /// quadrature points ("Global Exchange" + "Nxy 1D inverse FFTs").
    fn to_phys(
        &mut self,
        comm: &mut Comm,
        ctx: &mut TransposeCtx<'_>,
        fields: &[Vec<ModePlane>],
    ) -> Vec<Vec<Vec<f64>>>;

    /// Physical z-columns → mode-space fields, full planes for every
    /// owned mode ("Nxy 1D FFTs" + "Global Exchange" back).
    fn to_modes(
        &mut self,
        comm: &mut Comm,
        ctx: &mut TransposeCtx<'_>,
        phys: &[Vec<Vec<f64>>],
    ) -> Vec<Vec<ModePlane>>;
}

/// The paper's 1-D decomposition: rank `r` of `P` owns modes
/// `[r·nmodes/P, (r+1)·nmodes/P)`; each transpose is one world
/// alltoall (blocking or pipelined per field).
pub struct Slab {
    p: usize,
    my_modes: Range<usize>,
}

impl Slab {
    /// Block-distributes `nmodes` over the world ("a straightforward
    /// mapping of Fourier modes to P processors").
    pub fn new(comm: &Comm, nmodes: usize) -> Result<Slab, FourierCfgError> {
        let p = comm.size();
        if !nmodes.is_multiple_of(p) {
            return Err(FourierCfgError::ModesNotDivisible { nmodes, pr: p });
        }
        let mpp = nmodes / p;
        Ok(Slab { p, my_modes: comm.rank() * mpp..(comm.rank() + 1) * mpp })
    }
}

impl Decomposition for Slab {
    fn name(&self) -> &'static str {
        "slab"
    }

    fn grid(&self) -> (usize, usize) {
        (self.p, 1)
    }

    fn my_modes(&self) -> Range<usize> {
        self.my_modes.clone()
    }

    fn is_primary(&self) -> bool {
        true
    }

    /// Both paths exchange one field per alltoall so their `busy`
    /// ledgers match message for message; with `overlap` on, all field
    /// exchanges are posted up front ([`Comm::ialltoall`]) and each
    /// field's inverse FFTs run while the later fields are still on the
    /// wire, hiding their transfer time in `wtime`.
    fn to_phys(
        &mut self,
        comm: &mut Comm,
        ctx: &mut TransposeCtx<'_>,
        fields: &[Vec<ModePlane>],
    ) -> Vec<Vec<Vec<f64>>> {
        let p = comm.size();
        let nf = fields.len();
        let mpp = self.my_modes.len();
        let chunk = ctx.nq_total.div_ceil(p);
        let nz = ctx.nz;
        let fft = RealFft::new(nz);
        // Per-field exchange block (the classic layout's nf·fblock total
        // is split into nf exchanges of fblock each).
        let fblock = mpp * 2 * chunk;
        let mut sends: Vec<Vec<f64>> = Vec::with_capacity(nf);
        for field in fields {
            let mut send = vec![0.0; p * fblock];
            for dest in 0..p {
                let dlo = (dest * chunk).min(ctx.nq_total);
                let dhi = ((dest + 1) * chunk).min(ctx.nq_total);
                for (mi, mp) in field.iter().enumerate() {
                    let o = dest * fblock + mi * 2 * chunk;
                    send[o..o + (dhi - dlo)].copy_from_slice(&mp.a[dlo..dhi]);
                    send[o + chunk..o + chunk + (dhi - dlo)].copy_from_slice(&mp.b[dlo..dhi]);
                }
            }
            sends.push(send);
        }
        ctx.recorder.comm(
            Stage::NonLinear,
            if ctx.overlap {
                CommItem::AlltoallPipelined { block_bytes: 8 * nf * fblock, fields: nf }
            } else {
                CommItem::Alltoall { block_bytes: 8 * nf * fblock }
            },
        );
        let me = comm.rank();
        let lo = (me * chunk).min(ctx.nq_total);
        let hi = ((me + 1) * chunk).min(ctx.nq_total);
        let npts = hi - lo;
        let mut out = vec![vec![vec![0.0; nz]; npts]; nf];
        let mut spectrum = vec![Complex64::ZERO; fft.spectrum_len()];
        let mut recv = vec![0.0; p * fblock];
        let dims = (p, mpp, chunk, fblock, nz, npts);
        if ctx.overlap {
            let handles: Vec<AlltoallHandle> =
                sends.iter().map(|s| comm.ialltoall(s, fblock)).collect();
            for (fi, h) in handles.into_iter().enumerate() {
                comm.alltoall_finish(h, &mut recv);
                fft_kernel(comm, nz, npts, || {
                    unpack_phys_field(&recv, &mut out[fi], &mut spectrum, &fft, dims)
                });
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
            }
        } else {
            for (fi, send) in sends.iter().enumerate() {
                comm.alltoall_with(ctx.algo, send, fblock, &mut recv);
                fft_kernel(comm, nz, npts, || {
                    unpack_phys_field(&recv, &mut out[fi], &mut spectrum, &fft, dims)
                });
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
            }
        }
        out
    }

    /// Mirror of [`Slab::to_phys`]: one exchange per field in both
    /// paths. With `overlap` on, each field's exchange is posted as soon
    /// as its forward FFTs finish, so the wire time of field `i` hides
    /// under the FFT work of fields `i+1..`.
    fn to_modes(
        &mut self,
        comm: &mut Comm,
        ctx: &mut TransposeCtx<'_>,
        phys: &[Vec<Vec<f64>>],
    ) -> Vec<Vec<ModePlane>> {
        let p = comm.size();
        let nf = phys.len();
        let mpp = self.my_modes.len();
        let chunk = ctx.nq_total.div_ceil(p);
        let nz = ctx.nz;
        let fft = RealFft::new(nz);
        let npts = phys[0].len();
        let fblock = mpp * 2 * chunk;
        let nq_total = ctx.nq_total;
        let mut spectrum = vec![Complex64::ZERO; fft.spectrum_len()];
        let pack_field = |fi: usize, spectrum: &mut Vec<Complex64>| -> Vec<f64> {
            let mut send = vec![0.0; p * fblock];
            for pt in 0..npts {
                fft.forward(&phys[fi][pt], spectrum);
                for dest in 0..p {
                    for mi in 0..mpp {
                        let k = dest * mpp + mi;
                        let (a, b) = spectrum_coeffs(&spectrum[..], k, nz);
                        let o = dest * fblock + mi * 2 * chunk;
                        send[o + pt] = a;
                        send[o + chunk + pt] = b;
                    }
                }
            }
            send
        };
        ctx.recorder.comm(
            Stage::NonLinear,
            if ctx.overlap {
                CommItem::AlltoallPipelined { block_bytes: 8 * nf * fblock, fields: nf }
            } else {
                CommItem::Alltoall { block_bytes: 8 * nf * fblock }
            },
        );
        let mut out = empty_planes(nf, mpp, nq_total);
        let mut recv = vec![0.0; p * fblock];
        let unpack_field = |fi: usize, recv: &[f64], out: &mut Vec<Vec<ModePlane>>| {
            for src in 0..p {
                let plo = (src * chunk).min(nq_total);
                let phi = ((src + 1) * chunk).min(nq_total);
                for mi in 0..mpp {
                    let o = src * fblock + mi * 2 * chunk;
                    for (pt, gq) in (plo..phi).enumerate() {
                        out[fi][mi].a[gq] = recv[o + pt];
                        out[fi][mi].b[gq] = recv[o + chunk + pt];
                    }
                }
            }
        };
        if ctx.overlap {
            let mut handles = Vec::with_capacity(nf);
            for fi in 0..nf {
                let send = fft_kernel(comm, nz, npts, || pack_field(fi, &mut spectrum));
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
                handles.push(comm.ialltoall(&send, fblock));
            }
            for (fi, h) in handles.into_iter().enumerate() {
                comm.alltoall_finish(h, &mut recv);
                unpack_field(fi, &recv, &mut out);
            }
        } else {
            for fi in 0..nf {
                let send = fft_kernel(comm, nz, npts, || pack_field(fi, &mut spectrum));
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
                comm.alltoall_with(ctx.algo, &send, fblock, &mut recv);
                unpack_field(fi, &recv, &mut out);
            }
        }
        out
    }
}

/// The 2-D pencil decomposition (module docs): modes are owned by grid
/// rows and replicated over each row's columns; points are chunked over
/// all ranks; transposes are column-stage (+ row-stage) sub-communicator
/// exchanges. `pr × 1` reproduces the slab bitwise; `pc > 1` lifts the
/// P ≤ nz/2 cap.
pub struct Pencil2D {
    pr: usize,
    pc: usize,
    col: usize,
    my_modes: Range<usize>,
    /// Ranks sharing this grid column; group rank = grid row.
    col_comm: SubComm,
    /// Ranks sharing this grid row; group rank = grid column.
    row_comm: SubComm,
}

impl Pencil2D {
    /// Builds the process grid and its row/column sub-communicators.
    /// Collective over `comm` (two `MPI_Comm_split`s, posted column
    /// first on every rank).
    pub fn new(
        comm: &mut Comm,
        pr: usize,
        pc: usize,
        nmodes: usize,
    ) -> Result<Pencil2D, FourierCfgError> {
        let p = comm.size();
        if pr == 0 || pc == 0 || pr * pc != p {
            return Err(FourierCfgError::GridMismatch { pr, pc, p });
        }
        if !nmodes.is_multiple_of(pr) {
            return Err(FourierCfgError::ModesNotDivisible { nmodes, pr });
        }
        let row = comm.rank() / pc;
        let col = comm.rank() % pc;
        let col_comm = comm.split_labeled(col, row, "col");
        let row_comm = comm.split_labeled(row, col, "row");
        let mpr = nmodes / pr;
        Ok(Pencil2D { pr, pc, col, my_modes: row * mpr..(row + 1) * mpr, col_comm, row_comm })
    }
}

impl Decomposition for Pencil2D {
    fn name(&self) -> &'static str {
        "pencil"
    }

    fn grid(&self) -> (usize, usize) {
        (self.pr, self.pc)
    }

    fn my_modes(&self) -> Range<usize> {
        self.my_modes.clone()
    }

    fn is_primary(&self) -> bool {
        self.col == 0
    }

    /// Forward transpose: one column-stage exchange. The block sent to
    /// column peer `r` holds this rank's modes at the point chunk of
    /// world rank `(r, my col)`; conversely each received block
    /// contributes one row's mode block at my points, so the union over
    /// column peers covers the full spectrum. No row stage (module
    /// docs) — recorded as `row_block_bytes = 0`.
    fn to_phys(
        &mut self,
        comm: &mut Comm,
        ctx: &mut TransposeCtx<'_>,
        fields: &[Vec<ModePlane>],
    ) -> Vec<Vec<Vec<f64>>> {
        let (pr, pc) = (self.pr, self.pc);
        let p = pr * pc;
        let nf = fields.len();
        let mpr = self.my_modes.len();
        let chunk = ctx.nq_total.div_ceil(p);
        let nz = ctx.nz;
        let fft = RealFft::new(nz);
        let fblock = mpr * 2 * chunk;
        let mut sends: Vec<Vec<f64>> = Vec::with_capacity(nf);
        for field in fields {
            let mut send = vec![0.0; pr * fblock];
            for r2 in 0..pr {
                let w = r2 * pc + self.col;
                let dlo = (w * chunk).min(ctx.nq_total);
                let dhi = ((w + 1) * chunk).min(ctx.nq_total);
                for (mi, mp) in field.iter().enumerate() {
                    let o = r2 * fblock + mi * 2 * chunk;
                    send[o..o + (dhi - dlo)].copy_from_slice(&mp.a[dlo..dhi]);
                    send[o + chunk..o + chunk + (dhi - dlo)].copy_from_slice(&mp.b[dlo..dhi]);
                }
            }
            sends.push(send);
        }
        ctx.recorder.comm(
            Stage::NonLinear,
            CommItem::AlltoallPencil {
                col_block_bytes: 8 * nf * fblock,
                row_block_bytes: 0,
                pr,
                pc,
                fields: nf,
                pipelined: ctx.overlap,
            },
        );
        let me = comm.rank();
        let lo = (me * chunk).min(ctx.nq_total);
        let hi = ((me + 1) * chunk).min(ctx.nq_total);
        let npts = hi - lo;
        let mut out = vec![vec![vec![0.0; nz]; npts]; nf];
        let mut spectrum = vec![Complex64::ZERO; fft.spectrum_len()];
        let mut recv = vec![0.0; pr * fblock];
        let dims = (pr, mpr, chunk, fblock, nz, npts);
        if ctx.overlap {
            let mut handles = Vec::with_capacity(nf);
            for send in &sends {
                handles.push(self.col_comm.ialltoall(comm, send, fblock));
            }
            for (fi, h) in handles.into_iter().enumerate() {
                comm.alltoall_finish(h, &mut recv);
                fft_kernel(comm, nz, npts, || {
                    unpack_phys_field(&recv, &mut out[fi], &mut spectrum, &fft, dims)
                });
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
            }
        } else {
            for (fi, send) in sends.iter().enumerate() {
                self.col_comm.alltoall_with(comm, ctx.algo, send, fblock, &mut recv);
                fft_kernel(comm, nz, npts, || {
                    unpack_phys_field(&recv, &mut out[fi], &mut spectrum, &fft, dims)
                });
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
            }
        }
        out
    }

    /// Backward transpose: column stage then row stage. The column
    /// receive buffer already has the row-stage block layout — offset
    /// `(r·mpr + mi)·2·chunk` holds mode `mi` at the chunk of world
    /// rank `(r, my col)` — so the row stage sends that buffer verbatim
    /// to every row peer (an allgather phrased as an alltoall with
    /// identical blocks). With `overlap` on the two stages pipeline per
    /// field: field `i`'s column exchange hides under the FFT packing
    /// of fields `i+1..`, and its row exchange under the later fields'
    /// column completions.
    fn to_modes(
        &mut self,
        comm: &mut Comm,
        ctx: &mut TransposeCtx<'_>,
        phys: &[Vec<Vec<f64>>],
    ) -> Vec<Vec<ModePlane>> {
        let (pr, pc) = (self.pr, self.pc);
        let p = pr * pc;
        let nf = phys.len();
        let mpr = self.my_modes.len();
        let chunk = ctx.nq_total.div_ceil(p);
        let nz = ctx.nz;
        let fft = RealFft::new(nz);
        let npts = phys[0].len();
        let fblock = mpr * 2 * chunk;
        let rblock = pr * fblock;
        let nq_total = ctx.nq_total;
        let mut spectrum = vec![Complex64::ZERO; fft.spectrum_len()];
        let pack_field = |fi: usize, spectrum: &mut Vec<Complex64>| -> Vec<f64> {
            let mut send = vec![0.0; pr * fblock];
            for pt in 0..npts {
                fft.forward(&phys[fi][pt], spectrum);
                for r2 in 0..pr {
                    for mi in 0..mpr {
                        let k = r2 * mpr + mi;
                        let (a, b) = spectrum_coeffs(&spectrum[..], k, nz);
                        let o = r2 * fblock + mi * 2 * chunk;
                        send[o + pt] = a;
                        send[o + chunk + pt] = b;
                    }
                }
            }
            send
        };
        let replicate = |col_recv: &[f64]| -> Vec<f64> {
            let mut s = vec![0.0; pc * rblock];
            for c2 in 0..pc {
                s[c2 * rblock..(c2 + 1) * rblock].copy_from_slice(col_recv);
            }
            s
        };
        ctx.recorder.comm(
            Stage::NonLinear,
            CommItem::AlltoallPencil {
                col_block_bytes: 8 * nf * fblock,
                row_block_bytes: 8 * nf * rblock,
                pr,
                pc,
                fields: nf,
                pipelined: ctx.overlap,
            },
        );
        let mut out = empty_planes(nf, mpr, nq_total);
        // Row-stage block from row peer c2 holds this row's modes at the
        // chunks of column c2's ranks (world rank r2·pc + c2).
        let unpack_row = |recv_row: &[f64], out_f: &mut [ModePlane]| {
            for c2 in 0..pc {
                for r2 in 0..pr {
                    let w = r2 * pc + c2;
                    let plo = (w * chunk).min(nq_total);
                    let phi = ((w + 1) * chunk).min(nq_total);
                    for (mi, mp) in out_f.iter_mut().enumerate() {
                        let o = c2 * rblock + (r2 * mpr + mi) * 2 * chunk;
                        for (pt, gq) in (plo..phi).enumerate() {
                            mp.a[gq] = recv_row[o + pt];
                            mp.b[gq] = recv_row[o + chunk + pt];
                        }
                    }
                }
            }
        };
        let mut col_recv = vec![0.0; pr * fblock];
        let mut row_recv = vec![0.0; pc * rblock];
        if ctx.overlap {
            let mut col_handles = Vec::with_capacity(nf);
            for fi in 0..nf {
                let send = fft_kernel(comm, nz, npts, || pack_field(fi, &mut spectrum));
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
                col_handles.push(self.col_comm.ialltoall(comm, &send, fblock));
            }
            let mut row_handles = Vec::with_capacity(nf);
            for h in col_handles {
                comm.alltoall_finish(h, &mut col_recv);
                let rsend = replicate(&col_recv);
                row_handles.push(self.row_comm.ialltoall(comm, &rsend, rblock));
            }
            for (fi, h) in row_handles.into_iter().enumerate() {
                comm.alltoall_finish(h, &mut row_recv);
                unpack_row(&row_recv, &mut out[fi]);
            }
        } else {
            for fi in 0..nf {
                let send = fft_kernel(comm, nz, npts, || pack_field(fi, &mut spectrum));
                ctx.recorder.work(Stage::NonLinear, WorkItem::FftBatch { len: nz, batch: npts });
                self.col_comm.alltoall_with(comm, ctx.algo, &send, fblock, &mut col_recv);
                let rsend = replicate(&col_recv);
                self.row_comm.alltoall_with(comm, ctx.algo, &rsend, rblock, &mut row_recv);
                unpack_row(&row_recv, &mut out[fi]);
            }
        }
        out
    }
}

/// Mode coefficients of spectrum bin `k` in the solver's cos/sin plane
/// convention (`k = 0` carries the mean; Nyquist dropped).
#[inline]
fn spectrum_coeffs(spectrum: &[Complex64], k: usize, nz: usize) -> (f64, f64) {
    if k == 0 {
        (spectrum[0].re / nz as f64, 0.0)
    } else {
        (2.0 * spectrum[k].re / nz as f64, -2.0 * spectrum[k].im / nz as f64)
    }
}

/// Inverse of [`spectrum_coeffs`] + inverse FFT of one received field:
/// reassembles the spectrum at each of this rank's points from the
/// per-source blocks (source group rank `src` owns modes
/// `[src·mpp, (src+1)·mpp)`) and fills the physical z-columns.
fn unpack_phys_field(
    recv: &[f64],
    field_out: &mut [Vec<f64>],
    spectrum: &mut [Complex64],
    fft: &RealFft,
    (p, mpp, chunk, fblock, nz, npts): (usize, usize, usize, usize, usize, usize),
) {
    for pt in 0..npts {
        for s in spectrum.iter_mut() {
            *s = Complex64::ZERO;
        }
        for src in 0..p {
            for mi in 0..mpp {
                let k = src * mpp + mi;
                let o = src * fblock + mi * 2 * chunk;
                let a = recv[o + pt];
                let b = recv[o + chunk + pt];
                spectrum[k] = if k == 0 {
                    Complex64::new(a * nz as f64, 0.0)
                } else {
                    Complex64::new(a * nz as f64 / 2.0, -b * nz as f64 / 2.0)
                };
            }
        }
        fft.inverse(spectrum, &mut field_out[pt]);
    }
}

fn empty_planes(nf: usize, nmodes: usize, nq_total: usize) -> Vec<Vec<ModePlane>> {
    vec![vec![ModePlane { a: vec![0.0; nq_total], b: vec![0.0; nq_total] }; nmodes]; nf]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spec_parses_and_rejects() {
        assert_eq!(parse_grid("4x2"), Ok((4, 2)));
        assert_eq!(parse_grid("1X8"), Ok((1, 8)));
        assert_eq!(parse_grid(" 2 x 3 "), Ok((2, 3)));
        for bad in ["", "4", "x2", "4x", "0x2", "4x0", "axb", "4x2x1"] {
            assert!(parse_grid(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn cfg_errors_display_their_parameters() {
        let cases: Vec<(FourierCfgError, &[&str])> = vec![
            (FourierCfgError::OddNz { nz: 7 }, &["7", "even"]),
            (FourierCfgError::ModesNotDivisible { nmodes: 4, pr: 3 }, &["4", "3"]),
            (FourierCfgError::GridMismatch { pr: 4, pc: 2, p: 6 }, &["4x2", "6"]),
            (FourierCfgError::BadGridSpec { spec: "blob".into() }, &["blob"]),
        ];
        for (err, needles) in cases {
            let msg = err.to_string();
            for n in needles {
                assert!(msg.contains(n), "{msg:?} should mention {n:?}");
            }
        }
    }
}
