//! 3-D spectral/hp discretisation on hexahedral meshes — the substrate
//! for NekTar-ALE (paper §4.2.2).
//!
//! The expansion is the tensor product of the modified 1-D modal basis in
//! all three directions, with modes classified vertex / edge / face /
//! interior. Elemental mass and stiffness matrices are built from the 1-D
//! matrices (exact for the *rectilinear* — axis-aligned box — elements the
//! structured generators produce; this restriction is asserted and
//! documented in DESIGN.md). The global solver is matrix-free: elemental
//! operator application + gather-scatter halo exchange + diagonally
//! preconditioned conjugate gradients, exactly the stack the paper
//! describes for the ALE code ("a diagonally preconditioned conjugate
//! gradient iterative solver is predominantly used").

use crate::opstream::{CommItem, Recorder, WorkItem};
use crate::timers::Stage;
use nkt_gs::{GsHandle, GsStrategy};
use nkt_mesh::{BoundaryTag, Mesh3d};
use nkt_mpi::prelude::*;
use nkt_spectral::basis1d::Basis1d;
use std::collections::HashMap;

/// 1-D building blocks: mass and stiffness matrices of the modified
/// basis on [−1, 1].
#[derive(Debug, Clone)]
pub struct Oper1d {
    /// Number of modes (P + 1).
    pub nm: usize,
    /// Mass matrix, column-major nm × nm.
    pub mass: Vec<f64>,
    /// Stiffness matrix ∫ψ'ψ'.
    pub stiff: Vec<f64>,
    /// Basis tables (for quadrature evaluation).
    pub basis: Basis1d,
}

impl Oper1d {
    /// Builds the order-`p` 1-D operators.
    pub fn new(p: usize) -> Oper1d {
        let basis = Basis1d::with_gll(p);
        let nm = p + 1;
        let nq = basis.nquad();
        let mut mass = vec![0.0; nm * nm];
        let mut stiff = vec![0.0; nm * nm];
        for i in 0..nm {
            for jm in 0..nm {
                let mut ms = 0.0;
                let mut ks = 0.0;
                for q in 0..nq {
                    ms += basis.w[q] * basis.val[i][q] * basis.val[jm][q];
                    ks += basis.w[q] * basis.dval[i][q] * basis.dval[jm][q];
                }
                mass[i + jm * nm] = ms;
                stiff[i + jm * nm] = ks;
            }
        }
        Oper1d { nm, mass, stiff, basis }
    }
}

/// Local-mode triple ordering for a hex of order P: lexicographic in
/// (p, q, r) — simple and orientation-free for the structured meshes we
/// support.
#[derive(Debug, Clone)]
pub struct HexNumbering {
    /// Polynomial order.
    pub p: usize,
    /// Global dof id per element per local mode.
    pub elem_dofs: Vec<Vec<u64>>,
    /// Total number of distinct global dofs.
    pub ndof_global: u64,
    /// Dirichlet flag per element-local mode (same global dof always
    /// agrees).
    pub dirichlet_global: HashMap<u64, f64>,
}

/// Classifies each (p, q, r) index as lying on a vertex/edge/face/interior
/// of the reference hex: returns, per axis, whether the index is at the
/// low end (0), high end (1) or interior (2).
fn axis_class(i: usize, p: usize) -> usize {
    if i == 0 {
        0
    } else if i == p {
        1
    } else {
        2
    }
}

impl HexNumbering {
    /// Builds a global C0 numbering for an order-`p` expansion on `mesh`.
    /// Dofs on faces tagged with any of `dirichlet_tags` are constrained
    /// with value 0 (homogeneous; the ALE solver lifts inhomogeneous data
    /// separately via [`HexNumbering::set_dirichlet_values`]).
    ///
    /// # Panics
    /// Panics if any element is not an axis-aligned box (the supported
    /// class — see module docs).
    pub fn build(mesh: &Mesh3d, p: usize, dirichlet_tags: &[BoundaryTag]) -> HexNumbering {
        for ei in 0..mesh.nelems() {
            assert!(
                elem_box(mesh, ei).is_some(),
                "element {ei} is not an axis-aligned box"
            );
        }
        // Canonical geometric keying: each dof is identified by its
        // "anchor" — (entity kind, sorted vertex ids, local index within
        // the entity). For axis-aligned structured meshes the shared
        // entities have consistent parameterizations, so identical keys
        // mean identical basis functions.
        let mut next_id: u64 = 0;
        let mut key_to_id: HashMap<(u64, u64, u64, u64, u64), u64> = HashMap::new();
        let nm1 = p + 1;
        let mut elem_dofs = Vec::with_capacity(mesh.nelems());
        // Hex vertex triple per local vertex (mesh ordering).
        let vidx = [
            (0, 0, 0),
            (p, 0, 0),
            (p, p, 0),
            (0, p, 0),
            (0, 0, p),
            (p, 0, p),
            (p, p, p),
            (0, p, p),
        ];
        for el in &mesh.elems {
            let mut dofs = Vec::with_capacity(nm1 * nm1 * nm1);
            for r in 0..nm1 {
                for q in 0..nm1 {
                    for pp in 0..nm1 {
                        let cls = (axis_class(pp, p), axis_class(q, p), axis_class(r, p));
                        // Gather the corner vertices of the containing
                        // entity and the intra-entity index.
                        // The entity contains every hex vertex whose
                        // per-axis class matches the non-interior axes.
                        let mut corners: Vec<u64> = Vec::new();
                        for &(vi, vj, vk) in &vidx {
                            let m0 = cls.0 == 2 || axis_class(vi, p) == cls.0;
                            let m1 = cls.1 == 2 || axis_class(vj, p) == cls.1;
                            let m2 = cls.2 == 2 || axis_class(vk, p) == cls.2;
                            if m0 && m1 && m2 {
                                let lv = vidx
                                    .iter()
                                    .position(|&t| t == (vi, vj, vk))
                                    .expect("triple in list");
                                corners.push(el.verts[lv] as u64);
                            }
                        }
                        corners.sort_unstable();
                        corners.dedup();
                        let mut key = [u64::MAX; 4];
                        for (s, &c) in corners.iter().take(4).enumerate() {
                            key[s] = c;
                        }
                        // Intra-entity index: interior axis offsets packed.
                        let mut intra: u64 = 0;
                        for (axis_i, axis_cls) in [(pp, cls.0), (q, cls.1), (r, cls.2)] {
                            if axis_cls == 2 {
                                intra = intra * (p as u64 + 1) + axis_i as u64;
                            }
                        }
                        // Element-interior modes must stay private.
                        let full_key = if cls == (2, 2, 2) {
                            (u64::MAX - 1, elem_dofs.len() as u64, intra, 0, 0)
                        } else {
                            (key[0], key[1], key[2], key[3], intra)
                        };
                        let id = *key_to_id.entry(full_key).or_insert_with(|| {
                            let id = next_id;
                            next_id += 1;
                            id
                        });
                        dofs.push(id);
                    }
                }
            }
            elem_dofs.push(dofs);
        }
        // Dirichlet: modes whose support lies in a tagged boundary face.
        let mut dirichlet_global = HashMap::new();
        for f in &mesh.faces {
            let Some(tag) = f.tag else { continue };
            if !dirichlet_tags.contains(&tag) {
                continue;
            }
            let ei = f.elems[0];
            let el = &mesh.elems[ei];
            // Determine which local face this is: match vertex sets.
            let local_faces: [[usize; 4]; 6] = [
                [0, 1, 2, 3],
                [4, 5, 6, 7],
                [0, 1, 5, 4],
                [3, 2, 6, 7],
                [0, 3, 7, 4],
                [1, 2, 6, 5],
            ];
            for (fi, lf) in local_faces.iter().enumerate() {
                let mut vs: Vec<usize> = lf.iter().map(|&l| el.verts[l]).collect();
                vs.sort_unstable();
                if vs == f.v.to_vec() {
                    // Face fi fixes one axis: 0 -> r=0, 1 -> r=p,
                    // 2 -> q=0, 3 -> q=p, 4 -> p=0, 5 -> p=p.
                    for r in 0..nm1 {
                        for q in 0..nm1 {
                            for pp in 0..nm1 {
                                let on_face = match fi {
                                    0 => r == 0,
                                    1 => r == p,
                                    2 => q == 0,
                                    3 => q == p,
                                    4 => pp == 0,
                                    _ => pp == p,
                                };
                                if on_face {
                                    let m = pp + q * nm1 + r * nm1 * nm1;
                                    dirichlet_global
                                        .insert(elem_dofs[ei][m], 0.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        HexNumbering { p, elem_dofs, ndof_global: next_id, dirichlet_global }
    }

    /// Overrides Dirichlet values using a vertex-value function (only the
    /// vertex dofs get nonzero data; edge/face corrections are omitted —
    /// adequate for the low-order boundary data the ALE runs use).
    pub fn set_dirichlet_values(
        &mut self,
        mesh: &Mesh3d,
        g: impl Fn([f64; 3]) -> f64,
    ) {
        let p = self.p;
        let nm1 = p + 1;
        let vidx = [
            (0, 0, 0),
            (p, 0, 0),
            (p, p, 0),
            (0, p, 0),
            (0, 0, p),
            (p, 0, p),
            (p, p, p),
            (0, p, p),
        ];
        for (ei, el) in mesh.elems.iter().enumerate() {
            for (lv, &(i, j, k)) in vidx.iter().enumerate() {
                let m = i + j * nm1 + k * nm1 * nm1;
                let gid = self.elem_dofs[ei][m];
                if let Some(v) = self.dirichlet_global.get_mut(&gid) {
                    *v = g(mesh.verts[el.verts[lv]]);
                }
            }
        }
    }

    /// Number of local modes per element.
    pub fn modes_per_elem(&self) -> usize {
        (self.p + 1).pow(3)
    }
}

/// Returns the (lo, hi) corners if element `ei` is an axis-aligned box.
pub fn elem_box(mesh: &Mesh3d, ei: usize) -> Option<([f64; 3], [f64; 3])> {
    let el = &mesh.elems[ei];
    let vs: Vec<[f64; 3]> = el.verts.iter().map(|&v| mesh.verts[v]).collect();
    let mut lo = vs[0];
    let mut hi = vs[0];
    for v in &vs {
        for d in 0..3 {
            lo[d] = lo[d].min(v[d]);
            hi[d] = hi[d].max(v[d]);
        }
    }
    // Each vertex must sit on a corner of the bounding box, in the
    // standard ordering.
    let expect = [
        [lo[0], lo[1], lo[2]],
        [hi[0], lo[1], lo[2]],
        [hi[0], hi[1], lo[2]],
        [lo[0], hi[1], lo[2]],
        [lo[0], lo[1], hi[2]],
        [hi[0], lo[1], hi[2]],
        [hi[0], hi[1], hi[2]],
        [lo[0], hi[1], hi[2]],
    ];
    for (a, b) in vs.iter().zip(&expect) {
        for d in 0..3 {
            if (a[d] - b[d]).abs() > 1e-12 {
                return None;
            }
        }
    }
    Some((lo, hi))
}

/// A distributed Helmholtz operator on a partitioned hex mesh
/// (matrix-free, per-rank element storage).
pub struct HexHelmholtz {
    /// Polynomial order.
    pub p: usize,
    /// λ in (−∇² + λ).
    pub lambda: f64,
    /// Coefficient on the stiffness term (1.0 = Helmholtz; 0.0 turns the
    /// operator into λ·Mass, used for L2 projections).
    pub stiff_coef: f64,
    /// Elements owned by this rank (global element ids).
    pub my_elems: Vec<usize>,
    /// Per owned element: (hx, hy, hz) box sizes.
    pub scales: Vec<[f64; 3]>,
    /// Per owned element: local dof list indexing this rank's vector.
    pub elem_local: Vec<Vec<usize>>,
    /// Global ids of this rank's local dofs.
    pub local_gids: Vec<u64>,
    /// Dirichlet flags/values for local dofs.
    pub dirichlet: Vec<Option<f64>>,
    /// 1-D operators.
    pub op1: Oper1d,
    /// Gather-scatter handle over shared dofs.
    pub gs: GsHandle,
    /// Inverse multiplicity of each local dof (for global dot products).
    pub weight: Vec<f64>,
    /// Assembled (GS-summed) operator diagonal.
    pub diag: Vec<f64>,
    /// Owned-element indices (into `elem_local`) touching at least one
    /// rank-shared dof. These run *before* the halo exchange is posted.
    pub elem_boundary: Vec<usize>,
    /// Owned-element indices touching no shared dof: their work fills
    /// the overlap window between `gs.start` and `finish`.
    pub elem_interior: Vec<usize>,
    /// Whether [`HexHelmholtz::apply`] overlaps the halo exchange with
    /// interior elemental work (`NKT_GS_OVERLAP`, default on). Either
    /// setting produces bitwise-identical results.
    pub gs_overlap: bool,
}

impl HexHelmholtz {
    /// Builds the distributed operator. Collective. `part[e]` gives the
    /// owning rank per element (from `nkt-partition`).
    pub fn new(
        comm: &mut Comm,
        mesh: &Mesh3d,
        numbering: &HexNumbering,
        part: &[u8],
        lambda: f64,
    ) -> HexHelmholtz {
        let me = comm.rank() as u8;
        let p = numbering.p;
        let op1 = Oper1d::new(p);
        let my_elems: Vec<usize> =
            (0..mesh.nelems()).filter(|&e| part[e] == me).collect();
        // Local dof table: union of owned elements' dofs.
        let mut gid_to_local: HashMap<u64, usize> = HashMap::new();
        let mut local_gids: Vec<u64> = Vec::new();
        let mut elem_local = Vec::with_capacity(my_elems.len());
        let mut scales = Vec::with_capacity(my_elems.len());
        for &e in &my_elems {
            let (lo, hi) = elem_box(mesh, e).expect("validated axis-aligned");
            scales.push([hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]]);
            let locals: Vec<usize> = numbering.elem_dofs[e]
                .iter()
                .map(|&g| {
                    *gid_to_local.entry(g).or_insert_with(|| {
                        local_gids.push(g);
                        local_gids.len() - 1
                    })
                })
                .collect();
            elem_local.push(locals);
        }
        let dirichlet: Vec<Option<f64>> = local_gids
            .iter()
            .map(|g| numbering.dirichlet_global.get(g).copied())
            .collect();
        let gs = GsHandle::try_setup(comm, &local_gids, GsStrategy::Hybrid)
            .expect("hex numbering produces a consistent sharer table");
        // Multiplicity: GS-sum of ones.
        let mut ones = vec![1.0; local_gids.len()];
        gs.exchange(comm, &mut ones, ReduceOp::Sum);
        let weight: Vec<f64> = ones.iter().map(|&m| 1.0 / m).collect();
        // Classify owned elements: an element is "boundary" iff any of
        // its dofs is rank-shared. Boundary work must complete before
        // the halo exchange is posted; interior work fills the window.
        let mut is_halo = vec![false; local_gids.len()];
        for l in gs.halo_locals() {
            is_halo[l] = true;
        }
        let mut elem_boundary = Vec::new();
        let mut elem_interior = Vec::new();
        for (le, locals) in elem_local.iter().enumerate() {
            if locals.iter().any(|&l| is_halo[l]) {
                elem_boundary.push(le);
            } else {
                elem_interior.push(le);
            }
        }
        let gs_overlap = std::env::var("NKT_GS_OVERLAP").map_or(true, |v| v != "0");
        let mut h = HexHelmholtz {
            p,
            lambda,
            stiff_coef: 1.0,
            my_elems,
            scales,
            elem_local,
            local_gids,
            dirichlet,
            op1,
            gs,
            weight,
            diag: Vec::new(),
            elem_boundary,
            elem_interior,
            gs_overlap,
        };
        // Assemble the diagonal for Jacobi preconditioning.
        let mut diag = vec![0.0; h.local_gids.len()];
        for (le, locals) in h.elem_local.iter().enumerate() {
            let [hx, hy, hz] = h.scales[le];
            let nm1 = p + 1;
            for (m, &l) in locals.iter().enumerate() {
                let (i, j, k) = (m % nm1, (m / nm1) % nm1, m / (nm1 * nm1));
                let d = elem_entry(&h.op1, hx, hy, hz, lambda, i, j, k, i, j, k);
                // (diagonal assembled with stiff_coef = 1; rebuild_diag
                // refreshes it if the coefficient or geometry changes)
                diag[l] += d;
            }
        }
        h.gs.exchange(comm, &mut diag, ReduceOp::Sum);
        // Dirichlet rows are identity.
        for (l, d) in h.dirichlet.iter().enumerate() {
            if d.is_some() {
                diag[l] = 1.0;
            }
        }
        h.diag = diag;
        h
    }

    /// Number of local dofs on this rank.
    pub fn nlocal(&self) -> usize {
        self.local_gids.len()
    }

    /// Rebuilds the assembled diagonal (after changing `lambda`,
    /// `stiff_coef` or the element scales — e.g. ALE mesh motion).
    /// Collective.
    pub fn rebuild_diag(&mut self, comm: &mut Comm) {
        let p = self.p;
        let nm1 = p + 1;
        let mut diag = vec![0.0; self.local_gids.len()];
        for (le, locals) in self.elem_local.iter().enumerate() {
            let [hx, hy, hz] = self.scales[le];
            for (m, &l) in locals.iter().enumerate() {
                let (i, j, k) = (m % nm1, (m / nm1) % nm1, m / (nm1 * nm1));
                let kpart = elem_entry(&self.op1, hx, hy, hz, 0.0, i, j, k, i, j, k);
                let full = elem_entry(&self.op1, hx, hy, hz, self.lambda, i, j, k, i, j, k);
                let mpart = full - kpart;
                diag[l] += self.stiff_coef * kpart + mpart;
            }
        }
        self.gs.exchange(comm, &mut diag, ReduceOp::Sum);
        for (l, d) in self.dirichlet.iter().enumerate() {
            if d.is_some() {
                diag[l] = 1.0;
            }
        }
        self.diag = diag;
    }

    /// Toggles halo/compute overlap in [`HexHelmholtz::apply`]. Results
    /// are bitwise identical either way; only the virtual-clock schedule
    /// differs.
    pub fn set_gs_overlap(&mut self, on: bool) {
        self.gs_overlap = on;
    }

    /// Virtual-clock cost of one elemental operator application: the
    /// sum-factorized form is 4 tensor terms × 3 sweeps × 2·nm⁴ flops,
    /// charged at the canonical 100 Mflop/s the other virtual compute
    /// charges use (e.g. `fft_virtual_secs`).
    fn elem_virtual_secs(&self) -> f64 {
        let nm = (self.p + 1) as f64;
        24.0 * nm * nm * nm * nm / 1e8
    }

    /// One elemental sweep over `elems` (indices into `elem_local`),
    /// scatter-adding into `y`.
    fn apply_pass(
        &self,
        elems: &[usize],
        x: &[f64],
        y: &mut [f64],
        xl: &mut [f64],
        yl: &mut [f64],
        rec: &mut Recorder,
    ) {
        let nm1 = self.p + 1;
        for &le in elems {
            let locals = &self.elem_local[le];
            let [hx, hy, hz] = self.scales[le];
            for (m, &l) in locals.iter().enumerate() {
                xl[m] = x[l];
            }
            apply_elem_coef(&self.op1, hx, hy, hz, self.lambda, self.stiff_coef, xl, yl);
            for (m, &l) in locals.iter().enumerate() {
                y[l] += yl[m];
            }
            rec.work(
                Stage::PressureSolve,
                WorkItem::Gemm { m: nm1 * nm1, n: nm1, k: nm1 },
            );
        }
    }

    /// Applies the assembled operator: y = GS-sum(elemental (K + λM) x),
    /// with Dirichlet rows replaced by identity. Collective.
    ///
    /// Both overlap settings run the *same* boundary-then-interior
    /// element schedule, so every dof accumulates its contributions in
    /// the same floating-point order and the two modes stay bitwise
    /// identical; only the exchange posting point moves. Shared dofs
    /// receive contributions exclusively from boundary elements, so
    /// their values are final when the exchange is posted and the
    /// interior sweep (which touches no shared dof) fills the window.
    pub fn apply(&self, comm: &mut Comm, x: &[f64], y: &mut [f64], rec: &mut Recorder) {
        let nm1 = self.p + 1;
        let nm = nm1 * nm1 * nm1;
        y.fill(0.0);
        let mut xl = vec![0.0; nm];
        let mut yl = vec![0.0; nm];
        let esecs = self.elem_virtual_secs();
        let (nb, ni) = (self.elem_boundary.len(), self.elem_interior.len());
        let ksp = nkt_trace::span_v("helmholtz", "kernel", comm.wtime());
        self.apply_pass(&self.elem_boundary, x, y, &mut xl, &mut yl, rec);
        comm.advance(esecs * nb as f64);
        ksp.end_v_args(
            comm.wtime(),
            &[("elems", nb as f64), ("flops", esecs * nb as f64 * 1e8)],
        );
        let overlap = if self.gs_overlap {
            let w0 = comm.wtime();
            let ex = self.gs.start(comm, y, ReduceOp::Sum);
            let ksp = nkt_trace::span_v("helmholtz", "kernel", comm.wtime());
            self.apply_pass(&self.elem_interior, x, y, &mut xl, &mut yl, rec);
            comm.advance(esecs * ni as f64);
            ksp.end_v_args(
                comm.wtime(),
                &[("elems", ni as f64), ("flops", esecs * ni as f64 * 1e8)],
            );
            ex.finish(comm, y);
            // The measured overlap window: how many elements this apply
            // really had available to hide the exchange behind, consumed
            // per stage by nkt-calib (`gs.window` records).
            nkt_trace::record_vspan_args(
                "gs.window",
                "gs",
                w0,
                comm.wtime(),
                &[("interior", ni as f64), ("boundary", nb as f64)],
            );
            if self.my_elems.is_empty() {
                0.0
            } else {
                ni as f64 / self.my_elems.len() as f64
            }
        } else {
            let ksp = nkt_trace::span_v("helmholtz", "kernel", comm.wtime());
            self.apply_pass(&self.elem_interior, x, y, &mut xl, &mut yl, rec);
            comm.advance(esecs * ni as f64);
            ksp.end_v_args(
                comm.wtime(),
                &[("elems", ni as f64), ("flops", esecs * ni as f64 * 1e8)],
            );
            self.gs.exchange(comm, y, ReduceOp::Sum);
            0.0
        };
        rec.comm(
            Stage::PressureSolve,
            CommItem::GsExchange { neighbors: 2, bytes: 8 * self.nlocal().min(1024), overlap },
        );
        for (l, d) in self.dirichlet.iter().enumerate() {
            if d.is_some() {
                y[l] = x[l];
            }
        }
    }

    /// Global (deduplicated) dot product. Collective.
    pub fn dot(&self, comm: &mut Comm, a: &[f64], b: &[f64]) -> f64 {
        let mut s = 0.0;
        for i in 0..a.len() {
            s += self.weight[i] * a[i] * b[i];
        }
        let mut buf = [s];
        comm.allreduce(&mut buf, ReduceOp::Sum);
        buf[0]
    }

    /// Solves (K + λM) x = b by Jacobi-PCG. `b` must be GS-consistent
    /// (already summed); `x` enters as the initial guess. Returns the
    /// iteration count. Collective.
    pub fn pcg(
        &self,
        comm: &mut Comm,
        b: &[f64],
        x: &mut [f64],
        tol: f64,
        max_iter: usize,
        rec: &mut Recorder,
    ) -> usize {
        let n = self.nlocal();
        // Impose Dirichlet values on the iterate and the residual target.
        let mut bb = b.to_vec();
        for (l, d) in self.dirichlet.iter().enumerate() {
            if let Some(v) = *d {
                x[l] = v;
                bb[l] = v;
            }
        }
        let mut r = vec![0.0; n];
        let mut ap = vec![0.0; n];
        self.apply(comm, x, &mut ap, rec);
        for i in 0..n {
            r[i] = bb[i] - ap[i];
        }
        let bnorm = self.dot(comm, &bb, &bb).sqrt().max(1e-300);
        let mut z: Vec<f64> = r.iter().zip(&self.diag).map(|(ri, di)| ri / di).collect();
        let mut pv = z.clone();
        let mut rz = self.dot(comm, &r, &z);
        let mut rnorm = self.dot(comm, &r, &r).sqrt();
        if rnorm / bnorm <= tol {
            return 0;
        }
        for it in 1..=max_iter {
            self.apply(comm, &pv, &mut ap, rec);
            let pap = self.dot(comm, &pv, &ap);
            if pap <= 0.0 {
                return it;
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * pv[i];
                r[i] -= alpha * ap[i];
            }
            rnorm = self.dot(comm, &r, &r).sqrt();
            if rnorm / bnorm <= tol {
                return it;
            }
            for i in 0..n {
                z[i] = r[i] / self.diag[i];
            }
            let rz2 = self.dot(comm, &r, &z);
            let beta = rz2 / rz;
            rz = rz2;
            for i in 0..n {
                pv[i] = z[i] + beta * pv[i];
            }
        }
        max_iter
    }
}

/// One entry of the elemental Helmholtz matrix for an hx × hy × hz box:
/// tensor combination of the 1-D mass/stiffness matrices.
#[allow(clippy::too_many_arguments)]
fn elem_entry(
    op: &Oper1d,
    hx: f64,
    hy: f64,
    hz: f64,
    lambda: f64,
    i1: usize,
    j1: usize,
    k1: usize,
    i2: usize,
    j2: usize,
    k2: usize,
) -> f64 {
    let nm = op.nm;
    let m = |a: usize, b: usize| op.mass[a + b * nm];
    let k = |a: usize, b: usize| op.stiff[a + b * nm];
    let (sx, sy, sz) = (hx / 2.0, hy / 2.0, hz / 2.0);
    // K = Kx My Mz (sy sz / sx) + Mx Ky Mz (sx sz / sy) + Mx My Kz (sx sy / sz)
    // M = Mx My Mz (sx sy sz)
    k(i1, i2) * m(j1, j2) * m(k1, k2) * (sy * sz / sx)
        + m(i1, i2) * k(j1, j2) * m(k1, k2) * (sx * sz / sy)
        + m(i1, i2) * m(j1, j2) * k(k1, k2) * (sx * sy / sz)
        + lambda * m(i1, i2) * m(j1, j2) * m(k1, k2) * (sx * sy * sz)
}

/// Applies the elemental Helmholtz operator using sum-factorized tensor
/// contractions (O(P⁴) instead of O(P⁶)).
pub fn apply_elem(op: &Oper1d, hx: f64, hy: f64, hz: f64, lambda: f64, x: &[f64], y: &mut [f64]) {
    apply_elem_coef(op, hx, hy, hz, lambda, 1.0, x, y);
}

/// [`apply_elem`] with an explicit stiffness coefficient.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::type_complexity)]
pub fn apply_elem_coef(
    op: &Oper1d,
    hx: f64,
    hy: f64,
    hz: f64,
    lambda: f64,
    kc: f64,
    x: &[f64],
    y: &mut [f64],
) {
    let nm = op.nm;
    let (sx, sy, sz) = (hx / 2.0, hy / 2.0, hz / 2.0);
    let terms: [(&[f64], &[f64], &[f64], f64); 4] = [
        (&op.stiff, &op.mass, &op.mass, kc * sy * sz / sx),
        (&op.mass, &op.stiff, &op.mass, kc * sx * sz / sy),
        (&op.mass, &op.mass, &op.stiff, kc * sx * sy / sz),
        (&op.mass, &op.mass, &op.mass, lambda * sx * sy * sz),
    ];
    y.fill(0.0);
    let mut t1 = vec![0.0; nm * nm * nm];
    let mut t2 = vec![0.0; nm * nm * nm];
    for (ax, ay, az, c) in terms {
        if c == 0.0 {
            continue;
        }
        // t1[i', j, k] = sum_i ax[i', i] x[i, j, k]
        t1.fill(0.0);
        for kk in 0..nm {
            for j in 0..nm {
                let base = j * nm + kk * nm * nm;
                for i in 0..nm {
                    let xv = x[i + base];
                    if xv != 0.0 {
                        for ip in 0..nm {
                            t1[ip + base] += ax[ip + i * nm] * xv;
                        }
                    }
                }
            }
        }
        // t2[i', j', k] = sum_j ay[j', j] t1[i', j, k]
        t2.fill(0.0);
        for kk in 0..nm {
            for j in 0..nm {
                for jp in 0..nm {
                    let a = ay[jp + j * nm];
                    if a != 0.0 {
                        let src = j * nm + kk * nm * nm;
                        let dst = jp * nm + kk * nm * nm;
                        for ip in 0..nm {
                            t2[ip + dst] += a * t1[ip + src];
                        }
                    }
                }
            }
        }
        // y += c * sum_k az[k', k] t2[i', j', k]
        for kk in 0..nm {
            for kp in 0..nm {
                let a = az[kp + kk * nm] * c;
                if a != 0.0 {
                    let src = kk * nm * nm;
                    let dst = kp * nm * nm;
                    for ij in 0..nm * nm {
                        y[ij + dst] += a * t2[ij + src];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_mesh::box_hexes;
    use nkt_net::{cluster, NetId};
    use nkt_partition::{partition_kway, Graph, PartitionOptions};

    fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
        p: usize,
        net: nkt_net::ClusterNetwork,
        f: F,
    ) -> Vec<R> {
        World::builder().ranks(p).net(net).run(f)
    }

    #[test]
    fn oper1d_spd() {
        let op = Oper1d::new(4);
        let mut m = op.mass.clone();
        nkt_blas::dpotrf(op.nm, &mut m, op.nm).expect("1-D mass SPD");
        // Stiffness annihilates constants: K (vertex sum) = 0 row sums
        // for the constant function = psi_0 + psi_P.
        let nm = op.nm;
        for i in 0..nm {
            let s = op.stiff[i] + op.stiff[i + (nm - 1) * nm];
            assert!(s.abs() < 1e-12, "row {i}: {s}");
        }
    }

    #[test]
    fn apply_elem_matches_entries() {
        let op = Oper1d::new(3);
        let nm = op.nm;
        let n3 = nm * nm * nm;
        let (hx, hy, hz, lam) = (0.5, 1.0, 2.0, 3.0);
        let x: Vec<f64> = (0..n3).map(|i| ((i as f64) * 0.37).sin()).collect();
        let mut y = vec![0.0; n3];
        apply_elem(&op, hx, hy, hz, lam, &x, &mut y);
        // Compare against the entrywise definition at a few rows.
        for &row in &[0usize, 5, 17, n3 - 1] {
            let (i1, j1, k1) = (row % nm, (row / nm) % nm, row / (nm * nm));
            let mut s = 0.0;
            for col in 0..n3 {
                let (i2, j2, k2) = (col % nm, (col / nm) % nm, col / (nm * nm));
                s += elem_entry(&op, hx, hy, hz, lam, i1, j1, k1, i2, j2, k2) * x[col];
            }
            assert!((y[row] - s).abs() < 1e-10, "row {row}: {} vs {s}", y[row]);
        }
    }

    #[test]
    fn numbering_counts_on_two_hexes() {
        let mesh = box_hexes(0.0, 2.0, 0.0, 1.0, 0.0, 1.0, 2, 1, 1);
        let p = 3;
        let n = HexNumbering::build(&mesh, p, &[]);
        // Expected: 12 vertices + 20 edges*(p-1) + 11 faces*(p-1)^2 +
        // 2 interiors*(p-1)^3.
        let expect = 12 + 20 * (p - 1) as u64 + 11 * ((p - 1) * (p - 1)) as u64
            + 2 * ((p - 1) * (p - 1) * (p - 1)) as u64;
        assert_eq!(n.ndof_global, expect);
    }

    #[test]
    fn shared_face_dofs_coincide() {
        let mesh = box_hexes(0.0, 2.0, 0.0, 1.0, 0.0, 1.0, 2, 1, 1);
        let p = 2;
        let n = HexNumbering::build(&mesh, p, &[]);
        // Count how many dofs appear in both elements: a full face worth:
        // (p+1)^2 distinct dofs.
        use std::collections::HashSet;
        let a: HashSet<u64> = n.elem_dofs[0].iter().copied().collect();
        let b: HashSet<u64> = n.elem_dofs[1].iter().copied().collect();
        let shared = a.intersection(&b).count();
        assert_eq!(shared, (p + 1) * (p + 1));
    }

    fn poisson_box_test(p_ranks: usize) {
        // -∇²u = 3π² sin(πx)sin(πy)sin(πz) on the unit box, u = 0 on ∂Ω.
        let pi = std::f64::consts::PI;
        let order = 3;
        let mesh = box_hexes(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 2, 2, 2);
        let tags = [BoundaryTag::Inflow, BoundaryTag::Outflow, BoundaryTag::Side];
        let numbering = HexNumbering::build(&mesh, order, &tags);
        let dual = Graph::from_edges(mesh.nelems(), &mesh.dual_edges());
        let part = partition_kway(&dual, p_ranks, &PartitionOptions::default());
        let errs = run(p_ranks, cluster(NetId::T3e), |c| {
            let h = HexHelmholtz::new(c, &mesh, &numbering, &part, 0.0);
            let mut rec = Recorder::disabled();
            // RHS: ∫ f φ per element via quadrature (tensor GLL).
            let mut b = vec![0.0; h.nlocal()];
            build_rhs(&h, &mesh, &numbering, &mut b, |x| {
                3.0 * pi * pi * (pi * x[0]).sin() * (pi * x[1]).sin() * (pi * x[2]).sin()
            });
            h.gs.exchange(c, &mut b, ReduceOp::Sum);
            let mut x = vec![0.0; h.nlocal()];
            let iters = h.pcg(c, &b, &mut x, 1e-10, 500, &mut rec);
            assert!(iters < 500, "PCG did not converge");
            // Check at element vertices (vertex dofs are interpolatory).
            let mut max_err = 0.0f64;
            for (le, &e) in h.my_elems.iter().enumerate() {
                let el = &mesh.elems[e];
                let nm1 = h.p + 1;
                let vidx = [
                    (0, 0, 0),
                    (h.p, 0, 0),
                    (h.p, h.p, 0),
                    (0, h.p, 0),
                    (0, 0, h.p),
                    (h.p, 0, h.p),
                    (h.p, h.p, h.p),
                    (0, h.p, h.p),
                ];
                for (lv, &(i, j, k)) in vidx.iter().enumerate() {
                    let m = i + j * nm1 + k * nm1 * nm1;
                    let l = h.elem_local[le][m];
                    let xyz = mesh.verts[el.verts[lv]];
                    let exact =
                        (pi * xyz[0]).sin() * (pi * xyz[1]).sin() * (pi * xyz[2]).sin();
                    max_err = max_err.max((x[l] - exact).abs());
                }
            }
            max_err
        });
        for &e in &errs {
            assert!(e < 0.02, "P={p_ranks}: vertex error {e}");
        }
    }

    /// Builds ∫ f φ elementwise using tensor GLL quadrature.
    fn build_rhs(
        h: &HexHelmholtz,
        mesh: &Mesh3d,
        _numbering: &HexNumbering,
        b: &mut [f64],
        f: impl Fn([f64; 3]) -> f64,
    ) {
        let op = &h.op1;
        let nq = op.basis.nquad();
        let nm1 = h.p + 1;
        for (le, &e) in h.my_elems.iter().enumerate() {
            let (lo, _) = elem_box(mesh, e).expect("box");
            let [hx, hy, hz] = h.scales[le];
            let jac = hx * hy * hz / 8.0;
            for m in 0..nm1 * nm1 * nm1 {
                let (i, j, k) = (m % nm1, (m / nm1) % nm1, m / (nm1 * nm1));
                let mut s = 0.0;
                for qz in 0..nq {
                    for qy in 0..nq {
                        for qx in 0..nq {
                            let x = [
                                lo[0] + hx * (op.basis.z[qx] + 1.0) / 2.0,
                                lo[1] + hy * (op.basis.z[qy] + 1.0) / 2.0,
                                lo[2] + hz * (op.basis.z[qz] + 1.0) / 2.0,
                            ];
                            s += op.basis.w[qx]
                                * op.basis.w[qy]
                                * op.basis.w[qz]
                                * f(x)
                                * op.basis.val[i][qx]
                                * op.basis.val[j][qy]
                                * op.basis.val[k][qz];
                        }
                    }
                }
                b[h.elem_local[le][m]] += jac * s;
            }
        }
    }

    #[test]
    fn parallel_poisson_single_rank() {
        poisson_box_test(1);
    }

    #[test]
    fn parallel_poisson_two_ranks() {
        poisson_box_test(2);
    }

    #[test]
    fn parallel_poisson_four_ranks() {
        poisson_box_test(4);
    }

    #[test]
    fn helmholtz_lambda_shifts_solution() {
        // (-∇² + λ)u = (3π² + λ) sin sin sin has the same solution for
        // any λ — a strong consistency check on the λ plumbing.
        let pi = std::f64::consts::PI;
        let order = 3;
        let mesh = box_hexes(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 2, 2, 2);
        let tags = [BoundaryTag::Inflow, BoundaryTag::Outflow, BoundaryTag::Side];
        let numbering = HexNumbering::build(&mesh, order, &tags);
        let part = vec![0u8; mesh.nelems()];
        let lam = 25.0;
        let err = run(1, cluster(NetId::T3e), |c| {
            let h = HexHelmholtz::new(c, &mesh, &numbering, &part, lam);
            let mut rec = Recorder::disabled();
            let mut b = vec![0.0; h.nlocal()];
            build_rhs(&h, &mesh, &numbering, &mut b, |x| {
                (3.0 * pi * pi + lam)
                    * (pi * x[0]).sin()
                    * (pi * x[1]).sin()
                    * (pi * x[2]).sin()
            });
            h.gs.exchange(c, &mut b, ReduceOp::Sum);
            let mut x = vec![0.0; h.nlocal()];
            h.pcg(c, &b, &mut x, 1e-10, 500, &mut rec);
            // Probe the center vertex value: u(.5,.5,.5) = 1.
            let mut best = f64::MAX;
            for (le, &e) in h.my_elems.iter().enumerate() {
                let el = &mesh.elems[e];
                let nm1 = h.p + 1;
                for (lv, &(i, j, k)) in [
                    (0, 0, 0),
                    (h.p, 0, 0),
                    (h.p, h.p, 0),
                    (0, h.p, 0),
                    (0, 0, h.p),
                    (h.p, 0, h.p),
                    (h.p, h.p, h.p),
                    (0, h.p, h.p),
                ]
                .iter()
                .enumerate()
                {
                    let xyz = mesh.verts[el.verts[lv]];
                    if (xyz[0] - 0.5).abs() < 1e-12
                        && (xyz[1] - 0.5).abs() < 1e-12
                        && (xyz[2] - 0.5).abs() < 1e-12
                    {
                        let m = i + j * nm1 + k * nm1 * nm1;
                        best = x[h.elem_local[le][m]];
                    }
                }
            }
            (best - 1.0).abs()
        });
        assert!(err[0] < 0.02, "center error {}", err[0]);
    }
}
