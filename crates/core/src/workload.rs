//! Analytic workload generators: produce the operation stream of one time
//! step at *paper scale* without running the (100-million-dof-class)
//! simulation natively.
//!
//! Each generator mirrors, loop for loop, what the corresponding
//! instrumented solver records — validated by tests that compare against
//! actual recordings at small scale. The replay module charges these
//! streams against the 1999 machine/network models to regenerate
//! Tables 1–3 and Figures 12–16.

use crate::opstream::{CommItem, OpRecording, WorkItem};
use crate::timers::Stage;

/// Discretisation parameters of a serial 2-D run (paper Table 1:
/// "902 elements and polynomial order of 8 ... 230,000 degrees of
/// freedom").
#[derive(Debug, Clone, Copy)]
pub struct Serial2dShape {
    /// Element count.
    pub nelems: usize,
    /// Modes per element.
    pub nm: usize,
    /// Quadrature points per element.
    pub nq: usize,
    /// Pressure system size.
    pub ndof_p: usize,
    /// Pressure semi-bandwidth.
    pub kd_p: usize,
    /// Velocity system size.
    pub ndof_v: usize,
    /// Velocity semi-bandwidth.
    pub kd_v: usize,
    /// Splitting history depth in effect (2 after startup).
    pub j: usize,
    /// Statically-condensed solve model: boundary-system size (0 = solve
    /// the full system directly, as the small-scale native solver does).
    pub nboundary: usize,
    /// RCM bandwidth of the condensed boundary system.
    pub kd_condensed: usize,
    /// Interior modes per element (the per-element dense back-solve of
    /// static condensation).
    pub nm_interior: usize,
}

impl Serial2dShape {
    /// True when the paper-practice statically-condensed solve model is
    /// active.
    pub fn condensed(&self) -> bool {
        self.nboundary > 0
    }
}

/// Emits the op stream of one direct solve under the shape's solve model:
/// either a full banded solve, or (paper practice at scale) a
/// statically-condensed boundary solve plus per-element interior
/// back-substitution.
fn solve_items(rec: &mut OpRecording, stage: Stage, s: &Serial2dShape, nrhs: usize, full_n: usize, full_kd: usize) {
    if s.condensed() {
        for _ in 0..nrhs {
            rec.work(stage, WorkItem::BandedSolve { n: s.nboundary, kd: s.kd_condensed });
        }
        // Interior back-solve: two triangular solves with the nm_i × nm_i
        // elemental factor per rhs.
        for _ in 0..s.nelems {
            rec.work(
                stage,
                WorkItem::Gemm { m: s.nm_interior, n: 2 * nrhs, k: s.nm_interior },
            );
        }
    } else {
        for _ in 0..nrhs {
            rec.work(stage, WorkItem::BandedSolve { n: full_n, kd: full_kd });
        }
    }
}

/// One serial time step's op stream (mirrors
/// [`crate::serial2d::Serial2dSolver::step`] with advection on).
pub fn serial_step_workload(s: &Serial2dShape) -> OpRecording {
    let mut rec = OpRecording::new();
    // Stage 1: two modal->quadrature transforms (u, v).
    for _ in 0..2 * s.nelems {
        rec.work(Stage::BwdTransform, WorkItem::Gemm { m: s.nq, n: 1, k: s.nm });
    }
    // Stage 2: two gradient evaluations + pointwise products.
    for _ in 0..2 * s.nelems {
        rec.work(Stage::NonLinear, WorkItem::Gemm { m: s.nq, n: 2, k: s.nm });
    }
    for _ in 0..s.nelems {
        rec.work(
            Stage::NonLinear,
            WorkItem::Stream {
                flops: 6.0 * s.nq as f64,
                bytes: 48.0 * s.nq as f64,
                ws: 48 * s.nq,
            },
        );
    }
    // Stage 3: stiffly-stable weighting.
    for _ in 0..s.nelems {
        rec.work(
            Stage::StifflyStable,
            WorkItem::Stream {
                flops: 8.0 * s.j as f64 * s.nq as f64,
                bytes: 32.0 * s.j as f64 * s.nq as f64,
                ws: 32 * s.nq,
            },
        );
    }
    // Stage 4: pressure RHS projection.
    for _ in 0..s.nelems {
        rec.work(Stage::PressureRhs, WorkItem::Gemm { m: s.nm, n: 2, k: s.nq });
    }
    // Stage 5: one banded pressure solve.
    solve_items(&mut rec, Stage::PressureSolve, s, 1, s.ndof_p, s.kd_p);
    // Stage 6: pressure gradient + two RHS projections.
    for _ in 0..s.nelems {
        rec.work(Stage::ViscousRhs, WorkItem::Gemm { m: s.nq, n: 2, k: s.nm });
        rec.work(Stage::ViscousRhs, WorkItem::Gemm { m: s.nm, n: 2, k: s.nq });
    }
    // Stage 7: two banded viscous solves.
    solve_items(&mut rec, Stage::ViscousSolve, s, 2, s.ndof_v, s.kd_v);
    rec
}

/// Parameters of a per-rank NekTar-F step (paper Table 2: "2 planes ...
/// at each processor", i.e. one Fourier mode per rank at the weak-scaling
/// point).
#[derive(Debug, Clone, Copy)]
pub struct FourierShape {
    /// 2-D element count.
    pub nelems: usize,
    /// Modes per element (2-D).
    pub nm: usize,
    /// Quadrature points per element.
    pub nq: usize,
    /// Total quadrature points per plane.
    pub nq_total: usize,
    /// Assembled 2-D system size.
    pub ndof: usize,
    /// System semi-bandwidth.
    pub kd: usize,
    /// Fourier modes owned per mode-owning rank (slab: per rank;
    /// pencil: per grid row, replicated over the row's columns).
    pub modes_per_rank: usize,
    /// Total z-planes (2 × total modes).
    pub nz: usize,
    /// Rank count (pencil: `pr × pc`).
    pub p: usize,
    /// Process-grid columns: 1 = the paper's slab decomposition (one
    /// world alltoall per transpose); > 1 = the 2-D pencil grid with
    /// `pr = p / pc` rows and two-stage sub-communicator transposes
    /// (DESIGN.md §13), which admits `p` beyond the mode count.
    pub pc: usize,
    /// Splitting depth.
    pub j: usize,
    /// Interior modes per element for the statically-condensed solve
    /// model (0 = plain full banded solves).
    pub nm_interior: usize,
}

/// One NekTar-F per-rank step (mirrors
/// [`crate::fourier::NektarF::step`]).
pub fn fourier_step_workload(s: &FourierShape) -> OpRecording {
    let mut rec = OpRecording::new();
    let mpp = s.modes_per_rank;
    // Stage 1: per element, 3 components × cos/sin planes per mode.
    for _ in 0..3 * mpp * s.nelems {
        rec.work(Stage::BwdTransform, WorkItem::Gemm { m: s.nq, n: 2, k: s.nm });
    }
    // Stage 2: gradient evaluations (x and y of each component's cos/sin
    // planes), the 12-field transpose out, FFTs, pointwise products,
    // 3-field transpose back.
    for _ in 0..6 * mpp * s.nelems {
        rec.work(Stage::NonLinear, WorkItem::Gemm { m: s.nq, n: 2, k: s.nm });
    }
    let pc = s.pc.max(1);
    let pr = s.p / pc;
    let chunk = s.nq_total.div_ceil(s.p);
    let block_out = 12 * mpp * 2 * chunk;
    // Pack the 12-field send buffer and unpack the receive buffer: pure
    // data movement, but at paper scale it is tens of MB per step.
    // Slab exchanges with all p ranks; the pencil's forward transpose
    // only with its pr column peers (no row stage — modes replicate
    // within rows).
    if pc <= 1 {
        rec.work(
            Stage::NonLinear,
            WorkItem::Stream {
                flops: 0.0,
                bytes: 2.0 * 2.0 * (s.p * block_out * 8) as f64,
                ws: s.p * block_out * 8,
            },
        );
        rec.comm(Stage::NonLinear, CommItem::Alltoall { block_bytes: 8 * block_out });
    } else {
        rec.work(
            Stage::NonLinear,
            WorkItem::Stream {
                flops: 0.0,
                bytes: 2.0 * 2.0 * (pr * block_out * 8) as f64,
                ws: pr * block_out * 8,
            },
        );
        rec.comm(
            Stage::NonLinear,
            CommItem::AlltoallPencil {
                col_block_bytes: 8 * block_out,
                row_block_bytes: 0,
                pr,
                pc,
                fields: 12,
                pipelined: false,
            },
        );
    }
    let npts = chunk;
    for _ in 0..12 {
        rec.work(Stage::NonLinear, WorkItem::FftBatch { len: s.nz, batch: npts });
    }
    rec.work(
        Stage::NonLinear,
        WorkItem::Stream {
            flops: 18.0 * (npts * s.nz) as f64,
            bytes: 8.0 * 15.0 * (npts * s.nz) as f64,
            ws: 8 * 15 * (npts * s.nz).max(1),
        },
    );
    for _ in 0..3 {
        rec.work(Stage::NonLinear, WorkItem::FftBatch { len: s.nz, batch: npts });
    }
    let block_back = 3 * mpp * 2 * chunk;
    if pc <= 1 {
        rec.work(
            Stage::NonLinear,
            WorkItem::Stream {
                flops: 0.0,
                bytes: 2.0 * 2.0 * (s.p * block_back * 8) as f64,
                ws: s.p * block_back * 8,
            },
        );
        rec.comm(Stage::NonLinear, CommItem::Alltoall { block_bytes: 8 * block_back });
    } else {
        // Backward pencil transpose: column scatter, then the row-stage
        // allgather whose per-pair block is the whole pr-block bundle.
        rec.work(
            Stage::NonLinear,
            WorkItem::Stream {
                flops: 0.0,
                bytes: 2.0 * 2.0 * ((pr + pc * pr) * block_back * 8) as f64,
                ws: pc * pr * block_back * 8,
            },
        );
        rec.comm(
            Stage::NonLinear,
            CommItem::AlltoallPencil {
                col_block_bytes: 8 * block_back,
                row_block_bytes: 8 * pr * block_back,
                pr,
                pc,
                fields: 3,
                pipelined: false,
            },
        );
    }
    // Stage 3.
    rec.work(
        Stage::StifflyStable,
        WorkItem::Stream {
            flops: (8 * s.j * mpp * 6 * s.nq_total) as f64,
            bytes: (32 * s.j * mpp * 6 * s.nq_total) as f64,
            ws: 32 * s.nq_total,
        },
    );
    // Stages 4-7 per mode.
    for _ in 0..mpp {
        for _ in 0..s.nelems {
            rec.work(Stage::PressureRhs, WorkItem::Gemm { m: s.nm, n: 4, k: s.nq });
        }
        // cos/sin share the factored matrix ("the real and imaginary
        // parts of a Fourier mode sharing the same matrices"): the factor
        // streams from memory once; the second RHS is compute-bound.
        rec.work(Stage::PressureSolve, WorkItem::BandedSolve { n: s.ndof, kd: s.kd });
        rec.work(
            Stage::PressureSolve,
            WorkItem::Stream {
                flops: 4.0 * (s.ndof * (s.kd + 1)) as f64,
                bytes: 32.0 * s.ndof as f64,
                ws: 8 * s.ndof * (s.kd + 1),
            },
        );
        if s.nm_interior > 0 {
            for _ in 0..s.nelems {
                rec.work(
                    Stage::PressureSolve,
                    WorkItem::Gemm { m: s.nm_interior, n: 4, k: s.nm_interior },
                );
            }
        }
        for _ in 0..s.nelems {
            rec.work(Stage::ViscousRhs, WorkItem::Gemm { m: s.nq, n: 4, k: s.nm });
            rec.work(Stage::ViscousRhs, WorkItem::Gemm { m: s.nm, n: 6, k: s.nq });
        }
        // Six RHS (3 components x cos/sin) against one factored matrix.
        rec.work(Stage::ViscousSolve, WorkItem::BandedSolve { n: s.ndof, kd: s.kd });
        for _ in 0..5 {
            rec.work(
                Stage::ViscousSolve,
                WorkItem::Stream {
                    flops: 4.0 * (s.ndof * (s.kd + 1)) as f64,
                    bytes: 32.0 * s.ndof as f64,
                    ws: 8 * s.ndof * (s.kd + 1),
                },
            );
        }
        if s.nm_interior > 0 {
            for _ in 0..s.nelems {
                rec.work(
                    Stage::ViscousSolve,
                    WorkItem::Gemm { m: s.nm_interior, n: 12, k: s.nm_interior },
                );
            }
        }
    }
    rec
}

/// Parameters of a per-rank NekTar-ALE step (paper Table 3: "15,870
/// elements ... polynomial order of 4", 4,062,720 dof, strong scaling).
#[derive(Debug, Clone, Copy)]
pub struct AleShape {
    /// Elements owned by this rank.
    pub nelems_local: usize,
    /// Modes per element ((P+1)³).
    pub nm: usize,
    /// Quadrature points per element.
    pub nq3: usize,
    /// Local dof count.
    pub nlocal: usize,
    /// Halo dofs exchanged per GS call.
    pub halo: usize,
    /// Neighbour ranks in the partition.
    pub neighbors: usize,
    /// PCG iterations for the pressure solve.
    pub press_iters: usize,
    /// PCG iterations per velocity component.
    pub visc_iters: usize,
    /// PCG iterations for the mesh-velocity solve.
    pub mesh_iters: usize,
    /// 1-D mode count (P+1) for the sum-factored apply cost.
    pub nm1: usize,
    /// Splitting depth.
    pub j: usize,
    /// Interior-element fraction of the split-phase gather-scatter
    /// window (0.0 = blocking exchanges; see
    /// [`crate::opstream::CommItem::GsExchange`]).
    pub gs_overlap: f64,
    /// Per-stage overlap windows (indexed by [`Stage::index`]),
    /// overriding `gs_overlap` where present — e.g. measured windows
    /// from a native `NKT_CALIB` run instead of the analytic
    /// surface-to-volume estimate.
    pub stage_overlap: Option<[f64; 7]>,
}

impl AleShape {
    /// The overlap window a GS exchange in `stage` should carry: the
    /// per-stage measured value when one is loaded, else the uniform
    /// `gs_overlap`.
    pub fn overlap_for(&self, stage: Stage) -> f64 {
        self.stage_overlap.map_or(self.gs_overlap, |w| w[stage.index()])
    }
}

/// One NekTar-ALE per-rank step (mirrors
/// [`crate::ale::NektarAle::step`]).
pub fn ale_step_workload(s: &AleShape) -> OpRecording {
    let mut rec = OpRecording::new();
    // Stage 1: 3 sum-factorized transforms (tensor contractions scale
    // with the 1-D mode count, not the full 3-D basis).
    for _ in 0..3 * s.nelems_local {
        rec.work(Stage::BwdTransform, WorkItem::Gemm { m: s.nq3, n: 3, k: s.nm1 });
    }
    // Stage 2: sum-factorized gradients + ALE products + vertex updates.
    for _ in 0..3 * s.nelems_local {
        rec.work(Stage::NonLinear, WorkItem::Gemm { m: s.nq3, n: 9, k: s.nm1 });
    }
    rec.work(
        Stage::NonLinear,
        WorkItem::Stream {
            flops: 21.0 * (s.nelems_local * s.nq3) as f64,
            bytes: 8.0 * 16.0 * (s.nelems_local * s.nq3) as f64,
            ws: 8 * 16 * s.nq3,
        },
    );
    // Stage 3.
    rec.work(
        Stage::StifflyStable,
        WorkItem::Stream {
            flops: (12 * s.j * s.nelems_local * s.nq3) as f64,
            bytes: (48 * s.j * s.nelems_local * s.nq3) as f64,
            ws: 48 * s.nq3,
        },
    );
    // Stage 4: divergence RHS.
    for _ in 0..s.nelems_local {
        rec.work(Stage::PressureRhs, WorkItem::Gemm { m: s.nq3, n: 3, k: s.nm1 });
    }
    rec.comm(
        Stage::PressureRhs,
        CommItem::GsExchange {
            neighbors: s.neighbors,
            bytes: 8 * s.halo,
            overlap: s.overlap_for(Stage::PressureRhs),
        },
    );
    // Stage 5: pressure PCG. Each iteration: elemental applies (three
    // sum-factored contractions per term, ~O(nm1^4) each) + GS + dots.
    pcg_workload(&mut rec, Stage::PressureSolve, s, s.press_iters);
    // Stage 6: viscous RHS (gradient of p + 3 projections) + GS.
    for _ in 0..s.nelems_local {
        rec.work(Stage::ViscousRhs, WorkItem::Gemm { m: s.nq3, n: 3, k: s.nm1 });
        rec.work(Stage::ViscousRhs, WorkItem::Gemm { m: s.nm, n: 3, k: s.nq3 });
    }
    rec.comm(
        Stage::ViscousRhs,
        CommItem::GsExchange {
            neighbors: s.neighbors,
            bytes: 8 * 3 * s.halo,
            overlap: s.overlap_for(Stage::ViscousRhs),
        },
    );
    // Stage 7: three velocity PCG solves + one mesh-velocity solve.
    pcg_workload(&mut rec, Stage::ViscousSolve, s, 3 * s.visc_iters);
    pcg_workload(&mut rec, Stage::ViscousSolve, s, s.mesh_iters);
    rec
}

fn pcg_workload(rec: &mut OpRecording, stage: Stage, s: &AleShape, iters: usize) {
    for _ in 0..iters {
        // Elemental sum-factored Helmholtz apply: 4 terms × 3
        // contractions, each ~2·nm1⁴ flops.
        for _ in 0..s.nelems_local {
            rec.work(
                stage,
                WorkItem::Gemm { m: s.nm1 * s.nm1, n: s.nm1, k: s.nm1 },
            );
        }
        // One GS halo exchange per iteration.
        rec.comm(
            stage,
            CommItem::GsExchange {
                neighbors: s.neighbors,
                bytes: 8 * s.halo,
                overlap: s.overlap_for(stage),
            },
        );
        // Three global dot products (allreduce of one scalar).
        for _ in 0..3 {
            rec.comm(stage, CommItem::Allreduce { bytes: 8 });
        }
        // Vector updates: x, r, z, p ~ 6 n flops.
        rec.work(
            stage,
            WorkItem::Stream {
                flops: 6.0 * s.nlocal as f64,
                bytes: 8.0 * 10.0 * s.nlocal as f64,
                // PCG touches ~10 full-length vectors per iteration: the
                // working set is the whole bundle, not one vector.
                ws: 80 * s.nlocal,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opstream::Recorder;
    use crate::serial2d::{Serial2dSolver, SolverConfig};
    use nkt_mesh::rect_quads;

    /// The generated serial workload must match the instrumented solver's
    /// actual op stream (structure and counts).
    #[test]
    fn serial_workload_matches_recorder() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let order = 4;
        let cfg = SolverConfig { order, dt: 1e-3, nu: 0.01, scheme_order: 2, advect: true };
        let mut s = Serial2dSolver::new(mesh, cfg, |_| 0.0, |_| 0.0);
        s.set_initial(|_| 1.0, |_| 0.0);
        s.step(); // warm up so j = 2
        s.recorder = Recorder::enabled();
        s.step();
        let actual = s.recorder.take().unwrap();
        let basis = s.viscous.basis(0);
        let shape = Serial2dShape {
            nelems: s.viscous.mesh.nelems(),
            nm: basis.nmodes(),
            nq: basis.nquad(),
            ndof_p: s.pressure.asm.ndof,
            kd_p: s.pressure.matrix.kd(),
            ndof_v: s.viscous.asm.ndof,
            kd_v: s.viscous.matrix.kd(),
            j: 2,
            nboundary: 0,
            kd_condensed: 0,
            nm_interior: 0,
        };
        let model = serial_step_workload(&shape);
        // Same item counts per stage.
        for stage in crate::timers::Stage::ALL {
            let count = |r: &OpRecording| {
                r.work.iter().filter(|(st, _)| *st == stage).count()
            };
            assert_eq!(
                count(&actual),
                count(&model),
                "stage {stage:?}: item counts differ"
            );
        }
        // Total flops agree (identical items).
        let fa = actual.total_flops();
        let fm = model.total_flops();
        assert!(
            (fa - fm).abs() < 1e-6 * fa.max(1.0),
            "flops differ: actual {fa} vs model {fm}"
        );
    }

    #[test]
    fn fourier_workload_has_two_alltoalls() {
        let shape = FourierShape {
            nelems: 902,
            nm: 81,
            nq: 100,
            nq_total: 90_200,
            ndof: 57_000,
            kd: 600,
            modes_per_rank: 1,
            nz: 8,
            p: 4,
            pc: 1,
            j: 2,
            nm_interior: 0,
        };
        let rec = fourier_step_workload(&shape);
        assert_eq!(rec.alltoall_count(), 2);
        assert!(rec.total_flops() > 0.0);
        // A pencil grid of the same total rank count still records two
        // transposes (each a two-stage exchange), with unchanged flops.
        let pencil = fourier_step_workload(&FourierShape { pc: 2, ..shape });
        assert_eq!(pencil.alltoall_count(), 2);
        assert_eq!(pencil.total_flops(), rec.total_flops());
    }

    #[test]
    fn ale_workload_scales_with_iterations() {
        let base = AleShape {
            nelems_local: 100,
            nm: 125,
            nq3: 216,
            nlocal: 10_000,
            halo: 800,
            neighbors: 4,
            press_iters: 100,
            visc_iters: 30,
            mesh_iters: 50,
            nm1: 5,
            j: 2,
            gs_overlap: 0.0,
            stage_overlap: None,
        };
        let rec1 = ale_step_workload(&base);
        let rec2 = ale_step_workload(&AleShape { press_iters: 200, ..base });
        assert!(rec2.total_flops() > rec1.total_flops());
        assert!(rec2.comm.len() > rec1.comm.len());
    }

    /// The overlap fraction rides every GsExchange the ALE step emits,
    /// and only changes the comm stream (the work stream is identical).
    #[test]
    fn ale_workload_threads_gs_overlap_through_every_exchange() {
        let base = AleShape {
            nelems_local: 50,
            nm: 125,
            nq3: 216,
            nlocal: 5_000,
            halo: 400,
            neighbors: 4,
            press_iters: 10,
            visc_iters: 5,
            mesh_iters: 8,
            nm1: 5,
            j: 2,
            gs_overlap: 0.0,
            stage_overlap: None,
        };
        let blocking = ale_step_workload(&base);
        let overlapped = ale_step_workload(&AleShape { gs_overlap: 0.75, ..base });
        assert_eq!(blocking.total_flops(), overlapped.total_flops());
        let fracs: Vec<f64> = overlapped
            .comm
            .iter()
            .filter_map(|(_, c)| match c {
                CommItem::GsExchange { overlap, .. } => Some(*overlap),
                _ => None,
            })
            .collect();
        assert!(!fracs.is_empty());
        assert!(fracs.iter().all(|&f| f == 0.75));

        // Per-stage measured windows override the uniform estimate,
        // stage by stage, without touching the work stream.
        let mut windows = [0.75; 7];
        windows[Stage::PressureSolve.index()] = 0.9;
        windows[Stage::PressureRhs.index()] = 0.1;
        let measured = ale_step_workload(&AleShape {
            gs_overlap: 0.75,
            stage_overlap: Some(windows),
            ..base
        });
        assert_eq!(blocking.total_flops(), measured.total_flops());
        for (stage, c) in &measured.comm {
            if let CommItem::GsExchange { overlap, .. } = c {
                assert_eq!(*overlap, windows[stage.index()], "stage {}", stage.name());
            }
        }
    }
}
