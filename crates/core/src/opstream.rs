//! Operation-stream recording: the bridge between the native solvers and
//! the 1999-machine models (DESIGN.md §2).
//!
//! The solvers emit one [`WorkItem`] per computational kernel invocation
//! and one [`CommItem`] per communication operation, each tagged with the
//! paper's [`Stage`]. `replay` charges the stream against an
//! `nkt-machine` CPU model and an `nkt-net` network model to produce the
//! cross-machine application timings (Tables 1–3, Figures 12–16) that we
//! cannot measure natively.

use crate::timers::Stage;

/// One computational kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkItem {
    /// A streaming vector operation: `flops` floating ops over `bytes` of
    /// traffic with resident working set `ws` bytes (dcopy/daxpy/vmul
    /// class).
    Stream {
        /// Floating-point operations.
        flops: f64,
        /// Bytes moved.
        bytes: f64,
        /// Working-set size in bytes (selects the cache level).
        ws: usize,
    },
    /// Forward/backward substitution with a banded Cholesky factor of
    /// order `n`, semi-bandwidth `kd`.
    BandedSolve {
        /// Matrix order.
        n: usize,
        /// Semi-bandwidth.
        kd: usize,
    },
    /// A batch of 1-D FFTs.
    FftBatch {
        /// Transform length.
        len: usize,
        /// Number of transforms.
        batch: usize,
    },
    /// Dense matrix multiply m × k by k × n (elemental operators; paper:
    /// "most of the calls to dgemm ... are for small n").
    Gemm {
        /// Rows of the result.
        m: usize,
        /// Columns of the result.
        n: usize,
        /// Inner dimension.
        k: usize,
    },
}

/// One communication operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommItem {
    /// `MPI_Alltoall` with the given per-pair block size in bytes.
    Alltoall {
        /// Bytes exchanged between each pair of ranks.
        block_bytes: usize,
    },
    /// A transpose exchange split into `fields` back-to-back nonblocking
    /// alltoalls of `block_bytes / fields` each, pipelined against the
    /// per-field FFT work recorded in the same stage (DESIGN.md §11).
    /// Replay may hide up to `(fields-1)/fields` of the wall time behind
    /// that FFT work.
    AlltoallPipelined {
        /// Total bytes exchanged between each pair of ranks (all fields).
        block_bytes: usize,
        /// Number of per-field exchanges the transfer is split into.
        fields: usize,
    },
    /// The two-stage pencil transpose of a `pr × pc` process grid
    /// (DESIGN.md §13): a column-communicator alltoall (groups of `pr`,
    /// one per grid column, all columns concurrent on the fabric)
    /// followed by a row-communicator alltoall (groups of `pc`, one per
    /// row). `row_block_bytes = 0` means the row stage degenerates — the
    /// forward transpose needs no row exchange because modes are
    /// replicated within a row.
    AlltoallPencil {
        /// Total per-pair bytes of the column exchange (all fields).
        col_block_bytes: usize,
        /// Total per-pair bytes of the row exchange (all fields; 0 = no
        /// row stage).
        row_block_bytes: usize,
        /// Process-grid rows (mode-owning groups).
        pr: usize,
        /// Process-grid columns (replicas per mode block).
        pc: usize,
        /// Number of per-field exchanges the transfer is split into.
        fields: usize,
        /// Pipelined per field like [`CommItem::AlltoallPipelined`]:
        /// replay may hide `(fields-1)/fields` of the wall time behind
        /// same-stage FFT work.
        pipelined: bool,
    },
    /// Global reduction of `bytes` payload.
    Allreduce {
        /// Payload size in bytes.
        bytes: usize,
    },
    /// Gather-scatter halo exchange: `neighbors` pairwise messages of
    /// `bytes` each.
    GsExchange {
        /// Number of neighbour ranks.
        neighbors: usize,
        /// Bytes per neighbour message.
        bytes: usize,
        /// Measured fraction of same-stage elemental work available to
        /// hide the exchange behind (the split-phase window): 0.0 =
        /// blocking, interior-work share of the element schedule when
        /// overlapped. Replay credits min(gs wall, overlap × gemm work).
        overlap: f64,
    },
}

/// A recorded time step (or any instrumented region).
#[derive(Debug, Clone, Default)]
pub struct OpRecording {
    /// Kernel invocations with their stage tags.
    pub work: Vec<(Stage, WorkItem)>,
    /// Communication operations with their stage tags.
    pub comm: Vec<(Stage, CommItem)>,
}

impl OpRecording {
    /// Creates an empty recording.
    pub fn new() -> OpRecording {
        OpRecording::default()
    }

    /// Records a kernel invocation.
    pub fn work(&mut self, stage: Stage, item: WorkItem) {
        self.work.push((stage, item));
    }

    /// Records a communication operation.
    pub fn comm(&mut self, stage: Stage, item: CommItem) {
        self.comm.push((stage, item));
    }

    /// Total recorded flops.
    pub fn total_flops(&self) -> f64 {
        self.work
            .iter()
            .map(|&(_, w)| match w {
                WorkItem::Stream { flops, .. } => flops,
                WorkItem::BandedSolve { n, kd } => 4.0 * n as f64 * (kd + 1) as f64,
                WorkItem::FftBatch { len, batch } => {
                    5.0 * len as f64 * (len as f64).log2().max(1.0) * batch as f64
                }
                WorkItem::Gemm { m, n, k } => 2.0 * (m * n * k) as f64,
            })
            .sum()
    }

    /// Number of Alltoall transposes recorded (blocking, pipelined, or
    /// two-stage pencil — one transpose counts once, not per field or
    /// per stage).
    pub fn alltoall_count(&self) -> usize {
        self.comm
            .iter()
            .filter(|(_, c)| {
                matches!(
                    c,
                    CommItem::Alltoall { .. }
                        | CommItem::AlltoallPipelined { .. }
                        | CommItem::AlltoallPencil { .. }
                )
            })
            .count()
    }
}

/// A sink the solvers write into: either a live recorder or disabled
/// (zero overhead beyond a branch).
#[derive(Debug, Default)]
pub struct Recorder {
    /// The recording being built, if enabled.
    pub rec: Option<OpRecording>,
}

impl Recorder {
    /// An enabled recorder.
    pub fn enabled() -> Recorder {
        Recorder { rec: Some(OpRecording::new()) }
    }

    /// A disabled recorder.
    pub fn disabled() -> Recorder {
        Recorder { rec: None }
    }

    /// Records a kernel invocation if enabled.
    #[inline]
    pub fn work(&mut self, stage: Stage, item: WorkItem) {
        if let Some(r) = &mut self.rec {
            r.work(stage, item);
        }
    }

    /// Records a communication op if enabled.
    #[inline]
    pub fn comm(&mut self, stage: Stage, item: CommItem) {
        if let Some(r) = &mut self.rec {
            r.comm(stage, item);
        }
    }

    /// Takes the recording out.
    pub fn take(&mut self) -> Option<OpRecording> {
        self.rec.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates() {
        let mut r = Recorder::enabled();
        r.work(Stage::NonLinear, WorkItem::Stream { flops: 100.0, bytes: 800.0, ws: 800 });
        r.work(Stage::PressureSolve, WorkItem::BandedSolve { n: 10, kd: 2 });
        r.comm(Stage::NonLinear, CommItem::Alltoall { block_bytes: 4096 });
        let rec = r.take().unwrap();
        assert_eq!(rec.work.len(), 2);
        assert_eq!(rec.alltoall_count(), 1);
        assert_eq!(rec.total_flops(), 100.0 + 4.0 * 10.0 * 3.0);
    }

    #[test]
    fn pipelined_transpose_counts_as_one_alltoall() {
        let mut r = Recorder::enabled();
        r.comm(Stage::NonLinear, CommItem::Alltoall { block_bytes: 4096 });
        r.comm(
            Stage::NonLinear,
            CommItem::AlltoallPipelined { block_bytes: 4096, fields: 12 },
        );
        r.comm(
            Stage::NonLinear,
            CommItem::AlltoallPencil {
                col_block_bytes: 4096,
                row_block_bytes: 8192,
                pr: 4,
                pc: 2,
                fields: 3,
                pipelined: true,
            },
        );
        assert_eq!(r.take().unwrap().alltoall_count(), 3);
    }

    #[test]
    fn disabled_recorder_is_noop() {
        let mut r = Recorder::disabled();
        r.work(Stage::NonLinear, WorkItem::Gemm { m: 2, n: 2, k: 2 });
        assert!(r.take().is_none());
    }
}
