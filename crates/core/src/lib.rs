//! # nektar — spectral/hp element Navier–Stokes solvers
//!
//! Rust re-implementation of the application codes benchmarked in the
//! SC'99 paper (§1.3, §4): the NekTar family.
//!
//! * [`serial2d`] — the serial 2-D incompressible solver used for the
//!   bluff-body single-node benchmark (Table 1, Figure 12), built on the
//!   stiffly-stable splitting scheme ([`splitting`]) with banded direct
//!   Poisson/Helmholtz solves.
//! * [`fourier`] — *NekTar-F*: Fourier × spectral/hp parallel solver
//!   (Table 2, Figures 13–14). One rank per group of Fourier planes;
//!   the nonlinear step transposes with `MPI_Alltoall` exactly as the
//!   paper describes. The transpose itself lives behind the [`decomp`]
//!   layer: the paper's 1-D slab, or a 2-D pencil process grid whose
//!   row/column sub-communicator exchanges scale past P = nz.
//! * [`hex3d`] + [`ale`] — *NekTar-ALE*: fully 3-D hexahedral spectral/hp
//!   discretisation with element-based domain decomposition
//!   (nkt-partition), gather-scatter halo exchange (nkt-gs), diagonally
//!   preconditioned CG, moving-mesh (ALE) terms (Table 3, Figures 15–16).
//! * [`timers`] — the paper's 7-stage breakdown of a time step
//!   (Figure 12) and CPU-vs-wall ledgers.
//! * [`opstream`] / [`workload`] / [`replay`] — the operation-stream
//!   recorder and the model replay that regenerates the paper's
//!   cross-machine application tables on the `nkt-machine`/`nkt-net`
//!   models (DESIGN.md §2 substitution).

#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]
pub mod ale;
pub mod decomp;
pub mod fourier;
pub mod hex3d;
pub mod opstream;
pub mod replay;
pub mod serial2d;
pub mod splitting;
pub mod stats;
pub mod timers;
pub mod workload;

pub use serial2d::{Serial2dSolver, SolverConfig};
pub use splitting::StifflyStable;
pub use timers::{Stage, StageClock};
