//! NekTar-ALE: fully 3-D Navier–Stokes with moving geometry
//! (paper §4.2.2, Table 3, Figures 15–16).
//!
//! Built on the [`crate::hex3d`] distributed discretisation: element-based
//! domain decomposition (nkt-partition), gather-scatter halo exchange
//! (nkt-gs), and diagonally preconditioned CG solves. The two ALE extras
//! the paper describes are both present:
//!
//! * "a term is added in the non-linear step, associated with the updating
//!   of the positions of the vertices of each element" — advection uses
//!   the relative velocity (u − w_mesh) and vertex positions move each
//!   step;
//! * "An extra Helmholtz solve ... associated with the calculation of the
//!   velocity of the moving mesh" — a Laplace solve with the body-motion
//!   Dirichlet data runs every step.
//!
//! **Motion model (substitution, see DESIGN.md):** mesh deformation is
//! plane-wise along x (each x-plane of vertices translates rigidly), which
//! keeps every element an axis-aligned box — the class the rectilinear
//! operators support. The mesh-velocity Helmholtz solve still runs at full
//! cost; the prescribed plane-wise field drives both the ALE advection
//! term and the vertex updates so the two stay consistent.

use crate::hex3d::{elem_box, HexHelmholtz, HexNumbering};
use crate::opstream::{Recorder, WorkItem};
use crate::splitting::StifflyStable;
use crate::timers::{Stage, StageClock, StageTimer};
use nkt_mesh::{BoundaryTag, Mesh3d};
use nkt_mpi::prelude::*;
use std::collections::VecDeque;

/// ALE solver configuration.
#[derive(Debug, Clone)]
pub struct AleConfig {
    /// Polynomial order (paper: 4 for the flapping wing).
    pub order: usize,
    /// Time step.
    pub dt: f64,
    /// Kinematic viscosity (paper: Re = 1000).
    pub nu: f64,
    /// Splitting order.
    pub scheme_order: usize,
    /// Include advection.
    pub advect: bool,
    /// Plane-wise flapping amplitude (0 = static mesh).
    pub motion_amp: f64,
    /// Flapping angular frequency.
    pub motion_omega: f64,
    /// PCG relative tolerance.
    pub pcg_tol: f64,
    /// PCG iteration cap.
    pub pcg_max_iter: usize,
}

impl Default for AleConfig {
    fn default() -> Self {
        AleConfig {
            order: 3,
            dt: 1e-3,
            nu: 1e-3,
            scheme_order: 2,
            advect: true,
            motion_amp: 0.0,
            motion_omega: 2.0 * std::f64::consts::PI,
            pcg_tol: 1e-8,
            pcg_max_iter: 400,
        }
    }
}

/// Per-rank NekTar-ALE solver.
pub struct NektarAle {
    /// Configuration.
    pub cfg: AleConfig,
    scheme: StifflyStable,
    /// The (current) mesh; vertex positions move under the ALE motion.
    pub mesh: Mesh3d,
    /// Initial x-coordinates of every vertex (motion reference).
    verts0_x: Vec<f64>,
    /// Viscous operator (λ = γ₀/(νΔt), Dirichlet velocity walls).
    pub vel_op: HexHelmholtz,
    /// Ramp-order viscous operators for BDF startup.
    ramp_ops: Vec<HexHelmholtz>,
    /// Pressure operator (λ = 0, Dirichlet at outflow).
    pub press_op: HexHelmholtz,
    /// Mass operator (for L2 projections).
    mass_op: HexHelmholtz,
    /// Mesh-velocity Laplace operator (the ALE extra solve).
    mesh_op: HexHelmholtz,
    /// Local dofs of `mesh_op` lying on Wall (body) faces, which carry
    /// the body speed as Dirichlet data.
    wall_local: Vec<usize>,
    /// Velocity modal coefficients (3 components, rank-local dofs).
    pub u: [Vec<f64>; 3],
    /// Pressure coefficients.
    pub p: Vec<f64>,
    /// Velocity history at quadrature points.
    hist_vel: VecDeque<[Vec<f64>; 3]>,
    /// Nonlinear-term history.
    hist_n: VecDeque<[Vec<f64>; 3]>,
    /// Per owned element: motion shape factor at (lo, hi) x-faces.
    motion_shape: Vec<(f64, f64)>,
    /// Simulated time.
    pub time: f64,
    /// Stage clock.
    pub clock: StageClock,
    /// Recorder for model replay.
    pub recorder: Recorder,
    /// PCG iteration counts of the last step (pressure, velocity,
    /// mesh-velocity).
    pub last_iters: (usize, usize, usize),
    steps_taken: usize,
}

/// Motion shape: 0 at the domain x-extents, 1 in the central band (where
/// the wing sits), linear ramps between.
fn motion_shape_fn(x: f64, x_min: f64, x_max: f64) -> f64 {
    let mid_lo = x_min + 0.3 * (x_max - x_min);
    let mid_hi = x_min + 0.5 * (x_max - x_min);
    if x <= x_min || x >= x_max {
        0.0
    } else if x < mid_lo {
        (x - x_min) / (mid_lo - x_min)
    } else if x <= mid_hi {
        1.0
    } else {
        (x_max - x) / (x_max - mid_hi)
    }
}

impl NektarAle {
    /// Builds the solver (collective). `part` assigns elements to ranks.
    pub fn new(comm: &mut Comm, mesh: Mesh3d, part: &[u8], cfg: AleConfig) -> NektarAle {
        let scheme = StifflyStable::new(cfg.scheme_order);
        let vel_tags = [BoundaryTag::Inflow, BoundaryTag::Wall, BoundaryTag::Side];
        let num_v = HexNumbering::build(&mesh, cfg.order, &vel_tags);
        let num_p = HexNumbering::build(&mesh, cfg.order, &[BoundaryTag::Outflow]);
        let num_m = HexNumbering::build(
            &mesh,
            cfg.order,
            &[
                BoundaryTag::Inflow,
                BoundaryTag::Outflow,
                BoundaryTag::Side,
                BoundaryTag::Wall,
            ],
        );
        let lambda = scheme.gamma0 / (cfg.nu * cfg.dt);
        let vel_op = HexHelmholtz::new(comm, &mesh, &num_v, part, lambda);
        let ramp_ops: Vec<HexHelmholtz> = (1..cfg.scheme_order)
            .map(|j| {
                let lam = StifflyStable::new(j).gamma0 / (cfg.nu * cfg.dt);
                HexHelmholtz::new(comm, &mesh, &num_v, part, lam)
            })
            .collect();
        let press_op = HexHelmholtz::new(comm, &mesh, &num_p, part, 0.0);
        assert!(
            !num_p.dirichlet_global.is_empty(),
            "pressure problem needs an outflow boundary (or pin)"
        );
        let mut mass_op = HexHelmholtz::new(comm, &mesh, &num_v, part, 1.0);
        mass_op.stiff_coef = 0.0;
        mass_op.rebuild_diag(comm);
        let mesh_op = HexHelmholtz::new(comm, &mesh, &num_m, part, 0.0);
        let num_wall = HexNumbering::build(&mesh, cfg.order, &[BoundaryTag::Wall]);
        let wall_local: Vec<usize> = mesh_op
            .local_gids
            .iter()
            .enumerate()
            .filter(|(_, g)| num_wall.dirichlet_global.contains_key(g))
            .map(|(l, _)| l)
            .collect();
        let n = vel_op.nlocal();
        let x_min = mesh.verts.iter().map(|v| v[0]).fold(f64::MAX, f64::min);
        let x_max = mesh.verts.iter().map(|v| v[0]).fold(f64::MIN, f64::max);
        let motion_shape: Vec<(f64, f64)> = vel_op
            .my_elems
            .iter()
            .map(|&e| {
                let (lo, hi) = elem_box(&mesh, e).expect("box");
                (
                    motion_shape_fn(lo[0], x_min, x_max),
                    motion_shape_fn(hi[0], x_min, x_max),
                )
            })
            .collect();
        let verts0_x = mesh.verts.iter().map(|v| v[0]).collect();
        NektarAle {
            cfg,
            scheme,
            mesh,
            verts0_x,
            vel_op,
            ramp_ops,
            press_op,
            mass_op,
            mesh_op,
            wall_local,
            u: [vec![0.0; n], vec![0.0; n], vec![0.0; n]],
            p: Vec::new(),
            hist_vel: VecDeque::new(),
            hist_n: VecDeque::new(),
            motion_shape,
            time: 0.0,
            clock: StageClock::new(),
            recorder: Recorder::disabled(),
            last_iters: (0, 0, 0),
            steps_taken: 0,
        }
    }

    /// Quadrature points per element.
    fn nq3(&self) -> usize {
        self.vel_op.op1.basis.nquad().pow(3)
    }

    /// Sets the initial velocity by parallel L2 projection (mass-matrix
    /// PCG solve). Collective.
    pub fn set_initial(&mut self, comm: &mut Comm, f: impl Fn([f64; 3]) -> [f64; 3]) {
        for c in 0..3 {
            let mut rhs = vec![0.0; self.vel_op.nlocal()];
            self.project_rhs(&mut rhs, |x| f(x)[c]);
            self.vel_op.gs.exchange(comm, &mut rhs, ReduceOp::Sum);
            let mut x = vec![0.0; self.vel_op.nlocal()];
            let mut rec = Recorder::disabled();
            self.mass_op
                .pcg(comm, &rhs, &mut x, self.cfg.pcg_tol, self.cfg.pcg_max_iter, &mut rec);
            self.u[c] = x;
        }
        self.hist_vel.clear();
        self.hist_n.clear();
        self.time = 0.0;
        self.steps_taken = 0;
    }

    /// Builds ∫ f φ elementwise into `rhs` (local, unsummed).
    fn project_rhs(&self, rhs: &mut [f64], f: impl Fn([f64; 3]) -> f64) {
        let op = &self.vel_op.op1;
        let nq = op.basis.nquad();
        let nm1 = self.cfg.order + 1;
        for (le, &e) in self.vel_op.my_elems.iter().enumerate() {
            let (lo, _) = elem_box(&self.mesh, e).expect("box");
            let [hx, hy, hz] = self.vel_op.scales[le];
            let jac = hx * hy * hz / 8.0;
            // Evaluate f at the tensor points once.
            let mut fq = vec![0.0; nq * nq * nq];
            for qz in 0..nq {
                for qy in 0..nq {
                    for qx in 0..nq {
                        let x = [
                            lo[0] + hx * (op.basis.z[qx] + 1.0) / 2.0,
                            lo[1] + hy * (op.basis.z[qy] + 1.0) / 2.0,
                            lo[2] + hz * (op.basis.z[qz] + 1.0) / 2.0,
                        ];
                        fq[qx + qy * nq + qz * nq * nq] = f(x)
                            * op.basis.w[qx]
                            * op.basis.w[qy]
                            * op.basis.w[qz]
                            * jac;
                    }
                }
            }
            // Project: rhs_m = sum_q B_m(q) fq(q), sum-factorized.
            let proj = quad_to_modal(op, &fq);
            for m in 0..nm1 * nm1 * nm1 {
                rhs[self.vel_op.elem_local[le][m]] += proj[m];
            }
        }
    }

    /// Modal → quadrature values for all owned elements (flattened,
    /// `nq³` per element).
    fn to_quad(&self, coeffs: &[f64]) -> Vec<f64> {
        let op = &self.vel_op.op1;
        let nm1 = self.cfg.order + 1;
        let nq3 = self.nq3();
        let mut out = vec![0.0; self.vel_op.my_elems.len() * nq3];
        let mut xl = vec![0.0; nm1 * nm1 * nm1];
        for (le, locals) in self.vel_op.elem_local.iter().enumerate() {
            for (m, &l) in locals.iter().enumerate() {
                xl[m] = coeffs[l];
            }
            let vals = modal_to_quad(op, &xl);
            out[le * nq3..(le + 1) * nq3].copy_from_slice(&vals);
        }
        out
    }

    /// Physical-space gradient at quadrature points (3 components).
    fn grad_quad(&self, coeffs: &[f64], op_src: &HexHelmholtz) -> [Vec<f64>; 3] {
        let op = &op_src.op1;
        let nm1 = self.cfg.order + 1;
        let nq3 = self.nq3();
        let ne = op_src.my_elems.len();
        let mut gx = vec![0.0; ne * nq3];
        let mut gy = vec![0.0; ne * nq3];
        let mut gz = vec![0.0; ne * nq3];
        let mut xl = vec![0.0; nm1 * nm1 * nm1];
        for (le, locals) in op_src.elem_local.iter().enumerate() {
            let [hx, hy, hz] = op_src.scales[le];
            for (m, &l) in locals.iter().enumerate() {
                xl[m] = coeffs[l];
            }
            let (dx, dy, dz) = modal_to_quad_grad(op, &xl);
            for q in 0..nq3 {
                gx[le * nq3 + q] = dx[q] * 2.0 / hx;
                gy[le * nq3 + q] = dy[q] * 2.0 / hy;
                gz[le * nq3 + q] = dz[q] * 2.0 / hz;
            }
        }
        [gx, gy, gz]
    }

    /// Mesh velocity (x-component) at the quadrature points of owned
    /// elements under the plane-wise flapping motion.
    fn mesh_velocity_quad(&self) -> Vec<f64> {
        let nq = self.vel_op.op1.basis.nquad();
        let nq3 = self.nq3();
        let speed = self.cfg.motion_amp * self.cfg.motion_omega * (self.cfg.motion_omega * self.time).cos();
        let mut out = vec![0.0; self.vel_op.my_elems.len() * nq3];
        if speed == 0.0 {
            return out;
        }
        for (le, &(s_lo, s_hi)) in self.motion_shape.iter().enumerate() {
            for qz in 0..nq {
                for qy in 0..nq {
                    for qx in 0..nq {
                        let t = (self.vel_op.op1.basis.z[qx] + 1.0) / 2.0;
                        let s = s_lo + (s_hi - s_lo) * t;
                        out[le * nq3 + qx + qy * nq + qz * nq * nq] = speed * s;
                    }
                }
            }
        }
        out
    }

    /// Advances one step. Collective. Returns the step's stage times
    /// (host compute; solve stages additionally carry virtual comm time).
    pub fn step(&mut self, comm: &mut Comm) -> StageClock {
        let step_span = nkt_trace::span_v("step", "step", comm.wtime());
        let mut sc = StageClock::new();
        let dt = self.cfg.dt;
        let nu = self.cfg.nu;
        let nq3 = self.nq3();
        let ne = self.vel_op.my_elems.len();

        // Stage 1: modal -> quadrature.
        let t0 = StageTimer::start(Stage::BwdTransform);
        let uq: [Vec<f64>; 3] = [
            self.to_quad(&self.u[0]),
            self.to_quad(&self.u[1]),
            self.to_quad(&self.u[2]),
        ];
        let nm1 = self.cfg.order + 1;
        for _ in 0..3 * ne {
            self.recorder.work(
                Stage::BwdTransform,
                WorkItem::Gemm { m: nq3, n: 1, k: nm1 * nm1 * nm1 },
            );
        }
        sc.add(Stage::BwdTransform, t0.stop());

        // Stage 2: nonlinear + ALE terms; vertex position update.
        let t0 = StageTimer::start(Stage::NonLinear);
        let mut nl: [Vec<f64>; 3] =
            [vec![0.0; ne * nq3], vec![0.0; ne * nq3], vec![0.0; ne * nq3]];
        if self.cfg.advect {
            let wmesh = self.mesh_velocity_quad();
            for c in 0..3 {
                let g = self.grad_quad(&self.u[c], &self.vel_op);
                for i in 0..ne * nq3 {
                    // Relative (ALE) advection velocity in x.
                    let ax = uq[0][i] - wmesh[i];
                    nl[c][i] = -(ax * g[0][i] + uq[1][i] * g[1][i] + uq[2][i] * g[2][i]);
                }
            }
            self.recorder.work(
                Stage::NonLinear,
                WorkItem::Stream {
                    flops: 21.0 * (ne * nq3) as f64,
                    bytes: 8.0 * 16.0 * (ne * nq3) as f64,
                    ws: 8 * 16 * nq3,
                },
            );
        }
        // Vertex updates ("updating of the positions of the vertices").
        if self.cfg.motion_amp != 0.0 {
            let x_min = self.verts0_x.iter().copied().fold(f64::MAX, f64::min);
            let x_max = self.verts0_x.iter().copied().fold(f64::MIN, f64::max);
            let disp = self.cfg.motion_amp * (self.cfg.motion_omega * (self.time + dt)).sin();
            for (v, x0) in self.verts0_x.iter().enumerate() {
                self.mesh.verts[v][0] = x0 + disp * motion_shape_fn(*x0, x_min, x_max);
            }
            // Refresh element scales (elements stay axis-aligned boxes).
            for (le, &e) in self.vel_op.my_elems.iter().enumerate() {
                let (lo, hi) = elem_box(&self.mesh, e).expect("motion broke the box property");
                let s = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
                self.vel_op.scales[le] = s;
                self.press_op.scales[le] = s;
                self.mass_op.scales[le] = s;
                self.mesh_op.scales[le] = s;
                for r in &mut self.ramp_ops {
                    r.scales[le] = s;
                }
            }
            self.vel_op.rebuild_diag(comm);
            self.press_op.rebuild_diag(comm);
            self.mesh_op.rebuild_diag(comm);
        }
        sc.add(Stage::NonLinear, t0.stop());

        // History and ramp.
        self.hist_vel.push_front(uq);
        self.hist_n.push_front(nl);
        let j = self.scheme.order.min(self.hist_vel.len());
        while self.hist_vel.len() > self.scheme.order {
            self.hist_vel.pop_back();
        }
        while self.hist_n.len() > self.scheme.order {
            self.hist_n.pop_back();
        }
        let eff = StifflyStable::new(j);

        // Stage 3: stiffly-stable weighting (quadrature space).
        let t0 = StageTimer::start(Stage::StifflyStable);
        let mut hat: [Vec<f64>; 3] =
            [vec![0.0; ne * nq3], vec![0.0; ne * nq3], vec![0.0; ne * nq3]];
        for lvl in 0..j {
            let al = eff.alpha[lvl];
            let be = eff.beta[lvl] * dt;
            for c in 0..3 {
                let hv = &self.hist_vel[lvl][c];
                let hn = &self.hist_n[lvl][c];
                for i in 0..ne * nq3 {
                    hat[c][i] += al * hv[i] + be * hn[i];
                }
            }
        }
        self.recorder.work(
            Stage::StifflyStable,
            WorkItem::Stream {
                flops: (12 * j * ne * nq3) as f64,
                bytes: (48 * j * ne * nq3) as f64,
                ws: 48 * nq3,
            },
        );
        sc.add(Stage::StifflyStable, t0.stop());

        // Stage 4: pressure RHS = (1/dt) ∫ uhat·∇φ.
        let t0 = StageTimer::start(Stage::PressureRhs);
        let mut prhs = vec![0.0; self.press_op.nlocal()];
        self.divergence_rhs(&hat, 1.0 / dt, &mut prhs);
        self.press_op.gs.exchange(comm, &mut prhs, ReduceOp::Sum);
        sc.add(Stage::PressureRhs, t0.stop());

        // Stage 5: pressure PCG solve.
        let w0 = comm.wtime();
        let t0 = StageTimer::start_v(Stage::PressureSolve, w0);
        let mut pnew = if self.p.len() == self.press_op.nlocal() {
            self.p.clone() // warm start from the previous step
        } else {
            vec![0.0; self.press_op.nlocal()]
        };
        let pit = self.press_op.pcg(
            comm,
            &prhs,
            &mut pnew,
            self.cfg.pcg_tol,
            self.cfg.pcg_max_iter,
            &mut self.recorder,
        );
        self.p = pnew;
        let virt = comm.wtime() - w0;
        sc.add(Stage::PressureSolve, t0.stop_v(comm.wtime()) + virt);

        // Stage 6: viscous RHS from u** = uhat - dt ∇p.
        let t0 = StageTimer::start(Stage::ViscousRhs);
        let gp = self.grad_quad(&self.p, &self.press_op);
        let scale = 1.0 / (nu * dt);
        let mut vrhs: [Vec<f64>; 3] = [
            vec![0.0; self.vel_op.nlocal()],
            vec![0.0; self.vel_op.nlocal()],
            vec![0.0; self.vel_op.nlocal()],
        ];
        {
            let op = &self.vel_op.op1;
            let nq = op.basis.nquad();
            for (le, _) in self.vel_op.my_elems.iter().enumerate() {
                let [hx, hy, hz] = self.vel_op.scales[le];
                let jac = hx * hy * hz / 8.0;
                for c in 0..3 {
                    let mut fq = vec![0.0; nq3];
                    for qz in 0..nq {
                        for qy in 0..nq {
                            for qx in 0..nq {
                                let q = qx + qy * nq + qz * nq * nq;
                                let ustar = hat[c][le * nq3 + q] - dt * gp[c][le * nq3 + q];
                                fq[q] = ustar
                                    * op.basis.w[qx]
                                    * op.basis.w[qy]
                                    * op.basis.w[qz]
                                    * jac
                                    * scale;
                            }
                        }
                    }
                    let proj = quad_to_modal(op, &fq);
                    for (m, &l) in self.vel_op.elem_local[le].iter().enumerate() {
                        vrhs[c][l] += proj[m];
                    }
                }
            }
        }
        if self.vel_op.gs_overlap {
            // Split-phase pipeline: post all three component exchanges,
            // then drain in post order — each component's wire time
            // accrues while the previous ones drain. Per component the
            // combine order is unchanged, so the result is bitwise
            // identical to the blocking loop below.
            let [v0, v1, v2] = &mut vrhs;
            let e0 = self.vel_op.gs.start(comm, v0, ReduceOp::Sum);
            let e1 = self.vel_op.gs.start(comm, v1, ReduceOp::Sum);
            let e2 = self.vel_op.gs.start(comm, v2, ReduceOp::Sum);
            e0.finish(comm, v0);
            e1.finish(comm, v1);
            e2.finish(comm, v2);
        } else {
            for c in 0..3 {
                self.vel_op.gs.exchange(comm, &mut vrhs[c], ReduceOp::Sum);
            }
        }
        sc.add(Stage::ViscousRhs, t0.stop());

        // Stage 7: three velocity Helmholtz PCG solves + the ALE extra
        // mesh-velocity Helmholtz solve.
        let w0 = comm.wtime();
        let t0 = StageTimer::start_v(Stage::ViscousSolve, w0);
        let solver: &HexHelmholtz = if j < self.scheme.order {
            &self.ramp_ops[j - 1]
        } else {
            &self.vel_op
        };
        let mut vit = 0usize;
        let taken = std::mem::take(&mut self.u);
        let mut newu: [Vec<f64>; 3] = Default::default();
        for (c, warm) in taken.into_iter().enumerate() {
            let mut x = warm; // previous velocity as initial guess
            vit += solver.pcg(
                comm,
                &vrhs[c],
                &mut x,
                self.cfg.pcg_tol,
                self.cfg.pcg_max_iter,
                &mut self.recorder,
            );
            newu[c] = x;
        }
        self.u = newu;
        // ALE extra: mesh-velocity Laplace solve (Dirichlet: body speed on
        // the wall, zero on the outer boundary).
        let mit = if self.cfg.motion_amp != 0.0 {
            let speed = self.cfg.motion_amp
                * self.cfg.motion_omega
                * (self.cfg.motion_omega * (self.time + dt)).cos();
            let mut mop_dirichlet = self.mesh_op.dirichlet.clone();
            for d in mop_dirichlet.iter_mut().flatten() {
                *d = 0.0;
            }
            // Wall (body) dofs carry the body speed.
            for &l in &self.wall_local {
                if let Some(d) = mop_dirichlet[l].as_mut() {
                    *d = speed;
                }
            }
            let saved = std::mem::replace(&mut self.mesh_op.dirichlet, mop_dirichlet);
            let b = vec![0.0; self.mesh_op.nlocal()];
            let mut eta = vec![0.0; self.mesh_op.nlocal()];
            let it = self.mesh_op.pcg(
                comm,
                &b,
                &mut eta,
                self.cfg.pcg_tol,
                self.cfg.pcg_max_iter,
                &mut self.recorder,
            );
            self.mesh_op.dirichlet = saved;
            it
        } else {
            0
        };
        let virt = comm.wtime() - w0;
        sc.add(Stage::ViscousSolve, t0.stop_v(comm.wtime()) + virt);
        step_span.end_v(comm.wtime());
        self.last_iters = (pit, vit, mit);
        self.time += dt;
        self.clock.merge(&sc);
        self.steps_taken += 1;
        sc
    }

    /// Assembles rhs_m += c · ∫ hat·∇φ_m over owned elements.
    fn divergence_rhs(&mut self, hat: &[Vec<f64>; 3], c: f64, rhs: &mut [f64]) {
        let op = &self.press_op.op1;
        let nq = op.basis.nquad();
        let nq3 = self.nq3();
        for (le, _) in self.press_op.my_elems.iter().enumerate() {
            let [hx, hy, hz] = self.press_op.scales[le];
            let jac = hx * hy * hz / 8.0;
            // weighted field per direction
            let mut w0 = vec![0.0; nq3];
            let mut w1 = vec![0.0; nq3];
            let mut w2 = vec![0.0; nq3];
            for qz in 0..nq {
                for qy in 0..nq {
                    for qx in 0..nq {
                        let q = qx + qy * nq + qz * nq * nq;
                        let wq = op.basis.w[qx] * op.basis.w[qy] * op.basis.w[qz] * jac * c;
                        w0[q] = hat[0][le * nq3 + q] * wq * 2.0 / hx;
                        w1[q] = hat[1][le * nq3 + q] * wq * 2.0 / hy;
                        w2[q] = hat[2][le * nq3 + q] * wq * 2.0 / hz;
                    }
                }
            }
            let p0 = quad_to_modal_diff(op, &w0, 0);
            let p1 = quad_to_modal_diff(op, &w1, 1);
            let p2 = quad_to_modal_diff(op, &w2, 2);
            for (m, &l) in self.press_op.elem_local[le].iter().enumerate() {
                rhs[l] += p0[m] + p1[m] + p2[m];
            }
            self.recorder
                .work(Stage::PressureRhs, WorkItem::Gemm { m: nq3, n: 3, k: op.nm });
        }
    }

    /// Total kinetic energy (collective).
    pub fn kinetic_energy(&mut self, comm: &mut Comm) -> f64 {
        let op = &self.vel_op.op1;
        let nq = op.basis.nquad();
        let nq3 = self.nq3();
        let mut local = 0.0;
        let uq: [Vec<f64>; 3] = [
            self.to_quad(&self.u[0]),
            self.to_quad(&self.u[1]),
            self.to_quad(&self.u[2]),
        ];
        for (le, _) in self.vel_op.my_elems.iter().enumerate() {
            let [hx, hy, hz] = self.vel_op.scales[le];
            let jac = hx * hy * hz / 8.0;
            for qz in 0..nq {
                for qy in 0..nq {
                    for qx in 0..nq {
                        let q = le * nq3 + qx + qy * nq + qz * nq * nq;
                        let w = op.basis.w[qx] * op.basis.w[qy] * op.basis.w[qz] * jac;
                        local += 0.5
                            * w
                            * (uq[0][q] * uq[0][q] + uq[1][q] * uq[1][q] + uq[2][q] * uq[2][q]);
                    }
                }
            }
        }
        let mut buf = [local];
        comm.allreduce(&mut buf, ReduceOp::Sum);
        buf[0]
    }

    /// Total mesh volume (collective) — conserved by the plane-wise
    /// motion.
    pub fn total_volume(&mut self, comm: &mut Comm) -> f64 {
        let local: f64 = self
            .vel_op
            .scales
            .iter()
            .map(|[hx, hy, hz]| hx * hy * hz)
            .sum();
        let mut buf = [local];
        comm.allreduce(&mut buf, ReduceOp::Sum);
        buf[0]
    }

    /// Steps taken.
    pub fn steps(&self) -> usize {
        self.steps_taken
    }

    /// Forces split-phase halo/compute overlap on or off for every
    /// Helmholtz operator owned by this solver, overriding the
    /// `NKT_GS_OVERLAP` environment default sampled at construction.
    /// Both settings produce bitwise-identical states (see
    /// [`HexHelmholtz::apply`]); only the virtual wall-clock differs.
    pub fn set_gs_overlap(&mut self, on: bool) {
        self.vel_op.set_gs_overlap(on);
        for r in &mut self.ramp_ops {
            r.set_gs_overlap(on);
        }
        self.press_op.set_gs_overlap(on);
        self.mass_op.set_gs_overlap(on);
        self.mesh_op.set_gs_overlap(on);
    }

    /// Collective restore from the newest valid checkpoint epoch.
    ///
    /// Wraps [`nkt_ckpt::restore_latest`] because rebuilding the moving
    /// mesh needs the communicator: after the sections are read back
    /// (vertex positions, per-element scales), the Helmholtz diagonal
    /// preconditioners that [`NektarAle::step`] keeps in sync with the
    /// mesh must be recomputed — a collective [`HexHelmholtz::rebuild_diag`]
    /// on the velocity, pressure and mesh operators. The mass operator's
    /// diagonal deliberately stays as built: `step` never refreshes it
    /// either, and bitwise restart fidelity means doing exactly what the
    /// uninterrupted run does.
    pub fn restore_ckpt(
        &mut self,
        comm: &mut Comm,
        cfg: &nkt_ckpt::CkptConfig,
    ) -> Result<nkt_ckpt::RestoreInfo, nkt_ckpt::CkptError> {
        let info = nkt_ckpt::restore_latest(comm, cfg, self)?;
        self.rebuild_after_restore(comm);
        Ok(info)
    }

    /// [`NektarAle::restore_ckpt`] with a rider (e.g. the `nkt-stats`
    /// recorder) restored from the same tandem shard — see
    /// [`nkt_ckpt::TandemMut`]. A shard written without the rider's
    /// sections resets the rider instead of erroring.
    pub fn restore_ckpt_with(
        &mut self,
        comm: &mut Comm,
        cfg: &nkt_ckpt::CkptConfig,
        rider: &mut dyn nkt_ckpt::Checkpointable,
    ) -> Result<nkt_ckpt::RestoreInfo, nkt_ckpt::CkptError> {
        let info = {
            let mut t = nkt_ckpt::TandemMut { main: self, rider };
            nkt_ckpt::restore_latest(comm, cfg, &mut t)?
        };
        self.rebuild_after_restore(comm);
        Ok(info)
    }

    fn rebuild_after_restore(&mut self, comm: &mut Comm) {
        if self.cfg.motion_amp != 0.0 {
            self.vel_op.rebuild_diag(comm);
            self.press_op.rebuild_diag(comm);
            self.mesh_op.rebuild_diag(comm);
        }
    }
}

impl nkt_ckpt::Checkpointable for NektarAle {
    fn kind(&self) -> &'static str {
        "ale"
    }

    fn write_sections(&self, w: &mut nkt_ckpt::CkptWriter) {
        // "fields": dof-count guards, then velocity and pressure modal
        // coefficients.
        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.vel_op.nlocal());
        e.usize(self.press_op.nlocal());
        for c in &self.u {
            e.f64s(c);
        }
        e.f64s(&self.p);
        w.section("fields", e.into_bytes());

        // "hist": stiffly-stable history (velocity and nonlinear terms
        // at quadrature points, newest first).
        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.hist_vel.len());
        for level in &self.hist_vel {
            for c in level {
                e.f64s(c);
            }
        }
        e.usize(self.hist_n.len());
        for level in &self.hist_n {
            for c in level {
                e.f64s(c);
            }
        }
        w.section("hist", e.into_bytes());

        // "mesh": the moving-mesh state — simulated time, vertex
        // positions, per-element scales (shared by every operator), and
        // the last solve iteration counts (observability only, but kept
        // so a restored run reports what the interrupted one would).
        let mut e = nkt_ckpt::Enc::new();
        e.f64(self.time);
        e.usize(self.mesh.verts.len());
        for v in &self.mesh.verts {
            e.f64(v[0]);
            e.f64(v[1]);
            e.f64(v[2]);
        }
        e.usize(self.vel_op.scales.len());
        for s in &self.vel_op.scales {
            e.f64(s[0]);
            e.f64(s[1]);
            e.f64(s[2]);
        }
        e.usize(self.last_iters.0);
        e.usize(self.last_iters.1);
        e.usize(self.last_iters.2);
        w.section("mesh", e.into_bytes());

        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.steps_taken);
        w.section("steps", e.into_bytes());

        let mut e = nkt_ckpt::Enc::new();
        for t in self.clock.totals {
            e.f64(t);
        }
        w.section(nkt_ckpt::CLOCK_SECTION, e.into_bytes());
    }

    fn read_sections(&mut self, f: &nkt_ckpt::CkptFile) -> Result<(), nkt_ckpt::CkptError> {
        let mut d = f.dec("fields")?;
        d.expect_u64(self.vel_op.nlocal() as u64, "ale velocity dof count")?;
        d.expect_u64(self.press_op.nlocal() as u64, "ale pressure dof count")?;
        for c in self.u.iter_mut() {
            *c = d.f64s()?;
        }
        self.p = d.f64s()?;
        d.finish()?;

        let mut d = f.dec("hist")?;
        let n_vel = d.len_prefix(64)?;
        self.hist_vel.clear();
        for _ in 0..n_vel {
            let mut level: [Vec<f64>; 3] = Default::default();
            for c in level.iter_mut() {
                *c = d.f64s()?;
            }
            self.hist_vel.push_back(level);
        }
        let n_n = d.len_prefix(64)?;
        self.hist_n.clear();
        for _ in 0..n_n {
            let mut level: [Vec<f64>; 3] = Default::default();
            for c in level.iter_mut() {
                *c = d.f64s()?;
            }
            self.hist_n.push_back(level);
        }
        d.finish()?;

        let mut d = f.dec("mesh")?;
        self.time = d.f64()?;
        d.expect_u64(self.mesh.verts.len() as u64, "ale vertex count")?;
        for v in self.mesh.verts.iter_mut() {
            v[0] = d.f64()?;
            v[1] = d.f64()?;
            v[2] = d.f64()?;
        }
        d.expect_u64(self.vel_op.scales.len() as u64, "ale element count")?;
        for le in 0..self.vel_op.scales.len() {
            let s = [d.f64()?, d.f64()?, d.f64()?];
            self.vel_op.scales[le] = s;
            self.press_op.scales[le] = s;
            self.mass_op.scales[le] = s;
            self.mesh_op.scales[le] = s;
            for r in &mut self.ramp_ops {
                r.scales[le] = s;
            }
        }
        self.last_iters =
            (d.u64()? as usize, d.u64()? as usize, d.u64()? as usize);
        d.finish()?;

        let mut d = f.dec("steps")?;
        self.steps_taken = d.u64()? as usize;
        d.finish()?;

        let mut d = f.dec(nkt_ckpt::CLOCK_SECTION)?;
        for t in self.clock.totals.iter_mut() {
            *t = d.f64()?;
        }
        d.finish()?;
        Ok(())
    }

    fn ckpt_step(&self) -> u64 {
        self.steps_taken as u64
    }
}

/// Sum-factorized modal → quadrature evaluation (B ⊗ B ⊗ B).
pub fn modal_to_quad(op: &crate::hex3d::Oper1d, x: &[f64]) -> Vec<f64> {
    tensor3(op, x, false, false, false)
}

/// Modal → quadrature with a derivative in one reference direction
/// (0 = ξx, 1 = ξy, 2 = ξz); returns all three gradients.
pub fn modal_to_quad_grad(
    op: &crate::hex3d::Oper1d,
    x: &[f64],
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    (
        tensor3(op, x, true, false, false),
        tensor3(op, x, false, true, false),
        tensor3(op, x, false, false, true),
    )
}

/// Quadrature → modal projection: Bᵀ applied in all directions.
pub fn quad_to_modal(op: &crate::hex3d::Oper1d, fq: &[f64]) -> Vec<f64> {
    tensor3_t(op, fq, false, false, false)
}

/// Quadrature → modal with the derivative operator transposed in
/// direction `dir` (for ∫ f ∂φ terms).
pub fn quad_to_modal_diff(op: &crate::hex3d::Oper1d, fq: &[f64], dir: usize) -> Vec<f64> {
    tensor3_t(op, fq, dir == 0, dir == 1, dir == 2)
}

fn tensor3(op: &crate::hex3d::Oper1d, x: &[f64], dx: bool, dy: bool, dz: bool) -> Vec<f64> {
    let nm = op.nm;
    let nq = op.basis.nquad();
    let tab = |d: bool, i: usize, q: usize| {
        if d {
            op.basis.dval[i][q]
        } else {
            op.basis.val[i][q]
        }
    };
    // t1[qx, j, k] = sum_i B[qx,i] x[i,j,k]
    let mut t1 = vec![0.0; nq * nm * nm];
    for k in 0..nm {
        for j in 0..nm {
            for i in 0..nm {
                let xv = x[i + j * nm + k * nm * nm];
                if xv != 0.0 {
                    for qx in 0..nq {
                        t1[qx + j * nq + k * nq * nm] += tab(dx, i, qx) * xv;
                    }
                }
            }
        }
    }
    // t2[qx, qy, k] = sum_j B[qy,j] t1[qx,j,k]
    let mut t2 = vec![0.0; nq * nq * nm];
    for k in 0..nm {
        for j in 0..nm {
            for qy in 0..nq {
                let b = tab(dy, j, qy);
                if b != 0.0 {
                    for qx in 0..nq {
                        t2[qx + qy * nq + k * nq * nq] += b * t1[qx + j * nq + k * nq * nm];
                    }
                }
            }
        }
    }
    // out[qx, qy, qz] = sum_k B[qz,k] t2[qx,qy,k]
    let mut out = vec![0.0; nq * nq * nq];
    for k in 0..nm {
        for qz in 0..nq {
            let b = tab(dz, k, qz);
            if b != 0.0 {
                for qxy in 0..nq * nq {
                    out[qxy + qz * nq * nq] += b * t2[qxy + k * nq * nq];
                }
            }
        }
    }
    out
}

fn tensor3_t(op: &crate::hex3d::Oper1d, fq: &[f64], dx: bool, dy: bool, dz: bool) -> Vec<f64> {
    let nm = op.nm;
    let nq = op.basis.nquad();
    let tab = |d: bool, i: usize, q: usize| {
        if d {
            op.basis.dval[i][q]
        } else {
            op.basis.val[i][q]
        }
    };
    // t1[i, qy, qz] = sum_qx B[qx,i] fq[qx,qy,qz]
    let mut t1 = vec![0.0; nm * nq * nq];
    for qz in 0..nq {
        for qy in 0..nq {
            for qx in 0..nq {
                let v = fq[qx + qy * nq + qz * nq * nq];
                if v != 0.0 {
                    for i in 0..nm {
                        t1[i + qy * nm + qz * nm * nq] += tab(dx, i, qx) * v;
                    }
                }
            }
        }
    }
    // t2[i, j, qz] = sum_qy B[qy,j] t1[i,qy,qz]
    let mut t2 = vec![0.0; nm * nm * nq];
    for qz in 0..nq {
        for qy in 0..nq {
            for j in 0..nm {
                let b = tab(dy, j, qy);
                if b != 0.0 {
                    for i in 0..nm {
                        t2[i + j * nm + qz * nm * nm] += b * t1[i + qy * nm + qz * nm * nq];
                    }
                }
            }
        }
    }
    // out[i, j, k] = sum_qz B[qz,k] t2[i,j,qz]
    let mut out = vec![0.0; nm * nm * nm];
    for qz in 0..nq {
        for k in 0..nm {
            let b = tab(dz, k, qz);
            if b != 0.0 {
                for ij in 0..nm * nm {
                    out[ij + k * nm * nm] += b * t2[ij + qz * nm * nm];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_mesh::box_hexes;
    use nkt_net::{cluster, NetId};
    use nkt_partition::{partition_kway, Graph, PartitionOptions};

    fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
        p: usize,
        net: nkt_net::ClusterNetwork,
        f: F,
    ) -> Vec<R> {
        World::builder().ranks(p).net(net).run(f)
    }

    fn small_mesh() -> Mesh3d {
        box_hexes(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 2, 2, 2)
    }

    fn cfg() -> AleConfig {
        AleConfig {
            order: 3,
            dt: 2e-3,
            nu: 0.05,
            scheme_order: 2,
            advect: true,
            motion_amp: 0.0,
            ..Default::default()
        }
    }

    /// Divergence-free field vanishing on the whole box boundary.
    fn psi_field(x: [f64; 3]) -> [f64; 3] {
        let pi = std::f64::consts::PI;
        let (sx, cx) = (pi * x[0]).sin_cos();
        let (sy, cy) = (pi * x[1]).sin_cos();
        let gz = (pi * x[2]).sin().powi(2);
        [
            2.0 * pi * sx * sx * sy * cy * gz,
            -2.0 * pi * sx * cx * sy * sy * gz,
            0.0,
        ]
    }

    fn partition_for(mesh: &Mesh3d, p: usize) -> Vec<u8> {
        let g = Graph::from_edges(mesh.nelems(), &mesh.dual_edges());
        partition_kway(&g, p, &PartitionOptions::default())
    }

    #[test]
    fn tensor_roundtrip_consistency() {
        // modal_to_quad of a constant-one vertex combination gives 1.
        let op = crate::hex3d::Oper1d::new(3);
        let nm = op.nm;
        let mut x = vec![0.0; nm * nm * nm];
        // u = 1 is the sum of all 8 vertex modes:
        // (psi_0 + psi_P) = 1 in each direction.
        for k in [0, nm - 1] {
            for j in [0, nm - 1] {
                for i in [0, nm - 1] {
                    x[i + j * nm + k * nm * nm] = 1.0;
                }
            }
        }
        let q = modal_to_quad(&op, &x);
        for &v in &q {
            assert!((v - 1.0).abs() < 1e-13, "{v}");
        }
        // Its gradient is zero.
        let (dx, dy, dz) = modal_to_quad_grad(&op, &x);
        for v in dx.iter().chain(&dy).chain(&dz) {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn initial_projection_energy() {
        let mesh = small_mesh();
        let part = partition_for(&mesh, 2);
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, cfg());
            s.set_initial(c, psi_field);
            s.kinetic_energy(c)
        });
        // Reference energy via dense quadrature of the analytic field.
        let mut expect = 0.0;
        let n = 24;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = [
                        (i as f64 + 0.5) / n as f64,
                        (j as f64 + 0.5) / n as f64,
                        (k as f64 + 0.5) / n as f64,
                    ];
                    let v = psi_field(x);
                    expect +=
                        0.5 * (v[0] * v[0] + v[1] * v[1]) / (n * n * n) as f64;
                }
            }
        }
        for &e in &out {
            assert!((e - expect).abs() / expect < 0.01, "E={e} vs {expect}");
        }
    }

    #[test]
    fn parallel_invariance_p1_vs_p2() {
        let mesh = small_mesh();
        let run_with = |p: usize| -> Vec<f64> {
            let part = partition_for(&mesh, p);
            run(p, cluster(NetId::T3e), |c| {
                let mut s = NektarAle::new(c, mesh.clone(), &part, cfg());
                s.set_initial(c, psi_field);
                let mut es = Vec::new();
                for _ in 0..3 {
                    s.step(c);
                    es.push(s.kinetic_energy(c));
                }
                es
            })[0]
                .clone()
        };
        let e1 = run_with(1);
        let e2 = run_with(2);
        for step in 0..3 {
            assert!(
                (e1[step] - e2[step]).abs() < 1e-6 * (1.0 + e1[step]),
                "step {step}: {} vs {}",
                e1[step],
                e2[step]
            );
        }
    }

    #[test]
    fn energy_decays_monotonically() {
        let mesh = small_mesh();
        let part = partition_for(&mesh, 2);
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, cfg());
            s.set_initial(c, psi_field);
            let mut es = vec![s.kinetic_energy(c)];
            for _ in 0..4 {
                s.step(c);
                es.push(s.kinetic_energy(c));
            }
            es
        });
        for es in &out {
            for w in es.windows(2) {
                assert!(w[1] < w[0] && w[1] > 0.0, "{es:?}");
            }
        }
    }

    #[test]
    fn moving_mesh_conserves_volume_and_stays_finite() {
        let mesh = box_hexes(0.0, 4.0, 0.0, 1.0, 0.0, 1.0, 4, 2, 2);
        let part = partition_for(&mesh, 2);
        let mcfg = AleConfig { motion_amp: 0.05, ..cfg() };
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, mcfg.clone());
            s.set_initial(c, |_| [0.1, 0.0, 0.0]);
            let v0 = s.total_volume(c);
            for _ in 0..3 {
                s.step(c);
            }
            let v1 = s.total_volume(c);
            let e = s.kinetic_energy(c);
            let (pit, vit, mit) = s.last_iters;
            (v0, v1, e, pit, vit, mit)
        });
        for &(v0, v1, e, _pit, _vit, _mit) in &out {
            assert!((v0 - 4.0).abs() < 1e-10);
            assert!((v1 - 4.0).abs() < 1e-9, "volume drifted: {v1}");
            assert!(e.is_finite());
        }
    }

    #[test]
    fn pcg_solves_dominate_step_time() {
        // Figures 15-16: stages b (pressure) + c (Helmholtz solves) carry
        // ~90% of the ALE step.
        let mesh = small_mesh();
        let part = partition_for(&mesh, 1);
        let out = run(1, cluster(NetId::T3e), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, cfg());
            s.set_initial(c, psi_field);
            for _ in 0..2 {
                s.step(c);
            }
            s.clock.ale_group_percentages()
        });
        let (a, b, cc) = out[0];
        assert!(b + cc > 50.0, "solves only {b}+{cc}% (a = {a}%)");
    }

    #[test]
    fn wing_mesh_mesh_velocity_solve_runs() {
        // The flapping-wing mesh has Wall faces; the ALE extra Helmholtz
        // solve must do real work there.
        let mesh = nkt_mesh::wing_box_mesh(1);
        let part = partition_for(&mesh, 2);
        let mcfg = AleConfig { motion_amp: 0.02, order: 2, ..cfg() };
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, mcfg.clone());
            s.set_initial(c, |_| [0.1, 0.0, 0.0]);
            s.step(c);
            let (pit, vit, mit) = s.last_iters;
            let e = s.kinetic_energy(c);
            (pit, vit, mit, e)
        });
        for &(pit, vit, mit, e) in &out {
            assert!(mit > 0, "mesh-velocity solve trivial: {mit}");
            assert!(pit > 0 && vit > 0);
            assert!(e.is_finite() && e > 0.0);
        }
    }

    #[test]
    fn recorder_sees_gemm_and_gs_traffic() {
        let mesh = small_mesh();
        let part = partition_for(&mesh, 2);
        let out = run(2, cluster(NetId::T3e), |c| {
            let mut s = NektarAle::new(c, mesh.clone(), &part, cfg());
            s.set_initial(c, psi_field);
            s.recorder = Recorder::enabled();
            s.step(c);
            let rec = s.recorder.take().unwrap();
            (rec.work.len(), rec.comm.len())
        });
        for &(w, cm) in &out {
            assert!(w > 0, "no work recorded");
            assert!(cm > 0, "no comm recorded");
        }
    }
}
