//! Serial 2-D incompressible Navier–Stokes solver — the code timed in
//! Table 1 and Figure 12.
//!
//! Per step (the paper's 7 regions, §4.1):
//! 1. modal → quadrature transform of the velocity,
//! 2. nonlinear terms N(u) = −(u·∇)u at quadrature points,
//! 3. stiffly-stable weighting with previous steps,
//! 4. pressure Poisson right-hand side,
//! 5. banded direct Poisson solve,
//! 6. viscous Helmholtz right-hand side,
//! 7. banded direct Helmholtz solves (u and v).
//!
//! Boundary conditions follow the paper's bluff-body setup: Dirichlet
//! velocity at inflow and walls, natural (zero-flux) at outflow and
//! sides; pressure is Dirichlet-zero at the outflow (or pinned at one dof
//! when no outflow exists).

use crate::opstream::{Recorder, WorkItem};
use crate::splitting::StifflyStable;
use crate::timers::{Stage, StageClock, StageTimer};
use nkt_mesh::{BoundaryTag, Mesh2d};
use nkt_spectral::{HelmholtzProblem, SolveMethod};
use std::collections::VecDeque;

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Polynomial order of the expansion.
    pub order: usize,
    /// Time step.
    pub dt: f64,
    /// Kinematic viscosity ν = 1/Re.
    pub nu: f64,
    /// Splitting-scheme order (paper uses 2).
    pub scheme_order: usize,
    /// Include the advection term (disable for Stokes testing).
    pub advect: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { order: 6, dt: 1e-3, nu: 0.01, scheme_order: 2, advect: true }
    }
}

/// Per-element quadrature-space field (velocity components, nonlinear
/// terms, ...).
type QField = Vec<Vec<f64>>;

/// The serial solver state.
pub struct Serial2dSolver {
    /// Configuration.
    pub cfg: SolverConfig,
    scheme: StifflyStable,
    /// Pressure Poisson problem (λ = 0, Dirichlet at outflow / pinned).
    pub pressure: HelmholtzProblem,
    /// Viscous Helmholtz problem (λ = γ₀/(νΔt), Dirichlet velocity).
    pub viscous: HelmholtzProblem,
    /// Ramp-up problems for the first steps: index j-1 holds the order-j
    /// scheme's Helmholtz matrix (the BDF startup uses lower orders).
    ramp: Vec<HelmholtzProblem>,
    /// Velocity modal coefficients.
    pub u: Vec<f64>,
    /// v-component modal coefficients.
    pub v: Vec<f64>,
    /// Pressure modal coefficients.
    pub p: Vec<f64>,
    /// Dirichlet values for u on the velocity problem.
    ud_u: Vec<f64>,
    ud_v: Vec<f64>,
    /// History of velocity quadrature values (newest front), per component.
    hist_uq: VecDeque<(QField, QField)>,
    /// History of nonlinear terms (newest front).
    hist_n: VecDeque<(QField, QField)>,
    /// Per-stage timing.
    pub clock: StageClock,
    /// Operation-stream recorder.
    pub recorder: Recorder,
    steps_taken: usize,
}

impl Serial2dSolver {
    /// Builds the solver on `mesh` with Dirichlet velocity data
    /// (`g_u`, `g_v`) applied on Inflow and Wall boundaries.
    pub fn new(
        mesh: Mesh2d,
        cfg: SolverConfig,
        g_u: impl Fn([f64; 2]) -> f64,
        g_v: impl Fn([f64; 2]) -> f64,
    ) -> Serial2dSolver {
        let scheme = StifflyStable::new(cfg.scheme_order);
        let lambda = scheme.gamma0 / (cfg.nu * cfg.dt);
        let mut pressure =
            HelmholtzProblem::new(mesh.clone(), cfg.order, 0.0, &[BoundaryTag::Outflow]);
        if pressure.asm.ndirichlet() == 0 {
            pressure.pin_dof(0);
        }
        const VEL_DIRICHLET: &[BoundaryTag] =
            &[BoundaryTag::Inflow, BoundaryTag::Wall, BoundaryTag::Side];
        let viscous = HelmholtzProblem::new(mesh.clone(), cfg.order, lambda, VEL_DIRICHLET);
        // Startup (ramp) matrices: the first steps run lower-order BDF
        // with their own gamma0, hence their own Helmholtz constant.
        let ramp: Vec<HelmholtzProblem> = (1..cfg.scheme_order)
            .map(|j| {
                let lam_j = StifflyStable::new(j).gamma0 / (cfg.nu * cfg.dt);
                HelmholtzProblem::new(mesh.clone(), cfg.order, lam_j, VEL_DIRICHLET)
            })
            .collect();
        let ndof = viscous.asm.ndof;
        let ud_u = viscous.dirichlet_values(&g_u);
        let ud_v = viscous.dirichlet_values(&g_v);
        Serial2dSolver {
            cfg,
            scheme,
            pressure,
            viscous,
            ramp,
            u: vec![0.0; ndof],
            v: vec![0.0; ndof],
            p: vec![0.0; 0],
            ud_u,
            ud_v,
            hist_uq: VecDeque::new(),
            hist_n: VecDeque::new(),
            clock: StageClock::new(),
            recorder: Recorder::disabled(),
            steps_taken: 0,
        }
    }

    /// Sets the initial velocity by global L2 projection.
    pub fn set_initial(
        &mut self,
        f_u: impl Fn([f64; 2]) -> f64,
        f_v: impl Fn([f64; 2]) -> f64,
    ) {
        self.u = self.viscous.l2_project(f_u);
        self.v = self.viscous.l2_project(f_v);
        self.hist_uq.clear();
        self.hist_n.clear();
        self.steps_taken = 0;
    }

    /// Recomputes the velocity Dirichlet data (time-dependent boundary
    /// conditions: call before each step with the data at t^{n+1}).
    pub fn update_dirichlet(
        &mut self,
        g_u: impl Fn([f64; 2]) -> f64,
        g_v: impl Fn([f64; 2]) -> f64,
    ) {
        self.ud_u = self.viscous.dirichlet_values(&g_u);
        self.ud_v = self.viscous.dirichlet_values(&g_v);
    }

    /// Number of global velocity dofs.
    pub fn ndof(&self) -> usize {
        self.viscous.asm.ndof
    }

    /// Transforms modal coefficients to quadrature values (stage 1 kernel).
    #[allow(clippy::wrong_self_convention)]
    fn to_quadrature(&mut self, coeffs: &[f64]) -> QField {
        let prob = &self.viscous;
        let mut out = Vec::with_capacity(prob.mesh.nelems());
        for ei in 0..prob.mesh.nelems() {
            let basis = prob.basis(ei);
            let nm = basis.nmodes();
            let nq = basis.nquad();
            let mut local = vec![0.0; nm];
            prob.asm.gather(ei, coeffs, &mut local);
            let mut vals = vec![0.0; nq];
            for (m, &c) in local.iter().enumerate() {
                if c != 0.0 {
                    let vm = &basis.val()[m];
                    for q in 0..nq {
                        vals[q] += c * vm[q];
                    }
                }
            }
            self.recorder.work(
                Stage::BwdTransform,
                WorkItem::Gemm { m: nq, n: 1, k: nm },
            );
            out.push(vals);
        }
        out
    }

    /// Physical-space gradient of a modal field (∂x, ∂y at quadrature).
    pub(crate) fn gradient(&mut self, coeffs: &[f64], stage: Stage) -> (QField, QField) {
        let prob = &self.viscous;
        let ne = prob.mesh.nelems();
        let mut gx_all = Vec::with_capacity(ne);
        let mut gy_all = Vec::with_capacity(ne);
        for ei in 0..ne {
            let basis = prob.basis(ei);
            let geom = &prob.ops[ei].geom;
            let nm = basis.nmodes();
            let nq = basis.nquad();
            let mut local = vec![0.0; nm];
            prob.asm.gather(ei, coeffs, &mut local);
            let mut gx = vec![0.0; nq];
            let mut gy = vec![0.0; nq];
            for (m, &c) in local.iter().enumerate() {
                if c != 0.0 {
                    let d1 = &basis.dxi1()[m];
                    let d2 = &basis.dxi2()[m];
                    for q in 0..nq {
                        let [a, b, cc, d] = geom.dxi_dx[q];
                        gx[q] += c * (d1[q] * a + d2[q] * cc);
                        gy[q] += c * (d1[q] * b + d2[q] * d);
                    }
                }
            }
            self.recorder.work(stage, WorkItem::Gemm { m: nq, n: 2, k: nm });
            gx_all.push(gx);
            gy_all.push(gy);
        }
        (gx_all, gy_all)
    }

    /// Advances one time step. Returns the per-stage times of this step.
    pub fn step(&mut self) -> StageClock {
        let step_span = nkt_trace::span("step", "step");
        let mut step_clock = StageClock::new();
        let dt = self.cfg.dt;
        let nu = self.cfg.nu;
        let ne = self.viscous.mesh.nelems();

        // Stage 1: modal -> quadrature transform of the velocity.
        let u_mod = self.u.clone();
        let v_mod = self.v.clone();
        let t0 = StageTimer::start(Stage::BwdTransform);
        let uq = self.to_quadrature(&u_mod);
        let vq = self.to_quadrature(&v_mod);
        step_clock.add(Stage::BwdTransform, t0.stop());

        // Stage 2: nonlinear terms at quadrature points.
        let t0 = StageTimer::start(Stage::NonLinear);
        let (nun, nvn) = if self.cfg.advect {
            let (dux, duy) = self.gradient(&u_mod, Stage::NonLinear);
            let (dvx, dvy) = self.gradient(&v_mod, Stage::NonLinear);
            let mut nun = Vec::with_capacity(ne);
            let mut nvn = Vec::with_capacity(ne);
            for ei in 0..ne {
                let nq = uq[ei].len();
                let mut a = vec![0.0; nq];
                let mut b = vec![0.0; nq];
                for q in 0..nq {
                    a[q] = -(uq[ei][q] * dux[ei][q] + vq[ei][q] * duy[ei][q]);
                    b[q] = -(uq[ei][q] * dvx[ei][q] + vq[ei][q] * dvy[ei][q]);
                }
                self.recorder.work(
                    Stage::NonLinear,
                    WorkItem::Stream {
                        flops: 6.0 * nq as f64,
                        bytes: 48.0 * nq as f64,
                        ws: 48 * nq,
                    },
                );
                nun.push(a);
                nvn.push(b);
            }
            (nun, nvn)
        } else {
            let zeros: QField = uq.iter().map(|v| vec![0.0; v.len()]).collect();
            (zeros.clone(), zeros)
        };
        step_clock.add(Stage::NonLinear, t0.stop());

        // Push history (newest at the front).
        self.hist_uq.push_front((uq, vq));
        self.hist_n.push_front((nun, nvn));
        let j = self.scheme.order.min(self.hist_uq.len());
        while self.hist_uq.len() > self.scheme.order {
            self.hist_uq.pop_back();
        }
        while self.hist_n.len() > self.scheme.order {
            self.hist_n.pop_back();
        }
        // Effective scheme ramps up over the first steps.
        let eff = StifflyStable::new(j);

        // Stage 3: stiffly-stable weighting: uhat = sum alpha u + dt sum
        // beta N, all in quadrature space.
        let t0 = StageTimer::start(Stage::StifflyStable);
        let mut uhat: QField = Vec::with_capacity(ne);
        let mut vhat: QField = Vec::with_capacity(ne);
        for ei in 0..ne {
            let nq = self.hist_uq[0].0[ei].len();
            let mut a = vec![0.0; nq];
            let mut b = vec![0.0; nq];
            for (lvl, ((huq, hvq), (hnu, hnv))) in
                self.hist_uq.iter().zip(self.hist_n.iter()).enumerate().take(j)
            {
                let al = eff.alpha[lvl];
                let be = eff.beta[lvl] * dt;
                for q in 0..nq {
                    a[q] += al * huq[ei][q] + be * hnu[ei][q];
                    b[q] += al * hvq[ei][q] + be * hnv[ei][q];
                }
            }
            self.recorder.work(
                Stage::StifflyStable,
                WorkItem::Stream {
                    flops: 8.0 * j as f64 * nq as f64,
                    bytes: 32.0 * j as f64 * nq as f64,
                    ws: 32 * nq,
                },
            );
            uhat.push(a);
            vhat.push(b);
        }
        step_clock.add(Stage::StifflyStable, t0.stop());

        // Stage 4: pressure RHS (integration by parts):
        // rhs_i = (1/dt) ∫ uhat·∇φ_i.
        let t0 = StageTimer::start(Stage::PressureRhs);
        let mut prhs = vec![0.0; self.pressure.asm.ndof];
        for ei in 0..ne {
            let basis = self.pressure.basis(ei);
            let geom = &self.pressure.ops[ei].geom;
            let nm = basis.nmodes();
            let nq = basis.nquad();
            let mut local = vec![0.0; nm];
            for (m, lm) in local.iter_mut().enumerate() {
                let d1 = &basis.dxi1()[m];
                let d2 = &basis.dxi2()[m];
                let mut s = 0.0;
                for q in 0..nq {
                    let [a, b, cc, d] = geom.dxi_dx[q];
                    let gpx = d1[q] * a + d2[q] * cc;
                    let gpy = d1[q] * b + d2[q] * d;
                    s += geom.jw[q] * (uhat[ei][q] * gpx + vhat[ei][q] * gpy);
                }
                *lm = s / dt;
            }
            self.pressure.asm.scatter_add(ei, &local, &mut prhs);
            self.recorder.work(Stage::PressureRhs, WorkItem::Gemm { m: nm, n: 2, k: nq });
        }
        step_clock.add(Stage::PressureRhs, t0.stop());

        // Stage 5: pressure solve (banded direct).
        let t0 = StageTimer::start(Stage::PressureSolve);
        let pzero = vec![0.0; self.pressure.asm.ndof];
        let (pnew, _) = self.pressure.solve_with_rhs(prhs, &pzero, SolveMethod::BandedDirect);
        self.p = pnew;
        self.recorder.work(
            Stage::PressureSolve,
            WorkItem::BandedSolve {
                n: self.pressure.asm.ndof,
                kd: self.pressure.matrix.kd(),
            },
        );
        step_clock.add(Stage::PressureSolve, t0.stop());

        // Stage 6: viscous RHS: u** = uhat - dt ∇p; rhs = (1/(nu dt)) ∫ u** φ.
        let t0 = StageTimer::start(Stage::ViscousRhs);
        let p_mod = self.p.clone();
        let (gpx, gpy) = {
            // Gradient of pressure uses the pressure problem's assembly.
            let prob = &self.pressure;
            let mut gx_all = Vec::with_capacity(ne);
            let mut gy_all = Vec::with_capacity(ne);
            for ei in 0..ne {
                let basis = prob.basis(ei);
                let geom = &prob.ops[ei].geom;
                let nm = basis.nmodes();
                let nq = basis.nquad();
                let mut local = vec![0.0; nm];
                prob.asm.gather(ei, &p_mod, &mut local);
                let mut gx = vec![0.0; nq];
                let mut gy = vec![0.0; nq];
                for (m, &c) in local.iter().enumerate() {
                    if c != 0.0 {
                        let d1 = &basis.dxi1()[m];
                        let d2 = &basis.dxi2()[m];
                        for q in 0..nq {
                            let [a, b, cc, d] = geom.dxi_dx[q];
                            gx[q] += c * (d1[q] * a + d2[q] * cc);
                            gy[q] += c * (d1[q] * b + d2[q] * d);
                        }
                    }
                }
                self.recorder.work(Stage::ViscousRhs, WorkItem::Gemm { m: nq, n: 2, k: nm });
                gx_all.push(gx);
                gy_all.push(gy);
            }
            (gx_all, gy_all)
        };
        let scale = 1.0 / (nu * dt);
        let mut urhs = vec![0.0; self.viscous.asm.ndof];
        let mut vrhs = vec![0.0; self.viscous.asm.ndof];
        for ei in 0..ne {
            let basis = self.viscous.basis(ei);
            let geom = &self.viscous.ops[ei].geom;
            let nm = basis.nmodes();
            let nq = basis.nquad();
            let mut lu = vec![0.0; nm];
            let mut lv = vec![0.0; nm];
            for m in 0..nm {
                let vm = &basis.val()[m];
                let mut su = 0.0;
                let mut sv = 0.0;
                for q in 0..nq {
                    let ustar = uhat[ei][q] - dt * gpx[ei][q];
                    let vstar = vhat[ei][q] - dt * gpy[ei][q];
                    su += geom.jw[q] * ustar * vm[q];
                    sv += geom.jw[q] * vstar * vm[q];
                }
                lu[m] = scale * su;
                lv[m] = scale * sv;
            }
            self.viscous.asm.scatter_add(ei, &lu, &mut urhs);
            self.viscous.asm.scatter_add(ei, &lv, &mut vrhs);
            self.recorder.work(Stage::ViscousRhs, WorkItem::Gemm { m: nm, n: 2, k: nq });
        }
        step_clock.add(Stage::ViscousRhs, t0.stop());

        // Stage 7: viscous Helmholtz solves for u and v (using the ramp
        // matrix while the BDF history is still filling).
        let t0 = StageTimer::start(Stage::ViscousSolve);
        let ud = self.ud_u.clone();
        let vd = self.ud_v.clone();
        let solver = if j < self.scheme.order {
            &mut self.ramp[j - 1]
        } else {
            &mut self.viscous
        };
        let (unew, _) = solver.solve_with_rhs(urhs, &ud, SolveMethod::BandedDirect);
        let (vnew, _) = solver.solve_with_rhs(vrhs, &vd, SolveMethod::BandedDirect);
        self.u = unew;
        self.v = vnew;
        for _ in 0..2 {
            self.recorder.work(
                Stage::ViscousSolve,
                WorkItem::BandedSolve {
                    n: self.viscous.asm.ndof,
                    kd: self.viscous.matrix.kd(),
                },
            );
        }
        step_clock.add(Stage::ViscousSolve, t0.stop());

        step_span.end();
        self.clock.merge(&step_clock);
        self.steps_taken += 1;
        step_clock
    }

    /// L2 error of the velocity against an exact pair.
    pub fn velocity_error(
        &self,
        exact_u: impl Fn([f64; 2]) -> f64,
        exact_v: impl Fn([f64; 2]) -> f64,
    ) -> f64 {
        let eu = self.viscous.l2_error(&self.u, exact_u);
        let ev = self.viscous.l2_error(&self.v, exact_v);
        (eu * eu + ev * ev).sqrt()
    }

    /// Total kinetic energy ½∫|u|².
    pub fn kinetic_energy(&self) -> f64 {
        let prob = &self.viscous;
        let mut e = 0.0;
        for ei in 0..prob.mesh.nelems() {
            let basis = prob.basis(ei);
            let geom = &prob.ops[ei].geom;
            let mut lu = vec![0.0; basis.nmodes()];
            let mut lv = vec![0.0; basis.nmodes()];
            prob.asm.gather(ei, &self.u, &mut lu);
            prob.asm.gather(ei, &self.v, &mut lv);
            for q in 0..basis.nquad() {
                let mut uu = 0.0;
                let mut vv = 0.0;
                for m in 0..basis.nmodes() {
                    uu += lu[m] * basis.val()[m][q];
                    vv += lv[m] * basis.val()[m][q];
                }
                e += 0.5 * geom.jw[q] * (uu * uu + vv * vv);
            }
        }
        e
    }

    /// L2 norm of the velocity divergence (a splitting-scheme health
    /// metric: should stay small).
    pub fn divergence_norm(&mut self) -> f64 {
        let u_mod = self.u.clone();
        let v_mod = self.v.clone();
        let (dux, _) = self.gradient(&u_mod, Stage::NonLinear);
        let (_, dvy) = self.gradient(&v_mod, Stage::NonLinear);
        let prob = &self.viscous;
        let mut d2 = 0.0;
        for ei in 0..prob.mesh.nelems() {
            let geom = &prob.ops[ei].geom;
            for q in 0..dux[ei].len() {
                let d = dux[ei][q] + dvy[ei][q];
                d2 += geom.jw[q] * d * d;
            }
        }
        d2.sqrt()
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps_taken
    }
}

impl nkt_ckpt::Checkpointable for Serial2dSolver {
    fn kind(&self) -> &'static str {
        "serial2d"
    }

    fn write_sections(&self, w: &mut nkt_ckpt::CkptWriter) {
        // "fields": dof-count guard, then the modal coefficient vectors.
        // The Dirichlet value vectors ride along: they are fixed by the
        // boundary data at construction, but persisting them makes the
        // shard self-describing about what the run was solving.
        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.viscous.asm.ndof);
        e.f64s(&self.u);
        e.f64s(&self.v);
        e.f64s(&self.p);
        e.f64s(&self.ud_u);
        e.f64s(&self.ud_v);
        w.section("fields", e.into_bytes());

        // "hist": the stiffly-stable history ring (velocity and
        // nonlinear-term quadrature fields, newest first).
        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.hist_uq.len());
        for (uq, vq) in &self.hist_uq {
            e.vecs(uq);
            e.vecs(vq);
        }
        e.usize(self.hist_n.len());
        for (nu, nv) in &self.hist_n {
            e.vecs(nu);
            e.vecs(nv);
        }
        w.section("hist", e.into_bytes());

        let mut e = nkt_ckpt::Enc::new();
        e.usize(self.steps_taken);
        w.section("steps", e.into_bytes());

        let mut e = nkt_ckpt::Enc::new();
        for t in self.clock.totals {
            e.f64(t);
        }
        w.section(nkt_ckpt::CLOCK_SECTION, e.into_bytes());
    }

    fn read_sections(&mut self, f: &nkt_ckpt::CkptFile) -> Result<(), nkt_ckpt::CkptError> {
        let mut d = f.dec("fields")?;
        d.expect_u64(self.viscous.asm.ndof as u64, "serial2d dof count")?;
        self.u = d.f64s()?;
        self.v = d.f64s()?;
        self.p = d.f64s()?;
        self.ud_u = d.f64s()?;
        self.ud_v = d.f64s()?;
        d.finish()?;

        let mut d = f.dec("hist")?;
        let n_uq = d.len_prefix(64)?;
        self.hist_uq.clear();
        for _ in 0..n_uq {
            let uq = d.vecs()?;
            let vq = d.vecs()?;
            self.hist_uq.push_back((uq, vq));
        }
        let n_n = d.len_prefix(64)?;
        self.hist_n.clear();
        for _ in 0..n_n {
            let nu = d.vecs()?;
            let nv = d.vecs()?;
            self.hist_n.push_back((nu, nv));
        }
        d.finish()?;

        let mut d = f.dec("steps")?;
        self.steps_taken = d.u64()? as usize;
        d.finish()?;

        let mut d = f.dec(nkt_ckpt::CLOCK_SECTION)?;
        for t in self.clock.totals.iter_mut() {
            *t = d.f64()?;
        }
        d.finish()?;
        Ok(())
    }

    fn ckpt_step(&self) -> u64 {
        self.steps_taken as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_mesh::rect_quads;

    #[allow(clippy::type_complexity)]
    fn taylor_green(nu: f64) -> (
        impl Fn([f64; 2], f64) -> f64 + Copy,
        impl Fn([f64; 2], f64) -> f64 + Copy,
    ) {
        let pi = std::f64::consts::PI;
        let u = move |x: [f64; 2], t: f64| {
            (pi * x[0]).sin() * (pi * x[1]).cos() * (-2.0 * pi * pi * nu * t).exp()
        };
        let v = move |x: [f64; 2], t: f64| {
            -(pi * x[0]).cos() * (pi * x[1]).sin() * (-2.0 * pi * pi * nu * t).exp()
        };
        (u, v)
    }

    /// Taylor-Green vortex: exact unsteady Navier-Stokes solution. With
    /// Dirichlet data from the exact solution the solver should track it.
    #[test]
    fn taylor_green_tracks_exact_solution() {
        let nu = 0.05;
        let (ex_u, ex_v) = taylor_green(nu);
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let cfg = SolverConfig { order: 6, dt: 2e-3, nu, scheme_order: 2, advect: true };
        // Time-dependent BCs would need per-step updates; on this domain
        // the exact velocity is zero on the boundary at all times
        // (cos(pi x) sin(pi y) vanishes on integer boundaries) — so static
        // zero Dirichlet data is exact.
        let mut s = Serial2dSolver::new(mesh, cfg, |x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        s.set_initial(|x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        let n = 25;
        for k in 0..n {
            let tn = (k + 1) as f64 * 2e-3;
            s.update_dirichlet(|x| ex_u(x, tn), |x| ex_v(x, tn));
            s.step();
        }
        let t = n as f64 * 2e-3;
        let err = s.velocity_error(|x| ex_u(x, t), |x| ex_v(x, t));
        // Field magnitude is O(1) over a 2x2 domain: demand < 1% L2.
        assert!(err < 2e-2, "Taylor-Green L2 error {err}");
    }

    #[test]
    fn kinetic_energy_decays_at_viscous_rate() {
        let nu = 0.1;
        let (ex_u, ex_v) = taylor_green(nu);
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let cfg = SolverConfig { order: 5, dt: 2e-3, nu, scheme_order: 2, advect: true };
        let mut s = Serial2dSolver::new(mesh, cfg, |x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        s.set_initial(|x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        let e0 = s.kinetic_energy();
        let n = 20;
        for k in 0..n {
            let tn = (k + 1) as f64 * 2e-3;
            s.update_dirichlet(|x| ex_u(x, tn), |x| ex_v(x, tn));
            s.step();
        }
        let t = n as f64 * 2e-3;
        let expect = e0 * (-4.0 * std::f64::consts::PI.powi(2) * nu * t).exp();
        let e1 = s.kinetic_energy();
        assert!(
            (e1 - expect).abs() / expect < 0.05,
            "energy {e1} vs expected {expect}"
        );
    }

    #[test]
    fn divergence_stays_small() {
        let nu = 0.05;
        let (ex_u, ex_v) = taylor_green(nu);
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let cfg = SolverConfig { order: 5, dt: 2e-3, nu, scheme_order: 2, advect: true };
        let mut s = Serial2dSolver::new(mesh, cfg, |x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        s.set_initial(|x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        for k in 0..10 {
            let tn = (k + 1) as f64 * 2e-3;
            s.update_dirichlet(|x| ex_u(x, tn), |x| ex_v(x, tn));
            s.step();
        }
        let div = s.divergence_norm();
        assert!(div < 0.1, "divergence {div}");
    }

    #[test]
    fn stokes_mode_disables_advection() {
        // Pure diffusion of the same field (advection off): TG velocity is
        // also an exact Stokes solution (its nonlinear term is a gradient,
        // absorbed into pressure; without advection the pressure is zero
        // and diffusion acts alone) — decay rate identical.
        let nu = 0.1;
        let (ex_u, ex_v) = taylor_green(nu);
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let cfg = SolverConfig { order: 5, dt: 2e-3, nu, scheme_order: 2, advect: false };
        let mut s = Serial2dSolver::new(mesh, cfg, |x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        s.set_initial(|x| ex_u(x, 0.0), |x| ex_v(x, 0.0));
        for k in 0..20 {
            let tn = (k + 1) as f64 * 2e-3;
            s.update_dirichlet(|x| ex_u(x, tn), |x| ex_v(x, tn));
            s.step();
        }
        let t = 20.0 * 2e-3;
        let err = s.velocity_error(|x| ex_u(x, t), |x| ex_v(x, t));
        assert!(err < 2e-2, "Stokes decay error {err}");
    }

    #[test]
    fn stage_clock_populated_and_solves_dominate() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
        let cfg = SolverConfig { order: 6, dt: 1e-3, nu: 0.01, scheme_order: 2, advect: true };
        let mut s = Serial2dSolver::new(mesh, cfg, |_| 0.0, |_| 0.0);
        s.set_initial(
            |x| (std::f64::consts::PI * x[0]).sin(),
            |x| -(std::f64::consts::PI * x[1]).sin(),
        );
        for _ in 0..3 {
            s.step();
        }
        let p = s.clock.percentages();
        let total: f64 = p.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        // Paper Figure 12: "matrix inversions account for 60% of the total
        // CPU time" — direct solves (stages 5 + 7) must be the dominant
        // cost here too.
        let solves = p[Stage::PressureSolve.index()] + p[Stage::ViscousSolve.index()];
        assert!(solves > 30.0, "solves only {solves}% of step");
    }

    #[test]
    fn recorder_captures_op_stream() {
        let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 2, 2);
        let cfg = SolverConfig { order: 4, dt: 1e-3, nu: 0.01, scheme_order: 2, advect: true };
        let mut s = Serial2dSolver::new(mesh, cfg, |_| 0.0, |_| 0.0);
        s.set_initial(|_| 1.0, |_| 0.0);
        s.recorder = Recorder::enabled();
        s.step();
        let rec = s.recorder.take().unwrap();
        assert!(rec.total_flops() > 0.0);
        // 3 banded solves per step: 1 pressure + 2 velocity.
        let solves = rec
            .work
            .iter()
            .filter(|(_, w)| matches!(w, WorkItem::BandedSolve { .. }))
            .count();
        assert_eq!(solves, 3);
    }

    #[test]
    fn bluff_body_short_run_stays_finite() {
        let mesh = nkt_mesh::bluff_body_mesh(1);
        let cfg = SolverConfig { order: 3, dt: 5e-3, nu: 0.01, scheme_order: 2, advect: true };
        // Laminar unit inflow (the paper's setup).
        let mut s = Serial2dSolver::new(
            mesh,
            cfg,
            |x| if x[0] < -14.0 { 1.0 } else { 0.0 },
            |_| 0.0,
        );
        s.set_initial(|_| 1.0, |_| 0.0);
        for _ in 0..5 {
            s.step();
        }
        let e = s.kinetic_energy();
        assert!(e.is_finite() && e > 0.0, "energy {e}");
        for &c in s.u.iter().chain(s.v.iter()) {
            assert!(c.is_finite());
        }
    }
}
