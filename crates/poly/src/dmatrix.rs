//! Collocation differentiation matrices.
//!
//! D maps nodal values to nodal derivative values: (Df)_i ≈ f'(z_i),
//! exactly when f is a polynomial of degree < Q. Built from barycentric
//! weights, valid for any distinct point set; convenience constructors are
//! provided for the Gauss-Jacobi and Gauss-Lobatto-Jacobi points the
//! spectral/hp method uses.

use crate::interp::barycentric_weights;
use crate::quadrature::{zwgj, zwglj};

/// Differentiation matrix for an arbitrary set of distinct points,
/// row-major: `d[i][j] = dl_j/dx (z_i)` for Lagrange cardinals l_j.
pub fn diff_matrix(z: &[f64]) -> Vec<Vec<f64>> {
    let n = z.len();
    let w = barycentric_weights(z);
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        let mut diag = 0.0;
        for j in 0..n {
            if i != j {
                let v = (w[j] / w[i]) / (z[i] - z[j]);
                d[i][j] = v;
                diag -= v;
            }
        }
        // Row-sum trick: derivative of the constant function is zero,
        // which pins the diagonal and cancels rounding in the off-diagonals.
        d[i][i] = diag;
    }
    d
}

/// Differentiation matrix at the Q Gauss-Jacobi points of weight (α, β).
pub fn diff_matrix_gj(q: usize, alpha: f64, beta: f64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let rule = zwgj(q, alpha, beta);
    let d = diff_matrix(&rule.z);
    (rule.z, d)
}

/// Differentiation matrix at the Q Gauss-Lobatto-Jacobi points.
pub fn diff_matrix_glj(q: usize, alpha: f64, beta: f64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let rule = zwglj(q, alpha, beta);
    let d = diff_matrix(&rule.z);
    (rule.z, d)
}

/// Applies a differentiation matrix: `out_i = Σ_j d[i][j] f_j`.
pub fn apply(d: &[Vec<f64>], f: &[f64], out: &mut [f64]) {
    for (i, row) in d.iter().enumerate() {
        out[i] = row.iter().zip(f).map(|(a, b)| a * b).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_zero() {
        let (_, d) = diff_matrix_glj(7, 0.0, 0.0);
        for row in &d {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn differentiates_polynomials_exactly() {
        let q = 6;
        let (z, d) = diff_matrix_glj(q, 0.0, 0.0);
        // degree q-1 = 5 polynomial and its exact derivative.
        let p = |x: f64| x.powi(5) - 2.0 * x.powi(3) + x;
        let dp = |x: f64| 5.0 * x.powi(4) - 6.0 * x * x + 1.0;
        let f: Vec<f64> = z.iter().map(|&x| p(x)).collect();
        let mut out = vec![0.0; q];
        apply(&d, &f, &mut out);
        for i in 0..q {
            assert!((out[i] - dp(z[i])).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn gauss_points_variant_differentiates() {
        let q = 5;
        let (z, d) = diff_matrix_gj(q, 0.0, 0.0);
        let f: Vec<f64> = z.iter().map(|&x| x * x).collect();
        let mut out = vec![0.0; q];
        apply(&d, &f, &mut out);
        for i in 0..q {
            assert!((out[i] - 2.0 * z[i]).abs() < 1e-11);
        }
    }

    #[test]
    fn spectral_convergence_on_smooth_function() {
        // Max pointwise derivative error of sin(2x) should fall rapidly.
        let mut last = f64::MAX;
        for q in [4, 6, 8, 10, 12] {
            let (z, d) = diff_matrix_glj(q, 0.0, 0.0);
            let f: Vec<f64> = z.iter().map(|&x| (2.0 * x).sin()).collect();
            let mut out = vec![0.0; q];
            apply(&d, &f, &mut out);
            let err = z
                .iter()
                .zip(&out)
                .map(|(&x, &dv)| (dv - 2.0 * (2.0 * x).cos()).abs())
                .fold(0.0f64, f64::max);
            assert!(err < last, "q={q}: {err} !< {last}");
            last = err;
        }
        assert!(last < 1e-6);
    }

    #[test]
    fn second_derivative_via_d_squared() {
        let q = 10;
        let (z, d) = diff_matrix_glj(q, 0.0, 0.0);
        let f: Vec<f64> = z.iter().map(|&x| x.powi(4)).collect();
        let mut df = vec![0.0; q];
        let mut d2f = vec![0.0; q];
        apply(&d, &f, &mut df);
        apply(&d, &df, &mut d2f);
        for i in 0..q {
            assert!((d2f[i] - 12.0 * z[i] * z[i]).abs() < 1e-8);
        }
    }
}
