//! Gauss-Jacobi family quadrature rules (Polylib `zwgj`, `zwgrjm`,
//! `zwgrjp`, `zwglj`).
//!
//! A rule integrates f against the Jacobi weight (1−x)^α (1+x)^β on
//! [−1, 1]. Exactness: Gauss 2Q−1, Gauss-Radau 2Q−2, Gauss-Lobatto 2Q−3
//! for Q points.

use crate::jacobi::{gamma_fn, jacobi, jacobi_derivative, jacobi_zeros};

/// A quadrature rule: points `z` and weights `w` on [−1, 1].
#[derive(Debug, Clone, PartialEq)]
pub struct QuadRule {
    /// Quadrature points, ascending in (−1, 1) (endpoints included for
    /// Radau/Lobatto rules).
    pub z: Vec<f64>,
    /// Quadrature weights.
    pub w: Vec<f64>,
}

impl QuadRule {
    /// Applies the rule: Σ w_i f(z_i).
    pub fn integrate(&self, f: impl Fn(f64) -> f64) -> f64 {
        self.z.iter().zip(&self.w).map(|(&z, &w)| w * f(z)).sum()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// True when the rule has no points.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// Gauss-Jacobi rule with `q` points: zeros of P^{α,β}_q.
/// Exact for polynomials of degree ≤ 2q − 1 against the Jacobi weight.
///
/// # Panics
/// Panics if `q == 0`.
pub fn zwgj(q: usize, alpha: f64, beta: f64) -> QuadRule {
    assert!(q > 0, "zwgj: need at least one point");
    let z = jacobi_zeros(q, alpha, beta);
    let qf = q as f64;
    let fac = 2.0f64.powf(alpha + beta + 1.0) * gamma_fn(alpha + qf + 1.0)
        * gamma_fn(beta + qf + 1.0)
        / (gamma_fn(qf + 1.0) * gamma_fn(alpha + beta + qf + 1.0));
    let w = z
        .iter()
        .map(|&zi| {
            let dp = jacobi_derivative(q, alpha, beta, zi);
            fac / ((1.0 - zi * zi) * dp * dp)
        })
        .collect();
    QuadRule { z, w }
}

/// Gauss-Radau-Jacobi rule with `q` points *including z = −1*
/// (Polylib `zwgrjm`). Exact for degree ≤ 2q − 2.
pub fn zwgrjm(q: usize, alpha: f64, beta: f64) -> QuadRule {
    assert!(q > 0, "zwgrjm: need at least one point");
    if q == 1 {
        return QuadRule { z: vec![-1.0], w: vec![2.0] };
    }
    let mut z = vec![-1.0];
    z.extend(jacobi_zeros(q - 1, alpha, beta + 1.0));
    let qf = q as f64;
    let fac = 2.0f64.powf(alpha + beta) * gamma_fn(alpha + qf) * gamma_fn(beta + qf)
        / (gamma_fn(qf) * (beta + qf) * gamma_fn(alpha + beta + qf + 1.0));
    let mut w: Vec<f64> = z
        .iter()
        .map(|&zi| {
            let p = jacobi(q - 1, alpha, beta, zi);
            fac * (1.0 - zi) / (p * p)
        })
        .collect();
    w[0] *= beta + 1.0;
    QuadRule { z, w }
}

/// Gauss-Radau-Jacobi rule with `q` points *including z = +1*
/// (Polylib `zwgrjp`). Exact for degree ≤ 2q − 2.
pub fn zwgrjp(q: usize, alpha: f64, beta: f64) -> QuadRule {
    assert!(q > 0, "zwgrjp: need at least one point");
    if q == 1 {
        return QuadRule { z: vec![1.0], w: vec![2.0] };
    }
    let mut z = jacobi_zeros(q - 1, alpha + 1.0, beta);
    z.push(1.0);
    let qf = q as f64;
    let fac = 2.0f64.powf(alpha + beta) * gamma_fn(alpha + qf) * gamma_fn(beta + qf)
        / (gamma_fn(qf) * (alpha + qf) * gamma_fn(alpha + beta + qf + 1.0));
    let mut w: Vec<f64> = z
        .iter()
        .map(|&zi| {
            let p = jacobi(q - 1, alpha, beta, zi);
            fac * (1.0 + zi) / (p * p)
        })
        .collect();
    let last = w.len() - 1;
    w[last] *= alpha + 1.0;
    QuadRule { z, w }
}

/// Gauss-Lobatto-Jacobi rule with `q` points including both endpoints
/// (Polylib `zwglj`). Exact for degree ≤ 2q − 3. This is the rule the
/// spectral/hp element method collocates on.
///
/// # Panics
/// Panics if `q < 2` (both endpoints are always included).
pub fn zwglj(q: usize, alpha: f64, beta: f64) -> QuadRule {
    assert!(q >= 2, "zwglj: need at least two points");
    let mut z = vec![-1.0];
    if q > 2 {
        z.extend(jacobi_zeros(q - 2, alpha + 1.0, beta + 1.0));
    }
    z.push(1.0);
    let qf = q as f64;
    let fac = 2.0f64.powf(alpha + beta + 1.0) * gamma_fn(alpha + qf) * gamma_fn(beta + qf)
        / ((qf - 1.0) * gamma_fn(qf) * gamma_fn(alpha + beta + qf + 1.0));
    let mut w: Vec<f64> = z
        .iter()
        .map(|&zi| {
            let p = jacobi(q - 1, alpha, beta, zi);
            fac / (p * p)
        })
        .collect();
    w[0] *= beta + 1.0;
    let last = w.len() - 1;
    w[last] *= alpha + 1.0;
    QuadRule { z, w }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ∫_{-1}^{1} (1-x)^a (1+x)^b dx = 2^{a+b+1} B(a+1, b+1).
    fn jacobi_weight_mass(a: f64, b: f64) -> f64 {
        2.0f64.powf(a + b + 1.0) * gamma_fn(a + 1.0) * gamma_fn(b + 1.0)
            / gamma_fn(a + b + 2.0)
    }

    #[test]
    fn gauss_legendre_three_points_known_values() {
        let r = zwgj(3, 0.0, 0.0);
        let s = (0.6f64).sqrt();
        assert!((r.z[0] + s).abs() < 1e-13);
        assert!(r.z[1].abs() < 1e-13);
        assert!((r.z[2] - s).abs() < 1e-13);
        assert!((r.w[0] - 5.0 / 9.0).abs() < 1e-13);
        assert!((r.w[1] - 8.0 / 9.0).abs() < 1e-13);
        assert!((r.w[2] - 5.0 / 9.0).abs() < 1e-13);
    }

    #[test]
    fn gll_five_points_known_values() {
        // Q=5 Gauss-Lobatto-Legendre: z = {±1, ±sqrt(3/7), 0},
        // w = {1/10, 49/90, 32/45, 49/90, 1/10}.
        let r = zwglj(5, 0.0, 0.0);
        let s = (3.0f64 / 7.0).sqrt();
        let zs = [-1.0, -s, 0.0, s, 1.0];
        let ws = [0.1, 49.0 / 90.0, 32.0 / 45.0, 49.0 / 90.0, 0.1];
        for i in 0..5 {
            assert!((r.z[i] - zs[i]).abs() < 1e-13, "z[{i}]");
            assert!((r.w[i] - ws[i]).abs() < 1e-13, "w[{i}]: {} vs {}", r.w[i], ws[i]);
        }
    }

    #[test]
    fn weights_sum_to_interval_mass() {
        for &(a, b) in &[(0.0, 0.0), (1.0, 1.0), (0.5, 0.0), (2.0, 1.0)] {
            let mass = jacobi_weight_mass(a, b);
            for q in 2..10 {
                for rule in [zwgj(q, a, b), zwgrjm(q, a, b), zwgrjp(q, a, b), zwglj(q, a, b)] {
                    let total: f64 = rule.w.iter().sum();
                    assert!(
                        (total - mass).abs() < 1e-10,
                        "a={a} b={b} q={q}: sum {total} vs {mass}"
                    );
                }
            }
        }
    }

    #[test]
    fn gauss_exactness_degree_2q_minus_1() {
        // Integrate x^p exactly for p <= 2q-1 (Legendre weight).
        for q in 1..8 {
            let r = zwgj(q, 0.0, 0.0);
            for p in 0..(2 * q) {
                let got = r.integrate(|x| x.powi(p as i32));
                let exact = if p % 2 == 1 { 0.0 } else { 2.0 / (p as f64 + 1.0) };
                assert!(
                    (got - exact).abs() < 1e-12,
                    "q={q} p={p}: {got} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn lobatto_exactness_degree_2q_minus_3() {
        for q in 2..9 {
            let r = zwglj(q, 0.0, 0.0);
            for p in 0..(2 * q - 2) {
                let got = r.integrate(|x| x.powi(p as i32));
                let exact = if p % 2 == 1 { 0.0 } else { 2.0 / (p as f64 + 1.0) };
                assert!((got - exact).abs() < 1e-11, "q={q} p={p}");
            }
        }
    }

    #[test]
    fn radau_exactness_degree_2q_minus_2() {
        for q in 2..8 {
            for rule in [zwgrjm(q, 0.0, 0.0), zwgrjp(q, 0.0, 0.0)] {
                for p in 0..(2 * q - 1) {
                    let got = rule.integrate(|x| x.powi(p as i32));
                    let exact = if p % 2 == 1 { 0.0 } else { 2.0 / (p as f64 + 1.0) };
                    assert!((got - exact).abs() < 1e-11, "q={q} p={p}");
                }
            }
        }
    }

    #[test]
    fn radau_rules_contain_their_endpoint() {
        let rm = zwgrjm(6, 0.0, 0.0);
        assert!((rm.z[0] + 1.0).abs() < 1e-15);
        let rp = zwgrjp(6, 0.0, 0.0);
        assert!((rp.z[5] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lobatto_endpoints_included() {
        for q in 2..10 {
            let r = zwglj(q, 0.0, 0.0);
            assert!((r.z[0] + 1.0).abs() < 1e-15);
            assert!((r.z[q - 1] - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn weights_positive() {
        for q in 2..12 {
            for rule in [
                zwgj(q, 0.0, 0.0),
                zwglj(q, 1.0, 1.0),
                zwgrjm(q, 0.5, 0.5),
                zwgrjp(q, 0.0, 1.0),
            ] {
                for &w in &rule.w {
                    assert!(w > 0.0, "q={q}: nonpositive weight {w}");
                }
            }
        }
    }

    #[test]
    fn integrates_smooth_function_spectrally() {
        // ∫ e^x dx = e - 1/e; error should collapse fast with q.
        let exact = std::f64::consts::E - 1.0 / std::f64::consts::E;
        let mut last_err = f64::MAX;
        for q in 2..10 {
            let err = (zwgj(q, 0.0, 0.0).integrate(f64::exp) - exact).abs();
            assert!(err < last_err.max(1e-14), "q={q}: err {err} >= {last_err}");
            last_err = err;
        }
        assert!(last_err < 1e-13);
    }

    #[test]
    fn gauss_jacobi_weighted_integral() {
        // ∫ (1-x)(1+x) x^2 dx with the (1,1) weight absorbed by the rule:
        // rule with alpha=beta=1 integrates f(x)=x^2 against (1-x)(1+x).
        // Exact: ∫ x^2 (1-x^2) dx = 2/3 - 2/5 = 4/15.
        let r = zwgj(4, 1.0, 1.0);
        let got = r.integrate(|x| x * x);
        assert!((got - 4.0 / 15.0).abs() < 1e-13, "{got}");
    }
}
