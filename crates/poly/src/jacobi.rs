//! Jacobi polynomial evaluation and root finding.
//!
//! P^{α,β}_n(x) satisfies the standard three-term recurrence
//! (Abramowitz & Stegun 22.7.1). Derivatives use
//! d/dx P^{α,β}_n = (n+α+β+1)/2 · P^{α+1,β+1}_{n−1}.

/// Evaluates the Jacobi polynomial P^{α,β}_n at `x` by the three-term
/// recurrence. Exact for the polynomial degree, numerically stable on
/// [−1, 1] for the α, β ≥ −1/2 range the spectral basis uses.
pub fn jacobi(n: usize, alpha: f64, beta: f64, x: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let p1 = 0.5 * (alpha - beta + (alpha + beta + 2.0) * x);
    if n == 1 {
        return p1;
    }
    let mut pnm1 = 1.0;
    let mut pn = p1;
    for k in 1..n {
        let kf = k as f64;
        let a1 = 2.0 * (kf + 1.0) * (kf + alpha + beta + 1.0) * (2.0 * kf + alpha + beta);
        let a2 = (2.0 * kf + alpha + beta + 1.0) * (alpha * alpha - beta * beta);
        let a3 = (2.0 * kf + alpha + beta)
            * (2.0 * kf + alpha + beta + 1.0)
            * (2.0 * kf + alpha + beta + 2.0);
        let a4 = 2.0 * (kf + alpha) * (kf + beta) * (2.0 * kf + alpha + beta + 2.0);
        let pnp1 = ((a2 + a3 * x) * pn - a4 * pnm1) / a1;
        pnm1 = pn;
        pn = pnp1;
    }
    pn
}

/// Evaluates d/dx P^{α,β}_n at `x`.
pub fn jacobi_derivative(n: usize, alpha: f64, beta: f64, x: f64) -> f64 {
    if n == 0 {
        0.0
    } else {
        0.5 * (n as f64 + alpha + beta + 1.0) * jacobi(n - 1, alpha + 1.0, beta + 1.0, x)
    }
}

/// Second derivative d²/dx² P^{α,β}_n at `x`.
pub fn jacobi_second_derivative(n: usize, alpha: f64, beta: f64, x: f64) -> f64 {
    if n < 2 {
        0.0
    } else {
        0.25 * (n as f64 + alpha + beta + 1.0)
            * (n as f64 + alpha + beta + 2.0)
            * jacobi(n - 2, alpha + 2.0, beta + 2.0, x)
    }
}

/// Computes the `n` zeros of P^{α,β}_n in ascending order by Newton
/// iteration with polynomial deflation (the classical Polylib `jacobz`
/// algorithm). Initial guesses are Chebyshev points nudged by the
/// previously found root.
pub fn jacobi_zeros(n: usize, alpha: f64, beta: f64) -> Vec<f64> {
    const MAX_ITER: usize = 80;
    const EPS: f64 = 1e-15;
    let mut roots = Vec::with_capacity(n);
    for k in 0..n {
        // Chebyshev-like initial guess, averaged with the previous root to
        // keep iterates in the correct bracket.
        let mut r = -f64::cos((2.0 * k as f64 + 1.0) * std::f64::consts::PI / (2.0 * n as f64));
        if k > 0 {
            r = 0.5 * (r + roots[k - 1]);
        }
        for _ in 0..MAX_ITER {
            // Deflate previously found roots so Newton converges to a new one.
            let mut defl = 0.0;
            for &rj in roots.iter().take(k) {
                defl += 1.0 / (r - rj);
            }
            let p = jacobi(n, alpha, beta, r);
            let dp = jacobi_derivative(n, alpha, beta, r);
            let delta = -p / (dp - defl * p);
            r += delta;
            if delta.abs() < EPS {
                break;
            }
        }
        roots.push(r);
    }
    roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
    roots
}

/// Γ(x) for the half-integer and integer arguments quadrature weights need
/// (Lanczos approximation; |relative error| < 2e-10 over the range used).
pub fn gamma_fn(x: f64) -> f64 {
    // Lanczos g=7, n=9 coefficients.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const C: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_low_orders_legendre() {
        // alpha = beta = 0 gives Legendre: P2 = (3x^2 - 1)/2.
        for &x in &[-1.0, -0.3, 0.0, 0.7, 1.0] {
            assert!((jacobi(0, 0.0, 0.0, x) - 1.0).abs() < 1e-15);
            assert!((jacobi(1, 0.0, 0.0, x) - x).abs() < 1e-15);
            assert!((jacobi(2, 0.0, 0.0, x) - 0.5 * (3.0 * x * x - 1.0)).abs() < 1e-14);
            assert!(
                (jacobi(3, 0.0, 0.0, x) - 0.5 * (5.0 * x * x * x - 3.0 * x)).abs() < 1e-14
            );
        }
    }

    #[test]
    fn jacobi_chebyshev_relation() {
        // P^{-1/2,-1/2}_n(x) ∝ T_n(x): check ratio constancy at two points.
        let n = 5;
        let t = |x: f64| (n as f64 * x.acos()).cos();
        let r1 = jacobi(n, -0.5, -0.5, 0.3) / t(0.3);
        let r2 = jacobi(n, -0.5, -0.5, -0.62) / t(-0.62);
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn jacobi_value_at_one() {
        // P^{α,β}_n(1) = C(n+α, n).
        let binom = |top: f64, n: usize| -> f64 {
            let mut v = 1.0;
            for i in 0..n {
                v *= (top - i as f64) / (n - i) as f64;
            }
            v
        };
        for n in 0..8 {
            for &(a, b) in &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)] {
                let expect = binom(n as f64 + a, n);
                assert!(
                    (jacobi(n, a, b, 1.0) - expect).abs() < 1e-12,
                    "n={n} a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for n in 1..8 {
            for &x in &[-0.8, -0.1, 0.4, 0.9] {
                let fd = (jacobi(n, 1.0, 1.0, x + h) - jacobi(n, 1.0, 1.0, x - h)) / (2.0 * h);
                let an = jacobi_derivative(n, 1.0, 1.0, x);
                assert!((fd - an).abs() < 1e-6, "n={n} x={x}: fd={fd} an={an}");
            }
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference() {
        let h = 1e-4;
        for n in 2..7 {
            let x = 0.3;
            let fd = (jacobi(n, 0.0, 0.0, x + h) - 2.0 * jacobi(n, 0.0, 0.0, x)
                + jacobi(n, 0.0, 0.0, x - h))
                / (h * h);
            let an = jacobi_second_derivative(n, 0.0, 0.0, x);
            assert!((fd - an).abs() < 1e-5, "n={n}");
        }
    }

    #[test]
    fn zeros_are_roots_and_sorted() {
        for n in 1..12 {
            for &(a, b) in &[(0.0, 0.0), (1.0, 1.0), (0.5, 1.5)] {
                let z = jacobi_zeros(n, a, b);
                assert_eq!(z.len(), n);
                for w in z.windows(2) {
                    assert!(w[0] < w[1], "not sorted: {z:?}");
                }
                for &r in &z {
                    assert!(r > -1.0 && r < 1.0, "root outside (-1,1): {r}");
                    assert!(
                        jacobi(n, a, b, r).abs() < 1e-10,
                        "P_{n}^{{{a},{b}}}({r}) = {}",
                        jacobi(n, a, b, r)
                    );
                }
            }
        }
    }

    #[test]
    fn legendre_zeros_symmetric() {
        let z = jacobi_zeros(6, 0.0, 0.0);
        for i in 0..3 {
            assert!((z[i] + z[5 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_integer_values() {
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            assert!(
                (gamma_fn((n + 1) as f64) - f).abs() / f < 1e-10,
                "Gamma({}) = {}",
                n + 1,
                gamma_fn((n + 1) as f64)
            );
        }
    }

    #[test]
    fn gamma_half() {
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma_fn(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }
}
