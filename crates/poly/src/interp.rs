//! Lagrange interpolation through arbitrary distinct point sets, using the
//! barycentric formula (numerically stable for the Gauss-family points the
//! spectral method uses).

/// Computes barycentric weights a_i = 1 / ∏_{k≠i} (z_i − z_k).
///
/// # Panics
/// Panics if two points coincide.
pub fn barycentric_weights(z: &[f64]) -> Vec<f64> {
    let n = z.len();
    let mut w = vec![1.0; n];
    for i in 0..n {
        for k in 0..n {
            if k != i {
                let d = z[i] - z[k];
                assert!(d != 0.0, "barycentric_weights: duplicate points at {i},{k}");
                w[i] *= d;
            }
        }
        w[i] = 1.0 / w[i];
    }
    w
}

/// Evaluates the Lagrange interpolant through (z_i, f_i) at `x` using the
/// second (true) barycentric form. Exact at the nodes.
pub fn lagrange_eval(z: &[f64], f: &[f64], x: f64) -> f64 {
    assert_eq!(z.len(), f.len());
    let w = barycentric_weights(z);
    lagrange_eval_with_weights(z, &w, f, x)
}

/// Barycentric evaluation reusing precomputed weights.
pub fn lagrange_eval_with_weights(z: &[f64], w: &[f64], f: &[f64], x: f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..z.len() {
        let d = x - z[i];
        if d == 0.0 {
            return f[i];
        }
        let t = w[i] / d;
        num += t * f[i];
        den += t;
    }
    num / den
}

/// Builds the interpolation matrix I mapping values at points `zfrom` to
/// values at points `zto`: `(I f)(zto_i) = Σ_j I[i][j] f(zfrom_j)`.
/// Returned row-major as `Vec<Vec<f64>>` (`zto.len()` rows).
pub fn interp_matrix(zfrom: &[f64], zto: &[f64]) -> Vec<Vec<f64>> {
    let w = barycentric_weights(zfrom);
    let n = zfrom.len();
    zto.iter()
        .map(|&x| {
            // Row = Lagrange cardinal functions at x.
            if let Some(hit) = zfrom.iter().position(|&zj| x == zj) {
                let mut row = vec![0.0; n];
                row[hit] = 1.0;
                return row;
            }
            let mut den = 0.0;
            let mut row = vec![0.0; n];
            for j in 0..n {
                let t = w[j] / (x - zfrom[j]);
                row[j] = t;
                den += t;
            }
            for v in &mut row {
                *v /= den;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::{zwgj, zwglj};

    #[test]
    fn exact_at_nodes() {
        let z = vec![-1.0, -0.3, 0.2, 0.9];
        let f: Vec<f64> = z.iter().map(|&x| x * x - 2.0 * x).collect();
        for (i, &zi) in z.iter().enumerate() {
            assert_eq!(lagrange_eval(&z, &f, zi), f[i]);
        }
    }

    #[test]
    fn reproduces_polynomials_up_to_degree() {
        // 5 points reproduce any quartic exactly.
        let z = zwglj(5, 0.0, 0.0).z;
        let p = |x: f64| 3.0 * x.powi(4) - x.powi(3) + 0.5 * x - 7.0;
        let f: Vec<f64> = z.iter().map(|&x| p(x)).collect();
        for &x in &[-0.77, -0.2, 0.11, 0.63] {
            assert!((lagrange_eval(&z, &f, x) - p(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn interp_matrix_rows_sum_to_one() {
        // Cardinal functions partition unity (interpolating constant 1).
        let zf = zwgj(6, 0.0, 0.0).z;
        let zt = vec![-0.9, -0.5, 0.0, 0.4, 0.95];
        let m = interp_matrix(&zf, &zt);
        for row in &m {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn interp_matrix_identity_when_same_points() {
        let z = zwglj(4, 0.0, 0.0).z;
        let m = interp_matrix(&z, &z);
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gauss_to_lobatto_transfer_is_accurate() {
        let zg = zwgj(8, 0.0, 0.0).z;
        let zl = zwglj(8, 0.0, 0.0).z;
        let m = interp_matrix(&zg, &zl);
        let f: Vec<f64> = zg.iter().map(|&x| (2.0 * x).sin()).collect();
        for (i, &x) in zl.iter().enumerate() {
            let got: f64 = m[i].iter().zip(&f).map(|(a, b)| a * b).sum();
            assert!((got - (2.0 * x).sin()).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    #[should_panic]
    fn duplicate_points_panic() {
        barycentric_weights(&[0.0, 0.5, 0.5]);
    }
}
