//! # nkt-poly — Jacobi polynomials and Gaussian quadrature
//!
//! The spectral/hp element method of Karniadakis & Sherwin (1999) — the
//! numerical method underlying every application benchmark in the SC'99
//! paper — is built on hierarchical (Jacobi) polynomial expansions
//! integrated with Gauss-Jacobi family quadrature. This crate is the
//! equivalent of NekTar's `Polylib`:
//!
//! * [`jacobi`](mod@jacobi) — evaluation of P^{α,β}_n(x) and derivatives via the
//!   three-term recurrence; zero-finding by Newton iteration with
//!   deflation.
//! * [`quadrature`] — Gauss, Gauss-Radau and Gauss-Lobatto Jacobi points
//!   and weights (`zwgj`, `zwgrjm`, `zwgrjp`, `zwglj` in Polylib naming).
//! * [`dmatrix`] — collocation differentiation matrices at those points.
//! * [`interp`] — Lagrange interpolation matrices between point sets.

#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]
pub mod dmatrix;
pub mod interp;
pub mod jacobi;
pub mod quadrature;

pub use dmatrix::{diff_matrix_gj, diff_matrix_glj};
pub use interp::{interp_matrix, lagrange_eval};
pub use jacobi::{jacobi, jacobi_derivative, jacobi_zeros};
pub use quadrature::{zwgj, zwglj, zwgrjm, zwgrjp, QuadRule};
