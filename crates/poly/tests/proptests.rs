//! Property-based tests for nkt-poly: orthogonality, quadrature
//! exactness and interpolation identities over random parameters.

use nkt_poly::jacobi::{jacobi, jacobi_derivative};
use nkt_poly::quadrature::{zwgj, zwglj};
use nkt_poly::{interp_matrix, lagrange_eval};
use nkt_testkit::{prop_assert, prop_assume, prop_check};

prop_check! {
    /// Gauss-Jacobi rules integrate the Jacobi-weighted orthogonality
    /// relation: ∫ (1-x)^a (1+x)^b P_m P_n dx = 0 for m != n.
    fn jacobi_orthogonality(m in 0usize..6, n in 0usize..6, ab in 0usize..3) {
        prop_assume!(m != n);
        let (a, b) = [(0.0, 0.0), (1.0, 1.0), (1.0, 0.0)][ab];
        let q = zwgj(m.max(n) + 2, a, b);
        let integral = q.integrate(|x| jacobi(m, a, b, x) * jacobi(n, a, b, x));
        prop_assert!(integral.abs() < 1e-10, "<P{m},P{n}> = {integral}");
    }

    /// Quadrature exactness on random polynomials of admissible degree.
    fn gauss_integrates_random_polynomials(q in 2usize..8, seed in 0u64..500) {
        let deg = 2 * q - 1;
        let coefs: Vec<f64> = (0..=deg)
            .map(|i| (((i as u64 + seed) * 2654435761 % 1000) as f64 / 500.0) - 1.0)
            .collect();
        let poly = |x: f64| coefs.iter().rev().fold(0.0, |acc, &c| acc * x + c);
        let exact: f64 = coefs
            .iter()
            .enumerate()
            .map(|(i, &c)| if i % 2 == 0 { 2.0 * c / (i as f64 + 1.0) } else { 0.0 })
            .sum();
        let got = zwgj(q, 0.0, 0.0).integrate(poly);
        prop_assert!((got - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    /// d/dx is exact for polynomials under the recurrence-based derivative.
    fn derivative_recurrence_consistent(n in 1usize..9, x in -0.99f64..0.99) {
        // Compare against a central difference of the recurrence itself.
        let h = 1e-6;
        let fd = (jacobi(n, 1.0, 1.0, x + h) - jacobi(n, 1.0, 1.0, x - h)) / (2.0 * h);
        let an = jacobi_derivative(n, 1.0, 1.0, x);
        prop_assert!((fd - an).abs() < 1e-5 * (1.0 + an.abs()));
    }

    /// Interpolation through GLL points reproduces polynomials up to the
    /// rule's degree at arbitrary evaluation points.
    fn interpolation_reproduces_polynomials(q in 3usize..9, x in -1.0f64..1.0, seed in 0u64..200) {
        let z = zwglj(q, 0.0, 0.0).z;
        let deg = q - 1;
        let coefs: Vec<f64> = (0..=deg)
            .map(|i| (((i as u64 * 37 + seed) % 100) as f64 / 50.0) - 1.0)
            .collect();
        let poly = |x: f64| coefs.iter().rev().fold(0.0, |acc, &c| acc * x + c);
        let f: Vec<f64> = z.iter().map(|&zi| poly(zi)).collect();
        let got = lagrange_eval(&z, &f, x);
        prop_assert!((got - poly(x)).abs() < 1e-8 * (1.0 + poly(x).abs()));
    }

    /// Interpolation matrices compose: from->mid->to equals from->to for
    /// polynomial data.
    fn interp_matrices_compose(seed in 0u64..100) {
        let zf = zwglj(5, 0.0, 0.0).z;
        let zm = zwgj(6, 0.0, 0.0).z;
        let zt = vec![-0.7, 0.1, 0.9];
        let a = interp_matrix(&zf, &zm);
        let b = interp_matrix(&zm, &zt);
        let direct = interp_matrix(&zf, &zt);
        let poly = |x: f64| {
            let s = seed as f64 * 0.01;
            x.powi(4) - s * x.powi(3) + 0.5 * x - s
        };
        let f: Vec<f64> = zf.iter().map(|&z| poly(z)).collect();
        let mid: Vec<f64> = a.iter().map(|row| row.iter().zip(&f).map(|(c, v)| c * v).sum()).collect();
        for (i, row) in b.iter().enumerate() {
            let via: f64 = row.iter().zip(&mid).map(|(c, v)| c * v).sum();
            let dir: f64 = direct[i].iter().zip(&f).map(|(c, v)| c * v).sum();
            prop_assert!((via - dir).abs() < 1e-9, "row {i}: {via} vs {dir}");
        }
    }

    /// Quadrature weights are positive and points strictly inside (or on)
    /// the interval for random admissible (alpha, beta).
    fn rules_well_formed(q in 2usize..10, ai in 0usize..4, bi in 0usize..4) {
        let alphas = [0.0, 0.5, 1.0, 2.0];
        let (a, b) = (alphas[ai], alphas[bi]);
        for rule in [zwgj(q, a, b), zwglj(q, a, b)] {
            for w in &rule.w {
                prop_assert!(*w > 0.0);
            }
            for z in &rule.z {
                prop_assert!(*z >= -1.0 && *z <= 1.0);
            }
            for pair in rule.z.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }
}
