//! The ten machines of paper §2, as calibrated model instances.
//!
//! Parameters are chosen so the model's plateaus land on the paper's
//! Figures 1–6: clocks, peak flops/cycle and cache capacities are the
//! documented hardware values; bandwidths and per-kernel efficiencies are
//! calibrated against the figure curves (see EXPERIMENTS.md E1–E6 for the
//! paper-vs-model record).

use crate::model::{CacheLevel, KernelEfficiency, Machine};

/// Identifiers for the machines compared in the paper (§2 items 1–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineId {
    /// §2.1 — 128 × PII 450 MHz AltaCluster at AHPCC ("RoadRunner").
    /// CPU-identical to Muses; differs in network (Fast Ethernet + Myrinet).
    RoadRunner,
    /// §2.2 — the $10k 4 × PII 450 MHz cluster ("Muses").
    Muses,
    /// §2.3 — IBM SP with 332 MHz 604e "Silver" nodes.
    Sp2Silver,
    /// §2.4 — IBM SP with 66 MHz Power2 "Thin2" nodes.
    Sp2Thin2,
    /// §2.5 — IBM SP 160 MHz P2SC "Thin4" nodes at MHPCC.
    P2sc,
    /// §2.6 — SGI Onyx2, 195 MHz R10000.
    Onyx2,
    /// §2.7 — SGI Origin 2000 at NCSA, 250 MHz R10000.
    Ncsa,
    /// §2.8 — Fujitsu AP3000, 300 MHz UltraSPARC.
    Ap3000,
    /// §2.9 — Cray T3E-900, 450 MHz Alpha 21164A (STREAMS prefetch on).
    T3e,
    /// §2.10 — Hitachi SR8000 (pseudo-vector PA-RISC CPUs).
    Hitachi,
}

impl MachineId {
    /// All ten machines in paper order.
    pub const ALL: [MachineId; 10] = [
        MachineId::RoadRunner,
        MachineId::Muses,
        MachineId::Sp2Silver,
        MachineId::Sp2Thin2,
        MachineId::P2sc,
        MachineId::Onyx2,
        MachineId::Ncsa,
        MachineId::Ap3000,
        MachineId::T3e,
        MachineId::Hitachi,
    ];

    /// Paper display name.
    pub fn name(self) -> &'static str {
        machine(self).name
    }
}

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

/// Pentium II 450 MHz node (shared by Muses and RoadRunner — the paper:
/// "Both Muses and RoadRunner use Pentium II, 450 MHz processors").
fn pentium_ii(name: &'static str) -> Machine {
    Machine {
        name,
        clock_mhz: 450.0,
        flops_per_cycle: 1.0, // P6 core: one FP op/cycle sustained
        levels: vec![
            CacheLevel { capacity: 16 * KB, bandwidth_mbs: 3600.0 },
            CacheLevel { capacity: 512 * KB, bandwidth_mbs: 1800.0 },
            // "the PC platform performs well due to its fast 100MHz SDRAM"
            CacheLevel { capacity: usize::MAX, bandwidth_mbs: 320.0 },
        ],
        call_overhead_ns: 150.0,
        // 100 MHz SDRAM sustains dependent sweeps almost as well as
        // streams — the PC's balance is its strength here.
        dependent_bandwidth_mbs: 300.0,
        eff: KernelEfficiency {
            daxpy: 0.33,
            // Paper §3.1: in-cache "the ddot() performance is actually
            // unmatched" relative to its class.
            ddot: 0.90,
            dgemv: 0.85,
            // PC peak is 450 MFlop/s and the free ASCI-Red BLAS plateaus
            // near 330: "not surprising that the PC performance curve is
            // lower than that of most of the competition".
            dgemm: 0.73,
            dcopy: 0.50,
        },
    }
}

/// Builds the model instance for a machine.
pub fn machine(id: MachineId) -> Machine {
    match id {
        MachineId::Muses => pentium_ii("Muses"),
        MachineId::RoadRunner => pentium_ii("RoadRunner"),
        MachineId::Sp2Silver => Machine {
            name: "SP2-Silver",
            clock_mhz: 332.0,
            flops_per_cycle: 2.0, // 604e: FPU madd -> 664 MFlop/s peak
            levels: vec![
                CacheLevel { capacity: 32 * KB, bandwidth_mbs: 2700.0 },
                CacheLevel { capacity: 256 * KB, bandwidth_mbs: 1300.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 180.0 },
            ],
            call_overhead_ns: 180.0,
            dependent_bandwidth_mbs: 170.0,
            eff: KernelEfficiency { daxpy: 0.17, ddot: 0.36, dgemv: 0.45, dgemm: 0.68, dcopy: 0.45 },
        },
        MachineId::Sp2Thin2 => Machine {
            name: "SP2-Thin2",
            clock_mhz: 66.0,
            flops_per_cycle: 4.0, // Power2: two FMA units -> 264 MFlop/s
            levels: vec![
                // 128 KB L1, no L2; 128-bit memory bus feeds it well.
                CacheLevel { capacity: 128 * KB, bandwidth_mbs: 2100.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 700.0 },
            ],
            call_overhead_ns: 250.0,
            dependent_bandwidth_mbs: 200.0,
            eff: KernelEfficiency { daxpy: 0.45, ddot: 0.76, dgemv: 0.95, dgemm: 0.87, dcopy: 0.60 },
        },
        MachineId::P2sc => Machine {
            name: "SP2-P2SC",
            clock_mhz: 160.0,
            flops_per_cycle: 4.0, // P2SC: two FMA units -> 640 MFlop/s
            levels: vec![
                CacheLevel { capacity: 128 * KB, bandwidth_mbs: 2560.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 1100.0 },
            ],
            call_overhead_ns: 220.0,
            dependent_bandwidth_mbs: 420.0,
            eff: KernelEfficiency { daxpy: 0.28, ddot: 0.86, dgemv: 1.0, dgemm: 0.94, dcopy: 0.50 },
        },
        MachineId::Onyx2 => Machine {
            name: "Onyx2",
            clock_mhz: 195.0,
            flops_per_cycle: 2.0, // R10000 madd -> 390 MFlop/s
            levels: vec![
                CacheLevel { capacity: 32 * KB, bandwidth_mbs: 3100.0 },
                CacheLevel { capacity: 4 * MB, bandwidth_mbs: 1100.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 320.0 },
            ],
            call_overhead_ns: 200.0,
            dependent_bandwidth_mbs: 260.0,
            eff: KernelEfficiency { daxpy: 0.26, ddot: 0.67, dgemv: 0.77, dgemm: 0.85, dcopy: 0.40 },
        },
        MachineId::Ncsa => Machine {
            name: "NCSA",
            clock_mhz: 250.0,
            flops_per_cycle: 2.0, // 250 MHz R10000 -> 500 MFlop/s
            levels: vec![
                CacheLevel { capacity: 32 * KB, bandwidth_mbs: 4000.0 },
                CacheLevel { capacity: 4 * MB, bandwidth_mbs: 1400.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 400.0 },
            ],
            call_overhead_ns: 200.0,
            dependent_bandwidth_mbs: 330.0,
            eff: KernelEfficiency { daxpy: 0.26, ddot: 0.67, dgemv: 0.77, dgemm: 0.85, dcopy: 0.40 },
        },
        MachineId::Ap3000 => Machine {
            name: "AP3000",
            clock_mhz: 300.0,
            flops_per_cycle: 2.0, // UltraSPARC-II -> 600 MFlop/s
            levels: vec![
                CacheLevel { capacity: 16 * KB, bandwidth_mbs: 2400.0 },
                CacheLevel { capacity: MB, bandwidth_mbs: 1200.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 280.0 },
            ],
            call_overhead_ns: 200.0,
            dependent_bandwidth_mbs: 215.0,
            eff: KernelEfficiency { daxpy: 0.20, ddot: 0.50, dgemv: 0.58, dgemm: 0.67, dcopy: 0.40 },
        },
        MachineId::T3e => Machine {
            name: "T3E",
            clock_mhz: 450.0,
            flops_per_cycle: 2.0, // 21164A -> 900 MFlop/s
            levels: vec![
                CacheLevel { capacity: 8 * KB, bandwidth_mbs: 4400.0 },
                CacheLevel { capacity: 96 * KB, bandwidth_mbs: 2400.0 },
                // "tests were run with hardware prefetching (STREAMS)
                // enabled" — high sustained memory bandwidth.
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 950.0 },
            ],
            call_overhead_ns: 180.0,
            dependent_bandwidth_mbs: 300.0,
            eff: KernelEfficiency { daxpy: 0.21, ddot: 0.61, dgemv: 0.56, dgemm: 0.87, dcopy: 0.45 },
        },
        MachineId::Hitachi => Machine {
            name: "HITACHI",
            clock_mhz: 250.0,
            flops_per_cycle: 4.0, // pseudo-vector PA-RISC -> 1 GFlop/s
            levels: vec![
                CacheLevel { capacity: 128 * KB, bandwidth_mbs: 4000.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 2000.0 },
            ],
            call_overhead_ns: 300.0,
            dependent_bandwidth_mbs: 1500.0,
            eff: KernelEfficiency { daxpy: 0.50, ddot: 0.70, dgemv: 0.80, dgemm: 0.90, dcopy: 0.50 },
        },
    }
}

/// The machines in the *left* panels of Figures 1–6:
/// SP2-Thin2, SP2-Silver, Muses, AP3000, Onyx2.
pub fn machines_fig_left() -> Vec<Machine> {
    [
        MachineId::Sp2Thin2,
        MachineId::Sp2Silver,
        MachineId::Muses,
        MachineId::Ap3000,
        MachineId::Onyx2,
    ]
    .into_iter()
    .map(machine)
    .collect()
}

/// The machines in the *right* panels of Figures 1–6:
/// T3E, SP2-P2SC, Muses.
pub fn machines_fig_right() -> Vec<Machine> {
    [MachineId::T3e, MachineId::P2sc, MachineId::Muses]
        .into_iter()
        .map(machine)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Kernel;

    #[test]
    fn all_ten_machines_build() {
        for id in MachineId::ALL {
            let m = machine(id);
            assert!(!m.levels.is_empty());
            assert!(m.peak_mflops() > 0.0);
            assert_eq!(m.levels.last().unwrap().capacity, usize::MAX, "{}", m.name);
        }
    }

    #[test]
    fn muses_and_roadrunner_share_cpu() {
        let a = machine(MachineId::Muses);
        let b = machine(MachineId::RoadRunner);
        assert_eq!(a.clock_mhz, b.clock_mhz);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.eff, b.eff);
    }

    #[test]
    fn paper_peak_flops_are_documented_values() {
        assert_eq!(machine(MachineId::Muses).peak_mflops(), 450.0);
        assert_eq!(machine(MachineId::Sp2Silver).peak_mflops(), 664.0);
        assert_eq!(machine(MachineId::P2sc).peak_mflops(), 640.0);
        assert_eq!(machine(MachineId::T3e).peak_mflops(), 900.0);
        assert_eq!(machine(MachineId::Sp2Thin2).peak_mflops(), 264.0);
    }

    /// The paper's §3.3 conclusion: "the T3E and SP2-P2SC machines are
    /// superior to the PC clusters" at the kernel level for dgemm.
    #[test]
    fn t3e_and_p2sc_beat_pc_on_large_dgemm() {
        let pc = machine(MachineId::Muses);
        let t3e = machine(MachineId::T3e);
        let p2sc = machine(MachineId::P2sc);
        let n = 200;
        let pc_rate = pc.kernel_rate(Kernel::Dgemm, n).mflops;
        assert!(t3e.kernel_rate(Kernel::Dgemm, n).mflops > pc_rate);
        assert!(p2sc.kernel_rate(Kernel::Dgemm, n).mflops > pc_rate);
    }

    /// §3.1: "For the BLAS Level 1 routines ... the PC performance for data
    /// that fit in the first level of cache is among the best" — check the
    /// PII beats the Silver node on in-L1 ddot.
    #[test]
    fn pc_in_l1_ddot_beats_silver() {
        let pc = machine(MachineId::Muses).kernel_rate(Kernel::Ddot, 256); // 4 KB
        let silver = machine(MachineId::Sp2Silver).kernel_rate(Kernel::Ddot, 256);
        assert!(pc.mflops > silver.mflops);
    }

    /// §3.1: "For data that needs to be fetched from main memory, all OS
    /// kernels are memory bandwidth bound, and the PC platform performs
    /// well due to its fast 100MHz SDRAM" — PC out-of-cache daxpy should
    /// beat the Silver node's.
    #[test]
    fn pc_memory_bound_daxpy_beats_silver() {
        let n = 1 << 20; // 16 MB working set
        let pc = machine(MachineId::Muses).kernel_rate(Kernel::Daxpy, n);
        let silver = machine(MachineId::Sp2Silver).kernel_rate(Kernel::Daxpy, n);
        assert!(pc.mflops > silver.mflops);
    }

    #[test]
    fn figure_panel_membership() {
        let left = machines_fig_left();
        assert_eq!(left.len(), 5);
        assert!(left.iter().any(|m| m.name == "Muses"));
        let right = machines_fig_right();
        assert_eq!(right.len(), 3);
        assert!(right.iter().any(|m| m.name == "T3E"));
    }

    #[test]
    fn t3e_dcopy_tops_out_near_2000_mbs() {
        // Figure 1 right panel: T3E peaks near 2 GB/s with STREAMS.
        let t3e = machine(MachineId::T3e);
        let r = t3e.kernel_rate(Kernel::Dcopy, 256); // 4 KB working set
        assert!(r.mbs > 1500.0 && r.mbs < 2300.0, "{}", r.mbs);
    }
}
