//! # nkt-machine — analytic CPU/cache performance models
//!
//! The SC'99 paper's kernel-level CPU comparison (Figures 1–6) sweeps BLAS
//! routines over working-set sizes on ten 1999 machines. None of that
//! hardware exists here, so this crate substitutes a calibrated
//! cache-hierarchy roofline model per machine (see DESIGN.md §2):
//!
//! * a [`Machine`] has a clock, peak flops/cycle, a ladder of
//!   [`CacheLevel`]s ending in DRAM, and per-kernel in-cache efficiency
//!   factors;
//! * a kernel running on a working set that fits in level L runs at
//!   `min(compute ceiling, traffic / bandwidth(L))`, plus a per-call
//!   overhead that produces the small-size roll-off the paper's plots
//!   show on their left edges;
//! * [`catalog`] instantiates the ten machines of paper §2 with parameters
//!   calibrated against the plateaus of Figures 1–6.
//!
//! The model is *predictive within the paper's comparison*, not a cycle
//! simulator: what it must get right is who wins at which working-set
//! size, the cache-edge cliffs, and the memory-bound tails.

pub mod catalog;
pub mod model;

pub use catalog::{machine, machines_fig_left, machines_fig_right, MachineId};
pub use model::{CacheLevel, Kernel, KernelEfficiency, Machine, RatePoint};
