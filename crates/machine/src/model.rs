//! The cache-hierarchy roofline model.

/// One level of the memory hierarchy (L1, L2, ... , DRAM last).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Capacity in bytes. The last level (DRAM) should use `usize::MAX`.
    pub capacity: usize,
    /// Sustained bandwidth for unit-stride streams, MB/s (10^6 bytes/s).
    pub bandwidth_mbs: f64,
}

/// The BLAS kernels the paper sweeps (Figures 1–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `y ← x` — Figure 1, reported in MB/s.
    Dcopy,
    /// `y ← αx + y` — Figure 2, MFlop/s.
    Daxpy,
    /// `xᵀy` — Figure 3, MFlop/s.
    Ddot,
    /// `y ← Ax + y` — Figure 4, MFlop/s.
    Dgemv,
    /// `C ← αAB + βC` — Figures 5–6, MFlop/s.
    Dgemm,
}

impl Kernel {
    /// All five kernels in figure order.
    pub const ALL: [Kernel; 5] = [
        Kernel::Dcopy,
        Kernel::Daxpy,
        Kernel::Ddot,
        Kernel::Dgemv,
        Kernel::Dgemm,
    ];

    /// Display name matching the paper's routine names.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Dcopy => "dcopy",
            Kernel::Daxpy => "daxpy",
            Kernel::Ddot => "ddot",
            Kernel::Dgemv => "dgemv",
            Kernel::Dgemm => "dgemm",
        }
    }
}

/// In-cache efficiency (fraction of the compute ceiling actually reached)
/// per kernel. Vendor BLAS quality is folded in here — e.g. the paper
/// notes the PII's `ddot` is "actually unmatched" in-cache while its
/// `dgemm` plateau sits well below peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelEfficiency {
    /// daxpy efficiency (of flop peak).
    pub daxpy: f64,
    /// ddot efficiency. ddot can exceed daxpy on machines with fused or
    /// dual-issue multiply-add on independent accumulators.
    pub ddot: f64,
    /// dgemv in-cache efficiency.
    pub dgemv: f64,
    /// dgemm asymptotic (large-n) efficiency.
    pub dgemm: f64,
    /// dcopy in-L1 rate as a fraction of L1 bandwidth.
    pub dcopy: f64,
}

/// A modeled machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Paper's short name ("Muses", "T3E", ...).
    pub name: &'static str,
    /// Core clock, MHz.
    pub clock_mhz: f64,
    /// Peak double-precision flops per cycle.
    pub flops_per_cycle: f64,
    /// Memory hierarchy, innermost first; last entry is main memory.
    pub levels: Vec<CacheLevel>,
    /// Per-BLAS-call fixed overhead in nanoseconds (loop setup, function
    /// call, prefetch warmup) — produces the small-size roll-off.
    pub call_overhead_ns: f64,
    /// Sustained memory bandwidth (MB/s) for *dependency-chained* kernels
    /// (triangular/banded solves), which cannot exploit hardware
    /// prefetching or deep pipelining — markedly lower than the streaming
    /// bandwidth on prefetch-heavy machines like the T3E.
    pub dependent_bandwidth_mbs: f64,
    /// In-cache efficiencies per kernel.
    pub eff: KernelEfficiency,
}

/// A predicted operating point: both units the paper uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Megabytes per second moved (dcopy's unit).
    pub mbs: f64,
    /// Megaflops per second (the other kernels' unit).
    pub mflops: f64,
    /// Predicted execution time for one call, seconds.
    pub time_s: f64,
}

impl Machine {
    /// Peak MFlop/s (clock × flops/cycle).
    pub fn peak_mflops(&self) -> f64 {
        self.clock_mhz * self.flops_per_cycle
    }

    /// Bandwidth (MB/s) of the smallest level whose capacity holds
    /// `working_set` bytes.
    pub fn bandwidth_for(&self, working_set: usize) -> f64 {
        for lvl in &self.levels {
            if working_set <= lvl.capacity {
                return lvl.bandwidth_mbs;
            }
        }
        self.levels
            .last()
            .expect("machine must have at least one level")
            .bandwidth_mbs
    }

    /// Predicts the rate for a Level-1 style kernel over vectors of
    /// `n` f64 elements (array size in the paper's x-axis is `8n` bytes
    /// per vector).
    ///
    /// `Dgemv`/`Dgemm` interpret `n` as the matrix dimension (n × n).
    pub fn kernel_rate(&self, kernel: Kernel, n: usize) -> RatePoint {
        match kernel {
            Kernel::Dcopy => {
                // Traffic: read + write = 16 B per element. Working set: the
                // two vectors.
                let bytes = 16.0 * n as f64;
                let ws = 16 * n;
                let bw = self.bandwidth_for(ws) * self.eff_dcopy_for(ws);
                let t = self.call_overhead_ns * 1e-9 + bytes / (bw * 1e6);
                RatePoint { mbs: bytes / t / 1e6, mflops: 0.0, time_s: t }
            }
            Kernel::Daxpy => {
                // 2 flops and 24 B (read x, read y, write y) per element.
                let flops = 2.0 * n as f64;
                let bytes = 24.0 * n as f64;
                self.roofline_point(flops, bytes, 16 * n, self.eff.daxpy)
            }
            Kernel::Ddot => {
                // 2 flops, 16 B per element, no writeback.
                let flops = 2.0 * n as f64;
                let bytes = 16.0 * n as f64;
                self.roofline_point(flops, bytes, 16 * n, self.eff.ddot)
            }
            Kernel::Dgemv => {
                // n × n matrix: 2n^2 flops, matrix streamed once (8n^2 B)
                // plus vectors.
                let nf = n as f64;
                let flops = 2.0 * nf * nf;
                let bytes = 8.0 * nf * nf + 24.0 * nf;
                let ws = 8 * n * n + 16 * n;
                self.roofline_point(flops, bytes, ws, self.eff.dgemv)
            }
            Kernel::Dgemm => {
                // n × n × n: 2n^3 flops. Blocked reuse means memory traffic
                // ~ 3·8n^2 (each matrix streamed O(1) times once blocking
                // kicks in); for tiny n the per-call overhead dominates.
                let nf = n as f64;
                let flops = 2.0 * nf * nf * nf;
                let bytes = 24.0 * nf * nf;
                let ws = 24 * n * n;
                // dgemm efficiency ramps with n: pipeline fills at ~blocking
                // size. eff(n) = asymptotic * n/(n + n_half).
                let n_half = 8.0;
                let eff = self.eff.dgemm * nf / (nf + n_half);
                self.roofline_point(flops, bytes, ws, eff)
            }
        }
    }

    fn eff_dcopy_for(&self, ws: usize) -> f64 {
        // In L1 the copy engine efficiency applies; out of cache the
        // bandwidth number already reflects streaming.
        if ws <= self.levels[0].capacity {
            self.eff.dcopy
        } else {
            1.0
        }
    }

    fn roofline_point(&self, flops: f64, bytes: f64, working_set: usize, eff: f64) -> RatePoint {
        let compute_s = flops / (self.peak_mflops() * eff * 1e6);
        let mem_s = bytes / (self.bandwidth_for(working_set) * 1e6);
        let t = self.call_overhead_ns * 1e-9 + compute_s.max(mem_s);
        RatePoint { mbs: bytes / t / 1e6, mflops: flops / t / 1e6, time_s: t }
    }

    /// Time (seconds) to execute `flops` floating-point operations touching
    /// `bytes` of memory with working set `working_set`, at Level-1-like
    /// efficiency. This is the generic charge the application-level
    /// op-stream replay uses for vector operations.
    pub fn time_stream_op(&self, flops: f64, bytes: f64, working_set: usize) -> f64 {
        let compute_s = flops / (self.peak_mflops() * self.eff.daxpy * 1e6);
        let mem_s = bytes / (self.bandwidth_for(working_set) * 1e6);
        self.call_overhead_ns * 1e-9 + compute_s.max(mem_s)
    }

    /// Time for a banded symmetric solve (forward+back substitution) of
    /// order `n`, bandwidth `kd`: ~`4·n·(kd+1)` flops streaming the factor
    /// once (`8·n·(kd+1)` bytes). Uses the dependency-chain bandwidth:
    /// substitution sweeps cannot be prefetched or software-pipelined the
    /// way pure streams can.
    pub fn time_banded_solve(&self, n: usize, kd: usize) -> f64 {
        let flops = 4.0 * n as f64 * (kd + 1) as f64;
        let bytes = 8.0 * n as f64 * (kd + 1) as f64;
        let compute_s = flops / (self.peak_mflops() * self.eff.dgemv * 1e6);
        let bw = if bytes as usize > self.levels[0].capacity {
            self.dependent_bandwidth_mbs
        } else {
            self.bandwidth_for(bytes as usize)
        };
        let mem_s = bytes / (bw * 1e6);
        self.call_overhead_ns * 1e-9 + compute_s.max(mem_s)
    }

    /// Time for a batch of 1-D FFTs: `batch` transforms of length `len`
    /// (~`5·len·log2(len)` flops each, data streamed once per pass).
    pub fn time_fft_batch(&self, len: usize, batch: usize) -> f64 {
        if len == 0 || batch == 0 {
            return 0.0;
        }
        let lg = (len as f64).log2().max(1.0);
        let flops = 5.0 * len as f64 * lg * batch as f64;
        let bytes = 16.0 * len as f64 * lg * batch as f64 / 2.0;
        let ws = 16 * len;
        let compute_s = flops / (self.peak_mflops() * self.eff.dgemv * 1e6);
        let mem_s = bytes / (self.bandwidth_for(ws) * 1e6);
        self.call_overhead_ns * 1e-9 * batch as f64 + compute_s.max(mem_s)
    }

    /// Time for a dense `m × k` by `k × n` dgemm (used for elemental
    /// operator applications; paper: mostly small k ≤ 10). Matvec-shaped
    /// calls (tiny n) run at dgemv-class efficiency rather than being
    /// punished by the dgemm pipeline-fill ramp.
    pub fn time_gemm(&self, m: usize, n: usize, k: usize) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = 8.0 * (m * k + k * n + 2 * m * n) as f64;
        let nf = (m.min(n).min(k)) as f64;
        let eff = (self.eff.dgemm * nf / (nf + 8.0)).max(self.eff.dgemv);
        let compute_s = flops / (self.peak_mflops() * eff * 1e6);
        let ws = 8 * (m * k + k * n + m * n);
        let mem_s = bytes / (self.bandwidth_for(ws) * 1e6);
        self.call_overhead_ns * 1e-9 + compute_s.max(mem_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Machine {
        Machine {
            name: "toy",
            clock_mhz: 500.0,
            flops_per_cycle: 1.0,
            levels: vec![
                CacheLevel { capacity: 16 * 1024, bandwidth_mbs: 4000.0 },
                CacheLevel { capacity: 512 * 1024, bandwidth_mbs: 1500.0 },
                CacheLevel { capacity: usize::MAX, bandwidth_mbs: 300.0 },
            ],
            call_overhead_ns: 100.0,
            dependent_bandwidth_mbs: 250.0,
            eff: KernelEfficiency { daxpy: 0.9, ddot: 0.95, dgemv: 0.8, dgemm: 0.85, dcopy: 0.5 },
        }
    }

    #[test]
    fn bandwidth_ladder_selects_correct_level() {
        let m = toy();
        assert_eq!(m.bandwidth_for(1024), 4000.0);
        assert_eq!(m.bandwidth_for(100 * 1024), 1500.0);
        assert_eq!(m.bandwidth_for(10 * 1024 * 1024), 300.0);
    }

    #[test]
    fn peak_mflops() {
        assert_eq!(toy().peak_mflops(), 500.0);
    }

    #[test]
    fn rates_rise_then_fall_over_cache_ladder() {
        let m = toy();
        // Small n: overhead-dominated (low rate). Mid n in L1: high.
        // Large n out of cache: memory-bound (lower than L1 peak).
        let small = m.kernel_rate(Kernel::Daxpy, 8).mflops;
        let mid = m.kernel_rate(Kernel::Daxpy, 512).mflops; // 8KB working set
        let large = m.kernel_rate(Kernel::Daxpy, 1 << 20).mflops;
        assert!(small < mid, "small {small} !< mid {mid}");
        assert!(large < mid, "large {large} !< mid {mid}");
    }

    #[test]
    fn memory_bound_daxpy_rate_matches_bandwidth() {
        let m = toy();
        let r = m.kernel_rate(Kernel::Daxpy, 1 << 22);
        // 2 flops / 24 bytes at 300 MB/s => 25 MFlop/s.
        assert!((r.mflops - 25.0).abs() / 25.0 < 0.02, "{}", r.mflops);
    }

    #[test]
    fn compute_bound_ddot_near_eff_peak() {
        let m = toy();
        // 512 elements = 8KB working set -> L1, 4000 MB/s; mem time for 8KB
        // read = 2.05us? flops 1024 at 475 MF = 2.15us -> compute-bound-ish.
        let r = m.kernel_rate(Kernel::Ddot, 512);
        assert!(r.mflops < 0.95 * 500.0);
        assert!(r.mflops > 200.0);
    }

    #[test]
    fn dgemm_efficiency_ramps_with_n() {
        let m = toy();
        let r4 = m.kernel_rate(Kernel::Dgemm, 4).mflops;
        let r16 = m.kernel_rate(Kernel::Dgemm, 16).mflops;
        let r64 = m.kernel_rate(Kernel::Dgemm, 64).mflops;
        assert!(r4 < r16 && r16 < r64, "{r4} {r16} {r64}");
        // Asymptote below eff * peak.
        assert!(r64 <= 0.85 * 500.0 + 1.0);
    }

    #[test]
    fn dcopy_reports_mbs_not_flops() {
        let r = toy().kernel_rate(Kernel::Dcopy, 1024);
        assert_eq!(r.mflops, 0.0);
        assert!(r.mbs > 0.0);
    }

    #[test]
    fn times_positive_and_monotone_in_size() {
        let m = toy();
        for k in Kernel::ALL {
            let t1 = m.kernel_rate(k, 64).time_s;
            let t2 = m.kernel_rate(k, 128).time_s;
            assert!(t1 > 0.0 && t2 > t1, "{k:?}");
        }
    }

    #[test]
    fn banded_solve_time_scales_linearly_in_n() {
        let m = toy();
        // Both sizes spill to DRAM so the same bandwidth applies.
        let t1 = m.time_banded_solve(4000, 50);
        let t2 = m.time_banded_solve(8000, 50);
        assert!(t2 / t1 > 1.8 && t2 / t1 < 2.2);
    }

    #[test]
    fn fft_batch_time_superlinear_in_len() {
        let m = toy();
        let t1 = m.time_fft_batch(64, 10);
        let t2 = m.time_fft_batch(128, 10);
        assert!(t2 > 2.0 * t1);
        assert_eq!(m.time_fft_batch(0, 10), 0.0);
    }

    #[test]
    fn stream_op_overhead_dominates_tiny_sizes() {
        let m = toy();
        let t = m.time_stream_op(2.0, 24.0, 24);
        assert!(t >= 100e-9);
    }
}
