//! LAPACK-style factorizations used by NekTar's direct solvers.
//!
//! The paper (§4.1): "Solution of the Laplacian for the Poisson equation.
//! A direct solver (LAPACK), utilising the symmetric and banded nature of
//! the matrix, is used." — that is [`dpbtrf`]/[`dpbtrs`] here. Dense
//! Cholesky ([`dpotrf`]) covers elemental Schur complements, partial-pivot
//! LU ([`dgetrf`]) covers nonsymmetric systems, and [`dpttrf`] covers the
//! tridiagonal systems from 1-D Helmholtz problems.

use crate::level2::{Trans, Uplo};
use crate::matrix::BandedSym;
use crate::LapackError;

/// Cholesky factorization of a symmetric positive-definite **band** matrix
/// in upper `SB` storage: A = UᵀU where U is banded upper triangular.
/// Overwrites the band storage of `a` with U. (LAPACK `dpbtrf`, uplo='U'.)
///
/// # Errors
/// [`LapackError::Singular`] (1-based pivot index) if a non-positive pivot
/// is hit — the matrix is not positive definite.
pub fn dpbtrf(a: &mut BandedSym) -> Result<(), LapackError> {
    let n = a.n();
    let kd = a.kd();
    let ldab = a.ldab();
    let ab = a.ab_mut();
    for j in 0..n {
        // u_jj = sqrt(a_jj - sum_{i<j} u_ij^2) over in-band i.
        let mut d = ab[kd + j * ldab];
        let lo = j.saturating_sub(kd);
        for i in lo..j {
            let u = ab[(kd + i - j) + j * ldab];
            d -= u * u;
        }
        if d <= 0.0 {
            return Err(LapackError::Singular(j + 1));
        }
        let ujj = d.sqrt();
        ab[kd + j * ldab] = ujj;
        // Update column entries of subsequent columns that see row j:
        // for each k in (j, j+kd]: u_jk = (a_jk - sum u_ij u_ik) / u_jj.
        let hi = (j + kd).min(n.saturating_sub(1));
        for kcol in (j + 1)..=hi {
            let mut s = ab[(kd + j - kcol) + kcol * ldab];
            let lo2 = kcol.saturating_sub(kd).max(lo);
            for i in lo2..j {
                s -= ab[(kd + i - j) + j * ldab] * ab[(kd + i - kcol) + kcol * ldab];
            }
            ab[(kd + j - kcol) + kcol * ldab] = s / ujj;
        }
    }
    Ok(())
}

/// Solves A x = b given the [`dpbtrf`] factorization (A = UᵀU banded).
/// `b` is overwritten with x. (LAPACK `dpbtrs` single-RHS.)
pub fn dpbtrs(u: &BandedSym, b: &mut [f64]) -> Result<(), LapackError> {
    let n = u.n();
    if b.len() < n {
        return Err(LapackError::Dimension("dpbtrs: rhs shorter than n"));
    }
    let kd = u.kd();
    let ldab = u.ldab();
    let ab = u.ab();
    // Forward: Uᵀ y = b.
    for j in 0..n {
        let lo = j.saturating_sub(kd);
        let mut s = b[j];
        for i in lo..j {
            s -= ab[(kd + i - j) + j * ldab] * b[i];
        }
        b[j] = s / ab[kd + j * ldab];
    }
    // Backward: U x = y.
    for j in (0..n).rev() {
        let hi = (j + kd).min(n - 1);
        let mut s = b[j];
        for k in (j + 1)..=hi {
            s -= ab[(kd + j - k) + k * ldab] * b[k];
        }
        b[j] = s / ab[kd + j * ldab];
    }
    Ok(())
}

/// Multi-RHS banded triangular solve: applies [`dpbtrs`] to each column of
/// the column-major `m × nrhs` array `b` (with leading dimension `m`).
pub fn dpbtrs_multi(u: &BandedSym, b: &mut [f64], nrhs: usize) -> Result<(), LapackError> {
    let n = u.n();
    if b.len() < n * nrhs {
        return Err(LapackError::Dimension("dpbtrs_multi: rhs array too short"));
    }
    for r in 0..nrhs {
        let col = &mut b[r * n..(r + 1) * n];
        dpbtrs(u, col)?;
    }
    Ok(())
}

/// Dense Cholesky factorization A = UᵀU (upper triangle of the n × n
/// column-major `a` is read and overwritten with U; strict lower triangle
/// is not referenced). (LAPACK `dpotrf`, uplo='U'.)
pub fn dpotrf(n: usize, a: &mut [f64], lda: usize) -> Result<(), LapackError> {
    if lda < n.max(1) || (n > 0 && a.len() < lda * (n - 1) + n) {
        return Err(LapackError::Dimension("dpotrf: bad lda or short a"));
    }
    for j in 0..n {
        let mut d = a[j + j * lda];
        for i in 0..j {
            let u = a[i + j * lda];
            d -= u * u;
        }
        if d <= 0.0 {
            return Err(LapackError::Singular(j + 1));
        }
        let ujj = d.sqrt();
        a[j + j * lda] = ujj;
        for k in (j + 1)..n {
            let mut s = a[j + k * lda];
            for i in 0..j {
                s -= a[i + j * lda] * a[i + k * lda];
            }
            a[j + k * lda] = s / ujj;
        }
    }
    Ok(())
}

/// Solves A x = b from a [`dpotrf`] factorization (A = UᵀU dense upper).
pub fn dpotrs(n: usize, u: &[f64], lda: usize, b: &mut [f64]) -> Result<(), LapackError> {
    if b.len() < n {
        return Err(LapackError::Dimension("dpotrs: rhs shorter than n"));
    }
    crate::level2::dtrsv(Uplo::Upper, Trans::Yes, false, n, u, lda, b);
    crate::level2::dtrsv(Uplo::Upper, Trans::No, false, n, u, lda, b);
    Ok(())
}

/// LU factorization with partial pivoting: A = P·L·U. The n × n
/// column-major `a` is overwritten with L (unit lower, below diagonal) and
/// U (on/above diagonal); returns the pivot vector `ipiv` where row `i` was
/// swapped with row `ipiv[i]`. (LAPACK `dgetrf`.)
pub fn dgetrf(n: usize, a: &mut [f64], lda: usize) -> Result<Vec<usize>, LapackError> {
    if lda < n.max(1) || (n > 0 && a.len() < lda * (n - 1) + n) {
        return Err(LapackError::Dimension("dgetrf: bad lda or short a"));
    }
    let mut ipiv = vec![0usize; n];
    for k in 0..n {
        // Pivot search in column k, rows k..n.
        let mut p = k;
        let mut pmax = a[k + k * lda].abs();
        for i in (k + 1)..n {
            let v = a[i + k * lda].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        ipiv[k] = p;
        if pmax == 0.0 {
            return Err(LapackError::Singular(k + 1));
        }
        if p != k {
            for j in 0..n {
                a.swap(k + j * lda, p + j * lda);
            }
        }
        let pivot = a[k + k * lda];
        for i in (k + 1)..n {
            a[i + k * lda] /= pivot;
        }
        // Trailing update A[k+1.., k+1..] -= L[k+1..,k] * U[k, k+1..].
        for j in (k + 1)..n {
            let ukj = a[k + j * lda];
            if ukj != 0.0 {
                for i in (k + 1)..n {
                    a[i + j * lda] -= a[i + k * lda] * ukj;
                }
            }
        }
    }
    Ok(ipiv)
}

/// Solves A x = b from a [`dgetrf`] factorization.
pub fn dgetrs(n: usize, lu: &[f64], lda: usize, ipiv: &[usize], b: &mut [f64]) -> Result<(), LapackError> {
    if b.len() < n || ipiv.len() < n {
        return Err(LapackError::Dimension("dgetrs: rhs or ipiv too short"));
    }
    // Apply P.
    for k in 0..n {
        let p = ipiv[k];
        if p != k {
            b.swap(k, p);
        }
    }
    crate::level2::dtrsv(Uplo::Lower, Trans::No, true, n, lu, lda, b);
    crate::level2::dtrsv(Uplo::Upper, Trans::No, false, n, lu, lda, b);
    Ok(())
}

/// Factors a symmetric positive-definite tridiagonal matrix as A = LDLᵀ.
/// `d` (length n) holds the diagonal, `e` (length n−1) the off-diagonal;
/// both are overwritten with the factors. (LAPACK `dpttrf`.)
pub fn dpttrf(d: &mut [f64], e: &mut [f64]) -> Result<(), LapackError> {
    let n = d.len();
    if n > 0 && e.len() + 1 < n {
        return Err(LapackError::Dimension("dpttrf: e must have length n-1"));
    }
    for i in 0..n {
        if d[i] <= 0.0 {
            return Err(LapackError::Singular(i + 1));
        }
        if i + 1 < n {
            let ei = e[i];
            e[i] = ei / d[i];
            d[i + 1] -= e[i] * ei;
        }
    }
    Ok(())
}

/// Solves A x = b from a [`dpttrf`] factorization.
pub fn dpttrs(d: &[f64], e: &[f64], b: &mut [f64]) -> Result<(), LapackError> {
    let n = d.len();
    if b.len() < n {
        return Err(LapackError::Dimension("dpttrs: rhs shorter than n"));
    }
    // L y = b (unit lower bidiagonal).
    for i in 1..n {
        b[i] -= e[i - 1] * b[i - 1];
    }
    // D z = y.
    for i in 0..n {
        b[i] /= d[i];
    }
    // Lᵀ x = z.
    for i in (0..n.saturating_sub(1)).rev() {
        b[i] -= e[i] * b[i + 1];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{BandedSym, ColMajor};

    /// SPD banded test matrix: diagonally dominant with bandwidth kd.
    fn spd_band(n: usize, kd: usize) -> BandedSym {
        let mut b = BandedSym::zeros(n, kd);
        for j in 0..n {
            for i in j.saturating_sub(kd)..=j {
                if i == j {
                    b.set(i, j, 4.0 + 2.0 * kd as f64 + (j % 3) as f64);
                } else {
                    b.set(i, j, -1.0 / (1.0 + (j - i) as f64));
                }
            }
        }
        b
    }

    #[test]
    fn dpbtrf_dpbtrs_solves_banded_spd() {
        for (n, kd) in [(1, 0), (5, 1), (12, 3), (40, 7), (64, 0)] {
            let a = spd_band(n, kd);
            let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() + 1.0).collect();
            let mut b = vec![0.0; n];
            a.matvec(&x_true, &mut b);
            let mut f = a.clone();
            dpbtrf(&mut f).unwrap();
            dpbtrs(&f, &mut b).unwrap();
            for i in 0..n {
                assert!((b[i] - x_true[i]).abs() < 1e-9, "n={n} kd={kd} row {i}");
            }
        }
    }

    #[test]
    fn dpbtrf_factor_reconstructs_matrix() {
        let n = 10;
        let kd = 2;
        let a = spd_band(n, kd);
        let mut f = a.clone();
        dpbtrf(&mut f).unwrap();
        // Rebuild UᵀU from the factored band and compare to A.
        let u = ColMajor::from_fn(n, n, |i, j| if i <= j { f.get(i, j) } else { 0.0 });
        let mut utu = vec![0.0; n * n];
        crate::level3::dgemm(
            Trans::Yes,
            Trans::No,
            n,
            n,
            n,
            1.0,
            u.as_slice(),
            n,
            u.as_slice(),
            n,
            0.0,
            &mut utu,
            n,
        );
        let dense = a.to_dense();
        for j in 0..n {
            for i in 0..n {
                assert!((utu[i + j * n] - dense[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dpbtrf_rejects_indefinite() {
        let mut b = BandedSym::zeros(3, 1);
        b.set(0, 0, 1.0);
        b.set(1, 1, -1.0); // indefinite
        b.set(2, 2, 1.0);
        assert_eq!(dpbtrf(&mut b), Err(LapackError::Singular(2)));
    }

    #[test]
    fn dpbtrs_multi_matches_single() {
        let n = 8;
        let kd = 2;
        let a = spd_band(n, kd);
        let mut f = a.clone();
        dpbtrf(&mut f).unwrap();
        let nrhs = 3;
        let mut rhs_multi = vec![0.0; n * nrhs];
        let mut rhs_single = vec![vec![0.0; n]; nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                let v = ((i + r * 7) as f64 * 0.21).cos();
                rhs_multi[r * n + i] = v;
                rhs_single[r][i] = v;
            }
        }
        dpbtrs_multi(&f, &mut rhs_multi, nrhs).unwrap();
        for r in 0..nrhs {
            dpbtrs(&f, &mut rhs_single[r]).unwrap();
            for i in 0..n {
                assert_eq!(rhs_multi[r * n + i], rhs_single[r][i]);
            }
        }
    }

    #[test]
    fn dpotrf_dpotrs_dense_spd() {
        let n = 9;
        // A = Mᵀ M + n I is SPD.
        let m = ColMajor::from_fn(n, n, |i, j| ((i * n + j) as f64 * 0.113).sin());
        let mut a = vec![0.0; n * n];
        crate::level3::dgemm(
            Trans::Yes,
            Trans::No,
            n,
            n,
            n,
            1.0,
            m.as_slice(),
            n,
            m.as_slice(),
            n,
            0.0,
            &mut a,
            n,
        );
        for i in 0..n {
            a[i + i * n] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let afull = ColMajor::from_fn(n, n, |i, j| a[i + j * n]);
        let mut b = afull.matvec(&x_true);
        dpotrf(n, &mut a, n).unwrap();
        dpotrs(n, &a, n, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn dpotrf_rejects_non_spd() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(matches!(dpotrf(2, &mut a, 2), Err(LapackError::Singular(2))));
    }

    #[test]
    fn dgetrf_dgetrs_general_system() {
        let n = 11;
        let a0 = ColMajor::from_fn(n, n, |i, j| {
            ((i * 13 + j * 7) as f64 * 0.17).sin() + if i == j { 4.0 } else { 0.0 }
        });
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) - 3.0) * 0.8).collect();
        let mut b = a0.matvec(&x_true);
        let mut lu = a0.as_slice().to_vec();
        let ipiv = dgetrf(n, &mut lu, n).unwrap();
        dgetrs(n, &lu, n, &ipiv, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn dgetrf_pivots_zero_leading_entry() {
        // Leading entry zero forces a pivot; naive LU would fail.
        let mut a = vec![0.0, 1.0, 1.0, 0.0]; // [[0,1],[1,0]] col-major
        let ipiv = dgetrf(2, &mut a, 2).unwrap();
        let mut b = vec![2.0, 3.0]; // solves [[0,1],[1,0]] x = b -> x = [3,2]
        dgetrs(2, &a, 2, &ipiv, &mut b).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-15 && (b[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn dgetrf_detects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0]; // rank 1
        assert!(matches!(dgetrf(2, &mut a, 2), Err(LapackError::Singular(2))));
    }

    #[test]
    fn dpttrf_dpttrs_tridiagonal() {
        let n = 20;
        // Standard 1-D Laplacian: d=2, e=-1 — SPD.
        let mut d = vec![2.0; n];
        let mut e = vec![-1.0; n - 1];
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.5).sin()).collect();
        // b = A x.
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = 2.0 * x_true[i];
            if i > 0 {
                b[i] -= x_true[i - 1];
            }
            if i + 1 < n {
                b[i] -= x_true[i + 1];
            }
        }
        dpttrf(&mut d, &mut e).unwrap();
        dpttrs(&d, &e, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn dpttrf_rejects_nonpositive_pivot() {
        let mut d = vec![1.0, 0.5];
        let mut e = vec![1.0]; // Schur complement 0.5 - 1 < 0
        assert!(dpttrf(&mut d, &mut e).is_err());
    }
}
