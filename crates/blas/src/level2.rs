//! BLAS Level 2: matrix-vector operations (paper Figure 4 times `dgemv`).
//!
//! Matrices are column-major slices with an explicit leading dimension
//! `lda`, exactly as in reference BLAS, so elemental matrices can be stored
//! once and addressed in sub-blocks.

/// Transposition selector for Level 2/3 routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use A as stored.
    No,
    /// Use Aᵀ.
    Yes,
}

/// Triangle selector for symmetric/triangular routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Data is in the upper triangle.
    Upper,
    /// Data is in the lower triangle.
    Lower,
}

/// General matrix-vector product: y ← α·op(A)·x + β·y, with A an m × n
/// column-major matrix with leading dimension `lda`. Paper Figure 4.
///
/// # Panics
/// Panics if the slices are too short for the described shapes.
pub fn dgemv(
    trans: Trans,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    assert!(lda >= m.max(1), "dgemv: lda < m");
    if m > 0 && n > 0 {
        assert!(a.len() >= lda * (n - 1) + m, "dgemv: a too short");
    }
    match trans {
        Trans::No => {
            assert!(x.len() >= n && y.len() >= m, "dgemv: vector too short");
            if beta == 0.0 {
                y[..m].fill(0.0);
            } else if beta != 1.0 {
                crate::level1::dscal(beta, &mut y[..m]);
            }
            // Column-sweep: unit-stride axpy per column (the access pattern
            // vendor BLAS uses for column-major storage).
            for j in 0..n {
                let t = alpha * x[j];
                if t != 0.0 {
                    let col = &a[j * lda..j * lda + m];
                    for (yi, &aij) in y[..m].iter_mut().zip(col) {
                        *yi += t * aij;
                    }
                }
            }
        }
        Trans::Yes => {
            assert!(x.len() >= m && y.len() >= n, "dgemv: vector too short");
            for j in 0..n {
                let col = &a[j * lda..j * lda + m];
                let dot = crate::level1::ddot(col, &x[..m]);
                let prev = if beta == 0.0 { 0.0 } else { beta * y[j] };
                y[j] = prev + alpha * dot;
            }
        }
    }
}

/// Rank-1 update: A ← A + α·x·yᵀ, A m × n column-major.
pub fn dger(m: usize, n: usize, alpha: f64, x: &[f64], y: &[f64], a: &mut [f64], lda: usize) {
    assert!(lda >= m.max(1));
    assert!(x.len() >= m && y.len() >= n);
    if m > 0 && n > 0 {
        assert!(a.len() >= lda * (n - 1) + m);
    }
    for j in 0..n {
        let t = alpha * y[j];
        if t != 0.0 {
            let col = &mut a[j * lda..j * lda + m];
            for (aij, &xi) in col.iter_mut().zip(&x[..m]) {
                *aij += t * xi;
            }
        }
    }
}

/// Symmetric matrix-vector product y ← α·A·x + β·y with A stored in the
/// `uplo` triangle of an n × n column-major array.
pub fn dsymv(
    uplo: Uplo,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    assert!(lda >= n.max(1));
    assert!(x.len() >= n && y.len() >= n);
    if beta == 0.0 {
        y[..n].fill(0.0);
    } else if beta != 1.0 {
        crate::level1::dscal(beta, &mut y[..n]);
    }
    for j in 0..n {
        let xj = x[j];
        let mut tj = 0.0;
        match uplo {
            Uplo::Upper => {
                // Column j holds rows 0..=j of the upper triangle.
                for i in 0..j {
                    let aij = a[i + j * lda];
                    y[i] += alpha * aij * xj;
                    tj += aij * x[i];
                }
                y[j] += alpha * (a[j + j * lda] * xj + tj);
            }
            Uplo::Lower => {
                for i in (j + 1)..n {
                    let aij = a[i + j * lda];
                    y[i] += alpha * aij * xj;
                    tj += aij * x[i];
                }
                y[j] += alpha * (a[j + j * lda] * xj + tj);
            }
        }
    }
}

/// Symmetric band matrix-vector product y ← α·A·x + β·y with A in LAPACK
/// `SB` upper storage (`ldab = kd + 1` rows): `A(i,j) = ab[kd+i-j, j]`.
pub fn dsbmv(
    n: usize,
    kd: usize,
    alpha: f64,
    ab: &[f64],
    ldab: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    assert!(ldab > kd, "dsbmv: ldab < kd+1");
    assert!(ab.len() >= ldab * n && x.len() >= n && y.len() >= n);
    if beta == 0.0 {
        y[..n].fill(0.0);
    } else if beta != 1.0 {
        crate::level1::dscal(beta, &mut y[..n]);
    }
    for j in 0..n {
        let lo = j.saturating_sub(kd);
        let xj = x[j];
        let mut tj = 0.0;
        for i in lo..j {
            let a = ab[(kd + i - j) + j * ldab];
            y[i] += alpha * a * xj;
            tj += a * x[i];
        }
        y[j] += alpha * (ab[kd + j * ldab] * xj + tj);
    }
}

/// Triangular matrix-vector product x ← op(A)·x with A unit or non-unit
/// triangular in the `uplo` triangle.
pub fn dtrmv(uplo: Uplo, trans: Trans, unit_diag: bool, n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(lda >= n.max(1) && x.len() >= n);
    match (uplo, trans) {
        (Uplo::Upper, Trans::No) => {
            for i in 0..n {
                let mut s = if unit_diag { x[i] } else { a[i + i * lda] * x[i] };
                for j in (i + 1)..n {
                    s += a[i + j * lda] * x[j];
                }
                x[i] = s;
            }
        }
        (Uplo::Lower, Trans::No) => {
            for i in (0..n).rev() {
                let mut s = if unit_diag { x[i] } else { a[i + i * lda] * x[i] };
                for j in 0..i {
                    s += a[i + j * lda] * x[j];
                }
                x[i] = s;
            }
        }
        (Uplo::Upper, Trans::Yes) => {
            for i in (0..n).rev() {
                let mut s = if unit_diag { x[i] } else { a[i + i * lda] * x[i] };
                for j in 0..i {
                    s += a[j + i * lda] * x[j];
                }
                x[i] = s;
            }
        }
        (Uplo::Lower, Trans::Yes) => {
            for i in 0..n {
                let mut s = if unit_diag { x[i] } else { a[i + i * lda] * x[i] };
                for j in (i + 1)..n {
                    s += a[j + i * lda] * x[j];
                }
                x[i] = s;
            }
        }
    }
}

/// Triangular solve op(A)·x = b in place (x enters holding b).
///
/// # Panics
/// Panics on a zero diagonal for non-unit triangles (singular system).
pub fn dtrsv(uplo: Uplo, trans: Trans, unit_diag: bool, n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(lda >= n.max(1) && x.len() >= n);
    let diag = |i: usize| -> f64 {
        if unit_diag {
            1.0
        } else {
            let d = a[i + i * lda];
            assert!(d != 0.0, "dtrsv: zero diagonal at {i}");
            d
        }
    };
    match (uplo, trans) {
        (Uplo::Upper, Trans::No) => {
            for i in (0..n).rev() {
                let mut s = x[i];
                for j in (i + 1)..n {
                    s -= a[i + j * lda] * x[j];
                }
                x[i] = s / diag(i);
            }
        }
        (Uplo::Lower, Trans::No) => {
            for i in 0..n {
                let mut s = x[i];
                for j in 0..i {
                    s -= a[i + j * lda] * x[j];
                }
                x[i] = s / diag(i);
            }
        }
        (Uplo::Upper, Trans::Yes) => {
            // Aᵀ is lower triangular: forward substitution over columns of A.
            for i in 0..n {
                let mut s = x[i];
                for j in 0..i {
                    s -= a[j + i * lda] * x[j];
                }
                x[i] = s / diag(i);
            }
        }
        (Uplo::Lower, Trans::Yes) => {
            for i in (0..n).rev() {
                let mut s = x[i];
                for j in (i + 1)..n {
                    s -= a[j + i * lda] * x[j];
                }
                x[i] = s / diag(i);
            }
        }
    }
}

/// General band matrix-vector product y ← α·A·x + β·y with A an m × n band
/// matrix with `kl` sub- and `ku` super-diagonals in LAPACK `GB` storage
/// (`A(i,j) = ab[ku + i - j, j]`, `ldab ≥ kl + ku + 1`).
#[allow(clippy::too_many_arguments)]
pub fn dgbmv(
    m: usize,
    n: usize,
    kl: usize,
    ku: usize,
    alpha: f64,
    ab: &[f64],
    ldab: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    assert!(ldab > kl + ku);
    assert!(ab.len() >= ldab * n && x.len() >= n && y.len() >= m);
    if beta == 0.0 {
        y[..m].fill(0.0);
    } else if beta != 1.0 {
        crate::level1::dscal(beta, &mut y[..m]);
    }
    for j in 0..n {
        let t = alpha * x[j];
        if t == 0.0 {
            continue;
        }
        let ilo = j.saturating_sub(ku);
        let ihi = (j + kl).min(m.saturating_sub(1));
        for i in ilo..=ihi {
            y[i] += t * ab[(ku + i - j) + j * ldab];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ColMajor;

    fn dense(m: usize, n: usize) -> ColMajor {
        ColMajor::from_fn(m, n, |i, j| ((i + 1) as f64) * 0.3 + (j as f64) * 1.7 - (i as f64 * j as f64) * 0.05)
    }

    fn naive_gemv(trans: Trans, a: &ColMajor, x: &[f64]) -> Vec<f64> {
        match trans {
            Trans::No => (0..a.nrows())
                .map(|i| (0..a.ncols()).map(|j| a[(i, j)] * x[j]).sum())
                .collect(),
            Trans::Yes => (0..a.ncols())
                .map(|j| (0..a.nrows()).map(|i| a[(i, j)] * x[i]).sum())
                .collect(),
        }
    }

    #[test]
    fn dgemv_no_trans_matches_naive() {
        for (m, n) in [(1, 1), (3, 5), (7, 2), (16, 16)] {
            let a = dense(m, n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let mut y = vec![0.5; m];
            let expect: Vec<f64> = naive_gemv(Trans::No, &a, &x)
                .iter()
                .map(|v| 2.0 * v + 3.0 * 0.5)
                .collect();
            dgemv(Trans::No, m, n, 2.0, a.as_slice(), m, &x, 3.0, &mut y);
            for i in 0..m {
                assert!((y[i] - expect[i]).abs() < 1e-11, "({m},{n}) row {i}");
            }
        }
    }

    #[test]
    fn dgemv_trans_matches_naive() {
        let (m, n) = (6, 4);
        let a = dense(m, n);
        let x: Vec<f64> = (0..m).map(|i| i as f64 - 2.0).collect();
        let mut y = vec![0.0; n];
        dgemv(Trans::Yes, m, n, 1.0, a.as_slice(), m, &x, 0.0, &mut y);
        let expect = naive_gemv(Trans::Yes, &a, &x);
        for j in 0..n {
            assert!((y[j] - expect[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn dgemv_beta_zero_ignores_nan_y() {
        let a = ColMajor::identity(2);
        let mut y = vec![f64::NAN; 2];
        dgemv(Trans::No, 2, 2, 1.0, a.as_slice(), 2, &[1.0, 2.0], 0.0, &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn dgemv_with_submatrix_lda() {
        // A 3x3 viewed as the top-left of a 5-row allocation.
        let lda = 5;
        let mut a = vec![0.0; lda * 3];
        for j in 0..3 {
            for i in 0..3 {
                a[i + j * lda] = (i * 3 + j) as f64;
            }
        }
        let mut y = vec![0.0; 3];
        dgemv(Trans::No, 3, 3, 1.0, &a, lda, &[1.0, 1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![0.0 + 1.0 + 2.0, 3.0 + 4.0 + 5.0, 6.0 + 7.0 + 8.0]);
    }

    #[test]
    fn dger_rank1() {
        let (m, n) = (3, 2);
        let mut a = vec![0.0; m * n];
        dger(m, n, 2.0, &[1.0, 2.0, 3.0], &[10.0, 20.0], &mut a, m);
        // A(i,j) = 2 * x[i] * y[j]
        assert_eq!(a[0], 20.0);
        assert_eq!(a[2 + m], 120.0);
    }

    #[test]
    fn dsymv_matches_dense_both_triangles() {
        let n = 7;
        let full = ColMajor::from_fn(n, n, |i, j| {
            let (i, j) = if i <= j { (i, j) } else { (j, i) };
            (i + 1) as f64 + (j * j) as f64 * 0.1
        });
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.33).cos()).collect();
        let expect = full.matvec(&x);
        for uplo in [Uplo::Upper, Uplo::Lower] {
            // Poison the other triangle to prove it is never read.
            let mut a = full.clone();
            for j in 0..n {
                for i in 0..n {
                    let in_stored = match uplo {
                        Uplo::Upper => i <= j,
                        Uplo::Lower => i >= j,
                    };
                    if !in_stored {
                        a[(i, j)] = f64::NAN;
                    }
                }
            }
            let mut y = vec![0.0; n];
            dsymv(uplo, n, 1.0, a.as_slice(), n, &x, 0.0, &mut y);
            for i in 0..n {
                assert!((y[i] - expect[i]).abs() < 1e-12, "{uplo:?} row {i}");
            }
        }
    }

    #[test]
    fn dsbmv_matches_bandedsym_matvec() {
        let n = 9;
        let kd = 2;
        let mut b = crate::matrix::BandedSym::zeros(n, kd);
        for j in 0..n {
            for i in j.saturating_sub(kd)..=j {
                b.set(i, j, 1.0 + (i + j) as f64 * 0.25);
            }
        }
        let x: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        b.matvec(&x, &mut y1);
        dsbmv(n, kd, 1.0, b.ab(), kd + 1, &x, 0.0, &mut y2);
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn dtrmv_dtrsv_roundtrip_all_variants() {
        let n = 6;
        let a = ColMajor::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + i as f64
            } else {
                0.1 * ((i * n + j) as f64).sin()
            }
        });
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.5).collect();
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                for unit in [false, true] {
                    let mut x = x0.clone();
                    dtrmv(uplo, trans, unit, n, a.as_slice(), n, &mut x);
                    dtrsv(uplo, trans, unit, n, a.as_slice(), n, &mut x);
                    for i in 0..n {
                        assert!(
                            (x[i] - x0[i]).abs() < 1e-10,
                            "{uplo:?} {trans:?} unit={unit} row {i}: {} vs {}",
                            x[i],
                            x0[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn dtrsv_singular_panics() {
        let a = vec![0.0; 4];
        let mut x = vec![1.0, 1.0];
        dtrsv(Uplo::Upper, Trans::No, false, 2, &a, 2, &mut x);
    }

    #[test]
    fn dgbmv_matches_dense() {
        let (m, n, kl, ku) = (7, 6, 2, 1);
        let dense = ColMajor::from_fn(m, n, |i, j| {
            if j + kl >= i && i + ku >= j {
                1.0 + (i * n + j) as f64 * 0.2
            } else {
                0.0
            }
        });
        let ldab = kl + ku + 1;
        let mut ab = vec![0.0; ldab * n];
        for j in 0..n {
            for i in j.saturating_sub(ku)..=(j + kl).min(m - 1) {
                ab[(ku + i - j) + j * ldab] = dense[(i, j)];
            }
        }
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut y = vec![0.0; m];
        dgbmv(m, n, kl, ku, 1.0, &ab, ldab, &x, 0.0, &mut y);
        let expect = dense.matvec(&x);
        for i in 0..m {
            assert!((y[i] - expect[i]).abs() < 1e-12);
        }
    }
}
