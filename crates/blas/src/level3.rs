//! BLAS Level 3: matrix-matrix operations (paper Figures 5–6 time `dgemm`).
//!
//! `dgemm` has two code paths, mirroring the paper's observation that
//! "most of the calls to dgemm() in the NekTar codes are for small n
//! (10 or less)":
//! * [`dgemm_small`] — a register-friendly direct triple loop with no
//!   packing overhead, used automatically below a size threshold;
//! * a cache-blocked kernel with B-panel packing for larger sizes.

use crate::level2::{Trans, Uplo};

/// Side selector for `dtrsm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve op(A)·X = B.
    Left,
    /// Solve X·op(A) = B.
    Right,
}

/// Block sizes for the packed kernel, sized so an A-block plus a B-panel
/// fit comfortably in a typical 256 KB L2 (the paper's PII has 512 KB).
const MC: usize = 64;
const KC: usize = 128;
const NC: usize = 256;

/// Below this `m·n·k` product the direct small kernel wins (no packing).
const SMALL_THRESHOLD: usize = 32 * 32 * 32;

/// General matrix-matrix product:
/// C ← α·op(A)·op(B) + β·C, with C m × n, op(A) m × k, op(B) k × n,
/// all column-major with explicit leading dimensions.
///
/// # Panics
/// Panics if any slice is too short for its described shape.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    check_dims(transa, transb, m, n, k, a, lda, b, ldb, c, ldc);
    if m == 0 || n == 0 {
        return;
    }
    scale_c(beta, m, n, c, ldc);
    if k == 0 || alpha == 0.0 {
        return;
    }
    if m * n * k <= SMALL_THRESHOLD {
        dgemm_small_kernel(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        dgemm_blocked(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// Direct (unblocked) `dgemm` for small matrices — the paper's dominant
/// case (`n ≤ 10` dgemm calls inside NekTar's elemental operations).
/// Always takes the no-packing path regardless of size.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_small(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    check_dims(transa, transb, m, n, k, a, lda, b, ldb, c, ldc);
    if m == 0 || n == 0 {
        return;
    }
    scale_c(beta, m, n, c, ldc);
    if k == 0 || alpha == 0.0 {
        return;
    }
    dgemm_small_kernel(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

fn check_dims(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    let (ar, ac) = match transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (br, bc) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    assert!(lda >= ar.max(1), "dgemm: lda too small");
    assert!(ldb >= br.max(1), "dgemm: ldb too small");
    assert!(ldc >= m.max(1), "dgemm: ldc too small");
    if ar > 0 && ac > 0 {
        assert!(a.len() >= lda * (ac - 1) + ar, "dgemm: a too short");
    }
    if br > 0 && bc > 0 {
        assert!(b.len() >= ldb * (bc - 1) + br, "dgemm: b too short");
    }
    if m > 0 && n > 0 {
        assert!(c.len() >= ldc * (n - 1) + m, "dgemm: c too short");
    }
}

#[inline]
fn scale_c(beta: f64, m: usize, n: usize, c: &mut [f64], ldc: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

#[inline]
fn a_elem(transa: Trans, a: &[f64], lda: usize, i: usize, l: usize) -> f64 {
    match transa {
        Trans::No => a[i + l * lda],
        Trans::Yes => a[l + i * lda],
    }
}

#[inline]
fn b_elem(transb: Trans, b: &[f64], ldb: usize, l: usize, j: usize) -> f64 {
    match transb {
        Trans::No => b[l + j * ldb],
        Trans::Yes => b[j + l * ldb],
    }
}

#[allow(clippy::too_many_arguments)]
fn dgemm_small_kernel(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    match (transa, transb) {
        (Trans::No, Trans::No) => {
            // jli loop order: unit-stride through columns of A and C.
            for j in 0..n {
                for l in 0..k {
                    let t = alpha * b[l + j * ldb];
                    if t != 0.0 {
                        let acol = &a[l * lda..l * lda + m];
                        let ccol = &mut c[j * ldc..j * ldc + m];
                        for (ci, &ail) in ccol.iter_mut().zip(acol) {
                            *ci += t * ail;
                        }
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C(i,j) += alpha * dot(A(:,i), B(:,j)): both unit stride.
            for j in 0..n {
                for i in 0..m {
                    let dot = crate::level1::ddot(&a[i * lda..i * lda + k], &b[j * ldb..j * ldb + k]);
                    c[i + j * ldc] += alpha * dot;
                }
            }
        }
        _ => {
            for j in 0..n {
                for i in 0..m {
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a_elem(transa, a, lda, i, l) * b_elem(transb, b, ldb, l, j);
                    }
                    c[i + j * ldc] += alpha * s;
                }
            }
        }
    }
}

/// Cache-blocked dgemm: packs op(B) panels and op(A) blocks into contiguous
/// scratch so the micro-kernel streams at unit stride regardless of
/// transposition.
#[allow(clippy::too_many_arguments)]
fn dgemm_blocked(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    let mut apack = vec![0.0f64; MC * KC];
    let mut bpack = vec![0.0f64; KC * NC];

    let mut jc = 0;
    while jc < n {
        let nb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = KC.min(k - pc);
            // Pack op(B)[pc..pc+kb, jc..jc+nb] column-major kb × nb.
            for jj in 0..nb {
                for ll in 0..kb {
                    bpack[ll + jj * kb] = b_elem(transb, b, ldb, pc + ll, jc + jj);
                }
            }
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                // Pack op(A)[ic..ic+mb, pc..pc+kb] column-major mb × kb.
                match transa {
                    Trans::No => {
                        for ll in 0..kb {
                            let src = &a[(ic) + (pc + ll) * lda..][..mb];
                            apack[ll * mb..ll * mb + mb].copy_from_slice(src);
                        }
                    }
                    Trans::Yes => {
                        for ll in 0..kb {
                            for ii in 0..mb {
                                apack[ii + ll * mb] = a[(pc + ll) + (ic + ii) * lda];
                            }
                        }
                    }
                }
                // Micro: C[ic.., jc..] += alpha * apack * bpack.
                for jj in 0..nb {
                    let ccol = &mut c[(jc + jj) * ldc + ic..(jc + jj) * ldc + ic + mb];
                    for ll in 0..kb {
                        let t = alpha * bpack[ll + jj * kb];
                        if t != 0.0 {
                            let acol = &apack[ll * mb..ll * mb + mb];
                            for (cv, &av) in ccol.iter_mut().zip(acol) {
                                *cv += t * av;
                            }
                        }
                    }
                }
                ic += mb;
            }
            pc += kb;
        }
        jc += nb;
    }
}

/// Symmetric rank-k update: C ← α·A·Aᵀ + β·C (`trans = No`) or
/// C ← α·Aᵀ·A + β·C (`trans = Yes`), updating only the `uplo` triangle of
/// the n × n matrix C.
#[allow(clippy::too_many_arguments)]
pub fn dsyrk(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    assert!(ldc >= n.max(1));
    let (ar, ac) = match trans {
        Trans::No => (n, k),
        Trans::Yes => (k, n),
    };
    assert!(lda >= ar.max(1));
    if ar > 0 && ac > 0 {
        assert!(a.len() >= lda * (ac - 1) + ar);
    }
    for j in 0..n {
        let (ilo, ihi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in ilo..ihi {
            let mut s = 0.0;
            for l in 0..k {
                let ail = a_elem(trans, a, lda, i, l);
                let ajl = a_elem(trans, a, lda, j, l);
                s += ail * ajl;
            }
            let prev = if beta == 0.0 { 0.0 } else { beta * c[i + j * ldc] };
            c[i + j * ldc] = prev + alpha * s;
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `Side::Left`: op(A)·X = α·B; `Side::Right`: X·op(A) = α·B.
/// B (m × n) is overwritten with X. A is triangular per `uplo`.
#[allow(clippy::too_many_arguments)]
pub fn dtrsm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    unit_diag: bool,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert!(lda >= na.max(1));
    assert!(ldb >= m.max(1));
    if alpha != 1.0 {
        for j in 0..n {
            for v in &mut b[j * ldb..j * ldb + m] {
                *v *= alpha;
            }
        }
    }
    match side {
        Side::Left => {
            // Solve each column independently with dtrsv.
            for j in 0..n {
                let col = &mut b[j * ldb..j * ldb + m];
                crate::level2::dtrsv(uplo, trans, unit_diag, m, a, lda, col);
            }
        }
        Side::Right => {
            // X·op(A) = B  ⇔  op(A)ᵀ·Xᵀ = Bᵀ; solve row-wise.
            let flipped = match trans {
                Trans::No => Trans::Yes,
                Trans::Yes => Trans::No,
            };
            let mut row = vec![0.0; n];
            for i in 0..m {
                for j in 0..n {
                    row[j] = b[i + j * ldb];
                }
                crate::level2::dtrsv(uplo, flipped, unit_diag, n, a, lda, &mut row);
                for j in 0..n {
                    b[i + j * ldb] = row[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ColMajor;

    fn naive_gemm(
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c0: &[f64],
        ldc: usize,
    ) -> Vec<f64> {
        let mut c = c0.to_vec();
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for l in 0..k {
                    s += a_elem(transa, a, lda, i, l) * b_elem(transb, b, ldb, l, j);
                }
                c[i + j * ldc] = beta * c0[i + j * ldc] + alpha * s;
            }
        }
        c
    }

    fn fill(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.731).sin()).collect()
    }

    #[test]
    fn dgemm_all_transpose_combos_match_naive() {
        let (m, n, k) = (5, 7, 4);
        for &transa in &[Trans::No, Trans::Yes] {
            for &transb in &[Trans::No, Trans::Yes] {
                let (ar, ac) = match transa {
                    Trans::No => (m, k),
                    Trans::Yes => (k, m),
                };
                let (br, bc) = match transb {
                    Trans::No => (k, n),
                    Trans::Yes => (n, k),
                };
                let a = fill(ar * ac, 1.0);
                let b = fill(br * bc, 2.0);
                let c0 = fill(m * n, 3.0);
                let expect = naive_gemm(transa, transb, m, n, k, 1.3, &a, ar, &b, br, 0.7, &c0, m);
                let mut c = c0.clone();
                dgemm(transa, transb, m, n, k, 1.3, &a, ar, &b, br, 0.7, &mut c, m);
                for i in 0..m * n {
                    assert!(
                        (c[i] - expect[i]).abs() < 1e-11,
                        "{transa:?}/{transb:?} elem {i}: {} vs {}",
                        c[i],
                        expect[i]
                    );
                }
            }
        }
    }

    #[test]
    fn dgemm_blocked_path_matches_naive() {
        // Big enough to exceed SMALL_THRESHOLD and span multiple blocks.
        let (m, n, k) = (97, 283, 141);
        let a = fill(m * k, 1.0);
        let b = fill(k * n, 2.0);
        let c0 = fill(m * n, 3.0);
        let expect = naive_gemm(Trans::No, Trans::No, m, n, k, 2.0, &a, m, &b, k, -1.0, &c0, m);
        let mut c = c0.clone();
        dgemm(Trans::No, Trans::No, m, n, k, 2.0, &a, m, &b, k, -1.0, &mut c, m);
        let mut maxerr = 0.0f64;
        for i in 0..m * n {
            maxerr = maxerr.max((c[i] - expect[i]).abs());
        }
        assert!(maxerr < 1e-9, "maxerr {maxerr}");
    }

    #[test]
    fn dgemm_blocked_transposed_path_matches_naive() {
        let (m, n, k) = (70, 60, 90);
        let a = fill(k * m, 4.0); // A is k x m because transa = Yes
        let b = fill(n * k, 5.0); // B is n x k because transb = Yes
        let c0 = vec![0.0; m * n];
        let expect = naive_gemm(Trans::Yes, Trans::Yes, m, n, k, 1.0, &a, k, &b, n, 0.0, &c0, m);
        let mut c = c0.clone();
        dgemm(Trans::Yes, Trans::Yes, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, m);
        for i in 0..m * n {
            assert!((c[i] - expect[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn dgemm_small_matches_dgemm() {
        for sz in 2..=12 {
            let a = fill(sz * sz, 0.5);
            let b = fill(sz * sz, 1.5);
            let mut c1 = vec![0.0; sz * sz];
            let mut c2 = vec![0.0; sz * sz];
            dgemm(Trans::No, Trans::No, sz, sz, sz, 1.0, &a, sz, &b, sz, 0.0, &mut c1, sz);
            dgemm_small(Trans::No, Trans::No, sz, sz, sz, 1.0, &a, sz, &b, sz, 0.0, &mut c2, sz);
            assert_eq!(c1, c2, "n={sz}");
        }
    }

    #[test]
    fn dgemm_identity_is_noop() {
        let n = 8;
        let eye = ColMajor::identity(n);
        let b = fill(n * n, 9.0);
        let mut c = vec![0.0; n * n];
        dgemm(Trans::No, Trans::No, n, n, n, 1.0, eye.as_slice(), n, &b, n, 0.0, &mut c, n);
        for i in 0..n * n {
            assert!((c[i] - b[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn dgemm_beta_zero_overwrites_nan() {
        let mut c = vec![f64::NAN; 4];
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 4.0, 5.0, 6.0];
        dgemm(Trans::No, Trans::No, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        assert_eq!(c, b);
    }

    #[test]
    fn dgemm_zero_k_scales_only() {
        let mut c = vec![2.0; 4];
        // lda must still satisfy lda >= m even when k = 0 (BLAS convention).
        dgemm(Trans::No, Trans::No, 2, 2, 0, 1.0, &[], 2, &[], 1, 0.5, &mut c, 2);
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn dsyrk_matches_explicit_product() {
        let (n, k) = (6, 4);
        let a = fill(n * k, 2.2);
        let mut c = vec![0.0; n * n];
        dsyrk(Uplo::Upper, Trans::No, n, k, 1.0, &a, n, 0.0, &mut c, n);
        for j in 0..n {
            for i in 0..=j {
                let mut s = 0.0;
                for l in 0..k {
                    s += a[i + l * n] * a[j + l * n];
                }
                assert!((c[i + j * n] - s).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn dsyrk_trans_matches_ata() {
        let (n, k) = (5, 7);
        let a = fill(k * n, 0.9); // A is k x n
        let mut c = vec![0.0; n * n];
        dsyrk(Uplo::Lower, Trans::Yes, n, k, 1.0, &a, k, 0.0, &mut c, n);
        for j in 0..n {
            for i in j..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a[l + i * k] * a[l + j * k];
                }
                assert!((c[i + j * n] - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dtrsm_left_upper_solves() {
        let m = 5;
        let n = 3;
        let a = ColMajor::from_fn(m, m, |i, j| {
            if i == j {
                3.0 + i as f64
            } else if i < j {
                0.2 * (i + j) as f64
            } else {
                f64::NAN // lower triangle must never be read
            }
        });
        let x_true = fill(m * n, 7.0);
        // B = A * X
        let mut b = vec![0.0; m * n];
        let a_clean = ColMajor::from_fn(m, m, |i, j| if i <= j { a[(i, j)] } else { 0.0 });
        dgemm(Trans::No, Trans::No, m, n, m, 1.0, a_clean.as_slice(), m, &x_true, m, 0.0, &mut b, m);
        dtrsm(Side::Left, Uplo::Upper, Trans::No, false, m, n, 1.0, a.as_slice(), m, &mut b, m);
        for i in 0..m * n {
            assert!((b[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn dtrsm_right_lower_solves() {
        let m = 4;
        let n = 5;
        let a = ColMajor::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + j as f64
            } else if i > j {
                0.3
            } else {
                0.0
            }
        });
        let x_true = fill(m * n, 3.3);
        // B = X * A
        let mut b = vec![0.0; m * n];
        dgemm(Trans::No, Trans::No, m, n, n, 1.0, &x_true, m, a.as_slice(), n, 0.0, &mut b, m);
        dtrsm(Side::Right, Uplo::Lower, Trans::No, false, m, n, 1.0, a.as_slice(), n, &mut b, m);
        for i in 0..m * n {
            assert!((b[i] - x_true[i]).abs() < 1e-10);
        }
    }
}
