//! Owned matrix containers: column-major dense and symmetric-banded.
//!
//! The paper's Poisson/Helmholtz solvers exploit "the symmetric and banded
//! nature" of the spectral/hp Laplacian (Figure 10); [`BandedSym`] is the
//! LAPACK `SB` (symmetric band, upper) storage those solvers factor with
//! [`crate::dpbtrf`].

/// Dense column-major matrix (the BLAS/LAPACK native layout).
///
/// Element (i, j) lives at `data[i + j * nrows]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMajor {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl ColMajor {
    /// Creates an `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Creates the n × n identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major closure (convenient for assembling test
    /// matrices: `ColMajor::from_fn(3, 3, |i, j| ...)`).
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Flat column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat column-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutable column `j`.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> ColMajor {
        ColMajor::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product y = A x using [`crate::level2::dgemv`].
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        crate::level2::dgemv(
            crate::level2::Trans::No,
            self.nrows,
            self.ncols,
            1.0,
            &self.data,
            self.nrows,
            x,
            0.0,
            &mut y,
        );
        y
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        crate::level1::dnrm2(&self.data)
    }

    /// Maximum absolute elementwise difference against another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &ColMajor) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl core::ops::Index<(usize, usize)> for ColMajor {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl core::ops::IndexMut<(usize, usize)> for ColMajor {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

/// Symmetric banded matrix in LAPACK `SB` **upper** storage.
///
/// An n × n symmetric matrix with bandwidth `kd` (number of super-diagonals)
/// is stored in a `(kd+1) × n` column-major array `ab` with
/// `A(i,j) = ab[kd + i - j, j]` for `max(0, j-kd) ≤ i ≤ j`.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedSym {
    n: usize,
    kd: usize,
    /// `(kd + 1) × n` column-major band storage.
    ab: Vec<f64>,
}

impl BandedSym {
    /// Creates an n × n zero matrix with `kd` super-diagonals.
    pub fn zeros(n: usize, kd: usize) -> Self {
        Self { n, kd, ab: vec![0.0; (kd + 1) * n] }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of super-diagonals.
    pub fn kd(&self) -> usize {
        self.kd
    }

    /// Raw band storage (`(kd+1) × n`, column-major).
    pub fn ab(&self) -> &[f64] {
        &self.ab
    }

    /// Mutable raw band storage.
    pub fn ab_mut(&mut self) -> &mut [f64] {
        &mut self.ab
    }

    /// Leading dimension of the band storage (`kd + 1`).
    pub fn ldab(&self) -> usize {
        self.kd + 1
    }

    /// Reads A(i, j); returns 0 outside the band. Symmetric access: callers
    /// may pass either triangle.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        if j - i > self.kd {
            0.0
        } else {
            self.ab[(self.kd + i - j) + j * (self.kd + 1)]
        }
    }

    /// Adds `v` to A(i, j) (and by symmetry A(j, i)).
    ///
    /// # Panics
    /// Panics if |i − j| exceeds the bandwidth.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        assert!(j - i <= self.kd, "BandedSym::add outside band: ({i},{j}) kd={}", self.kd);
        self.ab[(self.kd + i - j) + j * (self.kd + 1)] += v;
    }

    /// Sets A(i, j) (and A(j, i)).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        assert!(j - i <= self.kd, "BandedSym::set outside band: ({i},{j}) kd={}", self.kd);
        self.ab[(self.kd + i - j) + j * (self.kd + 1)] = v;
    }

    /// Dense expansion (testing / small problems).
    pub fn to_dense(&self) -> ColMajor {
        ColMajor::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// y ← A x exploiting the band (symmetric band matvec, `dsbmv`-like).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert!(x.len() >= self.n && y.len() >= self.n);
        y[..self.n].fill(0.0);
        for j in 0..self.n {
            let lo = j.saturating_sub(self.kd);
            // Diagonal + super-diagonal entries of column j couple rows lo..=j.
            for i in lo..=j {
                let a = self.ab[(self.kd + i - j) + j * (self.kd + 1)];
                y[i] += a * x[j];
                if i != j {
                    y[j] += a * x[i];
                }
            }
        }
    }

    /// Builds from a dense symmetric matrix, taking bandwidth `kd`.
    ///
    /// # Panics
    /// Panics (in debug) if the dense matrix has entries outside the band.
    pub fn from_dense(a: &ColMajor, kd: usize) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        let n = a.nrows();
        let mut b = Self::zeros(n, kd);
        for j in 0..n {
            for i in 0..n {
                let v = a[(i, j)];
                if i <= j {
                    if j - i <= kd {
                        b.set(i, j, v);
                    } else {
                        debug_assert!(v == 0.0, "entry ({i},{j}) outside band is nonzero");
                    }
                }
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colmajor_index_roundtrip() {
        let mut m = ColMajor::zeros(3, 2);
        m[(2, 1)] = 7.0;
        assert_eq!(m[(2, 1)], 7.0);
        assert_eq!(m.as_slice()[2 + 3], 7.0);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let m = ColMajor::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn transpose_involution() {
        let m = ColMajor::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn banded_get_set_symmetric() {
        let mut b = BandedSym::zeros(5, 2);
        b.set(1, 3, 4.0);
        assert_eq!(b.get(1, 3), 4.0);
        assert_eq!(b.get(3, 1), 4.0);
        assert_eq!(b.get(0, 4), 0.0); // outside band
    }

    #[test]
    #[should_panic]
    fn banded_set_outside_band_panics() {
        let mut b = BandedSym::zeros(5, 1);
        b.set(0, 3, 1.0);
    }

    #[test]
    fn banded_matvec_matches_dense() {
        let n = 8;
        let kd = 3;
        let mut b = BandedSym::zeros(n, kd);
        for j in 0..n {
            for i in j.saturating_sub(kd)..=j {
                b.set(i, j, (1 + i + 2 * j) as f64);
            }
        }
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut y = vec![0.0; n];
        b.matvec(&x, &mut y);
        let yd = b.to_dense().matvec(&x);
        for i in 0..n {
            assert!((y[i] - yd[i]).abs() < 1e-12, "row {i}: {} vs {}", y[i], yd[i]);
        }
    }

    #[test]
    fn from_dense_roundtrip() {
        let n = 6;
        let kd = 2;
        let dense = ColMajor::from_fn(n, n, |i, j| {
            let d = i.abs_diff(j);
            if d <= kd {
                1.0 / (1.0 + d as f64) + if i == j { 3.0 } else { 0.0 }
            } else {
                0.0
            }
        });
        let band = BandedSym::from_dense(&dense, kd);
        assert_eq!(band.to_dense(), dense);
    }
}
