//! # nkt-blas — pure-Rust BLAS / LAPACK subset
//!
//! The SC'99 paper evaluates machines by timing vendor BLAS routines
//! (`dcopy`, `daxpy`, `ddot`, `dgemv`, `dgemm`) because "BLAS routines
//! account for most of the work" in the NekTar DNS code. This crate is the
//! substitute for those vendor libraries: a real, tested implementation of
//! the Level 1/2/3 routines the paper times, plus the LAPACK-style banded
//! and dense factorizations that NekTar's direct Helmholtz/Poisson solvers
//! use (the paper: "A direct solver (LAPACK), utilising the symmetric and
//! banded nature of the matrix").
//!
//! Conventions follow reference BLAS: column-major storage, `lda` leading
//! dimensions, routine names kept (`dgemm`, `dpbtrf`, ...) so the code maps
//! one-to-one onto the paper's vocabulary. Safe Rust throughout; hot loops
//! are written to autovectorize.
//!
//! ## Modules
//! * [`level1`] — vector-vector: `dcopy`, `daxpy`, `ddot`, `dscal`, ...
//! * [`level2`] — matrix-vector: `dgemv`, `dger`, `dsymv`, `dtrsv`, ...
//! * [`level3`] — matrix-matrix: `dgemm` (blocked + small-n path), `dsyrk`, `dtrsm`
//! * [`lapack`] — `dpbtrf`/`dpbtrs` (banded Cholesky), `dpotrf`/`dpotrs`,
//!   `dgetrf`/`dgetrs` (partial-pivot LU), `dpttrf`/`dpttrs` (tridiagonal)
//! * [`matrix`] — owned column-major and symmetric-banded containers

#![allow(clippy::too_many_arguments)]
#![allow(clippy::needless_range_loop)]

pub mod lapack;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod matrix;

pub use lapack::{dgetrf, dgetrs, dpbtrf, dpbtrs, dpotrf, dpotrs, dpttrf, dpttrs};
pub use level1::{dasum, daxpy, dcopy, ddot, dnrm2, drot, dscal, dswap, idamax};
pub use level2::{dgbmv, dgemv, dger, dsbmv, dsymv, dtrmv, dtrsv, Trans, Uplo};
pub use level3::{dgemm, dgemm_small, dsyrk, dtrsm, Side};
pub use matrix::{BandedSym, ColMajor};

/// Error type for factorization routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LapackError {
    /// The leading minor of the given (1-based) order is not positive
    /// definite (Cholesky), or the pivot at this position is exactly zero
    /// (LU): the factorization could not be completed.
    Singular(usize),
    /// Inconsistent dimensions were passed.
    Dimension(&'static str),
}

impl core::fmt::Display for LapackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LapackError::Singular(i) => {
                write!(f, "matrix is singular / not positive definite at pivot {i}")
            }
            LapackError::Dimension(msg) => write!(f, "dimension mismatch: {msg}"),
        }
    }
}

impl std::error::Error for LapackError {}
