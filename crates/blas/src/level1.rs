//! BLAS Level 1: vector-vector operations.
//!
//! These are the kernels the paper sweeps in Figures 1–3 (`dcopy`, `daxpy`,
//! `ddot`). All routines take plain slices; lengths are taken from the
//! shorter operand where reference BLAS would take an explicit `n`.
//! Strided variants carry a `_strided` suffix rather than BLAS's
//! `incx`/`incy` arguments, so the common unit-stride path stays
//! bounds-check free and autovectorizable.

/// y ← x (vector copy). Paper Figure 1.
///
/// # Panics
/// Panics if `y.len() < x.len()`.
#[inline]
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    y[..x.len()].copy_from_slice(x);
}

/// y ← αx + y. Paper Figure 2.
///
/// # Panics
/// Panics if `y.len() < x.len()`.
#[inline]
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    // `zip` elides bounds checks; the loop autovectorizes.
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// Returns xᵀy. Paper Figure 3.
///
/// Accumulates in four independent partial sums so the floating-point
/// dependency chain does not serialize the loop (same trick vendor BLAS
/// uses; changes rounding relative to a naive loop by O(n·eps)).
#[inline]
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut s = [0.0f64; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let b = 4 * i;
        s[0] += x[b] * y[b];
        s[1] += x[b + 1] * y[b + 1];
        s[2] += x[b + 2] * y[b + 2];
        s[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..n {
        tail += x[i] * y[i];
    }
    (s[0] + s[1]) + (s[2] + s[3]) + tail
}

/// x ← αx.
#[inline]
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Returns ‖x‖₂ with scaling to avoid overflow/underflow (LAPACK `dnrm2`
/// style two-pass: find max magnitude, then scaled sum of squares).
pub fn dnrm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let mut ssq = 0.0;
    for &v in x {
        let t = v / amax;
        ssq += t * t;
    }
    amax * ssq.sqrt()
}

/// Returns Σ|xᵢ|.
#[inline]
pub fn dasum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Returns the index of the element with largest absolute value
/// (first such index on ties, matching reference BLAS). Returns 0 for an
/// empty slice by convention.
pub fn idamax(x: &[f64]) -> usize {
    let mut best = 0usize;
    let mut bestval = f64::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > bestval {
            bestval = a;
            best = i;
        }
    }
    best
}

/// Swaps x and y elementwise.
///
/// # Panics
/// Panics if lengths differ.
pub fn dswap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dswap: length mismatch");
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        core::mem::swap(xi, yi);
    }
}

/// Applies a Givens plane rotation: (x, y) ← (c·x + s·y, c·y − s·x).
pub fn drot(x: &mut [f64], y: &mut [f64], c: f64, s: f64) {
    assert_eq!(x.len(), y.len(), "drot: length mismatch");
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        let t = c * *xi + s * *yi;
        *yi = c * *yi - s * *xi;
        *xi = t;
    }
}

/// Strided `daxpy`: y[i·incy] += α·x[i·incx] for i in 0..n.
///
/// # Panics
/// Panics if either slice is too short for `n` strided accesses.
pub fn daxpy_strided(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
    assert!(incx > 0 && incy > 0, "daxpy_strided: strides must be positive");
    if n == 0 {
        return;
    }
    assert!(x.len() > (n - 1) * incx, "daxpy_strided: x too short");
    assert!(y.len() > (n - 1) * incy, "daxpy_strided: y too short");
    for i in 0..n {
        y[i * incy] += alpha * x[i * incx];
    }
}

/// Strided `ddot`.
pub fn ddot_strided(n: usize, x: &[f64], incx: usize, y: &[f64], incy: usize) -> f64 {
    assert!(incx > 0 && incy > 0, "ddot_strided: strides must be positive");
    if n == 0 {
        return 0.0;
    }
    assert!(x.len() > (n - 1) * incx, "ddot_strided: x too short");
    assert!(y.len() > (n - 1) * incy, "ddot_strided: y too short");
    let mut s = 0.0;
    for i in 0..n {
        s += x[i * incx] * y[i * incy];
    }
    s
}

/// Elementwise product accumulate: z ← x ⊙ y (used heavily by the
/// quadrature-space nonlinear terms, paper §4.1 steps 1–4).
pub fn dvmul(x: &[f64], y: &[f64], z: &mut [f64]) {
    let n = x.len().min(y.len()).min(z.len());
    for i in 0..n {
        z[i] = x[i] * y[i];
    }
}

/// z ← z + x ⊙ y (fused multiply-accumulate over vectors).
pub fn dvvtvp(x: &[f64], y: &[f64], z: &mut [f64]) {
    let n = x.len().min(y.len()).min(z.len());
    for i in 0..n {
        z[i] += x[i] * y[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 + 1.0).collect()
    }

    #[test]
    fn dcopy_copies() {
        let x = seq(17);
        let mut y = vec![0.0; 17];
        dcopy(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn dcopy_allows_longer_destination() {
        let x = seq(3);
        let mut y = vec![9.0; 5];
        dcopy(&x, &mut y);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 9.0, 9.0]);
    }

    #[test]
    fn daxpy_basic() {
        let x = seq(5);
        let mut y = vec![1.0; 5];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn daxpy_alpha_zero_is_identity() {
        let x = seq(9);
        let mut y = seq(9);
        let y0 = y.clone();
        daxpy(0.0, &x, &mut y);
        assert_eq!(y, y0);
    }

    #[test]
    fn ddot_matches_naive() {
        for n in [0, 1, 3, 4, 7, 64, 129] {
            let x = seq(n);
            let y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = ddot(&x, &y);
            assert!((got - naive).abs() <= 1e-10 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn ddot_empty_is_zero() {
        assert_eq!(ddot(&[], &[]), 0.0);
    }

    #[test]
    fn dscal_scales() {
        let mut x = seq(6);
        dscal(-0.5, &mut x);
        assert_eq!(x, vec![-0.5, -1.0, -1.5, -2.0, -2.5, -3.0]);
    }

    #[test]
    fn dnrm2_pythagorean() {
        assert!((dnrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn dnrm2_no_overflow_for_huge_entries() {
        let big = 1e200;
        let n = dnrm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-15);
    }

    #[test]
    fn dnrm2_zero_vector() {
        assert_eq!(dnrm2(&[0.0; 8]), 0.0);
        assert_eq!(dnrm2(&[]), 0.0);
    }

    #[test]
    fn dasum_sums_abs() {
        assert_eq!(dasum(&[-1.0, 2.0, -3.0]), 6.0);
    }

    #[test]
    fn idamax_finds_first_max() {
        assert_eq!(idamax(&[1.0, -5.0, 5.0, 2.0]), 1);
        assert_eq!(idamax(&[]), 0);
    }

    #[test]
    fn dswap_swaps() {
        let mut x = seq(4);
        let mut y = vec![0.0; 4];
        dswap(&mut x, &mut y);
        assert_eq!(y, seq(4));
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn drot_rotates_ninety_degrees() {
        let mut x = vec![1.0];
        let mut y = vec![0.0];
        drot(&mut x, &mut y, 0.0, 1.0);
        assert!((x[0] - 0.0).abs() < 1e-15 && (y[0] + 1.0).abs() < 1e-15);
    }

    #[test]
    fn strided_variants_match_dense() {
        let x = seq(10);
        let mut y = seq(10);
        let mut y2 = seq(10);
        daxpy(3.0, &x, &mut y);
        daxpy_strided(10, 3.0, &x, 1, &mut y2, 1);
        assert_eq!(y, y2);

        let every_other: Vec<f64> = (0..5).map(|i| x[2 * i]).collect();
        let d1 = ddot_strided(5, &x, 2, &x, 2);
        let d2 = ddot(&every_other, &every_other);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn vmul_and_vvtvp() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, 5.0, 6.0];
        let mut z = vec![0.0; 3];
        dvmul(&x, &y, &mut z);
        assert_eq!(z, vec![4.0, 10.0, 18.0]);
        dvvtvp(&x, &y, &mut z);
        assert_eq!(z, vec![8.0, 20.0, 36.0]);
    }

    #[test]
    #[should_panic]
    fn dswap_length_mismatch_panics() {
        dswap(&mut [1.0], &mut [1.0, 2.0]);
    }
}
