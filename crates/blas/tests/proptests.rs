//! Property-based tests for nkt-blas: algebraic identities that must hold
//! for all inputs (up to floating-point tolerance).

use nkt_blas::level2::Trans;
use nkt_blas::*;
use nkt_testkit::{prop_assert, prop_check, vec_in, Strategy};

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    vec_in(-100.0f64..100.0, n)
}

fn tol(scale: f64) -> f64 {
    1e-9 * (1.0 + scale.abs())
}

prop_check! {
    fn ddot_commutes(n in 1usize..200, seed in 0u64..1000) {
        let x: Vec<f64> = (0..n).map(|i| ((i as u64 + seed) as f64 * 0.713).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i as u64 * 3 + seed) as f64 * 0.137).cos()).collect();
        let a = ddot(&x, &y);
        let b = ddot(&y, &x);
        prop_assert!((a - b).abs() <= tol(a));
    }

    fn daxpy_linearity(x in vec_strategy(64), alpha in -10.0f64..10.0, beta in -10.0f64..10.0) {
        // (alpha + beta) x applied once == alpha x then beta x applied twice.
        let mut y1 = vec![0.0; 64];
        daxpy(alpha + beta, &x, &mut y1);
        let mut y2 = vec![0.0; 64];
        daxpy(alpha, &x, &mut y2);
        daxpy(beta, &x, &mut y2);
        for i in 0..64 {
            prop_assert!((y1[i] - y2[i]).abs() <= tol(x[i] * (alpha.abs() + beta.abs())));
        }
    }

    fn dnrm2_scaling(x in vec_strategy(50), c in -20.0f64..20.0) {
        let n0 = dnrm2(&x);
        let scaled: Vec<f64> = x.iter().map(|v| c * v).collect();
        let n1 = dnrm2(&scaled);
        prop_assert!((n1 - c.abs() * n0).abs() <= tol(n1) * 10.0);
    }

    fn dnrm2_triangle_inequality(x in vec_strategy(40), y in vec_strategy(40)) {
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(dnrm2(&sum) <= dnrm2(&x) + dnrm2(&y) + 1e-9);
    }

    fn cauchy_schwarz(x in vec_strategy(40), y in vec_strategy(40)) {
        let d = ddot(&x, &y).abs();
        prop_assert!(d <= dnrm2(&x) * dnrm2(&y) * (1.0 + 1e-12) + 1e-9);
    }

    fn dgemv_matches_manual(m in 1usize..20, n in 1usize..20, seed in 0u64..100) {
        let a: Vec<f64> = (0..m * n).map(|i| ((i as u64 + seed) as f64 * 0.311).sin()).collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        let mut y = vec![0.0; m];
        dgemv(Trans::No, m, n, 1.0, &a, m, &x, 0.0, &mut y);
        for i in 0..m {
            let mut s = 0.0;
            for j in 0..n {
                s += a[i + j * m] * x[j];
            }
            prop_assert!((y[i] - s).abs() <= tol(s));
        }
    }

    fn dgemm_transpose_identity(m in 1usize..12, n in 1usize..12, k in 1usize..12, seed in 0u64..100) {
        // (A B)^T == B^T A^T: compute both and compare.
        let a: Vec<f64> = (0..m * k).map(|i| ((i as u64 * 7 + seed) as f64 * 0.19).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| ((i as u64 * 3 + seed) as f64 * 0.41).cos()).collect();
        let mut ab = vec![0.0; m * n];
        dgemm(Trans::No, Trans::No, m, n, k, 1.0, &a, m, &b, k, 0.0, &mut ab, m);
        // C2 = B^T A^T computed via transposed inputs, result n x m.
        let mut c2 = vec![0.0; n * m];
        dgemm(Trans::Yes, Trans::Yes, n, m, k, 1.0, &b, k, &a, m, 0.0, &mut c2, n);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((ab[i + j * m] - c2[j + i * n]).abs() <= 1e-9);
            }
        }
    }

    fn lu_solve_recovers_solution(n in 1usize..16, seed in 0u64..100) {
        // Diagonally dominant => nonsingular.
        let mut a = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                a[i + j * n] = ((i * 31 + j * 17 + seed as usize) as f64 * 0.23).sin() * 0.5;
            }
            a[j + j * n] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.77).cos()).collect();
        let mut b = vec![0.0; n];
        dgemv(Trans::No, n, n, 1.0, &a, n, &x_true, 0.0, &mut b);
        let mut lu = a.clone();
        let ipiv = dgetrf(n, &mut lu, n).unwrap();
        dgetrs(n, &lu, n, &ipiv, &mut b).unwrap();
        for i in 0..n {
            prop_assert!((b[i] - x_true[i]).abs() < 1e-8);
        }
    }

    fn banded_cholesky_solve_recovers(n in 1usize..40, kd in 0usize..6, seed in 0u64..50) {
        let kd = kd.min(n.saturating_sub(1));
        let mut m = BandedSym::zeros(n, kd);
        for j in 0..n {
            for i in j.saturating_sub(kd)..=j {
                if i == j {
                    m.set(i, j, 3.0 + 2.0 * kd as f64);
                } else {
                    m.set(i, j, ((i + 2 * j + seed as usize) as f64 * 0.3).sin() * 0.4);
                }
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut b = vec![0.0; n];
        m.matvec(&x_true, &mut b);
        let mut f = m.clone();
        dpbtrf(&mut f).unwrap();
        dpbtrs(&f, &mut b).unwrap();
        for i in 0..n {
            prop_assert!((b[i] - x_true[i]).abs() < 1e-7, "row {i}: {} vs {}", b[i], x_true[i]);
        }
    }

    fn idamax_is_argmax(x in vec_strategy(30)) {
        let i = idamax(&x);
        for v in &x {
            prop_assert!(v.abs() <= x[i].abs());
        }
    }
}
