//! Property tests for the split-phase gather-scatter: over random
//! sharing patterns, rank counts, strategies, and operators, the
//! overlapped `start`/`finish` path must be **bitwise identical** to
//! the blocking `exchange`, and the overlap window must really be open
//! — single-copy private dofs mutated between `start` and `finish`
//! survive untouched.

use nkt_gs::prelude::*;
use nkt_mpi::prelude::*;
use nkt_net::{cluster, NetId};
use nkt_testkit::{one_of, prop_assert, prop_assert_eq, prop_check, splitmix64};

fn net() -> nkt_net::ClusterNetwork {
    cluster(NetId::Sp2Silver)
}

/// Deterministic per-rank id list: draws from a small shared-gid
/// universe (so cross-rank sharing is common), occasionally repeats an
/// id locally (element-local duplicate copies), and appends two ids
/// private to the rank. The gid universe sits above 2^53 so every case
/// also exercises the exact hi/lo id exchange.
fn ids_for(rank: usize, p: usize, seed: u64) -> Vec<u64> {
    const BASE: u64 = (1 << 53) + 11;
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut ids = Vec::new();
    for g in 0..12u64 {
        let mut h = splitmix64(&mut s);
        // Each candidate gid is held by this rank with probability ~1/2.
        h ^= rank as u64;
        if splitmix64(&mut h) % 2 == 0 {
            ids.push(BASE + g);
            if splitmix64(&mut h) % 4 == 0 {
                ids.push(BASE + g); // local duplicate copy
            }
        }
    }
    ids.push(BASE + 1000 + (rank * 2) as u64);
    ids.push(BASE + 1000 + (rank * 2 + 1) as u64);
    // Salt the universe per (seed, p) so different cases see different
    // sharing topologies, not just different values.
    ids.iter().map(|&g| g + (seed % 7) * 100 + (p as u64) * 10_000).collect()
}

fn values_for(rank: usize, n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (rank as u64) << 17;
    (0..n)
        .map(|_| {
            let u = splitmix64(&mut s);
            // Spread magnitudes so summation order matters at the bit level.
            let m = (u % 2000) as f64 / 1000.0 - 1.0;
            m * 10f64.powi((u >> 32) as i32 % 6 - 3)
        })
        .collect()
}

prop_check! {
    #![cases(32)]

    fn split_phase_is_bitwise_identical_to_blocking(
        p in 2usize..6,
        seed in 0u64..1_000_000,
        strategy in one_of(&[GsStrategy::Pairwise, GsStrategy::Tree, GsStrategy::Hybrid]),
        op in one_of(&[ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max])
    ) {
        let out = World::builder().ranks(p).net(net()).run(move |c| {
            let ids = ids_for(c.rank(), p, seed);
            let gs = GsHandle::try_setup(c, &ids, strategy).expect("well-formed plan");
            let vals = values_for(c.rank(), ids.len(), seed);
            let mut blocking = vals.clone();
            gs.exchange(c, &mut blocking, op);
            let mut split = vals;
            let ex = gs.start(c, &split, op);
            ex.finish(c, &mut split);
            (blocking, split)
        });
        for (rank, (blocking, split)) in out.into_iter().enumerate() {
            let a: Vec<u64> = blocking.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = split.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b, "rank {} of {} diverged ({:?}, {:?})", rank, p, strategy, op);
        }
    }

    fn window_mutation_of_private_dofs_survives_finish(
        p in 2usize..6,
        seed in 0u64..1_000_000,
        strategy in one_of(&[GsStrategy::Pairwise, GsStrategy::Tree, GsStrategy::Hybrid]),
        op in one_of(&[ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max])
    ) {
        // The last two ids from `ids_for` are private to the rank and
        // single-copy: the caller may overwrite them inside the overlap
        // window; everything else must come out exactly as blocking.
        let out = World::builder().ranks(p).net(net()).run(move |c| {
            let ids = ids_for(c.rank(), p, seed);
            let gs = GsHandle::try_setup(c, &ids, strategy).expect("well-formed plan");
            let vals = values_for(c.rank(), ids.len(), seed);
            let mut expect = vals.clone();
            gs.exchange(c, &mut expect, op);
            let n = ids.len();
            expect[n - 2] = -1.5;
            expect[n - 1] = 2.5e300;
            let mut split = vals;
            let ex = gs.start(c, &split, op);
            split[n - 2] = -1.5; // mutated mid-flight
            split[n - 1] = 2.5e300;
            ex.finish(c, &mut split);
            (expect, split)
        });
        for (rank, (expect, split)) in out.into_iter().enumerate() {
            let a: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = split.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b, "rank {} of {} diverged ({:?}, {:?})", rank, p, strategy, op);
        }
    }

    fn concurrent_exchanges_stay_isolated(
        p in 2usize..5,
        seed in 0u64..1_000_000
    ) {
        // Two exchanges in flight at once over the same handle (the ALE
        // viscous solve's three-component pattern): FIFO matching on the
        // shared pairwise tag must keep their payloads apart, finishing
        // in post order.
        let out = World::builder().ranks(p).net(net()).run(move |c| {
            let ids = ids_for(c.rank(), p, seed);
            let gs = GsHandle::try_setup(c, &ids, GsStrategy::Hybrid).expect("plan");
            let va = values_for(c.rank(), ids.len(), seed);
            let vb = values_for(c.rank(), ids.len(), seed ^ 0xdead_beef);
            let mut ba = va.clone();
            gs.exchange(c, &mut ba, ReduceOp::Sum);
            let mut bb = vb.clone();
            gs.exchange(c, &mut bb, ReduceOp::Sum);
            let (mut sa, mut sb) = (va, vb);
            let ea = gs.start(c, &sa, ReduceOp::Sum);
            let eb = gs.start(c, &sb, ReduceOp::Sum);
            ea.finish(c, &mut sa);
            eb.finish(c, &mut sb);
            (ba, bb, sa, sb)
        });
        for (ba, bb, sa, sb) in out {
            prop_assert!(ba.iter().zip(&sa).all(|(x, y)| x.to_bits() == y.to_bits()));
            prop_assert!(bb.iter().zip(&sb).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}
