//! # nkt-gs — the Tufo–Fischer gather-scatter library
//!
//! NekTar-ALE's communication layer (paper §4.2.2): "This interface ...
//! allows for the treatment of all the communications using a
//! 'binary-tree' algorithm, 'pairwise' exchanges, or a mix of these two.
//! Pairwise exchange is used for communicating values shared by only a
//! few processors, while the 'binary-tree' approach is used for values
//! shared by many processors. The latter approach is essentially a global
//! reduction operation on a subset of the total number of processors."
//!
//! A [`GsHandle`] is set up once from each rank's local→global dof map;
//! [`GsHandle::exchange`] then makes every shared dof consistent (sum /
//! min / max over all copies). Three strategies ([`GsStrategy`]) feed the
//! `gs_strategies` ablation bench.

mod handle;

pub use handle::{GsHandle, GsStrategy};
