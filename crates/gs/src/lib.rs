//! # nkt-gs — the Tufo–Fischer gather-scatter library
//!
//! NekTar-ALE's communication layer (paper §4.2.2): "This interface ...
//! allows for the treatment of all the communications using a
//! 'binary-tree' algorithm, 'pairwise' exchanges, or a mix of these two.
//! Pairwise exchange is used for communicating values shared by only a
//! few processors, while the 'binary-tree' approach is used for values
//! shared by many processors. The latter approach is essentially a global
//! reduction operation on a subset of the total number of processors."
//!
//! A [`GsHandle`] is set up once from each rank's local→global dof map
//! via [`GsHandle::try_setup`] (typed [`GsError`] on a defective plan).
//! The exchange is split-phase: [`GsHandle::start`] posts the pairwise
//! halo messages and the tree-stage nonblocking allreduce and returns an
//! in-flight [`GsExchange`]; [`GsExchange::finish`] drains and scatters.
//! The blocking [`GsHandle::exchange`] (`start` + `finish` back to back)
//! makes every shared dof consistent (sum / min / max over all copies)
//! in one call — bitwise identical to the overlapped path. Three
//! strategies ([`GsStrategy`]) feed the `gs_strategies` ablation bench.
//!
//! Downstream code should import through [`prelude`]:
//!
//! ```
//! use nkt_gs::prelude::*;
//! ```

mod handle;

/// The one-line import surface: everything a gather-scatter user needs.
pub mod prelude {
    pub use crate::handle::{GsError, GsExchange, GsHandle, GsStrategy};
}

pub use handle::{GsError, GsExchange, GsHandle, GsStrategy};
