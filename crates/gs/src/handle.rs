//! Gather-scatter setup and exchange.

use nkt_mpi::prelude::*;
use std::collections::HashMap;

const TAG_GS_PAIR: u64 = (1 << 61) + 200;

/// Exchange strategy (the paper's three options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsStrategy {
    /// Pairwise exchanges with every neighbour for every shared dof.
    /// Ideal when dofs are shared by exactly two ranks (faces).
    Pairwise,
    /// Tree reduction over the whole communicator for all shared dofs
    /// ("essentially a global reduction on a subset").
    Tree,
    /// Pairwise for two-rank dofs, tree for dofs shared by ≥3 ranks
    /// (vertices/edges of the partition) — the paper's "mix of these two".
    Hybrid,
}

/// Per-rank gather-scatter handle for a fixed local→global dof map.
#[derive(Debug, Clone)]
pub struct GsHandle {
    strategy: GsStrategy,
    /// Local indices of each global id this rank holds (a rank can hold
    /// several copies of the same global id — e.g. element-local storage).
    local_of_global: Vec<(u64, Vec<usize>)>,
    /// Pairwise plan: per neighbour rank, the (sorted by global id) list
    /// of entries into `local_of_global` to exchange.
    pairwise: Vec<(usize, Vec<usize>)>,
    /// Entries handled by the tree stage.
    tree_entries: Vec<usize>,
    /// Dense index of each tree entry in the reduction buffer.
    tree_slot: Vec<usize>,
    /// Total tree buffer length (same on all ranks).
    tree_len: usize,
}

impl GsHandle {
    /// Builds the exchange plan. Collective: every rank calls with its own
    /// `global_ids` (one per local dof; duplicates allowed).
    pub fn setup(comm: &mut Comm, global_ids: &[u64], strategy: GsStrategy) -> GsHandle {
        // Group local duplicates.
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &g) in global_ids.iter().enumerate() {
            groups.entry(g).or_default().push(i);
        }
        let mut local_of_global: Vec<(u64, Vec<usize>)> = groups.into_iter().collect();
        local_of_global.sort_by_key(|(g, _)| *g);

        // Discover sharers: gather all id lists on rank 0, compute the
        // rank set per id, broadcast back a flattened description.
        let my_ids: Vec<f64> = local_of_global.iter().map(|(g, _)| *g as f64).collect();
        let gathered = comm.gather(0, &my_ids);
        let mut flat: Vec<f64> = Vec::new();
        if let Some(rows) = gathered {
            let mut sharers: HashMap<u64, Vec<usize>> = HashMap::new();
            for (rank, row) in rows.iter().enumerate() {
                for &gid in row {
                    sharers.entry(gid as u64).or_default().push(rank);
                }
            }
            let mut shared: Vec<(u64, Vec<usize>)> = sharers
                .into_iter()
                .filter(|(_, ranks)| ranks.len() > 1)
                .collect();
            shared.sort_by_key(|(g, _)| *g);
            // Flatten: [n, (gid, nranks, ranks...)*].
            flat.push(shared.len() as f64);
            for (gid, ranks) in &shared {
                flat.push(*gid as f64);
                flat.push(ranks.len() as f64);
                for &r in ranks {
                    flat.push(r as f64);
                }
            }
        }
        // Broadcast the shared-id table (length first so receivers size
        // their buffer).
        let mut len = vec![flat.len() as f64];
        comm.bcast(0, &mut len);
        flat.resize(len[0] as usize, 0.0);
        comm.bcast(0, &mut flat);
        // Parse.
        let mut shared: Vec<(u64, Vec<usize>)> = Vec::new();
        if !flat.is_empty() {
            let n = flat[0] as usize;
            let mut pos = 1;
            for _ in 0..n {
                let gid = flat[pos] as u64;
                let nr = flat[pos + 1] as usize;
                let ranks: Vec<usize> =
                    (0..nr).map(|k| flat[pos + 2 + k] as usize).collect();
                pos += 2 + nr;
                shared.push((gid, ranks));
            }
        }
        // Build the plan for this rank.
        let me = comm.rank();
        let idx_of_gid: HashMap<u64, usize> =
            local_of_global.iter().enumerate().map(|(i, (g, _))| (*g, i)).collect();
        let mut pair_map: HashMap<usize, Vec<(u64, usize)>> = HashMap::new();
        let mut tree_pairs: Vec<(u64, usize)> = Vec::new();
        let mut tree_len = 0usize;
        let mut tree_slot_of_gid: HashMap<u64, usize> = HashMap::new();
        for (gid, ranks) in &shared {
            let tree_eligible = match strategy {
                GsStrategy::Pairwise => false,
                GsStrategy::Tree => true,
                GsStrategy::Hybrid => ranks.len() > 2,
            };
            if tree_eligible {
                tree_slot_of_gid.insert(*gid, tree_len);
                tree_len += 1;
                if let Some(&e) = idx_of_gid.get(gid) {
                    tree_pairs.push((*gid, e));
                }
            } else if ranks.contains(&me) {
                let e = idx_of_gid[gid];
                for &r in ranks {
                    if r != me {
                        pair_map.entry(r).or_default().push((*gid, e));
                    }
                }
            }
        }
        let mut pairwise: Vec<(usize, Vec<usize>)> = pair_map
            .into_iter()
            .map(|(r, mut v)| {
                v.sort_by_key(|(g, _)| *g);
                (r, v.into_iter().map(|(_, e)| e).collect())
            })
            .collect();
        pairwise.sort_by_key(|(r, _)| *r);
        tree_pairs.sort_by_key(|(g, _)| *g);
        let tree_entries: Vec<usize> = tree_pairs.iter().map(|&(_, e)| e).collect();
        let tree_slot: Vec<usize> =
            tree_pairs.iter().map(|&(g, _)| tree_slot_of_gid[&g]).collect();
        GsHandle { strategy, local_of_global, pairwise, tree_entries, tree_slot, tree_len }
    }

    /// The strategy this handle was built with.
    pub fn strategy(&self) -> GsStrategy {
        self.strategy
    }

    /// Makes every copy of every shared dof hold the reduction (`op`) of
    /// all copies across all ranks. Local duplicates are pre-reduced.
    pub fn exchange(&self, comm: &mut Comm, values: &mut [f64], op: ReduceOp) {
        // One trace span (and blocking-site label) for the whole
        // exchange, so profiles attribute the pairwise messages and the
        // embedded tree allreduce to "gs" rather than raw p2p.
        comm.traced("gs", "mpi.coll.gs", |comm| self.exchange_impl(comm, values, op))
    }

    fn exchange_impl(&self, comm: &mut Comm, values: &mut [f64], op: ReduceOp) {
        // Pre-reduce local duplicates into a per-group scalar.
        let mut group_val: Vec<f64> = self
            .local_of_global
            .iter()
            .map(|(_, locs)| {
                let mut acc = values[locs[0]];
                for &l in &locs[1..] {
                    acc = apply(op, acc, values[l]);
                }
                acc
            })
            .collect();
        // Pairwise stage: one message per neighbour each way. Each rank
        // sends its *original* contribution (snapshot) so that k-way
        // shared dofs accumulate each contribution exactly once.
        let snapshot = group_val.clone();
        for (nbr, entries) in &self.pairwise {
            let payload: Vec<f64> = entries.iter().map(|&e| snapshot[e]).collect();
            let got = comm.sendrecv(*nbr, TAG_GS_PAIR, &payload, *nbr, TAG_GS_PAIR);
            for (k, &e) in entries.iter().enumerate() {
                group_val[e] = apply(op, group_val[e], got[k]);
            }
        }
        // Tree stage: dense allreduce over the shared-id buffer.
        if self.tree_len > 0 {
            let neutral = match op {
                ReduceOp::Sum => 0.0,
                ReduceOp::Min => f64::INFINITY,
                ReduceOp::Max => f64::NEG_INFINITY,
            };
            let mut buf = vec![neutral; self.tree_len];
            for (k, &e) in self.tree_entries.iter().enumerate() {
                buf[self.tree_slot[k]] = group_val[e];
            }
            comm.allreduce(&mut buf, op);
            for (k, &e) in self.tree_entries.iter().enumerate() {
                group_val[e] = buf[self.tree_slot[k]];
            }
        }
        // Scatter back to all local copies.
        for ((_, locs), &v) in self.local_of_global.iter().zip(&group_val) {
            for &l in locs {
                values[l] = v;
            }
        }
    }
}

fn apply(op: ReduceOp, a: f64, b: f64) -> f64 {
    match op {
        ReduceOp::Sum => a + b,
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_net::{cluster, NetId};

    fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
        p: usize,
        net: nkt_net::ClusterNetwork,
        f: F,
    ) -> Vec<R> {
        World::builder().ranks(p).net(net).run(f)
    }

    fn testnet() -> nkt_net::ClusterNetwork {
        cluster(NetId::Sp2Silver)
    }

    /// 1-D chain decomposition: rank r owns nodes [r*2, r*2+2] with the
    /// endpoints shared with neighbours (classic FEM halo).
    fn chain_ids(rank: usize) -> Vec<u64> {
        vec![(rank * 2) as u64, (rank * 2 + 1) as u64, (rank * 2 + 2) as u64]
    }

    fn check_chain(strategy: GsStrategy) {
        let p = 4;
        let out = run(p, testnet(), move |c| {
            let ids = chain_ids(c.rank());
            let gs = GsHandle::setup(c, &ids, strategy);
            // Each rank contributes 1.0 at every node: after sum-exchange,
            // shared nodes hold 2.0 and private nodes 1.0.
            let mut v = vec![1.0; ids.len()];
            gs.exchange(c, &mut v, ReduceOp::Sum);
            v
        });
        for (r, v) in out.iter().enumerate() {
            let left_shared = r > 0;
            let right_shared = r + 1 < p;
            assert_eq!(v[0], if left_shared { 2.0 } else { 1.0 }, "rank {r} left");
            assert_eq!(v[1], 1.0, "rank {r} mid");
            assert_eq!(v[2], if right_shared { 2.0 } else { 1.0 }, "rank {r} right");
        }
    }

    #[test]
    fn chain_sum_pairwise() {
        check_chain(GsStrategy::Pairwise);
    }

    #[test]
    fn chain_sum_tree() {
        check_chain(GsStrategy::Tree);
    }

    #[test]
    fn chain_sum_hybrid() {
        check_chain(GsStrategy::Hybrid);
    }

    #[test]
    fn multiway_shared_vertex() {
        // Global id 100 shared by all ranks (a cross-point), id 200+r
        // private.
        let p = 5;
        for strategy in [GsStrategy::Pairwise, GsStrategy::Tree, GsStrategy::Hybrid] {
            let out = run(p, testnet(), move |c| {
                let ids = vec![100u64, 200 + c.rank() as u64];
                let gs = GsHandle::setup(c, &ids, strategy);
                let mut v = vec![(c.rank() + 1) as f64, 7.0];
                gs.exchange(c, &mut v, ReduceOp::Sum);
                v
            });
            let total: f64 = (1..=p).map(|r| r as f64).sum();
            for (r, v) in out.iter().enumerate() {
                assert_eq!(v[0], total, "{strategy:?} rank {r}");
                assert_eq!(v[1], 7.0, "{strategy:?} private dof touched");
            }
        }
    }

    #[test]
    fn local_duplicates_prereduced() {
        // One rank holds the same global id twice (element-local copies).
        let out = run(2, testnet(), |c| {
            let ids: Vec<u64> = if c.rank() == 0 { vec![5, 5] } else { vec![5] };
            let gs = GsHandle::setup(c, &ids, GsStrategy::Hybrid);
            let mut v = if c.rank() == 0 { vec![1.0, 2.0] } else { vec![10.0] };
            gs.exchange(c, &mut v, ReduceOp::Sum);
            v
        });
        // Sum over all copies = 13; every copy must hold it.
        assert_eq!(out[0], vec![13.0, 13.0]);
        assert_eq!(out[1], vec![13.0]);
    }

    #[test]
    fn min_and_max_ops() {
        let out = run(3, testnet(), |c| {
            let ids = vec![1u64];
            let gs = GsHandle::setup(c, &ids, GsStrategy::Tree);
            let mut lo = vec![c.rank() as f64];
            gs.exchange(c, &mut lo, ReduceOp::Min);
            let mut hi = vec![c.rank() as f64];
            gs.exchange(c, &mut hi, ReduceOp::Max);
            (lo[0], hi[0])
        });
        for &(lo, hi) in &out {
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 2.0);
        }
    }

    #[test]
    fn strategies_agree() {
        // Random-ish sharing pattern; all three strategies must give the
        // same result.
        let p = 4;
        let run_with = |s: GsStrategy| {
            run(p, testnet(), move |c| {
                let r = c.rank() as u64;
                let ids = vec![r % 2, 10 + (r / 2), 100, 1000 + r];
                let gs = GsHandle::setup(c, &ids, s);
                let mut v: Vec<f64> =
                    ids.iter().map(|&g| (g as f64) * 0.5 + c.rank() as f64).collect();
                gs.exchange(c, &mut v, ReduceOp::Sum);
                v
            })
        };
        let a = run_with(GsStrategy::Pairwise);
        let b = run_with(GsStrategy::Tree);
        let c = run_with(GsStrategy::Hybrid);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn single_rank_is_local_reduction_only() {
        let out = run(1, testnet(), |c| {
            let gs = GsHandle::setup(c, &[3, 3, 4], GsStrategy::Hybrid);
            let mut v = vec![1.0, 5.0, 9.0];
            gs.exchange(c, &mut v, ReduceOp::Sum);
            v
        });
        assert_eq!(out[0], vec![6.0, 6.0, 9.0]);
    }
}
