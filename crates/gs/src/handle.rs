//! Gather-scatter setup and exchange.
//!
//! The exchange is **split-phase**: [`GsHandle::start`] posts the
//! pairwise halo messages (`isend`/`irecv` on the request engine) and
//! the tree-stage [`nonblocking allreduce`](Comm::iallreduce), then
//! returns a [`GsExchange`] holding the in-flight state; the caller
//! computes whatever it can that does not read shared dofs, and
//! [`GsExchange::finish`] drains the messages, runs the combines, and
//! scatters the reductions back. The blocking [`GsHandle::exchange`]
//! is a thin `start(..).finish(..)` wrapper, so the two paths execute
//! the *same* combine order and are bitwise identical — only the
//! placement of compute relative to the wire differs.

use nkt_mpi::prelude::*;
use std::collections::HashMap;
use std::fmt;

/// Wire tag for the pairwise stage. One fixed tag is safe even with
/// several exchanges in flight: the rank program is SPMD (every rank
/// posts its exchanges in the same program order) and the request
/// engine matches each (source, tag) pair oldest-posted-first, so the
/// n-th exchange's receives bind the n-th exchange's sends.
const TAG_GS_PAIR: u64 = (1 << 61) + 200;

/// Exchange strategy (the paper's three options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsStrategy {
    /// Pairwise exchanges with every neighbour for every shared dof.
    /// Ideal when dofs are shared by exactly two ranks (faces).
    Pairwise,
    /// Tree reduction over the whole communicator for all shared dofs
    /// ("essentially a global reduction on a subset").
    Tree,
    /// Pairwise for two-rank dofs, tree for dofs shared by ≥3 ranks
    /// (vertices/edges of the partition) — the paper's "mix of these two".
    Hybrid,
}

/// A structural defect in the gather-scatter plan, found while
/// cross-checking the broadcast sharer table against this rank's own
/// id list during [`GsHandle::try_setup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GsError {
    /// A sharer row lists the same rank twice; the exchange would count
    /// that rank's contribution twice.
    DuplicateRankRow {
        /// The global id whose row is defective.
        gid: u64,
        /// The rank that appears more than once.
        rank: usize,
    },
    /// The sharer table and a rank's id list disagree: the row for
    /// `gid` names a rank that does not hold the id (its receives would
    /// deadlock), names a rank outside the communicator, or omits a
    /// rank that does hold it (its contribution would be dropped).
    InconsistentSharerTable {
        /// The global id whose row is defective.
        gid: u64,
        /// The rank the table and the id lists disagree about.
        rank: usize,
    },
}

impl fmt::Display for GsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsError::DuplicateRankRow { gid, rank } => write!(
                f,
                "gs setup: sharer row for global id {gid} lists rank {rank} more than once \
                 (its contribution would be double-counted)"
            ),
            GsError::InconsistentSharerTable { gid, rank } => write!(
                f,
                "gs setup: sharer table and id lists disagree about rank {rank} \
                 for global id {gid}"
            ),
        }
    }
}

impl std::error::Error for GsError {}

/// Per-rank gather-scatter handle for a fixed local→global dof map.
#[derive(Debug, Clone)]
pub struct GsHandle {
    strategy: GsStrategy,
    /// Local indices of each global id this rank holds (a rank can hold
    /// several copies of the same global id — e.g. element-local storage).
    local_of_global: Vec<(u64, Vec<usize>)>,
    /// Pairwise plan: per neighbour rank, the (sorted by global id) list
    /// of entries into `local_of_global` to exchange.
    pairwise: Vec<(usize, Vec<usize>)>,
    /// Entries handled by the tree stage.
    tree_entries: Vec<usize>,
    /// Dense index of each tree entry in the reduction buffer.
    tree_slot: Vec<usize>,
    /// Total tree buffer length (same on all ranks).
    tree_len: usize,
    /// Entries the finish phase writes back: those with several local
    /// copies or any exchange participation. Single-copy private entries
    /// are *not* rewritten (the write would be an identity), which is
    /// what lets callers mutate them between `start` and `finish`.
    scatter: Vec<usize>,
}

/// Splits a `u64` global id into two exactly-representable f64 words.
/// Ids round-tripped through a single f64 corrupt silently at ≥ 2^53;
/// each 32-bit half is exact.
fn gid_to_words(g: u64) -> [f64; 2] {
    [(g >> 32) as f64, (g & 0xFFFF_FFFF) as f64]
}

fn gid_from_words(hi: f64, lo: f64) -> u64 {
    ((hi as u64) << 32) | (lo as u64)
}

/// Cross-checks the broadcast sharer table against this rank's own id
/// set (`holds`). Factored out of [`GsHandle::try_setup`] so the error
/// paths are unit-testable without spinning up a world.
fn validate_sharer_table(
    me: usize,
    p: usize,
    holds: &HashMap<u64, usize>,
    shared: &[(u64, Vec<usize>)],
) -> Result<(), GsError> {
    for (gid, ranks) in shared {
        let mut seen = vec![false; p];
        for &r in ranks {
            if r >= p {
                return Err(GsError::InconsistentSharerTable { gid: *gid, rank: r });
            }
            if seen[r] {
                return Err(GsError::DuplicateRankRow { gid: *gid, rank: r });
            }
            seen[r] = true;
        }
        let listed = seen.get(me).copied().unwrap_or(false);
        if listed != holds.contains_key(gid) {
            return Err(GsError::InconsistentSharerTable { gid: *gid, rank: me });
        }
    }
    Ok(())
}

impl GsHandle {
    /// Builds the exchange plan. Collective: every rank calls with its own
    /// `global_ids` (one per local dof; duplicates allowed).
    ///
    /// Global ids travel as exact 32-bit word pairs, so ids above 2^53
    /// survive the exchange; the assembled sharer table is cross-checked
    /// on every rank and structural defects come back as typed
    /// [`GsError`]s instead of a wrong plan.
    pub fn try_setup(
        comm: &mut Comm,
        global_ids: &[u64],
        strategy: GsStrategy,
    ) -> Result<GsHandle, GsError> {
        // Group local duplicates.
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &g) in global_ids.iter().enumerate() {
            groups.entry(g).or_default().push(i);
        }
        let mut local_of_global: Vec<(u64, Vec<usize>)> = groups.into_iter().collect();
        local_of_global.sort_by_key(|(g, _)| *g);

        // Discover sharers: gather all id lists on rank 0 (as exact
        // hi/lo word pairs), compute the rank set per id, broadcast
        // back a flattened description.
        let my_ids: Vec<f64> =
            local_of_global.iter().flat_map(|(g, _)| gid_to_words(*g)).collect();
        let gathered = comm.gather(0, &my_ids);
        let mut flat: Vec<f64> = Vec::new();
        if let Some(rows) = gathered {
            let mut sharers: HashMap<u64, Vec<usize>> = HashMap::new();
            for (rank, row) in rows.iter().enumerate() {
                for w in row.chunks_exact(2) {
                    sharers.entry(gid_from_words(w[0], w[1])).or_default().push(rank);
                }
            }
            let mut shared: Vec<(u64, Vec<usize>)> = sharers
                .into_iter()
                .filter(|(_, ranks)| ranks.len() > 1)
                .collect();
            shared.sort_by_key(|(g, _)| *g);
            // Flatten: [n, (gid_hi, gid_lo, nranks, ranks...)*].
            flat.push(shared.len() as f64);
            for (gid, ranks) in &shared {
                flat.extend_from_slice(&gid_to_words(*gid));
                flat.push(ranks.len() as f64);
                for &r in ranks {
                    flat.push(r as f64);
                }
            }
        }
        // Broadcast the shared-id table (length first so receivers size
        // their buffer).
        let mut len = vec![flat.len() as f64];
        comm.bcast(0, &mut len);
        flat.resize(len[0] as usize, 0.0);
        comm.bcast(0, &mut flat);
        // Parse.
        let mut shared: Vec<(u64, Vec<usize>)> = Vec::new();
        if !flat.is_empty() {
            let n = flat[0] as usize;
            let mut pos = 1;
            for _ in 0..n {
                let gid = gid_from_words(flat[pos], flat[pos + 1]);
                let nr = flat[pos + 2] as usize;
                let ranks: Vec<usize> =
                    (0..nr).map(|k| flat[pos + 3 + k] as usize).collect();
                pos += 3 + nr;
                shared.push((gid, ranks));
            }
        }
        // Build the plan for this rank.
        let me = comm.rank();
        let idx_of_gid: HashMap<u64, usize> =
            local_of_global.iter().enumerate().map(|(i, (g, _))| (*g, i)).collect();
        validate_sharer_table(me, comm.size(), &idx_of_gid, &shared)?;
        let mut pair_map: HashMap<usize, Vec<(u64, usize)>> = HashMap::new();
        let mut tree_pairs: Vec<(u64, usize)> = Vec::new();
        let mut tree_len = 0usize;
        let mut tree_slot_of_gid: HashMap<u64, usize> = HashMap::new();
        for (gid, ranks) in &shared {
            let tree_eligible = match strategy {
                GsStrategy::Pairwise => false,
                GsStrategy::Tree => true,
                GsStrategy::Hybrid => ranks.len() > 2,
            };
            if tree_eligible {
                tree_slot_of_gid.insert(*gid, tree_len);
                tree_len += 1;
                if let Some(&e) = idx_of_gid.get(gid) {
                    tree_pairs.push((*gid, e));
                }
            } else if ranks.contains(&me) {
                let e = idx_of_gid[gid];
                for &r in ranks {
                    if r != me {
                        pair_map.entry(r).or_default().push((*gid, e));
                    }
                }
            }
        }
        let mut pairwise: Vec<(usize, Vec<usize>)> = pair_map
            .into_iter()
            .map(|(r, mut v)| {
                v.sort_by_key(|(g, _)| *g);
                (r, v.into_iter().map(|(_, e)| e).collect())
            })
            .collect();
        pairwise.sort_by_key(|(r, _)| *r);
        tree_pairs.sort_by_key(|(g, _)| *g);
        let tree_entries: Vec<usize> = tree_pairs.iter().map(|&(_, e)| e).collect();
        let tree_slot: Vec<usize> =
            tree_pairs.iter().map(|&(g, _)| tree_slot_of_gid[&g]).collect();
        // Finish writes back only entries whose value can differ from
        // what the caller already holds: local duplicates (pre-reduced)
        // and anything exchanged. For a single-copy private entry the
        // old full scatter stored the entry's own value back — an
        // identity write — so skipping it is bitwise neutral and frees
        // those dofs for caller mutation inside the overlap window.
        let mut exchanged = vec![false; local_of_global.len()];
        for (_, entries) in &pairwise {
            for &e in entries {
                exchanged[e] = true;
            }
        }
        for &e in &tree_entries {
            exchanged[e] = true;
        }
        let scatter: Vec<usize> = local_of_global
            .iter()
            .enumerate()
            .filter(|(e, (_, locs))| exchanged[*e] || locs.len() > 1)
            .map(|(e, _)| e)
            .collect();
        Ok(GsHandle {
            strategy,
            local_of_global,
            pairwise,
            tree_entries,
            tree_slot,
            tree_len,
            scatter,
        })
    }

    /// Builds the exchange plan, panicking on a defective sharer table.
    #[deprecated(note = "use `try_setup`, which reports plan defects as typed `GsError`s")]
    pub fn setup(comm: &mut Comm, global_ids: &[u64], strategy: GsStrategy) -> GsHandle {
        match Self::try_setup(comm, global_ids, strategy) {
            Ok(h) => h,
            Err(e) => panic!("gs setup failed: {e}"),
        }
    }

    /// The strategy this handle was built with.
    pub fn strategy(&self) -> GsStrategy {
        self.strategy
    }

    /// Local dof indices that participate in the exchange (every copy of
    /// every rank-shared id), sorted ascending. Callers use this to
    /// schedule work that touches shared dofs *before* [`GsHandle::start`]
    /// and work that does not into the overlap window.
    pub fn halo_locals(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .pairwise
            .iter()
            .flat_map(|(_, entries)| entries.iter())
            .chain(self.tree_entries.iter())
            .flat_map(|&e| self.local_of_global[e].1.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Makes every copy of every shared dof hold the reduction (`op`) of
    /// all copies across all ranks. Local duplicates are pre-reduced.
    /// Equivalent to `start(..).finish(..)` with nothing in between.
    pub fn exchange(&self, comm: &mut Comm, values: &mut [f64], op: ReduceOp) {
        self.start(comm, values, op).finish(comm, values)
    }

    /// Posts the exchange: pre-reduces local duplicates, fires the
    /// pairwise halo messages (`irecv`s first so arrivals bind directly,
    /// then `isend`s), and posts the tree stage's nonblocking allreduce.
    /// Returns the in-flight [`GsExchange`]; between this call and
    /// [`GsExchange::finish`] the caller may read `values` freely and
    /// mutate entries of **single-copy non-shared** dofs — shared and
    /// locally-duplicated entries are snapshotted here and overwritten
    /// at finish.
    pub fn start<'a>(
        &'a self,
        comm: &mut Comm,
        values: &[f64],
        op: ReduceOp,
    ) -> GsExchange<'a> {
        comm.traced("gs.start", "mpi.coll.gs.start", |comm| {
            // Pre-reduce local duplicates into a per-group scalar. This
            // is the send snapshot: every isend below reads it before
            // any receive is combined, so k-way shared dofs accumulate
            // each rank's *original* contribution exactly once.
            let group_val: Vec<f64> = self
                .local_of_global
                .iter()
                .map(|(_, locs)| {
                    let mut acc = values[locs[0]];
                    for &l in &locs[1..] {
                        acc = apply(op, acc, values[l]);
                    }
                    acc
                })
                .collect();
            // Pairwise stage: post every receive, then every send, in
            // plan (ascending neighbour rank) order.
            let mut reqs = Vec::with_capacity(self.pairwise.len());
            for (nbr, _) in &self.pairwise {
                reqs.push(comm.irecv(Some(*nbr), Some(TAG_GS_PAIR)));
            }
            for (nbr, entries) in &self.pairwise {
                let payload: Vec<f64> = entries.iter().map(|&e| group_val[e]).collect();
                comm.isend(*nbr, TAG_GS_PAIR, &payload);
            }
            // Tree stage: the tree entries are disjoint from the
            // pairwise entries, so their contributions are final now and
            // the reduction can ride the wire through the whole window.
            let tree = if self.tree_len > 0 {
                let neutral = match op {
                    ReduceOp::Sum => 0.0,
                    ReduceOp::Min => f64::INFINITY,
                    ReduceOp::Max => f64::NEG_INFINITY,
                };
                let mut buf = vec![neutral; self.tree_len];
                for (k, &e) in self.tree_entries.iter().enumerate() {
                    buf[self.tree_slot[k]] = group_val[e];
                }
                Some(comm.iallreduce(&buf, op))
            } else {
                None
            };
            GsExchange { plan: self, op, group_val, reqs, tree }
        })
    }
}

/// An in-flight gather-scatter posted by [`GsHandle::start`]. Owns the
/// pre-reduced contribution snapshot and the posted requests; dropping
/// it without [`GsExchange::finish`] leaves the exchange incomplete
/// (and this rank's neighbours blocked), hence `#[must_use]`.
#[must_use = "a started gather-scatter must be completed with GsExchange::finish"]
pub struct GsExchange<'a> {
    plan: &'a GsHandle,
    op: ReduceOp,
    /// Pre-reduced per-entry contribution, accumulated in place by finish.
    group_val: Vec<f64>,
    /// One pairwise receive per neighbour, in plan order.
    reqs: Vec<Request>,
    /// The posted tree-stage reduction, if this plan has one.
    tree: Option<AllreduceHandle>,
}

impl GsExchange<'_> {
    /// Drains the pairwise receives (in posting order, applying the
    /// reduction in the same neighbour-then-entry order as the blocking
    /// path), completes the tree-stage allreduce, and scatters the
    /// reductions back into `values`. Only locally-duplicated or
    /// exchanged entries are written; other entries of `values` are
    /// left exactly as the caller holds them.
    pub fn finish(self, comm: &mut Comm, values: &mut [f64]) {
        let GsExchange { plan, op, mut group_val, reqs, tree } = self;
        comm.traced("gs.finish", "mpi.coll.gs.finish", |comm| {
            for ((_, entries), req) in plan.pairwise.iter().zip(&reqs) {
                let got = comm.wait(req);
                for (k, &e) in entries.iter().enumerate() {
                    group_val[e] = apply(op, group_val[e], got.data[k]);
                }
            }
            if let Some(h) = tree {
                let mut buf = vec![0.0; plan.tree_len];
                comm.allreduce_finish(h, &mut buf);
                for (k, &e) in plan.tree_entries.iter().enumerate() {
                    group_val[e] = buf[plan.tree_slot[k]];
                }
            }
            for &e in &plan.scatter {
                let v = group_val[e];
                for &l in &plan.local_of_global[e].1 {
                    values[l] = v;
                }
            }
        })
    }
}

fn apply(op: ReduceOp, a: f64, b: f64) -> f64 {
    match op {
        ReduceOp::Sum => a + b,
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkt_net::{cluster, NetId};

    fn run<R: Send, F: Fn(&mut Comm) -> R + Sync>(
        p: usize,
        net: nkt_net::ClusterNetwork,
        f: F,
    ) -> Vec<R> {
        World::builder().ranks(p).net(net).run(f)
    }

    fn testnet() -> nkt_net::ClusterNetwork {
        cluster(NetId::Sp2Silver)
    }

    fn try_setup(c: &mut Comm, ids: &[u64], s: GsStrategy) -> GsHandle {
        GsHandle::try_setup(c, ids, s).expect("well-formed plan")
    }

    /// 1-D chain decomposition: rank r owns nodes [r*2, r*2+2] with the
    /// endpoints shared with neighbours (classic FEM halo).
    fn chain_ids(rank: usize) -> Vec<u64> {
        vec![(rank * 2) as u64, (rank * 2 + 1) as u64, (rank * 2 + 2) as u64]
    }

    fn check_chain(strategy: GsStrategy) {
        let p = 4;
        let out = run(p, testnet(), move |c| {
            let ids = chain_ids(c.rank());
            let gs = try_setup(c, &ids, strategy);
            // Each rank contributes 1.0 at every node: after sum-exchange,
            // shared nodes hold 2.0 and private nodes 1.0.
            let mut v = vec![1.0; ids.len()];
            gs.exchange(c, &mut v, ReduceOp::Sum);
            v
        });
        for (r, v) in out.iter().enumerate() {
            let left_shared = r > 0;
            let right_shared = r + 1 < p;
            assert_eq!(v[0], if left_shared { 2.0 } else { 1.0 }, "rank {r} left");
            assert_eq!(v[1], 1.0, "rank {r} mid");
            assert_eq!(v[2], if right_shared { 2.0 } else { 1.0 }, "rank {r} right");
        }
    }

    #[test]
    fn chain_sum_pairwise() {
        check_chain(GsStrategy::Pairwise);
    }

    #[test]
    fn chain_sum_tree() {
        check_chain(GsStrategy::Tree);
    }

    #[test]
    fn chain_sum_hybrid() {
        check_chain(GsStrategy::Hybrid);
    }

    #[test]
    fn multiway_shared_vertex() {
        // Global id 100 shared by all ranks (a cross-point), id 200+r
        // private.
        let p = 5;
        for strategy in [GsStrategy::Pairwise, GsStrategy::Tree, GsStrategy::Hybrid] {
            let out = run(p, testnet(), move |c| {
                let ids = vec![100u64, 200 + c.rank() as u64];
                let gs = try_setup(c, &ids, strategy);
                let mut v = vec![(c.rank() + 1) as f64, 7.0];
                gs.exchange(c, &mut v, ReduceOp::Sum);
                v
            });
            let total: f64 = (1..=p).map(|r| r as f64).sum();
            for (r, v) in out.iter().enumerate() {
                assert_eq!(v[0], total, "{strategy:?} rank {r}");
                assert_eq!(v[1], 7.0, "{strategy:?} private dof touched");
            }
        }
    }

    #[test]
    fn local_duplicates_prereduced() {
        // One rank holds the same global id twice (element-local copies).
        let out = run(2, testnet(), |c| {
            let ids: Vec<u64> = if c.rank() == 0 { vec![5, 5] } else { vec![5] };
            let gs = try_setup(c, &ids, GsStrategy::Hybrid);
            let mut v = if c.rank() == 0 { vec![1.0, 2.0] } else { vec![10.0] };
            gs.exchange(c, &mut v, ReduceOp::Sum);
            v
        });
        // Sum over all copies = 13; every copy must hold it.
        assert_eq!(out[0], vec![13.0, 13.0]);
        assert_eq!(out[1], vec![13.0]);
    }

    #[test]
    fn min_and_max_ops() {
        let out = run(3, testnet(), |c| {
            let ids = vec![1u64];
            let gs = try_setup(c, &ids, GsStrategy::Tree);
            let mut lo = vec![c.rank() as f64];
            gs.exchange(c, &mut lo, ReduceOp::Min);
            let mut hi = vec![c.rank() as f64];
            gs.exchange(c, &mut hi, ReduceOp::Max);
            (lo[0], hi[0])
        });
        for &(lo, hi) in &out {
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 2.0);
        }
    }

    #[test]
    fn strategies_agree() {
        // Random-ish sharing pattern; all three strategies must give the
        // same result.
        let p = 4;
        let run_with = |s: GsStrategy| {
            run(p, testnet(), move |c| {
                let r = c.rank() as u64;
                let ids = vec![r % 2, 10 + (r / 2), 100, 1000 + r];
                let gs = try_setup(c, &ids, s);
                let mut v: Vec<f64> =
                    ids.iter().map(|&g| (g as f64) * 0.5 + c.rank() as f64).collect();
                gs.exchange(c, &mut v, ReduceOp::Sum);
                v
            })
        };
        let a = run_with(GsStrategy::Pairwise);
        let b = run_with(GsStrategy::Tree);
        let c = run_with(GsStrategy::Hybrid);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn single_rank_is_local_reduction_only() {
        let out = run(1, testnet(), |c| {
            let gs = try_setup(c, &[3, 3, 4], GsStrategy::Hybrid);
            let mut v = vec![1.0, 5.0, 9.0];
            gs.exchange(c, &mut v, ReduceOp::Sum);
            v
        });
        assert_eq!(out[0], vec![6.0, 6.0, 9.0]);
    }

    #[test]
    fn gids_above_2_pow_53_survive_setup() {
        // Regression: ids used to round-trip through a single f64, which
        // is lossy at ≥ 2^53. These two ids collapse to the same f64.
        let a: u64 = (1 << 53) + 1;
        let b: u64 = 1 << 53;
        assert_eq!(a as f64, b as f64, "precondition: ids are f64-indistinguishable");
        for strategy in [GsStrategy::Pairwise, GsStrategy::Tree, GsStrategy::Hybrid] {
            let out = run(2, testnet(), move |c| {
                // Rank 0 holds {a, b}; rank 1 holds {a}. Only `a` is
                // shared; `b` must stay private.
                let ids: Vec<u64> = if c.rank() == 0 { vec![a, b] } else { vec![a] };
                let gs = try_setup(c, &ids, strategy);
                let mut v = if c.rank() == 0 { vec![2.0, 30.0] } else { vec![5.0] };
                gs.exchange(c, &mut v, ReduceOp::Sum);
                v
            });
            assert_eq!(out[0], vec![7.0, 30.0], "{strategy:?}: b leaked into the exchange");
            assert_eq!(out[1], vec![7.0], "{strategy:?}");
        }
    }

    #[test]
    fn split_phase_allows_mutating_private_dofs_in_window() {
        // The caller may update single-copy non-shared dofs between
        // start and finish; finish must not clobber them.
        let out = run(2, testnet(), |c| {
            let ids: Vec<u64> = vec![7, 100 + c.rank() as u64];
            let gs = try_setup(c, &ids, GsStrategy::Hybrid);
            let mut v = vec![1.0, 0.0];
            let ex = gs.start(c, &v, ReduceOp::Sum);
            v[1] = 42.0; // private dof mutated inside the overlap window
            ex.finish(c, &mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![2.0, 42.0]);
        }
    }

    #[test]
    fn deprecated_setup_still_builds_a_working_plan() {
        let out = run(2, testnet(), |c| {
            #[allow(deprecated)]
            let gs = GsHandle::setup(c, &[1, 2 + c.rank() as u64], GsStrategy::Hybrid);
            let mut v = vec![1.0, 1.0];
            gs.exchange(c, &mut v, ReduceOp::Sum);
            v
        });
        assert_eq!(out[0], vec![2.0, 1.0]);
        assert_eq!(out[1], vec![2.0, 1.0]);
    }

    #[test]
    fn validate_rejects_duplicate_rank_rows() {
        let holds: HashMap<u64, usize> = [(9u64, 0usize)].into_iter().collect();
        let shared = vec![(9u64, vec![0usize, 1, 1])];
        assert_eq!(
            validate_sharer_table(0, 4, &holds, &shared),
            Err(GsError::DuplicateRankRow { gid: 9, rank: 1 })
        );
    }

    #[test]
    fn validate_rejects_row_listing_a_non_holder() {
        // The table says rank 0 shares gid 9, but rank 0 does not hold it.
        let holds: HashMap<u64, usize> = HashMap::new();
        let shared = vec![(9u64, vec![0usize, 1])];
        assert_eq!(
            validate_sharer_table(0, 4, &holds, &shared),
            Err(GsError::InconsistentSharerTable { gid: 9, rank: 0 })
        );
    }

    #[test]
    fn validate_rejects_row_omitting_a_holder() {
        // Rank 2 holds gid 9 but the row omits it: its contribution
        // would be silently dropped.
        let holds: HashMap<u64, usize> = [(9u64, 0usize)].into_iter().collect();
        let shared = vec![(9u64, vec![0usize, 1])];
        assert_eq!(
            validate_sharer_table(2, 4, &holds, &shared),
            Err(GsError::InconsistentSharerTable { gid: 9, rank: 2 })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_rank() {
        let holds: HashMap<u64, usize> = HashMap::new();
        let shared = vec![(9u64, vec![1usize, 7])];
        assert_eq!(
            validate_sharer_table(0, 4, &holds, &shared),
            Err(GsError::InconsistentSharerTable { gid: 9, rank: 7 })
        );
    }

    #[test]
    fn validate_accepts_consistent_table() {
        let holds: HashMap<u64, usize> = [(9u64, 0usize)].into_iter().collect();
        let shared = vec![(9u64, vec![0usize, 1]), (11, vec![1, 2])];
        assert_eq!(validate_sharer_table(0, 4, &holds, &shared), Ok(()));
    }

    #[test]
    fn error_display_names_the_defect() {
        let d = GsError::DuplicateRankRow { gid: 5, rank: 3 }.to_string();
        assert!(d.contains("global id 5") && d.contains("rank 3"), "{d}");
        assert!(d.contains("more than once"), "{d}");
        let i = GsError::InconsistentSharerTable { gid: 8, rank: 2 }.to_string();
        assert!(i.contains("global id 8") && i.contains("rank 2"), "{i}");
        assert!(i.contains("disagree"), "{i}");
    }

    #[test]
    fn halo_locals_lists_every_copy_of_shared_ids() {
        let out = run(2, testnet(), |c| {
            // gid 5 shared (two local copies on rank 0), gid 6/7 private.
            let ids: Vec<u64> = if c.rank() == 0 { vec![5, 6, 5] } else { vec![5, 7] };
            let gs = try_setup(c, &ids, GsStrategy::Hybrid);
            gs.halo_locals()
        });
        assert_eq!(out[0], vec![0, 2]);
        assert_eq!(out[1], vec![0]);
    }
}
