//! Point-to-point channel model and whole-cluster network description.

/// A single point-to-point channel (one direction).
///
/// Time for an m-byte message: `t(m) = overhead + latency + m/bandwidth`,
/// plus a rendezvous round-trip (`2·latency`) when `m > eager_bytes`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// Wire + software latency, one way, microseconds.
    pub latency_us: f64,
    /// Asymptotic bandwidth, MB/s (10^6 bytes per second).
    pub bandwidth_mbs: f64,
    /// Per-message CPU overhead on the sending side, microseconds
    /// (protocol stack; the part that does not overlap the wire).
    pub overhead_us: f64,
    /// Eager-protocol limit in bytes; larger messages pay a rendezvous
    /// handshake of one extra round trip.
    pub eager_bytes: usize,
}

impl Channel {
    /// One-way delivery time in **seconds** for an `m`-byte message.
    pub fn time(&self, bytes: usize) -> f64 {
        let base = self.overhead_us + self.latency_us + bytes as f64 / self.bandwidth_mbs;
        let rendezvous = if bytes > self.eager_bytes { 2.0 * self.latency_us } else { 0.0 };
        (base + rendezvous) * 1e-6
    }

    /// Effective one-way bandwidth in MB/s as NetPIPE reports it
    /// (message size over one-way time).
    pub fn effective_bandwidth_mbs(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.time(bytes) / 1e6
    }

    /// Small-message one-way latency in microseconds (the Figure 7 left
    /// panel quantity) for a given payload.
    pub fn latency_for(&self, bytes: usize) -> f64 {
        self.time(bytes) * 1e6
    }

    /// Completion time for a message handed to this channel at virtual
    /// time `ready`, on a sender whose egress link is busy until
    /// `link_free`, with a bandwidth derate (`≥ 1` under contention).
    ///
    /// Returns `(arrival, new_link_free)`. Latency pipelines across
    /// back-to-back messages, but the serialization component
    /// (`bytes / bandwidth`) occupies the egress link, so a burst of
    /// posted sends drains progressively instead of all arriving at
    /// once — the effect a pipelined transpose overlaps compute with.
    pub fn completion_at(
        &self,
        ready: f64,
        link_free: f64,
        bytes: usize,
        derate: f64,
    ) -> (f64, f64) {
        let depart = ready.max(link_free);
        let arrival = depart + self.time(bytes) * derate;
        let occupancy = bytes as f64 / (self.bandwidth_mbs * 1e6) * derate;
        (arrival, depart + occupancy)
    }
}

/// A cluster's communication fabric: intra-node and inter-node channels
/// plus the aggregate constraints collectives see.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterNetwork {
    /// Display name matching the paper's legends.
    pub name: &'static str,
    /// Channel between two ranks on the same node (shared memory or
    /// loopback). For single-CPU-per-node systems equals `inter`.
    pub intra: Channel,
    /// Channel between ranks on different nodes.
    pub inter: Channel,
    /// Number of CPUs per node (ranks land on nodes round-robin).
    pub cpus_per_node: usize,
    /// Aggregate bisection bandwidth in MB/s that simultaneous transfers
    /// share. `f64::INFINITY` for full-crossbar fabrics.
    pub bisection_mbs: f64,
    /// True for a shared medium (non-switched Ethernet segment): all
    /// concurrent transfers serialize onto one collision domain.
    pub shared_medium: bool,
}

impl ClusterNetwork {
    /// The channel connecting two ranks, given default round-robin
    /// placement of one rank per CPU.
    pub fn channel_between(&self, rank_a: usize, rank_b: usize) -> &Channel {
        if self.node_of(rank_a) == self.node_of(rank_b) {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// Node index hosting `rank` (block placement: ranks fill a node
    /// before spilling to the next, matching how MPI ranks were laid out
    /// on the paper's dual-CPU RoadRunner nodes).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cpus_per_node.max(1)
    }

    /// Time for one communication *round* in which `pairs` disjoint
    /// rank-pairs each exchange `bytes` bytes concurrently.
    ///
    /// Per-pair time comes from the pair's channel; concurrent inter-node
    /// traffic is capped by the bisection bandwidth, and a shared medium
    /// serializes everything.
    pub fn round_time(&self, pairs: &[(usize, usize)], bytes: usize) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let mut max_pair = 0.0f64;
        let mut inter_bytes = 0usize;
        for &(a, b) in pairs {
            let ch = self.channel_between(a, b);
            max_pair = max_pair.max(ch.time(bytes));
            if self.node_of(a) != self.node_of(b) {
                inter_bytes += bytes;
            }
        }
        if self.shared_medium {
            // Every inter-node byte crosses the same collision domain, and
            // half-duplex framing wastes slots under bidirectional load.
            let serial = inter_bytes as f64 / (self.inter.bandwidth_mbs * 1e6);
            let setup = self.inter.latency_us * 1e-6;
            max_pair.max(serial + setup)
        } else if self.bisection_mbs.is_finite() && inter_bytes > 0 {
            let aggregate = inter_bytes as f64 / (self.bisection_mbs * 1e6);
            max_pair.max(aggregate)
        } else {
            max_pair
        }
    }

    /// Bandwidth derate for one full-exchange round at `p` ranks with
    /// `bytes` per message: the factor by which fabric contention
    /// stretches a single message relative to an uncontended transfer.
    ///
    /// The representative round is the maximally-distant permutation a
    /// blocking alltoall would issue (XOR pairs at distance `p/2` for
    /// power-of-two worlds, a ring shift of `p/2` otherwise), so a
    /// pipelined exchange pays the same per-message contention as its
    /// blocking twin's worst round.
    pub fn exchange_derate(&self, p: usize, bytes: usize) -> f64 {
        if p < 2 || bytes == 0 {
            return 1.0;
        }
        let step = p / 2;
        let pairs: Vec<(usize, usize)> = if p.is_power_of_two() {
            (0..p).filter(|&i| i < i ^ step).map(|i| (i, i ^ step)).collect()
        } else {
            (0..p).map(|i| (i, (i + step) % p)).collect()
        };
        let round = self.round_time(&pairs, bytes);
        let single = pairs
            .iter()
            .map(|&(a, b)| self.channel_between(a, b).time(bytes))
            .fold(0.0f64, f64::max);
        if single > 0.0 {
            (round / single).max(1.0)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(lat: f64, bw: f64) -> Channel {
        Channel { latency_us: lat, bandwidth_mbs: bw, overhead_us: 5.0, eager_bytes: 8192 }
    }

    fn net(shared: bool, bisection: f64) -> ClusterNetwork {
        ClusterNetwork {
            name: "test",
            intra: ch(10.0, 100.0),
            inter: ch(50.0, 10.0),
            cpus_per_node: 2,
            bisection_mbs: bisection,
            shared_medium: shared,
        }
    }

    #[test]
    fn channel_time_components() {
        let c = ch(50.0, 10.0);
        // 1000 bytes: 5 + 50 + 100 us = 155 us (eager).
        assert!((c.time(1000) - 155e-6).abs() < 1e-12);
        // 100_000 bytes: rendezvous adds 100 us.
        let t = c.time(100_000);
        assert!((t - (5.0 + 50.0 + 10_000.0 + 100.0) * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn effective_bandwidth_approaches_asymptote() {
        let c = ch(50.0, 10.0);
        let small = c.effective_bandwidth_mbs(100);
        let big = c.effective_bandwidth_mbs(100_000_000);
        assert!(small < 2.0);
        assert!(big > 9.5 && big <= 10.0, "{big}");
    }

    #[test]
    fn zero_bytes_bandwidth_is_zero() {
        assert_eq!(ch(1.0, 1.0).effective_bandwidth_mbs(0), 0.0);
    }

    #[test]
    fn node_placement_block() {
        let n = net(false, f64::INFINITY);
        assert_eq!(n.node_of(0), 0);
        assert_eq!(n.node_of(1), 0);
        assert_eq!(n.node_of(2), 1);
        assert!(std::ptr::eq(n.channel_between(0, 1), &n.intra));
        assert!(std::ptr::eq(n.channel_between(1, 2), &n.inter));
    }

    #[test]
    fn shared_medium_serializes_rounds() {
        let shared = net(true, f64::INFINITY);
        let switched = net(false, f64::INFINITY);
        // Four inter-node pairs, 100 KB each.
        let pairs = [(0usize, 2usize), (4, 6), (8, 10), (12, 14)];
        let t_shared = shared.round_time(&pairs, 100_000);
        let t_switched = switched.round_time(&pairs, 100_000);
        assert!(t_shared > 3.0 * t_switched, "{t_shared} vs {t_switched}");
    }

    #[test]
    fn bisection_caps_aggregate() {
        let capped = net(false, 15.0); // 1.5x one link
        let pairs = [(0usize, 2usize), (4, 6), (8, 10)];
        let t = capped.round_time(&pairs, 1_000_000);
        // 3 MB through 15 MB/s = 0.2 s; single-pair time = ~0.1 s.
        assert!((t - 0.2).abs() < 0.01, "{t}");
    }

    #[test]
    fn intranode_rounds_ignore_bisection() {
        let capped = net(false, 0.001);
        let pairs = [(0usize, 1usize)]; // same node
        let t = capped.round_time(&pairs, 1_000_000);
        assert!(t < 0.02, "{t}");
    }

    #[test]
    fn empty_round_is_free() {
        assert_eq!(net(false, 1.0).round_time(&[], 100), 0.0);
    }

    #[test]
    fn completion_pipelines_latency_but_serializes_bandwidth() {
        let c = ch(50.0, 10.0); // 1000 B: 155 us total, 100 us on the wire
        let (a1, free1) = c.completion_at(0.0, 0.0, 1000, 1.0);
        assert!((a1 - 155e-6).abs() < 1e-12, "{a1}");
        assert!((free1 - 100e-6).abs() < 1e-12, "{free1}");
        // A second message posted immediately queues behind the first's
        // serialization only, not its full latency.
        let (a2, free2) = c.completion_at(0.0, free1, 1000, 1.0);
        assert!((a2 - 255e-6).abs() < 1e-12, "{a2}");
        assert!((free2 - 200e-6).abs() < 1e-12, "{free2}");
        // An idle link does not time-travel: ready dominates link_free.
        let (a3, _) = c.completion_at(1.0, free2, 1000, 1.0);
        assert!((a3 - 1.000155).abs() < 1e-9, "{a3}");
    }

    #[test]
    fn exchange_derate_reflects_fabric_sharing() {
        // Switched fabric with ample bisection: no derating.
        assert!((net(false, f64::INFINITY).exchange_derate(8, 100_000) - 1.0).abs() < 1e-12);
        // Shared medium: concurrent inter-node messages serialize.
        let d = net(true, f64::INFINITY).exchange_derate(8, 100_000);
        assert!(d > 2.0, "{d}");
        // Degenerate cases.
        assert_eq!(net(true, f64::INFINITY).exchange_derate(1, 100), 1.0);
        assert_eq!(net(true, f64::INFINITY).exchange_derate(8, 0), 1.0);
    }
}
