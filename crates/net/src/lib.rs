//! # nkt-net — network models for the paper's communication benchmarks
//!
//! Paper §3.2 measures three things we reproduce with analytic channel
//! models (the 1999 networks — Fast Ethernet + MPICH/LAM, Myrinet/GM, SP
//! switches, the T3E torus, AP-Net — do not exist here):
//!
//! * **NetPIPE ping-pong** (Figure 7): one-way latency and bandwidth as a
//!   function of message size, for 12 machine/network configurations.
//! * **Channel timing for the simulated MPI** (`nkt-mpi` charges virtual
//!   time for every send through these models).
//! * **Collective contention**: shared-medium (Ethernet) saturation and
//!   bisection limits that make `MPI_Alltoall` the bottleneck the paper
//!   identifies ("the bottle-neck is due to MPI_Alltoall").
//!
//! The model is a LogGP variant: `t(m) = o + L + m/B`, with an
//! eager→rendezvous protocol switch adding a round-trip above a threshold,
//! and a per-cluster bisection cap applied to concurrent traffic.

pub mod catalog;
pub mod channel;
pub mod netpipe;

pub use catalog::{cluster, fig7_configs, fig8_configs, NetId};
pub use channel::{Channel, ClusterNetwork};
pub use netpipe::{netpipe_for, netpipe_sweep, NetPipePoint};
