//! NetPIPE-style ping-pong sweep (paper §3.2: "Simple unidirectional
//! (Ping-Pong) latency and bandwidth testing is performed with NetPIPE
//! 2.3").

use crate::channel::{Channel, ClusterNetwork};

/// One measurement of the ping-pong sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPipePoint {
    /// Message size in bytes.
    pub bytes: usize,
    /// One-way latency in microseconds.
    pub latency_us: f64,
    /// Effective one-way bandwidth in MB/s.
    pub bandwidth_mbs: f64,
}

/// Sweeps a channel over NetPIPE's roughly-exponential message-size
/// schedule from `min_bytes` to `max_bytes` (perturbed sizes straddling
/// powers of two, as NetPIPE does).
pub fn netpipe_sweep(channel: &Channel, min_bytes: usize, max_bytes: usize) -> Vec<NetPipePoint> {
    let mut points = Vec::new();
    let mut size = min_bytes.max(1);
    while size <= max_bytes {
        for &s in &[size.saturating_sub(size / 8).max(1), size, size + size / 8] {
            if s >= min_bytes && s <= max_bytes {
                points.push(NetPipePoint {
                    bytes: s,
                    latency_us: channel.latency_for(s),
                    bandwidth_mbs: channel.effective_bandwidth_mbs(s),
                });
            }
        }
        size *= 2;
    }
    points.dedup_by_key(|p| p.bytes);
    points
}

/// Convenience: sweep the measured channel of a Figure-7 configuration
/// (`intranode = true` picks the intra-node channel).
pub fn netpipe_for(net: &ClusterNetwork, intranode: bool, max_bytes: usize) -> Vec<NetPipePoint> {
    let ch = if intranode { &net.intra } else { &net.inter };
    netpipe_sweep(ch, 1, max_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Channel {
        Channel { latency_us: 50.0, bandwidth_mbs: 10.0, overhead_us: 5.0, eager_bytes: 8192 }
    }

    #[test]
    fn sweep_covers_range_monotonically() {
        let pts = netpipe_sweep(&ch(), 1, 1 << 20);
        assert!(pts.len() > 20);
        for w in pts.windows(2) {
            assert!(w[0].bytes <= w[1].bytes);
        }
        assert!(pts.first().unwrap().bytes <= 2);
        assert!(pts.last().unwrap().bytes > 1 << 19);
    }

    #[test]
    fn latency_floor_at_small_sizes() {
        let pts = netpipe_sweep(&ch(), 1, 64);
        for p in pts {
            // overhead + latency = 55 us floor, plus ≤ 6.4us of wire time.
            assert!(p.latency_us >= 55.0 && p.latency_us < 62.0, "{p:?}");
        }
    }

    #[test]
    fn bandwidth_saturates_at_large_sizes() {
        let pts = netpipe_sweep(&ch(), 1 << 24, 1 << 26);
        for p in pts {
            assert!(p.bandwidth_mbs > 9.9, "{p:?}");
        }
    }

    #[test]
    fn bandwidth_increases_with_size() {
        let pts = netpipe_sweep(&ch(), 1, 1 << 22);
        let first = pts.first().unwrap().bandwidth_mbs;
        let last = pts.last().unwrap().bandwidth_mbs;
        assert!(last > 100.0 * first);
    }
}
