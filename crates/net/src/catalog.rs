//! The network configurations of the paper's Figures 7–8, calibrated
//! against the measured curves.
//!
//! Figure 7 plots 12 configurations (NetPIPE ping-pong); Figure 8 plots 9
//! (MPI_Alltoall at P = 4 and 8). Latency floors and bandwidth ceilings
//! below are set from the paper's plots and the cited hardware peaks
//! (Myrinet ~160 MB/s hardware, MX adapter 150 MB/s, TB2 40 MB/s, AP-Net
//! 200 MB/s, Fast Ethernet 12.5 MB/s).

use crate::channel::{Channel, ClusterNetwork};

/// Identifiers for the network configurations in Figures 7–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetId {
    /// Fujitsu AP3000 AP-Net.
    Ap3000,
    /// IBM SP, Thin2 nodes, TB2 adapter (40 MB/s peak).
    Sp2Thin2,
    /// IBM SP, Silver nodes, MX adapter (150 MB/s peak).
    Sp2Silver,
    /// Muses 4-PC cluster, MPICH over point-to-point Fast Ethernet.
    MusesMpich,
    /// Muses with LAM (tuned TCP — lower latency than MPICH).
    MusesLam,
    /// SGI Onyx2 shared memory.
    Onyx2,
    /// RoadRunner over Fast Ethernet.
    RoadRunnerEth,
    /// RoadRunner over Myrinet with MPICH-GM.
    RoadRunnerMyr,
    /// Cray T3E-900 torus.
    T3e,
    /// SGI Origin 2000 at NCSA (ccNUMA fabric).
    Ncsa,
    /// Hitachi SR8000 crossbar (§3.2: ≥450 MB/s Alltoall at 6.4 MB).
    Hitachi,
}

impl NetId {
    /// All eleven configurations in catalog order.
    pub const ALL: [NetId; 11] = [
        NetId::Ap3000,
        NetId::Sp2Thin2,
        NetId::Sp2Silver,
        NetId::MusesMpich,
        NetId::MusesLam,
        NetId::Onyx2,
        NetId::RoadRunnerEth,
        NetId::RoadRunnerMyr,
        NetId::T3e,
        NetId::Ncsa,
        NetId::Hitachi,
    ];

    /// Stable machine-readable slug (lowercase, underscores) — the
    /// inverse of [`NetId::parse`], used by job specs and artifact
    /// names.
    pub fn slug(self) -> &'static str {
        match self {
            NetId::Ap3000 => "ap3000",
            NetId::Sp2Thin2 => "sp2_thin2",
            NetId::Sp2Silver => "sp2_silver",
            NetId::MusesMpich => "muses_mpich",
            NetId::MusesLam => "muses_lam",
            NetId::Onyx2 => "onyx2",
            NetId::RoadRunnerEth => "roadrunner_eth",
            NetId::RoadRunnerMyr => "roadrunner_myr",
            NetId::T3e => "t3e",
            NetId::Ncsa => "ncsa",
            NetId::Hitachi => "hitachi",
        }
    }

    /// Parses a [`NetId::slug`] back to its id (`None` for unknown
    /// names). Matching is case-insensitive.
    pub fn parse(s: &str) -> Option<NetId> {
        let want = s.trim().to_ascii_lowercase();
        NetId::ALL.into_iter().find(|id| id.slug() == want)
    }

    /// Paper display name.
    pub fn name(self) -> &'static str {
        cluster(self).name
    }
}

/// Builds the calibrated cluster network for `id`.
pub fn cluster(id: NetId) -> ClusterNetwork {
    match id {
        NetId::Ap3000 => ClusterNetwork {
            name: "AP3000",
            intra: Channel { latency_us: 60.0, bandwidth_mbs: 65.0, overhead_us: 8.0, eager_bytes: 16 * 1024 },
            inter: Channel { latency_us: 60.0, bandwidth_mbs: 65.0, overhead_us: 8.0, eager_bytes: 16 * 1024 },
            cpus_per_node: 1,
            bisection_mbs: f64::INFINITY,
            shared_medium: false,
        },
        NetId::Sp2Thin2 => ClusterNetwork {
            name: "SP2-Thin2",
            intra: Channel { latency_us: 50.0, bandwidth_mbs: 30.0, overhead_us: 10.0, eager_bytes: 4 * 1024 },
            inter: Channel { latency_us: 50.0, bandwidth_mbs: 30.0, overhead_us: 10.0, eager_bytes: 4 * 1024 },
            cpus_per_node: 1,
            bisection_mbs: f64::INFINITY,
            shared_medium: false,
        },
        NetId::Sp2Silver => ClusterNetwork {
            name: "SP2-Silver",
            // 4-way SMP nodes: intranode shared memory beats the switch.
            intra: Channel { latency_us: 18.0, bandwidth_mbs: 90.0, overhead_us: 4.0, eager_bytes: 16 * 1024 },
            inter: Channel { latency_us: 29.0, bandwidth_mbs: 80.0, overhead_us: 5.0, eager_bytes: 16 * 1024 },
            cpus_per_node: 4,
            bisection_mbs: f64::INFINITY,
            shared_medium: false,
        },
        NetId::MusesMpich => ClusterNetwork {
            name: "Muses, MPICH",
            intra: Channel { latency_us: 110.0, bandwidth_mbs: 10.8, overhead_us: 25.0, eager_bytes: 16 * 1024 },
            inter: Channel { latency_us: 110.0, bandwidth_mbs: 10.8, overhead_us: 25.0, eager_bytes: 16 * 1024 },
            cpus_per_node: 1,
            // Point-to-point quad-card topology: each pair has its own
            // dedicated link — no shared segment, no switch.
            bisection_mbs: f64::INFINITY,
            shared_medium: false,
        },
        NetId::MusesLam => ClusterNetwork {
            name: "Muses, LAM",
            // "a one-line change in the LAM low level TCP code" + 2.2
            // kernel tuning brought latency down.
            intra: Channel { latency_us: 65.0, bandwidth_mbs: 11.2, overhead_us: 18.0, eager_bytes: 16 * 1024 },
            inter: Channel { latency_us: 65.0, bandwidth_mbs: 11.2, overhead_us: 18.0, eager_bytes: 16 * 1024 },
            cpus_per_node: 1,
            bisection_mbs: f64::INFINITY,
            shared_medium: false,
        },
        NetId::Onyx2 => ClusterNetwork {
            name: "Onyx 2",
            intra: Channel { latency_us: 15.0, bandwidth_mbs: 100.0, overhead_us: 3.0, eager_bytes: 64 * 1024 },
            inter: Channel { latency_us: 15.0, bandwidth_mbs: 100.0, overhead_us: 3.0, eager_bytes: 64 * 1024 },
            cpus_per_node: 8,
            bisection_mbs: 400.0,
            shared_medium: false,
        },
        NetId::RoadRunnerEth => ClusterNetwork {
            name: "RoadRunner eth.",
            // Intranode TCP loopback on the dual-CPU nodes: lower latency,
            // higher bandwidth than the wire ("inter and intra-node
            // communications distinctly different").
            intra: Channel { latency_us: 130.0, bandwidth_mbs: 28.0, overhead_us: 30.0, eager_bytes: 16 * 1024 },
            inter: Channel { latency_us: 240.0, bandwidth_mbs: 8.5, overhead_us: 45.0, eager_bytes: 16 * 1024 },
            cpus_per_node: 2,
            // Switched fast ethernet with a modest backplane: collective
            // traffic saturates it quickly.
            bisection_mbs: 24.0,
            shared_medium: false,
        },
        NetId::RoadRunnerMyr => ClusterNetwork {
            name: "RoadRunner myr.",
            intra: Channel { latency_us: 16.0, bandwidth_mbs: 45.0, overhead_us: 4.0, eager_bytes: 16 * 1024 },
            // "comparable to the SP2-Silver nodes ... with respect to
            // latency. The bandwidth recorded, though, is lower than most
            // systems, apart from the SP2-Thin2."
            inter: Channel { latency_us: 24.0, bandwidth_mbs: 38.0, overhead_us: 5.0, eager_bytes: 16 * 1024 },
            cpus_per_node: 2,
            bisection_mbs: 2000.0,
            shared_medium: false,
        },
        NetId::T3e => ClusterNetwork {
            name: "T3E",
            intra: Channel { latency_us: 14.0, bandwidth_mbs: 160.0, overhead_us: 2.0, eager_bytes: 4 * 1024 },
            inter: Channel { latency_us: 14.0, bandwidth_mbs: 160.0, overhead_us: 2.0, eager_bytes: 4 * 1024 },
            cpus_per_node: 1,
            // 3-D torus: effectively full bisection at these scales —
            // "the T3E ... is 3 times higher than the rest" in Alltoall.
            bisection_mbs: f64::INFINITY,
            shared_medium: false,
        },
        NetId::Ncsa => ClusterNetwork {
            name: "NCSA",
            intra: Channel { latency_us: 16.0, bandwidth_mbs: 110.0, overhead_us: 3.0, eager_bytes: 64 * 1024 },
            inter: Channel { latency_us: 16.0, bandwidth_mbs: 110.0, overhead_us: 3.0, eager_bytes: 64 * 1024 },
            cpus_per_node: 2,
            bisection_mbs: 700.0,
            shared_medium: false,
        },
        NetId::Hitachi => ClusterNetwork {
            name: "HITACHI",
            intra: Channel { latency_us: 8.0, bandwidth_mbs: 900.0, overhead_us: 2.0, eager_bytes: 64 * 1024 },
            inter: Channel { latency_us: 8.0, bandwidth_mbs: 900.0, overhead_us: 2.0, eager_bytes: 64 * 1024 },
            cpus_per_node: 8,
            bisection_mbs: f64::INFINITY,
            shared_medium: false,
        },
    }
}

/// The 12 ping-pong configurations of Figure 7, in legend order.
/// Each entry is (legend label, network, `true` when the *intranode*
/// channel is the one being measured).
pub fn fig7_configs() -> Vec<(&'static str, ClusterNetwork, bool)> {
    vec![
        ("AP3000", cluster(NetId::Ap3000), false),
        ("SP2-Thin2", cluster(NetId::Sp2Thin2), false),
        ("SP2-Silver, internode", cluster(NetId::Sp2Silver), false),
        ("SP2-Silver, intranode", cluster(NetId::Sp2Silver), true),
        ("Muses, MPICH", cluster(NetId::MusesMpich), false),
        ("Muses, LAM", cluster(NetId::MusesLam), false),
        ("Onyx 2", cluster(NetId::Onyx2), true),
        ("R.Run, eth.-intranode", cluster(NetId::RoadRunnerEth), true),
        ("R.Run, eth.-internode", cluster(NetId::RoadRunnerEth), false),
        ("R.Run, myr.-intranode", cluster(NetId::RoadRunnerMyr), true),
        ("R.Run, myr.-internode", cluster(NetId::RoadRunnerMyr), false),
        ("T3E", cluster(NetId::T3e), false),
    ]
}

/// The Alltoall configurations of Figure 8 (both panels), legend order.
pub fn fig8_configs() -> Vec<(&'static str, ClusterNetwork)> {
    vec![
        ("AP3000", cluster(NetId::Ap3000)),
        ("T3E", cluster(NetId::T3e)),
        ("RoadRunner eth.", cluster(NetId::RoadRunnerEth)),
        ("RoadRunner myr.", cluster(NetId::RoadRunnerMyr)),
        ("SP2-Silver internode", cluster(NetId::Sp2Silver)),
        ("SP2-Silver intranode", cluster(NetId::Sp2Silver)),
        ("SP2-thin2", cluster(NetId::Sp2Thin2)),
        ("NCSA", cluster(NetId::Ncsa)),
        ("Muses", cluster(NetId::MusesLam)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [NetId; 11] = [
        NetId::Ap3000,
        NetId::Sp2Thin2,
        NetId::Sp2Silver,
        NetId::MusesMpich,
        NetId::MusesLam,
        NetId::Onyx2,
        NetId::RoadRunnerEth,
        NetId::RoadRunnerMyr,
        NetId::T3e,
        NetId::Ncsa,
        NetId::Hitachi,
    ];

    #[test]
    fn all_configs_build_sane() {
        for id in ALL {
            let c = cluster(id);
            assert!(c.inter.latency_us > 0.0, "{}", c.name);
            assert!(c.inter.bandwidth_mbs > 0.0);
            assert!(c.cpus_per_node >= 1);
        }
    }

    /// §3.3: "Ethernet-based networks have low bandwidth and high latency,
    /// compared to the supercomputers available, while the bandwidth peak
    /// is nearly half of most machines."
    #[test]
    fn ethernet_is_worst_class() {
        let eth = cluster(NetId::RoadRunnerEth);
        for id in [NetId::Sp2Silver, NetId::T3e, NetId::Ap3000, NetId::Sp2Thin2] {
            let sc = cluster(id);
            assert!(eth.inter.latency_us > sc.inter.latency_us, "{}", sc.name);
            assert!(eth.inter.bandwidth_mbs < sc.inter.bandwidth_mbs, "{}", sc.name);
        }
    }

    /// §3.2: Muses latency "low enough to be competitive with some of the
    /// supercomputers" — lower than RoadRunner's ethernet, higher than
    /// Myrinet.
    #[test]
    fn muses_latency_ordering() {
        let lam = cluster(NetId::MusesLam).inter.latency_us;
        assert!(lam < cluster(NetId::RoadRunnerEth).inter.latency_us);
        assert!(lam > cluster(NetId::RoadRunnerMyr).inter.latency_us);
    }

    /// §3.2: Myrinet latency "comparable to the SP2-Silver nodes and
    /// better than the AP3000 and SP2-Thin"; bandwidth "lower than most
    /// systems, apart from the SP2-Thin2".
    #[test]
    fn myrinet_position() {
        let myr = cluster(NetId::RoadRunnerMyr).inter;
        assert!(myr.latency_us < cluster(NetId::Ap3000).inter.latency_us);
        assert!(myr.latency_us < cluster(NetId::Sp2Thin2).inter.latency_us);
        assert!((myr.latency_us - cluster(NetId::Sp2Silver).inter.latency_us).abs() < 10.0);
        assert!(myr.bandwidth_mbs < cluster(NetId::Sp2Silver).inter.bandwidth_mbs);
        assert!(myr.bandwidth_mbs > cluster(NetId::Sp2Thin2).inter.bandwidth_mbs);
    }

    /// Muses bandwidth "currently limited by the Fast Ethernet peak".
    #[test]
    fn muses_bandwidth_below_fast_ethernet_peak() {
        for id in [NetId::MusesMpich, NetId::MusesLam] {
            let bw = cluster(id).inter.bandwidth_mbs;
            assert!(bw < 12.5 && bw > 8.0, "{bw}");
        }
    }

    #[test]
    fn fig7_has_twelve_series() {
        assert_eq!(fig7_configs().len(), 12);
    }

    #[test]
    fn fig8_has_nine_series() {
        assert_eq!(fig8_configs().len(), 9);
    }

    #[test]
    fn t3e_fastest_supercomputer_link() {
        let t3e = cluster(NetId::T3e).inter.bandwidth_mbs;
        for id in [NetId::Sp2Silver, NetId::Ap3000, NetId::Sp2Thin2, NetId::RoadRunnerMyr] {
            assert!(t3e > cluster(id).inter.bandwidth_mbs);
        }
    }

    #[test]
    fn slugs_round_trip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in NetId::ALL {
            assert!(seen.insert(id.slug()), "duplicate slug {}", id.slug());
            assert_eq!(NetId::parse(id.slug()), Some(id));
            assert_eq!(NetId::parse(&id.slug().to_ascii_uppercase()), Some(id));
        }
        assert_eq!(NetId::parse("not_a_net"), None);
    }
}
