//! 2-D mesh generators for the paper's domains.

use crate::elem::{BoundaryTag, ElemKind};
use crate::mesh2d::{Elem2d, Mesh2d};

/// Structured quadrilateral mesh of the rectangle `[x0,x1] × [y0,y1]`
/// with `nx × ny` cells. All boundaries tagged `Wall`.
pub fn rect_quads(x0: f64, x1: f64, y0: f64, y1: f64, nx: usize, ny: usize) -> Mesh2d {
    let xs: Vec<f64> = (0..=nx).map(|i| x0 + (x1 - x0) * i as f64 / nx as f64).collect();
    let ys: Vec<f64> = (0..=ny).map(|j| y0 + (y1 - y0) * j as f64 / ny as f64).collect();
    structured_quads(&xs, &ys, &[], |_| BoundaryTag::Wall)
}

/// Structured triangle mesh: [`rect_quads`] with each quad split along
/// its diagonal.
pub fn rect_tris(x0: f64, x1: f64, y0: f64, y1: f64, nx: usize, ny: usize) -> Mesh2d {
    let quads = rect_quads(x0, x1, y0, y1, nx, ny);
    let mut elems = Vec::with_capacity(2 * quads.nelems());
    for el in &quads.elems {
        let v = &el.verts;
        elems.push(Elem2d { kind: ElemKind::Tri, verts: vec![v[0], v[1], v[2]] });
        elems.push(Elem2d { kind: ElemKind::Tri, verts: vec![v[0], v[2], v[3]] });
    }
    Mesh2d::new(quads.verts.clone(), elems, |_| BoundaryTag::Wall)
}

/// The bluff-body wake domain of paper Figure 11 (left): rectangle
/// `[-15, 25] × [-5, 5]` with a unit square body at the origin
/// (substitution for the cylinder cross-section — see crate docs).
///
/// `refine` scales resolution; `refine = 1` gives a coarse mesh
/// (~60 elements), `refine = 4` approaches the paper's 902-element count.
/// Grid lines are geometrically graded toward the body.
pub fn bluff_body_mesh(refine: usize) -> Mesh2d {
    let r = refine.max(1);
    // Graded 1-D point sets including the body faces at ±0.5.
    let xs = concat_graded(&[
        graded(-15.0, -0.5, 4 * r, 0.75), // upstream, clustering to body
        graded(-0.5, 0.5, 2 * r, 1.0),    // across the body
        graded(0.5, 25.0, 8 * r, 1.25),   // wake, expanding downstream
    ]);
    let ys = concat_graded(&[
        graded(-5.0, -0.5, 3 * r, 0.8),
        graded(-0.5, 0.5, 2 * r, 1.0),
        graded(0.5, 5.0, 3 * r, 1.25),
    ]);
    let hole = |cx: f64, cy: f64| cx > -0.5 && cx < 0.5 && cy > -0.5 && cy < 0.5;
    structured_quads(&xs, &ys, &[&hole], |mid| {
        let [x, y] = mid;
        if (x + 15.0).abs() < 1e-9 {
            BoundaryTag::Inflow
        } else if (x - 25.0).abs() < 1e-9 {
            BoundaryTag::Outflow
        } else if (y - 5.0).abs() < 1e-9 || (y + 5.0).abs() < 1e-9 {
            BoundaryTag::Side
        } else {
            BoundaryTag::Wall // body surface
        }
    })
}

/// Geometric grading of `[a, b]` into `n` cells; `ratio` is the size ratio
/// of the last cell to the first (1.0 = uniform).
fn graded(a: f64, b: f64, n: usize, ratio: f64) -> Vec<f64> {
    let n = n.max(1);
    if (ratio - 1.0).abs() < 1e-12 {
        return (0..=n).map(|i| a + (b - a) * i as f64 / n as f64).collect();
    }
    let q = ratio.powf(1.0 / (n as f64 - 1.0).max(1.0));
    // First cell h0 with h0 (q^n - 1)/(q - 1) = b - a.
    let h0 = (b - a) * (q - 1.0) / (q.powi(n as i32) - 1.0);
    let mut pts = Vec::with_capacity(n + 1);
    let mut x = a;
    pts.push(a);
    let mut h = h0;
    for _ in 0..n {
        x += h;
        pts.push(x);
        h *= q;
    }
    // Pin the endpoint exactly.
    *pts.last_mut().expect("n >= 1 segments") = b;
    pts
}

/// Joins graded segments (dropping duplicated junction points).
fn concat_graded(parts: &[Vec<f64>]) -> Vec<f64> {
    let mut out = Vec::new();
    for (i, p) in parts.iter().enumerate() {
        if i == 0 {
            out.extend_from_slice(p);
        } else {
            out.extend_from_slice(&p[1..]);
        }
    }
    out
}

type HolePredicate<'a> = &'a dyn Fn(f64, f64) -> bool;

/// Builds a structured quad mesh on a tensor grid of `xs × ys`, dropping
/// cells whose centre falls in any `hole`, and tagging boundary edges via
/// `tagger`.
fn structured_quads(
    xs: &[f64],
    ys: &[f64],
    holes: &[HolePredicate<'_>],
    tagger: impl Fn([f64; 2]) -> BoundaryTag,
) -> Mesh2d {
    let nx = xs.len() - 1;
    let ny = ys.len() - 1;
    let vid = |i: usize, j: usize| i + j * (nx + 1);
    let mut verts = Vec::with_capacity((nx + 1) * (ny + 1));
    for &y in ys {
        for &x in xs {
            verts.push([x, y]);
        }
    }
    let mut elems = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let cx = 0.5 * (xs[i] + xs[i + 1]);
            let cy = 0.5 * (ys[j] + ys[j + 1]);
            if holes.iter().any(|h| h(cx, cy)) {
                continue;
            }
            elems.push(Elem2d {
                kind: ElemKind::Quad,
                verts: vec![vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)],
            });
        }
    }
    // Drop unused vertices (hole interiors) and renumber.
    let mut used = vec![false; verts.len()];
    for el in &elems {
        for &v in &el.verts {
            used[v] = true;
        }
    }
    let mut remap = vec![usize::MAX; verts.len()];
    let mut packed = Vec::new();
    for (v, &u) in used.iter().enumerate() {
        if u {
            remap[v] = packed.len();
            packed.push(verts[v]);
        }
    }
    let elems = elems
        .into_iter()
        .map(|mut e| {
            for v in &mut e.verts {
                *v = remap[*v];
            }
            e
        })
        .collect();
    Mesh2d::new(packed, elems, tagger)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_quads_counts_and_area() {
        let m = rect_quads(0.0, 2.0, 0.0, 1.0, 4, 2);
        assert_eq!(m.nelems(), 8);
        assert_eq!(m.nverts(), 15);
        assert!((m.total_area() - 2.0).abs() < 1e-12);
        m.validate().unwrap();
    }

    #[test]
    fn rect_tris_doubles_elements() {
        let m = rect_tris(0.0, 1.0, 0.0, 1.0, 3, 3);
        assert_eq!(m.nelems(), 18);
        assert!((m.total_area() - 1.0).abs() < 1e-12);
        m.validate().unwrap();
    }

    #[test]
    fn graded_endpoints_and_monotonicity() {
        let pts = graded(-1.0, 3.0, 7, 2.0);
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0], -1.0);
        assert_eq!(pts[7], 3.0);
        for w in pts.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Last cell about twice the first.
        let h0 = pts[1] - pts[0];
        let hn = pts[7] - pts[6];
        assert!((hn / h0 - 2.0).abs() < 0.05);
    }

    #[test]
    fn bluff_body_mesh_valid_with_hole() {
        let m = bluff_body_mesh(1);
        m.validate().unwrap();
        // Area = 40x10 rectangle minus 1x1 body.
        assert!((m.total_area() - 399.0).abs() < 1e-9, "{}", m.total_area());
        // All four tags appear.
        use std::collections::HashSet;
        let tags: HashSet<_> = m.edges.iter().filter_map(|e| e.tag).collect();
        assert!(tags.contains(&BoundaryTag::Inflow));
        assert!(tags.contains(&BoundaryTag::Outflow));
        assert!(tags.contains(&BoundaryTag::Side));
        assert!(tags.contains(&BoundaryTag::Wall));
    }

    #[test]
    fn bluff_body_refinement_scales_toward_paper_count() {
        let coarse = bluff_body_mesh(1).nelems();
        let fine = bluff_body_mesh(4).nelems();
        assert!(fine > 10 * coarse, "{coarse} -> {fine}");
        // Paper mesh: 902 elements. refine=4 should be the same order.
        assert!((500..2000).contains(&fine), "{fine}");
    }

    #[test]
    fn bluff_body_dual_graph_connected() {
        let m = bluff_body_mesh(1);
        let dual = m.dual_edges();
        // Union-find connectivity check.
        let mut parent: Vec<usize> = (0..m.nelems()).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (a, b) in dual {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for e in 0..m.nelems() {
            assert_eq!(find(&mut parent, e), root, "element {e} disconnected");
        }
    }
}
