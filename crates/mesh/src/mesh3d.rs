//! 3-D hexahedral meshes with face connectivity (NekTar-ALE substrate).

use crate::elem::{BoundaryTag, ElemKind};
use std::collections::HashMap;

/// A hexahedral element: 8 vertices in the standard ordering (bottom quad
/// CCW viewed from above, then top quad).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elem3d {
    /// Shape (always `Hex` for now).
    pub kind: ElemKind,
    /// Vertex ids: `[v000, v100, v110, v010, v001, v101, v111, v011]`.
    pub verts: Vec<usize>,
}

/// Local faces of a hex in (vertex index quadruple) form.
const HEX_FACES: [[usize; 4]; 6] = [
    [0, 1, 2, 3], // bottom (z-)
    [4, 5, 6, 7], // top (z+)
    [0, 1, 5, 4], // front (y-)
    [3, 2, 6, 7], // back (y+)
    [0, 3, 7, 4], // left (x-)
    [1, 2, 6, 5], // right (x+)
];

/// A unique quadrilateral face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Face {
    /// Sorted vertex ids (canonical key).
    pub v: [usize; 4],
    /// Elements sharing the face (1 = boundary, 2 = interior).
    pub elems: Vec<usize>,
    /// Boundary tag for boundary faces.
    pub tag: Option<BoundaryTag>,
}

/// A 3-D hexahedral mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh3d {
    /// Vertex coordinates.
    pub verts: Vec<[f64; 3]>,
    /// Elements.
    pub elems: Vec<Elem3d>,
    /// Unique faces.
    pub faces: Vec<Face>,
    /// For each element, its 6 face ids in `HEX_FACES` order.
    pub elem_faces: Vec<[usize; 6]>,
}

impl Mesh3d {
    /// Builds face connectivity; boundary faces tagged via
    /// `tagger(centroid)`.
    pub fn new(
        verts: Vec<[f64; 3]>,
        elems: Vec<Elem3d>,
        tagger: impl Fn([f64; 3]) -> BoundaryTag,
    ) -> Mesh3d {
        let mut face_ids: HashMap<[usize; 4], usize> = HashMap::new();
        let mut faces: Vec<Face> = Vec::new();
        let mut elem_faces = Vec::with_capacity(elems.len());
        for (ei, el) in elems.iter().enumerate() {
            assert_eq!(el.verts.len(), 8, "element {ei}: hex needs 8 vertices");
            let mut ids = [0usize; 6];
            for (fi, local) in HEX_FACES.iter().enumerate() {
                let mut key = [
                    el.verts[local[0]],
                    el.verts[local[1]],
                    el.verts[local[2]],
                    el.verts[local[3]],
                ];
                key.sort_unstable();
                let id = *face_ids.entry(key).or_insert_with(|| {
                    faces.push(Face { v: key, elems: Vec::new(), tag: None });
                    faces.len() - 1
                });
                faces[id].elems.push(ei);
                assert!(faces[id].elems.len() <= 2, "face shared by >2 elements");
                ids[fi] = id;
            }
            elem_faces.push(ids);
        }
        for f in &mut faces {
            if f.elems.len() == 1 {
                let c = f.v.iter().fold([0.0; 3], |mut acc, &v| {
                    for d in 0..3 {
                        acc[d] += verts[v][d] / 4.0;
                    }
                    acc
                });
                f.tag = Some(tagger(c));
            }
        }
        Mesh3d { verts, elems, faces, elem_faces }
    }

    /// Number of elements.
    pub fn nelems(&self) -> usize {
        self.elems.len()
    }

    /// Number of vertices.
    pub fn nverts(&self) -> usize {
        self.verts.len()
    }

    /// Element dual graph edge list (face adjacency) for partitioning.
    pub fn dual_edges(&self) -> Vec<(usize, usize)> {
        self.faces
            .iter()
            .filter(|f| f.elems.len() == 2)
            .map(|f| (f.elems[0], f.elems[1]))
            .collect()
    }

    /// Volume of a (possibly skewed) hex by splitting into 6 tetrahedra.
    pub fn elem_volume(&self, ei: usize) -> f64 {
        let v = &self.elems[ei].verts;
        let p = |i: usize| self.verts[v[i]];
        // Tetrahedral decomposition anchored at vertex 0.
        const TETS: [[usize; 4]; 6] = [
            [0, 1, 2, 6],
            [0, 2, 3, 6],
            [0, 3, 7, 6],
            [0, 7, 4, 6],
            [0, 4, 5, 6],
            [0, 5, 1, 6],
        ];
        TETS.iter()
            .map(|t| {
                let a = p(t[0]);
                let b = p(t[1]);
                let c = p(t[2]);
                let d = p(t[3]);
                let ab = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
                let ac = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
                let ad = [d[0] - a[0], d[1] - a[1], d[2] - a[2]];
                let cross = [
                    ac[1] * ad[2] - ac[2] * ad[1],
                    ac[2] * ad[0] - ac[0] * ad[2],
                    ac[0] * ad[1] - ac[1] * ad[0],
                ];
                (ab[0] * cross[0] + ab[1] * cross[1] + ab[2] * cross[2]) / 6.0
            })
            .sum()
    }

    /// Total volume.
    pub fn total_volume(&self) -> f64 {
        (0..self.nelems()).map(|e| self.elem_volume(e)).sum()
    }

    /// Validates volumes positive, faces consistent and boundary tagged.
    pub fn validate(&self) -> Result<(), String> {
        for ei in 0..self.nelems() {
            let v = self.elem_volume(ei);
            if v <= 0.0 {
                return Err(format!("element {ei} volume {v}"));
            }
        }
        for (id, f) in self.faces.iter().enumerate() {
            if f.elems.is_empty() || f.elems.len() > 2 {
                return Err(format!("face {id} touches {} elements", f.elems.len()));
            }
            if f.elems.len() == 1 && f.tag.is_none() {
                return Err(format!("boundary face {id} untagged"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::gen3d::box_hexes;

    #[test]
    fn single_hex_connectivity() {
        let m = box_hexes(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1, 1, 1);
        assert_eq!(m.nelems(), 1);
        assert_eq!(m.faces.len(), 6);
        assert_eq!(m.dual_edges().len(), 0);
        assert!((m.elem_volume(0) - 1.0).abs() < 1e-14);
        m.validate().unwrap();
    }

    #[test]
    fn two_hexes_share_one_face() {
        let m = box_hexes(0.0, 2.0, 0.0, 1.0, 0.0, 1.0, 2, 1, 1);
        assert_eq!(m.nelems(), 2);
        assert_eq!(m.faces.len(), 11);
        assert_eq!(m.dual_edges(), vec![(0, 1)]);
        assert!((m.total_volume() - 2.0).abs() < 1e-14);
    }

    #[test]
    fn grid_dual_graph_size() {
        let m = box_hexes(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 3, 3, 3);
        assert_eq!(m.nelems(), 27);
        // Interior faces: 3 directions × 2 planes × 9 = 54.
        assert_eq!(m.dual_edges().len(), 54);
        m.validate().unwrap();
    }
}
