//! # nkt-mesh — 2-D/3-D unstructured meshes for the spectral/hp method
//!
//! NekTar "uses meshes similar to standard finite element and finite
//! volume meshes, consisting of structured or unstructured grids or a
//! combination of both" (paper §1.3). This crate provides:
//!
//! * [`Mesh2d`] — triangles and quadrilaterals with edge connectivity,
//!   boundary tags and the element dual graph (what the METIS substitute
//!   partitions);
//! * [`Mesh3d`] — hexahedral meshes with face connectivity for the
//!   NekTar-ALE 3-D runs;
//! * generators ([`gen2d`], [`gen3d`]) for the paper's domains: the
//!   rectangle/channel, the bluff-body wake domain of Figure 11 (left),
//!   and the flapping-wing box of Figure 11 (right). The exact NACA 4420
//!   geometry is replaced by a rectangular bluff section (documented
//!   substitution — the benchmark load is element count × order, not the
//!   aerofoil's curvature).
//!
//! Boundary tags follow the paper's bluff-body setup: laminar inflow,
//! Neumann outflow and sides, no-slip walls on the body.

#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]
pub mod elem;
pub mod gen2d;
pub mod gen3d;
pub mod mesh2d;
pub mod mesh3d;

pub use elem::{BoundaryTag, ElemKind};
pub use gen2d::{bluff_body_mesh, rect_quads, rect_tris};
pub use gen3d::{box_hexes, wing_box_mesh};
pub use mesh2d::{Edge, Elem2d, Mesh2d};
pub use mesh3d::{Elem3d, Face, Mesh3d};
