//! Element kinds and boundary tags.

/// Element shapes the spectral/hp discretisation supports (paper §4:
/// "tensor-product representations in hybrid subdomains, i.e. tetrahedra,
/// hexahedra, prisms and pyramids"; we implement the 2-D pair plus
/// hexahedra, which carry the benchmark workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemKind {
    /// 3-vertex triangle (collapsed-coordinate basis).
    Tri,
    /// 4-vertex quadrilateral (tensor basis).
    Quad,
    /// 8-vertex hexahedron (3-D tensor basis).
    Hex,
}

impl ElemKind {
    /// Vertices per element.
    pub fn nverts(self) -> usize {
        match self {
            ElemKind::Tri => 3,
            ElemKind::Quad => 4,
            ElemKind::Hex => 8,
        }
    }

    /// Edges per element (2-D kinds only).
    pub fn nedges(self) -> usize {
        match self {
            ElemKind::Tri => 3,
            ElemKind::Quad => 4,
            ElemKind::Hex => 12,
        }
    }

    /// Faces per element (3-D).
    pub fn nfaces(self) -> usize {
        match self {
            ElemKind::Hex => 6,
            _ => 1,
        }
    }
}

/// Boundary condition tag, matching the paper's bluff-body setup
/// ("Neumann boundary conditions (i.e. zero flux) were used at the
/// outflow and on the sides of the domain, with the inflow being a
/// laminar flow").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryTag {
    /// Prescribed laminar inflow (Dirichlet velocity).
    Inflow,
    /// Zero-flux outflow (Neumann).
    Outflow,
    /// Zero-flux side walls (Neumann).
    Side,
    /// No-slip body surface (Dirichlet zero velocity).
    Wall,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(ElemKind::Tri.nverts(), 3);
        assert_eq!(ElemKind::Quad.nverts(), 4);
        assert_eq!(ElemKind::Hex.nverts(), 8);
        assert_eq!(ElemKind::Tri.nedges(), 3);
        assert_eq!(ElemKind::Quad.nedges(), 4);
        assert_eq!(ElemKind::Hex.nedges(), 12);
        assert_eq!(ElemKind::Hex.nfaces(), 6);
    }
}
