//! 2-D unstructured mesh: triangles and quadrilaterals with full edge
//! connectivity.

use crate::elem::{BoundaryTag, ElemKind};
use std::collections::HashMap;

/// A 2-D element: kind + counterclockwise vertex list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elem2d {
    /// Shape.
    pub kind: ElemKind,
    /// Vertex indices, counterclockwise.
    pub verts: Vec<usize>,
}

impl Elem2d {
    /// Local edges as (local vertex a, local vertex b) pairs, CCW.
    pub fn local_edges(&self) -> Vec<(usize, usize)> {
        let n = self.verts.len();
        (0..n).map(|i| (self.verts[i], self.verts[(i + 1) % n])).collect()
    }
}

/// A unique (undirected) mesh edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Endpoint vertex ids, `v[0] < v[1]`.
    pub v: [usize; 2],
    /// Elements sharing this edge (1 = boundary, 2 = interior).
    pub elems: Vec<usize>,
    /// Boundary tag when this is a boundary edge.
    pub tag: Option<BoundaryTag>,
}

/// A 2-D mesh of triangles/quadrilaterals.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh2d {
    /// Vertex coordinates.
    pub verts: Vec<[f64; 2]>,
    /// Elements.
    pub elems: Vec<Elem2d>,
    /// Unique edges (built by [`Mesh2d::new`]).
    pub edges: Vec<Edge>,
    /// For each element, its edge ids in local-edge order, with `true`
    /// when the local direction matches the stored (ascending) direction.
    pub elem_edges: Vec<Vec<(usize, bool)>>,
}

impl Mesh2d {
    /// Builds connectivity from raw vertices/elements; boundary edges get
    /// tags from `tagger(midpoint) -> BoundaryTag`.
    ///
    /// # Panics
    /// Panics if an element references a missing vertex or an edge is
    /// shared by more than two elements.
    pub fn new(
        verts: Vec<[f64; 2]>,
        elems: Vec<Elem2d>,
        tagger: impl Fn([f64; 2]) -> BoundaryTag,
    ) -> Mesh2d {
        let mut edge_ids: HashMap<(usize, usize), usize> = HashMap::new();
        let mut edges: Vec<Edge> = Vec::new();
        let mut elem_edges = Vec::with_capacity(elems.len());
        for (ei, el) in elems.iter().enumerate() {
            assert_eq!(el.verts.len(), el.kind.nverts(), "element {ei} vertex count");
            let mut ids = Vec::with_capacity(el.verts.len());
            for (a, b) in el.local_edges() {
                assert!(a < verts.len() && b < verts.len(), "element {ei} vertex OOR");
                let key = (a.min(b), a.max(b));
                let forward = a < b;
                let id = *edge_ids.entry(key).or_insert_with(|| {
                    edges.push(Edge { v: [key.0, key.1], elems: Vec::new(), tag: None });
                    edges.len() - 1
                });
                edges[id].elems.push(ei);
                assert!(edges[id].elems.len() <= 2, "edge shared by >2 elements");
                ids.push((id, forward));
            }
            elem_edges.push(ids);
        }
        for e in &mut edges {
            if e.elems.len() == 1 {
                let mid = [
                    0.5 * (verts[e.v[0]][0] + verts[e.v[1]][0]),
                    0.5 * (verts[e.v[0]][1] + verts[e.v[1]][1]),
                ];
                e.tag = Some(tagger(mid));
            }
        }
        Mesh2d { verts, elems, edges, elem_edges }
    }

    /// Number of elements.
    pub fn nelems(&self) -> usize {
        self.elems.len()
    }

    /// Number of vertices.
    pub fn nverts(&self) -> usize {
        self.verts.len()
    }

    /// Boundary edge ids.
    pub fn boundary_edges(&self) -> Vec<usize> {
        (0..self.edges.len()).filter(|&i| self.edges[i].elems.len() == 1).collect()
    }

    /// The element dual graph as an undirected edge list (elements sharing
    /// an edge are adjacent) — input for the METIS-substitute partitioner.
    pub fn dual_edges(&self) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .filter(|e| e.elems.len() == 2)
            .map(|e| (e.elems[0], e.elems[1]))
            .collect()
    }

    /// Straight-sided element area via the shoelace formula (positive for
    /// CCW orientation).
    pub fn elem_area(&self, ei: usize) -> f64 {
        let vs = &self.elems[ei].verts;
        let mut a = 0.0;
        for i in 0..vs.len() {
            let p = self.verts[vs[i]];
            let q = self.verts[vs[(i + 1) % vs.len()]];
            a += p[0] * q[1] - q[0] * p[1];
        }
        0.5 * a
    }

    /// Validates orientation (all areas positive) and connectivity.
    pub fn validate(&self) -> Result<(), String> {
        for ei in 0..self.nelems() {
            let a = self.elem_area(ei);
            if a <= 0.0 {
                return Err(format!("element {ei} has non-positive area {a}"));
            }
        }
        for (id, e) in self.edges.iter().enumerate() {
            if e.elems.is_empty() || e.elems.len() > 2 {
                return Err(format!("edge {id} touches {} elements", e.elems.len()));
            }
            if e.elems.len() == 1 && e.tag.is_none() {
                return Err(format!("boundary edge {id} untagged"));
            }
        }
        Ok(())
    }

    /// Total mesh area.
    pub fn total_area(&self) -> f64 {
        (0..self.nelems()).map(|e| self.elem_area(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square_two_tris() -> Mesh2d {
        let verts = vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let elems = vec![
            Elem2d { kind: ElemKind::Tri, verts: vec![0, 1, 2] },
            Elem2d { kind: ElemKind::Tri, verts: vec![0, 2, 3] },
        ];
        Mesh2d::new(verts, elems, |_| BoundaryTag::Wall)
    }

    #[test]
    fn edge_connectivity() {
        let m = unit_square_two_tris();
        assert_eq!(m.edges.len(), 5);
        assert_eq!(m.boundary_edges().len(), 4);
        // Diagonal shared by both elements.
        let diag = m.edges.iter().find(|e| e.v == [0, 2]).unwrap();
        assert_eq!(diag.elems.len(), 2);
        assert!(diag.tag.is_none());
    }

    #[test]
    fn areas_and_validation() {
        let m = unit_square_two_tris();
        assert!((m.elem_area(0) - 0.5).abs() < 1e-15);
        assert!((m.total_area() - 1.0).abs() < 1e-15);
        m.validate().unwrap();
    }

    #[test]
    fn dual_graph_of_two_tris() {
        let m = unit_square_two_tris();
        assert_eq!(m.dual_edges(), vec![(0, 1)]);
    }

    #[test]
    fn orientation_flags_consistent() {
        let m = unit_square_two_tris();
        // The shared edge appears once per element with opposite senses.
        let diag_id = m.edges.iter().position(|e| e.v == [0, 2]).unwrap();
        let mut senses = Vec::new();
        for ee in &m.elem_edges {
            for &(id, fwd) in ee {
                if id == diag_id {
                    senses.push(fwd);
                }
            }
        }
        assert_eq!(senses.len(), 2);
        assert_ne!(senses[0], senses[1]);
    }

    #[test]
    fn negative_area_detected() {
        let verts = vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]];
        // Clockwise triangle.
        let elems = vec![Elem2d { kind: ElemKind::Tri, verts: vec![0, 2, 1] }];
        let m = Mesh2d::new(verts, elems, |_| BoundaryTag::Wall);
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn out_of_range_vertex_panics() {
        Mesh2d::new(
            vec![[0.0, 0.0], [1.0, 0.0]],
            vec![Elem2d { kind: ElemKind::Tri, verts: vec![0, 1, 5] }],
            |_| BoundaryTag::Wall,
        );
    }
}
