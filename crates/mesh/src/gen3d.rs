//! 3-D mesh generators: structured boxes and the flapping-wing domain.

use crate::elem::{BoundaryTag, ElemKind};
use crate::mesh3d::{Elem3d, Mesh3d};

/// Structured hex mesh of a box with `nx × ny × nz` cells. Boundaries:
/// x− Inflow, x+ Outflow, others Side.
#[allow(clippy::too_many_arguments)]
pub fn box_hexes(
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
    z0: f64,
    z1: f64,
    nx: usize,
    ny: usize,
    nz: usize,
) -> Mesh3d {
    let xs: Vec<f64> = (0..=nx).map(|i| x0 + (x1 - x0) * i as f64 / nx as f64).collect();
    let ys: Vec<f64> = (0..=ny).map(|j| y0 + (y1 - y0) * j as f64 / ny as f64).collect();
    let zs: Vec<f64> = (0..=nz).map(|k| z0 + (z1 - z0) * k as f64 / nz as f64).collect();
    structured_hexes(&xs, &ys, &zs, &[], |c| {
        if (c[0] - x0).abs() < 1e-9 {
            BoundaryTag::Inflow
        } else if (c[0] - x1).abs() < 1e-9 {
            BoundaryTag::Outflow
        } else {
            BoundaryTag::Side
        }
    })
}

/// The flapping-wing domain of paper Figure 11 (right): a 10 × 5 × 5 box
/// with a plate-like bluff section standing in for the NACA 4420 wing
/// (substitution documented in the crate docs; the benchmark load is
/// "15,870 elements ... polynomial order of 4", which `refine` scales
/// toward).
pub fn wing_box_mesh(refine: usize) -> Mesh3d {
    let r = refine.max(1);
    let (nx, ny, nz) = (8 * r, 4 * r, 4 * r);
    let xs: Vec<f64> = (0..=nx).map(|i| 10.0 * i as f64 / nx as f64).collect();
    let ys: Vec<f64> = (0..=ny).map(|j| 5.0 * j as f64 / ny as f64).collect();
    let zs: Vec<f64> = (0..=nz).map(|k| 5.0 * k as f64 / nz as f64).collect();
    // Wing: chordwise x in [2.5, 3.75], thickness y in [1.25, 3.75],
    // span z in [1.25, 3.75] — bands chosen so cell centres fall inside
    // the plate for every refine level (refine = 1 grid has 1.25-wide
    // cells).
    let hole = |c: [f64; 3]| {
        c[0] > 2.5 && c[0] < 3.75 && c[1] > 1.3 && c[1] < 3.7 && c[2] > 1.25 && c[2] < 3.75
    };
    structured_hexes(&xs, &ys, &zs, &[&hole], |c| {
        if c[0].abs() < 1e-9 {
            BoundaryTag::Inflow
        } else if (c[0] - 10.0).abs() < 1e-9 {
            BoundaryTag::Outflow
        } else if c[1].abs() < 1e-9
            || (c[1] - 5.0).abs() < 1e-9
            || c[2].abs() < 1e-9
            || (c[2] - 5.0).abs() < 1e-9
        {
            BoundaryTag::Side
        } else {
            BoundaryTag::Wall // wing surface
        }
    })
}

type HolePredicate3<'a> = &'a dyn Fn([f64; 3]) -> bool;

fn structured_hexes(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    holes: &[HolePredicate3<'_>],
    tagger: impl Fn([f64; 3]) -> BoundaryTag,
) -> Mesh3d {
    let (nx, ny, nz) = (xs.len() - 1, ys.len() - 1, zs.len() - 1);
    let vid = |i: usize, j: usize, k: usize| i + (nx + 1) * (j + (ny + 1) * k);
    let mut verts = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1));
    for &z in zs {
        for &y in ys {
            for &x in xs {
                verts.push([x, y, z]);
            }
        }
    }
    let mut elems = Vec::with_capacity(nx * ny * nz);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let c = [
                    0.5 * (xs[i] + xs[i + 1]),
                    0.5 * (ys[j] + ys[j + 1]),
                    0.5 * (zs[k] + zs[k + 1]),
                ];
                if holes.iter().any(|h| h(c)) {
                    continue;
                }
                elems.push(Elem3d {
                    kind: ElemKind::Hex,
                    verts: vec![
                        vid(i, j, k),
                        vid(i + 1, j, k),
                        vid(i + 1, j + 1, k),
                        vid(i, j + 1, k),
                        vid(i, j, k + 1),
                        vid(i + 1, j, k + 1),
                        vid(i + 1, j + 1, k + 1),
                        vid(i, j + 1, k + 1),
                    ],
                });
            }
        }
    }
    // Pack out unused vertices.
    let mut used = vec![false; verts.len()];
    for el in &elems {
        for &v in &el.verts {
            used[v] = true;
        }
    }
    let mut remap = vec![usize::MAX; verts.len()];
    let mut packed = Vec::new();
    for (v, &u) in used.iter().enumerate() {
        if u {
            remap[v] = packed.len();
            packed.push(verts[v]);
        }
    }
    let elems: Vec<Elem3d> = elems
        .into_iter()
        .map(|mut e| {
            for v in &mut e.verts {
                *v = remap[*v];
            }
            e
        })
        .collect();
    Mesh3d::new(packed, elems, tagger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn box_counts() {
        let m = box_hexes(0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 2, 3, 4);
        assert_eq!(m.nelems(), 24);
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
        m.validate().unwrap();
    }

    #[test]
    fn wing_mesh_has_hole_and_all_tags() {
        let m = wing_box_mesh(2);
        m.validate().unwrap();
        assert!(m.total_volume() < 250.0 - 0.1, "hole missing: {}", m.total_volume());
        let tags: HashSet<_> = m.faces.iter().filter_map(|f| f.tag).collect();
        assert!(tags.contains(&BoundaryTag::Inflow));
        assert!(tags.contains(&BoundaryTag::Outflow));
        assert!(tags.contains(&BoundaryTag::Side));
        assert!(tags.contains(&BoundaryTag::Wall), "wing surface untagged");
    }

    #[test]
    fn wing_mesh_scales_with_refine() {
        let c = wing_box_mesh(1).nelems();
        let f = wing_box_mesh(2).nelems();
        assert!(f > 6 * c, "{c} -> {f}");
    }

    #[test]
    fn wing_dual_graph_connected() {
        let m = wing_box_mesh(1);
        let mut parent: Vec<usize> = (0..m.nelems()).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (a, b) in m.dual_edges() {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for e in 0..m.nelems() {
            assert_eq!(find(&mut parent, e), root);
        }
    }
}
