//! Property-based tests for nkt-mesh: generator invariants over random
//! resolutions.

use nkt_mesh::{bluff_body_mesh, box_hexes, rect_quads, rect_tris, wing_box_mesh};
use nkt_testkit::{prop_assert, prop_assert_eq, prop_check};

prop_check! {
    #![cases(16)]

    fn rect_quads_invariants(nx in 1usize..12, ny in 1usize..12,
                             w in 0.5f64..10.0, h in 0.5f64..10.0) {
        let m = rect_quads(0.0, w, 0.0, h, nx, ny);
        m.validate().unwrap();
        prop_assert_eq!(m.nelems(), nx * ny);
        prop_assert!((m.total_area() - w * h).abs() < 1e-9 * w * h);
        // Euler characteristic of a disk: V - E + F = 1.
        let v = m.nverts() as i64;
        let e = m.edges.len() as i64;
        let f = m.nelems() as i64;
        prop_assert_eq!(v - e + f, 1);
    }

    fn rect_tris_invariants(nx in 1usize..10, ny in 1usize..10) {
        let m = rect_tris(0.0, 1.0, 0.0, 1.0, nx, ny);
        m.validate().unwrap();
        prop_assert_eq!(m.nelems(), 2 * nx * ny);
        prop_assert!((m.total_area() - 1.0).abs() < 1e-10);
        let v = m.nverts() as i64;
        let e = m.edges.len() as i64;
        let f = m.nelems() as i64;
        prop_assert_eq!(v - e + f, 1);
    }

    fn box_hexes_invariants(nx in 1usize..6, ny in 1usize..6, nz in 1usize..6) {
        let m = box_hexes(0.0, 2.0, 0.0, 1.0, 0.0, 3.0, nx, ny, nz);
        m.validate().unwrap();
        prop_assert_eq!(m.nelems(), nx * ny * nz);
        prop_assert!((m.total_volume() - 6.0).abs() < 1e-9);
        // Face count: interior shared once + boundary.
        let boundary = m.faces.iter().filter(|f| f.elems.len() == 1).count();
        prop_assert_eq!(boundary, 2 * (nx * ny + ny * nz + nx * nz));
    }

    fn bluff_body_scales(refine in 1usize..4) {
        let m = bluff_body_mesh(refine);
        m.validate().unwrap();
        // Area: 40x10 rectangle minus the unit body.
        prop_assert!((m.total_area() - 399.0).abs() < 1e-6);
    }

    fn wing_mesh_scales(refine in 1usize..3) {
        let m = wing_box_mesh(refine);
        m.validate().unwrap();
        // The wing hole removes volume from the 250-unit box.
        prop_assert!(m.total_volume() < 250.0);
        prop_assert!(m.total_volume() > 200.0);
    }
}
