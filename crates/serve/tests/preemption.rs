//! The preemption contract, as properties: a job evicted at a
//! checkpoint epoch cut and later resumed by the scheduler finishes
//! **bitwise identical** to the same job served uninterrupted — same
//! FNV state hash, same `STATS_` bytes. The checkpoint cadence and the
//! intruder's arrival tick are drawn by `prop_check!`, so the property
//! covers evictions at the first cut, at late cuts, and the no-eviction
//! edge where the intruder arrives after the victim's last cut. A
//! second, fixed-batch test reruns one mixed schedule twice and asserts
//! every `MANIFEST_` is byte-identical across scheduler reruns.

use nkt_net::NetId;
use nkt_serve::{serve, JobSpec, ServeConfig, SolverKind};
use nkt_testkit::{prop_assert, prop_assert_eq, prop_check};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("nkt_serve_{label}_{}_{n}", std::process::id()))
}

const VICTIM_STEPS: u64 = 8;

/// The job that gets evicted: Fourier DNS, sampling every step so the
/// STATS artifact probes every step of the resumed trajectory.
fn victim(ckpt_every: usize) -> JobSpec {
    JobSpec {
        name: "victim".into(),
        tenant: "cfd".into(),
        solver: SolverKind::Fourier { nz: 4, pr: 2, pc: 1 },
        ranks: 2,
        net: NetId::RoadRunnerMyr,
        steps: VICTIM_STEPS,
        priority: 0,
        ckpt_every,
        stats_every: 1,
        submit_tick: 0,
    }
}

/// The high-priority latecomer that forces the eviction.
fn intruder(submit_tick: u64) -> JobSpec {
    JobSpec {
        name: "intruder".into(),
        tenant: "viz".into(),
        solver: SolverKind::Serial2d,
        ranks: 1,
        net: NetId::MusesLam,
        steps: 2,
        priority: 10,
        ckpt_every: 0,
        stats_every: 0,
        submit_tick,
    }
}

fn read_stats(dir: &std::path::Path, job: &str) -> String {
    let path = dir.join(format!("STATS_{job}.json"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

prop_check! {
    #![cases(6)]
    fn preempted_resume_is_bitwise_solo(every in 1usize..4, arrive in 1u64..4) {
        let root = fresh_dir("prop");
        let solo = serve(
            vec![victim(every)],
            &ServeConfig { root: root.join("solo"), max_worlds: 1, events: None },
        )
        .expect("solo serve");
        let mix = serve(
            vec![victim(every), intruder(arrive)],
            &ServeConfig { root: root.join("mix"), max_worlds: 1, events: None },
        )
        .expect("contended serve");

        // The victim parks at interior cuts every `every` steps — one
        // scheduler tick each. The intruder evicts it iff it arrives
        // while the victim is still parked at one of them.
        let interior_cuts = (VICTIM_STEPS - 1) / every as u64;
        if arrive < interior_cuts {
            prop_assert!(
                mix.preemptions >= 1,
                "intruder at tick {} should evict a victim with {} cuts",
                arrive,
                interior_cuts
            );
            prop_assert_eq!(mix.jobs[0].preemptions, mix.preemptions);
        }

        for report in solo.jobs.iter().chain(mix.jobs.iter()) {
            prop_assert!(
                report.finished(),
                "job {} failed: {:?}",
                report.name,
                report.error
            );
        }
        let (vs, vm) = (&solo.jobs[0], &mix.jobs[0]);
        let (rs, rm) = (vs.result.as_ref().unwrap(), vm.result.as_ref().unwrap());
        // Bitwise restart-equivalence end-to-end through the scheduler.
        prop_assert_eq!(rs.state_hash, rm.state_hash, "state hash drifted across preemption");
        prop_assert_eq!(rs.steps, rm.steps);
        prop_assert_eq!(rs.energy.to_bits(), rm.energy.to_bits());
        prop_assert_eq!(
            read_stats(&vs.dir, "victim"),
            read_stats(&vm.dir, "victim"),
            "STATS bytes drifted across preemption"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

fn mixed_batch() -> Vec<JobSpec> {
    vec![
        JobSpec {
            name: "dns_slab".into(),
            tenant: "cfd".into(),
            solver: SolverKind::Fourier { nz: 4, pr: 2, pc: 1 },
            ranks: 2,
            net: NetId::RoadRunnerMyr,
            steps: 8,
            priority: 0,
            ckpt_every: 2,
            stats_every: 2,
            submit_tick: 0,
        },
        JobSpec {
            name: "wake".into(),
            tenant: "lab".into(),
            solver: SolverKind::Serial2d,
            ranks: 1,
            net: NetId::MusesMpich,
            steps: 10,
            priority: 0,
            ckpt_every: 2,
            stats_every: 5,
            submit_tick: 0,
        },
        JobSpec {
            name: "wing".into(),
            tenant: "cfd".into(),
            solver: SolverKind::Ale,
            ranks: 2,
            net: NetId::T3e,
            steps: 3,
            priority: 3,
            ckpt_every: 0,
            stats_every: 0,
            submit_tick: 1,
        },
    ]
}

/// Rerunning the same batch must reproduce every manifest bytewise: the
/// schedule (admissions, evictions, wait ticks) and every hashed
/// artifact are deterministic functions of the batch, not of host
/// thread timing. The batch is arranged so the high-priority ALE job
/// arrives with both slots full and genuinely evicts someone.
#[test]
fn rerun_manifests_are_byte_identical() {
    let root = fresh_dir("rerun");
    let cfg = |sub: &str| ServeConfig {
        root: root.join(sub),
        max_worlds: 2,
        events: Some("mixed".into()),
    };
    let first = serve(mixed_batch(), &cfg("one")).expect("first serve");
    let second = serve(mixed_batch(), &cfg("two")).expect("second serve");

    // The scheduler's decision timeline is itself a deterministic
    // artifact: byte-identical across reruns, renderable, and it
    // records the eviction (preempt then resume) the batch forces.
    let ea = std::fs::read_to_string(root.join("one").join("EVENTS_mixed.jsonl"))
        .expect("first events file");
    let eb = std::fs::read_to_string(root.join("two").join("EVENTS_mixed.jsonl"))
        .expect("second events file");
    assert_eq!(ea, eb, "EVENTS bytes differ across scheduler reruns");
    for tag in ["\"admit\"", "\"cut\"", "\"preempt\"", "\"resume\"", "\"complete\""] {
        assert!(ea.contains(tag), "timeline is missing a {tag} event:\n{ea}");
    }
    let rendered = nkt_serve::render_events(&ea).expect("timeline renders");
    assert!(rendered.contains("preempt"), "{rendered}");

    assert!(first.preemptions >= 1, "the ALE latecomer should evict a slot holder");
    assert_eq!(first.preemptions, second.preemptions);
    assert_eq!(first.ticks, second.ticks);
    for (a, b) in first.jobs.iter().zip(second.jobs.iter()) {
        assert!(a.finished(), "job {} failed: {:?}", a.name, a.error);
        let ma = std::fs::read(&a.manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", a.manifest.display()));
        let mb = std::fs::read(&b.manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", b.manifest.display()));
        assert_eq!(
            ma, mb,
            "manifest bytes for {} differ across scheduler reruns",
            a.name
        );
        // The manifest parses and reports what the scheduler reports.
        let doc = nkt_trace::json::parse(&String::from_utf8(ma).unwrap()).expect("manifest JSON");
        assert_eq!(doc.get("job").and_then(|v| v.as_str()), Some(a.name.as_str()));
        assert_eq!(
            doc.get("preemptions").and_then(|v| v.as_f64()),
            Some(a.preemptions as f64)
        );
        let hash = format!("{:016x}", a.result.as_ref().unwrap().state_hash);
        assert_eq!(doc.get("state_hash").and_then(|v| v.as_str()), Some(hash.as_str()));
    }
    let _ = std::fs::remove_dir_all(&root);
}
