//! World-isolation contract: two `World`s running **concurrently in one
//! process** must not share trace thread-state or tag space. Each world
//! tags its rank threads with a distinct scope (`WorldBuilder::
//! trace_scope`), runs a different DNS on a different net model with
//! interleaved steps, and the test asserts that everything observable —
//! per-rank state hashes, `STATS_` bytes, span inventories, counter
//! totals, and bitwise virtual-time sums — is identical to the same
//! world run solo. Any cross-world bleed (a span drained into the wrong
//! scope, a counter double-counted, a message routed across worlds)
//! breaks one of the equalities.

use nektar::fourier::{FourierConfig, NektarF};
use nektar::stats::{sample_fourier, FOURIER_CHANNELS};
use nkt_ckpt::Checkpointable;
use nkt_mesh::rect_quads;
use nkt_mpi::World;
use nkt_net::{cluster, NetId};
use nkt_stats::{RuleLimits, StatsRecorder};
use nkt_trace::{ThreadData, TraceMode};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Scopes well clear of anything the serve scheduler might allocate.
fn scope() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1 << 40);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn init(x: [f64; 3]) -> [f64; 3] {
    let pi = std::f64::consts::PI;
    let (sx, cx) = (pi * x[0]).sin_cos();
    let (sy, cy) = (pi * x[1]).sin_cos();
    [
        2.0 * pi * sx * sx * sy * cy * (1.0 + 0.3 * x[2].cos()),
        -2.0 * pi * sx * cx * sy * sy * (1.0 + 0.3 * x[2].cos()),
        0.0,
    ]
}

/// One 2-rank Fourier DNS under `scope`: returns per-rank state hashes
/// and rank 0's in-memory `STATS_` bytes.
fn dns(scope: u64, net: NetId, nz: usize, steps: u64, run: &str) -> (Vec<u64>, String) {
    let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
    let cfg = FourierConfig {
        order: 4,
        dt: 1e-3,
        nu: 0.02,
        nz,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    };
    let outs = World::from_env()
        .ranks(2)
        .net(cluster(net))
        .trace_scope(scope)
        .run(|c| {
            let mut s = NektarF::new(c, &mesh, cfg.clone());
            s.set_initial(init);
            let mut rec = StatsRecorder::new(FOURIER_CHANNELS.to_vec(), 1, c.size());
            let limits = RuleLimits::default();
            rec.rebaseline(c);
            for step in 1..=steps {
                s.step(c);
                sample_fourier(&mut s, c, &mut rec, step, &limits, false).expect("sample");
            }
            (s.state_hash(), (c.rank() == 0).then(|| rec.to_json(run)))
        });
    let hashes = outs.iter().map(|(h, _)| *h).collect();
    let stats = outs.into_iter().find_map(|(_, s)| s).expect("rank 0 stats");
    (hashes, stats)
}

/// Timing-free digest of one scope's trace data: per thread (sorted by
/// rank label), the span inventory with exact virtual-time sums, the
/// counter totals, and the histogram totals. Host timestamps are the
/// only thing excluded — everything else must reproduce bitwise.
type ThreadDigest = (String, Vec<(String, usize, u64)>, Vec<(String, u64)>);

fn digest(threads: &[ThreadData]) -> Vec<ThreadDigest> {
    let mut out: Vec<ThreadDigest> = threads
        .iter()
        .map(|t| {
            let mut spans: BTreeMap<String, (usize, f64)> = BTreeMap::new();
            for e in &t.events {
                let entry = spans.entry(format!("{}/{}", e.cat, e.name)).or_insert((0, 0.0));
                entry.0 += 1;
                if e.vt0.is_finite() && e.vt1.is_finite() {
                    entry.1 += e.vt1 - e.vt0;
                }
            }
            let mut counters: BTreeMap<String, u64> = BTreeMap::new();
            for (n, v) in &t.counters {
                *counters.entry(n.to_string()).or_insert(0) += v;
            }
            (
                t.name.clone().unwrap_or_default(),
                spans
                    .into_iter()
                    .map(|(k, (n, vt))| (k, n, vt.to_bits()))
                    .collect(),
                counters.into_iter().collect(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn concurrent_worlds_are_bitwise_equal_to_solo() {
    nkt_trace::set_mode(TraceMode::Spans);

    // Solo baselines, one world at a time.
    let (sa, sb) = (scope(), scope());
    let solo_a = dns(sa, NetId::RoadRunnerMyr, 4, 4, "wa");
    let dig_a_solo = digest(&nkt_trace::take_collected_for(sa));
    let solo_b = dns(sb, NetId::T3e, 8, 5, "wb");
    let dig_b_solo = digest(&nkt_trace::take_collected_for(sb));
    assert!(!dig_a_solo.is_empty(), "tracing must have recorded rank threads");

    // Same two worlds, concurrently: a barrier lines up their starts so
    // their rank threads genuinely interleave on the host cores.
    let (ca, cb) = (scope(), scope());
    let gate = Barrier::new(2);
    let (conc_a, conc_b) = std::thread::scope(|s| {
        let ga = &gate;
        let ha = s.spawn(move || {
            ga.wait();
            dns(ca, NetId::RoadRunnerMyr, 4, 4, "wa")
        });
        let hb = s.spawn(move || {
            ga.wait();
            dns(cb, NetId::T3e, 8, 5, "wb")
        });
        (ha.join().unwrap(), hb.join().unwrap())
    });
    let dig_a = digest(&nkt_trace::take_collected_for(ca));
    let dig_b = digest(&nkt_trace::take_collected_for(cb));

    // Physics: per-rank final state is bitwise the solo state.
    assert_eq!(conc_a.0, solo_a.0, "world A state hashes drifted under concurrency");
    assert_eq!(conc_b.0, solo_b.0, "world B state hashes drifted under concurrency");
    // Artifacts: STATS bytes identical to solo.
    assert_eq!(conc_a.1, solo_a.1, "world A STATS bytes drifted under concurrency");
    assert_eq!(conc_b.1, solo_b.1, "world B STATS bytes drifted under concurrency");
    // Observability: each scope drained exactly its own world's data.
    assert_eq!(dig_a, dig_a_solo, "world A trace digest drifted under concurrency");
    assert_eq!(dig_b, dig_b_solo, "world B trace digest drifted under concurrency");
    // The two worlds are genuinely different workloads — if scopes were
    // crossed, the digests could not both match their baselines.
    assert_ne!(dig_a, dig_b);
    // A scope, once drained, is empty: nothing leaked into it.
    assert!(nkt_trace::take_collected_for(ca).is_empty());
    assert!(nkt_trace::take_collected_for(cb).is_empty());
}
