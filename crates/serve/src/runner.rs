//! Executes one scheduling *slice* of a job: spin up the job's virtual
//! cluster, restore from the newest checkpoint epoch if one exists, step
//! until the budget is spent or the scheduler preempts at an epoch cut,
//! and (on finish) write the job's `STATS_` artifact and manifest.
//!
//! ## Preemption protocol (worker side)
//!
//! At every interior checkpoint cut the solver folds its stats, writes
//! the epoch, and then rank 0 exchanges with the scheduler:
//! `Event::AtCut` out, one [`Directive`] back, broadcast to the peer
//! ranks as a single f64 over the job's own net model. The exchange sits
//! *inside* the fold/rebaseline bracket, so the engine round-trip is
//! excluded from the stats MPI ledger — a preempted-and-resumed run and
//! an uninterrupted run perform byte-identical sampling. `Preempt`
//! breaks the step loop right after the epoch landed: the on-disk state
//! is exactly the state the next slice restores, which is what makes
//! eviction bitwise invisible.
//!
//! Final-step cuts skip the exchange — the job is about to exit anyway,
//! and the scheduler expects exactly one event per running job per tick.

use crate::sched::{Directive, Event};
use crate::spec::{host_machine, JobSpec, SolverKind};
use crate::store::{write_manifest, ArtifactEntry, ManifestData};
use nektar::ale::{AleConfig, NektarAle};
use nektar::fourier::{FourierConfig, NektarF};
use nektar::serial2d::{Serial2dSolver, SolverConfig};
use nektar::stats::{sample_ale, sample_fourier, sample_serial2d};
use nektar::stats::{ALE_CHANNELS, FOURIER_CHANNELS, SERIAL2D_CHANNELS};
use nkt_ckpt::{
    restore_latest, restore_latest_serial, write_epoch, write_epoch_serial, Checkpointable,
    CkptConfig, Tandem, TandemMut,
};
use nkt_mesh::{bluff_body_mesh, rect_quads, wing_box_mesh};
use nkt_mpi::{Comm, World};
use nkt_net::cluster;
use nkt_partition::{partition_kway, Graph, PartitionOptions};
use nkt_stats::{RuleLimits, StatsRecorder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

/// Final numbers a finished job reports back through the scheduler.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// FNV hash of the full solver state at the final step.
    pub state_hash: u64,
    /// Steps executed (== the spec's budget).
    pub steps: u64,
    /// Final kinetic energy — a physical smoke value for callers.
    pub energy: f64,
}

/// How a slice ended.
#[derive(Debug)]
pub(crate) enum SliceExit {
    Finished(JobResult),
    /// Evicted at the epoch cut after `step`; state is on disk.
    Preempted { step: u64 },
    Failed(String),
}

/// Everything a slice needs besides its channel endpoints.
pub(crate) struct SliceCtx {
    pub job_id: usize,
    pub spec: JobSpec,
    /// Per-job artifact directory.
    pub dir: PathBuf,
    /// Trace scope tagging this job's rank threads; constant across
    /// slices so preempted spans and the finishing slice drain together.
    pub scope: u64,
    /// Preemptions suffered so far (manifest bookkeeping).
    pub preemptions: u64,
    /// Eligible-but-queued ticks so far (manifest bookkeeping).
    pub wait_ticks: u64,
    pub event_tx: Sender<Event>,
    pub directive_rx: Receiver<Directive>,
}

/// Worker-thread entry point: runs the slice, exports per-job
/// trace/profile artifacts on finish, and always sends exactly one
/// `Event::Exited` — even if the world panicked.
pub(crate) fn run_slice(ctx: SliceCtx) {
    let SliceCtx { job_id, spec, dir, scope, preemptions, wait_ticks, event_tx, directive_rx } =
        ctx;
    let jc = JobCtx { job_id, spec, dir, scope, preemptions, wait_ticks };
    // The worker thread itself records under the job's identity too:
    // spans emitted here (artifact export) belong to the job, and any
    // flight dump from a failure lands in the job's directory.
    nkt_trace::set_thread_scope(jc.scope);
    nkt_trace::set_thread_dir(Some(jc.dir.clone()));
    nkt_trace::flight::set_thread_run(Some(&jc.spec.name));
    let exit = catch_unwind(AssertUnwindSafe(|| match jc.spec.solver {
        SolverKind::Fourier { .. } => run_fourier(&jc, &event_tx, directive_rx),
        SolverKind::Serial2d => run_serial2d(&jc, &event_tx, directive_rx),
        SolverKind::Ale => run_ale(&jc, &event_tx, directive_rx),
    }))
    .unwrap_or_else(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic>".to_string());
        SliceExit::Failed(format!("world panicked: {msg}"))
    });
    if !matches!(exit, SliceExit::Preempted { .. }) {
        export_job_observability(&jc);
    }
    // The scheduler owns the receiver for the whole batch; a send can
    // only fail if serve() itself already bailed out.
    let _ = event_tx.send(Event::Exited { job: job_id, exit });
}

struct JobCtx {
    job_id: usize,
    spec: JobSpec,
    dir: PathBuf,
    scope: u64,
    preemptions: u64,
    wait_ticks: u64,
}

impl JobCtx {
    fn ckpt(&self) -> CkptConfig {
        let every = (self.spec.ckpt_every > 0).then_some(self.spec.ckpt_every);
        CkptConfig::new(self.dir.clone(), &self.spec.name, every)
    }
}

/// Per-rank end state of a slice; only rank 0's copy is consulted.
struct RankEnd {
    preempted_at: Option<u64>,
    hash: u64,
    steps: u64,
    energy: f64,
}

/// Rank 0 asks the scheduler whether to continue past this epoch cut;
/// the verdict rides to the peers as one f64 over the job's own net.
/// Returns false to preempt. A vanished scheduler reads as `Preempt`:
/// the epoch just landed, so stopping here is always safe.
fn exchange(
    c: &mut Comm,
    link: &Mutex<(Sender<Event>, Receiver<Directive>)>,
    job: usize,
    step: u64,
) -> bool {
    let mut cont = [1.0f64];
    if c.rank() == 0 {
        let sp = nkt_trace::span("serve.cut", "serve");
        let l = link.lock().unwrap();
        cont[0] = if l.0.send(Event::AtCut { job, step }).is_ok() {
            match l.1.recv() {
                Ok(Directive::Continue) => 1.0,
                Ok(Directive::Preempt) | Err(_) => 0.0,
            }
        } else {
            0.0
        };
        drop(l);
        drop(sp);
    }
    c.bcast(0, &mut cont);
    cont[0] >= 1.0
}

/// Serial twin of [`exchange`] — no broadcast, no lock.
fn exchange_serial(
    tx: &Sender<Event>,
    rx: &Receiver<Directive>,
    job: usize,
    step: u64,
) -> bool {
    let sp = nkt_trace::span("serve.cut", "serve");
    let cont = if tx.send(Event::AtCut { job, step }).is_ok() {
        matches!(rx.recv(), Ok(Directive::Continue))
    } else {
        false
    };
    drop(sp);
    cont
}

/// Rank 0's finishing duties: STATS artifact (when sampling), then the
/// deterministic manifest inventorying everything in the job directory.
fn finish_rank0(
    jc: &JobCtx,
    rec: &StatsRecorder,
    hash: u64,
    steps: u64,
    ckpt: &CkptConfig,
) -> Result<(), String> {
    let spec = &jc.spec;
    std::fs::create_dir_all(&jc.dir).map_err(|e| format!("create {}: {e}", jc.dir.display()))?;
    let mut artifacts = Vec::new();
    if spec.stats_every > 0 {
        let body = rec.to_json(&spec.name);
        let name = format!("STATS_{}.json", spec.name);
        std::fs::write(jc.dir.join(&name), &body).map_err(|e| format!("write {name}: {e}"))?;
        artifacts.push(ArtifactEntry::hashed(name, body.as_bytes()));
    }
    if ckpt.enabled() {
        let mut epochs = ckpt.list_epochs();
        epochs.sort_unstable();
        for e in epochs {
            for r in 0..spec.ranks {
                let shard = ckpt
                    .shard_path(e, r)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                artifacts.push(
                    ArtifactEntry::hashed_shard(&jc.dir, shard)
                        .map_err(|err| format!("hash shard e{e} r{r}: {err}"))?,
                );
            }
            let man = ckpt
                .manifest_path(e)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            artifacts.push(
                ArtifactEntry::hashed_file(&jc.dir, man)
                    .map_err(|err| format!("hash ckpt manifest e{e}: {err}"))?,
            );
        }
    }
    if nkt_trace::mode() == nkt_trace::TraceMode::Spans {
        artifacts.push(ArtifactEntry::named(format!("TRACE_{}.json", spec.name)));
    }
    if nkt_prof::enabled() {
        artifacts.push(ArtifactEntry::named(format!(
            "PROF_{}.json",
            nkt_prof::slug(&spec.name)
        )));
    }
    let m = ManifestData {
        spec,
        machine: nkt_machine::machine(host_machine(spec.net)).name,
        state_hash: hash,
        steps_done: steps,
        preemptions: jc.preemptions,
        queue_wait_ticks: jc.wait_ticks,
        artifacts,
    };
    write_manifest(&jc.dir, &m).map_err(|e| format!("write manifest: {e}"))?;
    Ok(())
}

/// Drains the job's scope from the trace collector and writes the
/// per-job `TRACE_`/`PROF_` artifacts (when tracing/profiling is on).
/// Runs on the worker thread after the world joined, so every rank's
/// buffer — including ones parked there by preempted slices — is in.
fn export_job_observability(jc: &JobCtx) {
    let tracing = nkt_trace::mode() == nkt_trace::TraceMode::Spans;
    let profiling = nkt_prof::enabled();
    if !tracing && !profiling {
        return;
    }
    let threads = nkt_trace::take_collected_for(jc.scope);
    if threads.is_empty() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(&jc.dir) {
        eprintln!("serve: cannot create {}: {e}", jc.dir.display());
        return;
    }
    if tracing {
        let path = jc.dir.join(format!("TRACE_{}.json", jc.spec.name));
        if let Err(e) = std::fs::write(&path, nkt_trace::export::chrome_json(&threads)) {
            eprintln!("serve: cannot write {}: {e}", path.display());
        }
    }
    if profiling {
        let profile = nkt_prof::Profile::build(&jc.spec.name, &threads);
        if let Err(e) = profile.write_to(&jc.dir) {
            eprintln!("serve: cannot write profile for {}: {e}", jc.spec.name);
        }
    }
}

/// Folds per-rank outcomes into the slice verdict. Errors are collective
/// in this codebase (samplers and checkpoint writes return the same
/// typed error on every rank), so rank 0 speaks for the world.
fn slice_exit(outs: Vec<Result<RankEnd, String>>) -> SliceExit {
    match outs.into_iter().next().expect("world returned no ranks") {
        Err(e) => SliceExit::Failed(e),
        Ok(end) => match end.preempted_at {
            Some(step) => SliceExit::Preempted { step },
            None => SliceExit::Finished(JobResult {
                state_hash: end.hash,
                steps: end.steps,
                energy: end.energy,
            }),
        },
    }
}

fn fourier_init(x: [f64; 3]) -> [f64; 3] {
    let pi = std::f64::consts::PI;
    let (sx, cx) = (pi * x[0]).sin_cos();
    let (sy, cy) = (pi * x[1]).sin_cos();
    [
        2.0 * pi * sx * sx * sy * cy * (1.0 + 0.3 * x[2].cos()),
        -2.0 * pi * sx * cx * sy * sy * (1.0 + 0.3 * x[2].cos()),
        0.0,
    ]
}

fn run_fourier(jc: &JobCtx, tx: &Sender<Event>, rx: Receiver<Directive>) -> SliceExit {
    let SolverKind::Fourier { nz, pr, pc } = jc.spec.solver else {
        unreachable!("run_fourier dispatched for {:?}", jc.spec.solver)
    };
    let spec = &jc.spec;
    let link = Mutex::new((tx.clone(), rx));
    let mesh = rect_quads(0.0, 1.0, 0.0, 1.0, 3, 3);
    let cfg = FourierConfig {
        order: 4,
        dt: 1e-3,
        nu: 0.02,
        nz,
        lz: 2.0 * std::f64::consts::PI,
        scheme_order: 2,
    };
    let health = nkt_stats::health_enabled();
    let outs = World::from_env()
        .ranks(spec.ranks)
        .net(cluster(spec.net))
        .trace_scope(jc.scope)
        .trace_dir(jc.dir.clone())
        .flight_run(spec.name.clone())
        .run(|c| {
            let mut solver = NektarF::try_new_with_grid(c, &mesh, cfg.clone(), pr, pc)
                .map_err(|e| e.to_string())?;
            solver.set_initial(fourier_init);
            let mut rec =
                StatsRecorder::new(FOURIER_CHANNELS.to_vec(), spec.stats_every, c.size());
            let limits = RuleLimits::default();
            let ckpt = jc.ckpt();
            if ckpt.enabled() {
                let mut tandem = TandemMut { main: &mut solver, rider: &mut rec };
                let _ = restore_latest(c, &ckpt, &mut tandem);
            }
            rec.rebaseline(c);
            let mut preempted_at = None;
            for step in (solver.steps() as u64 + 1)..=spec.steps {
                solver.step(c);
                if rec.due(step) {
                    sample_fourier(&mut solver, c, &mut rec, step, &limits, health)
                        .map_err(|e| e.to_string())?;
                }
                if step < spec.steps && ckpt.should(step as usize) {
                    rec.fold(c);
                    let tandem = Tandem { main: &solver, rider: &rec };
                    write_epoch(c, &ckpt, step as usize, &tandem).map_err(|e| e.to_string())?;
                    let cont = exchange(c, &link, jc.spec_job_id(), step);
                    rec.rebaseline(c);
                    if !cont {
                        preempted_at = Some(step);
                        break;
                    }
                }
            }
            let hash = solver.state_hash();
            let steps = solver.steps() as u64;
            let energy = solver.kinetic_energy(c);
            if preempted_at.is_none() && c.rank() == 0 {
                finish_rank0(jc, &rec, hash, steps, &ckpt)?;
            }
            Ok(RankEnd { preempted_at, hash, steps, energy })
        });
    slice_exit(outs)
}

fn run_serial2d(jc: &JobCtx, tx: &Sender<Event>, rx: Receiver<Directive>) -> SliceExit {
    let spec = &jc.spec;
    // The serial solver runs on the worker thread itself; name it so its
    // spans read like a one-rank world in the per-job timeline.
    nkt_trace::set_thread_meta(format!("{} rank 0", spec.name), Some(0));
    let mesh = bluff_body_mesh(1);
    let cfg = SolverConfig { order: 4, dt: 2e-3, nu: 0.01, scheme_order: 2, advect: true };
    let health = nkt_stats::health_enabled();
    let run = || -> Result<RankEnd, String> {
        let mut solver = Serial2dSolver::new(
            mesh,
            cfg,
            |x| if x[0] < -14.0 { 1.0 } else { 0.0 },
            |_| 0.0,
        );
        solver.set_initial(|_| 1.0, |_| 0.0);
        let mut rec = StatsRecorder::new(SERIAL2D_CHANNELS.to_vec(), spec.stats_every, 1);
        let limits = RuleLimits::default();
        let ckpt = jc.ckpt();
        if ckpt.enabled() {
            let mut tandem = TandemMut { main: &mut solver, rider: &mut rec };
            let _ = restore_latest_serial(&ckpt, &mut tandem);
        }
        let mut preempted_at = None;
        for step in (solver.steps() as u64 + 1)..=spec.steps {
            solver.step();
            if rec.due(step) {
                sample_serial2d(&mut solver, &mut rec, step, &limits, health)
                    .map_err(|e| e.to_string())?;
            }
            if step < spec.steps && ckpt.should(step as usize) {
                let tandem = Tandem { main: &solver, rider: &rec };
                write_epoch_serial(&ckpt, step as usize, &tandem).map_err(|e| e.to_string())?;
                if !exchange_serial(tx, &rx, jc.spec_job_id(), step) {
                    preempted_at = Some(step);
                    break;
                }
            }
        }
        let hash = solver.state_hash();
        let steps = solver.steps() as u64;
        let energy = solver.kinetic_energy();
        if preempted_at.is_none() {
            finish_rank0(jc, &rec, hash, steps, &ckpt)?;
        }
        Ok(RankEnd { preempted_at, hash, steps, energy })
    };
    slice_exit(vec![run()])
}

fn run_ale(jc: &JobCtx, tx: &Sender<Event>, rx: Receiver<Directive>) -> SliceExit {
    let spec = &jc.spec;
    let link = Mutex::new((tx.clone(), rx));
    let mesh = wing_box_mesh(1);
    let dual = Graph::from_edges(mesh.nelems(), &mesh.dual_edges());
    let part = partition_kway(&dual, spec.ranks, &PartitionOptions::default());
    let cfg = AleConfig {
        order: 2,
        dt: 2e-3,
        nu: 1e-3,
        scheme_order: 2,
        advect: true,
        motion_amp: 0.05,
        motion_omega: 2.0 * std::f64::consts::PI,
        pcg_tol: 1e-6,
        pcg_max_iter: 2000,
    };
    let health = nkt_stats::health_enabled();
    let outs = World::from_env()
        .ranks(spec.ranks)
        .net(cluster(spec.net))
        .trace_scope(jc.scope)
        .trace_dir(jc.dir.clone())
        .flight_run(spec.name.clone())
        .run(|c| {
            let mut solver = NektarAle::new(c, mesh.clone(), &part, cfg.clone());
            solver.set_initial(c, |_| [1.0, 0.0, 0.0]);
            let mut rec = StatsRecorder::new(ALE_CHANNELS.to_vec(), spec.stats_every, c.size());
            let limits = RuleLimits::default();
            let ckpt = jc.ckpt();
            if ckpt.enabled() {
                // ALE restore rebuilds the moved-mesh operators, so it
                // goes through the solver's own entry point.
                let _ = solver.restore_ckpt_with(c, &ckpt, &mut rec);
            }
            rec.rebaseline(c);
            let mut preempted_at = None;
            for step in (solver.steps() as u64 + 1)..=spec.steps {
                solver.step(c);
                if rec.due(step) {
                    sample_ale(&mut solver, c, &mut rec, step, &limits, health)
                        .map_err(|e| e.to_string())?;
                }
                if step < spec.steps && ckpt.should(step as usize) {
                    rec.fold(c);
                    let tandem = Tandem { main: &solver, rider: &rec };
                    write_epoch(c, &ckpt, step as usize, &tandem).map_err(|e| e.to_string())?;
                    let cont = exchange(c, &link, jc.spec_job_id(), step);
                    rec.rebaseline(c);
                    if !cont {
                        preempted_at = Some(step);
                        break;
                    }
                }
            }
            let hash = solver.state_hash();
            let steps = solver.steps() as u64;
            let energy = solver.kinetic_energy(c);
            if preempted_at.is_none() && c.rank() == 0 {
                finish_rank0(jc, &rec, hash, steps, &ckpt)?;
            }
            Ok(RankEnd { preempted_at, hash, steps, energy })
        });
    slice_exit(outs)
}

impl JobCtx {
    /// The scheduler-side job id that rides in every event.
    fn spec_job_id(&self) -> usize {
        self.job_id
    }
}
