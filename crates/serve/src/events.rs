//! Append-only scheduler event timeline: `EVENTS_<run>.jsonl`.
//!
//! One JSON object per line, written at the scheduler's deterministic
//! decision points only (admission order, the ascending-job-id barrier
//! pass, finalization), so two serves of the same batch produce
//! byte-identical files. Every field is a tick count, an exact counter,
//! or a spec string — never a host time.
//!
//! | event      | meaning                                              |
//! |------------|------------------------------------------------------|
//! | `admit`    | first admission of a job into a world slot           |
//! | `resume`   | re-admission after a preemption (restores from ckpt) |
//! | `cut`      | job parked at a checkpoint epoch cut this tick       |
//! | `preempt`  | job evicted at its cut; back to the queue            |
//! | `complete` | job finished; manifest written                       |
//! | `fail`     | job failed (admission IO or slice error)             |
//!
//! `step` is the job's completed step count at the event; `usage` is
//! the job's tenant ledger (rank-steps) *after* any charge the event
//! settled; `preemptions` is the job's lifetime eviction count.

use nkt_trace::json::{parse, Value};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// An open append-only event log for one serve run.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    file: std::fs::File,
}

impl EventLog {
    /// Creates (truncating) `<root>/EVENTS_<run>.jsonl`.
    pub fn create(root: &Path, run: &str) -> std::io::Result<EventLog> {
        std::fs::create_dir_all(root)?;
        let path = root.join(format!("EVENTS_{run}.jsonl"));
        let file = std::fs::File::create(&path)?;
        Ok(EventLog { path, file })
    }

    /// The log's path (for reports and manifests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line. Write failures are reported once on
    /// stderr and otherwise ignored — the schedule must not depend on
    /// the log's health.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        tick: u64,
        event: &str,
        job: &str,
        tenant: &str,
        step: u64,
        preemptions: u64,
        usage: u64,
    ) {
        let line = format!(
            "{{\"tick\": {tick}, \"event\": {}, \"job\": {}, \"tenant\": {}, \"step\": {step}, \"preemptions\": {preemptions}, \"usage\": {usage}}}\n",
            json_str(event),
            json_str(job),
            json_str(tenant),
        );
        if let Err(e) = self.file.write_all(line.as_bytes()) {
            eprintln!("serve: cannot append to {}: {e}", self.path.display());
        }
    }
}

/// Minimal JSON string escape (job/tenant names and event tags).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `EVENTS_*.jsonl` document as a human-readable timeline
/// with a per-event tally. Returns an error string for unparseable
/// lines (with the 1-based line number).
pub fn render_events(text: &str) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:<9} {:<20} {:<10} {:>8} {:>8} {:>10}",
        "tick", "event", "job", "tenant", "step", "preempt", "usage"
    );
    let mut tally: Vec<(String, u64)> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let s = |key: &str| doc.get(key).and_then(Value::as_str).unwrap_or("?").to_string();
        let n = |key: &str| doc.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let event = s("event");
        let _ = writeln!(
            out,
            "{:>6} {:<9} {:<20} {:<10} {:>8} {:>8} {:>10}",
            n("tick"),
            event,
            s("job"),
            s("tenant"),
            n("step"),
            n("preemptions"),
            n("usage"),
        );
        match tally.iter_mut().find(|(e, _)| *e == event) {
            Some((_, c)) => *c += 1,
            None => tally.push((event, 1)),
        }
    }
    out.push('\n');
    for (e, c) in &tally {
        let _ = writeln!(out, "{e:<9} x{c}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_appends_parseable_lines_and_render_tallies() {
        let dir = std::env::temp_dir().join("nkt_serve_events_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut log = EventLog::create(&dir, "sample").unwrap();
        log.record(0, "admit", "dns \"a\"", "cfd", 0, 0, 0);
        log.record(3, "preempt", "dns \"a\"", "cfd", 120, 1, 480);
        log.record(5, "resume", "dns \"a\"", "cfd", 120, 1, 480);
        log.record(9, "complete", "dns \"a\"", "cfd", 400, 1, 1600);
        let text = std::fs::read_to_string(log.path()).unwrap();
        assert_eq!(text.lines().count(), 4);
        // Every line round-trips through the JSON parser (including the
        // escaped quotes in the job name).
        for line in text.lines() {
            let doc = parse(line).unwrap();
            assert_eq!(doc.get("job").and_then(Value::as_str), Some("dns \"a\""));
        }
        let rendered = render_events(&text).unwrap();
        assert!(rendered.contains("complete"));
        assert!(rendered.contains("admit     x1"));
        assert!(rendered.contains("1600"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_rejects_garbage_with_line_number() {
        let err = render_events("{\"tick\": 0}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
