//! Typed job specifications and the JSON job-file parser.
//!
//! A job file is a single JSON document (schema `nkt-serve-jobs-1`)
//! parsed with the in-repo parser (`nkt_trace::json`) — no external
//! dependencies:
//!
//! ```json
//! {
//!   "schema": "nkt-serve-jobs-1",
//!   "jobs": [
//!     {"name": "dns_a", "tenant": "cfd", "solver": "fourier",
//!      "ranks": 4, "grid": "2x2", "nz": 8, "net": "roadrunner_myr",
//!      "steps": 12, "priority": 1, "ckpt_every": 3, "stats_every": 2,
//!      "submit_tick": 0}
//!   ]
//! }
//! ```
//!
//! Every field except `name`, `solver` and `steps` has a default; see
//! the README "Serving" section for the full table. Validation happens
//! here, at admission time nothing can fail on a malformed spec.

use nkt_net::NetId;
use nkt_trace::json::{parse, Value};
use std::fmt;
use std::path::Path;

/// Schema tag expected at the top of a job file.
pub const SPEC_SCHEMA: &str = "nkt-serve-jobs-1";

/// Which solver a job runs, plus the solver-specific shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Fourier-parallel DNS (`NektarF`): `nz` planes decomposed over a
    /// `pr x pc` process grid (`pc <= 1` = slab, `pc > 1` = pencil).
    Fourier { nz: usize, pr: usize, pc: usize },
    /// Serial 2-D cylinder-wake solver (always 1 rank).
    Serial2d,
    /// 3-D ALE solver on the partitioned wing-box mesh.
    Ale,
}

impl SolverKind {
    /// Stable lowercase name, as written in job files and manifests.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Fourier { .. } => "fourier",
            SolverKind::Serial2d => "serial2d",
            SolverKind::Ale => "ale",
        }
    }
}

/// One validated job: everything the scheduler and runner need.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique job name; becomes the per-job directory and artifact stem.
    pub name: String,
    /// Tenant for fair-share accounting.
    pub tenant: String,
    /// Solver and its shape.
    pub solver: SolverKind,
    /// Virtual-cluster size (threads while the job runs).
    pub ranks: usize,
    /// Net model from the catalog for this job's virtual cluster.
    pub net: NetId,
    /// Step budget: the job finishes after this many solver steps.
    pub steps: u64,
    /// Larger = more urgent; a queued job with strictly higher priority
    /// than a running one triggers preemption when no slot is free.
    pub priority: i64,
    /// Checkpoint cadence in steps; 0 disables epochs (and with them
    /// preemption — the job can only be evicted at an epoch cut).
    pub ckpt_every: usize,
    /// Stats sampling cadence in steps; 0 disables the STATS artifact.
    pub stats_every: u64,
    /// Scheduler tick at which the job becomes eligible to run.
    pub submit_tick: u64,
}

/// Typed parse/validation failure for a job file.
#[derive(Debug)]
pub enum SpecError {
    /// The JSON itself did not parse.
    Json(String),
    /// Top-level `schema` missing or not [`SPEC_SCHEMA`].
    Schema(String),
    /// Top level is not an object with a `jobs` array.
    Shape(&'static str),
    /// A job is missing a required field.
    Missing { job: String, field: &'static str },
    /// A job field is present but invalid.
    Bad { job: String, field: &'static str, why: String },
    /// Two jobs share a name.
    Duplicate(String),
    /// Reading the file failed.
    Io(std::io::Error),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "job file is not valid JSON: {e}"),
            SpecError::Schema(s) => {
                write!(f, "job file schema is {s:?}, expected {SPEC_SCHEMA:?}")
            }
            SpecError::Shape(what) => write!(f, "job file shape: {what}"),
            SpecError::Missing { job, field } => {
                write!(f, "job {job:?}: missing required field {field:?}")
            }
            SpecError::Bad { job, field, why } => {
                write!(f, "job {job:?}: bad field {field:?}: {why}")
            }
            SpecError::Duplicate(name) => write!(f, "duplicate job name {name:?}"),
            SpecError::Io(e) => write!(f, "cannot read job file: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses and validates a job file from text.
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, SpecError> {
    let doc = parse(text).map_err(SpecError::Json)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or(SpecError::Shape("missing top-level \"schema\" string"))?;
    if schema != SPEC_SCHEMA {
        return Err(SpecError::Schema(schema.to_string()));
    }
    let jobs = doc
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or(SpecError::Shape("missing top-level \"jobs\" array"))?;
    let mut out = Vec::with_capacity(jobs.len());
    for (i, j) in jobs.iter().enumerate() {
        out.push(parse_one(j, i)?);
    }
    for (i, a) in out.iter().enumerate() {
        if out[..i].iter().any(|b: &JobSpec| b.name == a.name) {
            return Err(SpecError::Duplicate(a.name.clone()));
        }
    }
    Ok(out)
}

/// [`parse_jobs`] from a file path.
pub fn load_jobs(path: impl AsRef<Path>) -> Result<Vec<JobSpec>, SpecError> {
    let text = std::fs::read_to_string(path).map_err(SpecError::Io)?;
    parse_jobs(&text)
}

fn parse_one(j: &Value, idx: usize) -> Result<JobSpec, SpecError> {
    if j.as_obj().is_none() {
        return Err(SpecError::Shape("every \"jobs\" entry must be an object"));
    }
    let name = match j.get("name").and_then(Value::as_str) {
        Some(n) => n.to_string(),
        None => {
            return Err(SpecError::Missing { job: format!("#{idx}"), field: "name" });
        }
    };
    let bad = |field: &'static str, why: String| SpecError::Bad {
        job: name.clone(),
        field,
        why,
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(bad(
            "name",
            format!("{name:?} — must be non-empty [A-Za-z0-9_-] (it names a directory)"),
        ));
    }

    let uint = |field: &'static str, default: Option<u64>| -> Result<u64, SpecError> {
        match j.get(field) {
            None => default.ok_or(SpecError::Missing { job: name.clone(), field }),
            Some(v) => {
                let f = v.as_f64().ok_or_else(|| bad(field, "not a number".into()))?;
                if f < 0.0 || f.fract() != 0.0 || f > u64::MAX as f64 {
                    return Err(bad(field, format!("{f} is not a non-negative integer")));
                }
                Ok(f as u64)
            }
        }
    };

    let tenant = j
        .get("tenant")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();
    let ranks = uint("ranks", Some(1))? as usize;
    if ranks == 0 {
        return Err(bad("ranks", "must be >= 1".into()));
    }
    let steps = uint("steps", None)?;
    if steps == 0 {
        return Err(bad("steps", "must be >= 1".into()));
    }
    let priority = match j.get("priority") {
        None => 0,
        Some(v) => {
            let f = v.as_f64().ok_or_else(|| bad("priority", "not a number".into()))?;
            if f.fract() != 0.0 {
                return Err(bad("priority", format!("{f} is not an integer")));
            }
            f as i64
        }
    };
    let ckpt_every = uint("ckpt_every", Some(0))? as usize;
    let stats_every = uint("stats_every", Some(0))?;
    let submit_tick = uint("submit_tick", Some(0))?;

    let net = match j.get("net").and_then(Value::as_str) {
        None => NetId::RoadRunnerMyr,
        Some(s) => NetId::parse(s)
            .ok_or_else(|| bad("net", format!("unknown net {s:?} (see NetId::ALL slugs)")))?,
    };

    let solver_name = j
        .get("solver")
        .and_then(Value::as_str)
        .ok_or(SpecError::Missing { job: name.clone(), field: "solver" })?;
    let solver = match solver_name {
        "fourier" => {
            let nz = uint("nz", Some(8))? as usize;
            if nz < 2 || nz % 2 != 0 {
                return Err(bad("nz", format!("{nz} — must be even and >= 2")));
            }
            let (pr, pc) = match j.get("grid").and_then(Value::as_str) {
                None => (ranks, 1),
                Some(g) => parse_grid(g).ok_or_else(|| {
                    bad("grid", format!("{g:?} — expected \"PRxPC\", e.g. \"2x2\""))
                })?,
            };
            if pr * pc != ranks {
                return Err(bad(
                    "grid",
                    format!("{pr}x{pc} does not cover ranks={ranks}"),
                ));
            }
            SolverKind::Fourier { nz, pr, pc }
        }
        "serial2d" => {
            if ranks != 1 {
                return Err(bad("ranks", "serial2d runs on exactly 1 rank".into()));
            }
            SolverKind::Serial2d
        }
        "ale" => SolverKind::Ale,
        other => {
            return Err(bad(
                "solver",
                format!("unknown solver {other:?} (fourier | serial2d | ale)"),
            ));
        }
    };

    Ok(JobSpec {
        name,
        tenant,
        solver,
        ranks,
        net,
        steps,
        priority,
        ckpt_every,
        stats_every,
        submit_tick,
    })
}

fn parse_grid(g: &str) -> Option<(usize, usize)> {
    let (a, b) = g.split_once('x')?;
    let pr = a.trim().parse::<usize>().ok()?;
    let pc = b.trim().parse::<usize>().ok()?;
    (pr >= 1 && pc >= 1).then_some((pr, pc))
}

/// The host machine whose kernel-rate model backs a job's net choice —
/// nets in the catalog belong to exactly one paper machine.
pub fn host_machine(net: NetId) -> nkt_machine::MachineId {
    use nkt_machine::MachineId as M;
    match net {
        NetId::Ap3000 => M::Ap3000,
        NetId::Sp2Thin2 => M::Sp2Thin2,
        NetId::Sp2Silver => M::Sp2Silver,
        NetId::MusesMpich | NetId::MusesLam => M::Muses,
        NetId::Onyx2 => M::Onyx2,
        NetId::RoadRunnerEth | NetId::RoadRunnerMyr => M::RoadRunner,
        NetId::T3e => M::T3e,
        NetId::Ncsa => M::Ncsa,
        NetId::Hitachi => M::Hitachi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(jobs: &str) -> String {
        format!("{{\"schema\": \"{SPEC_SCHEMA}\", \"jobs\": [{jobs}]}}")
    }

    #[test]
    fn minimal_job_gets_defaults() {
        let specs = parse_jobs(&file(
            r#"{"name": "a", "solver": "serial2d", "steps": 4}"#,
        ))
        .unwrap();
        assert_eq!(specs.len(), 1);
        let s = &specs[0];
        assert_eq!(s.name, "a");
        assert_eq!(s.tenant, "default");
        assert_eq!(s.solver, SolverKind::Serial2d);
        assert_eq!(s.ranks, 1);
        assert_eq!(s.net, NetId::RoadRunnerMyr);
        assert_eq!((s.steps, s.priority), (4, 0));
        assert_eq!((s.ckpt_every, s.stats_every, s.submit_tick), (0, 0, 0));
    }

    #[test]
    fn fourier_grid_and_net_parse() {
        let specs = parse_jobs(&file(
            r#"{"name": "f", "tenant": "cfd", "solver": "fourier", "ranks": 4,
                "grid": "2x2", "nz": 4, "net": "roadrunner_eth", "steps": 6,
                "priority": 2, "ckpt_every": 2, "stats_every": 1, "submit_tick": 3}"#,
        ))
        .unwrap();
        let s = &specs[0];
        assert_eq!(s.solver, SolverKind::Fourier { nz: 4, pr: 2, pc: 2 });
        assert_eq!(s.net, NetId::RoadRunnerEth);
        assert_eq!(s.priority, 2);
        assert_eq!(s.submit_tick, 3);
    }

    #[test]
    fn fourier_grid_defaults_to_slab() {
        let specs = parse_jobs(&file(
            r#"{"name": "f", "solver": "fourier", "ranks": 2, "nz": 4, "steps": 1}"#,
        ))
        .unwrap();
        assert_eq!(specs[0].solver, SolverKind::Fourier { nz: 4, pr: 2, pc: 1 });
    }

    #[test]
    fn rejections_are_typed() {
        assert!(matches!(parse_jobs("not json"), Err(SpecError::Json(_))));
        assert!(matches!(
            parse_jobs(r#"{"schema": "nope", "jobs": []}"#),
            Err(SpecError::Schema(_))
        ));
        assert!(matches!(
            parse_jobs(&file(r#"{"name": "a", "solver": "serial2d"}"#)),
            Err(SpecError::Missing { field: "steps", .. })
        ));
        assert!(matches!(
            parse_jobs(&file(
                r#"{"name": "a", "solver": "fourier", "ranks": 4, "grid": "3x2", "steps": 1}"#
            )),
            Err(SpecError::Bad { field: "grid", .. })
        ));
        assert!(matches!(
            parse_jobs(&file(
                r#"{"name": "a", "solver": "serial2d", "steps": 1, "net": "warpdrive"}"#
            )),
            Err(SpecError::Bad { field: "net", .. })
        ));
        assert!(matches!(
            parse_jobs(&file(
                r#"{"name": "bad/name", "solver": "serial2d", "steps": 1}"#
            )),
            Err(SpecError::Bad { field: "name", .. })
        ));
        let dup = format!(
            "{},{}",
            r#"{"name": "a", "solver": "serial2d", "steps": 1}"#,
            r#"{"name": "a", "solver": "serial2d", "steps": 1}"#
        );
        assert!(matches!(parse_jobs(&file(&dup)), Err(SpecError::Duplicate(_))));
    }

    #[test]
    fn every_net_maps_to_a_machine() {
        for net in NetId::ALL {
            // Panics (unreachable match) would fail the test; also make
            // sure the mapping is consistent with the catalog display
            // name actually resolving.
            let m = nkt_machine::machine(host_machine(net));
            assert!(!m.name.is_empty());
        }
    }
}
