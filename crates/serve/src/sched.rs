//! The deterministic job scheduler: admission control, fair-share
//! queueing, and checkpoint-backed preemption over concurrent virtual
//! clusters.
//!
//! ## Gang-scheduled ticks
//!
//! Wall-clock interleaving of concurrent worlds is nondeterministic, so
//! the scheduler never consults it. Time advances in **ticks**: every
//! running job owes the scheduler exactly one event per tick — either
//! `AtCut` (parked at a checkpoint epoch, awaiting a directive) or
//! `Exited` (finished, preempted, or failed). The scheduler blocks until
//! all events for the tick are in, then decides admissions, preemptions
//! and requeues while processing jobs in ascending job-id order. Every
//! decision is a pure function of (job specs, tick number, tenant
//! ledger), so two serves of the same batch make identical decisions no
//! matter how the host schedules the worker threads.
//!
//! ## Fair share and preemption
//!
//! Admission order: lowest tenant usage (rank-steps consumed) first,
//! then higher priority, then submission order — deterministic
//! tie-breaking all the way down. When every slot is full and an
//! eligible queued job has *strictly higher* priority than some running
//! job, the lowest-priority running job (newest admission on ties) is
//! told `Preempt` at its next epoch cut: it stops right after the epoch
//! lands on disk and goes back in the queue. The next slice restores
//! from that epoch bitwise — see `runner` for why eviction is invisible
//! in the job's artifacts.

use crate::events::EventLog;
use crate::runner::{self, JobResult, SliceCtx};
use crate::spec::JobSpec;
use crate::store::Store;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Serve root; each job gets `<root>/<job>/`.
    pub root: PathBuf,
    /// Cap on concurrently-running worlds (admission control).
    pub max_worlds: usize,
    /// When set, append the scheduler's decision timeline to
    /// `<root>/EVENTS_<run>.jsonl` (see [`crate::events`]). The file is
    /// byte-deterministic for a given batch.
    pub events: Option<String>,
}

/// Scheduler → worker verdict at an epoch cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Directive {
    Continue,
    Preempt,
}

/// Worker → scheduler, exactly one per running job per tick.
pub(crate) enum Event {
    /// Parked at an epoch cut after `step`, waiting for a [`Directive`].
    AtCut { job: usize, step: u64 },
    /// The slice ended; the worker thread is about to return.
    Exited { job: usize, exit: runner::SliceExit },
}

/// Batch-level failure (individual job failures land in [`JobReport`]).
#[derive(Debug)]
pub enum ServeError {
    NoJobs,
    ZeroWorlds,
    DuplicateName(String),
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoJobs => write!(f, "no jobs submitted"),
            ServeError::ZeroWorlds => write!(f, "max_worlds must be >= 1"),
            ServeError::DuplicateName(n) => write!(f, "duplicate job name {n:?}"),
            ServeError::Io(e) => write!(f, "serve root: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-job outcome, in submission order.
#[derive(Debug)]
pub struct JobReport {
    pub name: String,
    pub tenant: String,
    pub solver: &'static str,
    /// Final numbers; `None` when the job failed.
    pub result: Option<JobResult>,
    pub preemptions: u64,
    pub queue_wait_ticks: u64,
    /// The job's artifact directory.
    pub dir: PathBuf,
    /// `MANIFEST_<job>.json` (written only for finished jobs).
    pub manifest: PathBuf,
    pub error: Option<String>,
}

impl JobReport {
    pub fn finished(&self) -> bool {
        self.result.is_some()
    }
}

/// What a whole serve run produced.
#[derive(Debug)]
pub struct ServeReport {
    pub jobs: Vec<JobReport>,
    /// Ticks the scheduler advanced through.
    pub ticks: u64,
    /// Total evictions across the batch.
    pub preemptions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JState {
    Queued,
    Running,
    Done,
    Failed,
}

/// Scheduler-side bookkeeping for one job.
struct Book {
    spec: JobSpec,
    state: JState,
    /// Index in the submitted batch — the final fair-share tie-break.
    submit_seq: usize,
    /// Trace scope tagging this job's threads, constant across slices.
    scope: u64,
    /// Whether the job directory was already wiped (first admission).
    started: bool,
    /// Steps completed as of the last slice exit.
    steps_done: u64,
    preemptions: u64,
    wait_ticks: u64,
    /// Monotone admission stamp; newest admission preempts first on ties.
    admit_seq: u64,
    dir_tx: Option<Sender<Directive>>,
    handle: Option<std::thread::JoinHandle<()>>,
    result: Option<JobResult>,
    error: Option<String>,
}

/// Process-wide scope allocator: every serve() call gets a fresh span of
/// scopes so concurrent batches in one process cannot collide.
static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);

enum Parked {
    AtCut { step: u64 },
    Exited(runner::SliceExit),
}

/// Runs a batch to completion. Blocks until every job is done or failed;
/// deterministic given (jobs, config) regardless of host thread timing.
pub fn serve(jobs: Vec<JobSpec>, cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    if jobs.is_empty() {
        return Err(ServeError::NoJobs);
    }
    if cfg.max_worlds == 0 {
        return Err(ServeError::ZeroWorlds);
    }
    for (i, a) in jobs.iter().enumerate() {
        if jobs[..i].iter().any(|b| b.name == a.name) {
            return Err(ServeError::DuplicateName(a.name.clone()));
        }
    }
    std::fs::create_dir_all(&cfg.root).map_err(ServeError::Io)?;
    let store = Store::new(cfg.root.clone());
    let mut elog: Option<EventLog> = match &cfg.events {
        Some(run) => Some(EventLog::create(&cfg.root, run).map_err(ServeError::Io)?),
        None => None,
    };

    // One scope per job plus one for the scheduler thread itself; the
    // caller's scope is restored on the way out.
    let n = jobs.len() as u64;
    let base = NEXT_SCOPE.fetch_add(n + 1, Ordering::Relaxed);
    nkt_trace::flush_thread();
    let caller_scope = nkt_trace::current_scope();
    nkt_trace::set_thread_scope(base);

    let mut books: Vec<Book> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| Book {
            spec,
            state: JState::Queued,
            submit_seq: i,
            scope: base + 1 + i as u64,
            started: false,
            steps_done: 0,
            preemptions: 0,
            wait_ticks: 0,
            admit_seq: 0,
            dir_tx: None,
            handle: None,
            result: None,
            error: None,
        })
        .collect();

    let (event_tx, event_rx) = channel::<Event>();
    let mut tick: u64 = 0;
    let mut admit_counter: u64 = 0;
    let mut usage: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_preemptions: u64 = 0;
    // Events that arrived while waiting for specific victims to exit;
    // consumed before the channel at the next tick barrier.
    let mut carryover: Vec<Event> = Vec::new();

    loop {
        // --- Admission: fill free slots in fair-share order. ---
        let mut running: Vec<usize> = (0..books.len())
            .filter(|&i| books[i].state == JState::Running)
            .collect();
        while running.len() < cfg.max_worlds {
            let Some(j) = pick_next(&books, &usage, tick) else { break };
            admit(j, &mut books[j], &store, &event_tx, &mut admit_counter);
            nkt_trace::counter_add("serve.admissions", 1);
            if let Some(log) = &mut elog {
                let b = &books[j];
                let tag = match b.state {
                    JState::Running if b.preemptions > 0 => "resume",
                    JState::Running => "admit",
                    _ => "fail",
                };
                let u = usage.get(&b.spec.tenant).copied().unwrap_or(0);
                log.record(tick, tag, &b.spec.name, &b.spec.tenant, b.steps_done, b.preemptions, u);
            }
            if books[j].state == JState::Running {
                running.push(j);
            }
        }
        running.sort_unstable();
        nkt_trace::gauge_set("serve.worlds.running", running.len() as f64);

        if books
            .iter()
            .all(|b| matches!(b.state, JState::Done | JState::Failed))
        {
            break;
        }

        if running.is_empty() {
            // Nothing running and nothing eligible: jump to the earliest
            // future submission. (Queued jobs must exist or we'd have
            // broken out above; they must be in the future or admission
            // would have taken one.)
            let next = books
                .iter()
                .filter(|b| b.state == JState::Queued)
                .map(|b| b.spec.submit_tick)
                .min()
                .expect("queued job exists when not all done");
            debug_assert!(next > tick);
            tick = next;
            continue;
        }

        // Eligible-but-queued jobs wait this tick out.
        for b in books.iter_mut() {
            if b.state == JState::Queued && b.spec.submit_tick <= tick {
                b.wait_ticks += 1;
                nkt_trace::counter_add("serve.queue.wait_ticks", 1);
            }
        }

        // --- Tick barrier: exactly one event per running job. ---
        let sp = nkt_trace::span("serve.tick", "serve");
        let mut status: BTreeMap<usize, Parked> = BTreeMap::new();
        while status.len() < running.len() {
            match next_event(&mut carryover, &event_rx) {
                Event::AtCut { job, step } => {
                    // Cuts only happen on new work: a slice's first cut
                    // is strictly past the epoch it restored from.
                    debug_assert!(step > books[job].steps_done);
                    status.insert(job, Parked::AtCut { step });
                }
                Event::Exited { job, exit } => {
                    status.insert(job, Parked::Exited(exit));
                }
            }
        }

        // --- Process exits (ascending job id via BTreeMap order). ---
        let mut parked: Vec<usize> = Vec::new();
        for (&j, st) in &status {
            if let Parked::AtCut { step } = st {
                parked.push(j);
                if let Some(log) = &mut elog {
                    let b = &books[j];
                    let u = usage.get(&b.spec.tenant).copied().unwrap_or(0);
                    log.record(tick, "cut", &b.spec.name, &b.spec.tenant, *step, b.preemptions, u);
                }
            }
        }
        for (j, st) in status {
            if let Parked::Exited(exit) = st {
                finalize(
                    j,
                    &mut books[j],
                    exit,
                    &mut usage,
                    &mut total_preemptions,
                    tick,
                    &mut elog,
                );
            }
        }

        // --- Preemption: does a queued job outrank a parked one? ---
        let mut victims: Vec<usize> = Vec::new();
        let mut free = cfg.max_worlds - parked.len();
        for q in fair_order(&books, &usage, tick) {
            if free > 0 {
                // A slot is (or just came) free — the queued job will be
                // admitted at the next tick without evicting anyone.
                free -= 1;
                continue;
            }
            let candidate = parked
                .iter()
                .copied()
                .filter(|v| !victims.contains(v))
                .filter(|&v| books[v].spec.priority < books[q].spec.priority)
                .min_by_key(|&v| (books[v].spec.priority, std::cmp::Reverse(books[v].admit_seq)));
            if let Some(v) = candidate {
                victims.push(v);
            }
        }
        victims.sort_unstable();

        // --- Release the parked jobs. ---
        for &j in &parked {
            let d = if victims.contains(&j) { Directive::Preempt } else { Directive::Continue };
            if let Some(tx) = &books[j].dir_tx {
                // A worker that died between AtCut and here surfaces as
                // an Exited event next tick; the lost send is harmless.
                let _ = tx.send(d);
            }
        }

        // --- Wait for every victim to actually vacate its slot. ---
        // A victim's Exited may already sit in `carryover` (stashed while
        // waiting on an earlier victim), so check there exactly once;
        // otherwise block on the channel. Non-victim events that race in
        // (a Continue'd job reaching its next cut, a finisher) are
        // stashed for the next tick barrier — crucially without being
        // re-examined here, or a single stashed event would make this
        // loop cycle the stash forever and never drain the channel.
        for &v in &victims {
            let stashed = carryover
                .iter()
                .position(|e| matches!(e, Event::Exited { job, .. } if *job == v));
            let exit = if let Some(p) = stashed {
                match carryover.remove(p) {
                    Event::Exited { exit, .. } => exit,
                    Event::AtCut { .. } => unreachable!("position matched Exited"),
                }
            } else {
                loop {
                    match event_rx
                        .recv()
                        .expect("worker closed its event channel without an Exited")
                    {
                        Event::Exited { job, exit } if job == v => break exit,
                        other => carryover.push(other),
                    }
                }
            };
            finalize(v, &mut books[v], exit, &mut usage, &mut total_preemptions, tick, &mut elog);
        }
        drop(sp);
        nkt_trace::counter_add("serve.ticks", 1);
        tick += 1;
    }

    nkt_trace::gauge_set("serve.worlds.running", 0.0);
    nkt_trace::flush_thread();
    nkt_trace::set_thread_scope(caller_scope);

    let jobs = books
        .into_iter()
        .map(|b| JobReport {
            name: b.spec.name.clone(),
            tenant: b.spec.tenant.clone(),
            solver: b.spec.solver.name(),
            result: b.result,
            preemptions: b.preemptions,
            queue_wait_ticks: b.wait_ticks,
            dir: store.job_dir(&b.spec.name),
            manifest: store.manifest_path(&b.spec.name),
            error: b.error,
        })
        .collect();
    Ok(ServeReport { jobs, ticks: tick, preemptions: total_preemptions })
}

/// Queued jobs eligible at `tick`, in fair-share order.
fn fair_order(books: &[Book], usage: &BTreeMap<String, u64>, tick: u64) -> Vec<usize> {
    let mut q: Vec<usize> = (0..books.len())
        .filter(|&i| books[i].state == JState::Queued && books[i].spec.submit_tick <= tick)
        .collect();
    q.sort_by_key(|&i| {
        let b = &books[i];
        (
            usage.get(&b.spec.tenant).copied().unwrap_or(0),
            std::cmp::Reverse(b.spec.priority),
            b.submit_seq,
        )
    });
    q
}

fn pick_next(books: &[Book], usage: &BTreeMap<String, u64>, tick: u64) -> Option<usize> {
    fair_order(books, usage, tick).first().copied()
}

/// Spawns the next slice of job `j` on its own worker thread. On an IO
/// failure preparing the job directory the job is marked failed instead
/// of admitted — it then owes the scheduler no events.
fn admit(
    j: usize,
    book: &mut Book,
    store: &Store,
    event_tx: &Sender<Event>,
    admit_counter: &mut u64,
) {
    if !book.started {
        if let Err(e) = store.reset_job(&book.spec.name) {
            book.state = JState::Failed;
            book.error = Some(format!("prepare job dir: {e}"));
            nkt_trace::counter_add("serve.jobs.failed", 1);
            return;
        }
        book.started = true;
    }
    let (dtx, drx) = channel::<Directive>();
    let ctx = SliceCtx {
        job_id: j,
        spec: book.spec.clone(),
        dir: store.job_dir(&book.spec.name),
        scope: book.scope,
        preemptions: book.preemptions,
        wait_ticks: book.wait_ticks,
        event_tx: event_tx.clone(),
        directive_rx: drx,
    };
    let handle = std::thread::Builder::new()
        .name(format!("serve:{}", book.spec.name))
        .spawn(move || runner::run_slice(ctx))
        .expect("spawn worker thread");
    book.dir_tx = Some(dtx);
    book.handle = Some(handle);
    book.admit_seq = *admit_counter;
    *admit_counter += 1;
    book.state = JState::Running;
}

/// Consumes a slice exit: joins the worker, settles the tenant ledger,
/// and moves the job to its next state (Done, requeued, or Failed).
#[allow(clippy::too_many_arguments)]
fn finalize(
    j: usize,
    book: &mut Book,
    exit: runner::SliceExit,
    usage: &mut BTreeMap<String, u64>,
    total_preemptions: &mut u64,
    tick: u64,
    elog: &mut Option<EventLog>,
) {
    if let Some(h) = book.handle.take() {
        let _ = h.join();
    }
    book.dir_tx = None;
    let charge = |usage: &mut BTreeMap<String, u64>, book: &Book, upto: u64| {
        let steps = upto.saturating_sub(book.steps_done);
        *usage.entry(book.spec.tenant.clone()).or_insert(0) += steps * book.spec.ranks as u64;
    };
    let tag = match exit {
        runner::SliceExit::Finished(res) => {
            charge(usage, book, res.steps);
            book.steps_done = res.steps;
            book.result = Some(res);
            book.state = JState::Done;
            nkt_trace::counter_add("serve.jobs.finished", 1);
            "complete"
        }
        runner::SliceExit::Preempted { step } => {
            charge(usage, book, step);
            book.steps_done = step;
            book.preemptions += 1;
            *total_preemptions += 1;
            book.state = JState::Queued;
            nkt_trace::counter_add("serve.preemptions", 1);
            "preempt"
        }
        runner::SliceExit::Failed(msg) => {
            book.error = Some(msg);
            book.state = JState::Failed;
            nkt_trace::counter_add("serve.jobs.failed", 1);
            "fail"
        }
    };
    if let Some(log) = elog {
        let u = usage.get(&book.spec.tenant).copied().unwrap_or(0);
        log.record(tick, tag, &book.spec.name, &book.spec.tenant, book.steps_done, book.preemptions, u);
    }
    let _ = j;
}

fn next_event(carryover: &mut Vec<Event>, rx: &Receiver<Event>) -> Event {
    if carryover.is_empty() {
        rx.recv().expect("worker closed its event channel without an Exited")
    } else {
        carryover.remove(0)
    }
}
