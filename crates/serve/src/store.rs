//! Deterministic per-job results store and `MANIFEST_<job>.json` writer.
//!
//! Every job owns one directory under the serve root, named after the
//! job; all of its artifacts (`STATS_`, `CKPT_`, `TRACE_`, `PROF_`,
//! `FLIGHT_`) land there, routed through the per-thread output-dir
//! override in `nkt-trace`. Rank 0 of the finishing slice writes a
//! manifest (schema [`MANIFEST_SCHEMA`]) that inventories the artifacts
//! and records the final state hash. The manifest is **byte
//! deterministic**: no timestamps, artifacts in a fixed order, and
//! content hashes (FNV-1a) only for files whose bytes are themselves
//! deterministic (STATS and checkpoint files — `TRACE_`/`PROF_` carry
//! host wall-clock times, so they are listed by name only).

use crate::spec::JobSpec;
use nkt_trace::json::quote;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest schema tag.
pub const MANIFEST_SCHEMA: &str = "nkt-serve-1";

/// FNV-1a over a byte slice — same constants as the checkpoint codec,
/// so manifest hashes and state hashes speak one dialect.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The serve root: one directory per job underneath.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    pub fn new(root: impl Into<PathBuf>) -> Store {
        Store { root: root.into() }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The per-job artifact directory.
    pub fn job_dir(&self, job: &str) -> PathBuf {
        self.root.join(job)
    }

    /// Where the job's manifest lands.
    pub fn manifest_path(&self, job: &str) -> PathBuf {
        self.job_dir(job).join(format!("MANIFEST_{job}.json"))
    }

    /// Wipes and recreates a job's directory. Called once per job at its
    /// *first* admission in a batch, so re-serving into the same root is
    /// deterministic (no stale epochs from a previous run to restore).
    pub fn reset_job(&self, job: &str) -> io::Result<()> {
        let dir = self.job_dir(job);
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        std::fs::create_dir_all(&dir)
    }
}

/// One manifest line item. `bytes`/`fnv` are present only for artifacts
/// with deterministic contents.
#[derive(Debug, Clone)]
pub struct ArtifactEntry {
    pub name: String,
    pub bytes: Option<u64>,
    pub fnv: Option<u64>,
}

impl ArtifactEntry {
    /// Name-only entry (artifact exists but carries host timestamps).
    pub fn named(name: impl Into<String>) -> ArtifactEntry {
        ArtifactEntry { name: name.into(), bytes: None, fnv: None }
    }

    /// Entry with size and content hash, from in-memory bytes.
    pub fn hashed(name: impl Into<String>, bytes: &[u8]) -> ArtifactEntry {
        ArtifactEntry {
            name: name.into(),
            bytes: Some(bytes.len() as u64),
            fnv: Some(fnv1a(bytes)),
        }
    }

    /// [`ArtifactEntry::hashed`] over a file's bytes.
    pub fn hashed_file(dir: &Path, name: impl Into<String>) -> io::Result<ArtifactEntry> {
        let name = name.into();
        let bytes = std::fs::read(dir.join(&name))?;
        Ok(ArtifactEntry::hashed(name, &bytes))
    }

    /// Entry for a checkpoint *shard*: `bytes` is the file length, but
    /// `fnv` digests the sections **excluding** the wall-clock ledger —
    /// the same recipe as `Checkpointable::state_hash`. A shard's clock
    /// section records host wall times, the one part of a checkpoint
    /// that is not a pure function of the physics; hashing around it
    /// keeps the manifest byte-deterministic across scheduler reruns.
    pub fn hashed_shard(dir: &Path, name: impl Into<String>) -> io::Result<ArtifactEntry> {
        let name = name.into();
        let path = dir.join(&name);
        let len = std::fs::metadata(&path)?.len();
        let file = nkt_ckpt::CkptFile::open(&path)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let sections: Vec<String> = file.section_names().map(str::to_string).collect();
        let mut h = nkt_ckpt::Fnv1a::new();
        for s in &sections {
            if s == nkt_ckpt::CLOCK_SECTION {
                continue;
            }
            let payload = file.section(s).unwrap_or(&[]);
            h.update(s.as_bytes());
            h.update(&(payload.len() as u64).to_le_bytes());
            h.update(payload);
        }
        Ok(ArtifactEntry { name, bytes: Some(len), fnv: Some(h.finish()) })
    }
}

/// Everything rank 0 knows at job finish, ready to render.
#[derive(Debug)]
pub struct ManifestData<'a> {
    pub spec: &'a JobSpec,
    /// Display name of the host machine backing the job's net model.
    pub machine: &'static str,
    /// FNV state hash of the solver at the final step.
    pub state_hash: u64,
    /// Steps actually executed (== `spec.steps` for a finished job).
    pub steps_done: u64,
    /// Times this job was evicted and later resumed.
    pub preemptions: u64,
    /// Scheduler ticks the job spent eligible-but-queued.
    pub queue_wait_ticks: u64,
    /// Inventory, already in deterministic order.
    pub artifacts: Vec<ArtifactEntry>,
}

/// Renders the manifest JSON. Pure function of its input — reruns with
/// identical scheduling produce identical bytes.
pub fn render_manifest(m: &ManifestData) -> String {
    let s = m.spec;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": {},", quote(MANIFEST_SCHEMA));
    let _ = writeln!(out, "  \"job\": {},", quote(&s.name));
    let _ = writeln!(out, "  \"tenant\": {},", quote(&s.tenant));
    let _ = writeln!(out, "  \"solver\": {},", quote(s.solver.name()));
    let _ = writeln!(out, "  \"machine\": {},", quote(m.machine));
    let _ = writeln!(out, "  \"net\": {},", quote(s.net.slug()));
    let _ = writeln!(out, "  \"ranks\": {},", s.ranks);
    if let crate::spec::SolverKind::Fourier { nz, pr, pc } = s.solver {
        let _ = writeln!(out, "  \"grid\": {},", quote(&format!("{pr}x{pc}")));
        let _ = writeln!(out, "  \"nz\": {nz},");
    }
    let _ = writeln!(out, "  \"steps\": {},", s.steps);
    let _ = writeln!(out, "  \"priority\": {},", s.priority);
    let _ = writeln!(out, "  \"ckpt_every\": {},", s.ckpt_every);
    let _ = writeln!(out, "  \"stats_every\": {},", s.stats_every);
    let _ = writeln!(out, "  \"steps_done\": {},", m.steps_done);
    let _ = writeln!(out, "  \"preemptions\": {},", m.preemptions);
    let _ = writeln!(out, "  \"queue_wait_ticks\": {},", m.queue_wait_ticks);
    let _ = writeln!(out, "  \"state_hash\": {},", quote(&format!("{:016x}", m.state_hash)));
    let _ = writeln!(out, "  \"artifacts\": [");
    for (i, a) in m.artifacts.iter().enumerate() {
        let comma = if i + 1 < m.artifacts.len() { "," } else { "" };
        match (a.bytes, a.fnv) {
            (Some(b), Some(h)) => {
                let _ = writeln!(
                    out,
                    "    {{\"name\": {}, \"bytes\": {b}, \"fnv\": {}}}{comma}",
                    quote(&a.name),
                    quote(&format!("{h:016x}")),
                );
            }
            _ => {
                let _ = writeln!(out, "    {{\"name\": {}}}{comma}", quote(&a.name));
            }
        }
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Writes `MANIFEST_<job>.json` into `dir`. Returns the path.
pub fn write_manifest(dir: &Path, m: &ManifestData) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("MANIFEST_{}.json", m.spec.name));
    std::fs::write(&path, render_manifest(m))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{host_machine, parse_jobs, SPEC_SCHEMA};

    fn spec() -> JobSpec {
        parse_jobs(&format!(
            "{{\"schema\": \"{SPEC_SCHEMA}\", \"jobs\": [
               {{\"name\": \"m\", \"solver\": \"fourier\", \"ranks\": 2,
                 \"nz\": 4, \"steps\": 5, \"ckpt_every\": 2, \"stats_every\": 1}}]}}"
        ))
        .unwrap()
        .remove(0)
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_is_byte_deterministic_and_parses() {
        let s = spec();
        let m = ManifestData {
            spec: &s,
            machine: nkt_machine::machine(host_machine(s.net)).name,
            state_hash: 0xdead_beef,
            steps_done: 5,
            preemptions: 1,
            queue_wait_ticks: 3,
            artifacts: vec![
                ArtifactEntry::hashed("STATS_m.json", b"{}"),
                ArtifactEntry::named("TRACE_m.json"),
            ],
        };
        let a = render_manifest(&m);
        let b = render_manifest(&m);
        assert_eq!(a, b);
        let doc = nkt_trace::json::parse(&a).expect("manifest parses");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(MANIFEST_SCHEMA));
        assert_eq!(doc.get("job").and_then(|v| v.as_str()), Some("m"));
        assert_eq!(doc.get("grid").and_then(|v| v.as_str()), Some("2x1"));
        assert_eq!(doc.get("preemptions").and_then(|v| v.as_f64()), Some(1.0));
        let arts = doc.get("artifacts").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(arts.len(), 2);
        assert!(arts[0].get("fnv").is_some());
        assert!(arts[1].get("fnv").is_none());
        assert_eq!(
            doc.get("state_hash").and_then(|v| v.as_str()),
            Some("00000000deadbeef")
        );
    }

    #[test]
    fn reset_job_wipes_stale_artifacts() {
        let root = std::env::temp_dir().join(format!("nkt_serve_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let st = Store::new(&root);
        std::fs::create_dir_all(st.job_dir("j")).unwrap();
        std::fs::write(st.job_dir("j").join("stale.bin"), b"x").unwrap();
        st.reset_job("j").unwrap();
        assert!(st.job_dir("j").exists());
        assert!(!st.job_dir("j").join("stale.bin").exists());
        st.reset_job("never-made").unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}
