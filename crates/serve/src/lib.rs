//! # nkt-serve — a multi-tenant simulation job engine
//!
//! The paper's clusters were shared machines: many users' jobs queued
//! against a fixed pool of nodes, and long DNS runs survived only
//! because they could be stopped and restarted from checkpoints. This
//! crate reproduces that operational layer on top of the workspace's
//! virtual clusters: a **deterministic job queue + scheduler** that runs
//! many concurrent worlds — each job its own `nkt-mpi` `World` with its
//! own net model from the catalog — over the shared host thread pool.
//!
//! * [`spec`] — typed job specifications, parsed from a JSON job file
//!   with the in-repo parser (schema `nkt-serve-jobs-1`).
//! * [`sched`] — gang-scheduled tick loop: admission control
//!   (`max_worlds`), per-tenant fair-share queueing with deterministic
//!   tie-breaking, and priority preemption.
//! * [`runner`] — executes one scheduling slice of a job; preemption is
//!   **checkpoint-backed**: eviction happens only at an `nkt-ckpt` epoch
//!   cut, and the next slice restores that epoch bitwise, so a
//!   preempted-and-resumed job's final state hash and `STATS_` artifact
//!   are byte-identical to an uninterrupted run.
//! * [`store`] — deterministic per-job results store: every artifact
//!   routes into `<root>/<job>/`, inventoried by a byte-deterministic
//!   `MANIFEST_<job>.json` (schema `nkt-serve-1`).
//!
//! Observability rides the existing substrate: `serve.tick`/`serve.cut`
//! spans, `serve.*` counters (admissions, preemptions, queue wait,
//! finished/failed) and a `serve.worlds.running` gauge, all under
//! `NKT_TRACE`. With [`ServeConfig::events`] set, the scheduler also
//! appends its decision timeline (admit/resume/cut/preempt/complete/
//! fail, with tick/tenant/usage) to a byte-deterministic
//! `EVENTS_<run>.jsonl` — see [`events`] and the `serve_report` binary.
//! See `examples/serve_farm.rs` for a mixed batch driven end-to-end and
//! DESIGN.md §15 for the scheduler state machine.

pub mod events;
pub mod sched;
pub mod spec;
pub mod store;

mod runner;

pub use events::{render_events, EventLog};
pub use runner::JobResult;
pub use sched::{serve, JobReport, ServeConfig, ServeError, ServeReport};
pub use spec::{
    host_machine, load_jobs, parse_jobs, JobSpec, SolverKind, SpecError, SPEC_SCHEMA,
};
pub use store::{fnv1a, render_manifest, ArtifactEntry, ManifestData, Store, MANIFEST_SCHEMA};
