//! Renders a serve event timeline (`EVENTS_<run>.jsonl`) as text.
//!
//! ```text
//! serve_report <events.jsonl> [more.jsonl ...]
//! serve_report            # every EVENTS_*.jsonl under the results dir
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn events_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut v: Vec<PathBuf> = rd
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("EVENTS_") && n.ends_with(".jsonl"))
        })
        .collect();
    v.sort();
    v
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: serve_report [EVENTS_<run>.jsonl ...]");
        eprintln!("With no arguments, renders every EVENTS_*.jsonl in the results dir.");
        return ExitCode::from(2);
    }
    let paths: Vec<PathBuf> = if args.is_empty() {
        let dir = nkt_trace::results_dir();
        let found = events_files(&dir);
        if found.is_empty() {
            eprintln!("serve_report: no EVENTS_*.jsonl under {}", dir.display());
            return ExitCode::from(2);
        }
        found
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serve_report: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        println!("== {} ==", path.display());
        match nkt_serve::render_events(&text) {
            Ok(r) => println!("{r}"),
            Err(e) => {
                eprintln!("serve_report: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
