//! End-to-end profiler tests over a real `nkt-mpi` world.
//!
//! The trace mode and span collector are process-global, so every test
//! here serializes on one mutex and drains the collector before running
//! its own world.

use nkt_mpi::prelude::*;
use nkt_net::{cluster, NetId};
use nkt_prof::Profile;
use std::sync::Mutex;

static LIVE: Mutex<()> = Mutex::new(());

/// Runs `f` as a 4-rank world with span recording on and returns the
/// profile built from exactly that world's rank threads.
fn profile_world(run: &str, f: impl Fn(&mut nkt_mpi::Comm) + Sync) -> Profile {
    nkt_trace::set_mode(nkt_trace::TraceMode::Spans);
    let _ = nkt_trace::take_collected(); // drop older tests' leftovers
    World::builder().ranks(4).net(cluster(NetId::T3e)).run(|c| f(c));
    let threads = nkt_trace::take_collected();
    nkt_trace::set_mode(nkt_trace::TraceMode::Off);
    Profile::build(run, &threads)
}

/// A small step with an engineered hot spot: every rank works 1 ms in
/// `NonLinear`, rank 2 works 10 ms; then a barrier makes the others
/// wait, and a balanced `PressureSolve` follows. The stage spans cover
/// compute only — the barrier's wait belongs to the barrier op.
fn imbalanced_step(c: &mut nkt_mpi::Comm) {
    let s = nkt_trace::span_v("NonLinear", "stage", c.wtime());
    c.advance(if c.rank() == 2 { 10e-3 } else { 1e-3 });
    s.end_v(c.wtime());
    c.barrier();
    let s = nkt_trace::span_v("PressureSolve", "stage", c.wtime());
    c.advance(2e-3);
    s.end_v(c.wtime());
    let mut x = [c.rank() as f64];
    c.allreduce(&mut x, ReduceOp::Sum);
}

#[test]
fn profiler_names_the_engineered_hot_rank_and_stage() {
    let _g = LIVE.lock().unwrap_or_else(|e| e.into_inner());
    let p = profile_world("imbalance", imbalanced_step);
    assert_eq!(p.ranks, vec![0, 1, 2, 3]);

    // Load imbalance: NonLinear is dominated by rank 2 (its 10 ms of
    // work sits inside everyone's barrier window, so the ratio is
    // diluted toward max/mean of the whole stage — still well above a
    // balanced stage's ~1).
    let nl = p.stages.iter().find(|s| s.stage == "NonLinear").expect("NonLinear row");
    assert_eq!(p.ranks[nl.slowest_index()], 2, "per_rank: {:?}", nl.per_rank);
    assert!(nl.max >= 10e-3, "rank 2 worked 10 ms, max {}", nl.max);
    let ps = p.stages.iter().find(|s| s.stage == "PressureSolve").expect("PressureSolve row");
    assert!(
        nl.imbalance > 1.05 && nl.imbalance > ps.imbalance,
        "NonLinear imbalance {} should exceed balanced PressureSolve {}",
        nl.imbalance,
        ps.imbalance
    );

    // The engineered wait is real: ranks 0, 1, 3 idled ~9 ms each in
    // the barrier behind rank 2.
    assert!(p.total_wait() > 20e-3, "total wait {}", p.total_wait());
    assert!(p.wait_share() > 0.2, "wait share {}", p.wait_share());
    let barrier = p.ops.iter().find(|o| o.op == "barrier").expect("barrier op row");
    assert_eq!(barrier.calls, 4, "one barrier window per rank");
    assert!(barrier.wait > 20e-3, "barrier wait {}", barrier.wait);
    assert!(barrier.late > 0, "someone's sender was late");

    // Critical path: it must run through rank 2 (the hot rank) and its
    // composition must be dominated by NonLinear.
    assert!(p.critical_path.length >= 12e-3);
    assert!(
        p.critical_path.segments.iter().any(|s| s.rank == 2 && s.kind == "local"),
        "path avoids the hot rank: {:?}",
        p.critical_path.segments
    );
    let nl_time = p
        .critical_path
        .composition
        .iter()
        .find(|(l, _)| l == "NonLinear")
        .map(|&(_, t)| t)
        .unwrap_or(0.0);
    assert!(
        nl_time >= 0.5 * p.critical_path.length,
        "NonLinear {} of path {}; composition {:?}",
        nl_time,
        p.critical_path.length,
        p.critical_path.composition
    );

    // Comm matrix: the barrier + allreduce trees touched every rank.
    assert!(!p.matrix.is_empty());
    let sent: u64 = p.matrix.iter().map(|c| c.msgs).sum();
    assert!(sent >= 6, "tree collectives move messages, got {sent}");
}

#[test]
fn profile_json_is_byte_identical_across_identical_runs() {
    let _g = LIVE.lock().unwrap_or_else(|e| e.into_inner());
    let a = profile_world("det", imbalanced_step).to_json();
    let b = profile_world("det", imbalanced_step).to_json();
    assert_eq!(a, b, "virtual-time profile must be bit-reproducible");
    // And the document round-trips through the workspace JSON parser.
    let doc = nkt_trace::json::parse(&a).expect("PROF json parses");
    assert!(doc.get("critical_path").is_some());
}

#[test]
fn offline_profile_from_trace_json_matches_in_process_analysis() {
    let _g = LIVE.lock().unwrap_or_else(|e| e.into_inner());
    nkt_trace::set_mode(nkt_trace::TraceMode::Spans);
    let _ = nkt_trace::take_collected();
    World::builder().ranks(4).net(cluster(NetId::T3e)).run(imbalanced_step);

    // Export the trace the same way a solver run would, then read it
    // back through the offline path.
    let dir = std::env::temp_dir().join(format!("nkt_prof_live_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    nkt_trace::set_dir(Some(dir.clone()));
    let path = nkt_trace::export("prof_offline").expect("trace export");
    nkt_trace::set_dir(None);
    nkt_trace::set_mode(nkt_trace::TraceMode::Off);

    let text = std::fs::read_to_string(&path).unwrap();
    let p = Profile::from_trace_json("offline", &text).expect("offline parse");
    assert_eq!(p.ranks, vec![0, 1, 2, 3]);
    let nl = p.stages.iter().find(|s| s.stage == "NonLinear").expect("NonLinear row");
    assert_eq!(p.ranks[nl.slowest_index()], 2);
    assert!(p.total_wait() > 20e-3);
    assert!(p.critical_path.length >= 12e-3);
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}
