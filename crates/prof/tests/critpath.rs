//! Critical-path and attribution contracts on hand-built span sets,
//! where every expected number is known in closed form.

use nkt_prof::Profile;
use nkt_trace::{SpanEvent, ThreadData};

fn vspan(
    name: &'static str,
    cat: &'static str,
    vt0: f64,
    vt1: f64,
    args: &[(&'static str, f64)],
) -> SpanEvent {
    SpanEvent {
        name,
        cat,
        ts_us: f64::NAN,
        dur_us: f64::NAN,
        vt0,
        vt1,
        depth: 0,
        args: args.to_vec(),
    }
}

fn rank_thread(tid: u64, rank: usize, events: Vec<SpanEvent>) -> ThreadData {
    ThreadData {
        tid,
        scope: 0,
        rank: Some(rank),
        name: Some(format!("rank {rank}")),
        events,
        counters: Vec::new(),
        gauges: Vec::new(),
        hists: Vec::new(),
    }
}

/// Two ranks, one message, **late sender**: rank 0 computes for 1.0 s
/// before sending; rank 1 posts its receive at t = 0 and idles until the
/// message lands at t = 1.5. The wait belongs to the receiver's ledger,
/// but the critical path must route *through the sender* — rank 1's idle
/// time was caused by rank 0's compute.
fn late_sender_world() -> Vec<ThreadData> {
    let r0 = rank_thread(
        1,
        0,
        vec![
            vspan("NonLinear", "stage", 0.0, 1.0, &[]),
            vspan(
                "p2p",
                "mpi.p2p.send",
                1.0,
                1.001,
                &[("peer", 1.0), ("bytes", 24.0), ("seq", 0.0), ("tag", 7.0), ("arrival", 1.5)],
            ),
        ],
    );
    let r1 = rank_thread(
        2,
        1,
        vec![
            vspan(
                "p2p",
                "mpi.p2p.recv",
                0.0,
                1.6,
                &[
                    ("peer", 0.0),
                    ("bytes", 24.0),
                    ("seq", 0.0),
                    ("tag", 7.0),
                    ("wait", 1.5),
                    ("late", 1.0),
                    ("arrival", 1.5),
                    ("posted", 0.0),
                ],
            ),
            vspan("Project", "stage", 1.6, 2.0, &[]),
        ],
    );
    vec![r0, r1]
}

#[test]
fn late_sender_wait_is_attributed_to_the_receiver() {
    let p = Profile::build("ls", &late_sender_world());
    let op = p.ops.iter().find(|o| o.op == "p2p").expect("p2p op row");
    assert_eq!(op.sends, 1);
    assert_eq!(op.recvs, 1);
    assert_eq!(op.late, 1, "the one message had a late sender");
    assert!((op.wait - 1.5).abs() < 1e-12, "receiver idled 1.5 s, got {}", op.wait);
    // Wire latency = arrival − sender completion = 1.5 − 1.001.
    assert!((op.wire - 0.499).abs() < 1e-12, "wire {}", op.wire);
    assert_eq!(op.send_bytes, 24);
}

#[test]
fn late_sender_path_routes_through_the_sender() {
    let p = Profile::build("ls", &late_sender_world());
    let cp = &p.critical_path;
    assert_eq!(cp.end_rank, 1, "rank 1 finishes last");
    assert!((cp.length - 2.0).abs() < 1e-12);
    // Walk order: rank 1 local tail, the wire hop, rank 0's history.
    assert_eq!(cp.segments.len(), 3, "segments: {:?}", cp.segments);
    let tail = &cp.segments[0];
    assert_eq!((tail.rank, tail.kind), (1, "local"));
    // Local path time resumes at the arrival (1.5): the receive-protocol
    // window counts as work on rank 1, only [0, 1.5] was idle.
    assert!((tail.t0 - 1.5).abs() < 1e-12 && (tail.t1 - 2.0).abs() < 1e-12);
    let wire = &cp.segments[1];
    assert_eq!((wire.rank, wire.kind, wire.from), (1, "wire", Some(0)));
    assert!((wire.t0 - 1.001).abs() < 1e-12 && (wire.t1 - 1.5).abs() < 1e-12);
    let head = &cp.segments[2];
    assert_eq!((head.rank, head.kind), (0, "local"));
    assert!(head.t0 == 0.0 && (head.t1 - 1.001).abs() < 1e-12);
    // Composition: the sender's compute dominates; the receiver's idle
    // window never appears as local path time.
    let get = |label: &str| {
        cp.composition.iter().find(|(l, _)| l == label).map(|&(_, t)| t).unwrap_or(0.0)
    };
    assert!((get("NonLinear") - 1.0).abs() < 1e-12);
    assert!((get("Project") - 0.4).abs() < 1e-12);
    assert!((get("wire") - 0.499).abs() < 1e-12);
    // Protocol time: 0.001 send window + 0.1 receive window after arrival.
    assert!((get("p2p") - 0.101).abs() < 1e-12, "p2p protocol windows");
    let total: f64 = cp.composition.iter().map(|&(_, t)| t).sum();
    assert!((total - cp.length).abs() < 1e-9, "composition covers the path");
}

/// Same topology but a **late receiver**: the message is already there
/// (arrival 0.2) when rank 1 finally posts the receive at t = 1.6 after
/// its own compute. No wait → no happens-before gate → the path never
/// leaves the slow rank.
#[test]
fn late_receiver_keeps_the_path_local() {
    let r0 = rank_thread(
        1,
        0,
        vec![vspan(
            "p2p",
            "mpi.p2p.send",
            0.1,
            0.101,
            &[("peer", 1.0), ("bytes", 24.0), ("seq", 0.0), ("tag", 7.0), ("arrival", 0.2)],
        )],
    );
    let r1 = rank_thread(
        2,
        1,
        vec![
            vspan("NonLinear", "stage", 0.0, 1.6, &[]),
            vspan(
                "p2p",
                "mpi.p2p.recv",
                1.6,
                1.7,
                &[
                    ("peer", 0.0),
                    ("bytes", 24.0),
                    ("seq", 0.0),
                    ("tag", 7.0),
                    ("wait", 0.0),
                    ("late", 0.0),
                    ("arrival", 0.2),
                    ("posted", 1.6),
                ],
            ),
        ],
    );
    let p = Profile::build("lr", &[r0, r1]);
    let op = p.ops.iter().find(|o| o.op == "p2p").unwrap();
    assert_eq!(op.late, 0);
    assert_eq!(op.wait, 0.0);
    let cp = &p.critical_path;
    assert_eq!(cp.end_rank, 1);
    assert_eq!(cp.segments.len(), 1, "no gate, single local segment: {:?}", cp.segments);
    assert_eq!(cp.segments[0].kind, "local");
    assert_eq!(cp.segments[0].rank, 1);
}

#[test]
fn comm_matrix_and_stage_stats_from_hand_built_spans() {
    let p = Profile::build("m", &late_sender_world());
    assert_eq!(p.matrix.len(), 1);
    let c = p.matrix[0];
    assert_eq!((c.src, c.dst, c.msgs, c.bytes), (0, 1, 1, 24));
    // Stage stats: NonLinear ran only on rank 0, Project only on rank 1.
    let nl = p.stages.iter().find(|s| s.stage == "NonLinear").unwrap();
    assert_eq!(nl.per_rank, vec![1.0, 0.0]);
    assert_eq!(nl.max, 1.0);
    assert_eq!(nl.imbalance, 2.0, "max/mean with one idle rank");
    assert_eq!(p.ranks[nl.slowest_index()], 0);
    let pr = p.stages.iter().find(|s| s.stage == "Project").unwrap();
    assert_eq!(p.ranks[pr.slowest_index()], 1);
}

#[test]
fn profile_json_is_stable_and_parses() {
    let p = Profile::build("j", &late_sender_world());
    let a = p.to_json();
    let b = Profile::build("j", &late_sender_world()).to_json();
    assert_eq!(a, b, "same input, byte-identical document");
    let doc = nkt_trace::json::parse(&a).expect("profile json parses");
    assert_eq!(
        doc.get("schema").and_then(nkt_trace::json::Value::as_str),
        Some("nkt-prof-1")
    );
    assert_eq!(doc.get("ranks").and_then(nkt_trace::json::Value::as_f64), Some(2.0));
    let wait = doc.get("total_wait").and_then(nkt_trace::json::Value::as_f64).unwrap();
    assert!((wait - 1.5).abs() < 1e-12);
}
