//! mpiP-style MPI time attribution, the communication matrix, and
//! per-stage load-imbalance statistics — all on the **virtual**
//! timeline, so every number here is bit-reproducible across runs of
//! the same seeded simulation.

use crate::model::PRank;

/// Per-op MPI attribution across all ranks (one row of the profile's
/// Table-2-style attribution table).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStat {
    /// Op name: a collective (`alltoall`, `allreduce`, `barrier`, `gs`,
    /// `quiesce`, ...) or `p2p` for raw point-to-point traffic.
    pub op: String,
    /// Collective invocations (count of `mpi`-cat spans); for pure p2p
    /// ops this equals the send count.
    pub calls: u64,
    /// Σ virtual duration of the op's collective windows (seconds).
    pub vtime: f64,
    /// Messages sent under this op label.
    pub sends: u64,
    /// Payload bytes sent.
    pub send_bytes: u64,
    /// Σ sender-side virtual time (protocol overhead).
    pub send_time: f64,
    /// Messages received.
    pub recvs: u64,
    /// Σ receiver-side virtual time (wait + protocol overhead).
    pub recv_time: f64,
    /// Σ receiver idle time blocked on the wire (the mpiP wait time).
    pub wait: f64,
    /// Σ wire latency of matched messages: arrival − sender completion.
    pub wire: f64,
    /// Receives whose sender was late (`wait > 0`).
    pub late: u64,
}

/// One cell of the communication matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCell {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Messages sent on this edge.
    pub msgs: u64,
    /// Payload bytes sent on this edge.
    pub bytes: u64,
}

/// Load-imbalance statistics for one stage across ranks, on the virtual
/// timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Stage name (`NonLinear`, `PressureSolve`, ...).
    pub stage: String,
    /// Per-rank virtual seconds, index-aligned with the profile's rank
    /// list.
    pub per_rank: Vec<f64>,
    /// Σ per-stage CPU seconds from replay spans' `cpu` args (0 when the
    /// source spans carry none); `vtime − cpu` is network idle.
    pub cpu: f64,
    /// Minimum across ranks.
    pub min: f64,
    /// Median across ranks.
    pub median: f64,
    /// Maximum across ranks.
    pub max: f64,
    /// Mean across ranks.
    pub mean: f64,
    /// `max / mean` (1.0 when perfectly balanced or the stage is empty).
    pub imbalance: f64,
}

impl StageStat {
    /// Rank holding the stage maximum (lowest such rank on ties) as an
    /// index into the profile's rank list.
    pub fn slowest_index(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.per_rank.iter().enumerate() {
            if v > self.per_rank[best] {
                best = i;
            }
        }
        best
    }
}

/// Builds the per-op attribution table, sorted by op name.
pub fn op_stats(ranks: &[PRank]) -> Vec<OpStat> {
    // (src, dst, seq) → sender-side completion time, for wire latency.
    let mut send_end: Vec<((usize, usize, u64), f64)> = Vec::new();
    for r in ranks {
        for s in &r.spans {
            if s.cat == "mpi.p2p.send" {
                if let (Some(peer), Some(seq)) = (s.arg("peer"), s.arg("seq")) {
                    send_end.push(((r.rank, peer as usize, seq as u64), s.vt1));
                }
            }
        }
    }
    let mut ops: Vec<OpStat> = Vec::new();
    let entry = |ops: &mut Vec<OpStat>, name: &str| -> usize {
        match ops.iter().position(|o| o.op == name) {
            Some(i) => i,
            None => {
                ops.push(OpStat { op: name.to_string(), ..OpStat::default() });
                ops.len() - 1
            }
        }
    };
    for r in ranks {
        for s in &r.spans {
            match s.cat.as_str() {
                "mpi" => {
                    let i = entry(&mut ops, &s.name);
                    ops[i].calls += 1;
                    ops[i].vtime += s.vdur().unwrap_or(0.0);
                }
                "mpi.p2p.send" => {
                    let i = entry(&mut ops, &s.name);
                    ops[i].sends += 1;
                    ops[i].send_bytes += s.arg("bytes").unwrap_or(0.0) as u64;
                    ops[i].send_time += s.vdur().unwrap_or(0.0);
                }
                "mpi.p2p.recv" => {
                    let i = entry(&mut ops, &s.name);
                    ops[i].recvs += 1;
                    ops[i].recv_time += s.vdur().unwrap_or(0.0);
                    let wait = s.arg("wait").unwrap_or(0.0);
                    ops[i].wait += wait;
                    if wait > 0.0 {
                        ops[i].late += 1;
                    }
                    if let (Some(peer), Some(seq), Some(arrival)) =
                        (s.arg("peer"), s.arg("seq"), s.arg("arrival"))
                    {
                        let key = (peer as usize, r.rank, seq as u64);
                        if let Some(&(_, end)) = send_end.iter().find(|(k, _)| *k == key) {
                            ops[i].wire += (arrival - end).max(0.0);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // Pure p2p traffic has no collective window: its "time" is the send
    // plus receive side work.
    for o in &mut ops {
        if o.calls == 0 {
            o.calls = o.sends;
            o.vtime = o.send_time + o.recv_time;
        }
    }
    ops.sort_by(|a, b| a.op.cmp(&b.op));
    ops
}

/// Builds the communication matrix from send spans, sorted by
/// `(src, dst)`. Empty edges are omitted.
pub fn comm_matrix(ranks: &[PRank]) -> Vec<MatrixCell> {
    let mut cells: Vec<MatrixCell> = Vec::new();
    for r in ranks {
        for s in &r.spans {
            if s.cat != "mpi.p2p.send" {
                continue;
            }
            let Some(peer) = s.arg("peer") else { continue };
            let (src, dst) = (r.rank, peer as usize);
            let bytes = s.arg("bytes").unwrap_or(0.0) as u64;
            match cells.iter_mut().find(|c| c.src == src && c.dst == dst) {
                Some(c) => {
                    c.msgs += 1;
                    c.bytes += bytes;
                }
                None => cells.push(MatrixCell { src, dst, msgs: 1, bytes }),
            }
        }
    }
    cells.sort_by_key(|c| (c.src, c.dst));
    cells
}

/// Builds per-stage imbalance statistics from `stage`- and `replay`-cat
/// spans that carry virtual endpoints, sorted by stage name. Host-only
/// stage spans contribute nothing here (host times are not reproducible);
/// they feed the printed host table instead.
pub fn stage_stats(ranks: &[PRank]) -> Vec<StageStat> {
    let mut stats: Vec<StageStat> = Vec::new();
    for (idx, r) in ranks.iter().enumerate() {
        for s in &r.spans {
            if s.cat != "stage" && s.cat != "replay" {
                continue;
            }
            let Some(vdur) = s.vdur() else { continue };
            let i = match stats.iter().position(|st| st.stage == s.name) {
                Some(i) => i,
                None => {
                    stats.push(StageStat {
                        stage: s.name.clone(),
                        per_rank: vec![0.0; ranks.len()],
                        cpu: 0.0,
                        min: 0.0,
                        median: 0.0,
                        max: 0.0,
                        mean: 0.0,
                        imbalance: 1.0,
                    });
                    stats.len() - 1
                }
            };
            stats[i].per_rank[idx] += vdur;
            stats[i].cpu += s.arg("cpu").unwrap_or(0.0);
        }
    }
    for st in &mut stats {
        let mut sorted = st.per_rank.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        st.min = sorted[0];
        st.max = sorted[n - 1];
        st.median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        st.mean = st.per_rank.iter().sum::<f64>() / n as f64;
        st.imbalance = if st.mean > 0.0 { st.max / st.mean } else { 1.0 };
    }
    stats.sort_by(|a, b| a.stage.cmp(&b.stage));
    stats
}

/// Host + virtual attributed seconds per stage per rank (for the
/// StageClock self-check and the printed host table; never serialized —
/// host times are not reproducible).
pub fn stage_attributed(ranks: &[PRank]) -> Vec<(String, Vec<f64>)> {
    let mut out: Vec<(String, Vec<f64>)> = Vec::new();
    for (idx, r) in ranks.iter().enumerate() {
        for s in &r.spans {
            if s.cat != "stage" && s.cat != "replay" {
                continue;
            }
            let host = if s.dur_s.is_finite() { s.dur_s } else { 0.0 };
            let t = host + s.vdur().unwrap_or(0.0);
            let i = match out.iter().position(|(n, _)| *n == s.name) {
                Some(i) => i,
                None => {
                    out.push((s.name.clone(), vec![0.0; ranks.len()]));
                    out.len() - 1
                }
            };
            out[i].1[idx] += t;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}
