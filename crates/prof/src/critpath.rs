//! Critical-path extraction over the virtual-time span DAG.
//!
//! Happens-before edges come from matched send/receive pairs: a receive
//! that *waited* (`wait > 0`) was gated by its sender — the receiver's
//! history before the wait cannot have delayed it, so the path jumps to
//! the sending rank at the sender's completion time and continues there.
//! A receive that did not wait imposes no cross-rank constraint. Walking
//! those jumps backward from the rank that finishes last yields the
//! longest dependency chain through the run, which is then decomposed
//! into op/stage buckets by interval intersection with each rank's
//! recorded spans.

use crate::model::{PRank, PSpan};

/// One segment of the critical path, in walk (reverse-time) order.
#[derive(Debug, Clone, PartialEq)]
pub struct CpSegment {
    /// Rank whose timeline this segment lies on (for `wire` segments,
    /// the receiving rank).
    pub rank: usize,
    /// For `wire` segments, the sending rank.
    pub from: Option<usize>,
    /// Segment start (virtual seconds).
    pub t0: f64,
    /// Segment end.
    pub t1: f64,
    /// `local` (execution on `rank`) or `wire` (a message in flight).
    pub kind: &'static str,
}

/// The extracted critical path plus its composition by span bucket.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPath {
    /// Virtual end time of the path (= the slowest rank's finish time).
    pub length: f64,
    /// Rank on which the path ends.
    pub end_rank: usize,
    /// Path segments in reverse-time order (walk order), capped at
    /// [`MAX_SEGMENTS`].
    pub segments: Vec<CpSegment>,
    /// Time per bucket: op names (innermost `mpi` spans first), stage
    /// names, `wire`, and `untracked` — sorted by bucket label.
    pub composition: Vec<(String, f64)>,
}

/// Cap on recorded path segments; the walk itself always terminates
/// (time strictly decreases), this only bounds the report size.
pub const MAX_SEGMENTS: usize = 512;

struct RecvEdge {
    vt1: f64,
    wait: f64,
    peer: usize,
    seq: u64,
    arrival: f64,
}

/// Extracts the critical path. Returns a default (empty) path when no
/// rank recorded any virtual span.
pub fn critical_path(ranks: &[PRank]) -> CriticalPath {
    if ranks.is_empty() {
        return CriticalPath::default();
    }
    // Per-rank end time and happens-before edge tables.
    let ends: Vec<f64> = ranks.iter().map(|r| rank_end(r)).collect();
    let mut recvs: Vec<Vec<RecvEdge>> = Vec::new();
    let mut sends: Vec<Vec<((usize, u64), f64)>> = Vec::new();
    for r in ranks {
        let mut rv = Vec::new();
        let mut sv = Vec::new();
        for s in &r.spans {
            if s.cat == "mpi.p2p.recv" {
                if let (Some(peer), Some(seq), Some(wait), Some(arrival)) =
                    (s.arg("peer"), s.arg("seq"), s.arg("wait"), s.arg("arrival"))
                {
                    rv.push(RecvEdge {
                        vt1: s.vt1,
                        wait,
                        peer: peer as usize,
                        seq: seq as u64,
                        arrival,
                    });
                }
            } else if s.cat == "mpi.p2p.send" {
                if let (Some(peer), Some(seq)) = (s.arg("peer"), s.arg("seq")) {
                    sv.push(((peer as usize, seq as u64), s.vt1));
                }
            }
        }
        rv.sort_by(|a, b| a.vt1.total_cmp(&b.vt1));
        recvs.push(rv);
        sends.push(sv);
    }
    // Start on the rank that finishes last (lowest rank id on ties).
    let mut cur = 0usize;
    for (i, &e) in ends.iter().enumerate() {
        if e > ends[cur] {
            cur = i;
        }
    }
    let mut path = CriticalPath {
        length: ends[cur],
        end_rank: ranks[cur].rank,
        ..CriticalPath::default()
    };
    let mut t = ends[cur];
    while path.segments.len() < MAX_SEGMENTS {
        // Latest receive on `cur` that completed by `t` after waiting:
        // the most recent point where this rank's progress was gated by
        // a peer.
        let gate = recvs[cur].iter().rev().find(|e| e.vt1 <= t && e.wait > 0.0);
        match gate {
            None => {
                if t > 0.0 {
                    path.segments.push(CpSegment {
                        rank: ranks[cur].rank,
                        from: None,
                        t0: 0.0,
                        t1: t,
                        kind: "local",
                    });
                }
                break;
            }
            Some(e) => {
                // Local time resumes at the message *arrival*: the
                // receive-protocol window [arrival, recv end] is work on
                // this rank, only [posted, arrival] was idle.
                if t > e.arrival {
                    path.segments.push(CpSegment {
                        rank: ranks[cur].rank,
                        from: None,
                        t0: e.arrival,
                        t1: t,
                        kind: "local",
                    });
                }
                // The matching send's completion on the peer.
                let sender = ranks.iter().position(|r| r.rank == e.peer);
                let send_t = sender.and_then(|si| {
                    sends[si]
                        .iter()
                        .find(|&&(k, _)| k == (ranks[cur].rank, e.seq))
                        .map(|&(_, vt1)| vt1)
                });
                let Some(si) = sender else { break };
                let Some(send_t) = send_t else { break };
                path.segments.push(CpSegment {
                    rank: ranks[cur].rank,
                    from: Some(e.peer),
                    t0: send_t,
                    t1: e.arrival,
                    kind: "wire",
                });
                // Monotonicity guard: virtual time must strictly
                // decrease or the walk could cycle on malformed input.
                if send_t >= t {
                    break;
                }
                cur = si;
                t = send_t;
            }
        }
    }
    path.composition = compose(ranks, &path.segments);
    path
}

/// A rank's final virtual time: the maximum finite span endpoint.
fn rank_end(r: &PRank) -> f64 {
    let mut end = 0.0f64;
    for s in &r.spans {
        if s.vt1.is_finite() {
            end = end.max(s.vt1);
        }
    }
    end
}

/// Decomposes path segments into labeled time buckets. Local segments
/// intersect the owning rank's MPI spans first — collective windows and
/// p2p protocol records, innermost (deepest) span winning where they
/// nest, like the allreduce inside a gs exchange — then `stage`/`replay`
/// spans; any remainder is `untracked`. Wire segments land in the `wire`
/// bucket.
fn compose(ranks: &[PRank], segments: &[CpSegment]) -> Vec<(String, f64)> {
    let mut buckets: Vec<(String, f64)> = Vec::new();
    let add = |buckets: &mut Vec<(String, f64)>, label: &str, dt: f64| {
        if dt <= 0.0 {
            return;
        }
        match buckets.iter_mut().find(|(l, _)| l == label) {
            Some((_, v)) => *v += dt,
            None => buckets.push((label.to_string(), dt)),
        }
    };
    for seg in segments {
        if seg.kind == "wire" {
            add(&mut buckets, "wire", seg.t1 - seg.t0);
            continue;
        }
        let Some(r) = ranks.iter().find(|r| r.rank == seg.rank) else {
            add(&mut buckets, "untracked", seg.t1 - seg.t0);
            continue;
        };
        // Deepest-first attribution over the virtual interval tree.
        let mut remaining = vec![(seg.t0, seg.t1)];
        for cats in [&["mpi", "mpi.p2p.send", "mpi.p2p.recv"][..], &["stage", "replay"][..]] {
            let mut spans: Vec<&PSpan> = r
                .spans
                .iter()
                .filter(|s| cats.contains(&s.cat.as_str()) && s.vdur().is_some())
                .collect();
            spans.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.vt0.total_cmp(&b.vt0)));
            for s in spans {
                let mut overlap = 0.0;
                for &(a, b) in &remaining {
                    overlap += (b.min(s.vt1) - a.max(s.vt0)).max(0.0);
                }
                if overlap > 0.0 {
                    add(&mut buckets, &s.name, overlap);
                    remaining = subtract_all(&remaining, (s.vt0, s.vt1));
                }
            }
        }
        let leftover: f64 = remaining.iter().map(|(a, b)| b - a).sum();
        add(&mut buckets, "untracked", leftover);
    }
    buckets.sort_by(|a, b| a.0.cmp(&b.0));
    buckets
}

/// Removes `cut` from every interval in `set`.
fn subtract_all(set: &[(f64, f64)], cut: (f64, f64)) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &(a, b) in set {
        if cut.1 <= a || cut.0 >= b {
            out.push((a, b));
            continue;
        }
        if cut.0 > a {
            out.push((a, cut.0));
        }
        if cut.1 < b {
            out.push((cut.1, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtract_splits_and_clips() {
        assert_eq!(subtract_all(&[(0.0, 10.0)], (3.0, 4.0)), vec![(0.0, 3.0), (4.0, 10.0)]);
        assert_eq!(subtract_all(&[(0.0, 2.0)], (5.0, 6.0)), vec![(0.0, 2.0)]);
        assert_eq!(subtract_all(&[(0.0, 2.0)], (0.0, 2.0)), Vec::<(f64, f64)>::new());
        assert_eq!(subtract_all(&[(1.0, 3.0), (5.0, 7.0)], (2.0, 6.0)), vec![(1.0, 2.0), (6.0, 7.0)]);
    }
}
