//! The profiler's own event model, decoupled from `nkt-trace`'s
//! recording types so the same analysis runs over in-process
//! [`ThreadData`] and over a `TRACE_<run>.json` read back from disk.

use nkt_trace::json::{parse, Value};
use nkt_trace::ThreadData;

/// One span on a rank's timeline. Virtual times are model seconds
/// (`NaN` = absent); host duration is real seconds (`NaN` for
/// virtual-only spans such as replay tiles and p2p records).
#[derive(Debug, Clone)]
pub struct PSpan {
    /// Span name (stage name, collective op, or the op label of a p2p
    /// message).
    pub name: String,
    /// Category: `stage`, `step`, `mpi`, `mpi.p2p.send`, `mpi.p2p.recv`,
    /// `replay`, ...
    pub cat: String,
    /// Host duration in seconds (`NaN` = virtual-only).
    pub dur_s: f64,
    /// Virtual start (seconds, `NaN` = none).
    pub vt0: f64,
    /// Virtual end.
    pub vt1: f64,
    /// Nesting depth at entry on the recording thread.
    pub depth: u32,
    /// Structured arguments (`peer`, `bytes`, `seq`, `wait`, ...).
    pub args: Vec<(String, f64)>,
}

impl PSpan {
    /// Virtual duration, when both endpoints are present.
    pub fn vdur(&self) -> Option<f64> {
        (self.vt0.is_finite() && self.vt1.is_finite()).then(|| self.vt1 - self.vt0)
    }

    /// Structured-argument lookup.
    pub fn arg(&self, name: &str) -> Option<f64> {
        self.args.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Everything one rank recorded, in recording order.
#[derive(Debug, Clone)]
pub struct PRank {
    /// MPI rank id.
    pub rank: usize,
    /// The rank's spans in recording (= span-exit) order.
    pub spans: Vec<PSpan>,
}

/// Builds rank timelines from in-process collected thread data.
/// Threads without a rank tag (the main thread, helpers) are dropped;
/// several `ThreadData` entries for the same rank (checkpoint restarts,
/// repeated flushes) are concatenated in tid order, which
/// `nkt_trace::take_collected` has already made deterministic.
pub fn from_threads(threads: &[ThreadData]) -> Vec<PRank> {
    let mut out: Vec<PRank> = Vec::new();
    for t in threads {
        let Some(rank) = t.rank else { continue };
        let spans = t.events.iter().map(|e| PSpan {
            name: e.name.to_string(),
            cat: e.cat.to_string(),
            dur_s: e.dur_us * 1e-6,
            vt0: e.vt0,
            vt1: e.vt1,
            depth: e.depth,
            args: e.args.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        });
        match out.iter_mut().find(|r| r.rank == rank) {
            Some(r) => r.spans.extend(spans),
            None => out.push(PRank { rank, spans: spans.collect() }),
        }
    }
    out.sort_by_key(|r| r.rank);
    out
}

/// Builds rank timelines from an exported `TRACE_<run>.json` document
/// (the offline path). Only events recorded by rank-tagged threads are
/// kept — the `metrics.per_thread` table provides the tid → rank map.
pub fn from_trace_json(text: &str) -> Result<Vec<PRank>, String> {
    let doc = parse(text)?;
    let per_thread = doc
        .get("metrics")
        .and_then(|m| m.get("per_thread"))
        .and_then(Value::as_arr)
        .ok_or("trace json: no metrics.per_thread table")?;
    let mut rank_of_tid: Vec<(f64, usize)> = Vec::new();
    for t in per_thread {
        let tid = t.get("tid").and_then(Value::as_f64).ok_or("per_thread entry without tid")?;
        if let Some(rank) = t.get("rank").and_then(Value::as_f64) {
            rank_of_tid.push((tid, rank as usize));
        }
    }
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace json: no traceEvents array")?;
    let mut out: Vec<PRank> = Vec::new();
    for e in events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue; // metadata records
        }
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let Some(&(_, rank)) = rank_of_tid.iter().find(|(t, _)| *t == tid) else {
            continue;
        };
        let pid = e.get("pid").and_then(Value::as_f64).unwrap_or(0.0);
        let args = e.get("args");
        let get_arg = |k: &str| args.and_then(|a| a.get(k)).and_then(Value::as_f64);
        // Host spans (pid 0) carry a real duration; virtual-only spans
        // (pid 1) reuse ts/dur for *model* microseconds, so their host
        // duration is absent. Virtual endpoints always come from the
        // full-precision `vt0`/`vt1` args, never from the rounded ts.
        let dur_s = if pid == 0.0 {
            e.get("dur").and_then(Value::as_f64).unwrap_or(f64::NAN) * 1e-6
        } else {
            f64::NAN
        };
        let mut extra = Vec::new();
        if let Some(Value::Obj(fields)) = args {
            for (k, v) in fields {
                if k == "depth" || k == "vt0" || k == "vt1" {
                    continue;
                }
                if let Some(x) = v.as_f64() {
                    extra.push((k.clone(), x));
                }
            }
        }
        let span = PSpan {
            name: e.get("name").and_then(Value::as_str).unwrap_or("").to_string(),
            cat: e.get("cat").and_then(Value::as_str).unwrap_or("").to_string(),
            dur_s,
            vt0: get_arg("vt0").unwrap_or(f64::NAN),
            vt1: get_arg("vt1").unwrap_or(f64::NAN),
            depth: get_arg("depth").unwrap_or(0.0) as u32,
            args: extra,
        };
        match out.iter_mut().find(|r| r.rank == rank) {
            Some(r) => r.spans.push(span),
            None => out.push(PRank { rank, spans: vec![span] }),
        }
    }
    out.sort_by_key(|r| r.rank);
    Ok(out)
}
