//! # nkt-prof — cluster-wide post-run profiler over nkt-trace
//!
//! The paper's question — *is a PC/Linux cluster a real DNS platform?* —
//! is answered with time attribution tables (Tables 2 and 3): where do
//! the seconds of a NekTar-F or NekTar-ALE step actually go, and how
//! much of that is the network's fault? This crate reproduces that kind
//! of analysis automatically for every traced run:
//!
//! * **MPI time attribution** (mpiP-style): per-op virtual time split
//!   into protocol overhead, wire latency, and receiver wait, with
//!   late-sender / late-receiver classification per message.
//! * **Communication matrix**: messages and bytes per `(src, dst)` rank
//!   pair — the transpose-heavy NekTar-F pattern is visible at a glance.
//! * **Load imbalance**: per-stage min/median/max/imbalance-ratio across
//!   ranks on the virtual timeline, naming the slowest rank.
//! * **Critical path**: the longest happens-before chain through the
//!   span DAG (edges = matched send/receive pairs that waited),
//!   decomposed into op/stage buckets.
//!
//! ## Data flow
//!
//! ```text
//! nkt-mpi / solvers ──spans──▶ nkt-trace ──┬─ take_collected() ─▶ Profile::build      (in-process)
//!                                          └─ TRACE_<run>.json ─▶ Profile::from_trace_json (offline)
//!                                                                    │
//!                                          results/PROF_<run>.json ◀─┴─▶ Profile::report()
//! ```
//!
//! Everything serialized lives on the **virtual** timeline, so
//! `PROF_<run>.json` is byte-identical across runs of the same seeded
//! simulation; host wall times appear only in the printed report and in
//! the [`Profile::stage_ledger_check`] self-check against `StageClock`
//! ledgers.
//!
//! ## Configuration
//!
//! | env var    | values            | effect                                  |
//! |------------|-------------------|-----------------------------------------|
//! | `NKT_PROF` | `1` \| `on` \| `true` | solvers profile the run and write `PROF_<run>.json` |
//!
//! `NKT_PROF=1` implies span recording: [`prepare`] raises the trace
//! mode to [`nkt_trace::TraceMode::Spans`] so the profiler's inputs
//! exist even when `NKT_TRACE` was left off.

pub mod attrib;
pub mod critpath;
pub mod model;
pub mod profile;

pub use attrib::{comm_matrix, op_stats, stage_stats, MatrixCell, OpStat, StageStat};
pub use critpath::{critical_path, CpSegment, CriticalPath, MAX_SEGMENTS};
pub use model::{from_threads, from_trace_json, PRank, PSpan};
pub use profile::Profile;

use std::sync::OnceLock;

/// Whether profiling was requested via `NKT_PROF` (`1`, `on`, `true`;
/// anything else — including unset — is off). Latched on first call so
/// a run is profiled consistently end to end.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("NKT_PROF")
            .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true"))
            .unwrap_or(false)
    })
}

/// Arms the trace layer for profiling: raises the recording mode to
/// spans (the profiler needs p2p/collective/stage spans, not just
/// counters). Call once at solver startup when [`enabled`] is true.
pub fn prepare() {
    if nkt_trace::mode() < nkt_trace::TraceMode::Spans {
        nkt_trace::set_mode(nkt_trace::TraceMode::Spans);
    }
}

/// Filesystem-safe run name: lowercase alphanumerics, everything else
/// collapsed to single underscores (`"RoadRunner eth."` → `"roadrunner_eth"`).
pub fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// The solver-side convenience wrapper: when [`enabled`], drains the
/// span collector, builds the profile for `run`, prints the report, and
/// writes `PROF_<run>.json` (returning its path). A no-op returning
/// `None` when `NKT_PROF` is off, so callers can wire it in
/// unconditionally.
pub fn profile_and_write(run: &str) -> Option<std::path::PathBuf> {
    if !enabled() {
        return None;
    }
    let threads = nkt_trace::take_collected();
    let p = Profile::build(run, &threads);
    print!("{}", p.report());
    match p.write() {
        Ok(path) => {
            println!("prof: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("prof: cannot write PROF_{run}.json: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_raises_mode_to_spans() {
        // Whatever the ambient mode, after prepare() spans are recorded.
        prepare();
        assert_eq!(nkt_trace::mode(), nkt_trace::TraceMode::Spans);
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(slug("RoadRunner eth."), "roadrunner_eth");
        assert_eq!(slug("Muses, MPICH"), "muses_mpich");
        assert_eq!(slug("T3E"), "t3e");
        assert_eq!(slug("  weird -- name  "), "weird_name");
    }
}
