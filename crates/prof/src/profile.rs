//! The assembled profile: construction from either trace source, the
//! deterministic `PROF_<run>.json` writer, the human-readable report,
//! and the StageClock self-check.

use crate::attrib::{comm_matrix, op_stats, stage_attributed, stage_stats, MatrixCell, OpStat, StageStat};
use crate::critpath::{critical_path, CriticalPath};
use crate::model::{from_threads, from_trace_json, PRank};
use nkt_trace::{json_f64_exact, ThreadData};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A complete post-run profile of one traced run.
///
/// Everything serialized by [`Profile::to_json`] lives on the virtual
/// timeline and is therefore byte-identical across runs of the same
/// seeded simulation; host-time material (per-stage host sums) is kept
/// only for [`Profile::report`] and [`Profile::stage_ledger_check`].
#[derive(Debug, Clone)]
pub struct Profile {
    /// Run name (`PROF_<run>.json`).
    pub run: String,
    /// Rank ids present, ascending.
    pub ranks: Vec<usize>,
    /// Final virtual time per rank (same order as `ranks`).
    pub rank_ends: Vec<f64>,
    /// Per-op MPI attribution, sorted by op.
    pub ops: Vec<OpStat>,
    /// Communication matrix, sorted by `(src, dst)`; empty edges omitted.
    pub matrix: Vec<MatrixCell>,
    /// Per-stage imbalance on the virtual timeline, sorted by stage.
    pub stages: Vec<StageStat>,
    /// The longest dependency chain through the run.
    pub critical_path: CriticalPath,
    /// Host+virtual attributed seconds per stage per rank (report and
    /// ledger check only — **not** serialized).
    pub stage_attrib: Vec<(String, Vec<f64>)>,
}

impl Profile {
    /// Builds a profile from in-process collected thread data (the
    /// in-memory twin of the offline JSON path).
    pub fn build(run: &str, threads: &[ThreadData]) -> Profile {
        Self::from_ranks(run, from_threads(threads))
    }

    /// Builds a profile from an exported `TRACE_<run>.json` document.
    pub fn from_trace_json(run: &str, text: &str) -> Result<Profile, String> {
        Ok(Self::from_ranks(run, from_trace_json(text)?))
    }

    fn from_ranks(run: &str, ranks: Vec<PRank>) -> Profile {
        let rank_ends = ranks
            .iter()
            .map(|r| {
                r.spans.iter().filter(|s| s.vt1.is_finite()).fold(0.0f64, |m, s| m.max(s.vt1))
            })
            .collect();
        Profile {
            run: run.to_string(),
            rank_ends,
            ops: op_stats(&ranks),
            matrix: comm_matrix(&ranks),
            stages: stage_stats(&ranks),
            critical_path: critical_path(&ranks),
            stage_attrib: stage_attributed(&ranks),
            ranks: ranks.into_iter().map(|r| r.rank).collect(),
        }
    }

    /// Σ receiver wait time across all ops (the mpiP headline number).
    pub fn total_wait(&self) -> f64 {
        // max(0) also normalizes the empty sum, which folds from -0.0.
        self.ops.iter().map(|o| o.wait).sum::<f64>().max(0.0)
    }

    /// Wait share: total wait over total rank-time (0 when nothing ran).
    pub fn wait_share(&self) -> f64 {
        let total: f64 = self.rank_ends.iter().sum();
        if total > 0.0 {
            self.total_wait() / total
        } else {
            0.0
        }
    }

    /// Serializes the deterministic part of the profile. The output is
    /// valid JSON (parseable by `nkt_trace::json::parse`) with fixed key
    /// order, sorted collections, and full-round-trip float formatting —
    /// two runs of the same seeded simulation produce byte-identical
    /// documents.
    pub fn to_json(&self) -> String {
        let f = json_f64_exact;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"nkt-prof-1\",");
        let _ = writeln!(out, "  \"run\": {},", json_str(&self.run));
        let _ = writeln!(out, "  \"ranks\": {},", self.ranks.len());
        let _ = writeln!(out, "  \"total_wait\": {},", f(self.total_wait()));
        let _ = writeln!(out, "  \"wait_share\": {},", f(self.wait_share()));
        out.push_str("  \"rank_ends\": [");
        for (i, (&r, &e)) in self.ranks.iter().zip(&self.rank_ends).enumerate() {
            let c = if i + 1 < self.ranks.len() { ", " } else { "" };
            let _ = write!(out, "{{\"rank\": {r}, \"end\": {}}}{c}", f(e));
        }
        out.push_str("],\n  \"ops\": [\n");
        for (i, o) in self.ops.iter().enumerate() {
            let c = if i + 1 < self.ops.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"op\": {}, \"calls\": {}, \"vtime\": {}, \"sends\": {}, \"send_bytes\": {}, \"send_time\": {}, \"recvs\": {}, \"recv_time\": {}, \"wait\": {}, \"wire\": {}, \"late\": {}}}{c}",
                json_str(&o.op),
                o.calls,
                f(o.vtime),
                o.sends,
                o.send_bytes,
                f(o.send_time),
                o.recvs,
                f(o.recv_time),
                f(o.wait),
                f(o.wire),
                o.late,
            );
        }
        out.push_str("  ],\n  \"matrix\": [\n");
        for (i, m) in self.matrix.iter().enumerate() {
            let c = if i + 1 < self.matrix.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"src\": {}, \"dst\": {}, \"msgs\": {}, \"bytes\": {}}}{c}",
                m.src, m.dst, m.msgs, m.bytes
            );
        }
        out.push_str("  ],\n  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let c = if i + 1 < self.stages.len() { "," } else { "" };
            let per_rank: Vec<String> = s.per_rank.iter().map(|&v| f(v)).collect();
            let _ = writeln!(
                out,
                "    {{\"stage\": {}, \"min\": {}, \"median\": {}, \"max\": {}, \"mean\": {}, \"imbalance\": {}, \"cpu\": {}, \"per_rank\": [{}]}}{c}",
                json_str(&s.stage),
                f(s.min),
                f(s.median),
                f(s.max),
                f(s.mean),
                f(s.imbalance),
                f(s.cpu),
                per_rank.join(", "),
            );
        }
        let cp = &self.critical_path;
        out.push_str("  ],\n  \"critical_path\": {\n");
        let _ = writeln!(out, "    \"length\": {},", f(cp.length));
        let _ = writeln!(out, "    \"end_rank\": {},", cp.end_rank);
        out.push_str("    \"segments\": [\n");
        for (i, s) in cp.segments.iter().enumerate() {
            let c = if i + 1 < cp.segments.len() { "," } else { "" };
            let from = s.from.map_or("null".to_string(), |r| r.to_string());
            let _ = writeln!(
                out,
                "      {{\"rank\": {}, \"kind\": {}, \"from\": {from}, \"t0\": {}, \"t1\": {}}}{c}",
                s.rank,
                json_str(s.kind),
                f(s.t0),
                f(s.t1),
            );
        }
        out.push_str("    ],\n    \"composition\": [");
        for (i, (label, t)) in cp.composition.iter().enumerate() {
            let c = if i + 1 < cp.composition.len() { ", " } else { "" };
            let _ = write!(out, "{{\"label\": {}, \"time\": {}}}{c}", json_str(label), f(*t));
        }
        out.push_str("]\n  }\n}\n");
        out
    }

    /// Writes `PROF_<run>.json` into `dir`, returning the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("PROF_{}.json", self.run));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `PROF_<run>.json` into the configured results directory
    /// (`NKT_TRACE_DIR` if set, else `<workspace>/results`).
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("NKT_TRACE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| nkt_trace::results_dir());
        self.write_to(&dir)
    }

    /// Cross-checks the per-stage attributed times (host + virtual span
    /// sums across ranks) against an externally kept ledger (e.g. merged
    /// `StageClock` totals). Returns the worst relative error over
    /// ledger entries above `min_secs`; stages the spans never saw count
    /// as 100% error.
    pub fn stage_ledger_check(&self, ledger: &[(&str, f64)], min_secs: f64) -> f64 {
        let mut worst = 0.0f64;
        for &(name, want) in ledger {
            if want <= min_secs {
                continue;
            }
            let got: f64 = self
                .stage_attrib
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, per_rank)| per_rank.iter().sum())
                .unwrap_or(0.0);
            worst = worst.max((got - want).abs() / want);
        }
        worst
    }

    /// Renders the human-readable report: the Table-2/3-style MPI
    /// attribution table, the comm matrix, stage imbalance, and the
    /// critical-path composition.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "nkt-prof — run '{}', {} rank(s)", self.run, self.ranks.len());
        let total_rank_time: f64 = self.rank_ends.iter().sum();
        let _ = writeln!(
            out,
            "total rank-time {:.6} s, wait {:.6} s ({:.1}% of rank-time)",
            total_rank_time,
            self.total_wait(),
            100.0 * self.wait_share(),
        );

        if !self.ops.is_empty() {
            let _ = writeln!(out, "\nMPI time attribution (virtual seconds, all ranks)");
            let _ = writeln!(
                out,
                "  {:<12} {:>7} {:>12} {:>12} {:>7} {:>12} {:>8} {:>10} {:>6}",
                "op", "calls", "time", "wait", "wait%", "wire", "msgs", "KB", "late"
            );
            for o in &self.ops {
                let waitpct = if o.vtime > 0.0 { 100.0 * o.wait / o.vtime } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {:<12} {:>7} {:>12.6} {:>12.6} {:>6.1}% {:>12.6} {:>8} {:>10.1} {:>6}",
                    o.op,
                    o.calls,
                    o.vtime,
                    o.wait,
                    waitpct,
                    o.wire,
                    o.sends,
                    o.send_bytes as f64 / 1024.0,
                    o.late,
                );
            }
        }

        if !self.matrix.is_empty() {
            let _ = writeln!(out, "\nCommunication matrix (KB sent, src rows -> dst cols)");
            let _ = write!(out, "  {:>5}", "");
            for &d in &self.ranks {
                let _ = write!(out, " {d:>9}");
            }
            out.push('\n');
            for &s in &self.ranks {
                let _ = write!(out, "  {s:>5}");
                for &d in &self.ranks {
                    match self.matrix.iter().find(|c| c.src == s && c.dst == d) {
                        Some(c) => {
                            let _ = write!(out, " {:>9.1}", c.bytes as f64 / 1024.0);
                        }
                        None => {
                            let _ = write!(out, " {:>9}", "-");
                        }
                    }
                }
                out.push('\n');
            }
        }

        if !self.stages.is_empty() {
            let _ = writeln!(out, "\nStage imbalance (virtual timeline, seconds per rank)");
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12} {:>12} {:>8} {:>8}",
                "stage", "min", "median", "max", "imb", "slowest"
            );
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>12.6} {:>12.6} {:>12.6} {:>8.3} {:>8}",
                    s.stage,
                    s.min,
                    s.median,
                    s.max,
                    s.imbalance,
                    self.ranks[s.slowest_index()],
                );
            }
        }

        if !self.stage_attrib.is_empty() {
            let _ = writeln!(out, "\nStage attributed time (host+virtual, summed over ranks)");
            for (name, per_rank) in &self.stage_attrib {
                let _ = writeln!(out, "  {:<16} {:>12.6}", name, per_rank.iter().sum::<f64>());
            }
        }

        let cp = &self.critical_path;
        if !cp.segments.is_empty() {
            let _ = writeln!(
                out,
                "\nCritical path: {:.6} s ending on rank {} ({} segment(s))",
                cp.length,
                cp.end_rank,
                cp.segments.len(),
            );
            for (label, t) in &cp.composition {
                let pct = if cp.length > 0.0 { 100.0 * t / cp.length } else { 0.0 };
                let _ = writeln!(out, "  {label:<16} {t:>12.6} s  {pct:>5.1}%");
            }
        }
        out
    }
}

/// JSON string escape (same rules as the trace exporter).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
