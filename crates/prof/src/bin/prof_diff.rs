//! Diffs a fresh profiler run against the committed baselines in
//! `results/PROF_*.json` and fails (exit 1) when communication health
//! regresses: the run-wide wait share (receiver idle / total rank-time)
//! or any stage's imbalance ratio grows beyond tolerance.
//!
//! Profiles are built from deterministic virtual-time quantities, so —
//! unlike bench medians — a baseline mismatch here means the *code
//! path* changed, not the machine. The tolerance band exists for
//! intentional small drifts (new message, reordered stage), not noise.
//!
//! ```sh
//! NKT_PROF=1 NKT_TRACE_DIR=/tmp/fresh cargo run --release --example fourier_dns -- --np 4
//! cargo run -p nkt-prof --bin prof_diff -- --fresh /tmp/fresh
//! ```
//!
//! `scripts/prof_diff` wraps both steps.

use nkt_trace::json::{parse, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The gated health numbers read back from one `PROF_*.json`.
#[derive(Debug, Clone)]
struct Health {
    wait_share: f64,
    /// `(stage, imbalance)` rows, in file order (already name-sorted).
    stages: Vec<(String, f64)>,
}

/// Comparison verdict for one gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Ok,
    Better,
    Regressed,
}

/// A metric regresses when the fresh value exceeds the baseline by more
/// than `abs + rel * |baseline|`. Wait share and imbalance are both
/// "lower is better" ratios, so one band fits both.
fn judge(base: f64, fresh: f64, abs: f64, rel: f64) -> Verdict {
    let tol = abs + rel * base.abs();
    if fresh > base + tol {
        Verdict::Regressed
    } else if fresh < base - tol {
        Verdict::Better
    } else {
        Verdict::Ok
    }
}

fn load_health(path: &Path) -> Result<Health, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let wait_share = doc
        .get("wait_share")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{}: no \"wait_share\"", path.display()))?;
    let mut stages = Vec::new();
    if let Some(arr) = doc.get("stages").and_then(Value::as_arr) {
        for s in arr {
            let name = s
                .get("stage")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{}: stage without a name", path.display()))?;
            let imb = s
                .get("imbalance")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{}: stage {name} without \"imbalance\"", path.display()))?;
            stages.push((name.to_string(), imb));
        }
    }
    Ok(Health { wait_share, stages })
}

struct Args {
    baseline: PathBuf,
    fresh: PathBuf,
    abs: f64,
    rel: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: prof_diff --fresh <dir> [--baseline <dir>] [--abs <frac>] [--rel <frac>]\n\
         \n\
         --fresh     directory holding the fresh PROF_*.json run (required)\n\
         --baseline  committed baselines (default: <workspace>/results)\n\
         --abs       absolute tolerance on gated ratios (default: 0.02)\n\
         --rel       relative tolerance on gated ratios (default: 0.10 = 10%)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut fresh = None;
    let mut abs = 0.02;
    let mut rel = 0.10;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("prof_diff: {name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(val("--baseline"))),
            "--fresh" => fresh = Some(PathBuf::from(val("--fresh"))),
            "--abs" => abs = val("--abs").parse().unwrap_or_else(|_| usage()),
            "--rel" => rel = val("--rel").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    Args {
        baseline: baseline.unwrap_or_else(nkt_trace::results_dir),
        fresh: fresh.unwrap_or_else(|| usage()),
        abs,
        rel,
    }
}

fn prof_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("PROF_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

fn label(v: Verdict, regressions: &mut usize) -> &'static str {
    match v {
        Verdict::Ok => "ok",
        Verdict::Better => "better",
        Verdict::Regressed => {
            *regressions += 1;
            "REGRESSED"
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let fresh_files = prof_files(&args.fresh);
    if fresh_files.is_empty() {
        eprintln!("prof_diff: no PROF_*.json in {}", args.fresh.display());
        return ExitCode::from(2);
    }
    println!(
        "prof_diff: fresh {} vs baseline {} (tolerance: {:.3} abs + {:.0}% rel)",
        args.fresh.display(),
        args.baseline.display(),
        args.abs,
        100.0 * args.rel
    );

    let mut regressions = 0usize;
    for fresh_path in &fresh_files {
        let fname = fresh_path.file_name().unwrap().to_str().unwrap();
        let base_path = args.baseline.join(fname);
        let fresh = match load_health(fresh_path) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("prof_diff: {e}");
                return ExitCode::from(2);
            }
        };
        if !base_path.exists() {
            println!("\n{fname}: no committed baseline — skipped");
            continue;
        }
        let base = match load_health(&base_path) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("prof_diff: {e}");
                return ExitCode::from(2);
            }
        };
        println!("\n{fname}:");
        println!("{:<32} {:>10} {:>10}  verdict", "metric", "base", "fresh");
        let v = judge(base.wait_share, fresh.wait_share, args.abs, args.rel);
        println!(
            "{:<32} {:>10.4} {:>10.4}  {}",
            "wait_share",
            base.wait_share,
            fresh.wait_share,
            label(v, &mut regressions)
        );
        for (stage, base_imb) in &base.stages {
            let Some((_, fresh_imb)) = fresh.stages.iter().find(|(s, _)| s == stage) else {
                println!("{:<32} {:>10.4} {:>10}  MISSING from fresh run", format!("imbalance[{stage}]"), base_imb, "-");
                continue;
            };
            let v = judge(*base_imb, *fresh_imb, args.abs, args.rel);
            println!(
                "{:<32} {:>10.4} {:>10.4}  {}",
                format!("imbalance[{stage}]"),
                base_imb,
                fresh_imb,
                label(v, &mut regressions)
            );
        }
        for (stage, imb) in &fresh.stages {
            if !base.stages.iter().any(|(s, _)| s == stage) {
                println!("{:<32} {:>10} {:>10.4}  new (no baseline)", format!("imbalance[{stage}]"), "-", imb);
            }
        }
    }

    if regressions > 0 {
        println!("\nprof_diff: {regressions} regression(s) beyond the tolerance band");
        ExitCode::FAILURE
    } else {
        println!("\nprof_diff: OK — no regressions");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_combines_abs_and_rel() {
        // base 0.10, abs 0.02, rel 10% → tol 0.03.
        assert_eq!(judge(0.10, 0.129, 0.02, 0.10), Verdict::Ok);
        assert_eq!(judge(0.10, 0.131, 0.02, 0.10), Verdict::Regressed);
        assert_eq!(judge(0.10, 0.069, 0.02, 0.10), Verdict::Better);
    }

    #[test]
    fn zero_baseline_still_has_an_absolute_band() {
        // A perfectly balanced baseline (wait_share 0) must tolerate a
        // hair of new communication without failing CI.
        assert_eq!(judge(0.0, 0.019, 0.02, 0.10), Verdict::Ok);
        assert_eq!(judge(0.0, 0.021, 0.02, 0.10), Verdict::Regressed);
    }

    #[test]
    fn load_health_reads_the_prof_schema() {
        let dir = std::env::temp_dir().join("nkt_prof_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("PROF_sample.json");
        std::fs::write(
            &p,
            r#"{"schema":"nkt-prof-1","run":"sample","wait_share":0.125,
                "stages":[{"stage":"NonLinear","imbalance":1.25},
                          {"stage":"PressureSolve","imbalance":1.0}]}"#,
        )
        .unwrap();
        let h = load_health(&p).unwrap();
        assert_eq!(h.wait_share, 0.125);
        assert_eq!(h.stages.len(), 2);
        assert_eq!(h.stages[0], ("NonLinear".to_string(), 1.25));
        std::fs::remove_file(&p).unwrap();
    }
}
