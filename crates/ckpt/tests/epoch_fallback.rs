//! The coordinated-epoch protocol under damage: a corrupted shard in
//! the newest epoch is CRC-detected on ONE rank, the failure verdict is
//! agreed collectively, and every rank falls back to the previous epoch
//! together; when no epoch survives, the error is a typed
//! [`CkptError::NoValidEpoch`] naming what was tried. Plus a fuzz
//! property: `CkptFile::parse` never panics, whatever the bytes.

use nkt_ckpt::{
    restore_latest, write_epoch, Checkpointable, CkptConfig, CkptError, CkptFile, CkptWriter, Enc,
};
use nkt_net::{cluster, ClusterNetwork, NetId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn net() -> ClusterNetwork {
    cluster(NetId::T3e)
}

fn run<R: Send, F: Fn(&mut nkt_mpi::Comm) -> R + Sync>(
    p: usize,
    net: ClusterNetwork,
    f: F,
) -> Vec<R> {
    nkt_mpi::World::from_env().ranks(p).net(net).run(f)
}

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("nkt_epoch_{label}_{}_{n}", std::process::id()))
}

/// Minimal rank-local state: a payload vector plus a step counter.
struct Toy {
    vals: Vec<f64>,
    step: u64,
}

impl Toy {
    fn at(rank: usize, step: u64) -> Toy {
        Toy { vals: (0..6).map(|i| (rank * 100 + i) as f64 + step as f64 / 8.0).collect(), step }
    }
}

impl Checkpointable for Toy {
    fn kind(&self) -> &'static str {
        "toy"
    }
    fn write_sections(&self, w: &mut CkptWriter) {
        let mut e = Enc::new();
        e.f64s(&self.vals);
        e.u64(self.step);
        w.section("state", e.into_bytes());
    }
    fn read_sections(&mut self, f: &CkptFile) -> Result<(), CkptError> {
        let mut d = f.dec("state")?;
        self.vals = d.f64s()?;
        self.step = d.u64()?;
        d.finish()
    }
    fn ckpt_step(&self) -> u64 {
        self.step
    }
}

/// Flips one bit midway through `path` — inside some payload or table
/// entry, where only the CRC (not the header structure) can notice.
fn flip_mid_byte(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read shard");
    let i = bytes.len() / 2;
    bytes[i] ^= 0x10;
    std::fs::write(path, bytes).expect("rewrite shard");
}

/// Writes epochs 2 and 4 from a 2-rank world into `cfg.dir`.
fn write_two_epochs(cfg: &CkptConfig) {
    run(2, net(), |c| {
        for step in [2usize, 4] {
            let s = Toy::at(c.rank(), step as u64);
            write_epoch(c, cfg, step, &s).expect("write_epoch");
        }
    });
}

/// An epoch cut taken while a nonblocking receive is posted and its
/// payload is still in flight: the quiesce inside `write_epoch` must
/// bind the message to the posted request (drained, not lost), the
/// epoch must commit, and the wait after the cut must still deliver.
#[test]
fn epoch_cut_preserves_posted_irecv() {
    let dir = fresh_dir("irecv");
    let cfg = CkptConfig::new(&dir, "toyrun", None);
    let out = run(2, net(), |c| {
        let req = (c.rank() == 1).then(|| c.irecv(Some(0), Some(9)));
        if c.rank() == 0 {
            c.send(1, 9, &[4.25, 8.5]);
        }
        let s = Toy::at(c.rank(), 3);
        write_epoch(c, &cfg, 3, &s).expect("write_epoch with an irecv posted");
        match req {
            Some(r) => c.wait(&r).data.clone(),
            None => Vec::new(),
        }
    });
    assert_eq!(out[1], vec![4.25, 8.5], "payload must survive the epoch cut");
    let restored = run(2, net(), |c| {
        let mut s = Toy { vals: Vec::new(), step: 0 };
        let info = restore_latest(c, &cfg, &mut s).expect("restore after irecv epoch");
        (info.epoch, s.state_hash())
    });
    for (rank, (epoch, hash)) in restored.iter().enumerate() {
        assert_eq!(*epoch, 3, "rank {rank} restored the irecv-cut epoch");
        assert_eq!(*hash, Toy::at(rank, 3).state_hash(), "rank {rank} state not bitwise");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// One rank's shard in the newest epoch is corrupted: BOTH ranks must
/// agree to fall back to epoch 2 (the healthy rank included — that is
/// the collective-verdict part of the protocol), and the restored state
/// must be epoch 2's, bitwise.
#[test]
fn corrupt_shard_falls_back_collectively() {
    let dir = fresh_dir("fallback");
    let cfg = CkptConfig::new(&dir, "toyrun", None);
    write_two_epochs(&cfg);
    flip_mid_byte(&cfg.shard_path(4, 1));

    let out: Vec<(u64, u64, bool, u64)> = run(2, net(), |c| {
        let mut s = Toy { vals: Vec::new(), step: 0 };
        let info = restore_latest(c, &cfg, &mut s).expect("restore must fall back, not fail");
        (info.epoch, info.step, info.fell_back, s.state_hash())
    });
    for (rank, (epoch, step, fell_back, hash)) in out.iter().enumerate() {
        assert_eq!(*epoch, 2, "rank {rank} restored the damaged epoch");
        assert_eq!(*step, 2, "rank {rank} wrong step");
        assert!(*fell_back, "rank {rank} did not report the fallback");
        assert_eq!(*hash, Toy::at(rank, 2).state_hash(), "rank {rank} state not bitwise epoch 2");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A truncated shard (torn write that somehow survived the atomic
/// rename, e.g. disk-full) is detected the same way.
#[test]
fn truncated_shard_falls_back() {
    let dir = fresh_dir("trunc");
    let cfg = CkptConfig::new(&dir, "toyrun", None);
    write_two_epochs(&cfg);
    let shard = cfg.shard_path(4, 0);
    let bytes = std::fs::read(&shard).unwrap();
    std::fs::write(&shard, &bytes[..bytes.len() / 3]).unwrap();

    let out = run(2, net(), |c| {
        let mut s = Toy { vals: Vec::new(), step: 0 };
        restore_latest(c, &cfg, &mut s).expect("fallback expected").epoch
    });
    assert_eq!(out, vec![2, 2]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Every epoch damaged: the restore fails with `NoValidEpoch` listing
/// the epochs it tried, newest first, on every rank — no panic, no
/// deadlock, no rank left holding partial state it believes is valid.
#[test]
fn all_epochs_corrupt_is_no_valid_epoch() {
    let dir = fresh_dir("allbad");
    let cfg = CkptConfig::new(&dir, "toyrun", None);
    write_two_epochs(&cfg);
    for epoch in [2u64, 4] {
        flip_mid_byte(&cfg.shard_path(epoch, 0));
    }

    let out: Vec<Vec<u64>> = run(2, net(), |c| {
        let mut s = Toy { vals: Vec::new(), step: 0 };
        match restore_latest(c, &cfg, &mut s) {
            Ok(info) => panic!("restored epoch {} from all-corrupt set", info.epoch),
            Err(CkptError::NoValidEpoch { tried, .. }) => tried,
            Err(other) => panic!("expected NoValidEpoch, got: {other}"),
        }
    });
    for tried in &out {
        assert_eq!(*tried, vec![4, 2], "wrong trial order");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Restoring from an empty directory reports `NoValidEpoch` with an
/// empty trial list — the "nothing to resume from, start cold" signal
/// the examples' step loops rely on.
#[test]
fn empty_dir_is_no_valid_epoch_with_empty_tried() {
    let dir = fresh_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = CkptConfig::new(&dir, "toyrun", None);
    let out = run(2, net(), |c| {
        let mut s = Toy { vals: Vec::new(), step: 0 };
        match restore_latest(c, &cfg, &mut s) {
            Err(CkptError::NoValidEpoch { tried, .. }) => tried.is_empty(),
            other => panic!("expected NoValidEpoch, got: {other:?}"),
        }
    });
    assert_eq!(out, vec![true, true]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Old epochs beyond `keep` are pruned by the writer: after epochs
/// 2, 4, 6 with keep = 2, epoch 2's files are gone and a restore lands
/// on 6.
#[test]
fn writer_prunes_beyond_keep() {
    let dir = fresh_dir("prune");
    let cfg = CkptConfig::new(&dir, "toyrun", None);
    run(2, net(), |c| {
        for step in [2usize, 4, 6] {
            let s = Toy::at(c.rank(), step as u64);
            write_epoch(c, &cfg, step, &s).expect("write_epoch");
        }
    });
    assert!(!cfg.manifest_path(2).exists(), "epoch 2 manifest should be pruned");
    assert!(!cfg.shard_path(2, 0).exists(), "epoch 2 shard should be pruned");
    assert!(cfg.manifest_path(4).exists() && cfg.manifest_path(6).exists());

    let out = run(2, net(), |c| {
        let mut s = Toy { vals: Vec::new(), step: 0 };
        restore_latest(c, &cfg, &mut s).expect("restore").epoch
    });
    assert_eq!(out, vec![6, 6]);
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------------ fuzz

nkt_testkit::prop_check! {
    #![cases(64)]

    /// `CkptFile::parse` is total: arbitrary bytes produce `Ok` or a
    /// typed error, never a panic or an out-of-bounds access.
    fn parse_never_panics_on_noise(bytes in nkt_testkit::vec_len_in(0u64..256, 0..160)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = CkptFile::parse(Path::new("fuzz"), raw);
    }

    /// Nor on a VALID file with one mutation — byte overwritten at an
    /// arbitrary offset. (Exhaustive single-bit coverage lives in the
    /// format unit tests; this drives multi-byte-distance mutations.)
    fn parse_never_panics_on_mutation(pos in 0usize..4096, val in 0u64..256) {
        let toy = Toy::at(1, 7);
        let mut w = CkptWriter::new();
        toy.write_sections(&mut w);
        let mut bytes = w.to_bytes();
        let i = pos % bytes.len();
        bytes[i] = val as u8;
        if let Ok(f) = CkptFile::parse(Path::new("fuzz"), bytes) {
            // Structurally intact: decoding must still be total.
            let mut t = Toy { vals: Vec::new(), step: 0 };
            let _ = t.read_sections(&f);
        }
    }
}
