//! # nkt-ckpt — coordinated checkpoint/restart for the NekTar solvers
//!
//! The paper's production DNS campaigns are multi-day jobs on commodity
//! clusters where node failure is routine; restartability is the
//! difference between "fact" and "fiction" for cheap-hardware DNS. This
//! crate provides:
//!
//! * a **versioned binary container** ([`format`]): `NKTC` magic +
//!   format version + section table + per-section CRC-32, written
//!   atomically (temp file + rename);
//! * a **bitwise-exact codec** ([`codec`]): `f64`s round-trip as raw
//!   IEEE bits so a restored run continues bit-identically;
//! * the [`Checkpointable`] trait ([`traits`]) the three solver state
//!   machines implement, with a deterministic [`state_hash`] that
//!   excludes the wall-clock ledger;
//! * a **coordinated epoch protocol** ([`epoch`]) for the rank-parallel
//!   solvers: barrier-delimited quiesce, per-rank shards, a rank-0
//!   manifest as the commit record, CRC-validated collective restore
//!   with fall-back to the previous epoch on a torn or corrupted set;
//! * env-driven **policy** ([`policy`]): `NKT_CKPT_EVERY` /
//!   `NKT_CKPT_DIR`.
//!
//! Everything is dependency-free (std only, plus the workspace's own
//! `nkt-mpi` and `nkt-trace`), and the restore path never panics on
//! malformed bytes — every failure is a typed [`CkptError`] naming the
//! section and file offset.
//!
//! [`state_hash`]: Checkpointable::state_hash

pub mod codec;
pub mod epoch;
pub mod error;
pub mod format;
pub mod policy;
pub mod tandem;
pub mod traits;

pub use codec::{Dec, Enc};
pub use epoch::{
    restore_latest, restore_latest_serial, write_epoch, write_epoch_serial, RestoreInfo,
};
pub use error::CkptError;
pub use format::{crc32, CkptFile, CkptWriter, FORMAT_VERSION, MAGIC};
pub use policy::CkptConfig;
pub use tandem::{Tandem, TandemMut};
pub use traits::{Checkpointable, Fnv1a, CLOCK_SECTION};
