//! Coordinated checkpoint epochs over `nkt-mpi`, plus the serial
//! (single-process) variants the 2-D solver uses.
//!
//! ## Write protocol (barrier-delimited epoch)
//!
//! 1. **Quiesce.** Every rank enters [`Comm::quiesce`]: a barrier
//!    followed by a drain of any already-delivered messages into the
//!    pending queue. After the barrier, every pre-checkpoint send has
//!    been matched or is sitting in its receiver's queue — nothing is
//!    "on the wire" between ranks, so each rank's solver state plus its
//!    pending queue is a consistent global cut. (The solvers checkpoint
//!    at step boundaries where the pending queues are empty; the drain
//!    is a guard, not a requirement.)
//! 2. **Shard.** Each rank serializes its [`Checkpointable`] state plus
//!    a `meta` section (kind, epoch, step, rank, nranks) and writes
//!    `CKPT_<run>_r<rank>_e<epoch>.bin` atomically.
//! 3. **Agree.** An allreduce-Min over a success flag: if *any* rank
//!    failed its write, every rank gets [`CkptError::PeerFailed`] and
//!    the partial epoch is left manifest-less (invisible to restore).
//! 4. **Manifest.** After a barrier (all shards durably renamed), rank 0
//!    writes `CKPT_<run>_e<epoch>.manifest` recording epoch, step and
//!    shard count. The manifest is the epoch's commit record: restore
//!    only considers epochs that have one.
//! 5. **Prune.** Rank 0 removes epochs beyond the retention window, then
//!    a final barrier releases the ranks.
//!
//! ## Restore protocol
//!
//! Rank 0 lists manifests and broadcasts the candidate epochs, newest
//! first. For each candidate, every rank validates locally (manifest
//! parses, shard count matches the world size, its own shard opens with
//! all CRCs good and meta agreeing) and the ranks allreduce-Min their
//! verdicts: the newest epoch that every rank can read wins. A torn or
//! corrupted newest epoch is thereby skipped *collectively* — no rank
//! restores from an epoch any peer rejected — and the run falls back to
//! the previous one.

use std::path::Path;

use nkt_mpi::prelude::*;

use crate::error::CkptError;
use crate::format::{CkptFile, CkptWriter};
use crate::policy::{ensure_dir, CkptConfig};
use crate::codec::{Dec, Enc};
use crate::traits::Checkpointable;

/// Meta section present in every shard.
const META_SECTION: &str = "meta";
/// Sections in a manifest file.
const MANIFEST_SECTION: &str = "epoch";

/// What a successful restore reports back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreInfo {
    /// Epoch restored from (== the step the snapshot was taken at).
    pub epoch: u64,
    /// Step count the solver resumes at.
    pub step: u64,
    /// True when the newest on-disk epoch was rejected and an older one
    /// was used.
    pub fell_back: bool,
}

fn meta_section(state: &dyn Checkpointable, epoch: u64, rank: usize, nranks: usize) -> Vec<u8> {
    let mut e = Enc::new();
    let kind = state.kind().as_bytes();
    e.usize(kind.len());
    for &b in kind {
        e.u64(b as u64);
    }
    e.u64(epoch);
    e.u64(state.ckpt_step());
    e.usize(rank);
    e.usize(nranks);
    e.into_bytes()
}

fn check_meta(
    d: &mut Dec<'_>,
    kind: &str,
    epoch: u64,
    rank: usize,
    nranks: usize,
) -> Result<u64, CkptError> {
    let klen = d.len_prefix(64)?;
    let mut kbytes = Vec::with_capacity(klen);
    for _ in 0..klen {
        kbytes.push(d.u64()? as u8);
    }
    let file_kind = String::from_utf8_lossy(&kbytes).into_owned();
    if file_kind != kind {
        return Err(CkptError::StateMismatch {
            what: format!("solver kind: checkpoint is '{file_kind}', restoring into '{kind}'"),
        });
    }
    d.expect_u64(epoch, "epoch")?;
    let step = d.u64()?;
    d.expect_u64(rank as u64, "rank")?;
    d.expect_u64(nranks as u64, "world size")?;
    Ok(step)
}

/// Builds the shard container for one rank (shared by the parallel and
/// serial writers).
fn build_shard(state: &dyn Checkpointable, epoch: u64, rank: usize, nranks: usize) -> CkptWriter {
    let mut w = CkptWriter::new();
    w.section(META_SECTION, meta_section(state, epoch, rank, nranks));
    state.write_sections(&mut w);
    w
}

/// Validates one shard file against the expected identity and hands the
/// step count back.
fn open_shard(
    path: &Path,
    kind: &str,
    epoch: u64,
    rank: usize,
    nranks: usize,
) -> Result<(CkptFile, u64), CkptError> {
    let f = CkptFile::open(path)?;
    let mut d = f.dec(META_SECTION)?;
    let step = check_meta(&mut d, kind, epoch, rank, nranks)?;
    d.finish()?;
    Ok((f, step))
}

fn write_manifest(cfg: &CkptConfig, epoch: u64, step: u64, nranks: usize) -> Result<(), CkptError> {
    let mut e = Enc::new();
    e.u64(epoch);
    e.u64(step);
    e.usize(nranks);
    let mut w = CkptWriter::new();
    w.section(MANIFEST_SECTION, e.into_bytes());
    w.write_to(&cfg.manifest_path(epoch))?;
    Ok(())
}

/// Parses a manifest, returning `(step, nranks)` for `epoch`.
fn read_manifest(cfg: &CkptConfig, epoch: u64) -> Result<(u64, usize), CkptError> {
    let f = CkptFile::open(&cfg.manifest_path(epoch))?;
    let mut d = f.dec(MANIFEST_SECTION)?;
    let man_epoch = d.u64()?;
    if man_epoch != epoch {
        return Err(CkptError::Manifest {
            what: format!("file named epoch {epoch} records epoch {man_epoch}"),
        });
    }
    let step = d.u64()?;
    let nranks = d.len_prefix(1 << 20)?;
    d.finish()?;
    Ok((step, nranks))
}

/// Coordinated epoch write for a rank-parallel solver. Call from every
/// rank with the same `step`; returns only after the epoch is either
/// fully committed (manifest on disk) or collectively abandoned.
pub fn write_epoch(
    comm: &mut Comm,
    cfg: &CkptConfig,
    step: usize,
    state: &dyn Checkpointable,
) -> Result<(), CkptError> {
    let epoch = step as u64;
    let sp = nkt_trace::span_v("ckpt.write", "ckpt", comm.wtime());
    let result = write_epoch_inner(comm, cfg, epoch, state);
    sp.end_v(comm.wtime());
    result
}

fn write_epoch_inner(
    comm: &mut Comm,
    cfg: &CkptConfig,
    epoch: u64,
    state: &dyn Checkpointable,
) -> Result<(), CkptError> {
    comm.quiesce();

    let rank = comm.rank();
    let nranks = comm.size();
    let shard_result: Result<u64, CkptError> = (|| {
        ensure_dir(&cfg.dir)?;
        let w = build_shard(state, epoch, rank, nranks);
        let bytes = w.write_to(&cfg.shard_path(epoch, rank))?;
        Ok(bytes)
    })();

    let mut ok = [if shard_result.is_ok() { 1.0 } else { 0.0 }];
    comm.allreduce(&mut ok, ReduceOp::Min);
    match (&shard_result, ok[0] >= 1.0) {
        (Ok(bytes), true) => {
            nkt_trace::counter_add("ckpt.write.bytes", *bytes);
            nkt_trace::counter_add("ckpt.write.shards", 1);
        }
        (Ok(_), false) => {
            // A peer failed; this rank's shard is orphaned (no manifest
            // will name it). Remove it so it cannot confuse a listing.
            std::fs::remove_file(cfg.shard_path(epoch, rank)).ok();
            return Err(CkptError::PeerFailed { epoch });
        }
        (Err(_), _) => return shard_result.map(|_| ()),
    }

    // All shards are durably in place past this barrier; commit.
    comm.barrier();
    let mut commit_ok = [1.0f64];
    if rank == 0 {
        if write_manifest(cfg, epoch, state.ckpt_step(), nranks).is_err() {
            commit_ok[0] = 0.0;
        } else {
            for old in cfg.list_epochs().into_iter().skip(cfg.keep) {
                cfg.remove_epoch(old, nranks);
            }
        }
    }
    comm.bcast(0, &mut commit_ok);
    if commit_ok[0] < 1.0 {
        return Err(CkptError::PeerFailed { epoch });
    }
    Ok(())
}

/// Collectively finds the newest epoch every rank can restore from and
/// applies it to `state`. Returns [`RestoreInfo`] or
/// [`CkptError::NoValidEpoch`] when nothing on disk survives validation.
pub fn restore_latest(
    comm: &mut Comm,
    cfg: &CkptConfig,
    state: &mut dyn Checkpointable,
) -> Result<RestoreInfo, CkptError> {
    let sp = nkt_trace::span_v("ckpt.restore", "ckpt", comm.wtime());
    let result = restore_latest_inner(comm, cfg, state);
    sp.end_v(comm.wtime());
    result
}

fn restore_latest_inner(
    comm: &mut Comm,
    cfg: &CkptConfig,
    state: &mut dyn Checkpointable,
) -> Result<RestoreInfo, CkptError> {
    let rank = comm.rank();
    let nranks = comm.size();

    // Rank 0 lists candidate epochs (newest first) and broadcasts them.
    // Epochs are step numbers — far below 2^53, so the f64 transport the
    // collectives use is exact.
    let mut count = [0.0f64];
    let epochs_r0: Vec<u64> = if rank == 0 { cfg.list_epochs() } else { Vec::new() };
    if rank == 0 {
        count[0] = epochs_r0.len() as f64;
    }
    comm.bcast(0, &mut count);
    let n = count[0] as usize;
    let mut buf: Vec<f64> = if rank == 0 {
        epochs_r0.iter().map(|&e| e as f64).collect()
    } else {
        vec![0.0; n]
    };
    comm.bcast(0, &mut buf);
    let epochs: Vec<u64> = buf.iter().map(|&e| e as u64).collect();

    let mut tried = Vec::new();
    let mut last_cause: Option<String> = None;
    let mut fell_back = false;
    for &epoch in &epochs {
        tried.push(epoch);
        // Local validation: manifest + own shard, CRCs eager in open().
        let local: Result<(CkptFile, u64), CkptError> = (|| {
            let (step, man_ranks) = read_manifest(cfg, epoch)?;
            if man_ranks != nranks {
                return Err(CkptError::Manifest {
                    what: format!("epoch {epoch} was written by {man_ranks} ranks, world has {nranks}"),
                });
            }
            let (f, shard_step) = open_shard(&cfg.shard_path(epoch, rank), state.kind(), epoch, rank, nranks)?;
            if shard_step != step {
                return Err(CkptError::Manifest {
                    what: format!("epoch {epoch}: shard records step {shard_step}, manifest {step}"),
                });
            }
            Ok((f, step))
        })();

        let mut ok = [if local.is_ok() { 1.0 } else { 0.0 }];
        comm.allreduce(&mut ok, ReduceOp::Min);
        match (local, ok[0] >= 1.0) {
            (Ok((f, step)), true) => {
                state.read_sections(&f)?;
                nkt_trace::counter_add("ckpt.restore.bytes", f.payload_bytes());
                nkt_trace::counter_add("ckpt.restore.shards", 1);
                if fell_back {
                    nkt_trace::counter_add("ckpt.restore.fallbacks", 1);
                    // A fallback means the newest epoch was torn or
                    // corrupted — ship the post-mortem of what this rank
                    // was doing around the failed epoch.
                    nkt_trace::flight::dump_current(rank, "ckpt epoch fell back");
                }
                return Ok(RestoreInfo { epoch, step, fell_back });
            }
            (local, _) => {
                if let Err(e) = local {
                    last_cause.get_or_insert_with(|| format!("rank {rank}: {e}"));
                } else {
                    last_cause.get_or_insert_with(|| format!("epoch {epoch} rejected by a peer rank"));
                }
                fell_back = true;
            }
        }
    }
    Err(CkptError::NoValidEpoch { tried, last_cause })
}

/// Serial (single-process) epoch write for the 2-D solver: same file
/// layout with `rank = 0`, `nranks = 1`, no collectives.
pub fn write_epoch_serial(
    cfg: &CkptConfig,
    step: usize,
    state: &dyn Checkpointable,
) -> Result<(), CkptError> {
    let epoch = step as u64;
    let sp = nkt_trace::span("ckpt.write", "ckpt");
    let result = (|| {
        ensure_dir(&cfg.dir)?;
        let w = build_shard(state, epoch, 0, 1);
        let bytes = w.write_to(&cfg.shard_path(epoch, 0))?;
        write_manifest(cfg, epoch, state.ckpt_step(), 1)?;
        nkt_trace::counter_add("ckpt.write.bytes", bytes);
        nkt_trace::counter_add("ckpt.write.shards", 1);
        for old in cfg.list_epochs().into_iter().skip(cfg.keep) {
            cfg.remove_epoch(old, 1);
        }
        Ok(())
    })();
    sp.end();
    result
}

/// Serial restore: newest epoch that validates, with the same
/// fall-back-to-previous behaviour as the coordinated path.
pub fn restore_latest_serial(
    cfg: &CkptConfig,
    state: &mut dyn Checkpointable,
) -> Result<RestoreInfo, CkptError> {
    let sp = nkt_trace::span("ckpt.restore", "ckpt");
    let result = (|| {
        let mut tried = Vec::new();
        let mut last_cause = None;
        let mut fell_back = false;
        for epoch in cfg.list_epochs() {
            tried.push(epoch);
            let attempt: Result<(CkptFile, u64), CkptError> = (|| {
                let (step, man_ranks) = read_manifest(cfg, epoch)?;
                if man_ranks != 1 {
                    return Err(CkptError::Manifest {
                        what: format!("epoch {epoch} was written by {man_ranks} ranks, expected 1"),
                    });
                }
                let (f, shard_step) = open_shard(&cfg.shard_path(epoch, 0), state.kind(), epoch, 0, 1)?;
                if shard_step != step {
                    return Err(CkptError::Manifest {
                        what: format!("epoch {epoch}: shard records step {shard_step}, manifest {step}"),
                    });
                }
                Ok((f, step))
            })();
            match attempt {
                Ok((f, step)) => {
                    state.read_sections(&f)?;
                    nkt_trace::counter_add("ckpt.restore.bytes", f.payload_bytes());
                    nkt_trace::counter_add("ckpt.restore.shards", 1);
                    if fell_back {
                        nkt_trace::counter_add("ckpt.restore.fallbacks", 1);
                        nkt_trace::flight::dump_current(0, "ckpt epoch fell back");
                    }
                    return Ok(RestoreInfo { epoch, step, fell_back });
                }
                Err(e) => {
                    last_cause.get_or_insert_with(|| e.to_string());
                    fell_back = true;
                }
            }
        }
        Err(CkptError::NoValidEpoch { tried, last_cause })
    })();
    sp.end();
    result
}
