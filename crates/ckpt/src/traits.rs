//! The [`Checkpointable`] contract solvers implement, plus the shared
//! deterministic state digest used by the restart-equivalence tests.

use crate::error::CkptError;
use crate::format::{CkptFile, CkptWriter};

/// Section name under which solvers store their [`StageClock`] wall-time
/// ledger. It is saved and restored like any other section but
/// **excluded** from [`Checkpointable::state_hash`]: the ledger holds
/// host wall times, which differ between an interrupted and an
/// uninterrupted run even when the numerical state is bitwise identical.
pub const CLOCK_SECTION: &str = "clock";

/// A solver state machine that can snapshot itself into checkpoint
/// sections and rebuild itself from them.
///
/// The contract is **bitwise** fidelity: after `read_sections` from a
/// file produced by `write_sections`, every subsequent step must produce
/// bit-identical state to the run that was never interrupted.
pub trait Checkpointable {
    /// Short stable tag (`"serial2d"`, `"fourier"`, `"ale"`) recorded in
    /// shard metadata so a restore into the wrong solver kind fails with
    /// [`CkptError::StateMismatch`] instead of garbage.
    fn kind(&self) -> &'static str;

    /// Appends this state's sections to `w`.
    fn write_sections(&self, w: &mut CkptWriter);

    /// Rebuilds state from `f`'s sections. Must validate shape guards
    /// (dof counts, rank layout) against `self` and return
    /// [`CkptError::StateMismatch`] on disagreement; must never panic on
    /// malformed input.
    fn read_sections(&mut self, f: &CkptFile) -> Result<(), CkptError>;

    /// Step counter as of this state (doubles as the checkpoint epoch).
    fn ckpt_step(&self) -> u64;

    /// Deterministic digest of the numerical state: FNV-1a over every
    /// section's name and payload **except** [`CLOCK_SECTION`]. Two
    /// states hash equal iff their persisted numerical content is
    /// byte-identical — the yardstick the interrupted-vs-uninterrupted
    /// property tests compare step by step.
    fn state_hash(&self) -> u64 {
        let mut w = CkptWriter::new();
        self.write_sections(&mut w);
        let mut h = Fnv1a::new();
        for (name, payload) in w.sections() {
            if name == CLOCK_SECTION {
                continue;
            }
            h.update(name.as_bytes());
            h.update(&(payload.len() as u64).to_le_bytes());
            h.update(payload);
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit — tiny, dependency-free, and plenty for an equality
/// witness (we compare hashes of runs that should be *identical*, not
/// defend against adversarial collisions).
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Standard FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Final digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Dec, Enc};

    struct Toy {
        x: Vec<f64>,
        steps: u64,
        wall: f64,
    }

    impl Checkpointable for Toy {
        fn kind(&self) -> &'static str {
            "toy"
        }
        fn write_sections(&self, w: &mut CkptWriter) {
            let mut e = Enc::new();
            e.f64s(&self.x);
            e.u64(self.steps);
            w.section("fields", e.into_bytes());
            let mut c = Enc::new();
            c.f64(self.wall);
            w.section(CLOCK_SECTION, c.into_bytes());
        }
        fn read_sections(&mut self, f: &CkptFile) -> Result<(), CkptError> {
            let mut d = f.dec("fields")?;
            self.x = d.f64s()?;
            self.steps = d.u64()?;
            d.finish()?;
            let mut c = f.dec(CLOCK_SECTION)?;
            self.wall = c.f64()?;
            c.finish()?;
            Ok(())
        }
        fn ckpt_step(&self) -> u64 {
            self.steps
        }
    }

    #[test]
    fn clock_section_excluded_from_hash() {
        let a = Toy { x: vec![1.0, 2.0], steps: 5, wall: 0.123 };
        let b = Toy { x: vec![1.0, 2.0], steps: 5, wall: 99.9 };
        assert_eq!(a.state_hash(), b.state_hash(), "wall time must not affect the digest");
        let c = Toy { x: vec![1.0, 2.5], steps: 5, wall: 0.123 };
        assert_ne!(a.state_hash(), c.state_hash(), "numerical state must");
    }

    #[test]
    fn roundtrip_restores_hash() {
        let a = Toy { x: vec![3.0; 7], steps: 11, wall: 1.0 };
        let mut w = CkptWriter::new();
        a.write_sections(&mut w);
        let f = CkptFile::parse(std::path::Path::new("mem"), w.to_bytes()).unwrap();
        let mut b = Toy { x: vec![], steps: 0, wall: 0.0 };
        b.read_sections(&f).unwrap();
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(b.steps, 11);
        let _ = Dec::new("unused", 0, &[]);
    }
}
