//! Checkpoint cadence and file layout, driven by environment:
//!
//! | variable         | meaning                                             |
//! |------------------|-----------------------------------------------------|
//! | `NKT_CKPT_EVERY` | write an epoch every N steps (unset/0 = disabled)   |
//! | `NKT_CKPT_DIR`   | directory for shards + manifests (default: results) |
//!
//! Names on disk, for run id `<run>`:
//!
//! * shard:    `CKPT_<run>_r<rank>_e<epoch>.bin`
//! * manifest: `CKPT_<run>_e<epoch>.manifest`
//!
//! The epoch id **is** the step number at which the snapshot was taken,
//! so file listings read chronologically and the restore path can hand
//! the step count straight back to the solver.

use std::path::{Path, PathBuf};

/// Resolved checkpoint policy for one run.
#[derive(Debug, Clone)]
pub struct CkptConfig {
    /// Directory holding shards and manifests.
    pub dir: PathBuf,
    /// Run identifier embedded in filenames (one run's files never
    /// collide with another's in a shared directory).
    pub run: String,
    /// Write an epoch every this many steps; `None` disables writing
    /// (restore still works).
    pub every: Option<usize>,
    /// How many complete epochs to retain; older ones are pruned after a
    /// successful write. Two is the minimum that makes corrupt-newest
    /// fallback possible.
    pub keep: usize,
}

impl CkptConfig {
    /// Policy with explicit values (tests, examples).
    pub fn new(dir: impl Into<PathBuf>, run: &str, every: Option<usize>) -> CkptConfig {
        CkptConfig { dir: dir.into(), run: run.to_string(), every, keep: 2 }
    }

    /// Policy from `NKT_CKPT_EVERY` / `NKT_CKPT_DIR`. With neither set
    /// checkpointing is disabled and the directory defaults to the
    /// workspace `results/` dir (same resolution as trace output).
    pub fn from_env(run: &str) -> CkptConfig {
        let every = std::env::var("NKT_CKPT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let dir = std::env::var("NKT_CKPT_DIR")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(nkt_trace::results_dir);
        CkptConfig { dir, run: run.to_string(), every, keep: 2 }
    }

    /// True when checkpointing is enabled at all.
    pub fn enabled(&self) -> bool {
        self.every.is_some()
    }

    /// True when an epoch should be written after completing `step`
    /// (1-based: `step` steps have been taken).
    pub fn should(&self, step: usize) -> bool {
        match self.every {
            Some(n) => step > 0 && step % n == 0,
            None => false,
        }
    }

    /// Shard path for (`epoch`, `rank`).
    pub fn shard_path(&self, epoch: u64, rank: usize) -> PathBuf {
        self.dir.join(format!("CKPT_{}_r{rank}_e{epoch}.bin", self.run))
    }

    /// Manifest path for `epoch`.
    pub fn manifest_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("CKPT_{}_e{epoch}.manifest", self.run))
    }

    /// Epochs present for this run (by manifest file), newest first.
    /// I/O errors (missing dir) read as "no epochs".
    pub fn list_epochs(&self) -> Vec<u64> {
        let prefix = format!("CKPT_{}_e", self.run);
        let mut out: Vec<u64> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| parse_epoch(&e.file_name().to_string_lossy(), &prefix))
                    .collect()
            })
            .unwrap_or_default();
        out.sort_unstable_by(|a, b| b.cmp(a));
        out.dedup();
        out
    }

    /// Removes shard + manifest files for `epoch` (prune path; errors
    /// ignored — a leftover file is rejected or superseded on restore).
    pub fn remove_epoch(&self, epoch: u64, nranks: usize) {
        for rank in 0..nranks {
            std::fs::remove_file(self.shard_path(epoch, rank)).ok();
        }
        std::fs::remove_file(self.manifest_path(epoch)).ok();
    }
}

fn parse_epoch(file_name: &str, prefix: &str) -> Option<u64> {
    file_name.strip_prefix(prefix)?.strip_suffix(".manifest")?.parse().ok()
}

/// Joins `dir` existence concerns for callers: create the checkpoint
/// directory if needed.
pub fn ensure_dir(dir: &Path) -> Result<(), crate::error::CkptError> {
    std::fs::create_dir_all(dir).map_err(|e| crate::error::CkptError::io("create dir", dir, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence() {
        let c = CkptConfig::new("/tmp", "x", Some(3));
        assert!(!c.should(0));
        assert!(!c.should(1));
        assert!(c.should(3));
        assert!(c.should(6));
        let off = CkptConfig::new("/tmp", "x", None);
        assert!(!off.should(3));
        assert!(!off.enabled());
    }

    #[test]
    fn epoch_listing_sorted_desc_and_run_scoped() {
        let dir = std::env::temp_dir().join(format!("nkt_ckpt_pol_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let c = CkptConfig::new(&dir, "runA", Some(1));
        for e in [4u64, 2, 8] {
            std::fs::write(c.manifest_path(e), b"x").unwrap();
        }
        // Another run's manifest must not leak in.
        std::fs::write(dir.join("CKPT_runB_e99.manifest"), b"x").unwrap();
        assert_eq!(c.list_epochs(), vec![8, 4, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filenames() {
        let c = CkptConfig::new("/data", "cyl", Some(1));
        assert_eq!(c.shard_path(40, 3), PathBuf::from("/data/CKPT_cyl_r3_e40.bin"));
        assert_eq!(c.manifest_path(40), PathBuf::from("/data/CKPT_cyl_e40.manifest"));
    }
}
