//! Typed checkpoint errors. The restore path **never panics**: every
//! malformed byte a reader can encounter — bad magic, an unknown format
//! version, a truncated header, a CRC mismatch, a section that decodes
//! short — maps to a [`CkptError`] variant naming the section and offset
//! where the damage was found, so an operator staring at a failed restart
//! knows which file (and which bytes of it) to inspect.

use std::fmt;

/// Everything that can go wrong writing or (much more importantly)
/// reading a checkpoint.
#[derive(Debug)]
pub enum CkptError {
    /// An OS-level I/O failure, with the path and operation that failed.
    Io {
        /// What the operation was doing (`"write shard"`, `"rename"`, ...).
        op: String,
        /// File involved.
        path: String,
        /// The underlying error, stringified.
        err: String,
    },
    /// The file does not start with the `NKTC` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is not one this reader understands.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The file ended before a structure could be read in full.
    Truncated {
        /// Which structure was being read (`"header"`, a section name, ...).
        section: String,
        /// Absolute file offset at which reading stopped.
        offset: u64,
        /// Bytes needed to finish the structure.
        needed: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// A section's payload failed its CRC-32 check.
    Crc {
        /// Section name from the header table.
        section: String,
        /// Absolute file offset of the section payload.
        offset: u64,
        /// CRC recorded in the header.
        expected: u32,
        /// CRC computed over the payload as read.
        found: u32,
    },
    /// A section named by the reader is not present in the file.
    MissingSection {
        /// The requested section.
        name: String,
    },
    /// A section's bytes did not decode as the expected values.
    Decode {
        /// Section being decoded.
        section: String,
        /// Absolute file offset of the failing read.
        offset: u64,
        /// What the decoder expected there.
        what: String,
    },
    /// The checkpoint is internally valid but does not fit the state it
    /// is being restored into (wrong solver kind, dof count, rank
    /// layout, ...).
    StateMismatch {
        /// Human description of the disagreement.
        what: String,
    },
    /// The epoch manifest is malformed or inconsistent with its shards.
    Manifest {
        /// Description of the inconsistency.
        what: String,
    },
    /// A peer rank failed its part of a coordinated checkpoint; this
    /// rank's shard (if any) was discarded from the epoch.
    PeerFailed {
        /// The epoch being written.
        epoch: u64,
    },
    /// No checkpoint epoch in the directory survived validation.
    NoValidEpoch {
        /// Epochs that were tried, newest first.
        tried: Vec<u64>,
        /// Why the newest candidate was rejected (when one existed).
        last_cause: Option<String>,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { op, path, err } => {
                write!(f, "checkpoint I/O: {op} {path}: {err}")
            }
            CkptError::BadMagic { found } => {
                write!(f, "not a checkpoint file: magic {found:02x?} (want \"NKTC\")")
            }
            CkptError::BadVersion { found, expected } => {
                write!(f, "unsupported checkpoint format version {found} (this build reads {expected})")
            }
            CkptError::Truncated { section, offset, needed, have } => write!(
                f,
                "truncated checkpoint: section '{section}' at offset {offset} needs {needed} bytes, only {have} available"
            ),
            CkptError::Crc { section, offset, expected, found } => write!(
                f,
                "corrupted checkpoint: section '{section}' at offset {offset} CRC {found:#010x} != recorded {expected:#010x}"
            ),
            CkptError::MissingSection { name } => {
                write!(f, "checkpoint has no section '{name}'")
            }
            CkptError::Decode { section, offset, what } => write!(
                f,
                "undecodable checkpoint: section '{section}' at offset {offset}: expected {what}"
            ),
            CkptError::StateMismatch { what } => {
                write!(f, "checkpoint does not match the running solver: {what}")
            }
            CkptError::Manifest { what } => write!(f, "bad checkpoint manifest: {what}"),
            CkptError::PeerFailed { epoch } => {
                write!(f, "a peer rank failed while writing checkpoint epoch {epoch}")
            }
            CkptError::NoValidEpoch { tried, last_cause } => {
                write!(f, "no valid checkpoint epoch (tried {tried:?}")?;
                if let Some(c) = last_cause {
                    write!(f, "; newest rejected because: {c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl CkptError {
    /// Wraps an [`std::io::Error`] with the operation and path context.
    pub fn io(op: &str, path: &std::path::Path, err: std::io::Error) -> CkptError {
        CkptError::Io { op: op.to_string(), path: path.display().to_string(), err: err.to_string() }
    }
}
