//! The on-disk container: `NKTC` magic, format version, a section table
//! (name, payload length, CRC-32), then the concatenated payloads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = "NKTC"
//! 4       4     format version (u32, currently 1)
//! 8       4     section count (u32)
//! 12      ...   section table, one entry per section:
//!                 name_len : u16
//!                 name     : name_len bytes (UTF-8)
//!                 len      : u64   payload length
//!                 crc      : u32   CRC-32 (IEEE) of the payload
//! ...     ...   payloads, concatenated in table order
//! ```
//!
//! Writes are atomic: the file is assembled in memory, written to a
//! `.tmp` sibling, synced, and renamed into place — a crash mid-write
//! leaves either the old file or nothing, never a torn one. Reads
//! validate every CRC eagerly at [`CkptFile::open`], so a file that
//! opens cleanly is byte-for-byte the one that was written.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::codec::Dec;
use crate::error::CkptError;

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"NKTC";
/// Format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// polynomial zlib and gzip use, computed with a lazily built 256-entry
/// table.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// In-memory checkpoint being assembled: named sections in insertion
/// order, serialized and written atomically by [`CkptWriter::write_to`].
#[derive(Debug, Default)]
pub struct CkptWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl CkptWriter {
    /// Fresh writer with no sections.
    pub fn new() -> CkptWriter {
        CkptWriter::default()
    }

    /// Adds a section. Section names must be unique within a file.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate checkpoint section '{name}'"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// Section names and payloads added so far (insertion order).
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections.iter().map(|(n, p)| (n.as_str(), p.as_slice()))
    }

    /// Serializes the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            let nb = name.as_bytes();
            assert!(nb.len() <= u16::MAX as usize, "section name too long");
            out.extend_from_slice(&(nb.len() as u16).to_le_bytes());
            out.extend_from_slice(nb);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Total payload bytes (excludes header overhead) — the figure the
    /// `ckpt.write.bytes` counter reports.
    pub fn payload_bytes(&self) -> u64 {
        self.sections.iter().map(|(_, p)| p.len() as u64).sum()
    }

    /// Writes atomically: serialize, write to `<path>.tmp`, fsync,
    /// rename over `path`. Returns the serialized size in bytes.
    pub fn write_to(&self, path: &Path) -> Result<u64, CkptError> {
        let bytes = self.to_bytes();
        let tmp = tmp_sibling(path);
        let mut f = fs::File::create(&tmp).map_err(|e| CkptError::io("create temp", &tmp, e))?;
        f.write_all(&bytes).map_err(|e| CkptError::io("write temp", &tmp, e))?;
        f.sync_all().map_err(|e| CkptError::io("sync temp", &tmp, e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| CkptError::io("rename into place", path, e))?;
        Ok(bytes.len() as u64)
    }
}

/// `<path>.tmp` in the same directory, so the final rename stays on one
/// filesystem (the precondition for its atomicity).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// One parsed section: name, payload slice bounds, recorded CRC.
#[derive(Debug)]
struct SectionEntry {
    name: String,
    /// Absolute file offset of the payload.
    offset: u64,
    len: u64,
    crc: u32,
}

/// A checkpoint file loaded and fully validated: magic, version, header
/// bounds, and every section CRC are checked by [`CkptFile::open`]
/// before any section is handed out.
#[derive(Debug)]
pub struct CkptFile {
    path: PathBuf,
    bytes: Vec<u8>,
    entries: Vec<SectionEntry>,
}

impl CkptFile {
    /// Reads and validates `path`. Any malformation returns a typed
    /// [`CkptError`]; this function (and every section accessor) is
    /// panic-free on arbitrary input bytes.
    pub fn open(path: &Path) -> Result<CkptFile, CkptError> {
        let bytes = fs::read(path).map_err(|e| CkptError::io("read", path, e))?;
        Self::parse(path, bytes)
    }

    /// Parses `bytes` as a container (used by `open` and by tests that
    /// corrupt buffers in memory).
    pub fn parse(path: &Path, bytes: Vec<u8>) -> Result<CkptFile, CkptError> {
        let header_take = |off: usize, n: usize| -> Result<&[u8], CkptError> {
            if bytes.len() < off + n {
                return Err(CkptError::Truncated {
                    section: "header".to_string(),
                    offset: off as u64,
                    needed: n as u64,
                    have: (bytes.len().saturating_sub(off)) as u64,
                });
            }
            Ok(&bytes[off..off + n])
        };

        let magic = header_take(0, 4)?;
        if magic != MAGIC {
            return Err(CkptError::BadMagic { found: magic.try_into().expect("4 bytes") });
        }
        let version = u32::from_le_bytes(header_take(4, 4)?.try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(CkptError::BadVersion { found: version, expected: FORMAT_VERSION });
        }
        let count = u32::from_le_bytes(header_take(8, 4)?.try_into().expect("4 bytes")) as usize;
        // A table entry is at least 14 bytes; reject counts the file
        // cannot possibly hold before reserving anything.
        if count > bytes.len() / 14 {
            return Err(CkptError::Decode {
                section: "header".to_string(),
                offset: 8,
                what: format!("plausible section count, found {count}"),
            });
        }

        let mut off = 12usize;
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = u16::from_le_bytes(header_take(off, 2)?.try_into().expect("2 bytes")) as usize;
            off += 2;
            let name_bytes = header_take(off, name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CkptError::Decode {
                    section: "header".to_string(),
                    offset: off as u64,
                    what: "UTF-8 section name".to_string(),
                })?
                .to_string();
            off += name_len;
            let len = u64::from_le_bytes(header_take(off, 8)?.try_into().expect("8 bytes"));
            off += 8;
            let crc = u32::from_le_bytes(header_take(off, 4)?.try_into().expect("4 bytes"));
            off += 4;
            table.push((name, len, crc));
        }

        let mut payload_off = off as u64;
        let mut entries = Vec::with_capacity(count);
        for (name, len, crc) in table {
            let end = payload_off.checked_add(len).ok_or_else(|| CkptError::Decode {
                section: name.clone(),
                offset: payload_off,
                what: "non-overflowing payload extent".to_string(),
            })?;
            if end > bytes.len() as u64 {
                return Err(CkptError::Truncated {
                    section: name,
                    offset: payload_off,
                    needed: len,
                    have: bytes.len() as u64 - payload_off.min(bytes.len() as u64),
                });
            }
            let payload = &bytes[payload_off as usize..end as usize];
            let found = crc32(payload);
            if found != crc {
                return Err(CkptError::Crc { section: name, offset: payload_off, expected: crc, found });
            }
            entries.push(SectionEntry { name, offset: payload_off, len, crc });
            payload_off = end;
        }

        Ok(CkptFile { path: path.to_path_buf(), bytes, entries })
    }

    /// Path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Raw payload bytes of `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        let e = self.entries.iter().find(|e| e.name == name)?;
        Some(&self.bytes[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// A [`Dec`] positioned at the start of section `name`, with its
    /// absolute file offset wired in for error reporting.
    pub fn dec<'a>(&'a self, name: &'a str) -> Result<Dec<'a>, CkptError> {
        let e = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| CkptError::MissingSection { name: name.to_string() })?;
        Ok(Dec::new(name, e.offset, &self.bytes[e.offset as usize..(e.offset + e.len) as usize]))
    }

    /// Total payload bytes across all sections.
    pub fn payload_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// Recorded CRC of section `name` (for manifest cross-checks).
    pub fn section_crc(&self, name: &str) -> Option<u32> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.crc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Enc;

    fn sample() -> CkptWriter {
        let mut w = CkptWriter::new();
        let mut a = Enc::new();
        a.u64(7);
        a.f64s(&[1.0, 2.0, 3.0]);
        w.section("meta", a.into_bytes());
        let mut b = Enc::new();
        b.f64s(&[0.5; 16]);
        w.section("fields", b.into_bytes());
        w
    }

    #[test]
    fn roundtrip_in_memory() {
        let w = sample();
        let f = CkptFile::parse(Path::new("mem"), w.to_bytes()).unwrap();
        assert_eq!(f.section_names().collect::<Vec<_>>(), vec!["meta", "fields"]);
        let mut d = f.dec("meta").unwrap();
        assert_eq!(d.u64().unwrap(), 7);
        assert_eq!(d.f64s().unwrap(), vec![1.0, 2.0, 3.0]);
        d.finish().unwrap();
        assert!(f.section("nope").is_none());
        assert!(matches!(f.dec("nope"), Err(CkptError::MissingSection { .. })));
    }

    #[test]
    fn atomic_write_then_open() {
        let dir = std::env::temp_dir().join(format!("nkt_ckpt_fmt_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.bin");
        let w = sample();
        let n = w.write_to(&path).unwrap();
        assert_eq!(n, fs::metadata(&path).unwrap().len());
        let f = CkptFile::open(&path).unwrap();
        assert_eq!(f.payload_bytes(), w.payload_bytes());
        // No .tmp left behind.
        assert!(!dir.join("a.bin.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CkptFile::parse(Path::new("m"), bytes.clone()),
            Err(CkptError::BadMagic { .. })
        ));
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            CkptFile::parse(Path::new("m"), bytes),
            Err(CkptError::BadVersion { found: 99, .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_harmless() {
        // Flip each byte of the container in turn: parse must either
        // fail with a typed error or (never) silently accept changed
        // payload bytes. No panic anywhere.
        let good = sample().to_bytes();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            match CkptFile::parse(Path::new("m"), bad) {
                Ok(f) => {
                    // Only a header-name flip can parse cleanly (it
                    // renames a section); payload bytes are CRC-covered.
                    let names: Vec<_> = f.section_names().collect();
                    assert!(
                        names != vec!["meta", "fields"],
                        "byte {i}: flipped payload accepted silently"
                    );
                }
                Err(_) => {}
            }
        }
    }

    #[test]
    fn truncations_are_typed() {
        let good = sample().to_bytes();
        for cut in 0..good.len() {
            match CkptFile::parse(Path::new("m"), good[..cut].to_vec()) {
                // A cut right after the count field trips the
                // plausibility check (count > what the bytes can hold)
                // before the truncation check — also a typed rejection.
                Err(CkptError::Truncated { .. })
                | Err(CkptError::BadMagic { .. })
                | Err(CkptError::Decode { .. }) => {}
                Err(e) => panic!("cut at {cut}: unexpected error {e}"),
                Ok(_) => panic!("cut at {cut}: truncated file accepted"),
            }
        }
    }
}
