//! Section payload codec: little-endian, length-prefixed, bitwise-exact.
//!
//! `f64`s are stored as their raw IEEE-754 little-endian bytes
//! ([`f64::to_le_bytes`]), so a save/restore round trip is **bitwise**
//! lossless — the property the restart-equivalence tests lean on. Every
//! [`Dec`] read is bounds-checked and returns a typed
//! [`CkptError::Decode`]/[`CkptError::Truncated`] naming the section and
//! absolute file offset; the decode path contains no indexing that can
//! panic.

use crate::error::CkptError;

/// Section payload encoder (append-only byte buffer).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends one `f64` (raw IEEE bits, little-endian).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        self.buf.reserve(8 * v.len());
        for x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends a length-prefixed vector of length-prefixed `f64` slices
    /// (per-element quadrature fields and the like).
    pub fn vecs(&mut self, v: &[Vec<f64>]) {
        self.usize(v.len());
        for inner in v {
            self.f64s(inner);
        }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, yielding the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked decoder over one section's payload.
///
/// Carries the section name and the payload's absolute file offset so
/// every error points at real bytes in the file.
pub struct Dec<'a> {
    section: &'a str,
    /// Absolute file offset of `buf[0]`.
    base: u64,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf`, which starts at absolute file offset `base`.
    pub fn new(section: &'a str, base: u64, buf: &'a [u8]) -> Dec<'a> {
        Dec { section, base, buf, pos: 0 }
    }

    /// Absolute file offset of the next read.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(CkptError::Truncated {
                section: self.section.to_string(),
                offset: self.offset(),
                needed: n as u64,
                have: have as u64,
            });
        }
        let _ = what;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("take returned 8 bytes")))
    }

    /// Reads a `u64` and checks it fits a `usize` and a sanity cap (a
    /// corrupted length prefix must not drive an allocation of 2^60
    /// elements).
    pub fn len_prefix(&mut self, cap: u64) -> Result<usize, CkptError> {
        let off = self.offset();
        let n = self.u64()?;
        if n > cap {
            return Err(CkptError::Decode {
                section: self.section.to_string(),
                offset: off,
                what: format!("length <= {cap}, found {n}"),
            });
        }
        Ok(n as usize)
    }

    /// Reads one `f64`.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_le_bytes(b.try_into().expect("take returned 8 bytes")))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, CkptError> {
        let n = self.len_prefix(self.remaining_elems())?;
        let b = self.take(8 * n, "f64 slice")?;
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect())
    }

    /// Reads a length-prefixed vector of length-prefixed `f64` slices.
    pub fn vecs(&mut self) -> Result<Vec<Vec<f64>>, CkptError> {
        let n = self.len_prefix(self.remaining_elems())?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64s()?);
        }
        Ok(out)
    }

    /// Upper bound on any plausible element count in the rest of the
    /// payload (used to reject corrupt length prefixes before they
    /// allocate).
    fn remaining_elems(&self) -> u64 {
        (self.buf.len() - self.pos) as u64
    }

    /// Asserts the payload was consumed exactly; trailing bytes mean the
    /// writer and reader disagree about the section layout.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.pos != self.buf.len() {
            return Err(CkptError::Decode {
                section: self.section.to_string(),
                offset: self.offset(),
                what: format!("end of section, found {} trailing byte(s)", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }

    /// Checks a decoded value against what the running state requires,
    /// mapping disagreement to [`CkptError::StateMismatch`].
    pub fn expect_u64(&mut self, want: u64, what: &str) -> Result<(), CkptError> {
        let got = self.u64()?;
        if got != want {
            return Err(CkptError::StateMismatch {
                what: format!("{what}: checkpoint has {got}, solver has {want}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_vectors() {
        let mut e = Enc::new();
        e.u64(42);
        e.f64(-0.0);
        e.f64s(&[1.5, f64::MIN_POSITIVE, -3.25]);
        e.vecs(&[vec![1.0], vec![], vec![2.0, 3.0]]);
        let bytes = e.into_bytes();
        let mut d = Dec::new("t", 100, &bytes);
        assert_eq!(d.u64().unwrap(), 42);
        let z = d.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "raw bits survive");
        assert_eq!(d.f64s().unwrap(), vec![1.5, f64::MIN_POSITIVE, -3.25]);
        assert_eq!(d.vecs().unwrap(), vec![vec![1.0], vec![], vec![2.0, 3.0]]);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_with_offset() {
        let mut e = Enc::new();
        e.u64(7);
        let bytes = e.into_bytes();
        let mut d = Dec::new("meta", 12, &bytes[..5]);
        match d.u64() {
            Err(CkptError::Truncated { section, offset, needed, have }) => {
                assert_eq!(section, "meta");
                assert_eq!(offset, 12);
                assert_eq!((needed, have), (8, 5));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_prefix_rejected_before_allocating() {
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new("fields", 0, &bytes);
        assert!(matches!(d.f64s(), Err(CkptError::Decode { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u64(1);
        e.u64(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new("s", 0, &bytes);
        d.u64().unwrap();
        assert!(matches!(d.finish(), Err(CkptError::Decode { .. })));
    }
}
