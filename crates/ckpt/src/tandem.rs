//! [`Tandem`]: one shard holding two [`Checkpointable`]s — a solver plus
//! a rider (the `nkt-stats` recorder) — so statistics survive restart in
//! the *same* atomic commit as the state they describe.
//!
//! Snapshotting solver and statistics as separate epochs would open a
//! window where one commits and the other does not; on restore the
//! accumulators would double-count (or miss) the steps in between and
//! the "statistics survive restart bitwise" contract breaks. A tandem
//! shard removes the window: either both sections land or neither does.
//!
//! The rider's sections ride along under its own names (conventionally
//! `stats.`-prefixed), identity metadata (kind, epoch/step) delegates to
//! the main state, and a shard written *without* a rider restores
//! cleanly into a tandem whose rider tolerates missing sections — the
//! rider simply resets, which is the right behaviour when `NKT_STATS`
//! was off during the original run.

use crate::error::CkptError;
use crate::format::{CkptFile, CkptWriter};
use crate::traits::Checkpointable;

/// Two checkpointables written into one shard: `main` owns the identity
/// (kind, step), `rider` contributes extra sections.
pub struct Tandem<'a> {
    /// The solver state; its `kind()`/`ckpt_step()` name the shard.
    pub main: &'a dyn Checkpointable,
    /// The rider (e.g. a statistics recorder); sections must not collide
    /// with the main state's.
    pub rider: &'a dyn Checkpointable,
}

/// Mutable twin of [`Tandem`] for the restore path.
pub struct TandemMut<'a> {
    /// The solver state.
    pub main: &'a mut dyn Checkpointable,
    /// The rider.
    pub rider: &'a mut dyn Checkpointable,
}

impl Checkpointable for Tandem<'_> {
    fn kind(&self) -> &'static str {
        self.main.kind()
    }
    fn write_sections(&self, w: &mut CkptWriter) {
        self.main.write_sections(w);
        self.rider.write_sections(w);
    }
    fn read_sections(&mut self, _f: &CkptFile) -> Result<(), CkptError> {
        Err(CkptError::StateMismatch {
            what: "Tandem is write-only; restore through TandemMut".to_string(),
        })
    }
    fn ckpt_step(&self) -> u64 {
        self.main.ckpt_step()
    }
}

impl Checkpointable for TandemMut<'_> {
    fn kind(&self) -> &'static str {
        self.main.kind()
    }
    fn write_sections(&self, w: &mut CkptWriter) {
        self.main.write_sections(w);
        self.rider.write_sections(w);
    }
    fn read_sections(&mut self, f: &CkptFile) -> Result<(), CkptError> {
        self.main.read_sections(f)?;
        self.rider.read_sections(f)
    }
    fn ckpt_step(&self) -> u64 {
        self.main.ckpt_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Dec, Enc};

    struct Solver {
        x: Vec<f64>,
        steps: u64,
    }

    impl Checkpointable for Solver {
        fn kind(&self) -> &'static str {
            "toy"
        }
        fn write_sections(&self, w: &mut CkptWriter) {
            let mut e = Enc::new();
            e.f64s(&self.x);
            e.u64(self.steps);
            w.section("fields", e.into_bytes());
        }
        fn read_sections(&mut self, f: &CkptFile) -> Result<(), CkptError> {
            let mut d = f.dec("fields")?;
            self.x = d.f64s()?;
            self.steps = d.u64()?;
            d.finish()
        }
        fn ckpt_step(&self) -> u64 {
            self.steps
        }
    }

    struct Rider {
        count: u64,
    }

    impl Checkpointable for Rider {
        fn kind(&self) -> &'static str {
            "stats"
        }
        fn write_sections(&self, w: &mut CkptWriter) {
            let mut e = Enc::new();
            e.u64(self.count);
            w.section("stats.accum", e.into_bytes());
        }
        fn read_sections(&mut self, f: &CkptFile) -> Result<(), CkptError> {
            // Tolerate shards written without a rider: reset.
            match f.dec("stats.accum") {
                Ok(mut d) => {
                    self.count = d.u64()?;
                    d.finish()
                }
                Err(_) => {
                    self.count = 0;
                    Ok(())
                }
            }
        }
        fn ckpt_step(&self) -> u64 {
            0
        }
    }

    fn roundtrip(w: CkptWriter) -> CkptFile {
        CkptFile::parse(std::path::Path::new("mem"), w.to_bytes()).unwrap()
    }

    #[test]
    fn tandem_roundtrips_both_sections() {
        let solver = Solver { x: vec![1.5, 2.5], steps: 7 };
        let rider = Rider { count: 42 };
        let t = Tandem { main: &solver, rider: &rider };
        assert_eq!(t.kind(), "toy");
        assert_eq!(t.ckpt_step(), 7);
        let mut w = CkptWriter::new();
        t.write_sections(&mut w);
        let f = roundtrip(w);
        let mut s2 = Solver { x: vec![], steps: 0 };
        let mut r2 = Rider { count: 0 };
        let mut tm = TandemMut { main: &mut s2, rider: &mut r2 };
        tm.read_sections(&f).unwrap();
        assert_eq!(s2.x, vec![1.5, 2.5]);
        assert_eq!(s2.steps, 7);
        assert_eq!(r2.count, 42);
    }

    #[test]
    fn riderless_shard_resets_the_rider() {
        let solver = Solver { x: vec![9.0], steps: 3 };
        let mut w = CkptWriter::new();
        solver.write_sections(&mut w); // no rider sections
        let f = roundtrip(w);
        let mut s2 = Solver { x: vec![], steps: 0 };
        let mut r2 = Rider { count: 99 };
        let mut tm = TandemMut { main: &mut s2, rider: &mut r2 };
        tm.read_sections(&f).unwrap();
        assert_eq!(s2.steps, 3);
        assert_eq!(r2.count, 0, "missing rider section must reset, not error");
        let _ = Dec::new("unused", 0, &[]);
    }

    #[test]
    fn tandem_hash_covers_rider_state() {
        let solver = Solver { x: vec![1.0], steps: 1 };
        let a = Tandem { main: &solver, rider: &Rider { count: 1 } };
        let b = Tandem { main: &solver, rider: &Rider { count: 2 } };
        assert_ne!(a.state_hash(), b.state_hash());
    }
}
