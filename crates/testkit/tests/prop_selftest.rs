//! Self-tests of the `prop_check!` machinery: passing properties pass,
//! failing properties fail with shrunk, reproducible reports, and
//! discards/case counts behave.

use nkt_testkit::{prop_check, prop_assert, prop_assert_eq, prop_assume, vec_in, vec_len_in};
use nkt_testkit::{CaseOutcome, Rng, Strategy, TupleStrategy};

prop_check! {
    #![cases(40)]

    /// Arithmetic holds for all drawn inputs.
    fn addition_commutes(a in 0u64..100_000, b in 0u64..100_000) {
        prop_assert_eq!(a + b, b + a);
    }

    /// Assume discards odd draws; the property then only sees evens.
    fn assume_filters_inputs(n in 0usize..1000) {
        prop_assume!(n % 2 == 0);
        prop_assert!(n % 2 == 0, "saw odd {n} past the assume");
    }

    /// Vec strategy generates the fixed length with in-range elements.
    fn vec_strategy_shape(v in vec_in(-2.0f64..2.0, 17)) {
        prop_assert_eq!(v.len(), 17);
        for x in &v {
            prop_assert!(*x >= -2.0 && *x < 2.0);
        }
    }
}

/// A failing property is detected, and the report carries the shrunk
/// input and the seed line.
#[test]
fn failing_property_reports_and_shrinks() {
    let strats = (0u64..1000,);
    // Fails for every n >= 10: shrinking should walk n well below the
    // typical first-failure draw.
    let prop = |vals: &(u64,)| -> CaseOutcome {
        let (n,) = *vals;
        if n >= 10 {
            CaseOutcome::Fail(format!("n too big: {n}"))
        } else {
            CaseOutcome::Pass
        }
    };
    let result = std::panic::catch_unwind(|| {
        nkt_testkit::run_prop("selftest::failing_property", 100, &strats, &prop);
    });
    let err = result.expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("string panic payload");
    assert!(msg.contains("NKT_PROP_SEED="), "no seed report in: {msg}");
    assert!(msg.contains("n too big"), "no cause in: {msg}");
    // Greedy shrink halves toward the low bound: the reported witness
    // must be in the minimal failing region, not a random large draw.
    assert!(msg.contains("input: (10,)") || msg.contains("input: (11,)"),
        "shrinking did not reach the boundary: {msg}");
}

/// The recursive multi-pass shrinker reaches the exact failure boundary
/// even across a wide range: fails iff n >= 577, so the minimal witness
/// is precisely 577 (bisection descent, then unit steps).
#[test]
fn recursive_shrink_finds_exact_boundary() {
    let strats = (0u64..1_000_000,);
    let prop = |vals: &(u64,)| -> CaseOutcome {
        let (n,) = *vals;
        if n >= 577 {
            CaseOutcome::Fail(format!("boundary crossed at {n}"))
        } else {
            CaseOutcome::Pass
        }
    };
    let result = std::panic::catch_unwind(|| {
        nkt_testkit::run_prop("selftest::exact_boundary", 50, &strats, &prop);
    });
    let err = result.expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("string panic payload");
    assert!(
        msg.contains("input: (577,)"),
        "shrinking stopped short of the 577 boundary: {msg}"
    );
}

/// Vec-length shrinking: a property that fails whenever any element is
/// >= 10 must shrink to the one-element vector [10] — shortest length,
/// smallest failing element.
#[test]
fn vec_len_shrink_finds_minimal_witness() {
    let strats = (vec_len_in(0u64..100, 1..20),);
    let prop = |vals: &(Vec<u64>,)| -> CaseOutcome {
        let (v,) = vals;
        if v.iter().any(|&x| x >= 10) {
            CaseOutcome::Fail("element out of tolerance".to_string())
        } else {
            CaseOutcome::Pass
        }
    };
    let result = std::panic::catch_unwind(|| {
        nkt_testkit::run_prop("selftest::vec_len_minimal", 50, &strats, &prop);
    });
    let err = result.expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("string panic payload");
    assert!(
        msg.contains("input: ([10],)"),
        "vec shrinking did not reach the minimal witness [10]: {msg}"
    );
}

/// Panics inside the body are caught and reported like failures.
#[test]
fn panicking_body_is_a_failure() {
    let strats = (0usize..10,);
    let prop = |_: &(usize,)| -> CaseOutcome {
        panic!("boom from body");
    };
    let result = std::panic::catch_unwind(|| {
        nkt_testkit::run_prop("selftest::panicking_body", 5, &strats, &prop);
    });
    let err = result.expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("string panic payload");
    assert!(msg.contains("boom from body"), "panic cause lost: {msg}");
}

/// The same test name draws the same case stream (determinism contract).
#[test]
fn case_stream_is_deterministic() {
    let strats = (0u64..1_000_000, vec_in(-1.0f64..1.0, 5));
    let draw = || {
        let mut rng = Rng::new(nkt_testkit::base_seed("selftest::stream"));
        (0..10).map(|_| strats.generate(&mut Rng::new(rng.next_u64()))).collect::<Vec<_>>()
    };
    assert_eq!(format!("{:?}", draw()), format!("{:?}", draw()));
}

/// Strategy trait stays object-usable for downstream helper fns.
#[test]
fn strategy_impl_trait_helpers_compose() {
    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        vec_in(0.0f64..1.0, 3)
    }
    let mut rng = Rng::new(1);
    let v = small_vec().generate(&mut rng);
    assert_eq!(v.len(), 3);
}
