//! # nkt-testkit — the workspace's self-built test & bench substrate
//!
//! The build environment for this reproduction is offline by design
//! (hermetic, like the self-built stacks of the paper's cohort — PMS,
//! Tarang), so the usual crates (`rand`, `proptest`, `criterion`) are
//! replaced by this zero-dependency kit:
//!
//! * [`Rng`] — deterministic SplitMix64-seeded xoshiro256** PRNG;
//! * [`prop_check!`] — property testing with strategy-driven case
//!   generation, seed reporting, and recursive multi-pass shrinking
//!   (budgeted descent to a minimal counterexample; vectors also shrink
//!   their length — see [`Strategy`] / [`vec_in`] / [`vec_len_in`] /
//!   [`one_of`]);
//! * [`Bench`] — micro-bench harness (warmup, calibrated iteration
//!   counts, median/MAD) emitting `results/BENCH_<name>.json`.
//!
//! Environment knobs: `NKT_PROP_SEED`, `NKT_PROP_CASES`,
//! `NKT_BENCH_FAST`, `NKT_RESULTS_DIR`.

pub mod bench;
pub mod prop;
pub mod rng;
pub mod strategy;

pub use bench::{Bench, Group, Throughput};
pub use prop::{base_seed, case_count, pin_prop, run_prop, CaseOutcome, DEFAULT_CASES};
pub use rng::{splitmix64, Rng};
pub use strategy::{one_of, vec_in, vec_len_in, OneOf, Strategy, TupleStrategy, VecIn, VecLenIn};
